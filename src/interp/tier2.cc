/**
 * @file
 * Tier-2 "compilation" and execution (see tier2.h for the model).
 *
 * The compiler flattens IR blocks into a pre-decoded PInst array and
 * layers the optimizing upgrades on top: profile-guided inlining of
 * small hot callees (slots renamed, bodies spliced), inline caches for
 * the remaining monomorphic call sites, superinstruction fusion
 * (compare+branch, load+arith, arith+store), and a conservative marking
 * pass that enables the redundant-check elision caches. Everything the
 * interpreter checks is still checked here; only the *re-derivation* of
 * already-established facts (aggregate walks, callee lookups) is
 * cached, and every cache guard falls back to the interpreter-identical
 * slow path on mismatch.
 */

#include "interp/tier2.h"

#include <algorithm>

#include "interp/tier3.h"

namespace sulong
{

namespace
{

/** Follow boolean-widening aliases. In a truthiness context (condbr
 *  condition, cmp+br fusion detection) every alias is safe: the source
 *  is non-zero iff the widened value is. In a *value* context only
 *  type-preserving aliases (i1 -> i1, from `icmp ne X, 0` of a bool) may
 *  be followed: MValue keeps integers in sign-extended canonical form,
 *  so an i1 true reads back as -1, and forwarding a zext(i1) consumer
 *  to the raw i1 slot would hand it -1 where the widened value is 1. */
const Value *
canonical(const Value *v,
          const std::unordered_map<const Value *, const Value *> &aliases,
          bool truthy)
{
    auto it = aliases.find(v);
    while (it != aliases.end() &&
           (truthy ||
            it->second->type()->kind() == v->type()->kind())) {
        v = it->second;
        it = aliases.find(v);
    }
    return v;
}

/** Int/float binops whose result a following store may consume. */
bool
isFusableProducer(Opcode op)
{
    switch (op) {
      case Opcode::add: case Opcode::sub: case Opcode::mul:
      case Opcode::sdiv: case Opcode::udiv: case Opcode::srem:
      case Opcode::urem: case Opcode::and_: case Opcode::or_:
      case Opcode::xor_: case Opcode::shl: case Opcode::lshr:
      case Opcode::ashr:
      case Opcode::fadd: case Opcode::fsub: case Opcode::fmul:
      case Opcode::fdiv: case Opcode::frem:
        return true;
      default:
        return false;
    }
}

} // namespace

/**
 * Builds one CompiledFunction. Inlining works by re-entering the block
 * flattener on the callee with a slot-base offset, so inlined bodies
 * share the caller's frame; a splice that turns out to be impossible
 * (interpreter-fallback op inside, budget exceeded, recursion) is
 * rolled back and the site becomes a call-IC site instead.
 */
class Tier2Compiler
{
  public:
    Tier2Compiler(const Function &fn, ManagedEngine &engine)
        : fn_(fn), engine_(engine),
          out_(std::make_unique<CompiledFunction>(&fn))
    {}

    std::unique_ptr<CompiledFunction>
    compile()
    {
        nextSlot_ = static_cast<int32_t>(fn_.numSlots());
        maxSlot_ = nextSlot_;
        out_->constants_.push_back(MValue{}); // index 0: absent operand
        BodyCtx body;
        body.fn = &fn_;
        body.slotBase = 0;
        buildAliases(fn_, body.aliases);
        std::vector<const Function *> stack{&fn_};
        emitBody(body, -1, nullptr, stack, 0);
        out_->frameSize_ = static_cast<uint32_t>(maxSlot_);
        markCachesAndElision();
        engine_.inlinedSites_ += out_->inlinedSites();
        return std::move(out_);
    }

  private:
    using AliasMap = std::unordered_map<const Value *, const Value *>;

    /** Per-emitted-body state: which function, its alias map, and the
     *  frame-slot offset its slots/arguments are renamed by. */
    struct BodyCtx
    {
        const Function *fn = nullptr;
        AliasMap aliases;
        int32_t slotBase = 0;
    };

    struct Fixup
    {
        size_t index;
        const BasicBlock *target;
        bool second; ///< patches t1 instead of t0
    };

    static void
    buildAliases(const Function &fn, AliasMap &aliases)
    {
        for (const auto &bb : fn.blocks()) {
            for (const auto &inst : bb->insts()) {
                if (inst->op() == Opcode::zext &&
                    inst->operand(0)->type()->kind() == TypeKind::i1) {
                    aliases[inst.get()] = inst->operand(0);
                } else if (inst->op() == Opcode::icmp &&
                           inst->intPred() == IntPred::ne &&
                           inst->operand(1)->valueKind() ==
                               ValueKind::constantInt &&
                           static_cast<const ConstantInt *>(
                               inst->operand(1))->value() == 0) {
                    const Value *src =
                        canonical(inst->operand(0), aliases, true);
                    bool src_bool = src->type()->kind() == TypeKind::i1 ||
                        (src->valueKind() == ValueKind::instruction &&
                         static_cast<const Instruction *>(src)->op() ==
                             Opcode::icmp);
                    if (src_bool)
                        aliases[inst.get()] = src;
                }
            }
        }
    }

    int32_t
    internConstant(const Value *key, MValue value)
    {
        auto [it, inserted] = constantIndex_.try_emplace(
            key, static_cast<int32_t>(out_->constants_.size()));
        if (inserted)
            out_->constants_.push_back(std::move(value));
        return it->second;
    }

    POperand
    makeOperand(const Value *v, const BodyCtx &body, bool truthy = false)
    {
        v = canonical(v, body.aliases, truthy);
        POperand op;
        switch (v->valueKind()) {
          case ValueKind::argument:
            op.isSlot = true;
            op.index = static_cast<int32_t>(
                static_cast<const Argument *>(v)->index()) + body.slotBase;
            return op;
          case ValueKind::instruction:
            op.isSlot = true;
            op.index = static_cast<const Instruction *>(v)->slot() +
                body.slotBase;
            return op;
          case ValueKind::constantInt: {
            const auto *c = static_cast<const ConstantInt *>(v);
            op.index = internConstant(
                v, MValue::makeInt(c->value(), c->type()->intBits()));
            return op;
          }
          case ValueKind::constantFP: {
            const auto *c = static_cast<const ConstantFP *>(v);
            op.index = internConstant(
                v, MValue::makeFP(
                       c->value(),
                       c->type()->kind() == TypeKind::f32 ? 32 : 64));
            return op;
          }
          case ValueKind::constantNull:
            op.index = internConstant(v, MValue::makeAddr(Address{}));
            return op;
          case ValueKind::global:
            op.index = internConstant(
                v, MValue::makeAddr(engine_.globals_->addressOf(
                       static_cast<const GlobalVariable *>(v))));
            return op;
          case ValueKind::function:
            op.index = internConstant(
                v, MValue::makeAddr(engine_.globals_->addressOf(
                       static_cast<const Function *>(v))));
            return op;
        }
        throw InternalError("bad operand");
    }

    bool
    siteIsHot(const Instruction &inst) const
    {
        int site_min = engine_.options_.inlineSiteMin;
        unsigned need = site_min >= 0
            ? static_cast<unsigned>(site_min)
            : std::max(1u, engine_.options_.compileThreshold / 2);
        if (need == 0)
            return true;
        auto it = engine_.callSiteCounts_.find(&inst);
        return it != engine_.callSiteCounts_.end() && it->second >= need;
    }

    /** Splice @p callee in place of the call. @return false (with all
     *  emission rolled back) when the body cannot be inlined. */
    bool
    emitInline(const Instruction &inst, const Function &callee,
               const BodyCtx &caller, std::vector<const Function *> &stack,
               size_t budget_start)
    {
        if (std::find(stack.begin(), stack.end(), &callee) != stack.end())
            return false; // (mutually) recursive
        auto &code = out_->code_;
        size_t code_snap = code.size();
        size_t call_snap = out_->callSites_.size();
        size_t range_snap = out_->inlineRanges_.size();
        int32_t slot_snap = nextSlot_;

        int32_t base = nextSlot_;
        nextSlot_ += static_cast<int32_t>(callee.numSlots());
        maxSlot_ = std::max(maxSlot_, nextSlot_);

        // Argument setup: plain slot moves into the callee's renamed
        // argument slots.
        for (unsigned j = 0; j < callee.numArgs(); j++) {
            PInst pi;
            pi.op = Opcode::p2Move;
            pi.src = &inst;
            pi.dest = base + static_cast<int32_t>(j);
            pi.a = makeOperand(inst.operand(j + 1), caller);
            code.push_back(pi);
        }
        int32_t ret_slot = inst.slot() >= 0
            ? inst.slot() + caller.slotBase : -1;

        BodyCtx body;
        body.fn = &callee;
        body.slotBase = base;
        buildAliases(callee, body.aliases);
        std::vector<size_t> ret_fixups;
        stack.push_back(&callee);
        bool ok = emitBody(body, ret_slot, &ret_fixups, stack, budget_start);
        stack.pop_back();
        if (!ok) {
            code.resize(code_snap);
            out_->callSites_.resize(call_snap);
            out_->inlineRanges_.resize(range_snap);
            nextSlot_ = slot_snap;
            return false;
        }
        for (size_t idx : ret_fixups)
            code[idx].t0 = static_cast<int32_t>(code.size());
        // Inner splices were recorded first, so a pc lookup that takes
        // the first matching range finds the innermost callee.
        out_->inlineRanges_.push_back(
            InlineRange{code_snap, code.size(), &callee});
        return true;
    }

    /** Emit a call site: inline it, give it an inline cache, or (top
     *  level only) fall back to the interpreter path. @return false when
     *  nested inside a splice and none of the safe forms apply. */
    bool
    emitCall(const Instruction &inst, const BodyCtx &body,
             std::vector<const Function *> &stack, size_t budget_start,
             bool nested)
    {
        int32_t dest = inst.slot() >= 0 ? inst.slot() + body.slotBase : -1;
        const Value *callee_v = inst.operand(0);
        if (callee_v->valueKind() == ValueKind::function) {
            const auto *callee = static_cast<const Function *>(callee_v);
            // Direct-dispatch eligibility mirrors the interpreter's
            // non-special path: a defined, non-variadic callee taking
            // exactly the arguments passed.
            bool eligible = !callee->isDeclaration() &&
                !callee->isVarArg() &&
                inst.numOperands() - 1 == callee->numArgs();
            if (eligible && engine_.options_.enableInlining &&
                (nested || siteIsHot(inst))) {
                size_t start = nested ? budget_start : out_->code_.size();
                if (emitInline(inst, *callee, body, stack, start))
                    return true;
            }
            if (eligible) {
                CallSite site;
                site.callee = callee;
                site.cachedFnId = callee->id();
                for (size_t i = 1; i < inst.numOperands(); i++)
                    site.args.push_back(makeOperand(inst.operand(i), body));
                PInst pi;
                pi.op = Opcode::p2CallDirect;
                pi.src = &inst;
                pi.dest = dest;
                pi.callSite = static_cast<int32_t>(out_->callSites_.size());
                out_->callSites_.push_back(std::move(site));
                out_->code_.push_back(pi);
                return true;
            }
            // Intrinsics, variadics, argument-count mismatches: only the
            // interpreter path reproduces their semantics exactly.
            if (nested)
                return false;
            PInst pi;
            pi.op = Opcode::call;
            pi.src = &inst;
            pi.dest = dest;
            out_->code_.push_back(pi);
            return true;
        }
        // Function-pointer site: inline cache with the interpreter as
        // the megamorphic/special-case fallback (needs identity slots,
        // so top level only).
        if (nested)
            return false;
        CallSite site;
        for (size_t i = 1; i < inst.numOperands(); i++)
            site.args.push_back(makeOperand(inst.operand(i), body));
        PInst pi;
        pi.op = Opcode::p2CallIndirect;
        pi.src = &inst;
        pi.dest = dest;
        pi.a = makeOperand(callee_v, body);
        pi.callSite = static_cast<int32_t>(out_->callSites_.size());
        out_->callSites_.push_back(std::move(site));
        out_->code_.push_back(pi);
        return true;
    }

    /**
     * Flatten one function body at @p body.slotBase. Top level
     * (@p ret_fixups == nullptr) records block entries for OSR and may
     * fall back to the interpreter per instruction; inlined bodies
     * (@p ret_fixups set) turn rets into jumps to the continuation and
     * must stay fallback-free — any violation returns false and the
     * caller rolls the splice back.
     */
    bool
    emitBody(const BodyCtx &body, int32_t ret_slot,
             std::vector<size_t> *ret_fixups,
             std::vector<const Function *> &stack, size_t budget_start)
    {
        bool nested = ret_fixups != nullptr;
        auto &code = out_->code_;
        std::unordered_map<const BasicBlock *, int32_t> block_start;
        std::vector<Fixup> fixups;

        for (const auto &bb : body.fn->blocks()) {
            int32_t start = static_cast<int32_t>(code.size());
            block_start[bb.get()] = start;
            if (!nested)
                out_->blockStart_[bb.get()] = start;
            const auto &insts = bb->insts();
            for (size_t i = 0; i < insts.size(); i++) {
                const Instruction &inst = *insts[i];
                PInst pi;
                pi.op = inst.op();
                pi.src = &inst;
                pi.dest = inst.slot() >= 0 ? inst.slot() + body.slotBase
                                           : -1;
                if (inst.type()->isInteger())
                    pi.bits = static_cast<uint8_t>(inst.type()->intBits());
                else if (inst.type()->kind() == TypeKind::f32)
                    pi.bits = 32;
                else if (inst.type()->kind() == TypeKind::f64)
                    pi.bits = 64;

                switch (inst.op()) {
                  case Opcode::br:
                    fixups.push_back(Fixup{code.size(), inst.target(0),
                                           false});
                    code.push_back(pi);
                    break;
                  case Opcode::condbr:
                    pi.a = makeOperand(inst.operand(0), body, true);
                    fixups.push_back(Fixup{code.size(), inst.target(0),
                                           false});
                    fixups.push_back(Fixup{code.size(), inst.target(1),
                                           true});
                    code.push_back(pi);
                    break;
                  case Opcode::ret:
                    if (nested) {
                        pi.op = Opcode::p2Ret;
                        if (inst.numOperands() == 1 && ret_slot >= 0) {
                            pi.dest = ret_slot;
                            pi.a = makeOperand(inst.operand(0), body);
                        } else {
                            pi.dest = -1;
                        }
                        ret_fixups->push_back(code.size());
                        code.push_back(pi);
                        break;
                    }
                    if (inst.numOperands() == 1)
                        pi.a = makeOperand(inst.operand(0), body);
                    else
                        pi.dest = -2; // void-return marker
                    code.push_back(pi);
                    break;
                  case Opcode::icmp: {
                    pi.pred = static_cast<uint8_t>(inst.intPred());
                    pi.a = makeOperand(inst.operand(0), body);
                    pi.b = makeOperand(inst.operand(1), body);
                    tryFuseLoad(pi, inst, body);
                    // Fuse with a directly following condbr on this
                    // result.
                    if (i + 1 < insts.size() &&
                        insts[i + 1]->op() == Opcode::condbr &&
                        canonical(insts[i + 1]->operand(0),
                                  body.aliases, true) == &inst) {
                        pi.flags |= kPFuseCmpBr;
                        fixups.push_back(Fixup{code.size(),
                                               insts[i + 1]->target(0),
                                               false});
                        fixups.push_back(Fixup{code.size(),
                                               insts[i + 1]->target(1),
                                               true});
                        i++; // skip the condbr
                    }
                    code.push_back(pi);
                    break;
                  }
                  case Opcode::fcmp:
                    pi.pred = static_cast<uint8_t>(inst.floatPred());
                    pi.a = makeOperand(inst.operand(0), body);
                    pi.b = makeOperand(inst.operand(1), body);
                    code.push_back(pi);
                    break;
                  case Opcode::gep:
                    pi.a = makeOperand(inst.operand(0), body);
                    if (inst.numOperands() > 1)
                        pi.b = makeOperand(inst.operand(1), body);
                    pi.gepOff = inst.gepConstOffset();
                    pi.gepScale = inst.gepScale();
                    code.push_back(pi);
                    break;
                  case Opcode::load:
                    pi.a = makeOperand(inst.operand(0), body);
                    code.push_back(pi);
                    break;
                  case Opcode::store: {
                    // arith+store fusion: a directly preceding binop
                    // producing exactly the stored value absorbs the
                    // store (same slot writes, same trap order).
                    const Value *val = canonical(inst.operand(0),
                                                 body.aliases, false);
                    if (!code.empty()) {
                        PInst &last = code.back();
                        if (isFusableProducer(last.op) &&
                            (last.flags & (kPFuseCmpBr | kPFuseStore)) ==
                                0 &&
                            last.dest >= 0 && last.src == val) {
                            last.flags |= kPFuseStore;
                            last.c = makeOperand(inst.operand(1), body);
                            last.srcStore = &inst;
                            break;
                        }
                    }
                    pi.a = makeOperand(inst.operand(0), body);
                    pi.b = makeOperand(inst.operand(1), body);
                    code.push_back(pi);
                    break;
                  }
                  case Opcode::select:
                    pi.a = makeOperand(inst.operand(0), body);
                    pi.b = makeOperand(inst.operand(1), body);
                    pi.c = makeOperand(inst.operand(2), body);
                    code.push_back(pi);
                    break;
                  case Opcode::alloca_:
                  case Opcode::fneg:
                  case Opcode::trunc: case Opcode::sext: case Opcode::zext:
                  case Opcode::fptosi: case Opcode::fptoui:
                  case Opcode::sitofp: case Opcode::uitofp:
                  case Opcode::fpext: case Opcode::fptrunc:
                    if (inst.numOperands() >= 1)
                        pi.a = makeOperand(inst.operand(0), body);
                    code.push_back(pi);
                    break;
                  case Opcode::add: case Opcode::sub: case Opcode::mul:
                  case Opcode::sdiv: case Opcode::udiv: case Opcode::srem:
                  case Opcode::urem: case Opcode::and_: case Opcode::or_:
                  case Opcode::xor_: case Opcode::shl: case Opcode::lshr:
                  case Opcode::ashr:
                  case Opcode::fadd: case Opcode::fsub: case Opcode::fmul:
                  case Opcode::fdiv: case Opcode::frem:
                    pi.a = makeOperand(inst.operand(0), body);
                    pi.b = makeOperand(inst.operand(1), body);
                    tryFuseLoad(pi, inst, body);
                    code.push_back(pi);
                    break;
                  case Opcode::call:
                    if (!emitCall(inst, body, stack, budget_start, nested))
                        return false;
                    break;
                  case Opcode::unreachable_:
                    if (nested)
                        return false; // message names the enclosing fn
                    code.push_back(pi);
                    break;
                  default:
                    // ptrtoint/inttoptr: interpreter fallback reads the
                    // original (unrenamed) slots — top level only.
                    if (nested)
                        return false;
                    code.push_back(pi);
                    break;
                }
                if (nested && code.size() - budget_start >
                        engine_.options_.inlineBudget)
                    return false;
            }
        }
        for (const Fixup &fixup : fixups) {
            int32_t target = block_start.at(fixup.target);
            if (fixup.second)
                code[fixup.index].t1 = target;
            else
                code[fixup.index].t0 = target;
        }
        return true;
    }

    /** load+arith fusion: when the directly preceding PInst is a plain
     *  load whose result this instruction consumes, absorb it. The
     *  consuming operand already names the load's slot, which the fused
     *  form still writes first — values and trap order are unchanged. */
    void
    tryFuseLoad(PInst &pi, const Instruction &inst, const BodyCtx &body)
    {
        (void)inst;
        (void)body;
        auto &code = out_->code_;
        if (code.empty())
            return;
        PInst &last = code.back();
        if (last.op != Opcode::load || last.flags != 0 || last.dest < 0)
            return;
        bool consumed =
            (pi.a.isSlot && pi.a.index == last.dest) ||
            (pi.b.isSlot && pi.b.index == last.dest);
        if (!consumed)
            return;
        pi.flags |= kPFuseLoad;
        pi.destLoad = last.dest;
        pi.loadAddr = last.a;
        pi.srcLoad = last.src;
        code.pop_back();
    }

    /**
     * Post-pass enabling the check-elision caches: give every access
     * site a struct-shape cache and flag every slot-addressed access
     * for the per-slot resolution cache. The flags are pure capability
     * bits — validity is decided at runtime, where every cached
     * resolution re-proves itself structurally before use (same live
     * object, same offset, same width, not freed). Aggregate layout is
     * immutable while an object is live and `free` is only reachable
     * through calls, so stores and branches cannot invalidate a
     * resolution; only the call-boundary epoch and the liveness check
     * can retire one. Leaf-level bounds/type/liveness/init checks are
     * never skipped either way.
     */
    void
    markCachesAndElision()
    {
        if (!engine_.options_.enableCheckElision)
            return; // ic indices stay -1, no flags: ablation baseline
        for (PInst &pi : out_->code_) {
            if (pi.op == Opcode::load || (pi.flags & kPFuseLoad) != 0) {
                pi.icLoad = static_cast<int32_t>(out_->accessCaches_.size());
                out_->accessCaches_.emplace_back();
                const POperand &addr =
                    pi.op == Opcode::load ? pi.a : pi.loadAddr;
                if (addr.isSlot)
                    pi.flags |= kPElideLoad;
            }
            if (pi.op == Opcode::store || (pi.flags & kPFuseStore) != 0) {
                pi.icStore =
                    static_cast<int32_t>(out_->accessCaches_.size());
                out_->accessCaches_.emplace_back();
                const POperand &addr =
                    pi.op == Opcode::store ? pi.b : pi.c;
                if (addr.isSlot)
                    pi.flags |= kPElideStore;
            }
        }
        out_->slotRes_.assign(out_->frameSize_, SlotResolution{});
    }

    const Function &fn_;
    ManagedEngine &engine_;
    std::unique_ptr<CompiledFunction> out_;
    std::unordered_map<const Value *, int32_t> constantIndex_;
    int32_t nextSlot_ = 0;
    int32_t maxSlot_ = 0;
};

std::unique_ptr<CompiledFunction>
compileTier2(const Function &fn, ManagedEngine &engine)
{
    return Tier2Compiler(fn, engine).compile();
}

// Out of line: Tier3Code is incomplete in tier2.h (tier3Owner_).
CompiledFunction::CompiledFunction(const Function *fn) : fn_(fn) {}
CompiledFunction::~CompiledFunction() = default;

/** Walk an aggregate down to the leaf sub-object containing the access,
 *  running exactly the checks the uncached path runs (each resolveStep
 *  is the object's own checked resolve). @return nullptr when the
 *  access spans sub-objects (handled byte-wise, not cacheable). */
ManagedObject *
CompiledFunction::resolveLeaf(ManagedObject *obj, int64_t offset, unsigned size,
            bool is_write, int64_t &leaf_offset)
{
    ManagedObject *cur = obj;
    int64_t off = offset;
    for (;;) {
        int64_t inner = 0;
        ManagedObject *next = cur->resolveStep(off, size, is_write, inner);
        if (next == nullptr)
            return nullptr;
        if (next == cur) {
            leaf_offset = off;
            return cur;
        }
        cur = next;
        off = inner;
    }
}

/** Remember which field of which struct type a successful access went
 *  through (called only after the full checked access succeeded). */
void
CompiledFunction::fillAccessCache(AccessCache &cache, const StructObject *sobj,
                int64_t offset, uint32_t size)
{
    const Type *st = sobj->type();
    int idx = st->fieldAt(static_cast<uint64_t>(offset));
    if (idx < 0)
        return; // padding: never cached (the full path reports it)
    const StructField &f = st->fields()[static_cast<size_t>(idx)];
    int64_t field_off = static_cast<int64_t>(f.offset);
    int64_t field_size = static_cast<int64_t>(f.type->size());
    if (offset - field_off + static_cast<int64_t>(size) > field_size)
        return; // spans beyond the field: byte-wise path, not cacheable
    cache.structType = st;
    cache.fieldIndex = static_cast<uint32_t>(idx);
    cache.fieldOffset = field_off;
    cache.fieldSize = field_size;
}

MValue
CompiledFunction::loadAt(ManagedEngine &engine, const Address &addr,
                         const Instruction *src, int32_t ic,
                         SlotResolution *sr, uint16_t *shape_miss)
{
    if (addr.isNull())
        engine.raiseNullDeref(false, src->loc());
    const Type *type = src->accessType();
    ManagedObject *obj = addr.pointee.get();
    uint32_t size = static_cast<uint32_t>(type->size());
    // Tier A — per-address-slot resolution: wins when the address is
    // loop invariant. The hit test is structural (same live object,
    // same offset, same width): aggregate layout never changes while
    // an object is live, the ObjRef pins the root (no address reuse),
    // and free — only reachable through a call, where the epoch moves —
    // is caught by the isFreed test. Leaf checks
    // (liveness/bounds/type/init) still run inside loadFromObject.
    if (sr != nullptr && sr->epoch == engine.resolveEpoch_ &&
        sr->obj.get() == obj && sr->offset == addr.offset &&
        sr->size == size && !obj->isFreed()) {
        if (engine.profiling_)
            engine.telem_.elideSlotHits++;
        return engine.loadFromObject(sr->leaf, sr->leafOffset, type);
    }
    // Tier B — struct-shape cache: wins when the address changes every
    // time but keeps naming the same field of the same struct type
    // (pointer chasing). No slot-cache refill on a hit.
    if (ic >= 0 && obj->kind() == ObjectKind::structObject) {
        auto *sobj = static_cast<StructObject *>(obj);
        AccessCache &cache = accessCaches_[static_cast<size_t>(ic)];
        if (sobj->type() == cache.structType && !sobj->isFreed() &&
            addr.offset >= cache.fieldOffset &&
            addr.offset - cache.fieldOffset +
                    static_cast<int64_t>(size) <= cache.fieldSize) {
            if (engine.profiling_)
                engine.telem_.elideShapeHits++;
            if (shape_miss != nullptr)
                *shape_miss = 0;
            return engine.loadFromObject(sobj->field(cache.fieldIndex),
                                         addr.offset - cache.fieldOffset,
                                         type);
        }
        if (engine.profiling_)
            engine.telem_.elideShapeMisses++;
        if (shape_miss != nullptr)
            ++*shape_miss;
        MValue v = engine.loadFromObject(obj, addr.offset, type);
        fillAccessCache(cache, sobj, addr.offset, size);
        return v;
    }
    if (sr != nullptr) {
        if (engine.profiling_)
            engine.telem_.elideSlotMisses++;
        int64_t leaf_off = 0;
        ManagedObject *leaf =
            resolveLeaf(obj, addr.offset, size, false, leaf_off);
        if (leaf == nullptr) {
            sr->epoch = 0; // spans sub-objects: byte-wise, not cacheable
            return engine.loadFromObject(obj, addr.offset, type);
        }
        MValue v = engine.loadFromObject(leaf, leaf_off, type);
        sr->epoch = engine.resolveEpoch_;
        sr->obj = addr.pointee;
        sr->offset = addr.offset;
        sr->size = size;
        sr->leaf = leaf;
        sr->leafOffset = leaf_off;
        return v;
    }
    return engine.loadFromObject(obj, addr.offset, type);
}

void
CompiledFunction::storeAt(ManagedEngine &engine, const Address &addr,
                          const Instruction *src, const MValue &v,
                          int32_t ic, SlotResolution *sr,
                          uint16_t *shape_miss)
{
    if (addr.isNull())
        engine.raiseNullDeref(true, src->loc());
    const Type *type = src->accessType();
    ManagedObject *obj = addr.pointee.get();
    uint32_t size = static_cast<uint32_t>(type->size());
    // Same two cache tiers as loadAt; see the comments there.
    if (sr != nullptr && sr->epoch == engine.resolveEpoch_ &&
        sr->obj.get() == obj && sr->offset == addr.offset &&
        sr->size == size && !obj->isFreed()) {
        if (engine.profiling_)
            engine.telem_.elideSlotHits++;
        engine.storeToObject(sr->leaf, sr->leafOffset, type, v);
        return;
    }
    if (ic >= 0 && obj->kind() == ObjectKind::structObject) {
        auto *sobj = static_cast<StructObject *>(obj);
        AccessCache &cache = accessCaches_[static_cast<size_t>(ic)];
        if (sobj->type() == cache.structType && !sobj->isFreed() &&
            addr.offset >= cache.fieldOffset &&
            addr.offset - cache.fieldOffset +
                    static_cast<int64_t>(size) <= cache.fieldSize) {
            if (engine.profiling_)
                engine.telem_.elideShapeHits++;
            if (shape_miss != nullptr)
                *shape_miss = 0;
            engine.storeToObject(sobj->field(cache.fieldIndex),
                                 addr.offset - cache.fieldOffset, type, v);
            return;
        }
        if (engine.profiling_)
            engine.telem_.elideShapeMisses++;
        if (shape_miss != nullptr)
            ++*shape_miss;
        engine.storeToObject(obj, addr.offset, type, v);
        fillAccessCache(cache, sobj, addr.offset, size);
        return;
    }
    if (sr != nullptr) {
        if (engine.profiling_)
            engine.telem_.elideSlotMisses++;
        int64_t leaf_off = 0;
        ManagedObject *leaf =
            resolveLeaf(obj, addr.offset, size, true, leaf_off);
        if (leaf == nullptr) {
            sr->epoch = 0;
            engine.storeToObject(obj, addr.offset, type, v);
            return;
        }
        engine.storeToObject(leaf, leaf_off, type, v);
        sr->epoch = engine.resolveEpoch_;
        sr->obj = addr.pointee;
        sr->offset = addr.offset;
        sr->size = size;
        sr->leaf = leaf;
        sr->leafOffset = leaf_off;
        return;
    }
    engine.storeToObject(obj, addr.offset, type, v);
}


MValue
CompiledFunction::execute(ManagedEngine &engine,
                          ManagedEngine::Frame &frame, size_t start_pc,
                          bool allow_osr3)
{
    auto &slots = frame.slots;
    if (slots.size() < frameSize_)
        slots.resize(frameSize_); // OSR entry from an interpreter frame
    const MValue *constants = constants_.data();
    auto fetch = [&](const POperand &op) -> const MValue & {
        return op.isSlot ? slots[static_cast<size_t>(op.index)]
                         : constants[static_cast<size_t>(op.index)];
    };
    auto doFusedLoad = [&](const PInst &pi) {
        SlotResolution *sr = (pi.flags & kPElideLoad) != 0
            ? &slotRes_[static_cast<size_t>(pi.loadAddr.index)] : nullptr;
        slots[static_cast<size_t>(pi.destLoad)] =
            loadAt(engine, fetch(pi.loadAddr).a, pi.srcLoad, pi.icLoad, sr);
    };
    auto doFusedStore = [&](const PInst &pi, const MValue &v) {
        SlotResolution *sr = (pi.flags & kPElideStore) != 0
            ? &slotRes_[static_cast<size_t>(pi.c.index)] : nullptr;
        // Stores mutate leaf contents, never aggregate layout, so they
        // leave cached resolutions valid (no epoch bump).
        storeAt(engine, fetch(pi.c).a, pi.srcStore, v, pi.icStore, sr);
    };

    ManagedEngine::FnProfile *prof =
        engine.profiling_ ? engine.profileFor(fn_) : nullptr;
    // Tier-3 OSR: count loop back-edges (branch targets at or before
    // the current pc) and tier up mid-activation once hot. Branch
    // targets are superblock heads, so any back-edge target is a valid
    // tier-3 entry with the live frame as-is. Off while resuming from a
    // tier-3 deopt (allow_osr3 == false) so the tiers can't ping-pong.
    bool osr3 = allow_osr3 && engine.options_.enableTier3 &&
        engine.options_.tier3Osr;
    uint64_t backedges3 = 0;
    auto osrTarget = [&](size_t target, size_t cur) -> Tier3Code * {
        if (!osr3 || target > cur ||
            ++backedges3 < engine.options_.tier3OsrThreshold)
            return nullptr;
        Tier3Code *t3 = engine.tier3ForOsr(fn_, this);
        osr3 = false; // one shot: entered, or translation unavailable
        return t3;
    };
    size_t pc = start_pc;
    try {
        while (true) {
            const PInst &pi = code_[pc];
            engine.step();
            if (prof != nullptr)
                prof->tier2Steps++;
            switch (pi.op) {
              case Opcode::br: {
                size_t target = static_cast<size_t>(pi.t0);
                if (Tier3Code *t3 = osrTarget(target, pc))
                    return t3->execute(engine, frame, target);
                pc = target;
                continue;
              }
              case Opcode::condbr: {
                size_t target = static_cast<size_t>(
                    fetch(pi.a).i != 0 ? pi.t0 : pi.t1);
                if (Tier3Code *t3 = osrTarget(target, pc))
                    return t3->execute(engine, frame, target);
                pc = target;
                continue;
              }
              case Opcode::ret:
                if (pi.dest == -2)
                    return MValue{};
                return fetch(pi.a);
              case Opcode::icmp: {
                if ((pi.flags & kPFuseLoad) != 0)
                    doFusedLoad(pi);
                bool out = ManagedEngine::evalICmp(
                    static_cast<IntPred>(pi.pred), fetch(pi.a),
                    fetch(pi.b));
                if (pi.dest >= 0) {
                    slots[static_cast<size_t>(pi.dest)] =
                        MValue::makeInt(out ? 1 : 0, 1);
                }
                if ((pi.flags & kPFuseCmpBr) != 0) {
                    size_t target =
                        static_cast<size_t>(out ? pi.t0 : pi.t1);
                    if (Tier3Code *t3 = osrTarget(target, pc))
                        return t3->execute(engine, frame, target);
                    pc = target;
                    continue;
                }
                pc++;
                continue;
              }
              case Opcode::fcmp: {
                bool out = ManagedEngine::evalFCmp(
                    static_cast<FloatPred>(pi.pred), fetch(pi.a),
                    fetch(pi.b));
                slots[static_cast<size_t>(pi.dest)] =
                    MValue::makeInt(out ? 1 : 0, 1);
                pc++;
                continue;
              }
              case Opcode::add: case Opcode::sub: case Opcode::mul:
              case Opcode::sdiv: case Opcode::udiv: case Opcode::srem:
              case Opcode::urem: case Opcode::and_: case Opcode::or_:
              case Opcode::xor_: case Opcode::shl: case Opcode::lshr:
              case Opcode::ashr: {
                if ((pi.flags & kPFuseLoad) != 0)
                    doFusedLoad(pi);
                int64_t out = ManagedEngine::evalIntBinOp(
                    pi.op, fetch(pi.a), fetch(pi.b), pi.bits);
                MValue res = MValue::makeInt(out, pi.bits);
                slots[static_cast<size_t>(pi.dest)] = res;
                if ((pi.flags & kPFuseStore) != 0)
                    doFusedStore(pi, res);
                pc++;
                continue;
              }
              case Opcode::fadd: case Opcode::fsub: case Opcode::fmul:
              case Opcode::fdiv: case Opcode::frem: {
                if ((pi.flags & kPFuseLoad) != 0)
                    doFusedLoad(pi);
                double out = ManagedEngine::evalFloatBinOp(
                    pi.op, fetch(pi.a), fetch(pi.b), pi.bits);
                MValue res = MValue::makeFP(out, pi.bits);
                slots[static_cast<size_t>(pi.dest)] = res;
                if ((pi.flags & kPFuseStore) != 0)
                    doFusedStore(pi, res);
                pc++;
                continue;
              }
              case Opcode::gep: {
                const MValue &base = fetch(pi.a);
                int64_t offset = pi.gepOff;
                if (pi.b.isSlot || pi.gepScale != 0) {
                    offset += fetch(pi.b).i *
                        static_cast<int64_t>(pi.gepScale);
                }
                slots[static_cast<size_t>(pi.dest)] =
                    MValue::makeAddr(base.a.withOffset(offset));
                pc++;
                continue;
              }
              case Opcode::load: {
                SlotResolution *sr = (pi.flags & kPElideLoad) != 0
                    ? &slotRes_[static_cast<size_t>(pi.a.index)] : nullptr;
                slots[static_cast<size_t>(pi.dest)] =
                    loadAt(engine, fetch(pi.a).a, pi.src, pi.icLoad, sr);
                pc++;
                continue;
              }
              case Opcode::store: {
                SlotResolution *sr = (pi.flags & kPElideStore) != 0
                    ? &slotRes_[static_cast<size_t>(pi.b.index)] : nullptr;
                storeAt(engine, fetch(pi.b).a, pi.src, fetch(pi.a),
                        pi.icStore, sr);
                pc++;
                continue;
              }
              case Opcode::alloca_:
                slots[static_cast<size_t>(pi.dest)] = MValue::makeAddr(
                    Address{engine.allocaObject(*pi.src), 0});
                pc++;
                continue;
              case Opcode::select: {
                const MValue &cond = fetch(pi.a);
                slots[static_cast<size_t>(pi.dest)] =
                    fetch(cond.i != 0 ? pi.b : pi.c);
                pc++;
                continue;
              }
              case Opcode::fneg:
                slots[static_cast<size_t>(pi.dest)] =
                    MValue::makeFP(-fetch(pi.a).f, pi.bits);
                pc++;
                continue;
              case Opcode::trunc:
              case Opcode::sext:
                slots[static_cast<size_t>(pi.dest)] =
                    MValue::makeInt(fetch(pi.a).i, pi.bits);
                pc++;
                continue;
              case Opcode::zext:
                slots[static_cast<size_t>(pi.dest)] = MValue::makeInt(
                    static_cast<int64_t>(fetch(pi.a).zext()), pi.bits);
                pc++;
                continue;
              case Opcode::fptosi:
                slots[static_cast<size_t>(pi.dest)] = MValue::makeInt(
                    ManagedEngine::satFptosi(fetch(pi.a).f), pi.bits);
                pc++;
                continue;
              case Opcode::fptoui:
                slots[static_cast<size_t>(pi.dest)] = MValue::makeInt(
                    static_cast<int64_t>(
                        ManagedEngine::satFptoui(fetch(pi.a).f)),
                    pi.bits);
                pc++;
                continue;
              case Opcode::sitofp:
                slots[static_cast<size_t>(pi.dest)] = MValue::makeFP(
                    static_cast<double>(fetch(pi.a).i), pi.bits);
                pc++;
                continue;
              case Opcode::uitofp:
                slots[static_cast<size_t>(pi.dest)] = MValue::makeFP(
                    static_cast<double>(fetch(pi.a).zext()), pi.bits);
                pc++;
                continue;
              case Opcode::fpext:
                slots[static_cast<size_t>(pi.dest)] =
                    MValue::makeFP(fetch(pi.a).f, 64);
                pc++;
                continue;
              case Opcode::fptrunc:
                slots[static_cast<size_t>(pi.dest)] =
                    MValue::makeFP(fetch(pi.a).f, 32);
                pc++;
                continue;
              case Opcode::p2Move:
                slots[static_cast<size_t>(pi.dest)] = fetch(pi.a);
                pc++;
                continue;
              case Opcode::p2Ret:
                // Inlined return: move the value to the call's slot and
                // jump to the continuation.
                if (pi.dest >= 0)
                    slots[static_cast<size_t>(pi.dest)] = fetch(pi.a);
                pc = static_cast<size_t>(pi.t0);
                continue;
              case Opcode::p2CallDirect: {
                CallSite &site = callSites_[static_cast<size_t>(
                    pi.callSite)];
                if (site.code == nullptr)
                    site.code = engine.tier2CodeFor(site.callee, " (IC)");
                std::vector<MValue> args;
                args.reserve(site.args.size());
                for (const POperand &op : site.args)
                    args.push_back(fetch(op));
                MValue v = engine.callCompiled(site.callee, site.code,
                                               std::move(args));
                if (pi.dest >= 0)
                    slots[static_cast<size_t>(pi.dest)] = std::move(v);
                pc++;
                continue;
              }
              case Opcode::p2CallIndirect: {
                CallSite &site = callSites_[static_cast<size_t>(
                    pi.callSite)];
                const MValue &target = fetch(pi.a);
                // Guard mirrors the interpreter's dispatch exactly; any
                // miss or special case drops to the interpreter path.
                if (target.kind == MValue::Kind::addrV &&
                    !target.a.isNull() &&
                    target.a.pointee->kind() ==
                        ObjectKind::functionObject &&
                    site.cachedFnId != kICMegamorphic) {
                    uint32_t id = static_cast<const FunctionObject *>(
                        target.a.pointee.get())->fnId();
                    uint32_t cachedBefore = site.cachedFnId;
                    if (site.cachedFnId == kICEmpty) {
                        const Function *fn = engine.module_->functionById(id);
                        if (fn != nullptr && !fn->isDeclaration() &&
                            !fn->isVarArg() &&
                            fn->numArgs() == site.args.size()) {
                            site.callee = fn;
                            site.code = engine.tier2CodeFor(fn, " (IC)");
                            site.cachedFnId = id;
                            if (engine.profiling_)
                                engine.telem_.icToMono++;
                        } else {
                            site.cachedFnId = kICMegamorphic;
                            if (engine.profiling_)
                                engine.telem_.icToMega++;
                        }
                    } else if (site.cachedFnId != id) {
                        site.cachedFnId = kICMegamorphic; // polymorphic
                        if (engine.profiling_)
                            engine.telem_.icToMega++;
                    }
                    if (site.cachedFnId == id) {
                        if (engine.profiling_ && cachedBefore == id)
                            engine.telem_.icHits++;
                        std::vector<MValue> args;
                        args.reserve(site.args.size());
                        for (const POperand &op : site.args)
                            args.push_back(fetch(op));
                        MValue v = engine.callCompiled(site.callee,
                                                       site.code,
                                                       std::move(args));
                        if (pi.dest >= 0) {
                            slots[static_cast<size_t>(pi.dest)] =
                                std::move(v);
                        }
                        pc++;
                        continue;
                    }
                }
                MValue v = engine.execInstruction(*pi.src, frame);
                if (pi.dest >= 0)
                    slots[static_cast<size_t>(pi.dest)] = std::move(v);
                pc++;
                continue;
              }
              case Opcode::unreachable_:
                throw EngineError("reached 'unreachable' in " +
                                  fn_->name());
              default: {
                // Remaining calls, ptrtoint/inttoptr: share the
                // interpreter path so semantics (mementos, varargs,
                // pinning) stay identical.
                MValue v = engine.execInstruction(*pi.src, frame);
                if (pi.src->slot() >= 0) {
                    slots[static_cast<size_t>(pi.src->slot())] =
                        std::move(v);
                }
                pc++;
                continue;
              }
            }
        }
    } catch (MemoryErrorException &error) {
        // A bug raised in spliced code belongs to the callee it was
        // inlined from — reports must name where the bug lives, not
        // where the compiler put the code. Nested real calls were
        // already attributed by their own frames.
        if (error.report().function.empty()) {
            for (const InlineRange &range : inlineRanges_) {
                if (pc >= range.begin && pc < range.end) {
                    error.report().function = range.callee->name();
                    break;
                }
            }
        }
        throw;
    }
}

} // namespace sulong
