#include "interp/tier2.h"

#include <chrono>
#include <thread>
#include <unordered_map>

namespace sulong
{

namespace
{

/** Follow boolean-widening aliases: zext(i1) and `icmp ne X, 0` where X
 *  is itself boolean-valued produce the same 0/1 payload as their source,
 *  so tier-2 reads the source slot directly. */
const Value *
canonical(const Value *v,
          const std::unordered_map<const Value *, const Value *> &aliases)
{
    auto it = aliases.find(v);
    while (it != aliases.end()) {
        v = it->second;
        it = aliases.find(v);
    }
    return v;
}

} // namespace

std::unique_ptr<CompiledFunction>
compileTier2(const Function &fn, ManagedEngine &engine)
{
    auto compiled = std::make_unique<CompiledFunction>(&fn);

    // --- Alias analysis (safe peephole; values stay identical) -----------
    std::unordered_map<const Value *, const Value *> aliases;
    for (const auto &bb : fn.blocks()) {
        for (const auto &inst : bb->insts()) {
            if (inst->op() == Opcode::zext &&
                inst->operand(0)->type()->kind() == TypeKind::i1) {
                aliases[inst.get()] = inst->operand(0);
            } else if (inst->op() == Opcode::icmp &&
                       inst->intPred() == IntPred::ne &&
                       inst->operand(1)->valueKind() ==
                           ValueKind::constantInt &&
                       static_cast<const ConstantInt *>(
                           inst->operand(1))->value() == 0) {
                const Value *src = canonical(inst->operand(0), aliases);
                bool src_bool = src->type()->kind() == TypeKind::i1 ||
                    (src->valueKind() == ValueKind::instruction &&
                     static_cast<const Instruction *>(src)->op() ==
                         Opcode::icmp);
                if (src_bool)
                    aliases[inst.get()] = src;
            }
        }
    }

    auto makeOperand = [&](const Value *v) {
        v = canonical(v, aliases);
        POperand op;
        switch (v->valueKind()) {
          case ValueKind::argument:
            op.isSlot = true;
            op.slot = static_cast<int32_t>(
                static_cast<const Argument *>(v)->index());
            return op;
          case ValueKind::instruction:
            op.isSlot = true;
            op.slot = static_cast<const Instruction *>(v)->slot();
            return op;
          case ValueKind::constantInt: {
            const auto *c = static_cast<const ConstantInt *>(v);
            op.constant = MValue::makeInt(c->value(),
                                          c->type()->intBits());
            return op;
          }
          case ValueKind::constantFP: {
            const auto *c = static_cast<const ConstantFP *>(v);
            op.constant = MValue::makeFP(
                c->value(), c->type()->kind() == TypeKind::f32 ? 32 : 64);
            return op;
          }
          case ValueKind::constantNull:
            op.constant = MValue::makeAddr(Address{});
            return op;
          case ValueKind::global:
            op.constant = MValue::makeAddr(engine.globals_->addressOf(
                static_cast<const GlobalVariable *>(v)));
            return op;
          case ValueKind::function:
            op.constant = MValue::makeAddr(engine.globals_->addressOf(
                static_cast<const Function *>(v)));
            return op;
        }
        throw InternalError("bad operand");
    };

    // --- Flatten blocks, fuse compare+branch -----------------------------
    std::map<const BasicBlock *, int32_t> &block_start =
        compiled->blockStart_;
    std::vector<std::pair<size_t, const BasicBlock *>> fixups;
    auto &code = compiled->code_;

    for (const auto &bb : fn.blocks()) {
        block_start[bb.get()] = static_cast<int32_t>(code.size());
        const auto &insts = bb->insts();
        for (size_t i = 0; i < insts.size(); i++) {
            const Instruction &inst = *insts[i];
            PInst pi;
            pi.op = inst.op();
            pi.src = &inst;
            pi.dest = inst.slot();
            if (inst.type()->isInteger())
                pi.bits = static_cast<uint8_t>(inst.type()->intBits());
            else if (inst.type()->kind() == TypeKind::f32)
                pi.bits = 32;
            else if (inst.type()->kind() == TypeKind::f64)
                pi.bits = 64;

            switch (inst.op()) {
              case Opcode::br:
                fixups.emplace_back(code.size(), inst.target(0));
                code.push_back(pi);
                break;
              case Opcode::condbr:
                pi.a = makeOperand(inst.operand(0));
                fixups.emplace_back(code.size(), inst.target(0));
                // t1 fixup shares the index; mark with the second target
                // through a sentinel entry right after.
                code.push_back(pi);
                fixups.emplace_back(code.size() - 1, inst.target(1));
                break;
              case Opcode::ret:
                if (inst.numOperands() == 1)
                    pi.a = makeOperand(inst.operand(0));
                else
                    pi.dest = -2; // void-return marker
                code.push_back(pi);
                break;
              case Opcode::icmp: {
                pi.pred = static_cast<uint8_t>(inst.intPred());
                pi.a = makeOperand(inst.operand(0));
                pi.b = makeOperand(inst.operand(1));
                // Fuse with a directly following condbr on this result.
                if (i + 1 < insts.size() &&
                    insts[i + 1]->op() == Opcode::condbr &&
                    canonical(insts[i + 1]->operand(0), aliases) == &inst) {
                    pi.fusedCmpBr = true;
                    fixups.emplace_back(code.size(),
                                        insts[i + 1]->target(0));
                    code.push_back(pi);
                    fixups.emplace_back(code.size() - 1,
                                        insts[i + 1]->target(1));
                    i++; // skip the condbr
                    break;
                }
                code.push_back(pi);
                break;
              }
              case Opcode::fcmp:
                pi.pred = static_cast<uint8_t>(inst.floatPred());
                pi.a = makeOperand(inst.operand(0));
                pi.b = makeOperand(inst.operand(1));
                code.push_back(pi);
                break;
              case Opcode::gep:
                pi.a = makeOperand(inst.operand(0));
                if (inst.numOperands() > 1)
                    pi.b = makeOperand(inst.operand(1));
                else
                    pi.b.slot = -1;
                pi.gepOff = inst.gepConstOffset();
                pi.gepScale = inst.gepScale();
                code.push_back(pi);
                break;
              case Opcode::load:
                pi.a = makeOperand(inst.operand(0));
                code.push_back(pi);
                break;
              case Opcode::store:
                pi.a = makeOperand(inst.operand(0));
                pi.b = makeOperand(inst.operand(1));
                code.push_back(pi);
                break;
              case Opcode::select:
                pi.a = makeOperand(inst.operand(0));
                code.push_back(pi);
                break;
              default:
                if (inst.numOperands() >= 1 && inst.op() != Opcode::call)
                    pi.a = makeOperand(inst.operand(0));
                if (inst.numOperands() >= 2 && inst.op() != Opcode::call)
                    pi.b = makeOperand(inst.operand(1));
                code.push_back(pi);
                break;
            }
        }
    }

    // Apply branch fixups: for condbr/fused entries the first fixup sets
    // t0 and the second (same index) sets t1.
    std::map<size_t, int> seen;
    for (const auto &[index, target] : fixups) {
        int n = seen[index]++;
        if (n == 0)
            code[index].t0 = block_start.at(target);
        else
            code[index].t1 = block_start.at(target);
    }

    return compiled;
}

MValue
CompiledFunction::execute(ManagedEngine &engine,
                          ManagedEngine::Frame &frame, size_t start_pc)
{
    auto &slots = frame.slots;
    auto fetch = [&](const POperand &op) -> const MValue & {
        return op.isSlot ? slots[static_cast<size_t>(op.slot)]
                         : op.constant;
    };

    size_t pc = start_pc;
    while (true) {
        const PInst &pi = code_[pc];
        engine.step();
        switch (pi.op) {
          case Opcode::br:
            pc = static_cast<size_t>(pi.t0);
            continue;
          case Opcode::condbr:
            pc = static_cast<size_t>(fetch(pi.a).i != 0 ? pi.t0 : pi.t1);
            continue;
          case Opcode::ret:
            if (pi.dest == -2)
                return MValue{};
            return fetch(pi.a);
          case Opcode::icmp: {
            bool out = ManagedEngine::evalICmp(
                static_cast<IntPred>(pi.pred), fetch(pi.a), fetch(pi.b));
            if (pi.dest >= 0) {
                slots[static_cast<size_t>(pi.dest)] =
                    MValue::makeInt(out ? 1 : 0, 1);
            }
            if (pi.fusedCmpBr) {
                pc = static_cast<size_t>(out ? pi.t0 : pi.t1);
                continue;
            }
            pc++;
            continue;
          }
          case Opcode::fcmp: {
            bool out = ManagedEngine::evalFCmp(
                static_cast<FloatPred>(pi.pred), fetch(pi.a), fetch(pi.b));
            slots[static_cast<size_t>(pi.dest)] =
                MValue::makeInt(out ? 1 : 0, 1);
            pc++;
            continue;
          }
          case Opcode::add: case Opcode::sub: case Opcode::mul:
          case Opcode::sdiv: case Opcode::udiv: case Opcode::srem:
          case Opcode::urem: case Opcode::and_: case Opcode::or_:
          case Opcode::xor_: case Opcode::shl: case Opcode::lshr:
          case Opcode::ashr: {
            int64_t out = ManagedEngine::evalIntBinOp(
                pi.op, fetch(pi.a), fetch(pi.b), pi.bits);
            slots[static_cast<size_t>(pi.dest)] =
                MValue::makeInt(out, pi.bits);
            pc++;
            continue;
          }
          case Opcode::fadd: case Opcode::fsub: case Opcode::fmul:
          case Opcode::fdiv: case Opcode::frem: {
            double out = ManagedEngine::evalFloatBinOp(
                pi.op, fetch(pi.a), fetch(pi.b), pi.bits);
            slots[static_cast<size_t>(pi.dest)] =
                MValue::makeFP(out, pi.bits);
            pc++;
            continue;
          }
          case Opcode::gep: {
            const MValue &base = fetch(pi.a);
            int64_t offset = pi.gepOff;
            if (pi.b.isSlot || pi.gepScale != 0) {
                offset += fetch(pi.b).i *
                    static_cast<int64_t>(pi.gepScale);
            }
            slots[static_cast<size_t>(pi.dest)] =
                MValue::makeAddr(base.a.withOffset(offset));
            pc++;
            continue;
          }
          case Opcode::load:
            slots[static_cast<size_t>(pi.dest)] = engine.loadFrom(
                fetch(pi.a).a, pi.src->accessType(), pi.src->loc());
            pc++;
            continue;
          case Opcode::store:
            engine.storeTo(fetch(pi.b).a, pi.src->accessType(),
                           fetch(pi.a), pi.src->loc());
            pc++;
            continue;
          case Opcode::trunc:
          case Opcode::sext:
            slots[static_cast<size_t>(pi.dest)] =
                MValue::makeInt(fetch(pi.a).i, pi.bits);
            pc++;
            continue;
          case Opcode::zext:
            slots[static_cast<size_t>(pi.dest)] = MValue::makeInt(
                static_cast<int64_t>(fetch(pi.a).zext()), pi.bits);
            pc++;
            continue;
          case Opcode::unreachable_:
            throw EngineError("reached 'unreachable' in " + fn_->name());
          default: {
            // Calls, allocas, rare casts: share the interpreter path so
            // semantics (mementos, varargs, pinning) stay identical.
            MValue v = engine.execInstruction(*pi.src, frame);
            if (pi.src->slot() >= 0)
                slots[static_cast<size_t>(pi.src->slot())] = std::move(v);
            pc++;
            continue;
          }
        }
    }
}

} // namespace sulong
