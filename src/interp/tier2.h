/**
 * @file
 * Tier-2 execution: the stand-in for Graal's dynamic compilation.
 *
 * When a function gets hot, it is "compiled": its blocks are flattened
 * into a pre-decoded instruction array with resolved operand descriptors
 * (slot index or pre-built constant MValue, globals resolved to managed
 * Addresses), direct branch-target indices, and safe peephole fusions
 * (compare+branch fusion, boolean-widening alias elimination). All
 * checks of the managed object model remain in place: like Graal, this
 * tier optimizes under safe semantics and can never optimize a bug away
 * (paper Sections 3.1/3.4).
 */

#ifndef MS_INTERP_TIER2_H
#define MS_INTERP_TIER2_H

#include "interp/managed_engine.h"

namespace sulong
{

/** One pre-decoded operand: a frame slot or a ready-made constant. */
struct POperand
{
    bool isSlot = false;
    int32_t slot = 0;
    MValue constant;
};

/** One pre-decoded instruction. */
struct PInst
{
    Opcode op = Opcode::unreachable_;
    /// Fused icmp+condbr (targets in t0/t1, predicate in pred).
    bool fusedCmpBr = false;
    uint8_t bits = 32;
    uint8_t pred = 0;
    int32_t dest = -1;
    int32_t t0 = 0;
    int32_t t1 = 0;
    int64_t gepOff = 0;
    uint64_t gepScale = 0;
    POperand a;
    POperand b;
    /// Original instruction (loc, access type, call site, fallback).
    const Instruction *src = nullptr;
};

/**
 * A tier-2 compiled function body.
 */
class CompiledFunction
{
  public:
    explicit CompiledFunction(const Function *fn) : fn_(fn) {}

    /**
     * Execute on the given frame (same semantics as the interpreter).
     * @param start_pc  pre-decoded index to begin at — block entries
     *                  only; used by on-stack replacement to enter
     *                  mid-function with the interpreter's live frame.
     */
    MValue execute(ManagedEngine &engine, ManagedEngine::Frame &frame,
                   size_t start_pc = 0);

    size_t codeSize() const { return code_.size(); }

    /** Pre-decoded entry index of a basic block (for OSR). */
    size_t
    entryFor(const BasicBlock *bb) const
    {
        return static_cast<size_t>(blockStart_.at(bb));
    }

  private:
    friend std::unique_ptr<CompiledFunction>
    compileTier2(const Function &fn, ManagedEngine &engine);

    const Function *fn_;
    std::vector<PInst> code_;
    std::map<const BasicBlock *, int32_t> blockStart_;
};

/** Pre-decode @p fn (resolving globals through the engine's state). */
std::unique_ptr<CompiledFunction> compileTier2(const Function &fn,
                                               ManagedEngine &engine);

} // namespace sulong

#endif // MS_INTERP_TIER2_H
