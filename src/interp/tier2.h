/**
 * @file
 * Tier-2 execution: the stand-in for Graal's dynamic compilation.
 *
 * When a function gets hot, it is "compiled": its blocks are flattened
 * into a pre-decoded instruction array with resolved operand descriptors
 * (slot index or constant-pool index, globals resolved to managed
 * Addresses), direct branch-target indices, and safe superinstruction
 * fusion (compare+branch, load+arith, arith+store). On top of that the
 * optimizing layer adds profile-guided inlining of small hot callees
 * (slots renamed, spliced in place of the call), call inline caches for
 * the remaining monomorphic sites, and a redundant-check elision pass
 * that caches pointee resolution per address slot and per access site.
 *
 * All checks of the managed object model remain in place: like Graal,
 * this tier optimizes under safe semantics and can never optimize a bug
 * away (paper Sections 3.1/3.4). Elision only short-circuits the
 * aggregate *walk* to an already-resolved leaf; the leaf's liveness,
 * bounds, type, and initialization checks run on every access.
 */

#ifndef MS_INTERP_TIER2_H
#define MS_INTERP_TIER2_H

#include <unordered_map>

#include "interp/managed_engine.h"

namespace sulong
{

/** One pre-decoded operand: a frame slot or a constant-pool index. */
struct POperand
{
    bool isSlot = false;
    int32_t index = 0; ///< slot number, or constant-pool index
};

/// PInst::flags bits.
enum : uint8_t
{
    /// icmp fused with the directly following condbr (targets t0/t1).
    kPFuseCmpBr = 1 << 0,
    /// A preceding load was fused in: perform it first (address in
    /// loadAddr, result into destLoad), then evaluate as usual.
    kPFuseLoad = 1 << 1,
    /// The directly following store was fused in: after writing dest,
    /// store the result through operand c.
    kPFuseStore = 1 << 2,
    /// The (fused) load participates in the per-slot resolution cache.
    kPElideLoad = 1 << 3,
    /// The (fused) store participates in the per-slot resolution cache.
    kPElideStore = 1 << 4,
};

/** One pre-decoded instruction. */
struct PInst
{
    Opcode op = Opcode::unreachable_;
    uint8_t bits = 32;
    uint8_t pred = 0;
    uint8_t flags = 0;
    int32_t dest = -1;     ///< result slot (-1 none, -2 void-return)
    int32_t destLoad = -1; ///< fused load's own result slot
    int32_t t0 = 0;
    int32_t t1 = 0;
    int64_t gepOff = 0;
    uint64_t gepScale = 0;
    POperand a;
    POperand b;
    POperand c;        ///< select's third operand / fused store address
    POperand loadAddr; ///< fused load's address operand
    int32_t icLoad = -1;   ///< access-cache index of the (fused) load
    int32_t icStore = -1;  ///< access-cache index of the (fused) store
    int32_t callSite = -1; ///< call-site index of p2Call* ops
    /// Original instruction (loc, access type, call site, fallback).
    const Instruction *src = nullptr;
    const Instruction *srcLoad = nullptr;  ///< fused preceding load
    const Instruction *srcStore = nullptr; ///< fused following store
};

/// Inline-cache states of an indirect call site.
constexpr uint32_t kICEmpty = ~0u;
constexpr uint32_t kICMegamorphic = ~0u - 1;

/** A non-inlined call site with an inline cache (paper: FunctionAddress
 *  ids back Sulong's call inline caches). */
struct CallSite
{
    std::vector<POperand> args;
    const Function *callee = nullptr; ///< cached target
    CompiledFunction *code = nullptr; ///< compiled on first dispatch
    uint32_t cachedFnId = kICEmpty;   ///< indirect-site guard/state
};

/** Per-site monomorphic struct-shape cache: which field of which struct
 *  type this access last resolved to. A hit re-checks liveness and the
 *  field span, then goes straight to the field object (whose own checks
 *  still run); any mismatch takes the full resolve path and refills. */
struct AccessCache
{
    const Type *structType = nullptr;
    uint32_t fieldIndex = 0;
    int64_t fieldOffset = 0;
    int64_t fieldSize = 0;
};

/** Cached resolution of the address last seen in one frame slot. Holds
 *  a real reference to the root object so the cached leaf can never
 *  dangle or be recycled; a hit additionally re-proves the resolution
 *  structurally (same object, offset, width, and not freed), so only
 *  call boundaries move the epoch (free/realloc live behind calls).
 *  epoch 0 marks an entry that must not hit (sub-object-spanning
 *  access; the engine's epoch counter starts at 1). */
struct SlotResolution
{
    uint64_t epoch = 0;
    ObjRef obj;
    int64_t offset = 0;
    uint32_t size = 0;
    ManagedObject *leaf = nullptr; ///< sub-object owned by obj
    int64_t leafOffset = 0;
};

/** One spliced callee's pc range, innermost first, for attributing a
 *  bug raised in inlined code to the callee it lives in. */
struct InlineRange
{
    size_t begin = 0;
    size_t end = 0;
    const Function *callee = nullptr;
};

class Tier3Code;

/**
 * A tier-2 compiled function body.
 */
class CompiledFunction
{
  public:
    // Ctor/dtor out of line: Tier3Code is incomplete here (tier3Owner_).
    explicit CompiledFunction(const Function *fn);
    ~CompiledFunction();

    /**
     * Execute on the given frame (same semantics as the interpreter).
     * @param start_pc  pre-decoded index to begin at — block entries
     *                  only; used by on-stack replacement to enter
     *                  mid-function with the interpreter's live frame.
     * @param allow_osr3  count loop back-edges and OSR into tier-3 when
     *                  hot; off when tier-3 itself resumes here after a
     *                  deopt (no ping-pong re-entry).
     */
    MValue execute(ManagedEngine &engine, ManagedEngine::Frame &frame,
                   size_t start_pc = 0, bool allow_osr3 = true);

    size_t codeSize() const { return code_.size(); }

    /** Frame slots needed (the function's own plus inlined bodies'). */
    uint32_t frameSize() const { return frameSize_; }

    /** Call sites spliced into this body by inlining. */
    unsigned inlinedSites() const
    {
        return static_cast<unsigned>(inlineRanges_.size());
    }

    /** Pre-decoded entry index of a basic block (for OSR). */
    size_t
    entryFor(const BasicBlock *bb) const
    {
        return static_cast<size_t>(blockStart_.at(bb));
    }

  private:
    friend class Tier2Compiler;
    friend class Tier3Code;
    friend class ManagedEngine;
    friend std::unique_ptr<Tier3Code>
    translateTier3(const Function &fn, CompiledFunction &t2,
                   ManagedEngine &engine);

    /**
     * Checked load/store through the elision caches. @p shape_miss,
     * when given, tracks the access site's consecutive shape-cache miss
     * streak (reset on a hit) so tier-3 can deopt a site that went
     * polymorphic; tier-2 itself never needs it.
     */
    MValue loadAt(ManagedEngine &engine, const Address &addr,
                  const Instruction *src, int32_t ic, SlotResolution *sr,
                  uint16_t *shape_miss = nullptr);
    void storeAt(ManagedEngine &engine, const Address &addr,
                 const Instruction *src, const MValue &v, int32_t ic,
                 SlotResolution *sr, uint16_t *shape_miss = nullptr);
    static ManagedObject *resolveLeaf(ManagedObject *obj, int64_t offset,
                                      unsigned size, bool is_write,
                                      int64_t &leaf_offset);
    static void fillAccessCache(AccessCache &cache,
                                const StructObject *sobj, int64_t offset,
                                uint32_t size);

    const Function *fn_;
    std::vector<PInst> code_;
    std::vector<MValue> constants_;
    std::unordered_map<const BasicBlock *, int32_t> blockStart_;
    uint32_t frameSize_ = 0;
    std::vector<CallSite> callSites_;
    std::vector<AccessCache> accessCaches_;
    std::vector<SlotResolution> slotRes_;
    std::vector<InlineRange> inlineRanges_;

    // --- tier-3 state (owned here so the hot lookup is one load) ---
    /// Tier-2 activations since the last (re)translation; crossing
    /// ManagedOptions::tier3Threshold triggers tier-3 translation.
    uint32_t activations_ = 0;
    /// Times tier-3 code for this function was invalidated; two strikes
    /// bar the function from retranslation (megamorphism is sticky).
    uint8_t tier3Fails_ = 0;
    Tier3Code *tier3_ = nullptr; ///< hot pointer (null = not translated)
    std::unique_ptr<Tier3Code> tier3Owner_;
};

/** Pre-decode @p fn (resolving globals through the engine's state). */
std::unique_ptr<CompiledFunction> compileTier2(const Function &fn,
                                               ManagedEngine &engine);

} // namespace sulong

#endif // MS_INTERP_TIER2_H
