/**
 * @file
 * Lexer (with a minimal preprocessor) for mini-C.
 *
 * Preprocessing supported: `//` and block comments, `#include` lines
 * (ignored — the standard library is linked by the driver, declarations
 * are injected), and object-like `#define NAME replacement` macros whose
 * replacement is a token sequence substituted during lexing. That covers
 * the corpus, the benchmarks, and our libc sources; function-like macros
 * are rejected with a diagnostic.
 */

#ifndef MS_FRONTEND_LEXER_H
#define MS_FRONTEND_LEXER_H

#include <map>
#include <vector>

#include "frontend/token.h"

namespace sulong
{

/**
 * Lexes a whole source buffer into a token vector up front. Errors are
 * reported to the DiagnosticEngine; lexing continues after errors so the
 * parser can report more problems in one run.
 */
class Lexer
{
  public:
    Lexer(std::string file_name, std::string_view source,
          DiagnosticEngine &diags);

    /** Lex everything; the result always ends with an eof token. */
    std::vector<Token> lexAll();

  private:
    Token next();
    Token makeToken(Tok kind);
    char peek(size_t ahead = 0) const;
    char advance();
    bool match(char expected);
    void skipWhitespaceAndComments();
    void handleDirective();
    Token lexIdentifier();
    Token lexNumber();
    Token lexCharLiteral();
    Token lexStringLiteral();
    int decodeEscape();
    SourceLoc here() const;

    std::string file_;
    std::string source_;
    DiagnosticEngine &diags_;
    size_t pos_ = 0;
    uint32_t line_ = 1;
    uint32_t col_ = 1;
    std::map<std::string, std::vector<Token>> macros_;
};

} // namespace sulong

#endif // MS_FRONTEND_LEXER_H
