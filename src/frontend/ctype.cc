#include "frontend/ctype.h"

#include "support/diagnostics.h"

namespace sulong
{

int
CType::intRank() const
{
    switch (kind_) {
      case CTypeKind::charTy: case CTypeKind::ucharTy: return 1;
      case CTypeKind::shortTy: case CTypeKind::ushortTy: return 2;
      case CTypeKind::intTy: case CTypeKind::uintTy: return 3;
      case CTypeKind::longTy: case CTypeKind::ulongTy: return 4;
      default:
        throw InternalError("intRank() on non-integer");
    }
}

const CField *
CType::fieldNamed(const std::string &name) const
{
    for (const auto &field : fields_) {
        if (field.name == name)
            return &field;
    }
    return nullptr;
}

std::string
CType::toString() const
{
    switch (kind_) {
      case CTypeKind::voidTy: return "void";
      case CTypeKind::charTy: return "char";
      case CTypeKind::ucharTy: return "unsigned char";
      case CTypeKind::shortTy: return "short";
      case CTypeKind::ushortTy: return "unsigned short";
      case CTypeKind::intTy: return "int";
      case CTypeKind::uintTy: return "unsigned int";
      case CTypeKind::longTy: return "long";
      case CTypeKind::ulongTy: return "unsigned long";
      case CTypeKind::floatTy: return "float";
      case CTypeKind::doubleTy: return "double";
      case CTypeKind::pointer: return elem_->toString() + " *";
      case CTypeKind::array:
        return elem_->toString() + " [" + std::to_string(arrayLen_) + "]";
      case CTypeKind::structTy: return "struct " + name_;
      case CTypeKind::function: {
        std::string s = elem_->toString() + " (";
        for (size_t i = 0; i < params_.size(); i++) {
            if (i)
                s += ", ";
            s += params_[i]->toString();
        }
        if (varArg_)
            s += params_.empty() ? "..." : ", ...";
        return s + ")";
      }
    }
    return "<bad-ctype>";
}

CTypeContext::CTypeContext(TypeContext &ir_types) : irTypes_(ir_types)
{
    static const CTypeKind kinds[11] = {
        CTypeKind::voidTy, CTypeKind::charTy, CTypeKind::ucharTy,
        CTypeKind::shortTy, CTypeKind::ushortTy, CTypeKind::intTy,
        CTypeKind::uintTy, CTypeKind::longTy, CTypeKind::ulongTy,
        CTypeKind::floatTy, CTypeKind::doubleTy,
    };
    for (int i = 0; i < 11; i++)
        basics_[i].kind_ = kinds[i];
}

CType *
CTypeContext::allocate()
{
    owned_.push_back(std::unique_ptr<CType>(new CType()));
    return owned_.back().get();
}

const CType *
CTypeContext::pointerTo(const CType *pointee)
{
    auto it = pointers_.find(pointee);
    if (it != pointers_.end())
        return it->second;
    CType *type = allocate();
    type->kind_ = CTypeKind::pointer;
    type->elem_ = pointee;
    pointers_[pointee] = type;
    return type;
}

const CType *
CTypeContext::arrayOf(const CType *elem, uint64_t count)
{
    auto key = std::make_pair(elem, count);
    auto it = arrays_.find(key);
    if (it != arrays_.end())
        return it->second;
    CType *type = allocate();
    type->kind_ = CTypeKind::array;
    type->elem_ = elem;
    type->arrayLen_ = count;
    arrays_[key] = type;
    return type;
}

const CType *
CTypeContext::declareStruct(const std::string &tag)
{
    std::string name = tag;
    if (name.empty())
        name = ".anon" + std::to_string(anonStructCount_++);
    auto it = structs_.find(name);
    if (it != structs_.end())
        return it->second;
    CType *type = allocate();
    type->kind_ = CTypeKind::structTy;
    type->name_ = name;
    structs_[name] = type;
    return type;
}

void
CTypeContext::completeStruct(const CType *struct_type,
                             std::vector<CField> fields)
{
    auto it = structs_.find(struct_type->structName());
    if (it == structs_.end())
        throw InternalError("completing unknown struct");
    CType *mut = it->second;
    if (mut->structComplete_)
        return; // redefinition handled by the parser with a diagnostic
    mut->fields_ = std::move(fields);
    mut->structComplete_ = true;
}

const CType *
CTypeContext::findStruct(const std::string &tag) const
{
    auto it = structs_.find(tag);
    return it == structs_.end() ? nullptr : it->second;
}

const CType *
CTypeContext::functionType(const CType *ret,
                           std::vector<const CType *> params, bool var_arg)
{
    std::string key = ret->toString() + "(";
    for (const CType *param : params)
        key += param->toString() + ",";
    if (var_arg)
        key += "...";
    key += ")";
    auto it = functions_.find(key);
    if (it != functions_.end())
        return it->second;
    CType *type = allocate();
    type->kind_ = CTypeKind::function;
    type->elem_ = ret;
    type->params_ = std::move(params);
    type->varArg_ = var_arg;
    functions_[key] = type;
    return type;
}

uint64_t
CTypeContext::sizeOf(const CType *type)
{
    return lower(type)->size();
}

const Type *
CTypeContext::lower(const CType *type)
{
    switch (type->kind()) {
      case CTypeKind::voidTy: return irTypes_.voidTy();
      case CTypeKind::charTy: case CTypeKind::ucharTy:
        return irTypes_.i8();
      case CTypeKind::shortTy: case CTypeKind::ushortTy:
        return irTypes_.i16();
      case CTypeKind::intTy: case CTypeKind::uintTy:
        return irTypes_.i32();
      case CTypeKind::longTy: case CTypeKind::ulongTy:
        return irTypes_.i64();
      case CTypeKind::floatTy: return irTypes_.f32();
      case CTypeKind::doubleTy: return irTypes_.f64();
      case CTypeKind::pointer: return irTypes_.ptr();
      case CTypeKind::array:
        return irTypes_.arrayType(lower(type->elemType()),
                                  type->arrayLength());
      case CTypeKind::structTy: {
        auto it = loweredStructs_.find(type);
        if (it != loweredStructs_.end())
            return it->second;
        std::vector<std::pair<std::string, const Type *>> fields;
        for (const CField &field : type->fields())
            fields.emplace_back(field.name, lower(field.type));
        const Type *ir = irTypes_.structType(type->structName(), fields);
        loweredStructs_[type] = ir;
        return ir;
      }
      case CTypeKind::function: {
        std::vector<const Type *> params;
        for (const CType *param : type->paramTypes())
            params.push_back(lower(param));
        return irTypes_.functionType(lower(type->returnType()),
                                     std::move(params), type->isVarArg());
      }
    }
    throw InternalError("lower(): bad type");
}

const CType *
CTypeContext::promote(const CType *type) const
{
    if (!type->isInteger())
        return type;
    if (type->intRank() < intTy()->intRank())
        return intTy(); // all sub-int types fit in int on LP64
    return type;
}

const CType *
CTypeContext::usualArithmetic(const CType *lhs, const CType *rhs) const
{
    if (lhs->kind() == CTypeKind::doubleTy ||
        rhs->kind() == CTypeKind::doubleTy) {
        return doubleTy();
    }
    if (lhs->kind() == CTypeKind::floatTy ||
        rhs->kind() == CTypeKind::floatTy) {
        return floatTy();
    }
    const CType *l = promote(lhs);
    const CType *r = promote(rhs);
    if (l == r)
        return l;
    bool l_signed = l->isSignedInt();
    bool r_signed = r->isSignedInt();
    int l_rank = l->intRank();
    int r_rank = r->intRank();
    if (l_signed == r_signed)
        return l_rank >= r_rank ? l : r;
    const CType *u = l_signed ? r : l;
    const CType *s = l_signed ? l : r;
    int u_rank = u->intRank();
    int s_rank = s->intRank();
    if (u_rank >= s_rank)
        return u;
    // Signed type has higher rank; on LP64 it can represent all values of
    // the lower-ranked unsigned type.
    return s;
}

} // namespace sulong
