#include "frontend/codegen.h"

namespace sulong
{

CodeGen::CodeGen(Module &module, CTypeContext &types, DiagnosticEngine &diags)
    : module_(module), types_(types), diags_(diags), builder_(module)
{}

void
CodeGen::semaError(const SourceLoc &loc, const std::string &message)
{
    diags_.error(loc, message);
    throw SemaAbort{};
}

BasicBlock *
CodeGen::newBlock(const std::string &hint)
{
    return curFn_->addBlock(hint + std::to_string(blockCount_++));
}

Instruction *
CodeGen::createLocalAlloca(const Type *type, std::string name)
{
    // Allocas live in the (unterminated while building) entry block so
    // that a declaration inside a loop body reuses one stack object per
    // call, exactly like Clang -O0 output.
    auto inst = std::make_unique<Instruction>(Opcode::alloca_,
                                              module_.types().ptr());
    inst->setAccessType(type);
    inst->setName(std::move(name));
    inst->setLoc(builder_.loc());
    return entryBlock_->append(std::move(inst));
}

CodeGen::LocalVar *
CodeGen::findLocal(const std::string &name)
{
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
        auto found = it->find(name);
        if (found != it->end())
            return &found->second;
    }
    return nullptr;
}

// -----------------------------------------------------------------------
// Top level
// -----------------------------------------------------------------------

void
CodeGen::generate(const TranslationUnit &unit)
{
    unit_ = &unit;
    declareFunctions(unit);
    emitGlobals(unit);
    for (const auto &fn : unit.functions) {
        if (fn->body != nullptr) {
            try {
                emitFunction(*fn);
            } catch (const SemaAbort &) {
                // Diagnostics already recorded; continue with next function.
            }
        }
    }
}

void
CodeGen::declareFunctions(const TranslationUnit &unit)
{
    for (const auto &fn : unit.functions) {
        auto known = functionTypes_.find(fn->name);
        if (known != functionTypes_.end()) {
            if (known->second != fn->type) {
                diags_.error(fn->loc, "conflicting declaration of '" +
                             fn->name + "'");
            }
            continue;
        }
        functionTypes_[fn->name] = fn->type;
        module_.addFunction(types_.lower(fn->type), fn->name);
    }
}

void
CodeGen::emitGlobals(const TranslationUnit &unit)
{
    // Merge declarations by name; the one with an initializer defines.
    std::vector<const VarDecl *> order;
    std::unordered_map<std::string, const VarDecl *> chosen;
    for (const auto &var : unit.globals) {
        auto it = chosen.find(var.name);
        if (it == chosen.end()) {
            chosen[var.name] = &var;
            order.push_back(&var);
        } else if (var.init != nullptr) {
            if (it->second->init != nullptr) {
                diags_.error(var.loc,
                             "redefinition of global '" + var.name + "'");
            }
            it->second = &var;
            for (auto &slot : order) {
                if (slot->name == var.name)
                    slot = &var;
            }
        }
    }
    // Phase 1: create all globals (zero-initialized) so initializers can
    // reference globals declared later in the file.
    std::vector<std::pair<const VarDecl *, const CType *>> created;
    for (const VarDecl *var : order) {
        const CType *type = var->type;
        // Infer incomplete array lengths from the initializer.
        if (type->isArray() && type->arrayLength() == 0 &&
            var->init != nullptr) {
            if (var->init->kind == ExprKind::initList) {
                auto &list = static_cast<const InitListExpr &>(*var->init);
                type = types_.arrayOf(type->elemType(), list.elems.size());
            } else if (var->init->kind == ExprKind::stringLit) {
                auto &lit = static_cast<const StringLitExpr &>(*var->init);
                type = types_.arrayOf(type->elemType(),
                                      lit.value.size() + 1);
            }
        }
        globalTypes_[var->name] = type;
        module_.addGlobal(types_.lower(type), var->name,
                          Initializer::makeZero());
        created.emplace_back(var, type);
    }
    // Phase 2: compute and attach the real initializers.
    for (const auto &[var, type] : created) {
        if (var->init == nullptr)
            continue;
        try {
            module_.findGlobal(var->name)->setInit(
                constInitializer(var->init.get(), type));
        } catch (const SemaAbort &) {
            // Diagnostic already recorded; keep the zero initializer.
        }
    }
}

Initializer
CodeGen::constInitializer(const Expr *init, const CType *type)
{
    if (init == nullptr)
        return Initializer::makeZero();
    switch (init->kind) {
      case ExprKind::initList: {
        const auto &list = static_cast<const InitListExpr &>(*init);
        // `{ "str" }` initializing a char array unwraps to the string.
        if (type->isArray() && !list.elems.empty() &&
            list.elems[0]->kind == ExprKind::stringLit &&
            types_.sizeOf(type->elemType()) == 1) {
            return constInitializer(list.elems[0].get(), type);
        }
        Initializer out;
        if (type->isArray()) {
            out.kind = Initializer::Kind::array;
            uint64_t len = type->arrayLength();
            if (list.elems.size() > len)
                semaError(init->loc, "too many initializers");
            for (uint64_t i = 0; i < len; i++) {
                out.elems.push_back(
                    i < list.elems.size()
                        ? constInitializer(list.elems[i].get(),
                                           type->elemType())
                        : Initializer::makeZero());
            }
            return out;
        }
        if (type->isStruct()) {
            out.kind = Initializer::Kind::structVal;
            const auto &fields = type->fields();
            if (list.elems.size() > fields.size())
                semaError(init->loc, "too many initializers");
            for (size_t i = 0; i < fields.size(); i++) {
                out.elems.push_back(
                    i < list.elems.size()
                        ? constInitializer(list.elems[i].get(),
                                           fields[i].type)
                        : Initializer::makeZero());
            }
            return out;
        }
        if (list.elems.size() != 1)
            semaError(init->loc, "invalid scalar initializer list");
        return constInitializer(list.elems[0].get(), type);
      }
      case ExprKind::stringLit: {
        const auto &lit = static_cast<const StringLitExpr &>(*init);
        if (type->isArray()) {
            std::string bytes = lit.value;
            bytes.push_back('\0');
            uint64_t len = type->arrayLength();
            if (bytes.size() > len)
                semaError(init->loc, "string too long for array");
            bytes.resize(len, '\0');
            return Initializer::makeBytes(std::move(bytes));
        }
        if (type->isPointer())
            return Initializer::makeGlobalRef(stringLiteral(lit.value));
        semaError(init->loc, "invalid string initializer");
      }
      case ExprKind::ident: {
        const auto &ident = static_cast<const IdentExpr &>(*init);
        auto ec = unit_->enumConstants.find(ident.name);
        if (ec != unit_->enumConstants.end()) {
            if (type->isFloat())
                return Initializer::makeFP(
                    static_cast<double>(ec->second));
            return Initializer::makeInt(ec->second);
        }
        // &array-decay or function reference.
        if (type->isPointer()) {
            Function *fn = module_.findFunction(ident.name);
            if (fn != nullptr)
                return Initializer::makeFunctionRef(fn);
            GlobalVariable *g = module_.findGlobal(ident.name);
            if (g != nullptr)
                return Initializer::makeGlobalRef(g);
        }
        semaError(init->loc, "initializer is not constant");
      }
      case ExprKind::unary: {
        const auto &un = static_cast<const UnaryExpr &>(*init);
        if (un.op == UnaryOp::addrOf &&
            un.operand->kind == ExprKind::ident) {
            const auto &ident =
                static_cast<const IdentExpr &>(*un.operand);
            GlobalVariable *g = module_.findGlobal(ident.name);
            if (g != nullptr)
                return Initializer::makeGlobalRef(g);
            Function *fn = module_.findFunction(ident.name);
            if (fn != nullptr)
                return Initializer::makeFunctionRef(fn);
        }
        break;
      }
      default:
        break;
    }
    // Fall back to arithmetic constant evaluation.
    if (type->isFloat()) {
        struct FpEval
        {
            CodeGen &cg;
            double
            run(const Expr &e)
            {
                switch (e.kind) {
                  case ExprKind::floatLit:
                    return static_cast<const FloatLitExpr &>(e).value;
                  case ExprKind::intLit:
                    return static_cast<double>(
                        static_cast<const IntLitExpr &>(e).value);
                  case ExprKind::ident: {
                    const auto &id = static_cast<const IdentExpr &>(e);
                    auto it = cg.unit_->enumConstants.find(id.name);
                    if (it != cg.unit_->enumConstants.end())
                        return static_cast<double>(it->second);
                    // Reference to a previously defined const double
                    // global with a scalar initializer.
                    GlobalVariable *g = cg.module_.findGlobal(id.name);
                    if (g != nullptr &&
                        g->init().kind == Initializer::Kind::fpVal) {
                        return g->init().fpValue;
                    }
                    if (g != nullptr &&
                        g->init().kind == Initializer::Kind::intVal) {
                        return static_cast<double>(g->init().intValue);
                    }
                    cg.semaError(e.loc, "initializer is not constant");
                  }
                  case ExprKind::unary: {
                    const auto &un = static_cast<const UnaryExpr &>(e);
                    if (un.op == UnaryOp::neg)
                        return -run(*un.operand);
                    cg.semaError(e.loc, "initializer is not constant");
                  }
                  case ExprKind::cast:
                    return run(*static_cast<const CastExpr &>(e).operand);
                  case ExprKind::binary: {
                    const auto &bin = static_cast<const BinaryExpr &>(e);
                    double l = run(*bin.lhs);
                    double r = run(*bin.rhs);
                    switch (bin.op) {
                      case BinaryOp::add: return l + r;
                      case BinaryOp::sub: return l - r;
                      case BinaryOp::mul: return l * r;
                      case BinaryOp::div: return l / r;
                      default:
                        cg.semaError(e.loc, "initializer is not constant");
                    }
                  }
                  default:
                    cg.semaError(e.loc,
                                 "unsupported constant float initializer");
                }
            }
        };
        return Initializer::makeFP(FpEval{*this}.run(*init));
    }
    if (type->isInteger() || type->isPointer()) {
        // Reuse the parser-style integer evaluator via a local walk.
        struct Eval
        {
            CodeGen &cg;
            int64_t
            run(const Expr &e)
            {
                switch (e.kind) {
                  case ExprKind::intLit:
                    return static_cast<int64_t>(
                        static_cast<const IntLitExpr &>(e).value);
                  case ExprKind::ident: {
                    const auto &id = static_cast<const IdentExpr &>(e);
                    auto it = cg.unit_->enumConstants.find(id.name);
                    if (it != cg.unit_->enumConstants.end())
                        return it->second;
                    cg.semaError(e.loc, "initializer is not constant");
                  }
                  case ExprKind::sizeofExpr: {
                    const auto &so = static_cast<const SizeofExpr &>(e);
                    if (so.typeOperand != nullptr)
                        return static_cast<int64_t>(
                            cg.types_.sizeOf(so.typeOperand));
                    cg.semaError(e.loc, "unsupported sizeof initializer");
                  }
                  case ExprKind::unary: {
                    const auto &un = static_cast<const UnaryExpr &>(e);
                    int64_t v = run(*un.operand);
                    switch (un.op) {
                      case UnaryOp::neg: return -v;
                      case UnaryOp::bitNot: return ~v;
                      case UnaryOp::logicalNot: return v == 0;
                      default:
                        cg.semaError(e.loc, "initializer is not constant");
                    }
                  }
                  case ExprKind::cast: {
                    const auto &cast = static_cast<const CastExpr &>(e);
                    return run(*cast.operand);
                  }
                  case ExprKind::binary: {
                    const auto &bin = static_cast<const BinaryExpr &>(e);
                    int64_t l = run(*bin.lhs);
                    int64_t r = run(*bin.rhs);
                    switch (bin.op) {
                      case BinaryOp::add: return l + r;
                      case BinaryOp::sub: return l - r;
                      case BinaryOp::mul: return l * r;
                      case BinaryOp::div:
                        if (r == 0)
                            cg.semaError(e.loc, "division by zero");
                        return l / r;
                      case BinaryOp::rem:
                        if (r == 0)
                            cg.semaError(e.loc, "division by zero");
                        return l % r;
                      case BinaryOp::shl: return l << (r & 63);
                      case BinaryOp::shr: return l >> (r & 63);
                      case BinaryOp::bitAnd: return l & r;
                      case BinaryOp::bitOr: return l | r;
                      case BinaryOp::bitXor: return l ^ r;
                      case BinaryOp::lt: return l < r;
                      case BinaryOp::gt: return l > r;
                      case BinaryOp::le: return l <= r;
                      case BinaryOp::ge: return l >= r;
                      case BinaryOp::eq: return l == r;
                      case BinaryOp::ne: return l != r;
                      default:
                        cg.semaError(e.loc, "initializer is not constant");
                    }
                  }
                  default:
                    cg.semaError(e.loc, "initializer is not constant");
                }
            }
        };
        int64_t value = Eval{*this}.run(*init);
        if (type->isPointer() && value == 0)
            return Initializer::makeZero();
        return Initializer::makeInt(value);
    }
    semaError(init->loc, "unsupported constant initializer");
}

// -----------------------------------------------------------------------
// Functions
// -----------------------------------------------------------------------

void
CodeGen::emitFunction(const FunctionDecl &decl)
{
    Function *fn = module_.findFunction(decl.name);
    if (!fn->blocks().empty()) {
        diags_.error(decl.loc, "redefinition of function '" + decl.name + "'");
        return;
    }
    curFn_ = fn;
    fn->setSourceFile(decl.loc.file);
    curFnType_ = decl.type;
    blockCount_ = 0;
    scopes_.clear();
    pushScope();

    BasicBlock *entry = fn->addBlock("entry");
    BasicBlock *body = newBlock("body");
    entryBlock_ = entry;
    builder_.setInsertPoint(entry);
    builder_.setLoc(decl.loc);

    // Spill parameters into allocas so they are addressable (Clang -O0).
    const auto &params = decl.type->paramTypes();
    for (unsigned i = 0; i < params.size(); i++) {
        std::string name = i < decl.paramNames.size()
            ? decl.paramNames[i] : "";
        Instruction *slot =
            builder_.createAlloca(types_.lower(params[i]), name);
        builder_.createStore(fn->arg(i), slot);
        if (!name.empty())
            scopes_.back()[name] = LocalVar{slot, params[i]};
    }
    builder_.setInsertPoint(body);

    emitStmt(*decl.body);

    if (!builder_.blockTerminated()) {
        const CType *ret = decl.type->returnType();
        if (ret->isVoid())
            builder_.createRet();
        else
            builder_.createRet(zeroValue(ret));
    }
    // Terminate the entry block now that all allocas are hoisted into it.
    builder_.setInsertPoint(entry);
    builder_.createBr(body);
    popScope();
    entryBlock_ = nullptr;
    curFn_ = nullptr;
}

Value *
CodeGen::zeroValue(const CType *type)
{
    if (type->isFloat())
        return module_.constFP(types_.lower(type), 0.0);
    if (type->isPointer())
        return module_.constNull();
    if (type->isInteger())
        return module_.constInt(types_.lower(type), 0);
    throw InternalError("zeroValue of non-scalar");
}

GlobalVariable *
CodeGen::stringLiteral(const std::string &bytes)
{
    auto it = stringPool_.find(bytes);
    if (it != stringPool_.end())
        return it->second;
    std::string data = bytes;
    data.push_back('\0');
    const Type *type =
        module_.types().arrayType(module_.types().i8(), data.size());
    GlobalVariable *g = module_.addGlobal(
        type, ".str" + std::to_string(stringPool_.size()),
        Initializer::makeBytes(std::move(data)), true);
    stringPool_[bytes] = g;
    return g;
}

// -----------------------------------------------------------------------
// Statements
// -----------------------------------------------------------------------

void
CodeGen::emitStmt(const Stmt &stmt)
{
    builder_.setLoc(stmt.loc);
    switch (stmt.kind) {
      case StmtKind::nullStmt:
        return;
      case StmtKind::expr:
        emitExpr(*static_cast<const ExprStmt &>(stmt).expr);
        return;
      case StmtKind::compound: {
        pushScope();
        for (const auto &sub : static_cast<const CompoundStmt &>(stmt).body) {
            emitStmt(*sub);
            if (builder_.blockTerminated() &&
                sub->kind != StmtKind::caseStmt &&
                sub->kind != StmtKind::defaultStmt) {
                // Dead statements after return/break may still carry case
                // labels; a simple approximation: continue emitting into a
                // fresh unreachable block.
                BasicBlock *cont = newBlock("dead");
                builder_.setInsertPoint(cont);
            }
        }
        popScope();
        return;
      }
      case StmtKind::decl:
        for (const auto &var : static_cast<const DeclStmt &>(stmt).vars)
            emitLocalDecl(var);
        return;
      case StmtKind::ifStmt: {
        const auto &s = static_cast<const IfStmt &>(stmt);
        Value *cond = emitCondition(*s.cond);
        BasicBlock *then_bb = newBlock("then");
        BasicBlock *merge = newBlock("endif");
        BasicBlock *else_bb =
            s.elseStmt != nullptr ? newBlock("else") : merge;
        builder_.createCondBr(cond, then_bb, else_bb);
        builder_.setInsertPoint(then_bb);
        emitStmt(*s.thenStmt);
        if (!builder_.blockTerminated())
            builder_.createBr(merge);
        if (s.elseStmt != nullptr) {
            builder_.setInsertPoint(else_bb);
            emitStmt(*s.elseStmt);
            if (!builder_.blockTerminated())
                builder_.createBr(merge);
        }
        builder_.setInsertPoint(merge);
        return;
      }
      case StmtKind::whileStmt: {
        const auto &s = static_cast<const WhileStmt &>(stmt);
        BasicBlock *cond_bb = newBlock("while.cond");
        BasicBlock *body_bb = newBlock("while.body");
        BasicBlock *end_bb = newBlock("while.end");
        builder_.createBr(cond_bb);
        builder_.setInsertPoint(cond_bb);
        builder_.createCondBr(emitCondition(*s.cond), body_bb, end_bb);
        builder_.setInsertPoint(body_bb);
        breakTargets_.push_back(end_bb);
        continueTargets_.push_back(cond_bb);
        emitStmt(*s.body);
        breakTargets_.pop_back();
        continueTargets_.pop_back();
        if (!builder_.blockTerminated())
            builder_.createBr(cond_bb);
        builder_.setInsertPoint(end_bb);
        return;
      }
      case StmtKind::doWhileStmt: {
        const auto &s = static_cast<const DoWhileStmt &>(stmt);
        BasicBlock *body_bb = newBlock("do.body");
        BasicBlock *cond_bb = newBlock("do.cond");
        BasicBlock *end_bb = newBlock("do.end");
        builder_.createBr(body_bb);
        builder_.setInsertPoint(body_bb);
        breakTargets_.push_back(end_bb);
        continueTargets_.push_back(cond_bb);
        emitStmt(*s.body);
        breakTargets_.pop_back();
        continueTargets_.pop_back();
        if (!builder_.blockTerminated())
            builder_.createBr(cond_bb);
        builder_.setInsertPoint(cond_bb);
        builder_.createCondBr(emitCondition(*s.cond), body_bb, end_bb);
        builder_.setInsertPoint(end_bb);
        return;
      }
      case StmtKind::forStmt: {
        const auto &s = static_cast<const ForStmt &>(stmt);
        pushScope();
        if (s.init != nullptr)
            emitStmt(*s.init);
        BasicBlock *cond_bb = newBlock("for.cond");
        BasicBlock *body_bb = newBlock("for.body");
        BasicBlock *step_bb = newBlock("for.step");
        BasicBlock *end_bb = newBlock("for.end");
        builder_.createBr(cond_bb);
        builder_.setInsertPoint(cond_bb);
        if (s.cond != nullptr)
            builder_.createCondBr(emitCondition(*s.cond), body_bb, end_bb);
        else
            builder_.createBr(body_bb);
        builder_.setInsertPoint(body_bb);
        breakTargets_.push_back(end_bb);
        continueTargets_.push_back(step_bb);
        emitStmt(*s.body);
        breakTargets_.pop_back();
        continueTargets_.pop_back();
        if (!builder_.blockTerminated())
            builder_.createBr(step_bb);
        builder_.setInsertPoint(step_bb);
        if (s.step != nullptr)
            emitExpr(*s.step);
        builder_.createBr(cond_bb);
        builder_.setInsertPoint(end_bb);
        popScope();
        return;
      }
      case StmtKind::returnStmt: {
        const auto &s = static_cast<const ReturnStmt &>(stmt);
        const CType *ret = curFnType_->returnType();
        if (s.value != nullptr && !ret->isVoid()) {
            RValue v = convert(emitExpr(*s.value), ret, s.loc);
            builder_.createRet(v.value);
        } else {
            if (!ret->isVoid()) {
                builder_.createRet(zeroValue(ret));
            } else {
                if (s.value != nullptr)
                    emitExpr(*s.value);
                builder_.createRet();
            }
        }
        return;
      }
      case StmtKind::breakStmt:
        if (breakTargets_.empty())
            semaError(stmt.loc, "break outside of a loop or switch");
        builder_.createBr(breakTargets_.back());
        return;
      case StmtKind::continueStmt:
        if (continueTargets_.empty())
            semaError(stmt.loc, "continue outside of a loop");
        builder_.createBr(continueTargets_.back());
        return;
      case StmtKind::switchStmt:
        emitSwitch(static_cast<const SwitchStmt &>(stmt));
        return;
      case StmtKind::caseStmt:
      case StmtKind::defaultStmt:
        semaError(stmt.loc, "case label outside of a switch");
      default:
        throw InternalError("unhandled statement kind");
    }
}

namespace
{

/** Collect case/default statements of one switch body (not nested ones). */
void
collectCases(const Stmt &stmt, std::vector<const CaseStmt *> &cases,
             const DefaultStmt *&default_stmt)
{
    switch (stmt.kind) {
      case StmtKind::caseStmt: {
        const auto &c = static_cast<const CaseStmt &>(stmt);
        cases.push_back(&c);
        collectCases(*c.sub, cases, default_stmt);
        return;
      }
      case StmtKind::defaultStmt: {
        const auto &d = static_cast<const DefaultStmt &>(stmt);
        default_stmt = &d;
        collectCases(*d.sub, cases, default_stmt);
        return;
      }
      case StmtKind::compound:
        for (const auto &sub : static_cast<const CompoundStmt &>(stmt).body)
            collectCases(*sub, cases, default_stmt);
        return;
      default:
        // Labels inside nested control flow (Duff's-device style) are not
        // supported by mini-C; the emitter matches this restriction.
        return;
    }
}

} // namespace

void
CodeGen::emitSwitch(const SwitchStmt &stmt)
{
    RValue cond = emitExpr(*stmt.cond);
    cond = convert(cond, types_.promote(cond.type), stmt.loc);
    if (!cond.type->isInteger())
        semaError(stmt.loc, "switch condition must be an integer");

    std::vector<const CaseStmt *> cases;
    const DefaultStmt *default_stmt = nullptr;
    collectCases(*stmt.body, cases, default_stmt);

    BasicBlock *end_bb = newBlock("switch.end");
    std::unordered_map<const Stmt *, BasicBlock *> labels;
    for (const CaseStmt *c : cases)
        labels[c] = newBlock("case");
    BasicBlock *default_bb =
        default_stmt != nullptr ? newBlock("default") : end_bb;
    if (default_stmt != nullptr)
        labels[default_stmt] = default_bb;

    // Dispatch chain.
    for (const CaseStmt *c : cases) {
        Value *case_val = module_.constInt(types_.lower(cond.type), c->value);
        Instruction *eq = builder_.createICmp(IntPred::eq, cond.value,
                                              case_val);
        BasicBlock *next = newBlock("switch.next");
        builder_.createCondBr(eq, labels[c], next);
        builder_.setInsertPoint(next);
    }
    builder_.createBr(default_bb);

    // Emit the body linearly; labels switch the insertion point with
    // natural fall-through.
    struct BodyEmitter
    {
        CodeGen &cg;
        std::unordered_map<const Stmt *, BasicBlock *> &labels;

        void
        run(const Stmt &s)
        {
            switch (s.kind) {
              case StmtKind::caseStmt:
              case StmtKind::defaultStmt: {
                BasicBlock *bb = labels.at(&s);
                if (!cg.builder_.blockTerminated())
                    cg.builder_.createBr(bb); // fall-through
                cg.builder_.setInsertPoint(bb);
                const Stmt *sub = s.kind == StmtKind::caseStmt
                    ? static_cast<const CaseStmt &>(s).sub.get()
                    : static_cast<const DefaultStmt &>(s).sub.get();
                run(*sub);
                return;
              }
              case StmtKind::compound: {
                cg.pushScope();
                for (const auto &sub :
                     static_cast<const CompoundStmt &>(s).body) {
                    run(*sub);
                }
                cg.popScope();
                return;
              }
              default:
                cg.emitStmt(s);
                return;
            }
        }
    };

    BasicBlock *unreach = newBlock("switch.body.start");
    builder_.setInsertPoint(unreach); // skipped unless a label is hit
    breakTargets_.push_back(end_bb);
    BodyEmitter{*this, labels}.run(*stmt.body);
    breakTargets_.pop_back();
    if (!builder_.blockTerminated())
        builder_.createBr(end_bb);
    builder_.setInsertPoint(end_bb);
}

void
CodeGen::emitLocalDecl(const VarDecl &var)
{
    const CType *type = var.type;
    if (type->isArray() && type->arrayLength() == 0 && var.init != nullptr) {
        if (var.init->kind == ExprKind::initList) {
            auto &list = static_cast<const InitListExpr &>(*var.init);
            type = types_.arrayOf(type->elemType(), list.elems.size());
        } else if (var.init->kind == ExprKind::stringLit) {
            auto &lit = static_cast<const StringLitExpr &>(*var.init);
            type = types_.arrayOf(type->elemType(), lit.value.size() + 1);
        }
    }
    if (var.isStatic) {
        std::string name = curFn_->name() + "." + var.name + "." +
            std::to_string(staticLocalCount_++);
        Initializer init = constInitializer(var.init.get(), type);
        GlobalVariable *g =
            module_.addGlobal(types_.lower(type), name, std::move(init));
        scopes_.back()[var.name] = LocalVar{g, type};
        return;
    }
    if (var.isExtern) {
        // Refers to a global defined elsewhere.
        scopes_.back()[var.name] = LocalVar{nullptr, type};
        return;
    }
    if (types_.sizeOf(type) == 0)
        semaError(var.loc, "variable '" + var.name + "' has incomplete type");
    Instruction *addr = createLocalAlloca(types_.lower(type), var.name);
    scopes_.back()[var.name] = LocalVar{addr, type};
    if (var.init != nullptr)
        emitLocalInit(addr, type, *var.init);
}

void
CodeGen::emitZeroInit(Value *addr, const CType *type)
{
    if (type->isScalar()) {
        builder_.createStore(zeroValue(type), addr);
        return;
    }
    if (type->isArray()) {
        const CType *elem = type->elemType();
        uint64_t len = type->arrayLength();
        uint64_t elem_size = types_.sizeOf(elem);
        if (elem->isScalar() && len > 64) {
            // Emit a zeroing loop to avoid code bloat for large arrays.
            Instruction *idx =
                createLocalAlloca(module_.types().i64(), "zi");
            builder_.createStore(module_.constI64(0), idx);
            BasicBlock *cond_bb = newBlock("zero.cond");
            BasicBlock *body_bb = newBlock("zero.body");
            BasicBlock *end_bb = newBlock("zero.end");
            builder_.createBr(cond_bb);
            builder_.setInsertPoint(cond_bb);
            Instruction *i =
                builder_.createLoad(module_.types().i64(), idx);
            Instruction *cmp = builder_.createICmp(
                IntPred::ult, i,
                module_.constI64(static_cast<int64_t>(len)));
            builder_.createCondBr(cmp, body_bb, end_bb);
            builder_.setInsertPoint(body_bb);
            Instruction *i2 =
                builder_.createLoad(module_.types().i64(), idx);
            Instruction *slot = builder_.createGep(addr, 0, i2, elem_size);
            builder_.createStore(zeroValue(elem), slot);
            Instruction *i3 =
                builder_.createLoad(module_.types().i64(), idx);
            Instruction *next = builder_.createBinOp(
                Opcode::add, i3, module_.constI64(1));
            builder_.createStore(next, idx);
            builder_.createBr(cond_bb);
            builder_.setInsertPoint(end_bb);
            return;
        }
        for (uint64_t i = 0; i < len; i++) {
            Instruction *slot = builder_.createGep(
                addr, static_cast<int64_t>(i * elem_size));
            emitZeroInit(slot, elem);
        }
        return;
    }
    if (type->isStruct()) {
        const Type *ir = types_.lower(type);
        for (const auto &field : ir->fields()) {
            Instruction *slot = builder_.createGep(
                addr, static_cast<int64_t>(field.offset));
            const CField *cfield = type->fieldNamed(field.name);
            emitZeroInit(slot, cfield->type);
        }
        return;
    }
    throw InternalError("emitZeroInit: unsupported type");
}

void
CodeGen::emitLocalInit(Value *addr, const CType *type, const Expr &init)
{
    if (init.kind == ExprKind::initList) {
        const auto &list = static_cast<const InitListExpr &>(init);
        if (type->isArray()) {
            const CType *elem = type->elemType();
            // `{ "str" }` for char arrays.
            if (!list.elems.empty() &&
                list.elems[0]->kind == ExprKind::stringLit &&
                types_.sizeOf(elem) == 1 && list.elems.size() == 1) {
                emitLocalInit(addr, type, *list.elems[0]);
                return;
            }
            uint64_t elem_size = types_.sizeOf(elem);
            uint64_t len = type->arrayLength();
            if (list.elems.size() > len)
                semaError(init.loc, "too many initializers");
            for (uint64_t i = 0; i < len; i++) {
                Instruction *slot = builder_.createGep(
                    addr, static_cast<int64_t>(i * elem_size));
                if (i < list.elems.size())
                    emitLocalInit(slot, elem, *list.elems[i]);
                else
                    emitZeroInit(slot, elem);
            }
            return;
        }
        if (type->isStruct()) {
            const Type *ir = types_.lower(type);
            const auto &fields = type->fields();
            if (list.elems.size() > fields.size())
                semaError(init.loc, "too many initializers");
            for (size_t i = 0; i < fields.size(); i++) {
                Instruction *slot = builder_.createGep(
                    addr, static_cast<int64_t>(ir->fields()[i].offset));
                if (i < list.elems.size())
                    emitLocalInit(slot, fields[i].type, *list.elems[i]);
                else
                    emitZeroInit(slot, fields[i].type);
            }
            return;
        }
        if (list.elems.size() != 1)
            semaError(init.loc, "invalid initializer list");
        emitLocalInit(addr, type, *list.elems[0]);
        return;
    }
    if (init.kind == ExprKind::stringLit && type->isArray() &&
        types_.sizeOf(type->elemType()) == 1) {
        const auto &lit = static_cast<const StringLitExpr &>(init);
        std::string bytes = lit.value;
        bytes.push_back('\0');
        if (bytes.size() > type->arrayLength())
            semaError(init.loc, "string too long for array");
        for (uint64_t i = 0; i < type->arrayLength(); i++) {
            Instruction *slot =
                builder_.createGep(addr, static_cast<int64_t>(i));
            char c = i < bytes.size() ? bytes[i] : '\0';
            builder_.createStore(
                module_.constInt(module_.types().i8(), c), slot);
        }
        return;
    }
    RValue v = emitExpr(init);
    if (type->isStruct()) {
        if (v.type != type)
            semaError(init.loc, "mismatched struct initializer");
        emitStructCopy(addr, v.value, type);
        return;
    }
    v = convert(v, type, init.loc);
    builder_.createStore(v.value, addr);
}

void
CodeGen::emitStructCopy(Value *dst, Value *src, const CType *type)
{
    // Field-by-field scalar copies (recursing into aggregates).
    if (type->isScalar()) {
        Instruction *v = builder_.createLoad(types_.lower(type), src);
        builder_.createStore(v, dst);
        return;
    }
    if (type->isArray()) {
        uint64_t elem_size = types_.sizeOf(type->elemType());
        for (uint64_t i = 0; i < type->arrayLength(); i++) {
            int64_t off = static_cast<int64_t>(i * elem_size);
            emitStructCopy(builder_.createGep(dst, off),
                           builder_.createGep(src, off), type->elemType());
        }
        return;
    }
    if (type->isStruct()) {
        const Type *ir = types_.lower(type);
        const auto &fields = type->fields();
        for (size_t i = 0; i < fields.size(); i++) {
            int64_t off = static_cast<int64_t>(ir->fields()[i].offset);
            emitStructCopy(builder_.createGep(dst, off),
                           builder_.createGep(src, off), fields[i].type);
        }
        return;
    }
    throw InternalError("emitStructCopy: unsupported type");
}

// -----------------------------------------------------------------------
// Expressions
// -----------------------------------------------------------------------

Value *
CodeGen::toBool(RValue v, const SourceLoc &loc)
{
    v = decay(v);
    if (v.type->isInteger()) {
        return builder_.createICmp(
            IntPred::ne, v.value,
            module_.constInt(types_.lower(v.type), 0));
    }
    if (v.type->isFloat()) {
        return builder_.createFCmp(
            FloatPred::one, v.value,
            module_.constFP(types_.lower(v.type), 0.0));
    }
    if (v.type->isPointer())
        return builder_.createICmp(IntPred::ne, v.value, module_.constNull());
    semaError(loc, "condition is not scalar");
}

Value *
CodeGen::emitCondition(const Expr &expr)
{
    return toBool(emitExpr(expr), expr.loc);
}

CodeGen::RValue
CodeGen::decay(RValue v)
{
    if (v.type->isArray())
        return RValue{v.value, types_.pointerTo(v.type->elemType())};
    if (v.type->isFunction())
        return RValue{v.value, types_.pointerTo(v.type)};
    return v;
}

CodeGen::RValue
CodeGen::convert(RValue v, const CType *to, const SourceLoc &loc,
                 bool explicit_cast)
{
    v = decay(v);
    if (to->isVoid()) {
        if (!explicit_cast)
            semaError(loc, "cannot convert to void");
        return RValue{nullptr, to};
    }
    if (v.type == to)
        return v;
    const Type *from_ir = types_.lower(v.type);
    const Type *to_ir = types_.lower(to);

    // Allocation-site type hint (Section 3.3): converting the result of a
    // malloc-family call to T* records T on the call instruction.
    if (to->isPointer() && v.type->isPointer() &&
        v.value->valueKind() == ValueKind::instruction) {
        auto *inst = static_cast<Instruction *>(v.value);
        if (inst->op() == Opcode::call &&
            inst->operand(0)->valueKind() == ValueKind::function) {
            const std::string &callee = inst->operand(0)->name();
            if ((callee == "malloc" || callee == "calloc" ||
                 callee == "realloc") &&
                !to->pointee()->isVoid() &&
                types_.sizeOf(to->pointee()) > 0) {
                inst->setAccessType(types_.lower(to->pointee()));
            }
        }
    }

    if (v.type->isPointer() && to->isPointer())
        return RValue{v.value, to};
    // Constant integer conversions fold in the front end (Clang emits
    // the converted constant directly, even at -O0).
    if (v.value != nullptr &&
        v.value->valueKind() == ValueKind::constantInt &&
        v.type->isInteger()) {
        auto *c = static_cast<ConstantInt *>(v.value);
        int64_t raw = v.type->isSignedInt()
            ? c->value() : static_cast<int64_t>(c->zextValue());
        if (to->isInteger())
            return RValue{module_.constInt(to_ir, raw), to};
        if (to->isFloat()) {
            return RValue{
                module_.constFP(to_ir, static_cast<double>(raw)), to};
        }
    }
    if (v.type->isInteger() && to->isInteger()) {
        if (from_ir == to_ir)
            return RValue{v.value, to};
        Instruction *cast;
        if (from_ir->intBits() > to_ir->intBits()) {
            cast = builder_.createCast(Opcode::trunc, v.value, to_ir);
        } else {
            cast = builder_.createCast(
                v.type->isSignedInt() ? Opcode::sext : Opcode::zext,
                v.value, to_ir);
        }
        return RValue{cast, to};
    }
    if (v.type->isInteger() && to->isFloat()) {
        Instruction *cast = builder_.createCast(
            v.type->isSignedInt() ? Opcode::sitofp : Opcode::uitofp,
            v.value, to_ir);
        return RValue{cast, to};
    }
    if (v.type->isFloat() && to->isInteger()) {
        Instruction *cast = builder_.createCast(
            to->isSignedInt() ? Opcode::fptosi : Opcode::fptoui,
            v.value, to_ir);
        return RValue{cast, to};
    }
    if (v.type->isFloat() && to->isFloat()) {
        if (from_ir == to_ir)
            return RValue{v.value, to};
        Opcode op = from_ir->kind() == TypeKind::f32
            ? Opcode::fpext : Opcode::fptrunc;
        return RValue{builder_.createCast(op, v.value, to_ir), to};
    }
    if (v.type->isInteger() && to->isPointer()) {
        // Integer constant 0 becomes the null pointer.
        if (v.value->valueKind() == ValueKind::constantInt &&
            static_cast<ConstantInt *>(v.value)->value() == 0) {
            return RValue{module_.constNull(), to};
        }
        if (!explicit_cast)
            diags_.warning(loc, "implicit integer-to-pointer conversion");
        RValue wide = convert(v, types_.ulongTy(), loc, true);
        return RValue{
            builder_.createCast(Opcode::inttoptr, wide.value, to_ir), to};
    }
    if (v.type->isPointer() && to->isInteger()) {
        if (!explicit_cast)
            diags_.warning(loc, "implicit pointer-to-integer conversion");
        Instruction *cast = builder_.createCast(
            Opcode::ptrtoint, v.value, module_.types().i64());
        return convert(RValue{cast, types_.ulongTy()}, to, loc, true);
    }
    semaError(loc, "cannot convert from '" + v.type->toString() + "' to '" +
              to->toString() + "'");
}

CodeGen::RValue
CodeGen::defaultPromote(RValue v, const SourceLoc &loc)
{
    v = decay(v);
    if (v.type->kind() == CTypeKind::floatTy)
        return convert(v, types_.doubleTy(), loc);
    if (v.type->isInteger())
        return convert(v, types_.promote(v.type), loc);
    return v;
}

CodeGen::LValue
CodeGen::emitLValue(const Expr &expr)
{
    builder_.setLoc(expr.loc);
    switch (expr.kind) {
      case ExprKind::ident: {
        const auto &ident = static_cast<const IdentExpr &>(expr);
        if (LocalVar *local = findLocal(ident.name)) {
            if (local->addr == nullptr) {
                // extern local: resolve against module globals.
                GlobalVariable *g = module_.findGlobal(ident.name);
                if (g == nullptr)
                    semaError(expr.loc, "undefined extern variable '" +
                              ident.name + "'");
                return LValue{g, local->type};
            }
            return LValue{local->addr, local->type};
        }
        auto git = globalTypes_.find(ident.name);
        if (git != globalTypes_.end()) {
            GlobalVariable *g = module_.findGlobal(ident.name);
            return LValue{g, git->second};
        }
        semaError(expr.loc, "use of undeclared identifier '" +
                  ident.name + "'");
      }
      case ExprKind::unary: {
        const auto &un = static_cast<const UnaryExpr &>(expr);
        if (un.op == UnaryOp::deref) {
            RValue v = decay(emitExpr(*un.operand));
            if (!v.type->isPointer())
                semaError(expr.loc, "dereference of a non-pointer");
            return LValue{v.value, v.type->pointee()};
        }
        break;
      }
      case ExprKind::index: {
        const auto &index = static_cast<const IndexExpr &>(expr);
        RValue base = decay(emitExpr(*index.base));
        RValue idx = emitExpr(*index.index);
        if (!base.type->isPointer()) {
            // Support the obscure `i[arr]` form.
            std::swap(base, idx);
            base = decay(base);
        }
        if (!base.type->isPointer() || !idx.type->isInteger())
            semaError(expr.loc, "invalid array subscript");
        idx = convert(idx, types_.longTy(), expr.loc);
        const CType *elem = base.type->pointee();
        uint64_t elem_size = types_.sizeOf(elem);
        Instruction *addr =
            builder_.createGep(base.value, 0, idx.value, elem_size);
        return LValue{addr, elem};
      }
      case ExprKind::member: {
        const auto &member = static_cast<const MemberExpr &>(expr);
        Value *base_addr = nullptr;
        const CType *struct_type = nullptr;
        if (member.arrow) {
            RValue base = decay(emitExpr(*member.base));
            if (!base.type->isPointer() || !base.type->pointee()->isStruct())
                semaError(expr.loc, "'->' on a non-struct-pointer");
            base_addr = base.value;
            struct_type = base.type->pointee();
        } else {
            LValue base = emitLValue(*member.base);
            if (!base.type->isStruct())
                semaError(expr.loc, "'.' on a non-struct");
            base_addr = base.addr;
            struct_type = base.type;
        }
        uint64_t offset = 0;
        const CType *field_type =
            typeOfMember(struct_type, member.member, offset, expr.loc);
        Instruction *addr =
            builder_.createGep(base_addr, static_cast<int64_t>(offset));
        return LValue{addr, field_type};
      }
      case ExprKind::stringLit: {
        const auto &lit = static_cast<const StringLitExpr &>(expr);
        GlobalVariable *g = stringLiteral(lit.value);
        return LValue{g, types_.arrayOf(types_.charTy(),
                                        lit.value.size() + 1)};
      }
      default:
        break;
    }
    semaError(expr.loc, "expression is not assignable");
}

const CType *
CodeGen::typeOfMember(const CType *struct_type, const std::string &name,
                      uint64_t &offset, const SourceLoc &loc)
{
    if (!struct_type->isCompleteStruct())
        semaError(loc, "use of incomplete struct " +
                  struct_type->structName());
    const CField *field = struct_type->fieldNamed(name);
    if (field == nullptr)
        semaError(loc, "no member named '" + name + "' in struct " +
                  struct_type->structName());
    const Type *ir = types_.lower(struct_type);
    const StructField *ir_field = ir->fieldNamed(name);
    offset = ir_field->offset;
    return field->type;
}

CodeGen::RValue
CodeGen::loadLValue(const LValue &lv, const SourceLoc &loc)
{
    (void)loc;
    if (lv.type->isArray())
        return decay(RValue{lv.addr, lv.type});
    if (lv.type->isStruct())
        return RValue{lv.addr, lv.type}; // structs travel by address
    if (lv.type->isFunction())
        return RValue{lv.addr, types_.pointerTo(lv.type)};
    Instruction *v = builder_.createLoad(types_.lower(lv.type), lv.addr);
    return RValue{v, lv.type};
}

CodeGen::RValue
CodeGen::emitExpr(const Expr &expr)
{
    builder_.setLoc(expr.loc);
    switch (expr.kind) {
      case ExprKind::intLit: {
        const auto &lit = static_cast<const IntLitExpr &>(expr);
        const CType *type;
        if (lit.isLong) {
            type = lit.isUnsigned ? types_.ulongTy() : types_.longTy();
        } else if (lit.isUnsigned) {
            type = lit.value > 0xffffffffull ? types_.ulongTy()
                                             : types_.uintTy();
        } else if (lit.value > 0x7fffffffull) {
            type = types_.longTy();
        } else {
            type = types_.intTy();
        }
        return RValue{module_.constInt(types_.lower(type),
                                       static_cast<int64_t>(lit.value)),
                      type};
      }
      case ExprKind::floatLit: {
        const auto &lit = static_cast<const FloatLitExpr &>(expr);
        return RValue{module_.constFP(module_.types().f64(), lit.value),
                      types_.doubleTy()};
      }
      case ExprKind::stringLit: {
        const auto &lit = static_cast<const StringLitExpr &>(expr);
        return RValue{stringLiteral(lit.value),
                      types_.pointerTo(types_.charTy())};
      }
      case ExprKind::ident: {
        const auto &ident = static_cast<const IdentExpr &>(expr);
        // Enum constants.
        auto ec = unit_->enumConstants.find(ident.name);
        if (ec != unit_->enumConstants.end() &&
            findLocal(ident.name) == nullptr) {
            return RValue{module_.constI32(
                              static_cast<int32_t>(ec->second)),
                          types_.intTy()};
        }
        // Function designators.
        if (findLocal(ident.name) == nullptr &&
            globalTypes_.find(ident.name) == globalTypes_.end()) {
            auto fit = functionTypes_.find(ident.name);
            if (fit != functionTypes_.end()) {
                Function *fn = module_.findFunction(ident.name);
                return RValue{fn, types_.pointerTo(fit->second)};
            }
        }
        return loadLValue(emitLValue(expr), expr.loc);
      }
      case ExprKind::index:
      case ExprKind::member:
        return loadLValue(emitLValue(expr), expr.loc);
      case ExprKind::unary:
        return emitUnary(static_cast<const UnaryExpr &>(expr));
      case ExprKind::binary: {
        const auto &bin = static_cast<const BinaryExpr &>(expr);
        if (bin.op == BinaryOp::logAnd || bin.op == BinaryOp::logOr)
            return emitLogical(bin);
        return emitBinary(bin);
      }
      case ExprKind::assign:
        return emitAssign(static_cast<const AssignExpr &>(expr));
      case ExprKind::conditional:
        return emitConditional(static_cast<const ConditionalExpr &>(expr));
      case ExprKind::cast: {
        const auto &cast = static_cast<const CastExpr &>(expr);
        RValue v = emitExpr(*cast.operand);
        return convert(v, cast.target, expr.loc, true);
      }
      case ExprKind::call:
        return emitCall(static_cast<const CallExpr &>(expr));
      case ExprKind::sizeofExpr: {
        const auto &so = static_cast<const SizeofExpr &>(expr);
        uint64_t size;
        if (so.typeOperand != nullptr) {
            size = types_.sizeOf(so.typeOperand);
        } else {
            // Compute the type without emitting code: emit into a scratch
            // block, then discard it. Simpler: emit and ignore the value;
            // mini-C accepts the (harmless) side effects.
            RValue v = emitExpr(*so.exprOperand);
            const CType *t = v.type;
            // sizeof on an lvalue of array type must not decay; redo via
            // lvalue path for the common cases.
            if (so.exprOperand->kind == ExprKind::ident ||
                so.exprOperand->kind == ExprKind::member ||
                so.exprOperand->kind == ExprKind::index) {
                LValue lv = emitLValue(*so.exprOperand);
                t = lv.type;
            }
            size = types_.sizeOf(t);
        }
        return RValue{module_.constI64(static_cast<int64_t>(size)),
                      types_.ulongTy()};
      }
      case ExprKind::comma: {
        const auto &comma = static_cast<const CommaExpr &>(expr);
        emitExpr(*comma.lhs);
        return emitExpr(*comma.rhs);
      }
      case ExprKind::vaStart: {
        const auto &va = static_cast<const VaStartExpr &>(expr);
        Function *intrinsic = module_.findFunction("__va_start");
        Instruction *handle = builder_.createCall(
            intrinsic, module_.types().ptr(), {});
        LValue ap = emitLValue(*va.ap);
        builder_.createStore(handle, ap.addr);
        return RValue{nullptr, types_.voidTy()};
      }
      case ExprKind::vaArg: {
        const auto &va = static_cast<const VaArgExpr &>(expr);
        RValue ap = decay(emitExpr(*va.ap));
        Function *intrinsic = module_.findFunction("__va_arg_ptr");
        Instruction *p = builder_.createCall(
            intrinsic, module_.types().ptr(), {ap.value});
        if (!va.argType->isScalar())
            semaError(expr.loc, "va_arg of non-scalar type");
        Instruction *v =
            builder_.createLoad(types_.lower(va.argType), p);
        return RValue{v, va.argType};
      }
      case ExprKind::vaEnd: {
        const auto &va = static_cast<const VaEndExpr &>(expr);
        RValue ap = decay(emitExpr(*va.ap));
        Function *intrinsic = module_.findFunction("__va_end");
        builder_.createCall(intrinsic, module_.types().voidTy(),
                            {ap.value});
        return RValue{nullptr, types_.voidTy()};
      }
      case ExprKind::initList:
        semaError(expr.loc, "initializer list in expression context");
      default:
        throw InternalError("unhandled expression kind");
    }
}

CodeGen::RValue
CodeGen::emitUnary(const UnaryExpr &expr)
{
    switch (expr.op) {
      case UnaryOp::neg: {
        RValue v = decay(emitExpr(*expr.operand));
        if (v.type->isInteger()) {
            v = convert(v, types_.promote(v.type), expr.loc);
            Instruction *out = builder_.createBinOp(
                Opcode::sub,
                module_.constInt(types_.lower(v.type), 0), v.value);
            return RValue{out, v.type};
        }
        if (v.type->isFloat())
            return RValue{builder_.createFNeg(v.value), v.type};
        semaError(expr.loc, "invalid operand to unary '-'");
      }
      case UnaryOp::bitNot: {
        RValue v = decay(emitExpr(*expr.operand));
        if (!v.type->isInteger())
            semaError(expr.loc, "invalid operand to '~'");
        v = convert(v, types_.promote(v.type), expr.loc);
        Instruction *out = builder_.createBinOp(
            Opcode::xor_, v.value,
            module_.constInt(types_.lower(v.type), -1));
        return RValue{out, v.type};
      }
      case UnaryOp::logicalNot: {
        Value *b = toBool(emitExpr(*expr.operand), expr.loc);
        Instruction *inverted = builder_.createICmp(
            IntPred::eq, b, module_.constBool(false));
        Instruction *out = builder_.createCast(
            Opcode::zext, inverted, module_.types().i32());
        return RValue{out, types_.intTy()};
      }
      case UnaryOp::deref: {
        LValue lv = emitLValue(expr);
        return loadLValue(lv, expr.loc);
      }
      case UnaryOp::addrOf: {
        // &function is the function pointer itself.
        if (expr.operand->kind == ExprKind::ident) {
            const auto &ident =
                static_cast<const IdentExpr &>(*expr.operand);
            if (findLocal(ident.name) == nullptr &&
                globalTypes_.find(ident.name) == globalTypes_.end()) {
                auto fit = functionTypes_.find(ident.name);
                if (fit != functionTypes_.end()) {
                    Function *fn = module_.findFunction(ident.name);
                    return RValue{fn, types_.pointerTo(fit->second)};
                }
            }
        }
        LValue lv = emitLValue(*expr.operand);
        return RValue{lv.addr, types_.pointerTo(lv.type)};
      }
      case UnaryOp::preInc: case UnaryOp::preDec:
      case UnaryOp::postInc: case UnaryOp::postDec: {
        bool inc = expr.op == UnaryOp::preInc ||
            expr.op == UnaryOp::postInc;
        bool post = expr.op == UnaryOp::postInc ||
            expr.op == UnaryOp::postDec;
        LValue lv = emitLValue(*expr.operand);
        RValue old = loadLValue(lv, expr.loc);
        RValue next;
        if (lv.type->isPointer()) {
            uint64_t elem_size = types_.sizeOf(lv.type->pointee());
            Instruction *addr = builder_.createGep(
                old.value, inc ? static_cast<int64_t>(elem_size)
                               : -static_cast<int64_t>(elem_size));
            next = RValue{addr, lv.type};
        } else if (lv.type->isArithmetic()) {
            RValue one{nullptr, lv.type};
            if (lv.type->isFloat())
                one.value = module_.constFP(types_.lower(lv.type), 1.0);
            else
                one.value = module_.constInt(types_.lower(lv.type), 1);
            Opcode op = lv.type->isFloat()
                ? (inc ? Opcode::fadd : Opcode::fsub)
                : (inc ? Opcode::add : Opcode::sub);
            next = RValue{
                builder_.createBinOp(op, old.value, one.value), lv.type};
        } else {
            semaError(expr.loc, "invalid operand to ++/--");
        }
        builder_.createStore(next.value, lv.addr);
        return post ? old : next;
      }
    }
    throw InternalError("unhandled unary op");
}

CodeGen::RValue
CodeGen::emitBinary(const BinaryExpr &expr)
{
    RValue lhs = emitExpr(*expr.lhs);
    RValue rhs = emitExpr(*expr.rhs);
    return emitBinaryOp(expr.op, std::move(lhs), std::move(rhs), expr.loc);
}

CodeGen::RValue
CodeGen::emitBinaryOp(BinaryOp op, RValue lhs, RValue rhs,
                      const SourceLoc &loc)
{
    lhs = decay(lhs);
    rhs = decay(rhs);

    auto boolResult = [&](Instruction *i1) {
        Instruction *wide =
            builder_.createCast(Opcode::zext, i1, module_.types().i32());
        return RValue{wide, types_.intTy()};
    };

    // Pointer arithmetic.
    if (op == BinaryOp::add || op == BinaryOp::sub) {
        if (lhs.type->isPointer() && rhs.type->isInteger()) {
            RValue idx = convert(rhs, types_.longTy(), loc);
            Value *index = idx.value;
            if (op == BinaryOp::sub) {
                index = builder_.createBinOp(
                    Opcode::sub, module_.constI64(0), index);
            }
            uint64_t elem_size = types_.sizeOf(lhs.type->pointee());
            Instruction *addr =
                builder_.createGep(lhs.value, 0, index, elem_size);
            return RValue{addr, lhs.type};
        }
        if (op == BinaryOp::add && lhs.type->isInteger() &&
            rhs.type->isPointer()) {
            return emitBinaryOp(op, rhs, lhs, loc);
        }
        if (op == BinaryOp::sub && lhs.type->isPointer() &&
            rhs.type->isPointer()) {
            Instruction *l = builder_.createCast(
                Opcode::ptrtoint, lhs.value, module_.types().i64());
            Instruction *r = builder_.createCast(
                Opcode::ptrtoint, rhs.value, module_.types().i64());
            Instruction *diff = builder_.createBinOp(Opcode::sub, l, r);
            uint64_t elem_size = types_.sizeOf(lhs.type->pointee());
            Instruction *out = builder_.createBinOp(
                Opcode::sdiv, diff,
                module_.constI64(static_cast<int64_t>(elem_size)));
            return RValue{out, types_.longTy()};
        }
    }

    // Pointer comparisons.
    if (lhs.type->isPointer() || rhs.type->isPointer()) {
        bool is_cmp = op == BinaryOp::lt || op == BinaryOp::gt ||
            op == BinaryOp::le || op == BinaryOp::ge ||
            op == BinaryOp::eq || op == BinaryOp::ne;
        if (!is_cmp)
            semaError(loc, "invalid pointer operation");
        // Allow comparing against integer-constant null.
        if (lhs.type->isInteger())
            lhs = convert(lhs, rhs.type, loc);
        if (rhs.type->isInteger())
            rhs = convert(rhs, lhs.type, loc);
        IntPred pred;
        switch (op) {
          case BinaryOp::lt: pred = IntPred::ult; break;
          case BinaryOp::gt: pred = IntPred::ugt; break;
          case BinaryOp::le: pred = IntPred::ule; break;
          case BinaryOp::ge: pred = IntPred::uge; break;
          case BinaryOp::eq: pred = IntPred::eq; break;
          default: pred = IntPred::ne; break;
        }
        return boolResult(builder_.createICmp(pred, lhs.value, rhs.value));
    }

    if (!lhs.type->isArithmetic() || !rhs.type->isArithmetic())
        semaError(loc, "invalid operands to binary operator");

    // Shifts keep the (promoted) left type.
    if (op == BinaryOp::shl || op == BinaryOp::shr) {
        lhs = convert(lhs, types_.promote(lhs.type), loc);
        rhs = convert(rhs, lhs.type, loc);
        Opcode opcode = op == BinaryOp::shl
            ? Opcode::shl
            : (lhs.type->isSignedInt() ? Opcode::ashr : Opcode::lshr);
        return RValue{builder_.createBinOp(opcode, lhs.value, rhs.value),
                      lhs.type};
    }

    const CType *common = types_.usualArithmetic(lhs.type, rhs.type);
    lhs = convert(lhs, common, loc);
    rhs = convert(rhs, common, loc);
    bool is_float = common->isFloat();
    bool is_signed = common->isSignedInt();

    switch (op) {
      case BinaryOp::add:
        return RValue{builder_.createBinOp(
            is_float ? Opcode::fadd : Opcode::add, lhs.value, rhs.value),
            common};
      case BinaryOp::sub:
        return RValue{builder_.createBinOp(
            is_float ? Opcode::fsub : Opcode::sub, lhs.value, rhs.value),
            common};
      case BinaryOp::mul:
        return RValue{builder_.createBinOp(
            is_float ? Opcode::fmul : Opcode::mul, lhs.value, rhs.value),
            common};
      case BinaryOp::div:
        return RValue{builder_.createBinOp(
            is_float ? Opcode::fdiv : (is_signed ? Opcode::sdiv
                                                 : Opcode::udiv),
            lhs.value, rhs.value), common};
      case BinaryOp::rem:
        return RValue{builder_.createBinOp(
            is_float ? Opcode::frem : (is_signed ? Opcode::srem
                                                 : Opcode::urem),
            lhs.value, rhs.value), common};
      case BinaryOp::bitAnd:
      case BinaryOp::bitOr:
      case BinaryOp::bitXor: {
        if (is_float)
            semaError(loc, "bitwise operator on floating-point values");
        Opcode opcode = op == BinaryOp::bitAnd ? Opcode::and_
            : op == BinaryOp::bitOr ? Opcode::or_ : Opcode::xor_;
        return RValue{builder_.createBinOp(opcode, lhs.value, rhs.value),
                      common};
      }
      case BinaryOp::lt: case BinaryOp::gt: case BinaryOp::le:
      case BinaryOp::ge: case BinaryOp::eq: case BinaryOp::ne: {
        Instruction *cmp;
        if (is_float) {
            FloatPred pred;
            switch (op) {
              case BinaryOp::lt: pred = FloatPred::olt; break;
              case BinaryOp::gt: pred = FloatPred::ogt; break;
              case BinaryOp::le: pred = FloatPred::ole; break;
              case BinaryOp::ge: pred = FloatPred::oge; break;
              case BinaryOp::eq: pred = FloatPred::oeq; break;
              default: pred = FloatPred::one; break;
            }
            cmp = builder_.createFCmp(pred, lhs.value, rhs.value);
        } else {
            IntPred pred;
            switch (op) {
              case BinaryOp::lt:
                pred = is_signed ? IntPred::slt : IntPred::ult;
                break;
              case BinaryOp::gt:
                pred = is_signed ? IntPred::sgt : IntPred::ugt;
                break;
              case BinaryOp::le:
                pred = is_signed ? IntPred::sle : IntPred::ule;
                break;
              case BinaryOp::ge:
                pred = is_signed ? IntPred::sge : IntPred::uge;
                break;
              case BinaryOp::eq: pred = IntPred::eq; break;
              default: pred = IntPred::ne; break;
            }
            cmp = builder_.createICmp(pred, lhs.value, rhs.value);
        }
        return boolResult(cmp);
      }
      default:
        throw InternalError("unhandled binary op");
    }
}

CodeGen::RValue
CodeGen::emitLogical(const BinaryExpr &expr)
{
    bool is_and = expr.op == BinaryOp::logAnd;
    // Result accumulates in a temporary (no phi nodes in this IR).
    Instruction *tmp =
        createLocalAlloca(module_.types().i32(), "logtmp");
    BasicBlock *rhs_bb = newBlock(is_and ? "and.rhs" : "or.rhs");
    BasicBlock *short_bb = newBlock(is_and ? "and.false" : "or.true");
    BasicBlock *merge = newBlock("log.end");

    Value *lhs = emitCondition(*expr.lhs);
    if (is_and)
        builder_.createCondBr(lhs, rhs_bb, short_bb);
    else
        builder_.createCondBr(lhs, short_bb, rhs_bb);

    builder_.setInsertPoint(short_bb);
    builder_.createStore(module_.constI32(is_and ? 0 : 1), tmp);
    builder_.createBr(merge);

    builder_.setInsertPoint(rhs_bb);
    Value *rhs = emitCondition(*expr.rhs);
    Instruction *wide =
        builder_.createCast(Opcode::zext, rhs, module_.types().i32());
    builder_.createStore(wide, tmp);
    builder_.createBr(merge);

    builder_.setInsertPoint(merge);
    Instruction *out = builder_.createLoad(module_.types().i32(), tmp);
    return RValue{out, types_.intTy()};
}

CodeGen::RValue
CodeGen::emitConditional(const ConditionalExpr &expr)
{
    Value *cond = emitCondition(*expr.cond);
    BasicBlock *then_bb = newBlock("cond.then");
    BasicBlock *else_bb = newBlock("cond.else");
    BasicBlock *merge = newBlock("cond.end");

    // First pass: emit both arms to learn their types, storing results
    // into a temporary of the common type. We need the common type before
    // emitting stores, so emit the arms into their blocks and convert.
    builder_.createCondBr(cond, then_bb, else_bb);

    builder_.setInsertPoint(then_bb);
    RValue then_v = emitExpr(*expr.thenExpr);
    BasicBlock *then_end = builder_.insertBlock();

    builder_.setInsertPoint(else_bb);
    RValue else_v = emitExpr(*expr.elseExpr);
    BasicBlock *else_end = builder_.insertBlock();

    then_v = decay(then_v);
    else_v = decay(else_v);

    const CType *common;
    if (then_v.type->isVoid() || else_v.type->isVoid()) {
        common = types_.voidTy();
    } else if (then_v.type->isArithmetic() && else_v.type->isArithmetic()) {
        common = types_.usualArithmetic(then_v.type, else_v.type);
    } else if (then_v.type->isPointer() && else_v.type->isPointer()) {
        common = then_v.type->pointee()->isVoid() ? else_v.type
                                                  : then_v.type;
    } else if (then_v.type->isPointer() && else_v.type->isInteger()) {
        common = then_v.type;
    } else if (then_v.type->isInteger() && else_v.type->isPointer()) {
        common = else_v.type;
    } else if (then_v.type == else_v.type) {
        common = then_v.type;
    } else {
        semaError(expr.loc, "incompatible conditional operand types");
    }

    if (common->isVoid()) {
        builder_.setInsertPoint(then_end);
        builder_.createBr(merge);
        builder_.setInsertPoint(else_end);
        builder_.createBr(merge);
        builder_.setInsertPoint(merge);
        return RValue{nullptr, common};
    }

    Instruction *tmp = createLocalAlloca(types_.lower(common), "ctmp");
    builder_.setInsertPoint(then_end);
    RValue conv_then = convert(then_v, common, expr.loc);
    builder_.createStore(conv_then.value, tmp);
    builder_.createBr(merge);

    builder_.setInsertPoint(else_end);
    RValue conv_else = convert(else_v, common, expr.loc);
    builder_.createStore(conv_else.value, tmp);
    builder_.createBr(merge);

    builder_.setInsertPoint(merge);
    Instruction *out = builder_.createLoad(types_.lower(common), tmp);
    return RValue{out, common};
}

CodeGen::RValue
CodeGen::emitAssign(const AssignExpr &expr)
{
    if (expr.compound) {
        LValue lv = emitLValue(*expr.lhs);
        RValue old = loadLValue(lv, expr.loc);
        RValue rhs = emitExpr(*expr.rhs);
        RValue result = emitBinaryOp(expr.op, old, rhs, expr.loc);
        result = convert(result, lv.type, expr.loc);
        builder_.createStore(result.value, lv.addr);
        return result;
    }
    LValue lv = emitLValue(*expr.lhs);
    RValue rhs = emitExpr(*expr.rhs);
    if (lv.type->isStruct()) {
        if (rhs.type != lv.type)
            semaError(expr.loc, "mismatched struct assignment");
        emitStructCopy(lv.addr, rhs.value, lv.type);
        return RValue{lv.addr, lv.type};
    }
    rhs = convert(rhs, lv.type, expr.loc);
    builder_.createStore(rhs.value, lv.addr);
    return rhs;
}

CodeGen::RValue
CodeGen::emitCall(const CallExpr &expr)
{
    RValue callee = decay(emitExpr(*expr.callee));
    if (!callee.type->isPointer() || !callee.type->pointee()->isFunction())
        semaError(expr.loc, "called object is not a function");
    const CType *fn_type = callee.type->pointee();
    const auto &params = fn_type->paramTypes();
    if (expr.args.size() < params.size() ||
        (expr.args.size() > params.size() && !fn_type->isVarArg())) {
        semaError(expr.loc, "wrong number of arguments");
    }
    std::vector<Value *> args;
    for (size_t i = 0; i < expr.args.size(); i++) {
        RValue arg = emitExpr(*expr.args[i]);
        if (i < params.size())
            arg = convert(arg, params[i], expr.args[i]->loc);
        else
            arg = defaultPromote(arg, expr.args[i]->loc);
        if (arg.type->isStruct())
            semaError(expr.args[i]->loc,
                      "passing structs by value is not supported");
        args.push_back(arg.value);
    }
    const CType *ret = fn_type->returnType();
    Instruction *call =
        builder_.createCall(callee.value, types_.lower(ret), args);
    return RValue{ret->isVoid() ? nullptr : call, ret};
}

} // namespace sulong
