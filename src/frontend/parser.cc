#include "frontend/parser.h"

namespace sulong
{

Parser::Parser(std::vector<Token> tokens, CTypeContext &types,
               DiagnosticEngine &diags, TypedefMap &typedefs)
    : tokens_(std::move(tokens)), types_(types), diags_(diags),
      typedefs_(typedefs)
{
    if (tokens_.empty() || tokens_.back().kind != Tok::eof) {
        Token eof;
        eof.kind = Tok::eof;
        tokens_.push_back(eof);
    }
}

const Token &
Parser::peek(size_t ahead) const
{
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
}

const Token &
Parser::advance()
{
    const Token &tok = tokens_[pos_];
    if (pos_ + 1 < tokens_.size())
        pos_++;
    return tok;
}

bool
Parser::accept(Tok kind)
{
    if (!at(kind))
        return false;
    advance();
    return true;
}

const Token &
Parser::expect(Tok kind, const char *what)
{
    if (!at(kind)) {
        parseError(std::string("expected ") + what + ", found '" +
                   (peek().text.empty() ? tokName(peek().kind) : peek().text) +
                   "'");
    }
    return advance();
}

void
Parser::parseError(const std::string &message)
{
    diags_.error(peek().loc, message);
    throw ParseAbort{};
}

// -----------------------------------------------------------------------
// Types
// -----------------------------------------------------------------------

bool
Parser::isTypeStart(size_t ahead) const
{
    const Token &tok = peek(ahead);
    switch (tok.kind) {
      case Tok::kwVoid: case Tok::kwChar: case Tok::kwShort:
      case Tok::kwInt: case Tok::kwLong: case Tok::kwFloat:
      case Tok::kwDouble: case Tok::kwSigned: case Tok::kwUnsigned:
      case Tok::kwConst: case Tok::kwVolatile: case Tok::kwStruct:
      case Tok::kwUnion: case Tok::kwEnum: case Tok::kwVaList:
      case Tok::kwStatic: case Tok::kwExtern: case Tok::kwTypedef:
      case Tok::kwInline: case Tok::kwRestrict:
        return true;
      case Tok::identifier:
        return typedefs_.count(tok.text) > 0;
      default:
        return false;
    }
}

Parser::DeclSpec
Parser::parseDeclSpecifiers()
{
    DeclSpec spec;
    // Accumulated basic-type words.
    int n_long = 0, n_short = 0, n_signed = 0, n_unsigned = 0;
    int n_int = 0, n_char = 0, n_float = 0, n_double = 0, n_void = 0;
    const CType *named = nullptr; // struct / enum / typedef / va_list

    while (true) {
        switch (peek().kind) {
          case Tok::kwConst: case Tok::kwVolatile: case Tok::kwInline:
          case Tok::kwRestrict:
            advance();
            continue;
          case Tok::kwTypedef:
            spec.isTypedef = true;
            advance();
            continue;
          case Tok::kwStatic:
            spec.isStatic = true;
            advance();
            continue;
          case Tok::kwExtern:
            spec.isExtern = true;
            advance();
            continue;
          case Tok::kwVoid: n_void++; advance(); continue;
          case Tok::kwChar: n_char++; advance(); continue;
          case Tok::kwShort: n_short++; advance(); continue;
          case Tok::kwInt: n_int++; advance(); continue;
          case Tok::kwLong: n_long++; advance(); continue;
          case Tok::kwFloat: n_float++; advance(); continue;
          case Tok::kwDouble: n_double++; advance(); continue;
          case Tok::kwSigned: n_signed++; advance(); continue;
          case Tok::kwUnsigned: n_unsigned++; advance(); continue;
          case Tok::kwUnion:
            parseError("unions are not supported by mini-C");
          case Tok::kwStruct:
            named = parseStructSpecifier();
            continue;
          case Tok::kwEnum:
            named = parseEnumSpecifier();
            continue;
          case Tok::kwVaList:
            advance();
            named = types_.pointerTo(types_.voidTy());
            continue;
          case Tok::identifier: {
            // A typedef name, but only if no basic type was given yet.
            bool have_basic = n_long || n_short || n_signed || n_unsigned ||
                n_int || n_char || n_float || n_double || n_void;
            if (named == nullptr && !have_basic &&
                typedefs_.count(peek().text)) {
                named = typedefs_[advance().text];
                continue;
            }
            break;
          }
          default:
            break;
        }
        break;
    }

    if (named != nullptr) {
        spec.type = named;
        return spec;
    }
    if (n_void) {
        spec.type = types_.voidTy();
    } else if (n_char) {
        spec.type = n_unsigned ? types_.ucharTy() : types_.charTy();
    } else if (n_short) {
        spec.type = n_unsigned ? types_.ushortTy() : types_.shortTy();
    } else if (n_long) {
        spec.type = n_unsigned ? types_.ulongTy() : types_.longTy();
    } else if (n_float) {
        spec.type = types_.floatTy();
    } else if (n_double) {
        spec.type = types_.doubleTy();
    } else if (n_int || n_signed) {
        spec.type = n_unsigned ? types_.uintTy() : types_.intTy();
    } else if (n_unsigned) {
        spec.type = types_.uintTy();
    } else {
        parseError("expected a type");
    }
    return spec;
}

const CType *
Parser::parseStructSpecifier()
{
    expect(Tok::kwStruct, "'struct'");
    std::string tag;
    if (at(Tok::identifier))
        tag = advance().text;
    const CType *struct_type = types_.declareStruct(tag);
    if (accept(Tok::lbrace)) {
        if (struct_type->isCompleteStruct())
            parseError("redefinition of struct " + tag);
        std::vector<CField> fields;
        while (!accept(Tok::rbrace)) {
            DeclSpec spec = parseDeclSpecifiers();
            do {
                auto decl = parseDeclarator(false);
                std::string name;
                const CType *field_type =
                    applyDeclarator(spec.type, *decl, name, nullptr);
                if (field_type->isFunction())
                    parseError("struct field cannot have function type");
                fields.push_back(CField{name, field_type});
            } while (accept(Tok::comma));
            expect(Tok::semi, "';' after struct field");
        }
        types_.completeStruct(struct_type, std::move(fields));
    }
    return struct_type;
}

const CType *
Parser::parseEnumSpecifier()
{
    expect(Tok::kwEnum, "'enum'");
    if (at(Tok::identifier))
        advance(); // tag is irrelevant: all enums are int
    if (accept(Tok::lbrace)) {
        int64_t next = 0;
        while (!accept(Tok::rbrace)) {
            std::string name = expect(Tok::identifier, "enumerator").text;
            if (accept(Tok::assign)) {
                ExprPtr value = parseConditional();
                next = evalConstInt(*value);
            }
            if (unit_ != nullptr)
                unit_->enumConstants[name] = next;
            next++;
            if (!accept(Tok::comma) && !at(Tok::rbrace))
                parseError("expected ',' or '}' in enum");
        }
    }
    return types_.intTy();
}

std::unique_ptr<Parser::Declarator>
Parser::parseDeclarator(bool allow_abstract)
{
    auto decl = std::make_unique<Declarator>();
    while (accept(Tok::star)) {
        decl->pointerLevels++;
        while (accept(Tok::kwConst) || accept(Tok::kwVolatile) ||
               accept(Tok::kwRestrict)) {
        }
    }
    if (at(Tok::lparen) &&
        (peek(1).kind == Tok::star ||
         (peek(1).kind == Tok::lparen && peek(2).kind == Tok::star))) {
        // Nested declarator, e.g. the "(*f)" in "int (*f)(int)".
        advance();
        decl->inner = parseDeclarator(allow_abstract);
        expect(Tok::rparen, "')' after declarator");
    } else if (at(Tok::identifier)) {
        decl->name = advance().text;
    } else if (!allow_abstract) {
        parseError("expected a name in declarator");
    }
    while (true) {
        if (accept(Tok::lbracket)) {
            DeclSuffix suffix;
            suffix.isArray = true;
            if (!at(Tok::rbracket)) {
                ExprPtr len = parseConditional();
                int64_t value = evalConstInt(*len);
                if (value < 0)
                    parseError("negative array size");
                suffix.arrayLen = static_cast<uint64_t>(value);
            }
            expect(Tok::rbracket, "']'");
            decl->suffixes.push_back(std::move(suffix));
        } else if (at(Tok::lparen)) {
            advance();
            DeclSuffix suffix;
            parseParamList(suffix);
            if (decl->suffixes.empty())
                decl->paramNames = suffix.paramNames;
            decl->suffixes.push_back(std::move(suffix));
        } else {
            break;
        }
    }
    return decl;
}

void
Parser::parseParamList(DeclSuffix &suffix)
{
    suffix.isArray = false;
    if (accept(Tok::rparen))
        return;
    if (at(Tok::kwVoid) && peek(1).kind == Tok::rparen) {
        advance();
        advance();
        return;
    }
    while (true) {
        if (accept(Tok::ellipsis)) {
            suffix.varArg = true;
            expect(Tok::rparen, "')' after '...'");
            return;
        }
        DeclSpec spec = parseDeclSpecifiers();
        auto decl = parseDeclarator(true);
        std::string name;
        const CType *param_type =
            applyDeclarator(spec.type, *decl, name, nullptr);
        // Parameter adjustments: arrays and functions decay to pointers.
        if (param_type->isArray())
            param_type = types_.pointerTo(param_type->elemType());
        else if (param_type->isFunction())
            param_type = types_.pointerTo(param_type);
        suffix.params.push_back(param_type);
        suffix.paramNames.push_back(name);
        if (accept(Tok::rparen))
            return;
        expect(Tok::comma, "',' between parameters");
    }
}

const CType *
Parser::applyDeclarator(const CType *base, const Declarator &decl,
                        std::string &name,
                        std::vector<std::string> *param_names)
{
    const CType *type = base;
    for (unsigned i = 0; i < decl.pointerLevels; i++)
        type = types_.pointerTo(type);
    for (auto it = decl.suffixes.rbegin(); it != decl.suffixes.rend(); ++it) {
        if (it->isArray) {
            type = types_.arrayOf(type, it->arrayLen);
        } else {
            if (type->isArray() || type->isFunction())
                parseError("invalid function return type");
            type = types_.functionType(type, it->params, it->varArg);
        }
    }
    if (decl.inner != nullptr)
        return applyDeclarator(type, *decl.inner, name, param_names);
    name = decl.name;
    if (param_names != nullptr)
        *param_names = decl.paramNames;
    return type;
}

const CType *
Parser::parseTypeName()
{
    DeclSpec spec = parseDeclSpecifiers();
    auto decl = parseDeclarator(true);
    std::string name;
    const CType *type = applyDeclarator(spec.type, *decl, name, nullptr);
    if (!name.empty())
        parseError("type name must not declare '" + name + "'");
    return type;
}

// -----------------------------------------------------------------------
// Declarations
// -----------------------------------------------------------------------

void
Parser::parseInto(TranslationUnit &unit)
{
    unit_ = &unit;
    while (!at(Tok::eof)) {
        try {
            parseTopLevelDecl();
        } catch (const ParseAbort &) {
            // Skip to the next ';' or '}' at top level and continue.
            while (!at(Tok::eof) && !accept(Tok::semi) && !accept(Tok::rbrace))
                advance();
        }
    }
}

void
Parser::parseTopLevelDecl()
{
    SourceLoc loc = peek().loc;
    DeclSpec spec = parseDeclSpecifiers();
    if (accept(Tok::semi))
        return; // bare "struct foo {...};" or "enum {...};"

    bool first = true;
    while (true) {
        auto decl = parseDeclarator(false);
        std::string name;
        std::vector<std::string> param_names;
        const CType *type =
            applyDeclarator(spec.type, *decl, name, &param_names);

        if (spec.isTypedef) {
            typedefs_[name] = type;
        } else if (type->isFunction()) {
            if (first && at(Tok::lbrace)) {
                unit_->functions.push_back(parseFunctionDefinition(
                    spec, type, std::move(name), std::move(param_names),
                    loc));
                return;
            }
            // Prototype only.
            auto fn = std::make_unique<FunctionDecl>();
            fn->name = std::move(name);
            fn->type = type;
            fn->paramNames = std::move(param_names);
            fn->isStatic = spec.isStatic;
            fn->loc = loc;
            unit_->functions.push_back(std::move(fn));
        } else {
            VarDecl var;
            var.name = std::move(name);
            var.type = type;
            var.isStatic = spec.isStatic;
            var.isExtern = spec.isExtern;
            var.loc = loc;
            if (accept(Tok::assign))
                var.init = parseInitializer();
            unit_->globals.push_back(std::move(var));
        }
        first = false;
        if (accept(Tok::semi))
            return;
        expect(Tok::comma, "',' or ';' after declaration");
    }
}

std::unique_ptr<FunctionDecl>
Parser::parseFunctionDefinition(const DeclSpec &spec, const CType *type,
                                std::string name,
                                std::vector<std::string> param_names,
                                SourceLoc loc)
{
    auto fn = std::make_unique<FunctionDecl>();
    fn->name = std::move(name);
    fn->type = type;
    fn->paramNames = std::move(param_names);
    fn->isStatic = spec.isStatic;
    fn->loc = std::move(loc);
    fn->body = parseCompound();
    return fn;
}

ExprPtr
Parser::parseInitializer()
{
    if (at(Tok::lbrace)) {
        auto list = std::make_unique<InitListExpr>();
        list->loc = peek().loc;
        advance();
        while (!accept(Tok::rbrace)) {
            list->elems.push_back(parseInitializer());
            if (!accept(Tok::comma) && !at(Tok::rbrace))
                parseError("expected ',' or '}' in initializer");
        }
        return list;
    }
    return parseAssign();
}

// -----------------------------------------------------------------------
// Statements
// -----------------------------------------------------------------------

std::unique_ptr<CompoundStmt>
Parser::parseCompound()
{
    auto block = std::make_unique<CompoundStmt>();
    block->loc = peek().loc;
    expect(Tok::lbrace, "'{'");
    while (!accept(Tok::rbrace)) {
        if (at(Tok::eof))
            parseError("unterminated block");
        block->body.push_back(parseStmt());
    }
    return block;
}

StmtPtr
Parser::parseDeclStmt()
{
    auto stmt = std::make_unique<DeclStmt>();
    stmt->loc = peek().loc;
    DeclSpec spec = parseDeclSpecifiers();
    if (accept(Tok::semi))
        return stmt; // local struct/enum definition
    if (spec.isTypedef) {
        // Local typedefs get file scope in mini-C; rare but harmless.
        do {
            auto decl = parseDeclarator(false);
            std::string name;
            const CType *type =
                applyDeclarator(spec.type, *decl, name, nullptr);
            typedefs_[name] = type;
        } while (accept(Tok::comma));
        expect(Tok::semi, "';' after typedef");
        return stmt;
    }
    do {
        auto decl = parseDeclarator(false);
        VarDecl var;
        var.loc = stmt->loc;
        var.type = applyDeclarator(spec.type, *decl, var.name, nullptr);
        var.isStatic = spec.isStatic;
        var.isExtern = spec.isExtern;
        if (accept(Tok::assign))
            var.init = parseInitializer();
        stmt->vars.push_back(std::move(var));
    } while (accept(Tok::comma));
    expect(Tok::semi, "';' after declaration");
    return stmt;
}

StmtPtr
Parser::parseStmt()
{
    SourceLoc loc = peek().loc;
    switch (peek().kind) {
      case Tok::lbrace:
        return parseCompound();
      case Tok::semi:
        advance();
        return std::make_unique<NullStmt>();
      case Tok::kwIf: {
        advance();
        auto stmt = std::make_unique<IfStmt>();
        stmt->loc = std::move(loc);
        expect(Tok::lparen, "'(' after if");
        stmt->cond = parseExpr();
        expect(Tok::rparen, "')' after condition");
        stmt->thenStmt = parseStmt();
        if (accept(Tok::kwElse))
            stmt->elseStmt = parseStmt();
        return stmt;
      }
      case Tok::kwWhile: {
        advance();
        auto stmt = std::make_unique<WhileStmt>();
        stmt->loc = std::move(loc);
        expect(Tok::lparen, "'(' after while");
        stmt->cond = parseExpr();
        expect(Tok::rparen, "')' after condition");
        stmt->body = parseStmt();
        return stmt;
      }
      case Tok::kwDo: {
        advance();
        auto stmt = std::make_unique<DoWhileStmt>();
        stmt->loc = std::move(loc);
        stmt->body = parseStmt();
        expect(Tok::kwWhile, "'while' after do body");
        expect(Tok::lparen, "'('");
        stmt->cond = parseExpr();
        expect(Tok::rparen, "')'");
        expect(Tok::semi, "';'");
        return stmt;
      }
      case Tok::kwFor: {
        advance();
        auto stmt = std::make_unique<ForStmt>();
        stmt->loc = std::move(loc);
        expect(Tok::lparen, "'(' after for");
        if (!accept(Tok::semi)) {
            if (isTypeStart()) {
                stmt->init = parseDeclStmt();
            } else {
                auto init = std::make_unique<ExprStmt>();
                init->expr = parseExpr();
                stmt->init = std::move(init);
                expect(Tok::semi, "';' in for");
            }
        }
        if (!at(Tok::semi))
            stmt->cond = parseExpr();
        expect(Tok::semi, "';' in for");
        if (!at(Tok::rparen))
            stmt->step = parseExpr();
        expect(Tok::rparen, "')' after for header");
        stmt->body = parseStmt();
        return stmt;
      }
      case Tok::kwReturn: {
        advance();
        auto stmt = std::make_unique<ReturnStmt>();
        stmt->loc = std::move(loc);
        if (!at(Tok::semi))
            stmt->value = parseExpr();
        expect(Tok::semi, "';' after return");
        return stmt;
      }
      case Tok::kwBreak: {
        advance();
        expect(Tok::semi, "';' after break");
        auto stmt = std::make_unique<BreakStmt>();
        stmt->loc = std::move(loc);
        return stmt;
      }
      case Tok::kwContinue: {
        advance();
        expect(Tok::semi, "';' after continue");
        auto stmt = std::make_unique<ContinueStmt>();
        stmt->loc = std::move(loc);
        return stmt;
      }
      case Tok::kwSwitch: {
        advance();
        auto stmt = std::make_unique<SwitchStmt>();
        stmt->loc = std::move(loc);
        expect(Tok::lparen, "'(' after switch");
        stmt->cond = parseExpr();
        expect(Tok::rparen, "')'");
        stmt->body = parseStmt();
        return stmt;
      }
      case Tok::kwCase: {
        advance();
        auto stmt = std::make_unique<CaseStmt>();
        stmt->loc = std::move(loc);
        ExprPtr value = parseConditional();
        stmt->value = evalConstInt(*value);
        expect(Tok::colon, "':' after case value");
        stmt->sub = parseStmt();
        return stmt;
      }
      case Tok::kwDefault: {
        advance();
        auto stmt = std::make_unique<DefaultStmt>();
        stmt->loc = std::move(loc);
        expect(Tok::colon, "':' after default");
        stmt->sub = parseStmt();
        return stmt;
      }
      case Tok::kwGoto:
        parseError("goto is not supported by mini-C");
      default:
        break;
    }
    if (isTypeStart())
        return parseDeclStmt();
    auto stmt = std::make_unique<ExprStmt>();
    stmt->loc = std::move(loc);
    stmt->expr = parseExpr();
    expect(Tok::semi, "';' after expression");
    return stmt;
}

// -----------------------------------------------------------------------
// Expressions
// -----------------------------------------------------------------------

ExprPtr
Parser::parseExpr()
{
    ExprPtr lhs = parseAssign();
    while (at(Tok::comma)) {
        SourceLoc loc = advance().loc;
        auto comma = std::make_unique<CommaExpr>();
        comma->loc = std::move(loc);
        comma->lhs = std::move(lhs);
        comma->rhs = parseAssign();
        lhs = std::move(comma);
    }
    return lhs;
}

namespace
{

bool
tokenToAssignOp(Tok kind, BinaryOp &op, bool &compound)
{
    compound = true;
    switch (kind) {
      case Tok::assign: compound = false; return true;
      case Tok::plusAssign: op = BinaryOp::add; return true;
      case Tok::minusAssign: op = BinaryOp::sub; return true;
      case Tok::starAssign: op = BinaryOp::mul; return true;
      case Tok::slashAssign: op = BinaryOp::div; return true;
      case Tok::percentAssign: op = BinaryOp::rem; return true;
      case Tok::shlAssign: op = BinaryOp::shl; return true;
      case Tok::shrAssign: op = BinaryOp::shr; return true;
      case Tok::andAssign: op = BinaryOp::bitAnd; return true;
      case Tok::orAssign: op = BinaryOp::bitOr; return true;
      case Tok::xorAssign: op = BinaryOp::bitXor; return true;
      default: return false;
    }
}

/** Binary operator precedence (higher binds tighter); 0 = not binary. */
int
binaryPrec(Tok kind, BinaryOp &op)
{
    switch (kind) {
      case Tok::pipepipe: op = BinaryOp::logOr; return 1;
      case Tok::ampamp: op = BinaryOp::logAnd; return 2;
      case Tok::pipe: op = BinaryOp::bitOr; return 3;
      case Tok::caret: op = BinaryOp::bitXor; return 4;
      case Tok::amp: op = BinaryOp::bitAnd; return 5;
      case Tok::eqeq: op = BinaryOp::eq; return 6;
      case Tok::ne: op = BinaryOp::ne; return 6;
      case Tok::lt: op = BinaryOp::lt; return 7;
      case Tok::gt: op = BinaryOp::gt; return 7;
      case Tok::le: op = BinaryOp::le; return 7;
      case Tok::ge: op = BinaryOp::ge; return 7;
      case Tok::shl: op = BinaryOp::shl; return 8;
      case Tok::shr: op = BinaryOp::shr; return 8;
      case Tok::plus: op = BinaryOp::add; return 9;
      case Tok::minus: op = BinaryOp::sub; return 9;
      case Tok::star: op = BinaryOp::mul; return 10;
      case Tok::slash: op = BinaryOp::div; return 10;
      case Tok::percent: op = BinaryOp::rem; return 10;
      default: return 0;
    }
}

} // namespace

ExprPtr
Parser::parseAssign()
{
    ExprPtr lhs = parseConditional();
    BinaryOp op = BinaryOp::add;
    bool compound = false;
    if (tokenToAssignOp(peek().kind, op, compound)) {
        SourceLoc loc = advance().loc;
        auto assign = std::make_unique<AssignExpr>();
        assign->loc = std::move(loc);
        assign->compound = compound;
        assign->op = op;
        assign->lhs = std::move(lhs);
        assign->rhs = parseAssign();
        return assign;
    }
    return lhs;
}

ExprPtr
Parser::parseConditional()
{
    ExprPtr cond = parseBinary(1);
    if (!at(Tok::question))
        return cond;
    SourceLoc loc = advance().loc;
    auto expr = std::make_unique<ConditionalExpr>();
    expr->loc = std::move(loc);
    expr->cond = std::move(cond);
    expr->thenExpr = parseExpr();
    expect(Tok::colon, "':' in conditional");
    expr->elseExpr = parseConditional();
    return expr;
}

ExprPtr
Parser::parseBinary(int min_prec)
{
    ExprPtr lhs = parseUnary();
    while (true) {
        BinaryOp op = BinaryOp::add;
        int prec = binaryPrec(peek().kind, op);
        if (prec == 0 || prec < min_prec)
            return lhs;
        SourceLoc loc = advance().loc;
        auto bin = std::make_unique<BinaryExpr>();
        bin->loc = std::move(loc);
        bin->op = op;
        bin->lhs = std::move(lhs);
        bin->rhs = parseBinary(prec + 1);
        lhs = std::move(bin);
    }
}

ExprPtr
Parser::parseUnary()
{
    SourceLoc loc = peek().loc;
    auto makeUnary = [&](UnaryOp op) {
        advance();
        auto expr = std::make_unique<UnaryExpr>();
        expr->loc = loc;
        expr->op = op;
        expr->operand = parseUnary();
        return expr;
    };
    switch (peek().kind) {
      case Tok::minus: return makeUnary(UnaryOp::neg);
      case Tok::bang: return makeUnary(UnaryOp::logicalNot);
      case Tok::tilde: return makeUnary(UnaryOp::bitNot);
      case Tok::star: return makeUnary(UnaryOp::deref);
      case Tok::amp: return makeUnary(UnaryOp::addrOf);
      case Tok::plus:
        advance();
        return parseUnary();
      case Tok::plusplus: return makeUnary(UnaryOp::preInc);
      case Tok::minusminus: return makeUnary(UnaryOp::preDec);
      case Tok::kwSizeof: {
        advance();
        auto expr = std::make_unique<SizeofExpr>();
        expr->loc = std::move(loc);
        if (at(Tok::lparen) && isTypeStart(1)) {
            advance();
            expr->typeOperand = parseTypeName();
            expect(Tok::rparen, "')' after sizeof type");
        } else {
            expr->exprOperand = parseUnary();
        }
        return expr;
      }
      case Tok::lparen:
        if (isTypeStart(1)) {
            advance();
            const CType *target = parseTypeName();
            expect(Tok::rparen, "')' after cast type");
            auto expr = std::make_unique<CastExpr>();
            expr->loc = std::move(loc);
            expr->target = target;
            expr->operand = parseUnary();
            return expr;
        }
        break;
      default:
        break;
    }
    return parsePostfix(parsePrimary());
}

ExprPtr
Parser::parsePostfix(ExprPtr base)
{
    while (true) {
        SourceLoc loc = peek().loc;
        switch (peek().kind) {
          case Tok::lparen: {
            advance();
            auto call = std::make_unique<CallExpr>();
            call->loc = std::move(loc);
            call->callee = std::move(base);
            if (!accept(Tok::rparen)) {
                do {
                    call->args.push_back(parseAssign());
                } while (accept(Tok::comma));
                expect(Tok::rparen, "')' after call arguments");
            }
            base = std::move(call);
            break;
          }
          case Tok::lbracket: {
            advance();
            auto index = std::make_unique<IndexExpr>();
            index->loc = std::move(loc);
            index->base = std::move(base);
            index->index = parseExpr();
            expect(Tok::rbracket, "']'");
            base = std::move(index);
            break;
          }
          case Tok::dot:
          case Tok::arrow: {
            bool arrow = peek().kind == Tok::arrow;
            advance();
            auto member = std::make_unique<MemberExpr>();
            member->loc = std::move(loc);
            member->base = std::move(base);
            member->arrow = arrow;
            member->member = expect(Tok::identifier, "member name").text;
            base = std::move(member);
            break;
          }
          case Tok::plusplus:
          case Tok::minusminus: {
            bool inc = peek().kind == Tok::plusplus;
            advance();
            auto expr = std::make_unique<UnaryExpr>();
            expr->loc = std::move(loc);
            expr->op = inc ? UnaryOp::postInc : UnaryOp::postDec;
            expr->operand = std::move(base);
            base = std::move(expr);
            break;
          }
          default:
            return base;
        }
    }
}

ExprPtr
Parser::parsePrimary()
{
    SourceLoc loc = peek().loc;
    switch (peek().kind) {
      case Tok::intLiteral: {
        const Token &tok = advance();
        auto expr = std::make_unique<IntLitExpr>();
        expr->loc = std::move(loc);
        expr->value = tok.intValue;
        expr->isUnsigned = tok.isUnsigned;
        expr->isLong = tok.isLong;
        return expr;
      }
      case Tok::floatLiteral: {
        const Token &tok = advance();
        auto expr = std::make_unique<FloatLitExpr>();
        expr->loc = std::move(loc);
        expr->value = tok.floatValue;
        return expr;
      }
      case Tok::stringLiteral: {
        auto expr = std::make_unique<StringLitExpr>();
        expr->loc = std::move(loc);
        // Adjacent string literals concatenate.
        while (at(Tok::stringLiteral))
            expr->value += advance().stringValue;
        return expr;
      }
      case Tok::identifier: {
        auto expr = std::make_unique<IdentExpr>();
        expr->loc = std::move(loc);
        expr->name = advance().text;
        return expr;
      }
      case Tok::lparen: {
        advance();
        ExprPtr expr = parseExpr();
        expect(Tok::rparen, "')'");
        return expr;
      }
      case Tok::kwVaStart: {
        advance();
        expect(Tok::lparen, "'(' after va_start");
        auto expr = std::make_unique<VaStartExpr>();
        expr->loc = std::move(loc);
        expr->ap = parseAssign();
        if (accept(Tok::comma))
            expr->last = parseAssign();
        expect(Tok::rparen, "')'");
        return expr;
      }
      case Tok::kwVaArg: {
        advance();
        expect(Tok::lparen, "'(' after va_arg");
        auto expr = std::make_unique<VaArgExpr>();
        expr->loc = std::move(loc);
        expr->ap = parseAssign();
        expect(Tok::comma, "',' in va_arg");
        expr->argType = parseTypeName();
        expect(Tok::rparen, "')'");
        return expr;
      }
      case Tok::kwVaEnd: {
        advance();
        expect(Tok::lparen, "'(' after va_end");
        auto expr = std::make_unique<VaEndExpr>();
        expr->loc = std::move(loc);
        expr->ap = parseAssign();
        expect(Tok::rparen, "')'");
        return expr;
      }
      default:
        parseError("expected an expression");
    }
}

// -----------------------------------------------------------------------
// Constant expressions
// -----------------------------------------------------------------------

int64_t
Parser::evalConstInt(const Expr &expr)
{
    switch (expr.kind) {
      case ExprKind::intLit:
        return static_cast<int64_t>(
            static_cast<const IntLitExpr &>(expr).value);
      case ExprKind::ident: {
        const auto &ident = static_cast<const IdentExpr &>(expr);
        if (unit_ != nullptr) {
            auto it = unit_->enumConstants.find(ident.name);
            if (it != unit_->enumConstants.end())
                return it->second;
        }
        diags_.error(expr.loc,
                     "'" + ident.name + "' is not an integer constant");
        throw ParseAbort{};
      }
      case ExprKind::unary: {
        const auto &un = static_cast<const UnaryExpr &>(expr);
        int64_t v = evalConstInt(*un.operand);
        switch (un.op) {
          case UnaryOp::neg: return -v;
          case UnaryOp::logicalNot: return v == 0 ? 1 : 0;
          case UnaryOp::bitNot: return ~v;
          default:
            break;
        }
        break;
      }
      case ExprKind::binary: {
        const auto &bin = static_cast<const BinaryExpr &>(expr);
        int64_t l = evalConstInt(*bin.lhs);
        // Short-circuit forms first.
        if (bin.op == BinaryOp::logAnd)
            return (l != 0 && evalConstInt(*bin.rhs) != 0) ? 1 : 0;
        if (bin.op == BinaryOp::logOr)
            return (l != 0 || evalConstInt(*bin.rhs) != 0) ? 1 : 0;
        int64_t r = evalConstInt(*bin.rhs);
        switch (bin.op) {
          case BinaryOp::add: return l + r;
          case BinaryOp::sub: return l - r;
          case BinaryOp::mul: return l * r;
          case BinaryOp::div:
            if (r == 0)
                break;
            return l / r;
          case BinaryOp::rem:
            if (r == 0)
                break;
            return l % r;
          case BinaryOp::shl: return l << (r & 63);
          case BinaryOp::shr: return l >> (r & 63);
          case BinaryOp::lt: return l < r;
          case BinaryOp::gt: return l > r;
          case BinaryOp::le: return l <= r;
          case BinaryOp::ge: return l >= r;
          case BinaryOp::eq: return l == r;
          case BinaryOp::ne: return l != r;
          case BinaryOp::bitAnd: return l & r;
          case BinaryOp::bitOr: return l | r;
          case BinaryOp::bitXor: return l ^ r;
          default:
            break;
        }
        break;
      }
      case ExprKind::conditional: {
        const auto &cond = static_cast<const ConditionalExpr &>(expr);
        return evalConstInt(*cond.cond) != 0
            ? evalConstInt(*cond.thenExpr)
            : evalConstInt(*cond.elseExpr);
      }
      case ExprKind::cast: {
        const auto &cast = static_cast<const CastExpr &>(expr);
        int64_t v = evalConstInt(*cast.operand);
        if (cast.target->isInteger()) {
            uint64_t size = types_.sizeOf(cast.target);
            if (size < 8) {
                uint64_t mask = (1ull << (size * 8)) - 1;
                uint64_t raw = static_cast<uint64_t>(v) & mask;
                if (cast.target->isSignedInt() &&
                    (raw & (1ull << (size * 8 - 1)))) {
                    raw |= ~mask;
                }
                v = static_cast<int64_t>(raw);
            }
            return v;
        }
        break;
      }
      case ExprKind::sizeofExpr: {
        const auto &so = static_cast<const SizeofExpr &>(expr);
        if (so.typeOperand != nullptr)
            return static_cast<int64_t>(types_.sizeOf(so.typeOperand));
        // sizeof(expr) in constant contexts: support literals only.
        if (so.exprOperand->kind == ExprKind::stringLit) {
            return static_cast<int64_t>(
                static_cast<const StringLitExpr &>(*so.exprOperand)
                    .value.size() + 1);
        }
        break;
      }
      default:
        break;
    }
    diags_.error(expr.loc, "expression is not an integer constant");
    throw ParseAbort{};
}

} // namespace sulong
