#include "frontend/compiler.h"

#include <set>

#include "frontend/codegen.h"
#include "frontend/lexer.h"
#include "frontend/parser.h"
#include "ir/verifier.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sulong
{

const char *
builtinDeclarations()
{
    return R"(
/* Engine-implemented allocation entry points (Section 3.3 of the paper:
 * heap objects come from malloc/calloc/realloc and are freed by free). */
void *malloc(unsigned long size);
void free(void *ptr);
void *calloc(unsigned long nmemb, unsigned long size);
void *realloc(void *ptr, unsigned long size);

/* Host bridge ("system calls" of the execution environments). */
void __sys_exit(int code);
long __sys_write(int fd, const char *buf, long len);
int __sys_getchar(void);
long __sys_alloc_size(void *ptr);

/* Varargs support (count_varargs / get_vararg of the paper, Fig. 9). */
void *__va_start(void);
void *__va_arg_ptr(void *ap);
void __va_end(void *ap);
int __va_count(void);

/* Math intrinsics backed by the host libm. */
double sqrt(double x);
double sin(double x);
double cos(double x);
double tan(double x);
double atan(double x);
double atan2(double y, double x);
double exp(double x);
double log(double x);
double pow(double x, double y);
double floor(double x);
double ceil(double x);
double fabs(double x);
double fmod(double x, double y);
)";
}

const std::vector<std::string> &
intrinsicNames()
{
    static const std::vector<std::string> names = {
        "malloc", "free", "calloc", "realloc",
        "__sys_exit", "__sys_write", "__sys_getchar", "__sys_alloc_size",
        "__va_start", "__va_arg_ptr", "__va_end", "__va_count",
        "sqrt", "sin", "cos", "tan", "atan", "atan2", "exp", "log",
        "pow", "floor", "ceil", "fabs", "fmod",
    };
    return names;
}

CompileResult
compileC(const std::vector<SourceFile> &sources,
         const CompileOptions &options)
{
    MS_TRACE_SPAN("frontend.compile");
    obs::MetricsRegistry::global().counter("frontend.compiles").inc();
    CompileResult result;
    DiagnosticEngine diags;
    auto module = std::make_unique<Module>();
    CTypeContext ctypes(module->types());
    TranslationUnit unit;

    std::vector<SourceFile> all;
    if (options.injectBuiltins)
        all.push_back(SourceFile{"<builtins>", builtinDeclarations()});
    for (const auto &src : sources)
        all.push_back(src);

    TypedefMap typedefs;
    {
        MS_TRACE_SPAN("frontend.parse");
        for (const auto &src : all) {
            Lexer lexer(src.name, src.text, diags);
            Parser parser(lexer.lexAll(), ctypes, diags, typedefs);
            parser.parseInto(unit);
        }
    }
    if (diags.hasErrors()) {
        result.errors = diags.dump();
        return result;
    }

    {
        MS_TRACE_SPAN("frontend.codegen");
        CodeGen codegen(*module, ctypes, diags);
        codegen.generate(unit);
    }
    if (diags.hasErrors()) {
        result.errors = diags.dump();
        return result;
    }

    // Mark engine intrinsics.
    std::set<std::string> intrinsics(intrinsicNames().begin(),
                                     intrinsicNames().end());
    for (const auto &fn : module->functions()) {
        if (fn->isDeclaration() && intrinsics.count(fn->name()))
            fn->setIntrinsic(true);
    }

    MS_TRACE_SPAN("frontend.verify");
    module->finalize();
    auto issues = verifyModule(*module);
    if (!issues.empty()) {
        result.errors = "internal: codegen produced invalid IR:\n" +
            formatIssues(issues);
        return result;
    }
    result.warningCount = diags.warningCount();
    result.errors = diags.dump(); // warnings, if any
    result.module = std::move(module);
    return result;
}

CompileResult
compileC(const std::string &source, const CompileOptions &options)
{
    return compileC(std::vector<SourceFile>{SourceFile{"<input>", source}},
                    options);
}

} // namespace sulong
