/**
 * @file
 * Abstract syntax tree of mini-C. Produced by the Parser, consumed by
 * CodeGen (which performs semantic checking while lowering to IR).
 */

#ifndef MS_FRONTEND_AST_H
#define MS_FRONTEND_AST_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "frontend/ctype.h"
#include "support/diagnostics.h"

namespace sulong
{

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

enum class ExprKind : uint8_t
{
    intLit,
    floatLit,
    stringLit,
    ident,
    unary,
    binary,
    assign,
    conditional,
    cast,
    call,
    index,
    member,
    sizeofExpr,
    comma,
    initList,
    vaStart,
    vaArg,
    vaEnd,
};

enum class UnaryOp : uint8_t
{
    neg,        ///< -x
    logicalNot, ///< !x
    bitNot,     ///< ~x
    deref,      ///< *x
    addrOf,     ///< &x
    preInc, preDec, postInc, postDec,
};

enum class BinaryOp : uint8_t
{
    add, sub, mul, div, rem,
    shl, shr,
    lt, gt, le, ge, eq, ne,
    bitAnd, bitOr, bitXor,
    logAnd, logOr,
};

/** Base class of all expressions. */
struct Expr
{
    explicit Expr(ExprKind k) : kind(k) {}
    virtual ~Expr() = default;

    ExprKind kind;
    SourceLoc loc;
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr : Expr
{
    IntLitExpr() : Expr(ExprKind::intLit) {}
    uint64_t value = 0;
    bool isUnsigned = false;
    bool isLong = false;
};

struct FloatLitExpr : Expr
{
    FloatLitExpr() : Expr(ExprKind::floatLit) {}
    double value = 0;
};

struct StringLitExpr : Expr
{
    StringLitExpr() : Expr(ExprKind::stringLit) {}
    std::string value; ///< decoded bytes, without the implicit NUL
};

struct IdentExpr : Expr
{
    IdentExpr() : Expr(ExprKind::ident) {}
    std::string name;
};

struct UnaryExpr : Expr
{
    UnaryExpr() : Expr(ExprKind::unary) {}
    UnaryOp op = UnaryOp::neg;
    ExprPtr operand;
};

struct BinaryExpr : Expr
{
    BinaryExpr() : Expr(ExprKind::binary) {}
    BinaryOp op = BinaryOp::add;
    ExprPtr lhs;
    ExprPtr rhs;
};

/** Plain or compound assignment; op is nullopt-like when plain. */
struct AssignExpr : Expr
{
    AssignExpr() : Expr(ExprKind::assign) {}
    bool compound = false;
    BinaryOp op = BinaryOp::add; ///< meaningful when compound
    ExprPtr lhs;
    ExprPtr rhs;
};

struct ConditionalExpr : Expr
{
    ConditionalExpr() : Expr(ExprKind::conditional) {}
    ExprPtr cond;
    ExprPtr thenExpr;
    ExprPtr elseExpr;
};

struct CastExpr : Expr
{
    CastExpr() : Expr(ExprKind::cast) {}
    const CType *target = nullptr;
    ExprPtr operand;
};

struct CallExpr : Expr
{
    CallExpr() : Expr(ExprKind::call) {}
    ExprPtr callee;
    std::vector<ExprPtr> args;
};

struct IndexExpr : Expr
{
    IndexExpr() : Expr(ExprKind::index) {}
    ExprPtr base;
    ExprPtr index;
};

struct MemberExpr : Expr
{
    MemberExpr() : Expr(ExprKind::member) {}
    ExprPtr base;
    std::string member;
    bool arrow = false; ///< true for `->`, false for `.`
};

struct SizeofExpr : Expr
{
    SizeofExpr() : Expr(ExprKind::sizeofExpr) {}
    /// Either a type operand...
    const CType *typeOperand = nullptr;
    /// ...or an expression operand (only one is set).
    ExprPtr exprOperand;
};

struct CommaExpr : Expr
{
    CommaExpr() : Expr(ExprKind::comma) {}
    ExprPtr lhs;
    ExprPtr rhs;
};

/** Brace initializer `{...}`; only valid in declarations. */
struct InitListExpr : Expr
{
    InitListExpr() : Expr(ExprKind::initList) {}
    std::vector<ExprPtr> elems;
};

struct VaStartExpr : Expr
{
    VaStartExpr() : Expr(ExprKind::vaStart) {}
    ExprPtr ap;
    ExprPtr last; ///< may be null (we do not need it, like the paper)
};

struct VaArgExpr : Expr
{
    VaArgExpr() : Expr(ExprKind::vaArg) {}
    ExprPtr ap;
    const CType *argType = nullptr;
};

struct VaEndExpr : Expr
{
    VaEndExpr() : Expr(ExprKind::vaEnd) {}
    ExprPtr ap;
};

// ---------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------

enum class StmtKind : uint8_t
{
    expr,
    decl,
    compound,
    ifStmt,
    whileStmt,
    doWhileStmt,
    forStmt,
    returnStmt,
    breakStmt,
    continueStmt,
    switchStmt,
    caseStmt,
    defaultStmt,
    nullStmt,
};

struct Stmt
{
    explicit Stmt(StmtKind k) : kind(k) {}
    virtual ~Stmt() = default;

    StmtKind kind;
    SourceLoc loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct ExprStmt : Stmt
{
    ExprStmt() : Stmt(StmtKind::expr) {}
    ExprPtr expr;
};

/** One declared variable within a declaration statement. */
struct VarDecl
{
    std::string name;
    const CType *type = nullptr;
    ExprPtr init;      ///< scalar init or InitListExpr; may be null
    bool isStatic = false;
    bool isExtern = false;
    SourceLoc loc;
};

struct DeclStmt : Stmt
{
    DeclStmt() : Stmt(StmtKind::decl) {}
    std::vector<VarDecl> vars;
};

struct CompoundStmt : Stmt
{
    CompoundStmt() : Stmt(StmtKind::compound) {}
    std::vector<StmtPtr> body;
};

struct IfStmt : Stmt
{
    IfStmt() : Stmt(StmtKind::ifStmt) {}
    ExprPtr cond;
    StmtPtr thenStmt;
    StmtPtr elseStmt; ///< may be null
};

struct WhileStmt : Stmt
{
    WhileStmt() : Stmt(StmtKind::whileStmt) {}
    ExprPtr cond;
    StmtPtr body;
};

struct DoWhileStmt : Stmt
{
    DoWhileStmt() : Stmt(StmtKind::doWhileStmt) {}
    StmtPtr body;
    ExprPtr cond;
};

struct ForStmt : Stmt
{
    ForStmt() : Stmt(StmtKind::forStmt) {}
    StmtPtr init;  ///< DeclStmt, ExprStmt or null
    ExprPtr cond;  ///< may be null (infinite)
    ExprPtr step;  ///< may be null
    StmtPtr body;
};

struct ReturnStmt : Stmt
{
    ReturnStmt() : Stmt(StmtKind::returnStmt) {}
    ExprPtr value; ///< may be null
};

struct BreakStmt : Stmt
{
    BreakStmt() : Stmt(StmtKind::breakStmt) {}
};

struct ContinueStmt : Stmt
{
    ContinueStmt() : Stmt(StmtKind::continueStmt) {}
};

struct SwitchStmt : Stmt
{
    SwitchStmt() : Stmt(StmtKind::switchStmt) {}
    ExprPtr cond;
    StmtPtr body; ///< CompoundStmt containing Case/Default labels
};

struct CaseStmt : Stmt
{
    CaseStmt() : Stmt(StmtKind::caseStmt) {}
    int64_t value = 0;
    StmtPtr sub; ///< the labelled statement
};

struct DefaultStmt : Stmt
{
    DefaultStmt() : Stmt(StmtKind::defaultStmt) {}
    StmtPtr sub;
};

struct NullStmt : Stmt
{
    NullStmt() : Stmt(StmtKind::nullStmt) {}
};

// ---------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------

/** A function definition or prototype. */
struct FunctionDecl
{
    std::string name;
    const CType *type = nullptr; ///< a CTypeKind::function type
    std::vector<std::string> paramNames;
    std::unique_ptr<CompoundStmt> body; ///< null for prototypes
    bool isStatic = false;
    SourceLoc loc;
};

/** One parsed translation unit (plus everything #included by proxy). */
struct TranslationUnit
{
    std::vector<VarDecl> globals;
    std::vector<std::unique_ptr<FunctionDecl>> functions;
    /// Enum constants usable as integer constant expressions.
    std::map<std::string, int64_t> enumConstants;
};

} // namespace sulong

#endif // MS_FRONTEND_AST_H
