/**
 * @file
 * The C-level type system of the mini-C front end.
 *
 * IR types are signedness-free (like LLVM IR); C semantics (signed vs.
 * unsigned arithmetic, integer promotions, usual arithmetic conversions,
 * array decay) live here and drive instruction selection in codegen.
 */

#ifndef MS_FRONTEND_CTYPE_H
#define MS_FRONTEND_CTYPE_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/type.h"

namespace sulong
{

/** C type discriminator. Integer kinds are ordered by conversion rank. */
enum class CTypeKind : uint8_t
{
    voidTy,
    charTy,     ///< plain char; signed on our target
    ucharTy,
    shortTy,
    ushortTy,
    intTy,
    uintTy,
    longTy,     ///< 64-bit (LP64)
    ulongTy,
    floatTy,
    doubleTy,
    pointer,
    array,
    structTy,
    function,
};

class CType;

/** One struct member. */
struct CField
{
    std::string name;
    const CType *type = nullptr;
};

/**
 * An immutable, interned C type.
 */
class CType
{
  public:
    CTypeKind kind() const { return kind_; }

    bool isVoid() const { return kind_ == CTypeKind::voidTy; }
    bool isInteger() const
    {
        return kind_ >= CTypeKind::charTy && kind_ <= CTypeKind::ulongTy;
    }
    bool isFloat() const
    {
        return kind_ == CTypeKind::floatTy || kind_ == CTypeKind::doubleTy;
    }
    bool isArithmetic() const { return isInteger() || isFloat(); }
    bool isPointer() const { return kind_ == CTypeKind::pointer; }
    bool isArray() const { return kind_ == CTypeKind::array; }
    bool isStruct() const { return kind_ == CTypeKind::structTy; }
    bool isFunction() const { return kind_ == CTypeKind::function; }
    /// Usable in conditions / as an rvalue after decay.
    bool isScalar() const
    {
        return isArithmetic() || isPointer();
    }

    bool isSignedInt() const
    {
        switch (kind_) {
          case CTypeKind::charTy: case CTypeKind::shortTy:
          case CTypeKind::intTy: case CTypeKind::longTy:
            return true;
          default:
            return false;
        }
    }
    bool isUnsignedInt() const { return isInteger() && !isSignedInt(); }

    /// Conversion rank: char/uchar=1, short=2, int=3, long=4.
    int intRank() const;

    const CType *pointee() const { return elem_; }
    const CType *elemType() const { return elem_; }
    /// Array length; 0 means an incomplete array type (e.g. `int a[]`).
    uint64_t arrayLength() const { return arrayLen_; }

    const std::string &structName() const { return name_; }
    const std::vector<CField> &fields() const { return fields_; }
    bool isCompleteStruct() const { return structComplete_; }
    const CField *fieldNamed(const std::string &name) const;

    const CType *returnType() const { return elem_; }
    const std::vector<const CType *> &paramTypes() const { return params_; }
    bool isVarArg() const { return varArg_; }

    /** Render roughly like C ("int", "char *", "struct foo [4]"). */
    std::string toString() const;

  private:
    friend class CTypeContext;
    CType() = default;

    CTypeKind kind_ = CTypeKind::voidTy;
    const CType *elem_ = nullptr;
    uint64_t arrayLen_ = 0;
    std::string name_;
    std::vector<CField> fields_;
    bool structComplete_ = false;
    std::vector<const CType *> params_;
    bool varArg_ = false;
};

/**
 * Owns, interns, and lowers C types. One per compilation; bound to the
 * Module's TypeContext for layout queries and IR lowering.
 */
class CTypeContext
{
  public:
    explicit CTypeContext(TypeContext &ir_types);
    CTypeContext(const CTypeContext &) = delete;
    CTypeContext &operator=(const CTypeContext &) = delete;

    const CType *voidTy() const { return &basics_[0]; }
    const CType *charTy() const { return &basics_[1]; }
    const CType *ucharTy() const { return &basics_[2]; }
    const CType *shortTy() const { return &basics_[3]; }
    const CType *ushortTy() const { return &basics_[4]; }
    const CType *intTy() const { return &basics_[5]; }
    const CType *uintTy() const { return &basics_[6]; }
    const CType *longTy() const { return &basics_[7]; }
    const CType *ulongTy() const { return &basics_[8]; }
    const CType *floatTy() const { return &basics_[9]; }
    const CType *doubleTy() const { return &basics_[10]; }

    const CType *pointerTo(const CType *pointee);
    const CType *arrayOf(const CType *elem, uint64_t count);

    /** Declare (or fetch) a struct tag; starts incomplete. */
    const CType *declareStruct(const std::string &tag);
    /** Complete a struct with fields; error to complete twice. */
    void completeStruct(const CType *struct_type,
                        std::vector<CField> fields);
    const CType *findStruct(const std::string &tag) const;

    const CType *functionType(const CType *ret,
                              std::vector<const CType *> params,
                              bool var_arg);

    /** Size in bytes (via IR lowering). Arrays of len 0 have size 0. */
    uint64_t sizeOf(const CType *type);

    /**
     * Lower a C type to its IR type (char -> i8, pointers -> ptr,
     * structs -> interned IR struct, functions -> IR function type).
     */
    const Type *lower(const CType *type);

    /** Result of the C integer promotions (char/short -> int). */
    const CType *promote(const CType *type) const;

    /** Usual arithmetic conversions for a binary operator. */
    const CType *usualArithmetic(const CType *lhs, const CType *rhs) const;

    TypeContext &irTypes() { return irTypes_; }

  private:
    CType *allocate();

    TypeContext &irTypes_;
    CType basics_[11];
    std::vector<std::unique_ptr<CType>> owned_;
    std::map<const CType *, const CType *> pointers_;
    std::map<std::pair<const CType *, uint64_t>, const CType *> arrays_;
    std::map<std::string, CType *> structs_;
    std::map<std::string, const CType *> functions_;
    std::map<const CType *, const Type *> loweredStructs_;
    unsigned anonStructCount_ = 0;
};

} // namespace sulong

#endif // MS_FRONTEND_CTYPE_H
