/**
 * @file
 * Recursive-descent parser for mini-C.
 *
 * Produces a TranslationUnit AST. Handles the full C declarator syntax
 * for the supported subset (pointers, arrays, function pointers), struct
 * and enum definitions, typedefs, and constant-expression evaluation for
 * array bounds, enum values, and case labels.
 */

#ifndef MS_FRONTEND_PARSER_H
#define MS_FRONTEND_PARSER_H

#include <unordered_map>

#include "frontend/ast.h"
#include "frontend/token.h"

namespace sulong
{

/** Typedef table shared across all files of one compilation. */
using TypedefMap = std::unordered_map<std::string, const CType *>;

class Parser
{
  public:
    Parser(std::vector<Token> tokens, CTypeContext &types,
           DiagnosticEngine &diags, TypedefMap &typedefs);

    /**
     * Parse the whole token stream into @p unit (which may already hold
     * declarations from previously parsed files of the same program).
     */
    void parseInto(TranslationUnit &unit);

  private:
    // --- Token stream ----------------------------------------------------
    const Token &peek(size_t ahead = 0) const;
    const Token &advance();
    bool at(Tok kind) const { return peek().kind == kind; }
    bool accept(Tok kind);
    const Token &expect(Tok kind, const char *what);
    [[noreturn]] void parseError(const std::string &message);

    // --- Types and declarators --------------------------------------------
    struct DeclSpec
    {
        const CType *type = nullptr;
        bool isTypedef = false;
        bool isStatic = false;
        bool isExtern = false;
    };

    /** Suffix of a direct declarator: an array bound or a param list. */
    struct DeclSuffix
    {
        bool isArray = false;
        uint64_t arrayLen = 0;
        std::vector<const CType *> params;
        std::vector<std::string> paramNames;
        bool varArg = false;
    };

    /** Parsed declarator before type construction. */
    struct Declarator
    {
        unsigned pointerLevels = 0;
        std::unique_ptr<Declarator> inner;
        std::string name;
        std::vector<DeclSuffix> suffixes;
        /// Parameter names of the outermost function suffix (if any).
        std::vector<std::string> paramNames;
    };

    bool isTypeStart(size_t ahead = 0) const;
    DeclSpec parseDeclSpecifiers();
    const CType *parseStructSpecifier();
    const CType *parseEnumSpecifier();
    std::unique_ptr<Declarator> parseDeclarator(bool allow_abstract);
    const CType *applyDeclarator(const CType *base, const Declarator &decl,
                                 std::string &name,
                                 std::vector<std::string> *param_names);
    /** Parse "type-name" as used in casts, sizeof, and va_arg. */
    const CType *parseTypeName();
    void parseParamList(DeclSuffix &suffix);

    // --- Declarations ------------------------------------------------------
    void parseTopLevelDecl();
    std::unique_ptr<FunctionDecl>
    parseFunctionDefinition(const DeclSpec &spec, const CType *type,
                            std::string name,
                            std::vector<std::string> param_names,
                            SourceLoc loc);
    ExprPtr parseInitializer();

    // --- Statements ---------------------------------------------------------
    StmtPtr parseStmt();
    std::unique_ptr<CompoundStmt> parseCompound();
    StmtPtr parseDeclStmt();

    // --- Expressions ----------------------------------------------------------
    ExprPtr parseExpr();
    ExprPtr parseAssign();
    ExprPtr parseConditional();
    ExprPtr parseBinary(int min_prec);
    ExprPtr parseUnary();
    ExprPtr parsePostfix(ExprPtr base);
    ExprPtr parsePrimary();

    // --- Constant expressions ---------------------------------------------------
    int64_t evalConstInt(const Expr &expr);

    std::vector<Token> tokens_;
    size_t pos_ = 0;
    CTypeContext &types_;
    DiagnosticEngine &diags_;
    TranslationUnit *unit_ = nullptr;
    TypedefMap &typedefs_;
};

/** Error used internally for parse-abort; carries no payload. */
struct ParseAbort
{
};

} // namespace sulong

#endif // MS_FRONTEND_PARSER_H
