/**
 * @file
 * Token definitions for the mini-C lexer.
 */

#ifndef MS_FRONTEND_TOKEN_H
#define MS_FRONTEND_TOKEN_H

#include <cstdint>
#include <string>

#include "support/diagnostics.h"

namespace sulong
{

/** Token kinds of mini-C. */
enum class Tok : uint8_t
{
    eof,
    identifier,
    intLiteral,
    floatLiteral,
    charLiteral,
    stringLiteral,

    // Keywords.
    kwVoid, kwChar, kwShort, kwInt, kwLong, kwFloat, kwDouble,
    kwSigned, kwUnsigned, kwConst, kwVolatile, kwStatic, kwExtern,
    kwStruct, kwUnion, kwEnum, kwTypedef, kwSizeof,
    kwIf, kwElse, kwWhile, kwDo, kwFor, kwReturn, kwBreak, kwContinue,
    kwSwitch, kwCase, kwDefault, kwGoto, kwInline, kwRestrict,
    // Varargs builtins are keywords so va_arg can take a type operand.
    kwVaStart, kwVaArg, kwVaEnd, kwVaList,

    // Punctuation.
    lparen, rparen, lbrace, rbrace, lbracket, rbracket,
    semi, comma, colon, question, ellipsis,
    arrow, dot,
    plus, minus, star, slash, percent,
    amp, pipe, caret, tilde, bang,
    shl, shr,
    lt, gt, le, ge, eqeq, ne,
    ampamp, pipepipe,
    assign, plusAssign, minusAssign, starAssign, slashAssign,
    percentAssign, shlAssign, shrAssign, andAssign, orAssign, xorAssign,
    plusplus, minusminus,
};

/** @return a printable name for diagnostics. */
const char *tokName(Tok kind);

/** One lexed token. */
struct Token
{
    Tok kind = Tok::eof;
    SourceLoc loc;
    /// Identifier or literal spelling.
    std::string text;
    /// Value of integer / char literals.
    uint64_t intValue = 0;
    /// Value of float literals.
    double floatValue = 0;
    /// Decoded bytes of string literals (escapes resolved, no quotes).
    std::string stringValue;
    /// True when an integer literal had a U suffix.
    bool isUnsigned = false;
    /// True when an integer literal had an L/LL suffix.
    bool isLong = false;

    bool is(Tok k) const { return kind == k; }
};

} // namespace sulong

#endif // MS_FRONTEND_TOKEN_H
