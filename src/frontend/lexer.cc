#include "frontend/lexer.h"

#include <cctype>
#include <cstdlib>

namespace sulong
{

namespace
{

const std::map<std::string, Tok> &
keywordTable()
{
    static const std::map<std::string, Tok> table = {
        {"void", Tok::kwVoid},       {"char", Tok::kwChar},
        {"short", Tok::kwShort},     {"int", Tok::kwInt},
        {"long", Tok::kwLong},       {"float", Tok::kwFloat},
        {"double", Tok::kwDouble},   {"signed", Tok::kwSigned},
        {"unsigned", Tok::kwUnsigned}, {"const", Tok::kwConst},
        {"volatile", Tok::kwVolatile}, {"static", Tok::kwStatic},
        {"extern", Tok::kwExtern},   {"struct", Tok::kwStruct},
        {"union", Tok::kwUnion},     {"enum", Tok::kwEnum},
        {"typedef", Tok::kwTypedef}, {"sizeof", Tok::kwSizeof},
        {"if", Tok::kwIf},           {"else", Tok::kwElse},
        {"while", Tok::kwWhile},     {"do", Tok::kwDo},
        {"for", Tok::kwFor},         {"return", Tok::kwReturn},
        {"break", Tok::kwBreak},     {"continue", Tok::kwContinue},
        {"switch", Tok::kwSwitch},   {"case", Tok::kwCase},
        {"default", Tok::kwDefault}, {"goto", Tok::kwGoto},
        {"inline", Tok::kwInline},   {"restrict", Tok::kwRestrict},
        {"va_start", Tok::kwVaStart}, {"va_arg", Tok::kwVaArg},
        {"va_end", Tok::kwVaEnd},    {"va_list", Tok::kwVaList},
        {"__builtin_va_start", Tok::kwVaStart},
        {"__builtin_va_arg", Tok::kwVaArg},
        {"__builtin_va_end", Tok::kwVaEnd},
    };
    return table;
}

} // namespace

const char *
tokName(Tok kind)
{
    switch (kind) {
      case Tok::eof: return "end of file";
      case Tok::identifier: return "identifier";
      case Tok::intLiteral: return "integer literal";
      case Tok::floatLiteral: return "float literal";
      case Tok::charLiteral: return "character literal";
      case Tok::stringLiteral: return "string literal";
      case Tok::lparen: return "'('";
      case Tok::rparen: return "')'";
      case Tok::lbrace: return "'{'";
      case Tok::rbrace: return "'}'";
      case Tok::lbracket: return "'['";
      case Tok::rbracket: return "']'";
      case Tok::semi: return "';'";
      case Tok::comma: return "','";
      case Tok::colon: return "':'";
      case Tok::question: return "'?'";
      case Tok::ellipsis: return "'...'";
      case Tok::arrow: return "'->'";
      case Tok::dot: return "'.'";
      case Tok::assign: return "'='";
      default: return "token";
    }
}

Lexer::Lexer(std::string file_name, std::string_view source,
             DiagnosticEngine &diags)
    : file_(std::move(file_name)), source_(source), diags_(diags)
{}

SourceLoc
Lexer::here() const
{
    return SourceLoc{file_, line_, col_};
}

char
Lexer::peek(size_t ahead) const
{
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
}

char
Lexer::advance()
{
    char c = source_[pos_++];
    if (c == '\n') {
        line_++;
        col_ = 1;
    } else {
        col_++;
    }
    return c;
}

bool
Lexer::match(char expected)
{
    if (peek() != expected)
        return false;
    advance();
    return true;
}

void
Lexer::skipWhitespaceAndComments()
{
    while (pos_ < source_.size()) {
        char c = peek();
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
        } else if (c == '/' && peek(1) == '/') {
            while (pos_ < source_.size() && peek() != '\n')
                advance();
        } else if (c == '/' && peek(1) == '*') {
            SourceLoc start = here();
            advance();
            advance();
            while (pos_ < source_.size() &&
                   !(peek() == '*' && peek(1) == '/')) {
                advance();
            }
            if (pos_ >= source_.size()) {
                diags_.error(start, "unterminated block comment");
                return;
            }
            advance();
            advance();
        } else {
            return;
        }
    }
}

void
Lexer::handleDirective()
{
    SourceLoc start = here();
    advance(); // '#'
    // Read the directive name.
    std::string name;
    while (std::isalpha(static_cast<unsigned char>(peek())))
        name += advance();
    if (name == "include") {
        // Ignore the rest of the line: libc headers are implicit.
        while (pos_ < source_.size() && peek() != '\n')
            advance();
        return;
    }
    if (name == "define") {
        while (peek() == ' ' || peek() == '\t')
            advance();
        std::string macro;
        while (std::isalnum(static_cast<unsigned char>(peek())) ||
               peek() == '_') {
            macro += advance();
        }
        if (macro.empty()) {
            diags_.error(start, "#define without a name");
            return;
        }
        if (peek() == '(') {
            diags_.error(start, "function-like macros are not supported");
            while (pos_ < source_.size() && peek() != '\n')
                advance();
            return;
        }
        // Lex the replacement tokens on the rest of this line.
        std::vector<Token> replacement;
        while (true) {
            while (peek() == ' ' || peek() == '\t')
                advance();
            if (pos_ >= source_.size() || peek() == '\n')
                break;
            Token tok = next();
            if (tok.kind == Tok::eof)
                break;
            replacement.push_back(std::move(tok));
        }
        macros_[macro] = std::move(replacement);
        return;
    }
    diags_.error(start, "unsupported preprocessor directive '#" + name + "'");
    while (pos_ < source_.size() && peek() != '\n')
        advance();
}

Token
Lexer::makeToken(Tok kind)
{
    Token tok;
    tok.kind = kind;
    tok.loc = here();
    return tok;
}

Token
Lexer::lexIdentifier()
{
    Token tok = makeToken(Tok::identifier);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
        tok.text += advance();
    auto kw = keywordTable().find(tok.text);
    if (kw != keywordTable().end())
        tok.kind = kw->second;
    return tok;
}

Token
Lexer::lexNumber()
{
    Token tok = makeToken(Tok::intLiteral);
    std::string text;
    bool is_float = false;
    bool is_hex = false;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        is_hex = true;
        text += advance();
        text += advance();
        while (std::isxdigit(static_cast<unsigned char>(peek())))
            text += advance();
    } else {
        while (std::isdigit(static_cast<unsigned char>(peek())))
            text += advance();
        if (peek() == '.' && peek(1) != '.') {
            // "1.5", "3." and "3.f" are all float literals.
            is_float = true;
            text += advance();
            while (std::isdigit(static_cast<unsigned char>(peek())))
                text += advance();
        }
        if (peek() == 'e' || peek() == 'E') {
            size_t save = pos_;
            std::string exp;
            exp += advance();
            if (peek() == '+' || peek() == '-')
                exp += advance();
            if (std::isdigit(static_cast<unsigned char>(peek()))) {
                is_float = true;
                while (std::isdigit(static_cast<unsigned char>(peek())))
                    exp += advance();
                text += exp;
            } else {
                pos_ = save; // not an exponent after all
            }
        }
    }
    // Suffixes.
    if (is_float) {
        if (peek() == 'f' || peek() == 'F')
            advance(); // float literal; we keep double precision
        else if (peek() == 'l' || peek() == 'L')
            advance();
        tok.kind = Tok::floatLiteral;
        tok.floatValue = std::strtod(text.c_str(), nullptr);
    } else {
        while (true) {
            if (peek() == 'u' || peek() == 'U') {
                tok.isUnsigned = true;
                advance();
            } else if (peek() == 'l' || peek() == 'L') {
                tok.isLong = true;
                advance();
            } else {
                break;
            }
        }
        tok.intValue = std::strtoull(text.c_str(), nullptr, is_hex ? 16 : 10);
    }
    tok.text = std::move(text);
    return tok;
}

int
Lexer::decodeEscape()
{
    // Called after the backslash has been consumed.
    char c = advance();
    switch (c) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      case 'b': return '\b';
      case 'f': return '\f';
      case 'v': return '\v';
      case 'a': return '\a';
      case '\\': return '\\';
      case '\'': return '\'';
      case '"': return '"';
      case 'x': {
        int value = 0;
        while (std::isxdigit(static_cast<unsigned char>(peek()))) {
            char d = advance();
            int digit = std::isdigit(static_cast<unsigned char>(d))
                ? d - '0' : (std::tolower(d) - 'a' + 10);
            value = value * 16 + digit;
        }
        return value & 0xff;
      }
      default:
        diags_.error(here(), std::string("unknown escape '\\") + c + "'");
        return c;
    }
}

Token
Lexer::lexCharLiteral()
{
    Token tok = makeToken(Tok::charLiteral);
    advance(); // opening quote
    int value = 0;
    if (peek() == '\\') {
        advance();
        value = decodeEscape();
    } else {
        value = static_cast<unsigned char>(advance());
    }
    if (!match('\''))
        diags_.error(tok.loc, "unterminated character literal");
    tok.kind = Tok::intLiteral;
    tok.intValue = static_cast<uint64_t>(value);
    tok.text = "'c'";
    return tok;
}

Token
Lexer::lexStringLiteral()
{
    Token tok = makeToken(Tok::stringLiteral);
    advance(); // opening quote
    while (pos_ < source_.size() && peek() != '"') {
        if (peek() == '\n') {
            diags_.error(tok.loc, "unterminated string literal");
            break;
        }
        if (peek() == '\\') {
            advance();
            tok.stringValue += static_cast<char>(decodeEscape());
        } else {
            tok.stringValue += advance();
        }
    }
    match('"');
    return tok;
}

Token
Lexer::next()
{
    skipWhitespaceAndComments();
    if (pos_ >= source_.size())
        return makeToken(Tok::eof);
    char c = peek();
    if (c == '#' && col_ == 1) {
        handleDirective();
        return next();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
        return lexIdentifier();
    if (std::isdigit(static_cast<unsigned char>(c)))
        return lexNumber();
    if (c == '\'')
        return lexCharLiteral();
    if (c == '"')
        return lexStringLiteral();

    Token tok = makeToken(Tok::eof);
    advance();
    switch (c) {
      case '(': tok.kind = Tok::lparen; break;
      case ')': tok.kind = Tok::rparen; break;
      case '{': tok.kind = Tok::lbrace; break;
      case '}': tok.kind = Tok::rbrace; break;
      case '[': tok.kind = Tok::lbracket; break;
      case ']': tok.kind = Tok::rbracket; break;
      case ';': tok.kind = Tok::semi; break;
      case ',': tok.kind = Tok::comma; break;
      case ':': tok.kind = Tok::colon; break;
      case '?': tok.kind = Tok::question; break;
      case '~': tok.kind = Tok::tilde; break;
      case '.':
        if (peek() == '.' && peek(1) == '.') {
            advance();
            advance();
            tok.kind = Tok::ellipsis;
        } else {
            tok.kind = Tok::dot;
        }
        break;
      case '+':
        tok.kind = match('+') ? Tok::plusplus
            : match('=') ? Tok::plusAssign : Tok::plus;
        break;
      case '-':
        tok.kind = match('-') ? Tok::minusminus
            : match('=') ? Tok::minusAssign
            : match('>') ? Tok::arrow : Tok::minus;
        break;
      case '*': tok.kind = match('=') ? Tok::starAssign : Tok::star; break;
      case '/': tok.kind = match('=') ? Tok::slashAssign : Tok::slash; break;
      case '%':
        tok.kind = match('=') ? Tok::percentAssign : Tok::percent;
        break;
      case '&':
        tok.kind = match('&') ? Tok::ampamp
            : match('=') ? Tok::andAssign : Tok::amp;
        break;
      case '|':
        tok.kind = match('|') ? Tok::pipepipe
            : match('=') ? Tok::orAssign : Tok::pipe;
        break;
      case '^': tok.kind = match('=') ? Tok::xorAssign : Tok::caret; break;
      case '!': tok.kind = match('=') ? Tok::ne : Tok::bang; break;
      case '=': tok.kind = match('=') ? Tok::eqeq : Tok::assign; break;
      case '<':
        if (match('<'))
            tok.kind = match('=') ? Tok::shlAssign : Tok::shl;
        else
            tok.kind = match('=') ? Tok::le : Tok::lt;
        break;
      case '>':
        if (match('>'))
            tok.kind = match('=') ? Tok::shrAssign : Tok::shr;
        else
            tok.kind = match('=') ? Tok::ge : Tok::gt;
        break;
      default:
        diags_.error(tok.loc, std::string("unexpected character '") + c + "'");
        return next();
    }
    return tok;
}

std::vector<Token>
Lexer::lexAll()
{
    std::vector<Token> tokens;
    while (true) {
        Token tok = next();
        if (tok.kind == Tok::identifier) {
            auto macro = macros_.find(tok.text);
            if (macro != macros_.end()) {
                for (const Token &rep : macro->second) {
                    Token copy = rep;
                    copy.loc = tok.loc;
                    tokens.push_back(std::move(copy));
                }
                continue;
            }
        }
        bool done = tok.kind == Tok::eof;
        tokens.push_back(std::move(tok));
        if (done)
            return tokens;
    }
}

} // namespace sulong
