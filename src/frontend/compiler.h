/**
 * @file
 * Top-level mini-C compiler entry point: source text in, IR Module out.
 *
 * Plays the role Clang -O0 plays in the paper's pipeline (Fig. 4): no
 * optimizations are applied here. Optimization pipelines (including the
 * UB-exploiting ones that can delete bugs, P2) live in src/opt/ and are
 * applied explicitly by the driver.
 */

#ifndef MS_FRONTEND_COMPILER_H
#define MS_FRONTEND_COMPILER_H

#include <memory>
#include <string>
#include <vector>

#include "ir/module.h"
#include "support/diagnostics.h"

namespace sulong
{

/** One input file: a logical name (for diagnostics) plus its contents. */
struct SourceFile
{
    std::string name;
    std::string text;
};

struct CompileOptions
{
    /// Prepend declarations of the engine intrinsics (__sys_*, malloc...).
    bool injectBuiltins = true;
};

struct CompileResult
{
    std::unique_ptr<Module> module; ///< null when compilation failed
    std::string errors;             ///< rendered diagnostics
    size_t warningCount = 0;

    bool ok() const { return module != nullptr; }
};

/**
 * Compile and "link" several mini-C sources into one module.
 *
 * All sources share one type context and one symbol namespace, which is
 * how the paper's setup links the user program with its safe libc.
 */
CompileResult compileC(const std::vector<SourceFile> &sources,
                       const CompileOptions &options = {});

/** Convenience wrapper for a single anonymous source. */
CompileResult compileC(const std::string &source,
                       const CompileOptions &options = {});

/** Names of the functions engines implement natively. */
const std::vector<std::string> &intrinsicNames();

/** The mini-C declarations injected by injectBuiltins. */
const char *builtinDeclarations();

} // namespace sulong

#endif // MS_FRONTEND_COMPILER_H
