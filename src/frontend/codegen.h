/**
 * @file
 * Semantic analysis + IR generation for mini-C.
 *
 * Mirrors what Clang -O0 does for the supported subset: every local lives
 * in an alloca, expressions lower to loads/stores/gep without any
 * optimization, and no undefined-behaviour-based transformation happens
 * here (the risk the paper attributes to real front ends is modelled
 * separately by the optimizer pipelines in src/opt/).
 */

#ifndef MS_FRONTEND_CODEGEN_H
#define MS_FRONTEND_CODEGEN_H

#include <unordered_map>

#include "frontend/ast.h"
#include "ir/builder.h"

namespace sulong
{

class CodeGen
{
  public:
    CodeGen(Module &module, CTypeContext &types, DiagnosticEngine &diags);

    /** Lower a translation unit into the module. */
    void generate(const TranslationUnit &unit);

  private:
    /** An expression result: an IR value plus its C type. */
    struct RValue
    {
        Value *value = nullptr;
        const CType *type = nullptr;
    };

    /** An addressable location: address value plus the located C type. */
    struct LValue
    {
        Value *addr = nullptr;
        const CType *type = nullptr;
    };

    struct LocalVar
    {
        Value *addr = nullptr;
        const CType *type = nullptr;
    };

    // --- Declarations ------------------------------------------------
    void declareFunctions(const TranslationUnit &unit);
    void emitGlobals(const TranslationUnit &unit);
    void emitFunction(const FunctionDecl &decl);
    Initializer constInitializer(const Expr *init, const CType *type);

    // --- Statements ---------------------------------------------------
    void emitStmt(const Stmt &stmt);
    void emitLocalDecl(const VarDecl &var);
    void emitLocalInit(Value *addr, const CType *type, const Expr &init);
    void emitZeroInit(Value *addr, const CType *type);
    void emitSwitch(const SwitchStmt &stmt);

    // --- Expressions ---------------------------------------------------
    RValue emitExpr(const Expr &expr);
    LValue emitLValue(const Expr &expr);
    RValue loadLValue(const LValue &lv, const SourceLoc &loc);
    RValue emitBinary(const BinaryExpr &expr);
    RValue emitBinaryOp(BinaryOp op, RValue lhs, RValue rhs,
                        const SourceLoc &loc);
    RValue emitAssign(const AssignExpr &expr);
    RValue emitUnary(const UnaryExpr &expr);
    RValue emitCall(const CallExpr &expr);
    RValue emitConditional(const ConditionalExpr &expr);
    RValue emitLogical(const BinaryExpr &expr);
    void emitStructCopy(Value *dst, Value *src, const CType *type);

    /** Truthiness of a scalar as an i1 value. */
    Value *emitCondition(const Expr &expr);
    Value *toBool(RValue v, const SourceLoc &loc);

    /** Implicit/explicit conversion of @p v to @p to. */
    RValue convert(RValue v, const CType *to, const SourceLoc &loc,
                   bool explicit_cast = false);
    /** Array-to-pointer and function-to-pointer decay. */
    RValue decay(RValue v);
    /** Default argument promotions for variadic arguments. */
    RValue defaultPromote(RValue v, const SourceLoc &loc);

    // --- Helpers --------------------------------------------------------
    GlobalVariable *stringLiteral(const std::string &bytes);
    Value *zeroValue(const CType *type);
    const CType *typeOfMember(const CType *struct_type,
                              const std::string &name, uint64_t &offset,
                              const SourceLoc &loc);
    [[noreturn]] void semaError(const SourceLoc &loc,
                                const std::string &message);
    void pushScope() { scopes_.emplace_back(); }
    void popScope() { scopes_.pop_back(); }
    LocalVar *findLocal(const std::string &name);
    BasicBlock *newBlock(const std::string &hint);
    /** Create an alloca in the entry block (hoisted, Clang-style). */
    Instruction *createLocalAlloca(const Type *type, std::string name);

    Module &module_;
    CTypeContext &types_;
    DiagnosticEngine &diags_;
    IRBuilder builder_;

    const TranslationUnit *unit_ = nullptr;
    Function *curFn_ = nullptr;
    const CType *curFnType_ = nullptr;
    BasicBlock *entryBlock_ = nullptr;
    std::vector<std::unordered_map<std::string, LocalVar>> scopes_;
    std::vector<BasicBlock *> breakTargets_;
    std::vector<BasicBlock *> continueTargets_;
    std::unordered_map<std::string, GlobalVariable *> stringPool_;
    std::unordered_map<std::string, const CType *> globalTypes_;
    std::unordered_map<std::string, const CType *> functionTypes_;
    unsigned blockCount_ = 0;
    unsigned staticLocalCount_ = 0;
};

/** Thrown to abort codegen of one function after a semantic error. */
struct SemaAbort
{
};

} // namespace sulong

#endif // MS_FRONTEND_CODEGEN_H
