/**
 * @file
 * The C standard library shipped with the engines (paper Section 3.1).
 *
 * Two variants exist:
 *  - `safe`: written in plain standard C, optimized for safety — byte-wise
 *    string loops, no undefined-behaviour tricks. This is what Safe
 *    Sulong interprets, so bugs in arguments to libc functions are found
 *    by the same automatic checks as user code (addresses P4).
 *  - `nativeOptimized`: the same API implemented with the performance
 *    tricks of production libcs — word-wise strlen/strcmp that read up to
 *    a word past the NUL terminator. Harmless on the flat native memory
 *    model, but exactly the pattern that forces shadow-memory tools to
 *    skip instrumenting libc and rely on (incomplete) interceptors.
 */

#ifndef MS_LIBC_LIBC_SOURCES_H
#define MS_LIBC_LIBC_SOURCES_H

#include "frontend/compiler.h"

namespace sulong
{

enum class LibcVariant : uint8_t
{
    safe,
    nativeOptimized,
};

/** The libc translation units for one compilation. */
std::vector<SourceFile> libcSources(LibcVariant variant);

/** Names of all public libc functions provided (for tests and docs). */
std::vector<std::string> libcFunctionNames();

} // namespace sulong

#endif // MS_LIBC_LIBC_SOURCES_H
