#include "libc/libc_sources.h"

namespace sulong
{

namespace
{

// ---------------------------------------------------------------------
// Prelude: shared types and globals.
// ---------------------------------------------------------------------
const char *PRELUDE = R"C(
typedef unsigned long size_t;
typedef long ssize_t;
typedef long ptrdiff_t;
typedef signed char int8_t;
typedef unsigned char uint8_t;
typedef short int16_t;
typedef unsigned short uint16_t;
typedef int int32_t;
typedef unsigned int uint32_t;
typedef long int64_t;
typedef unsigned long uint64_t;
typedef long intptr_t;
typedef unsigned long uintptr_t;

enum { NULL = 0, EOF = -1, RAND_MAX = 2147483647 };

struct __FILE { int fd; };
typedef struct __FILE FILE;

FILE __stdin_file = {0};
FILE __stdout_file = {1};
FILE __stderr_file = {2};
FILE *stdin = &__stdin_file;
FILE *stdout = &__stdout_file;
FILE *stderr = &__stderr_file;
)C";

// ---------------------------------------------------------------------
// ctype.h
// ---------------------------------------------------------------------
const char *CTYPE_C = R"C(
int isdigit(int c) { return c >= '0' && c <= '9'; }
int isupper(int c) { return c >= 'A' && c <= 'Z'; }
int islower(int c) { return c >= 'a' && c <= 'z'; }
int isalpha(int c) { return isupper(c) || islower(c); }
int isalnum(int c) { return isalpha(c) || isdigit(c); }
int isspace(int c)
{
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' ||
        c == '\v' || c == '\f';
}
int isxdigit(int c)
{
    return isdigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}
int isprint(int c) { return c >= 32 && c < 127; }
int ispunct(int c) { return isprint(c) && c != ' ' && !isalnum(c); }
int iscntrl(int c) { return (c >= 0 && c < 32) || c == 127; }
int toupper(int c) { return islower(c) ? c - 'a' + 'A' : c; }
int tolower(int c) { return isupper(c) ? c - 'A' + 'a' : c; }
)C";

// ---------------------------------------------------------------------
// string.h — safe variant: byte-wise loops, no tricks.
// ---------------------------------------------------------------------
const char *STRING_SAFE_C = R"C(
size_t strlen(const char *s)
{
    size_t n = 0;
    while (s[n] != 0)
        n++;
    return n;
}

char *strcpy(char *dest, const char *src)
{
    size_t i = 0;
    while (src[i] != 0) {
        dest[i] = src[i];
        i++;
    }
    dest[i] = 0;
    return dest;
}

char *strncpy(char *dest, const char *src, size_t n)
{
    size_t i = 0;
    while (i < n && src[i] != 0) {
        dest[i] = src[i];
        i++;
    }
    while (i < n) {
        dest[i] = 0;
        i++;
    }
    return dest;
}

char *strcat(char *dest, const char *src)
{
    size_t d = strlen(dest);
    size_t i = 0;
    while (src[i] != 0) {
        dest[d + i] = src[i];
        i++;
    }
    dest[d + i] = 0;
    return dest;
}

char *strncat(char *dest, const char *src, size_t n)
{
    size_t d = strlen(dest);
    size_t i = 0;
    while (i < n && src[i] != 0) {
        dest[d + i] = src[i];
        i++;
    }
    dest[d + i] = 0;
    return dest;
}

int strcmp(const char *a, const char *b)
{
    size_t i = 0;
    while (a[i] != 0 && a[i] == b[i])
        i++;
    return (unsigned char)a[i] - (unsigned char)b[i];
}

int strncmp(const char *a, const char *b, size_t n)
{
    size_t i = 0;
    if (n == 0)
        return 0;
    while (i + 1 < n && a[i] != 0 && a[i] == b[i])
        i++;
    return (unsigned char)a[i] - (unsigned char)b[i];
}

char *strchr(const char *s, int c)
{
    size_t i = 0;
    while (1) {
        if (s[i] == (char)c)
            return (char *)(s + i);
        if (s[i] == 0)
            return NULL;
        i++;
    }
}

char *strrchr(const char *s, int c)
{
    const char *found = NULL;
    size_t i = 0;
    while (1) {
        if (s[i] == (char)c)
            found = s + i;
        if (s[i] == 0)
            return (char *)found;
        i++;
    }
}

char *strstr(const char *haystack, const char *needle)
{
    if (needle[0] == 0)
        return (char *)haystack;
    for (size_t i = 0; haystack[i] != 0; i++) {
        size_t j = 0;
        while (needle[j] != 0 && haystack[i + j] == needle[j])
            j++;
        if (needle[j] == 0)
            return (char *)(haystack + i);
    }
    return NULL;
}

size_t strspn(const char *s, const char *accept)
{
    size_t n = 0;
    while (s[n] != 0 && strchr(accept, s[n]) != NULL)
        n++;
    return n;
}

size_t strcspn(const char *s, const char *reject)
{
    size_t n = 0;
    while (s[n] != 0 && strchr(reject, s[n]) == NULL)
        n++;
    return n;
}

char *strpbrk(const char *s, const char *accept)
{
    while (*s != 0) {
        if (strchr(accept, *s) != NULL)
            return (char *)s;
        s++;
    }
    return NULL;
}

char *strtok(char *str, const char *delim)
{
    static char *saved = NULL;
    if (str != NULL)
        saved = str;
    if (saved == NULL)
        return NULL;
    saved += strspn(saved, delim);
    if (*saved == 0) {
        saved = NULL;
        return NULL;
    }
    char *token = saved;
    saved += strcspn(saved, delim);
    if (*saved != 0) {
        *saved = 0;
        saved++;
    } else {
        saved = NULL;
    }
    return token;
}

char *strdup(const char *s)
{
    size_t n = strlen(s);
    char *copy = malloc(n + 1);
    if (copy == NULL)
        return NULL;
    for (size_t i = 0; i <= n; i++)
        copy[i] = s[i];
    return copy;
}

void *memset(void *dest, int c, size_t n)
{
    char *d = dest;
    for (size_t i = 0; i < n; i++)
        d[i] = (char)c;
    return dest;
}

void *memcpy(void *dest, const void *src, size_t n)
{
    /* Pointer-sized copies keep pointer payloads intact on the managed
     * engine; byte copies handle the rest. */
    if (n % 8 == 0 && (uintptr_t)dest % 8 == 0 && (uintptr_t)src % 8 == 0) {
        void **d = dest;
        void **s = (void **)src;
        for (size_t i = 0; i < n / 8; i++)
            d[i] = s[i];
        return dest;
    }
    char *d = dest;
    const char *s = src;
    for (size_t i = 0; i < n; i++)
        d[i] = s[i];
    return dest;
}

void *memmove(void *dest, const void *src, size_t n)
{
    char *d = dest;
    const char *s = src;
    if (d == s || n == 0)
        return dest;
    if (d < s) {
        for (size_t i = 0; i < n; i++)
            d[i] = s[i];
    } else {
        size_t i = n;
        while (i > 0) {
            i--;
            d[i] = s[i];
        }
    }
    return dest;
}

int memcmp(const void *a, const void *b, size_t n)
{
    const unsigned char *x = a;
    const unsigned char *y = b;
    for (size_t i = 0; i < n; i++) {
        if (x[i] != y[i])
            return x[i] - y[i];
    }
    return 0;
}

size_t strnlen(const char *s, size_t maxlen)
{
    size_t n = 0;
    while (n < maxlen && s[n] != 0)
        n++;
    return n;
}

int strcasecmp(const char *a, const char *b)
{
    size_t i = 0;
    while (a[i] != 0 && tolower((unsigned char)a[i]) ==
           tolower((unsigned char)b[i]))
        i++;
    return tolower((unsigned char)a[i]) - tolower((unsigned char)b[i]);
}

int strncasecmp(const char *a, const char *b, size_t n)
{
    if (n == 0)
        return 0;
    size_t i = 0;
    while (i + 1 < n && a[i] != 0 &&
           tolower((unsigned char)a[i]) == tolower((unsigned char)b[i]))
        i++;
    return tolower((unsigned char)a[i]) - tolower((unsigned char)b[i]);
}

void bzero(void *dest, size_t n) { memset(dest, 0, n); }

void *memchr(const void *s, int c, size_t n)
{
    const unsigned char *p = s;
    for (size_t i = 0; i < n; i++) {
        if (p[i] == (unsigned char)c)
            return (void *)(p + i);
    }
    return NULL;
}
)C";

// ---------------------------------------------------------------------
// string.h — native-optimized variant: word-wise tricks like production
// libcs (Hacker's-Delight strlen). These read past the terminator, which
// is why shadow-memory tools cannot instrument real libc code (P4).
// ---------------------------------------------------------------------
const char *STRING_OPT_PREFIX = R"C(
size_t strlen(const char *s)
{
    /* Align, then scan a word at a time using the (w-0x0101..)&~w&0x8080..
     * zero-byte trick; deliberately reads up to 7 bytes past the NUL. */
    const char *p = s;
    while ((uintptr_t)p % 8 != 0) {
        if (*p == 0)
            return (size_t)(p - s);
        p++;
    }
    const unsigned long *w = (const unsigned long *)p;
    while (1) {
        unsigned long v = *w;
        if (((v - 0x0101010101010101ul) & ~v & 0x8080808080808080ul) != 0) {
            const char *q = (const char *)w;
            while (*q != 0)
                q++;
            return (size_t)(q - s);
        }
        w++;
    }
}

int strcmp(const char *a, const char *b)
{
    /* Word-wise compare while both pointers are aligned. */
    while ((uintptr_t)a % 8 == 0 && (uintptr_t)b % 8 == 0) {
        unsigned long va = *(const unsigned long *)a;
        unsigned long vb = *(const unsigned long *)b;
        if (va != vb)
            break;
        if (((va - 0x0101010101010101ul) & ~va &
             0x8080808080808080ul) != 0) {
            return 0;
        }
        a += 8;
        b += 8;
    }
    size_t i = 0;
    while (a[i] != 0 && a[i] == b[i])
        i++;
    return (unsigned char)a[i] - (unsigned char)b[i];
}
)C";

// ---------------------------------------------------------------------
// stdlib.h
// ---------------------------------------------------------------------
const char *STDLIB_C = R"C(
void exit(int code) { __sys_exit(code); }
void abort(void) { __sys_exit(134); }

int abs(int v) { return v < 0 ? -v : v; }
long labs(long v) { return v < 0 ? -v : v; }

static unsigned long __rand_state = 1;

void srand(unsigned int seed) { __rand_state = seed; }

int rand(void)
{
    __rand_state = __rand_state * 6364136223846793005ul +
        1442695040888963407ul;
    return (int)((__rand_state >> 33) & 0x7fffffff);
}

long strtol(const char *s, char **endptr, int base)
{
    size_t i = 0;
    while (isspace((unsigned char)s[i]))
        i++;
    int negative = 0;
    if (s[i] == '+' || s[i] == '-') {
        negative = s[i] == '-';
        i++;
    }
    if ((base == 0 || base == 16) && s[i] == '0' &&
        (s[i + 1] == 'x' || s[i + 1] == 'X')) {
        base = 16;
        i += 2;
    } else if (base == 0 && s[i] == '0') {
        base = 8;
    } else if (base == 0) {
        base = 10;
    }
    long value = 0;
    int any = 0;
    while (1) {
        int c = (unsigned char)s[i];
        int digit;
        if (isdigit(c))
            digit = c - '0';
        else if (c >= 'a' && c <= 'z')
            digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'Z')
            digit = c - 'A' + 10;
        else
            break;
        if (digit >= base)
            break;
        value = value * base + digit;
        any = 1;
        i++;
    }
    if (endptr != NULL)
        *endptr = (char *)(any ? s + i : s);
    return negative ? -value : value;
}

unsigned long strtoul(const char *s, char **endptr, int base)
{
    size_t i = 0;
    while (isspace((unsigned char)s[i]))
        i++;
    int negative = 0;
    if (s[i] == '+' || s[i] == '-') {
        negative = s[i] == '-';
        i++;
    }
    if ((base == 0 || base == 16) && s[i] == '0' &&
        (s[i + 1] == 'x' || s[i + 1] == 'X')) {
        base = 16;
        i += 2;
    } else if (base == 0 && s[i] == '0') {
        base = 8;
    } else if (base == 0) {
        base = 10;
    }
    unsigned long value = 0;
    int any = 0;
    while (1) {
        int c = (unsigned char)s[i];
        int digit;
        if (isdigit(c))
            digit = c - '0';
        else if (c >= 'a' && c <= 'z')
            digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'Z')
            digit = c - 'A' + 10;
        else
            break;
        if (digit >= base)
            break;
        value = value * (unsigned long)base + (unsigned long)digit;
        any = 1;
        i++;
    }
    if (endptr != NULL)
        *endptr = (char *)(any ? s + i : s);
    if (negative)
        return (unsigned long)0 - value;
    return value;
}

int atoi(const char *s) { return (int)strtol(s, NULL, 10); }
long atol(const char *s) { return strtol(s, NULL, 10); }
long atoll(const char *s) { return strtol(s, NULL, 10); }
long llabs(long v) { return v < 0 ? -v : v; }

double strtod(const char *s, char **endptr)
{
    size_t i = 0;
    while (isspace((unsigned char)s[i]))
        i++;
    int negative = 0;
    if (s[i] == '+' || s[i] == '-') {
        negative = s[i] == '-';
        i++;
    }
    double value = 0;
    while (isdigit((unsigned char)s[i])) {
        value = value * 10.0 + (s[i] - '0');
        i++;
    }
    if (s[i] == '.') {
        i++;
        double scale = 0.1;
        while (isdigit((unsigned char)s[i])) {
            value += (s[i] - '0') * scale;
            scale *= 0.1;
            i++;
        }
    }
    if (s[i] == 'e' || s[i] == 'E') {
        i++;
        int eneg = 0;
        if (s[i] == '+' || s[i] == '-') {
            eneg = s[i] == '-';
            i++;
        }
        int ev = 0;
        while (isdigit((unsigned char)s[i])) {
            ev = ev * 10 + (s[i] - '0');
            i++;
        }
        while (ev > 0) {
            value = eneg ? value / 10.0 : value * 10.0;
            ev--;
        }
    }
    if (endptr != NULL)
        *endptr = (char *)(s + i);
    return negative ? -value : value;
}

double atof(const char *s) { return strtod(s, NULL); }

static void __qsort_swap(char *a, char *b, size_t size)
{
    if (size % 8 == 0) {
        void **pa = (void **)a;
        void **pb = (void **)b;
        for (size_t i = 0; i < size / 8; i++) {
            void *tmp = pa[i];
            pa[i] = pb[i];
            pb[i] = tmp;
        }
        return;
    }
    for (size_t i = 0; i < size; i++) {
        char tmp = a[i];
        a[i] = b[i];
        b[i] = tmp;
    }
}

static void __qsort_rec(char *base, long lo, long hi, size_t size,
                        int (*cmp)(const void *, const void *))
{
    while (lo < hi) {
        /* Median-of-ends pivot, Hoare-style partition. */
        long mid = lo + (hi - lo) / 2;
        __qsort_swap(base + mid * size, base + hi * size, size);
        char *pivot = base + hi * size;
        long store = lo;
        for (long i = lo; i < hi; i++) {
            if (cmp(base + i * size, pivot) < 0) {
                __qsort_swap(base + i * size, base + store * size, size);
                store++;
            }
        }
        __qsort_swap(base + store * size, base + hi * size, size);
        if (store - lo < hi - store) {
            __qsort_rec(base, lo, store - 1, size, cmp);
            lo = store + 1;
        } else {
            __qsort_rec(base, store + 1, hi, size, cmp);
            hi = store - 1;
        }
    }
}

void qsort(void *base, size_t nmemb, size_t size,
           int (*cmp)(const void *, const void *))
{
    if (nmemb > 1)
        __qsort_rec(base, 0, (long)nmemb - 1, size, cmp);
}

void *bsearch(const void *key, const void *base, size_t nmemb, size_t size,
              int (*cmp)(const void *, const void *))
{
    size_t lo = 0;
    size_t hi = nmemb;
    while (lo < hi) {
        size_t mid = lo + (hi - lo) / 2;
        const char *elem = (const char *)base + mid * size;
        int c = cmp(key, elem);
        if (c == 0)
            return (void *)elem;
        if (c < 0)
            hi = mid;
        else
            lo = mid + 1;
    }
    return NULL;
}
)C";

// ---------------------------------------------------------------------
// stdio.h
// ---------------------------------------------------------------------
const char *STDIO_C = R"C(
/* One-character pushback shared by getchar/fgetc/fgets/scanf/ungetc. */
static int __scan_ungot = -2; /* -2: empty */

static int __scan_get(void)
{
    if (__scan_ungot != -2) {
        int c = __scan_ungot;
        __scan_ungot = -2;
        return c;
    }
    return __sys_getchar();
}

static void __scan_unget(int c) { __scan_ungot = c; }

int putchar(int c)
{
    char b = (char)c;
    __sys_write(1, &b, 1);
    return c;
}

int getchar(void) { return __scan_get(); }

int fputc(int c, FILE *f)
{
    char b = (char)c;
    __sys_write(f->fd, &b, 1);
    return c;
}

int fputs(const char *s, FILE *f)
{
    size_t n = strlen(s);
    __sys_write(f->fd, s, (long)n);
    return 0;
}

int puts(const char *s)
{
    fputs(s, stdout);
    putchar('\n');
    return 0;
}

size_t fwrite(const void *ptr, size_t size, size_t nmemb, FILE *f)
{
    __sys_write(f->fd, ptr, (long)(size * nmemb));
    return nmemb;
}

int fgetc(FILE *f)
{
    if (f->fd != 0)
        return EOF;
    return __scan_get();
}

char *fgets(char *s, int n, FILE *f)
{
    if (n <= 0 || f->fd != 0)
        return NULL;
    int i = 0;
    while (i < n - 1) {
        int c = __scan_get();
        if (c == EOF) {
            if (i == 0)
                return NULL;
            break;
        }
        s[i] = (char)c;
        i++;
        if (c == '\n')
            break;
    }
    s[i] = 0;
    return s;
}

/* ------------------------------------------------------------------ */
/* printf family: one core writing into a sink (fd or buffer).        */
/* ------------------------------------------------------------------ */

struct __sink {
    int fd;       /* -1 when writing to buf */
    char *buf;
    long pos;
    long cap;     /* max chars excluding the NUL */
};

static void __emit(struct __sink *sink, char c)
{
    if (sink->fd >= 0) {
        __sys_write(sink->fd, &c, 1);
        sink->pos++;
        return;
    }
    if (sink->pos < sink->cap)
        sink->buf[sink->pos] = c;
    sink->pos++;
}

static void __emit_str(struct __sink *sink, const char *s, long n)
{
    for (long i = 0; i < n; i++)
        __emit(sink, s[i]);
}

static int __fmt_ulong(unsigned long v, unsigned long base, int upper,
                       char *out)
{
    char tmp[32];
    int n = 0;
    if (v == 0) {
        tmp[n] = '0';
        n++;
    }
    while (v != 0) {
        unsigned long digit = v % base;
        if (digit < 10)
            tmp[n] = (char)('0' + digit);
        else if (upper)
            tmp[n] = (char)('A' + digit - 10);
        else
            tmp[n] = (char)('a' + digit - 10);
        n++;
        v /= base;
    }
    for (int i = 0; i < n; i++)
        out[i] = tmp[n - 1 - i];
    return n;
}

static int __fmt_double(double v, int prec, char *out)
{
    int n = 0;
    if (v != v) {
        out[0] = 'n'; out[1] = 'a'; out[2] = 'n';
        return 3;
    }
    if (v < 0) {
        out[n] = '-';
        n++;
        v = -v;
    }
    if (v > 9.2e18) {
        out[n] = 'i'; out[n + 1] = 'n'; out[n + 2] = 'f';
        return n + 3;
    }
    /* Round at the requested precision. */
    double round = 0.5;
    for (int i = 0; i < prec; i++)
        round /= 10.0;
    v += round;
    long ipart = (long)v;
    n += __fmt_ulong((unsigned long)ipart, 10, 0, out + n);
    if (prec > 0) {
        out[n] = '.';
        n++;
        double frac = v - (double)ipart;
        for (int i = 0; i < prec; i++) {
            frac *= 10.0;
            int digit = (int)frac;
            if (digit > 9)
                digit = 9;
            out[n] = (char)('0' + digit);
            n++;
            frac -= digit;
        }
    }
    return n;
}

static void __pad(struct __sink *sink, int count, char c)
{
    for (int i = 0; i < count; i++)
        __emit(sink, c);
}

static int __vformat(struct __sink *sink, const char *fmt, va_list ap)
{
    long i = 0;
    while (fmt[i] != 0) {
        char c = fmt[i];
        if (c != '%') {
            __emit(sink, c);
            i++;
            continue;
        }
        i++;
        /* Flags. */
        int left = 0;
        int zero = 0;
        int plus = 0;
        while (fmt[i] == '-' || fmt[i] == '0' || fmt[i] == '+' ||
               fmt[i] == ' ') {
            if (fmt[i] == '-')
                left = 1;
            else if (fmt[i] == '0')
                zero = 1;
            else if (fmt[i] == '+')
                plus = 1;
            i++;
        }
        /* Width. */
        int width = 0;
        while (isdigit((unsigned char)fmt[i])) {
            width = width * 10 + (fmt[i] - '0');
            i++;
        }
        /* Precision. */
        int prec = -1;
        if (fmt[i] == '.') {
            i++;
            prec = 0;
            while (isdigit((unsigned char)fmt[i])) {
                prec = prec * 10 + (fmt[i] - '0');
                i++;
            }
        }
        /* Length modifiers. */
        int longs = 0;
        while (fmt[i] == 'l' || fmt[i] == 'h' || fmt[i] == 'z') {
            if (fmt[i] == 'l' || fmt[i] == 'z')
                longs++;
            i++;
        }
        char spec = fmt[i];
        if (spec == 0)
            break;
        i++;

        char numbuf[64];
        int n = 0;
        if (spec == '%') {
            __emit(sink, '%');
            continue;
        } else if (spec == 'c') {
            int v = va_arg(ap, int);
            if (width > 1 && !left)
                __pad(sink, width - 1, ' ');
            __emit(sink, (char)v);
            if (width > 1 && left)
                __pad(sink, width - 1, ' ');
            continue;
        } else if (spec == 's') {
            const char *s = va_arg(ap, const char *);
            if (s == NULL)
                s = "(null)";
            long len = 0;
            if (prec >= 0) {
                while (len < prec && s[len] != 0)
                    len++;
            } else {
                len = (long)strlen(s);
            }
            if (width > len && !left)
                __pad(sink, (int)(width - len), ' ');
            __emit_str(sink, s, len);
            if (width > len && left)
                __pad(sink, (int)(width - len), ' ');
            continue;
        } else if (spec == 'd' || spec == 'i') {
            long v;
            if (longs > 0)
                v = va_arg(ap, long);
            else
                v = va_arg(ap, int);
            if (v < 0) {
                numbuf[n] = '-';
                n++;
                n += __fmt_ulong((unsigned long)(-v), 10, 0, numbuf + n);
            } else {
                if (plus) {
                    numbuf[n] = '+';
                    n++;
                }
                n += __fmt_ulong((unsigned long)v, 10, 0, numbuf + n);
            }
        } else if (spec == 'u') {
            unsigned long v;
            if (longs > 0)
                v = va_arg(ap, unsigned long);
            else
                v = va_arg(ap, unsigned int);
            n += __fmt_ulong(v, 10, 0, numbuf + n);
        } else if (spec == 'x' || spec == 'X') {
            unsigned long v;
            if (longs > 0)
                v = va_arg(ap, unsigned long);
            else
                v = va_arg(ap, unsigned int);
            n += __fmt_ulong(v, 16, spec == 'X', numbuf + n);
        } else if (spec == 'o') {
            unsigned long v;
            if (longs > 0)
                v = va_arg(ap, unsigned long);
            else
                v = va_arg(ap, unsigned int);
            n += __fmt_ulong(v, 8, 0, numbuf + n);
        } else if (spec == 'p') {
            void *v = va_arg(ap, void *);
            numbuf[0] = '0';
            numbuf[1] = 'x';
            n = 2 + __fmt_ulong((unsigned long)(uintptr_t)v, 16, 0,
                                numbuf + 2);
        } else if (spec == 'f' || spec == 'F' || spec == 'g' ||
                   spec == 'e') {
            double v = va_arg(ap, double);
            n = __fmt_double(v, prec >= 0 ? prec : 6, numbuf);
        } else {
            __emit(sink, '%');
            __emit(sink, spec);
            continue;
        }
        /* Common numeric padding path; zero padding goes after the
         * sign ("-002.500", not "00-2.500"). */
        int skip = 0;
        if (width > n && !left && zero &&
            (numbuf[0] == '-' || numbuf[0] == '+')) {
            __emit(sink, numbuf[0]);
            skip = 1;
        }
        if (width > n && !left)
            __pad(sink, width - n, zero ? '0' : ' ');
        __emit_str(sink, numbuf + skip, n - skip);
        if (width > n && left)
            __pad(sink, width - n, ' ');
    }
    return (int)sink->pos;
}

int printf(const char *fmt, ...)
{
    struct __sink sink = {1, NULL, 0, 0};
    va_list ap;
    va_start(ap, fmt);
    int n = __vformat(&sink, fmt, ap);
    va_end(ap);
    return n;
}

int fprintf(FILE *f, const char *fmt, ...)
{
    struct __sink sink = {0, NULL, 0, 0};
    sink.fd = f->fd;
    va_list ap;
    va_start(ap, fmt);
    int n = __vformat(&sink, fmt, ap);
    va_end(ap);
    return n;
}

int sprintf(char *buf, const char *fmt, ...)
{
    struct __sink sink = {-1, NULL, 0, 0};
    sink.buf = buf;
    sink.cap = 0x7fffffff;
    va_list ap;
    va_start(ap, fmt);
    int n = __vformat(&sink, fmt, ap);
    va_end(ap);
    buf[sink.pos < sink.cap ? sink.pos : sink.cap] = 0;
    return n;
}

int snprintf(char *buf, size_t size, const char *fmt, ...)
{
    struct __sink sink = {-1, NULL, 0, 0};
    sink.buf = buf;
    sink.cap = size > 0 ? (long)size - 1 : 0;
    va_list ap;
    va_start(ap, fmt);
    int n = __vformat(&sink, fmt, ap);
    va_end(ap);
    if (size > 0)
        buf[sink.pos < sink.cap ? sink.pos : sink.cap] = 0;
    return n;
}

/* ------------------------------------------------------------------ */
/* scanf family (stdin only): %d %u %ld %lu %c %s %f                   */
/* ------------------------------------------------------------------ */

int ungetc(int c, FILE *f)
{
    if (f->fd != 0 || c == EOF)
        return EOF;
    __scan_unget(c);
    return c;
}

/* Scan source: stdin (with persistent pushback) or a string buffer. */
struct __scansrc {
    const char *buf; /* NULL for stdin */
    long pos;
};

static int __src_get(struct __scansrc *src)
{
    if (src->buf == NULL)
        return __scan_get();
    char c = src->buf[src->pos];
    if (c == 0)
        return EOF;
    src->pos++;
    return (unsigned char)c;
}

static void __src_unget(struct __scansrc *src, int c)
{
    if (src->buf == NULL) {
        __scan_unget(c);
        return;
    }
    if (c != EOF)
        src->pos--;
}

static int __src_skip_space(struct __scansrc *src)
{
    int c = __src_get(src);
    while (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        c = __src_get(src);
    return c;
}

static int __vscan(struct __scansrc *src, const char *fmt, va_list ap)
{
    int converted = 0;
    long i = 0;
    while (fmt[i] != 0) {
        char f = fmt[i];
        if (isspace((unsigned char)f)) {
            int c = __src_get(src);
            while (isspace(c))
                c = __src_get(src);
            __src_unget(src, c);
            i++;
            continue;
        }
        if (f != '%') {
            int c = __src_get(src);
            if (c != f) {
                __src_unget(src, c);
                return converted;
            }
            i++;
            continue;
        }
        i++;
        int longs = 0;
        while (fmt[i] == 'l' || fmt[i] == 'h' || fmt[i] == 'z') {
            if (fmt[i] == 'l' || fmt[i] == 'z')
                longs++;
            i++;
        }
        char spec = fmt[i];
        if (spec == 0)
            break;
        i++;
        if (spec == 'd' || spec == 'i' || spec == 'u') {
            int c = __src_skip_space(src);
            int negative = 0;
            if (c == '-' || c == '+') {
                negative = c == '-';
                c = __src_get(src);
            }
            if (!isdigit(c)) {
                __src_unget(src, c);
                return converted;
            }
            long value = 0;
            while (isdigit(c)) {
                value = value * 10 + (c - '0');
                c = __src_get(src);
            }
            __src_unget(src, c);
            if (negative)
                value = -value;
            if (longs > 0) {
                long *out = va_arg(ap, long *);
                *out = value;
            } else {
                int *out = va_arg(ap, int *);
                *out = (int)value;
            }
            converted++;
        } else if (spec == 'c') {
            int c = __src_get(src);
            if (c == EOF)
                return converted;
            char *out = va_arg(ap, char *);
            *out = (char)c;
            converted++;
        } else if (spec == 's') {
            int c = __src_skip_space(src);
            if (c == EOF)
                return converted;
            char *out = va_arg(ap, char *);
            long n = 0;
            while (c != EOF && !isspace(c)) {
                out[n] = (char)c;
                n++;
                c = __src_get(src);
            }
            __src_unget(src, c);
            out[n] = 0;
            converted++;
        } else if (spec == 'f' || spec == 'g' || spec == 'e') {
            int c = __src_skip_space(src);
            char buf[64];
            long n = 0;
            while (c != EOF && n < 63 &&
                   (isdigit(c) || c == '-' || c == '+' || c == '.' ||
                    c == 'e' || c == 'E')) {
                buf[n] = (char)c;
                n++;
                c = __src_get(src);
            }
            __src_unget(src, c);
            if (n == 0)
                return converted;
            buf[n] = 0;
            double value = atof(buf);
            if (longs > 0 || spec == 'f') {
                /* scanf %f takes float*, %lf double*; we accept double*
                 * for both widths via the float pointer when unsized. */
            }
            if (longs > 0) {
                double *out = va_arg(ap, double *);
                *out = value;
            } else {
                float *out = va_arg(ap, float *);
                *out = (float)value;
            }
            converted++;
        } else {
            return converted;
        }
    }
    return converted;
}

int scanf(const char *fmt, ...)
{
    struct __scansrc src = {NULL, 0};
    va_list ap;
    va_start(ap, fmt);
    int n = __vscan(&src, fmt, ap);
    va_end(ap);
    return n;
}

int fscanf(FILE *f, const char *fmt, ...)
{
    if (f->fd != 0)
        return EOF;
    struct __scansrc src = {NULL, 0};
    va_list ap;
    va_start(ap, fmt);
    int n = __vscan(&src, fmt, ap);
    va_end(ap);
    return n;
}

int sscanf(const char *str, const char *fmt, ...)
{
    struct __scansrc src = {NULL, 0};
    src.buf = str;
    va_list ap;
    va_start(ap, fmt);
    int n = __vscan(&src, fmt, ap);
    va_end(ap);
    return n;
}

void perror(const char *s)
{
    /* No errno in this environment; print the prefix like glibc would. */
    if (s != NULL && s[0] != 0) {
        fputs(s, stderr);
        fputs(": error\n", stderr);
    } else {
        fputs("error\n", stderr);
    }
}

int putc(int c, FILE *f) { return fputc(c, f); }
int getc(FILE *f) { return fgetc(f); }
)C";

} // namespace

std::vector<SourceFile>
libcSources(LibcVariant variant)
{
    std::vector<SourceFile> sources;
    sources.push_back(SourceFile{"libc/prelude.c", PRELUDE});
    sources.push_back(SourceFile{"libc/ctype.c", CTYPE_C});
    if (variant == LibcVariant::nativeOptimized) {
        // The optimized variant overrides strlen/strcmp with word-wise
        // code; the remaining functions reuse the safe implementations
        // (with the optimized symbols winning by earlier definition).
        std::string optimized = STRING_OPT_PREFIX;
        std::string safe = STRING_SAFE_C;
        // Drop the safe strlen/strcmp definitions to avoid redefinition.
        auto dropFunction = [&safe](const std::string &header) {
            size_t start = safe.find(header);
            if (start == std::string::npos)
                return;
            size_t brace = safe.find('{', start);
            int depth = 1;
            size_t end = brace + 1;
            while (depth > 0 && end < safe.size()) {
                if (safe[end] == '{')
                    depth++;
                else if (safe[end] == '}')
                    depth--;
                end++;
            }
            safe.erase(start, end - start);
        };
        dropFunction("size_t strlen(const char *s)");
        dropFunction("int strcmp(const char *a, const char *b)");
        sources.push_back(SourceFile{"libc/string_opt.c",
                                     optimized + safe});
    } else {
        sources.push_back(SourceFile{"libc/string.c", STRING_SAFE_C});
    }
    sources.push_back(SourceFile{"libc/stdlib.c", STDLIB_C});
    sources.push_back(SourceFile{"libc/stdio.c", STDIO_C});
    return sources;
}

std::vector<std::string>
libcFunctionNames()
{
    return {
        "isdigit", "isupper", "islower", "isalpha", "isalnum", "isspace",
        "isxdigit", "isprint", "ispunct", "iscntrl", "toupper", "tolower",
        "strlen", "strcpy", "strncpy", "strcat", "strncat", "strcmp",
        "strncmp", "strchr", "strrchr", "strstr", "strspn", "strcspn",
        "strpbrk", "strtok", "strdup", "memset", "memcpy", "memmove",
        "memcmp", "memchr",
        "exit", "abort", "abs", "labs", "srand", "rand", "strtol", "atoi",
        "atol", "atof", "qsort", "bsearch",
        "strnlen", "strcasecmp", "strncasecmp", "bzero",
        "strtoul", "strtod", "atoll", "llabs",
        "putchar", "getchar", "fputc", "fputs", "puts", "fwrite", "fgetc",
        "fgets", "printf", "fprintf", "sprintf", "snprintf", "scanf",
        "fscanf", "sscanf", "ungetc", "putc", "getc", "perror",
        "malloc", "free", "calloc", "realloc",
        "sqrt", "sin", "cos", "tan", "atan", "atan2", "exp", "log", "pow",
        "floor", "ceil", "fabs", "fmod",
    };
}

} // namespace sulong
