/**
 * @file
 * Values of the MiniSulong IR: arguments, constants, globals, functions
 * and instruction results. All Value objects are owned by the Module (or
 * by Functions within it) and referenced by plain pointers; a Module is
 * immutable while engines execute it.
 */

#ifndef MS_IR_VALUE_H
#define MS_IR_VALUE_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.h"

namespace sulong
{

class Function;
class GlobalVariable;

/** Discriminator for Value. */
enum class ValueKind : uint8_t
{
    argument,
    instruction,
    constantInt,
    constantFP,
    constantNull,
    global,
    function,
};

/**
 * Base class of everything an instruction can reference as an operand.
 */
class Value
{
  public:
    virtual ~Value() = default;

    ValueKind valueKind() const { return valueKind_; }
    const Type *type() const { return type_; }
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    bool isConstant() const
    {
        return valueKind_ == ValueKind::constantInt ||
            valueKind_ == ValueKind::constantFP ||
            valueKind_ == ValueKind::constantNull;
    }

  protected:
    Value(ValueKind kind, const Type *type) : valueKind_(kind), type_(type) {}

    ValueKind valueKind_;
    const Type *type_;
    std::string name_;
};

/**
 * A formal parameter of a function. Its frame slot equals its index.
 */
class Argument : public Value
{
  public:
    Argument(const Type *type, unsigned index, std::string name)
        : Value(ValueKind::argument, type), index_(index)
    {
        name_ = std::move(name);
    }

    unsigned index() const { return index_; }

  private:
    unsigned index_;
};

/** An integer constant; bits are stored sign-extended to 64 bits. */
class ConstantInt : public Value
{
  public:
    ConstantInt(const Type *type, int64_t value)
        : Value(ValueKind::constantInt, type), value_(value)
    {}

    /** Sign-extended value. */
    int64_t value() const { return value_; }
    /** Zero-extended value according to the type's width. */
    uint64_t zextValue() const
    {
        unsigned bits = type_->intBits();
        if (bits == 64)
            return static_cast<uint64_t>(value_);
        return static_cast<uint64_t>(value_) & ((1ull << bits) - 1);
    }

  private:
    int64_t value_;
};

/** A floating-point constant (f32 constants are stored widened). */
class ConstantFP : public Value
{
  public:
    ConstantFP(const Type *type, double value)
        : Value(ValueKind::constantFP, type), value_(value)
    {}

    double value() const { return value_; }

  private:
    double value_;
};

/** The null pointer constant. */
class ConstantNull : public Value
{
  public:
    explicit ConstantNull(const Type *ptr_type)
        : Value(ValueKind::constantNull, ptr_type)
    {}
};

/**
 * Static initializer tree for global variables.
 *
 * Globals can be zero-initialized, scalar-initialized, byte-blob
 * initialized (string literals), aggregate-initialized, or initialized
 * with the address of another global or function.
 */
struct Initializer
{
    enum class Kind : uint8_t
    {
        zero,
        intVal,
        fpVal,
        bytes,
        array,
        structVal,
        globalRef,
        functionRef,
    };

    Kind kind = Kind::zero;
    int64_t intValue = 0;
    double fpValue = 0;
    /// Raw bytes for string-literal data (includes the NUL if present).
    std::string bytes;
    std::vector<Initializer> elems;
    const GlobalVariable *global = nullptr;
    /// Byte offset added to a globalRef (e.g. &arr[2]).
    int64_t addend = 0;
    const Function *function = nullptr;

    static Initializer makeZero() { return {}; }
    static Initializer makeInt(int64_t v)
    {
        Initializer init;
        init.kind = Kind::intVal;
        init.intValue = v;
        return init;
    }
    static Initializer makeFP(double v)
    {
        Initializer init;
        init.kind = Kind::fpVal;
        init.fpValue = v;
        return init;
    }
    static Initializer makeBytes(std::string data)
    {
        Initializer init;
        init.kind = Kind::bytes;
        init.bytes = std::move(data);
        return init;
    }
    static Initializer makeGlobalRef(const GlobalVariable *g, int64_t add = 0)
    {
        Initializer init;
        init.kind = Kind::globalRef;
        init.global = g;
        init.addend = add;
        return init;
    }
    static Initializer makeFunctionRef(const Function *f)
    {
        Initializer init;
        init.kind = Kind::functionRef;
        init.function = f;
        return init;
    }

    bool isZero() const { return kind == Kind::zero; }
};

/**
 * A global (static-storage) variable. As a Value its type is `ptr` (its
 * address); the type of the stored data is valueType().
 */
class GlobalVariable : public Value
{
  public:
    GlobalVariable(const Type *ptr_type, const Type *value_type,
                   std::string name, Initializer init, bool is_const)
        : Value(ValueKind::global, ptr_type), valueType_(value_type),
          init_(std::move(init)), isConst_(is_const)
    {
        name_ = std::move(name);
    }

    const Type *valueType() const { return valueType_; }
    const Initializer &init() const { return init_; }
    /// Two-phase construction: globals are created first (zero) so that
    /// initializers may reference globals defined later in the file.
    void setInit(Initializer init) { init_ = std::move(init); }
    bool isConst() const { return isConst_; }

  private:
    const Type *valueType_;
    Initializer init_;
    bool isConst_;
};

} // namespace sulong

#endif // MS_IR_VALUE_H
