/**
 * @file
 * Instructions and basic blocks of the MiniSulong IR.
 *
 * The instruction set mirrors the LLVM IR subset that Clang -O0 emits for
 * C and that Sulong executes: stack allocation, typed loads/stores,
 * pointer arithmetic (gep), integer/float arithmetic, comparisons, casts,
 * select, calls (incl. varargs) and branches. Every instruction carries a
 * SourceLoc so engines can produce source-level bug reports.
 */

#ifndef MS_IR_INSTRUCTION_H
#define MS_IR_INSTRUCTION_H

#include <memory>
#include <vector>

#include "ir/value.h"
#include "support/diagnostics.h"

namespace sulong
{

class BasicBlock;
class Function;

/** Opcodes. Suffix underscores avoid keyword collisions. */
enum class Opcode : uint8_t
{
    // Memory.
    alloca_,    ///< reserve a stack object of accessType()
    load,       ///< load accessType() from operand 0 (ptr)
    store,      ///< store operand 0 into operand 1 (ptr)
    gep,        ///< operand 0 (ptr) + gepConstOffset + operand1 * gepScale

    // Integer arithmetic (operands and result share an integer type).
    add, sub, mul, sdiv, udiv, srem, urem,
    and_, or_, xor_, shl, lshr, ashr,

    // Floating-point arithmetic.
    fadd, fsub, fmul, fdiv, frem, fneg,

    // Comparisons produce i1.
    icmp, fcmp,

    // Conversions; result type is type(), source is operand 0.
    trunc, zext, sext, fptosi, fptoui, sitofp, uitofp, fpext, fptrunc,
    ptrtoint, inttoptr,

    // Misc.
    select,     ///< operand 0 (i1) ? operand 1 : operand 2
    call,       ///< operand 0 = callee, rest = arguments

    // Terminators.
    br,         ///< unconditional jump to target(0)
    condbr,     ///< operand 0 (i1) ? target(0) : target(1)
    ret,        ///< optional operand 0
    unreachable_,

    // Tier-2 pseudo-opcodes (interp/tier2). Never appear in IR: the
    // pre-decoder emits them for inlined callee bodies (argument/return
    // moves) and for call sites with an inline cache. The verifier
    // rejects them in real instruction streams.
    p2Move,         ///< slot move: dest = operand a
    p2Ret,          ///< inlined return: optional move to dest, jump t0
    p2CallDirect,   ///< call through a monomorphic direct call site
    p2CallIndirect, ///< call through a function-pointer inline cache
};

/** icmp predicates. */
enum class IntPred : uint8_t
{
    eq, ne, slt, sle, sgt, sge, ult, ule, ugt, uge,
};

/** fcmp predicates (ordered only; NaN handling is "false"). */
enum class FloatPred : uint8_t
{
    oeq, one, olt, ole, ogt, oge,
};

const char *opcodeName(Opcode op);
const char *intPredName(IntPred pred);
const char *floatPredName(FloatPred pred);

/**
 * A single IR instruction. One flat class with opcode-specific extra
 * fields (rather than a subclass per opcode) keeps the five interpreters
 * in this repository simple and fast.
 */
class Instruction : public Value
{
  public:
    Instruction(Opcode op, const Type *result_type)
        : Value(ValueKind::instruction, result_type), op_(op)
    {}

    Opcode op() const { return op_; }

    /** Set the result type (IR construction from text, where binop
     *  result types are inferred after operand resolution). */
    void setResultType(const Type *type) { type_ = type; }

    const std::vector<Value *> &operands() const { return operands_; }
    Value *operand(size_t i) const { return operands_[i]; }
    size_t numOperands() const { return operands_.size(); }
    void addOperand(Value *v) { operands_.push_back(v); }
    void setOperand(size_t i, Value *v) { operands_[i] = v; }
    /** Mutable operand list for optimizer passes. */
    std::vector<Value *> &mutableOperands() { return operands_; }

    /// Allocated type (alloca), accessed type (load/store), or the static
    /// allocation-type hint on malloc-like calls (Section 3.3 mementos).
    const Type *accessType() const { return accessType_; }
    void setAccessType(const Type *type) { accessType_ = type; }

    IntPred intPred() const { return static_cast<IntPred>(pred_); }
    FloatPred floatPred() const { return static_cast<FloatPred>(pred_); }
    void setIntPred(IntPred pred) { pred_ = static_cast<uint8_t>(pred); }
    void setFloatPred(FloatPred pred) { pred_ = static_cast<uint8_t>(pred); }

    int64_t gepConstOffset() const { return gepConstOffset_; }
    uint64_t gepScale() const { return gepScale_; }
    void setGep(int64_t const_offset, uint64_t scale)
    {
        gepConstOffset_ = const_offset;
        gepScale_ = scale;
    }

    BasicBlock *target(unsigned i) const { return targets_[i]; }
    void setTargets(BasicBlock *t0, BasicBlock *t1 = nullptr)
    {
        targets_[0] = t0;
        targets_[1] = t1;
    }

    /// Frame slot of the result (-1 when the result type is void).
    int slot() const { return slot_; }
    void setSlot(int slot) { slot_ = slot; }

    const SourceLoc &loc() const { return loc_; }
    void setLoc(SourceLoc loc) { loc_ = std::move(loc); }

    BasicBlock *parent() const { return parent_; }
    void setParent(BasicBlock *bb) { parent_ = bb; }

    bool isTerminator() const
    {
        return op_ == Opcode::br || op_ == Opcode::condbr ||
            op_ == Opcode::ret || op_ == Opcode::unreachable_;
    }

    bool producesValue() const { return !type_->isVoid(); }

  private:
    Opcode op_;
    std::vector<Value *> operands_;
    const Type *accessType_ = nullptr;
    uint8_t pred_ = 0;
    int64_t gepConstOffset_ = 0;
    uint64_t gepScale_ = 0;
    BasicBlock *targets_[2] = {nullptr, nullptr};
    int slot_ = -1;
    SourceLoc loc_;
    BasicBlock *parent_ = nullptr;
};

/**
 * A basic block: a straight-line instruction sequence ending in a
 * terminator.
 */
class BasicBlock
{
  public:
    BasicBlock(Function *parent, std::string name, unsigned index)
        : parent_(parent), name_(std::move(name)), index_(index)
    {}

    const std::string &name() const { return name_; }
    unsigned index() const { return index_; }
    void setIndex(unsigned index) { index_ = index; }
    Function *parent() const { return parent_; }

    const std::vector<std::unique_ptr<Instruction>> &insts() const
    {
        return insts_;
    }

    /** Mutable access for optimizer and instrumentation passes. */
    std::vector<std::unique_ptr<Instruction>> &mutableInsts()
    {
        return insts_;
    }

    Instruction *append(std::unique_ptr<Instruction> inst)
    {
        inst->setParent(this);
        insts_.push_back(std::move(inst));
        return insts_.back().get();
    }

    /** Remove the instruction at position @p i (optimizer use). */
    void erase(size_t i) { insts_.erase(insts_.begin() + i); }

    /** Replace the whole instruction list (optimizer use). */
    void
    replaceInsts(std::vector<std::unique_ptr<Instruction>> insts)
    {
        insts_ = std::move(insts);
        for (auto &inst : insts_)
            inst->setParent(this);
    }

    bool empty() const { return insts_.empty(); }
    Instruction *terminator() const
    {
        return insts_.empty() ? nullptr : insts_.back().get();
    }

  private:
    Function *parent_;
    std::string name_;
    unsigned index_;
    std::vector<std::unique_ptr<Instruction>> insts_;
};

} // namespace sulong

#endif // MS_IR_INSTRUCTION_H
