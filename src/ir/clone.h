/**
 * @file
 * Deep copy of IR modules.
 *
 * The compile cache (src/tools/compile_cache.h) keeps one immutable
 * prototype module per pipeline stage and hands every evaluation job its
 * own clone, so instrumentation passes (ASan) and engines that intern
 * types during execution (the managed engine) never mutate shared state.
 *
 * Unlike the print/parse round trip (ir/parser.h), cloning supports the
 * full IR — including named struct types — and preserves function ids,
 * frame-slot numbering and source locations exactly, so a cloned module
 * executes bit-identically to its original under every engine.
 */

#ifndef MS_IR_CLONE_H
#define MS_IR_CLONE_H

#include <memory>

#include "ir/module.h"

namespace sulong
{

/** Deep-copy @p original into a fresh module with its own TypeContext. */
std::unique_ptr<Module> cloneModule(const Module &original);

} // namespace sulong

#endif // MS_IR_CLONE_H
