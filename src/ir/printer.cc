#include "ir/printer.h"

#include <sstream>

namespace sulong
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::alloca_: return "alloca";
      case Opcode::load: return "load";
      case Opcode::store: return "store";
      case Opcode::gep: return "gep";
      case Opcode::add: return "add";
      case Opcode::sub: return "sub";
      case Opcode::mul: return "mul";
      case Opcode::sdiv: return "sdiv";
      case Opcode::udiv: return "udiv";
      case Opcode::srem: return "srem";
      case Opcode::urem: return "urem";
      case Opcode::and_: return "and";
      case Opcode::or_: return "or";
      case Opcode::xor_: return "xor";
      case Opcode::shl: return "shl";
      case Opcode::lshr: return "lshr";
      case Opcode::ashr: return "ashr";
      case Opcode::fadd: return "fadd";
      case Opcode::fsub: return "fsub";
      case Opcode::fmul: return "fmul";
      case Opcode::fdiv: return "fdiv";
      case Opcode::frem: return "frem";
      case Opcode::fneg: return "fneg";
      case Opcode::icmp: return "icmp";
      case Opcode::fcmp: return "fcmp";
      case Opcode::trunc: return "trunc";
      case Opcode::zext: return "zext";
      case Opcode::sext: return "sext";
      case Opcode::fptosi: return "fptosi";
      case Opcode::fptoui: return "fptoui";
      case Opcode::sitofp: return "sitofp";
      case Opcode::uitofp: return "uitofp";
      case Opcode::fpext: return "fpext";
      case Opcode::fptrunc: return "fptrunc";
      case Opcode::ptrtoint: return "ptrtoint";
      case Opcode::inttoptr: return "inttoptr";
      case Opcode::select: return "select";
      case Opcode::call: return "call";
      case Opcode::br: return "br";
      case Opcode::condbr: return "condbr";
      case Opcode::ret: return "ret";
      case Opcode::unreachable_: return "unreachable";
      case Opcode::p2Move: return "p2.move";
      case Opcode::p2Ret: return "p2.ret";
      case Opcode::p2CallDirect: return "p2.call.direct";
      case Opcode::p2CallIndirect: return "p2.call.indirect";
    }
    return "<bad-op>";
}

const char *
intPredName(IntPred pred)
{
    switch (pred) {
      case IntPred::eq: return "eq";
      case IntPred::ne: return "ne";
      case IntPred::slt: return "slt";
      case IntPred::sle: return "sle";
      case IntPred::sgt: return "sgt";
      case IntPred::sge: return "sge";
      case IntPred::ult: return "ult";
      case IntPred::ule: return "ule";
      case IntPred::ugt: return "ugt";
      case IntPred::uge: return "uge";
    }
    return "<bad-pred>";
}

const char *
floatPredName(FloatPred pred)
{
    switch (pred) {
      case FloatPred::oeq: return "oeq";
      case FloatPred::one: return "one";
      case FloatPred::olt: return "olt";
      case FloatPred::ole: return "ole";
      case FloatPred::ogt: return "ogt";
      case FloatPred::oge: return "oge";
    }
    return "<bad-pred>";
}

namespace
{

std::string
valueRef(const Value *v)
{
    if (v == nullptr)
        return "<null>";
    switch (v->valueKind()) {
      case ValueKind::constantInt: {
        auto *c = static_cast<const ConstantInt *>(v);
        return std::to_string(c->value());
      }
      case ValueKind::constantFP: {
        auto *c = static_cast<const ConstantFP *>(v);
        std::ostringstream os;
        os << c->value();
        std::string text = os.str();
        // Keep the text unambiguously floating-point for the parser.
        if (text.find('.') == std::string::npos &&
            text.find('e') == std::string::npos &&
            text.find("inf") == std::string::npos &&
            text.find("nan") == std::string::npos) {
            text += ".0";
        }
        return text;
      }
      case ValueKind::constantNull:
        return "null";
      case ValueKind::global:
        return "@" + v->name();
      case ValueKind::function:
        return "@" + v->name();
      case ValueKind::argument: {
        auto *arg = static_cast<const Argument *>(v);
        std::string text = "%a";
        text += std::to_string(arg->index());
        return text;
      }
      case ValueKind::instruction: {
        auto *inst = static_cast<const Instruction *>(v);
        std::string text = "%";
        text += std::to_string(inst->slot());
        return text;
      }
    }
    return "<bad-value>";
}

void
printInit(std::ostringstream &os, const Initializer &init)
{
    switch (init.kind) {
      case Initializer::Kind::zero:
        os << "zeroinitializer";
        break;
      case Initializer::Kind::intVal:
        os << init.intValue;
        break;
      case Initializer::Kind::fpVal: {
        std::ostringstream tmp;
        tmp << init.fpValue;
        std::string text = tmp.str();
        if (text.find('.') == std::string::npos &&
            text.find('e') == std::string::npos) {
            text += ".0";
        }
        os << text;
        break;
      }
      case Initializer::Kind::bytes:
        os << "c\"";
        for (char c : init.bytes) {
            if (c >= 32 && c < 127 && c != '"' && c != '\\')
                os << c;
            else {
                static const char *hex = "0123456789ABCDEF";
                os << "\\" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            }
        }
        os << "\"";
        break;
      case Initializer::Kind::array:
      case Initializer::Kind::structVal:
        os << (init.kind == Initializer::Kind::array ? "[" : "{");
        for (size_t i = 0; i < init.elems.size(); i++) {
            if (i)
                os << ", ";
            printInit(os, init.elems[i]);
        }
        os << (init.kind == Initializer::Kind::array ? "]" : "}");
        break;
      case Initializer::Kind::globalRef:
        os << "@" << init.global->name();
        if (init.addend != 0)
            os << "+" << init.addend;
        break;
      case Initializer::Kind::functionRef:
        os << "@" << init.function->name();
        break;
    }
}

} // namespace

std::string
printInstruction(const Instruction &inst)
{
    std::ostringstream os;
    if (inst.producesValue())
        os << "%" << inst.slot() << " = ";
    os << opcodeName(inst.op());
    switch (inst.op()) {
      case Opcode::alloca_:
        os << " " << inst.accessType()->toString();
        break;
      case Opcode::load:
        os << " " << inst.accessType()->toString() << ", "
           << valueRef(inst.operand(0));
        break;
      case Opcode::store:
        os << " " << inst.accessType()->toString() << " "
           << valueRef(inst.operand(0)) << ", " << valueRef(inst.operand(1));
        break;
      case Opcode::gep:
        os << " " << valueRef(inst.operand(0)) << " + "
           << inst.gepConstOffset();
        if (inst.numOperands() > 1) {
            os << " + " << valueRef(inst.operand(1)) << " * "
               << inst.gepScale();
        }
        break;
      case Opcode::icmp:
        os << " " << intPredName(inst.intPred()) << " "
           << valueRef(inst.operand(0)) << ", " << valueRef(inst.operand(1));
        break;
      case Opcode::fcmp:
        os << " " << floatPredName(inst.floatPred()) << " "
           << valueRef(inst.operand(0)) << ", " << valueRef(inst.operand(1));
        break;
      case Opcode::br:
        os << " ^" << inst.target(0)->name();
        break;
      case Opcode::condbr:
        os << " " << valueRef(inst.operand(0)) << ", ^"
           << inst.target(0)->name() << ", ^" << inst.target(1)->name();
        break;
      case Opcode::call:
        os << " " << inst.type()->toString() << " "
           << valueRef(inst.operand(0)) << "(";
        for (size_t i = 1; i < inst.numOperands(); i++) {
            if (i > 1)
                os << ", ";
            os << valueRef(inst.operand(i));
        }
        os << ")";
        break;
      default: {
        bool first = true;
        for (Value *operand : inst.operands()) {
            os << (first ? " " : ", ") << valueRef(operand);
            first = false;
        }
        if (inst.op() == Opcode::trunc || inst.op() == Opcode::zext ||
            inst.op() == Opcode::sext || inst.op() == Opcode::fptosi ||
            inst.op() == Opcode::fptoui || inst.op() == Opcode::sitofp ||
            inst.op() == Opcode::uitofp || inst.op() == Opcode::fpext ||
            inst.op() == Opcode::fptrunc || inst.op() == Opcode::ptrtoint ||
            inst.op() == Opcode::inttoptr) {
            os << " to " << inst.type()->toString();
        }
        break;
      }
    }
    return os.str();
}

std::string
printFunction(const Function &fn)
{
    std::ostringstream os;
    os << (fn.isDeclaration() ? "declare " : "define ")
       << fn.returnType()->toString() << " @" << fn.name() << "(";
    for (unsigned i = 0; i < fn.numArgs(); i++) {
        if (i)
            os << ", ";
        os << fn.arg(i)->type()->toString() << " %a" << i;
    }
    if (fn.isVarArg())
        os << (fn.numArgs() ? ", ..." : "...");
    os << ")";
    if (fn.isDeclaration()) {
        os << (fn.isIntrinsic() ? " ; intrinsic" : "") << "\n";
        return os.str();
    }
    os << " {\n";
    for (const auto &bb : fn.blocks()) {
        os << bb->name() << ":\n";
        for (const auto &inst : bb->insts())
            os << "    " << printInstruction(*inst) << "\n";
    }
    os << "}\n";
    return os.str();
}

std::string
printModule(const Module &module)
{
    std::ostringstream os;
    for (const auto &g : module.globals()) {
        os << "@" << g->name() << " = "
           << (g->isConst() ? "constant " : "global ")
           << g->valueType()->toString() << " ";
        printInit(os, g->init());
        os << "\n";
    }
    if (!module.globals().empty())
        os << "\n";
    for (const auto &fn : module.functions())
        os << printFunction(*fn) << "\n";
    return os.str();
}

} // namespace sulong
