#include "ir/clone.h"

#include <unordered_map>

namespace sulong
{

namespace
{

/** Maps values and types of the original module into the clone. */
class ModuleCloner
{
  public:
    explicit ModuleCloner(const Module &original)
        : original_(original), clone_(std::make_unique<Module>())
    {
        size_t values = original.globals().size();
        size_t blocks = 0;
        for (const auto &fn : original.functions()) {
            values += 1 + fn->numArgs();
            blocks += fn->blocks().size();
            for (const auto &bb : fn->blocks())
                values += bb->insts().size();
        }
        // Sized up front: rehashing these maps dominated clone time.
        valueMap_.reserve(values + values / 2);
        blockMap_.reserve(blocks);
        typeMap_.reserve(64);
    }

    std::unique_ptr<Module> run();

  private:
    const Type *mapType(const Type *type);
    Value *mapValue(const Value *value);
    void cloneGlobals();
    Initializer mapInitializer(const Initializer &init);
    void cloneFunctionShells();
    void cloneBodies();
    std::unique_ptr<Instruction> cloneInstruction(const Instruction &inst);

    const Module &original_;
    std::unique_ptr<Module> clone_;
    std::unordered_map<const Type *, const Type *> typeMap_;
    std::unordered_map<const Value *, Value *> valueMap_;
    std::unordered_map<const BasicBlock *, BasicBlock *> blockMap_;
};

const Type *
ModuleCloner::mapType(const Type *type)
{
    if (type == nullptr)
        return nullptr;
    auto it = typeMap_.find(type);
    if (it != typeMap_.end())
        return it->second;

    TypeContext &types = clone_->types();
    const Type *mapped = nullptr;
    switch (type->kind()) {
      case TypeKind::voidTy: mapped = types.voidTy(); break;
      case TypeKind::i1: mapped = types.i1(); break;
      case TypeKind::i8: mapped = types.i8(); break;
      case TypeKind::i16: mapped = types.i16(); break;
      case TypeKind::i32: mapped = types.i32(); break;
      case TypeKind::i64: mapped = types.i64(); break;
      case TypeKind::f32: mapped = types.f32(); break;
      case TypeKind::f64: mapped = types.f64(); break;
      case TypeKind::ptr: mapped = types.ptr(); break;
      case TypeKind::array:
        mapped = types.arrayType(mapType(type->elemType()),
                                 type->arrayLength());
        break;
      case TypeKind::structTy: {
        // Mini-C structs cannot contain themselves by value, so mapping
        // the field types first always terminates.
        std::vector<std::pair<std::string, const Type *>> fields;
        fields.reserve(type->fields().size());
        for (const StructField &field : type->fields())
            fields.emplace_back(field.name, mapType(field.type));
        mapped = types.structType(type->structName(), fields);
        break;
      }
      case TypeKind::function: {
        std::vector<const Type *> params;
        params.reserve(type->paramTypes().size());
        for (const Type *param : type->paramTypes())
            params.push_back(mapType(param));
        mapped = types.functionType(mapType(type->returnType()),
                                    std::move(params), type->isVarArg());
        break;
      }
    }
    typeMap_[type] = mapped;
    return mapped;
}

Value *
ModuleCloner::mapValue(const Value *value)
{
    if (value == nullptr)
        return nullptr;
    auto it = valueMap_.find(value);
    if (it != valueMap_.end())
        return it->second;

    // Globals, functions, arguments and instructions are registered
    // up front; only interned constants are created on demand.
    Value *mapped = nullptr;
    switch (value->valueKind()) {
      case ValueKind::constantInt: {
        const auto *c = static_cast<const ConstantInt *>(value);
        mapped = clone_->constInt(mapType(c->type()), c->value());
        break;
      }
      case ValueKind::constantFP: {
        const auto *c = static_cast<const ConstantFP *>(value);
        mapped = clone_->constFP(mapType(c->type()), c->value());
        break;
      }
      case ValueKind::constantNull:
        mapped = clone_->constNull();
        break;
      default:
        return nullptr; // unreachable for well-formed modules
    }
    valueMap_[value] = mapped;
    return mapped;
}

Initializer
ModuleCloner::mapInitializer(const Initializer &init)
{
    Initializer mapped;
    mapped.kind = init.kind;
    mapped.intValue = init.intValue;
    mapped.fpValue = init.fpValue;
    mapped.bytes = init.bytes;
    mapped.addend = init.addend;
    if (init.global != nullptr) {
        mapped.global =
            static_cast<const GlobalVariable *>(valueMap_.at(init.global));
    }
    if (init.function != nullptr) {
        mapped.function =
            static_cast<const Function *>(valueMap_.at(init.function));
    }
    mapped.elems.reserve(init.elems.size());
    for (const Initializer &elem : init.elems)
        mapped.elems.push_back(mapInitializer(elem));
    return mapped;
}

void
ModuleCloner::cloneGlobals()
{
    // Two phases, like the front end: create every global zeroed first so
    // initializers can reference globals defined later.
    for (const auto &global : original_.globals()) {
        GlobalVariable *copy =
            clone_->addGlobal(mapType(global->valueType()), global->name(),
                              Initializer::makeZero(), global->isConst());
        valueMap_[global.get()] = copy;
    }
}

void
ModuleCloner::cloneFunctionShells()
{
    for (const auto &fn : original_.functions()) {
        // addFunction assigns ids sequentially, so cloning in module
        // order preserves ids (and with them function-pointer encodings).
        Function *copy =
            clone_->addFunction(mapType(fn->fnType()), fn->name());
        copy->setIntrinsic(fn->isIntrinsic());
        copy->setSourceFile(fn->sourceFile());
        for (unsigned i = 0; i < fn->numArgs(); i++) {
            copy->arg(i)->setName(fn->arg(i)->name());
            valueMap_[fn->arg(i)] = copy->arg(i);
        }
        valueMap_[fn.get()] = copy;
    }
}

std::unique_ptr<Instruction>
ModuleCloner::cloneInstruction(const Instruction &inst)
{
    auto copy =
        std::make_unique<Instruction>(inst.op(), mapType(inst.type()));
    copy->setName(inst.name());
    copy->setAccessType(mapType(inst.accessType()));
    copy->setIntPred(inst.intPred()); // same byte as the float predicate
    copy->setGep(inst.gepConstOffset(), inst.gepScale());
    copy->setSlot(inst.slot());
    copy->setLoc(inst.loc());
    return copy;
}

void
ModuleCloner::cloneBodies()
{
    for (const auto &fn : original_.functions()) {
        auto *copy = static_cast<Function *>(valueMap_.at(fn.get()));

        // First pass: create blocks and instructions so that operands and
        // branch targets can reference them regardless of layout order.
        for (const auto &bb : fn->blocks()) {
            BasicBlock *bbCopy = copy->addBlock(bb->name());
            blockMap_[bb.get()] = bbCopy;
            for (const auto &inst : bb->insts()) {
                Instruction *instCopy =
                    bbCopy->append(cloneInstruction(*inst));
                valueMap_[inst.get()] = instCopy;
            }
        }

        // Second pass: resolve operands and targets.
        for (const auto &bb : fn->blocks()) {
            for (const auto &inst : bb->insts()) {
                auto *instCopy =
                    static_cast<Instruction *>(valueMap_.at(inst.get()));
                for (const Value *operand : inst->operands())
                    instCopy->addOperand(mapValue(operand));
                if (inst->isTerminator()) {
                    BasicBlock *t0 = inst->target(0) != nullptr
                        ? blockMap_.at(inst->target(0)) : nullptr;
                    BasicBlock *t1 = inst->target(1) != nullptr
                        ? blockMap_.at(inst->target(1)) : nullptr;
                    if (t0 != nullptr || t1 != nullptr)
                        instCopy->setTargets(t0, t1);
                }
            }
        }
    }
}

std::unique_ptr<Module>
ModuleCloner::run()
{
    cloneGlobals();
    cloneFunctionShells();
    for (const auto &global : original_.globals()) {
        auto *copy = static_cast<GlobalVariable *>(valueMap_.at(global.get()));
        copy->setInit(mapInitializer(global->init()));
    }
    cloneBodies();
    // Recomputes the same dense slot numbering the original carries
    // (cloneInstruction copied the slots already; finalize also restores
    // numSlots(), which has no direct setter).
    clone_->finalize();
    return std::move(clone_);
}

} // namespace

std::unique_ptr<Module>
cloneModule(const Module &original)
{
    return ModuleCloner(original).run();
}

} // namespace sulong
