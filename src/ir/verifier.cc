#include "ir/verifier.h"

#include <map>
#include <set>
#include <sstream>

#include "ir/cfg.h"
#include "ir/printer.h"

namespace sulong
{

namespace
{

/** Collects issues for one function. */
class FunctionVerifier
{
  public:
    FunctionVerifier(const Function &fn, std::vector<VerifyIssue> &issues)
        : fn_(fn), issues_(issues)
    {}

    void
    run()
    {
        if (fn_.blocks().empty())
            return;
        blockSet_.clear();
        for (const auto &bb : fn_.blocks())
            blockSet_.insert(bb.get());
        for (const auto &bb : fn_.blocks())
            checkBlock(*bb);
    }

  private:
    void
    fail(const Instruction *inst, const std::string &message)
    {
        std::string text = message;
        if (inst != nullptr)
            text += " [" + printInstruction(*inst) + "]";
        issues_.push_back(VerifyIssue{fn_.name(), text});
    }

    void
    checkBlock(const BasicBlock &bb)
    {
        if (bb.empty()) {
            fail(nullptr, "empty block ^" + bb.name());
            return;
        }
        for (size_t i = 0; i < bb.insts().size(); i++) {
            const Instruction &inst = *bb.insts()[i];
            bool last = (i == bb.insts().size() - 1);
            if (inst.isTerminator() != last) {
                fail(&inst, last ? "block does not end in a terminator"
                                 : "terminator in the middle of a block");
            }
            checkInst(inst);
        }
    }

    void
    expect(const Instruction &inst, bool cond, const char *what)
    {
        if (!cond)
            fail(&inst, what);
    }

    void
    checkInst(const Instruction &inst)
    {
        if (inst.producesValue() && inst.slot() < 0)
            fail(&inst, "value-producing instruction has no slot "
                        "(finalize() not run?)");
        for (const Value *operand : inst.operands()) {
            if (operand == nullptr) {
                fail(&inst, "null operand");
                return;
            }
        }
        switch (inst.op()) {
          case Opcode::alloca_:
            expect(inst, inst.accessType() != nullptr &&
                   inst.accessType()->size() > 0,
                   "alloca needs a sized type");
            expect(inst, inst.type()->isPointer(), "alloca must yield ptr");
            break;
          case Opcode::load:
            expect(inst, inst.numOperands() == 1, "load takes 1 operand");
            expect(inst, inst.operand(0)->type()->isPointer(),
                   "load address must be ptr");
            expect(inst, inst.accessType() == inst.type(),
                   "load result type must equal access type");
            expect(inst, inst.type()->isScalar(),
                   "load must produce a scalar");
            break;
          case Opcode::store:
            expect(inst, inst.numOperands() == 2, "store takes 2 operands");
            expect(inst, inst.operand(1)->type()->isPointer(),
                   "store address must be ptr");
            expect(inst, inst.accessType() == inst.operand(0)->type(),
                   "store access type must equal value type");
            break;
          case Opcode::gep:
            expect(inst, inst.numOperands() >= 1 && inst.numOperands() <= 2,
                   "gep takes 1-2 operands");
            expect(inst, inst.operand(0)->type()->isPointer(),
                   "gep base must be ptr");
            if (inst.numOperands() == 2) {
                expect(inst, inst.operand(1)->type()->isInteger(),
                       "gep index must be an integer");
            }
            break;
          case Opcode::add: case Opcode::sub: case Opcode::mul:
          case Opcode::sdiv: case Opcode::udiv: case Opcode::srem:
          case Opcode::urem: case Opcode::and_: case Opcode::or_:
          case Opcode::xor_: case Opcode::shl: case Opcode::lshr:
          case Opcode::ashr:
            expect(inst, inst.numOperands() == 2, "binop takes 2 operands");
            expect(inst, inst.type()->isInteger(),
                   "integer binop must produce an integer");
            expect(inst, inst.operand(0)->type() == inst.type() &&
                   inst.operand(1)->type() == inst.type(),
                   "binop operand types must match result");
            break;
          case Opcode::fadd: case Opcode::fsub: case Opcode::fmul:
          case Opcode::fdiv: case Opcode::frem:
            expect(inst, inst.numOperands() == 2, "binop takes 2 operands");
            expect(inst, inst.type()->isFloat(),
                   "float binop must produce a float");
            expect(inst, inst.operand(0)->type() == inst.type() &&
                   inst.operand(1)->type() == inst.type(),
                   "binop operand types must match result");
            break;
          case Opcode::fneg:
            expect(inst, inst.numOperands() == 1, "fneg takes 1 operand");
            expect(inst, inst.type()->isFloat() &&
                   inst.operand(0)->type() == inst.type(),
                   "fneg operates on floats");
            break;
          case Opcode::icmp:
            expect(inst, inst.numOperands() == 2, "icmp takes 2 operands");
            expect(inst, inst.type()->kind() == TypeKind::i1,
                   "icmp yields i1");
            expect(inst, inst.operand(0)->type() == inst.operand(1)->type(),
                   "icmp operand types must match");
            expect(inst, inst.operand(0)->type()->isInteger() ||
                   inst.operand(0)->type()->isPointer(),
                   "icmp compares integers or pointers");
            break;
          case Opcode::fcmp:
            expect(inst, inst.numOperands() == 2, "fcmp takes 2 operands");
            expect(inst, inst.type()->kind() == TypeKind::i1,
                   "fcmp yields i1");
            expect(inst, inst.operand(0)->type()->isFloat() &&
                   inst.operand(0)->type() == inst.operand(1)->type(),
                   "fcmp compares matching float types");
            break;
          case Opcode::trunc:
            checkCast(inst, true, true);
            expect(inst, inst.numOperands() == 1 &&
                   inst.operand(0)->type()->isInteger() &&
                   inst.type()->isInteger() &&
                   inst.operand(0)->type()->intBits() > inst.type()->intBits(),
                   "trunc must narrow an integer");
            break;
          case Opcode::zext: case Opcode::sext:
            expect(inst, inst.numOperands() == 1 &&
                   inst.operand(0)->type()->isInteger() &&
                   inst.type()->isInteger() &&
                   inst.operand(0)->type()->intBits() < inst.type()->intBits(),
                   "ext must widen an integer");
            break;
          case Opcode::fptosi: case Opcode::fptoui:
            expect(inst, inst.numOperands() == 1 &&
                   inst.operand(0)->type()->isFloat() &&
                   inst.type()->isInteger(), "fp-to-int cast types");
            break;
          case Opcode::sitofp: case Opcode::uitofp:
            expect(inst, inst.numOperands() == 1 &&
                   inst.operand(0)->type()->isInteger() &&
                   inst.type()->isFloat(), "int-to-fp cast types");
            break;
          case Opcode::fpext:
            expect(inst, inst.numOperands() == 1 &&
                   inst.operand(0)->type()->kind() == TypeKind::f32 &&
                   inst.type()->kind() == TypeKind::f64, "fpext f32->f64");
            break;
          case Opcode::fptrunc:
            expect(inst, inst.numOperands() == 1 &&
                   inst.operand(0)->type()->kind() == TypeKind::f64 &&
                   inst.type()->kind() == TypeKind::f32, "fptrunc f64->f32");
            break;
          case Opcode::ptrtoint:
            expect(inst, inst.numOperands() == 1 &&
                   inst.operand(0)->type()->isPointer() &&
                   inst.type()->isInteger(), "ptrtoint types");
            break;
          case Opcode::inttoptr:
            expect(inst, inst.numOperands() == 1 &&
                   inst.operand(0)->type()->isInteger() &&
                   inst.type()->isPointer(), "inttoptr types");
            break;
          case Opcode::select:
            expect(inst, inst.numOperands() == 3, "select takes 3 operands");
            expect(inst, inst.operand(0)->type()->kind() == TypeKind::i1,
                   "select condition must be i1");
            expect(inst, inst.operand(1)->type() == inst.type() &&
                   inst.operand(2)->type() == inst.type(),
                   "select arm types must match result");
            break;
          case Opcode::call:
            checkCall(inst);
            break;
          case Opcode::br:
            expect(inst, inst.target(0) != nullptr &&
                   blockSet_.count(inst.target(0)),
                   "br target must be a block of this function");
            break;
          case Opcode::condbr:
            expect(inst, inst.numOperands() == 1 &&
                   inst.operand(0)->type()->kind() == TypeKind::i1,
                   "condbr condition must be i1");
            expect(inst, inst.target(0) != nullptr &&
                   inst.target(1) != nullptr &&
                   blockSet_.count(inst.target(0)) &&
                   blockSet_.count(inst.target(1)),
                   "condbr targets must be blocks of this function");
            break;
          case Opcode::ret:
            if (fn_.returnType()->isVoid()) {
                expect(inst, inst.numOperands() == 0,
                       "void function returns a value");
            } else {
                expect(inst, inst.numOperands() == 1 &&
                       inst.operand(0)->type() == fn_.returnType(),
                       "ret value type must match the function signature");
            }
            break;
          case Opcode::unreachable_:
            break;
          case Opcode::p2Move:
          case Opcode::p2Ret:
          case Opcode::p2CallDirect:
          case Opcode::p2CallIndirect:
            expect(inst, false, "tier-2 pseudo-opcode in IR");
            break;
        }
    }

    void
    checkCast(const Instruction &inst, bool, bool)
    {
        expect(inst, inst.numOperands() == 1, "cast takes 1 operand");
    }

    void
    checkCall(const Instruction &inst)
    {
        expect(inst, inst.numOperands() >= 1, "call needs a callee");
        const Value *callee = inst.operand(0);
        expect(inst, callee->type()->isPointer(),
               "callee must be a function pointer");
        if (callee->valueKind() == ValueKind::function) {
            const auto *fn = static_cast<const Function *>(callee);
            const Type *fn_type = fn->fnType();
            size_t fixed = fn_type->paramTypes().size();
            size_t actual = inst.numOperands() - 1;
            if (fn_type->isVarArg()) {
                expect(inst, actual >= fixed,
                       "too few arguments to varargs function");
            } else {
                expect(inst, actual == fixed,
                       "argument count does not match callee");
            }
            for (size_t i = 0; i < std::min(fixed, actual); i++) {
                expect(inst,
                       inst.operand(i + 1)->type() ==
                           fn_type->paramTypes()[i],
                       "argument type does not match callee parameter");
            }
            expect(inst, inst.type() == fn_type->returnType(),
                   "call result type must match callee return type");
        }
    }

    const Function &fn_;
    std::vector<VerifyIssue> &issues_;
    std::set<const BasicBlock *> blockSet_;
};

/** Warning-tier lint checks for one function definition. */
class FunctionLinter
{
  public:
    FunctionLinter(const Function &fn, std::vector<VerifyIssue> &issues)
        : fn_(fn), cfg_(fn), issues_(issues)
    {}

    void
    run()
    {
        checkUnreachableBlocks();
        checkDominance();
        checkDeadAllocaStores();
    }

  private:
    void
    warn(const Instruction *inst, const std::string &message)
    {
        std::string text = message;
        if (inst != nullptr)
            text += " [" + printInstruction(*inst) + "]";
        issues_.push_back(VerifyIssue{fn_.name(), text});
    }

    void
    checkUnreachableBlocks()
    {
        for (const auto &bb : fn_.blocks()) {
            if (!cfg_.reachable(bb->index()))
                warn(nullptr, "unreachable block ^" + bb->name());
        }
    }

    void
    checkDominance()
    {
        // Position of every instruction within its block, for same-block
        // definition-before-use checks.
        std::map<const Instruction *, size_t> position;
        for (const auto &bb : fn_.blocks()) {
            for (size_t i = 0; i < bb->insts().size(); i++)
                position[bb->insts()[i].get()] = i;
        }
        for (const auto &bb : fn_.blocks()) {
            if (!cfg_.reachable(bb->index()))
                continue;
            for (const auto &inst : bb->insts()) {
                for (const Value *operand : inst->operands()) {
                    if (operand == nullptr ||
                        operand->valueKind() != ValueKind::instruction)
                        continue;
                    const auto *def =
                        static_cast<const Instruction *>(operand);
                    const BasicBlock *def_bb = def->parent();
                    if (def_bb == nullptr ||
                        def_bb->parent() != bb->parent()) {
                        warn(inst.get(), "operand defined outside this "
                                         "function");
                        continue;
                    }
                    bool dominated;
                    if (def_bb == bb.get()) {
                        dominated =
                            position[def] < position[inst.get()];
                    } else {
                        dominated = cfg_.reachable(def_bb->index()) &&
                            cfg_.dominates(def_bb->index(), bb->index());
                    }
                    if (!dominated) {
                        warn(inst.get(),
                             "use not dominated by its definition (" +
                                 printInstruction(*def) + ")");
                    }
                }
            }
        }
    }

    void
    checkDeadAllocaStores()
    {
        // An alloca whose address only ever feeds the address operand of
        // stores is written but never read: every such store is dead.
        // Any other use (load, gep, call argument, stored *as a value*,
        // compare, ...) counts as an escape and disables the check.
        for (const auto &bb : fn_.blocks()) {
            for (const auto &inst : bb->insts()) {
                if (inst->op() != Opcode::alloca_)
                    continue;
                bool escapes = false;
                unsigned stores = 0;
                for (const auto &bb2 : fn_.blocks()) {
                    for (const auto &use : bb2->insts()) {
                        for (size_t i = 0; i < use->numOperands(); i++) {
                            if (use->operand(i) != inst.get())
                                continue;
                            if (use->op() == Opcode::store && i == 1)
                                stores++;
                            else
                                escapes = true;
                        }
                    }
                }
                if (!escapes && stores > 0) {
                    warn(inst.get(),
                         std::to_string(stores) +
                             " dead store(s) to never-loaded alloca");
                }
            }
        }
    }

    const Function &fn_;
    Cfg cfg_;
    std::vector<VerifyIssue> &issues_;
};

} // namespace

std::vector<VerifyIssue>
verifyModule(const Module &module)
{
    std::vector<VerifyIssue> issues;
    for (const auto &fn : module.functions()) {
        FunctionVerifier verifier(*fn, issues);
        verifier.run();
    }
    return issues;
}

std::vector<VerifyIssue>
lintModule(const Module &module)
{
    std::vector<VerifyIssue> issues;
    for (const auto &fn : module.functions()) {
        if (fn->isDeclaration())
            continue;
        FunctionLinter linter(*fn, issues);
        linter.run();
    }
    return issues;
}

bool
moduleIsValid(const Module &module)
{
    return verifyModule(module).empty();
}

std::string
formatIssues(const std::vector<VerifyIssue> &issues)
{
    std::ostringstream os;
    for (const auto &issue : issues)
        os << issue.toString() << "\n";
    return os.str();
}

} // namespace sulong
