/**
 * @file
 * Textual dump of IR modules in an LLVM-flavoured syntax, for debugging,
 * golden tests, and inspecting what the optimizer did to a bug.
 */

#ifndef MS_IR_PRINTER_H
#define MS_IR_PRINTER_H

#include <string>

#include "ir/module.h"

namespace sulong
{

/** Print one function. */
std::string printFunction(const Function &fn);

/** Print the whole module (globals then function definitions). */
std::string printModule(const Module &module);

/** Print a single instruction (operands by name/slot). */
std::string printInstruction(const Instruction &inst);

} // namespace sulong

#endif // MS_IR_PRINTER_H
