#include "ir/type.h"

#include <sstream>

#include "support/diagnostics.h"

namespace sulong
{

unsigned
Type::intBitsBad() const
{
    throw InternalError("intBits() on non-integer type");
}

int
Type::fieldAt(uint64_t offset) const
{
    for (size_t i = 0; i < fields_.size(); i++) {
        uint64_t end = fields_[i].offset + fields_[i].type->size();
        if (offset >= fields_[i].offset && offset < end)
            return static_cast<int>(i);
    }
    return -1;
}

const StructField *
Type::fieldNamed(const std::string &name) const
{
    for (const auto &field : fields_) {
        if (field.name == name)
            return &field;
    }
    return nullptr;
}

std::string
Type::toString() const
{
    switch (kind_) {
      case TypeKind::voidTy: return "void";
      case TypeKind::i1: return "i1";
      case TypeKind::i8: return "i8";
      case TypeKind::i16: return "i16";
      case TypeKind::i32: return "i32";
      case TypeKind::i64: return "i64";
      case TypeKind::f32: return "float";
      case TypeKind::f64: return "double";
      case TypeKind::ptr: return "ptr";
      case TypeKind::array: {
        std::ostringstream os;
        os << "[" << arrayLen_ << " x " << elem_->toString() << "]";
        return os.str();
      }
      case TypeKind::structTy:
        return "%struct." + name_;
      case TypeKind::function: {
        std::ostringstream os;
        os << elem_->toString() << " (";
        for (size_t i = 0; i < params_.size(); i++) {
            if (i)
                os << ", ";
            os << params_[i]->toString();
        }
        if (varArg_)
            os << (params_.empty() ? "..." : ", ...");
        os << ")";
        return os.str();
      }
    }
    return "<invalid>";
}

TypeContext::TypeContext()
{
    struct Spec { TypeKind kind; uint64_t size; uint64_t align; };
    static const Spec specs[9] = {
        {TypeKind::voidTy, 0, 1}, {TypeKind::i1, 1, 1},
        {TypeKind::i8, 1, 1},     {TypeKind::i16, 2, 2},
        {TypeKind::i32, 4, 4},    {TypeKind::i64, 8, 8},
        {TypeKind::f32, 4, 4},    {TypeKind::f64, 8, 8},
        {TypeKind::ptr, 8, 8},
    };
    for (int i = 0; i < 9; i++) {
        primitives_[i].kind_ = specs[i].kind;
        primitives_[i].size_ = specs[i].size;
        primitives_[i].align_ = specs[i].align;
    }
}

const Type *
TypeContext::intType(unsigned bits) const
{
    switch (bits) {
      case 1: return i1();
      case 8: return i8();
      case 16: return i16();
      case 32: return i32();
      case 64: return i64();
      default:
        throw InternalError("unsupported integer width");
    }
}

const Type *
TypeContext::arrayType(const Type *elem, uint64_t count)
{
    auto key = std::make_pair(elem, count);
    auto it = arrays_.find(key);
    if (it != arrays_.end())
        return it->second;
    auto type = std::unique_ptr<Type>(new Type());
    type->kind_ = TypeKind::array;
    type->elem_ = elem;
    type->arrayLen_ = count;
    type->size_ = elem->size() * count;
    type->align_ = elem->align();
    const Type *raw = type.get();
    owned_.push_back(std::move(type));
    arrays_[key] = raw;
    return raw;
}

const Type *
TypeContext::structType(
    const std::string &name,
    const std::vector<std::pair<std::string, const Type *>> &fields)
{
    auto it = structs_.find(name);
    if (it != structs_.end())
        return it->second;
    auto type = std::unique_ptr<Type>(new Type());
    type->kind_ = TypeKind::structTy;
    type->name_ = name;
    uint64_t offset = 0;
    uint64_t max_align = 1;
    for (const auto &[field_name, field_type] : fields) {
        uint64_t align = field_type->align();
        offset = (offset + align - 1) / align * align;
        type->fields_.push_back(StructField{field_name, field_type, offset});
        offset += field_type->size();
        max_align = std::max(max_align, align);
    }
    type->align_ = max_align;
    type->size_ = (offset + max_align - 1) / max_align * max_align;
    if (type->size_ == 0)
        type->size_ = max_align; // empty structs occupy one unit
    const Type *raw = type.get();
    owned_.push_back(std::move(type));
    structs_[name] = raw;
    return raw;
}

const Type *
TypeContext::findStruct(const std::string &name) const
{
    auto it = structs_.find(name);
    return it == structs_.end() ? nullptr : it->second;
}

const Type *
TypeContext::functionType(const Type *ret, std::vector<const Type *> params,
                          bool var_arg)
{
    // Key by rendered signature; cheap and simple.
    std::string key = ret->toString() + "(";
    for (const Type *param : params)
        key += param->toString() + ",";
    if (var_arg)
        key += "...";
    key += ")";
    auto it = functions_.find(key);
    if (it != functions_.end())
        return it->second;
    auto type = std::unique_ptr<Type>(new Type());
    type->kind_ = TypeKind::function;
    type->elem_ = ret;
    type->params_ = std::move(params);
    type->varArg_ = var_arg;
    type->size_ = 0;
    type->align_ = 1;
    const Type *raw = type.get();
    owned_.push_back(std::move(type));
    functions_[key] = raw;
    return raw;
}

} // namespace sulong
