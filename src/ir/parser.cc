#include "ir/parser.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "support/string_utils.h"

namespace sulong
{

namespace
{

/** Thrown internally; converted to IRParseResult.error. */
struct IRParseError
{
    int line;
    std::string message;
};

/**
 * Line-oriented recursive-descent parser over the printer's format.
 */
class IRParser
{
  public:
    explicit IRParser(const std::string &text)
        : lines_(split(text, '\n')), module_(std::make_unique<Module>())
    {}

    std::unique_ptr<Module>
    run()
    {
        // Pass 1: register all globals (zero-init) and function
        // signatures so cross references resolve in any order.
        for (lineNo_ = 0; lineNo_ < lines_.size(); lineNo_++) {
            std::string_view line = trim(lines_[lineNo_]);
            if (line.empty())
                continue;
            if (line[0] == '@')
                registerGlobal(line);
            else if (line.rfind("define ", 0) == 0 ||
                     line.rfind("declare ", 0) == 0)
                registerFunction(line);
        }
        // Pass 2: global initializers and function bodies.
        for (lineNo_ = 0; lineNo_ < lines_.size(); lineNo_++) {
            std::string_view line = trim(lines_[lineNo_]);
            if (line.empty())
                continue;
            if (line[0] == '@')
                parseGlobalInit(line);
            else if (line.rfind("define ", 0) == 0)
                parseFunctionBody(line);
        }
        module_->finalize();
        return std::move(module_);
    }

  private:
    [[noreturn]] void
    fail(const std::string &message) const
    {
        throw IRParseError{static_cast<int>(lineNo_) + 1, message};
    }

    // --- Token scanning over one line ----------------------------------

    std::string_view cur_;
    size_t pos_ = 0;

    void
    beginLine(std::string_view line)
    {
        cur_ = line;
        pos_ = 0;
    }

    void
    skipSpace()
    {
        while (pos_ < cur_.size() && cur_[pos_] == ' ')
            pos_++;
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos_ >= cur_.size() || cur_[pos_] == ';';
    }

    char
    peek()
    {
        skipSpace();
        return pos_ < cur_.size() ? cur_[pos_] : '\0';
    }

    bool
    accept(char c)
    {
        if (peek() != c)
            return false;
        pos_++;
        return true;
    }

    void
    expect(char c)
    {
        if (!accept(c))
            fail(std::string("expected '") + c + "'");
    }

    bool
    acceptWord(std::string_view word)
    {
        skipSpace();
        if (cur_.compare(pos_, word.size(), word) != 0)
            return false;
        size_t end = pos_ + word.size();
        if (end < cur_.size() &&
            (std::isalnum(static_cast<unsigned char>(cur_[end])) ||
             cur_[end] == '_' || cur_[end] == '.')) {
            return false;
        }
        pos_ = end;
        return true;
    }

    std::string
    word()
    {
        skipSpace();
        size_t start = pos_;
        while (pos_ < cur_.size() &&
               (std::isalnum(static_cast<unsigned char>(cur_[pos_])) ||
                cur_[pos_] == '_' || cur_[pos_] == '.')) {
            pos_++;
        }
        if (pos_ == start)
            fail("expected an identifier");
        return std::string(cur_.substr(start, pos_ - start));
    }

    int64_t
    integer()
    {
        skipSpace();
        size_t start = pos_;
        if (pos_ < cur_.size() && (cur_[pos_] == '-' || cur_[pos_] == '+'))
            pos_++;
        while (pos_ < cur_.size() &&
               std::isdigit(static_cast<unsigned char>(cur_[pos_]))) {
            pos_++;
        }
        if (pos_ == start)
            fail("expected an integer");
        return std::strtoll(std::string(cur_.substr(start, pos_ - start))
                                .c_str(), nullptr, 10);
    }

    /** Number token; true when it contained '.', 'e', or "inf"/"nan". */
    bool
    number(int64_t &int_out, double &fp_out)
    {
        skipSpace();
        size_t start = pos_;
        bool fp = false;
        if (pos_ < cur_.size() && (cur_[pos_] == '-' || cur_[pos_] == '+'))
            pos_++;
        while (pos_ < cur_.size() &&
               (std::isdigit(static_cast<unsigned char>(cur_[pos_])) ||
                cur_[pos_] == '.' || cur_[pos_] == 'e' ||
                cur_[pos_] == 'E' ||
                ((cur_[pos_] == '-' || cur_[pos_] == '+') && pos_ > start &&
                 (cur_[pos_ - 1] == 'e' || cur_[pos_ - 1] == 'E')))) {
            if (!std::isdigit(static_cast<unsigned char>(cur_[pos_])))
                fp = true;
            pos_++;
        }
        std::string text(cur_.substr(start, pos_ - start));
        if (text.empty() || text == "-" || text == "+")
            fail("expected a number");
        if (fp) {
            fp_out = std::strtod(text.c_str(), nullptr);
        } else {
            int_out = std::strtoll(text.c_str(), nullptr, 10);
        }
        return fp;
    }

    // --- Types ------------------------------------------------------------

    const Type *
    parseType()
    {
        if (accept('[')) {
            int64_t count = integer();
            if (!acceptWord("x"))
                fail("expected 'x' in array type");
            const Type *elem = parseType();
            expect(']');
            return module_->types().arrayType(
                elem, static_cast<uint64_t>(count));
        }
        if (acceptWord("void")) return module_->types().voidTy();
        if (acceptWord("i1")) return module_->types().i1();
        if (acceptWord("i8")) return module_->types().i8();
        if (acceptWord("i16")) return module_->types().i16();
        if (acceptWord("i32")) return module_->types().i32();
        if (acceptWord("i64")) return module_->types().i64();
        if (acceptWord("float")) return module_->types().f32();
        if (acceptWord("double")) return module_->types().f64();
        if (acceptWord("ptr")) return module_->types().ptr();
        if (peek() == '%')
            fail("struct types cannot be reconstructed from text");
        fail("expected a type");
    }

    // --- Pass 1: symbols ---------------------------------------------------

    void
    registerGlobal(std::string_view line)
    {
        beginLine(line);
        expect('@');
        std::string name = word();
        expect('=');
        bool is_const = acceptWord("constant");
        if (!is_const && !acceptWord("global"))
            fail("expected 'global' or 'constant'");
        const Type *type = parseType();
        module_->addGlobal(type, name, Initializer::makeZero(), is_const);
        // Initializer text parsed in pass 2.
    }

    void
    registerFunction(std::string_view line)
    {
        beginLine(line);
        bool is_decl = acceptWord("declare");
        if (!is_decl && !acceptWord("define"))
            fail("expected 'define' or 'declare'");
        const Type *ret = parseType();
        expect('@');
        std::string name = word();
        expect('(');
        std::vector<const Type *> params;
        bool var_arg = false;
        if (!accept(')')) {
            while (true) {
                if (accept('.')) {
                    expect('.');
                    expect('.');
                    var_arg = true;
                    break;
                }
                params.push_back(parseType());
                // Optional parameter name "%aN".
                if (accept('%'))
                    word();
                if (!accept(','))
                    break;
            }
            if (peek() == ')')
                pos_++;
        }
        Function *fn = module_->addFunction(
            module_->types().functionType(ret, params, var_arg), name);
        // "; intrinsic" marker on declarations.
        skipSpace();
        if (cur_.find("intrinsic", pos_) != std::string_view::npos)
            fn->setIntrinsic(true);
    }

    // --- Pass 2: globals -----------------------------------------------------

    Initializer
    parseInit(const Type *type)
    {
        if (acceptWord("zeroinitializer"))
            return Initializer::makeZero();
        if (peek() == 'c' && pos_ + 1 < cur_.size() &&
            cur_[pos_ + 1] == '"') {
            pos_ += 2;
            std::string bytes;
            while (pos_ < cur_.size() && cur_[pos_] != '"') {
                if (cur_[pos_] == '\\' && pos_ + 2 < cur_.size()) {
                    auto hex = [](char c) {
                        return std::isdigit(static_cast<unsigned char>(c))
                            ? c - '0' : (std::toupper(c) - 'A' + 10);
                    };
                    bytes.push_back(static_cast<char>(
                        hex(cur_[pos_ + 1]) * 16 + hex(cur_[pos_ + 2])));
                    pos_ += 3;
                } else {
                    bytes.push_back(cur_[pos_]);
                    pos_++;
                }
            }
            expect('"');
            return Initializer::makeBytes(std::move(bytes));
        }
        if (accept('[')) {
            Initializer init;
            init.kind = Initializer::Kind::array;
            const Type *elem = type->isArray() ? type->elemType() : type;
            if (!accept(']')) {
                do {
                    init.elems.push_back(parseInit(elem));
                } while (accept(','));
                expect(']');
            }
            return init;
        }
        if (accept('@')) {
            std::string name = word();
            int64_t addend = 0;
            if (accept('+'))
                addend = integer();
            if (GlobalVariable *g = module_->findGlobal(name))
                return Initializer::makeGlobalRef(g, addend);
            if (Function *fn = module_->findFunction(name))
                return Initializer::makeFunctionRef(fn);
            fail("unknown symbol @" + name);
        }
        int64_t int_value = 0;
        double fp_value = 0;
        if (number(int_value, fp_value) || (type != nullptr &&
                                            type->isFloat())) {
            if (type != nullptr && type->isFloat()) {
                return Initializer::makeFP(
                    fp_value != 0 ? fp_value
                                  : static_cast<double>(int_value));
            }
            return Initializer::makeFP(fp_value);
        }
        return Initializer::makeInt(int_value);
    }

    void
    parseGlobalInit(std::string_view line)
    {
        beginLine(line);
        expect('@');
        std::string name = word();
        expect('=');
        acceptWord("constant") || acceptWord("global");
        const Type *type = parseType();
        GlobalVariable *g = module_->findGlobal(name);
        if (!atEnd())
            g->setInit(parseInit(type));
    }

    // --- Pass 2: function bodies -----------------------------------------------

    struct OperandRef
    {
        Instruction *inst;
        size_t index;
        int slot;
        /// Constant spelled inline; typed after slot resolution.
        bool isConstant = false;
        bool isFP = false;
        int64_t intValue = 0;
        double fpValue = 0;
        bool isNull = false;
        std::string symbol; ///< @name reference
        /// Expected type when the context dictates one (may be null).
        const Type *expected = nullptr;
    };

    Function *fn_ = nullptr;
    std::map<int, Instruction *> slotDefs_;
    std::map<std::string, BasicBlock *> blocks_;
    std::vector<OperandRef> fixups_;

    /** Scan one operand token into a fixup record. */
    OperandRef
    scanOperand(const Type *expected)
    {
        OperandRef ref;
        ref.expected = expected;
        skipSpace();
        if (accept('%')) {
            if (peek() == 'a') {
                pos_++;
                ref.slot = static_cast<int>(integer());
                ref.isConstant = false;
                // Arguments occupy the first slots.
                return ref;
            }
            ref.slot = static_cast<int>(integer());
            return ref;
        }
        if (accept('@')) {
            ref.symbol = word();
            ref.isConstant = true;
            return ref;
        }
        if (acceptWord("null")) {
            ref.isConstant = true;
            ref.isNull = true;
            return ref;
        }
        ref.isConstant = true;
        ref.isFP = number(ref.intValue, ref.fpValue);
        return ref;
    }

    void
    addOperand(Instruction *inst, const Type *expected)
    {
        OperandRef ref = scanOperand(expected);
        ref.inst = inst;
        ref.index = inst->numOperands();
        inst->addOperand(nullptr); // placeholder
        fixups_.push_back(std::move(ref));
    }

    Value *
    resolve(const OperandRef &ref)
    {
        if (!ref.isConstant) {
            if (ref.slot < static_cast<int>(fn_->numArgs()))
                return fn_->arg(static_cast<unsigned>(ref.slot));
            auto it = slotDefs_.find(ref.slot);
            if (it == slotDefs_.end()) {
                throw IRParseError{0, "undefined slot %" +
                                          std::to_string(ref.slot)};
            }
            return it->second;
        }
        if (!ref.symbol.empty()) {
            if (GlobalVariable *g = module_->findGlobal(ref.symbol))
                return g;
            if (Function *fn = module_->findFunction(ref.symbol))
                return fn;
            throw IRParseError{0, "unknown symbol @" + ref.symbol};
        }
        if (ref.isNull)
            return module_->constNull();
        const Type *type = ref.expected;
        if (type == nullptr)
            type = ref.isFP ? module_->types().f64()
                            : module_->types().i32();
        if (type->isFloat()) {
            return module_->constFP(type, ref.isFP
                                              ? ref.fpValue
                                              : static_cast<double>(
                                                    ref.intValue));
        }
        if (type->isPointer()) {
            if (ref.intValue == 0)
                return module_->constNull();
            throw IRParseError{0, "non-null pointer literal"};
        }
        return module_->constInt(type, ref.intValue);
    }

    BasicBlock *
    blockNamed(const std::string &name)
    {
        auto it = blocks_.find(name);
        if (it == blocks_.end())
            fail("unknown block ^" + name);
        return it->second;
    }

    void
    parseFunctionBody(std::string_view header)
    {
        beginLine(header);
        acceptWord("define");
        parseType();
        expect('@');
        std::string name = word();
        fn_ = module_->findFunction(name);
        slotDefs_.clear();
        blocks_.clear();
        fixups_.clear();

        // Pre-scan labels to allow forward branch targets.
        size_t body_start = lineNo_ + 1;
        for (size_t i = body_start; i < lines_.size(); i++) {
            std::string_view line = trim(lines_[i]);
            if (line == "}")
                break;
            if (!line.empty() && line.back() == ':' &&
                line.find(' ') == std::string_view::npos) {
                blocks_[std::string(line.substr(0, line.size() - 1))] =
                    fn_->addBlock(
                        std::string(line.substr(0, line.size() - 1)));
            }
        }

        BasicBlock *current = nullptr;
        for (lineNo_ = body_start; lineNo_ < lines_.size(); lineNo_++) {
            std::string_view line = trim(lines_[lineNo_]);
            if (line == "}")
                break;
            if (line.empty())
                continue;
            if (line.back() == ':' &&
                line.find(' ') == std::string_view::npos) {
                current = blockNamed(
                    std::string(line.substr(0, line.size() - 1)));
                continue;
            }
            if (current == nullptr)
                fail("instruction before the first label");
            parseInstruction(line, current);
        }

        // Number result slots in textual order, then resolve operands.
        fn_->numberSlots();
        for (const OperandRef &ref : fixups_) {
            try {
                ref.inst->setOperand(ref.index, resolve(ref));
            } catch (IRParseError &e) {
                e.line = static_cast<int>(lineNo_) + 1;
                throw;
            }
        }
        // Infer untyped binop constant operands from their siblings.
        retypeConstants();
    }

    /**
     * Binops, fneg, and select carry no explicit result type in the
     * textual syntax: infer it from the first non-constant operand, then
     * retype inline integer constants to match (two passes so chains of
     * inferred results converge).
     */
    void
    retypeConstants()
    {
        for (int round = 0; round < 2; round++) {
            for (const auto &bb : fn_->blocks()) {
                for (const auto &inst : bb->insts()) {
                    bool infer_result = false;
                    switch (inst->op()) {
                      case Opcode::add: case Opcode::sub: case Opcode::mul:
                      case Opcode::sdiv: case Opcode::udiv:
                      case Opcode::srem: case Opcode::urem:
                      case Opcode::and_: case Opcode::or_:
                      case Opcode::xor_: case Opcode::shl:
                      case Opcode::lshr: case Opcode::ashr:
                      case Opcode::fadd: case Opcode::fsub:
                      case Opcode::fmul: case Opcode::fdiv:
                      case Opcode::frem: case Opcode::fneg:
                        infer_result = true;
                        break;
                      case Opcode::icmp:
                        break;
                      case Opcode::select: {
                        for (size_t i = 1; i < inst->numOperands(); i++) {
                            Value *v = inst->operand(i);
                            if (!v->isConstant())
                                inst->setResultType(v->type());
                        }
                        continue;
                      }
                      default:
                        continue;
                    }
                    const Type *want = nullptr;
                    for (Value *v : inst->operands()) {
                        if (!v->isConstant()) {
                            want = v->type();
                            break;
                        }
                    }
                    if (want == nullptr) {
                        // All-constant: keep the guess — except for icmp,
                        // whose result type (i1) says nothing about its
                        // operands; retyping `icmp eq 3, 16` to i1 would
                        // truncate the constants. Keep their parsed type.
                        want = inst->op() == Opcode::icmp
                            ? inst->operand(0)->type()
                            : inst->type();
                    }
                    if (infer_result)
                        inst->setResultType(want);
                    for (size_t i = 0; i < inst->numOperands(); i++) {
                        Value *v = inst->operand(i);
                        if (want->isInteger() &&
                            v->valueKind() == ValueKind::constantInt &&
                            v->type() != want) {
                            inst->setOperand(i, module_->constInt(
                                want,
                                static_cast<ConstantInt *>(v)->value()));
                        } else if (want->isFloat() &&
                                   v->isConstant() &&
                                   v->type() != want) {
                            double d =
                                v->valueKind() == ValueKind::constantFP
                                    ? static_cast<ConstantFP *>(v)->value()
                                    : static_cast<double>(
                                          static_cast<ConstantInt *>(v)
                                              ->value());
                            inst->setOperand(i,
                                             module_->constFP(want, d));
                        }
                    }
                }
            }
        }
    }

    void
    parseInstruction(std::string_view line, BasicBlock *bb)
    {
        beginLine(line);
        int result_slot = -1;
        if (accept('%')) {
            result_slot = static_cast<int>(integer());
            expect('=');
        }
        std::string op = word();
        Instruction *inst = nullptr;

        auto make = [&](Opcode opcode, const Type *result) {
            auto owned = std::make_unique<Instruction>(opcode, result);
            inst = bb->append(std::move(owned));
            return inst;
        };

        static const std::map<std::string, Opcode> binops = {
            {"add", Opcode::add}, {"sub", Opcode::sub},
            {"mul", Opcode::mul}, {"sdiv", Opcode::sdiv},
            {"udiv", Opcode::udiv}, {"srem", Opcode::srem},
            {"urem", Opcode::urem}, {"and", Opcode::and_},
            {"or", Opcode::or_}, {"xor", Opcode::xor_},
            {"shl", Opcode::shl}, {"lshr", Opcode::lshr},
            {"ashr", Opcode::ashr}, {"fadd", Opcode::fadd},
            {"fsub", Opcode::fsub}, {"fmul", Opcode::fmul},
            {"fdiv", Opcode::fdiv}, {"frem", Opcode::frem},
        };
        static const std::map<std::string, Opcode> casts = {
            {"trunc", Opcode::trunc}, {"zext", Opcode::zext},
            {"sext", Opcode::sext}, {"fptosi", Opcode::fptosi},
            {"fptoui", Opcode::fptoui}, {"sitofp", Opcode::sitofp},
            {"uitofp", Opcode::uitofp}, {"fpext", Opcode::fpext},
            {"fptrunc", Opcode::fptrunc},
            {"ptrtoint", Opcode::ptrtoint},
            {"inttoptr", Opcode::inttoptr},
        };
        static const std::map<std::string, IntPred> ipreds = {
            {"eq", IntPred::eq}, {"ne", IntPred::ne},
            {"slt", IntPred::slt}, {"sle", IntPred::sle},
            {"sgt", IntPred::sgt}, {"sge", IntPred::sge},
            {"ult", IntPred::ult}, {"ule", IntPred::ule},
            {"ugt", IntPred::ugt}, {"uge", IntPred::uge},
        };
        static const std::map<std::string, FloatPred> fpreds = {
            {"oeq", FloatPred::oeq}, {"one", FloatPred::one},
            {"olt", FloatPred::olt}, {"ole", FloatPred::ole},
            {"ogt", FloatPred::ogt}, {"oge", FloatPred::oge},
        };

        if (op == "alloca") {
            const Type *allocated = parseType();
            make(Opcode::alloca_, module_->types().ptr());
            inst->setAccessType(allocated);
        } else if (op == "load") {
            const Type *type = parseType();
            expect(',');
            make(Opcode::load, type);
            inst->setAccessType(type);
            addOperand(inst, nullptr);
        } else if (op == "store") {
            const Type *type = parseType();
            make(Opcode::store, module_->types().voidTy());
            inst->setAccessType(type);
            addOperand(inst, type);
            expect(',');
            addOperand(inst, nullptr);
        } else if (op == "gep") {
            make(Opcode::gep, module_->types().ptr());
            addOperand(inst, nullptr); // base
            expect('+');
            int64_t const_off = integer();
            uint64_t scale = 0;
            if (accept('+')) {
                addOperand(inst, module_->types().i64());
                expect('*');
                scale = static_cast<uint64_t>(integer());
            }
            inst->setGep(const_off, scale);
        } else if (binops.count(op)) {
            Opcode opcode = binops.at(op);
            bool is_float = op[0] == 'f';
            // Result type resolved after operands; start with a guess
            // refined by retypeConstants()/sibling inference.
            const Type *guess = is_float ? module_->types().f64()
                                         : module_->types().i32();
            make(opcode, guess);
            addOperand(inst, nullptr);
            expect(',');
            addOperand(inst, nullptr);
        } else if (op == "fneg") {
            make(Opcode::fneg, module_->types().f64());
            addOperand(inst, nullptr);
        } else if (op == "icmp") {
            std::string pred = word();
            if (!ipreds.count(pred))
                fail("unknown icmp predicate " + pred);
            make(Opcode::icmp, module_->types().i1());
            inst->setIntPred(ipreds.at(pred));
            addOperand(inst, nullptr);
            expect(',');
            addOperand(inst, nullptr);
        } else if (op == "fcmp") {
            std::string pred = word();
            if (!fpreds.count(pred))
                fail("unknown fcmp predicate " + pred);
            make(Opcode::fcmp, module_->types().i1());
            inst->setFloatPred(fpreds.at(pred));
            addOperand(inst, nullptr);
            expect(',');
            addOperand(inst, nullptr);
        } else if (casts.count(op)) {
            make(casts.at(op), module_->types().i32());
            addOperand(inst, nullptr);
            if (!acceptWord("to"))
                fail("expected 'to' in cast");
            inst->setResultType(parseType());
        } else if (op == "select") {
            make(Opcode::select, module_->types().i32());
            addOperand(inst, nullptr);
            expect(',');
            addOperand(inst, nullptr);
            expect(',');
            addOperand(inst, nullptr);
        } else if (op == "call") {
            const Type *ret = parseType();
            make(Opcode::call, ret);
            // Direct calls type their constant arguments from the callee
            // signature (registered in pass 1).
            const Type *fn_type = nullptr;
            skipSpace();
            if (peek() == '@') {
                size_t save = pos_;
                pos_++;
                std::string callee = word();
                pos_ = save;
                if (const Function *callee_fn =
                        module_->findFunction(callee)) {
                    fn_type = callee_fn->fnType();
                }
            }
            addOperand(inst, nullptr); // callee
            expect('(');
            if (!accept(')')) {
                size_t arg_index = 0;
                do {
                    const Type *expected = nullptr;
                    if (fn_type != nullptr &&
                        arg_index < fn_type->paramTypes().size()) {
                        expected = fn_type->paramTypes()[arg_index];
                    }
                    addOperand(inst, expected);
                    arg_index++;
                } while (accept(','));
                expect(')');
            }
        } else if (op == "br") {
            make(Opcode::br, module_->types().voidTy());
            expect('^');
            inst->setTargets(blockNamed(word()));
        } else if (op == "condbr") {
            make(Opcode::condbr, module_->types().voidTy());
            addOperand(inst, module_->types().i1());
            expect(',');
            expect('^');
            BasicBlock *t0 = blockNamed(word());
            expect(',');
            expect('^');
            inst->setTargets(t0, blockNamed(word()));
        } else if (op == "ret") {
            make(Opcode::ret, module_->types().voidTy());
            if (!atEnd())
                addOperand(inst, fn_->returnType());
        } else if (op == "unreachable") {
            make(Opcode::unreachable_, module_->types().voidTy());
        } else {
            fail("unknown opcode '" + op + "'");
        }

        if (result_slot >= 0)
            slotDefs_[result_slot] = inst;
    }

    std::vector<std::string> lines_;
    size_t lineNo_ = 0;
    std::unique_ptr<Module> module_;
};

} // namespace

IRParseResult
parseIRModule(const std::string &text)
{
    IRParseResult result;
    try {
        IRParser parser(text);
        result.module = parser.run();
    } catch (const IRParseError &error) {
        result.error = "line " + std::to_string(error.line) + ": " +
            error.message;
    } catch (const InternalError &error) {
        result.error = error.what();
    }
    return result;
}

} // namespace sulong
