#include "ir/module.h"

namespace sulong
{

void
Function::removeBlocksIf(const std::vector<bool> &dead)
{
    std::vector<std::unique_ptr<BasicBlock>> kept;
    for (size_t i = 0; i < blocks_.size(); i++) {
        if (i < dead.size() && dead[i])
            continue;
        kept.push_back(std::move(blocks_[i]));
    }
    blocks_ = std::move(kept);
    for (unsigned i = 0; i < blocks_.size(); i++)
        blocks_[i]->setIndex(i);
}

void
Function::numberSlots()
{
    int next = static_cast<int>(args_.size());
    for (auto &bb : blocks_) {
        for (auto &inst : bb->insts()) {
            if (inst->producesValue())
                inst->setSlot(next++);
            else
                inst->setSlot(-1);
        }
    }
    numSlots_ = static_cast<unsigned>(next);
}

ConstantInt *
Module::constInt(const Type *type, int64_t value)
{
    // Normalize to the type's width (sign-extended canonical form).
    unsigned bits = type->intBits();
    if (bits < 64) {
        uint64_t mask = (1ull << bits) - 1;
        uint64_t raw = static_cast<uint64_t>(value) & mask;
        // sign extend
        if (raw & (1ull << (bits - 1)))
            raw |= ~mask;
        value = static_cast<int64_t>(raw);
    }
    auto key = std::make_pair(type, value);
    auto it = intConstants_.find(key);
    if (it != intConstants_.end())
        return it->second.get();
    auto c = std::make_unique<ConstantInt>(type, value);
    ConstantInt *raw = c.get();
    intConstants_[key] = std::move(c);
    return raw;
}

ConstantFP *
Module::constFP(const Type *type, double value)
{
    auto key = std::make_pair(type, value);
    auto it = fpConstants_.find(key);
    if (it != fpConstants_.end())
        return it->second.get();
    auto c = std::make_unique<ConstantFP>(type, value);
    ConstantFP *raw = c.get();
    fpConstants_[key] = std::move(c);
    return raw;
}

ConstantNull *
Module::constNull()
{
    if (!nullConstant_)
        nullConstant_ = std::make_unique<ConstantNull>(types_.ptr());
    return nullConstant_.get();
}

GlobalVariable *
Module::addGlobal(const Type *value_type, std::string name, Initializer init,
                  bool is_const)
{
    if (name.empty())
        name = ".anon" + std::to_string(anonGlobalCount_++);
    auto g = std::make_unique<GlobalVariable>(
        types_.ptr(), value_type, std::move(name), std::move(init), is_const);
    GlobalVariable *raw = g.get();
    globals_.push_back(std::move(g));
    globalsByName_[raw->name()] = raw;
    return raw;
}

GlobalVariable *
Module::findGlobal(const std::string &name) const
{
    auto it = globalsByName_.find(name);
    return it == globalsByName_.end() ? nullptr : it->second;
}

Function *
Module::addFunction(const Type *fn_type, std::string name)
{
    auto f = std::make_unique<Function>(types_.ptr(), fn_type,
                                        std::move(name));
    Function *raw = f.get();
    raw->setParent(this);
    raw->setId(static_cast<unsigned>(functions_.size()));
    functions_.push_back(std::move(f));
    functionsByName_[raw->name()] = raw;
    return raw;
}

Function *
Module::findFunction(const std::string &name) const
{
    auto it = functionsByName_.find(name);
    return it == functionsByName_.end() ? nullptr : it->second;
}

void
Module::finalize()
{
    for (auto &f : functions_) {
        if (!f->isDeclaration())
            f->numberSlots();
    }
}

} // namespace sulong
