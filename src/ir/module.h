/**
 * @file
 * Functions and the Module (translation-unit container) of the IR.
 */

#ifndef MS_IR_MODULE_H
#define MS_IR_MODULE_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/instruction.h"

namespace sulong
{

class Module;

/**
 * A function: signature, arguments and (for definitions) basic blocks.
 *
 * Functions without blocks are either host intrinsics (the `__sys_*`,
 * `__va_*` and math entry points that stand in for system calls, see
 * DESIGN.md) or unresolved externals, which engines report as
 * engine-errors when called.
 */
class Function : public Value
{
  public:
    Function(const Type *ptr_type, const Type *fn_type, std::string name)
        : Value(ValueKind::function, ptr_type), fnType_(fn_type)
    {
        name_ = std::move(name);
        const auto &params = fn_type->paramTypes();
        for (unsigned i = 0; i < params.size(); i++) {
            args_.push_back(
                std::make_unique<Argument>(params[i], i, "arg" + std::to_string(i)));
        }
    }

    const Type *fnType() const { return fnType_; }
    const Type *returnType() const { return fnType_->returnType(); }
    bool isVarArg() const { return fnType_->isVarArg(); }

    const std::vector<std::unique_ptr<Argument>> &args() const
    {
        return args_;
    }
    Argument *arg(unsigned i) const { return args_[i].get(); }
    unsigned numArgs() const { return static_cast<unsigned>(args_.size()); }

    const std::vector<std::unique_ptr<BasicBlock>> &blocks() const
    {
        return blocks_;
    }
    BasicBlock *entry() const
    {
        return blocks_.empty() ? nullptr : blocks_.front().get();
    }
    bool isDeclaration() const { return blocks_.empty(); }

    BasicBlock *addBlock(std::string name)
    {
        blocks_.push_back(std::make_unique<BasicBlock>(
            this, std::move(name), static_cast<unsigned>(blocks_.size())));
        return blocks_.back().get();
    }

    /** Remove unreachable blocks and renumber (optimizer use). */
    void removeBlocksIf(const std::vector<bool> &dead);

    /**
     * Assign dense frame slots: arguments first, then every
     * value-producing instruction. Must run after construction or any
     * structural change and before execution.
     */
    void numberSlots();

    /** Number of frame slots required to execute this function. */
    unsigned numSlots() const { return numSlots_; }

    /// True for engine-implemented builtins (no IR body by design).
    bool isIntrinsic() const { return intrinsic_; }
    void setIntrinsic(bool intrinsic) { intrinsic_ = intrinsic; }

    Module *parent() const { return parent_; }
    void setParent(Module *m) { parent_ = m; }

    /// Stable id used for function pointers and inline caches.
    unsigned id() const { return id_; }
    void setId(unsigned id) { id_ = id; }

    /// Logical source file of the definition ("libc/...", "<input>", ...);
    /// instrumentation passes use this to tell user code from libc.
    const std::string &sourceFile() const { return sourceFile_; }
    void setSourceFile(std::string file) { sourceFile_ = std::move(file); }

  private:
    const Type *fnType_;
    std::vector<std::unique_ptr<Argument>> args_;
    std::vector<std::unique_ptr<BasicBlock>> blocks_;
    unsigned numSlots_ = 0;
    bool intrinsic_ = false;
    Module *parent_ = nullptr;
    unsigned id_ = 0;
    std::string sourceFile_;
};

/**
 * A whole program: types, globals, functions and interned constants.
 *
 * One Module is produced per compilation (user program + the selected
 * libc variant linked in) and is then executed — unmodified or after
 * optimization/instrumentation — by any of the engines.
 */
class Module
{
  public:
    Module() = default;
    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    TypeContext &types() { return types_; }
    const TypeContext &types() const { return types_; }

    // --- Constants (interned, owned by the module) ----------------------

    ConstantInt *constInt(const Type *type, int64_t value);
    ConstantInt *constI32(int32_t value)
    {
        return constInt(types_.i32(), value);
    }
    ConstantInt *constI64(int64_t value)
    {
        return constInt(types_.i64(), value);
    }
    ConstantInt *constBool(bool value)
    {
        return constInt(types_.i1(), value ? 1 : 0);
    }
    ConstantFP *constFP(const Type *type, double value);
    ConstantNull *constNull();

    // --- Globals ---------------------------------------------------------

    GlobalVariable *addGlobal(const Type *value_type, std::string name,
                              Initializer init, bool is_const = false);
    GlobalVariable *findGlobal(const std::string &name) const;
    const std::vector<std::unique_ptr<GlobalVariable>> &globals() const
    {
        return globals_;
    }

    // --- Functions -------------------------------------------------------

    Function *addFunction(const Type *fn_type, std::string name);
    Function *findFunction(const std::string &name) const;
    const std::vector<std::unique_ptr<Function>> &functions() const
    {
        return functions_;
    }
    Function *functionById(unsigned id) const
    {
        return functions_[id].get();
    }

    /** Run numberSlots() on every function definition. */
    void finalize();

  private:
    TypeContext types_;
    std::vector<std::unique_ptr<GlobalVariable>> globals_;
    std::vector<std::unique_ptr<Function>> functions_;
    std::map<std::string, GlobalVariable *> globalsByName_;
    std::map<std::string, Function *> functionsByName_;
    std::map<std::pair<const Type *, int64_t>,
             std::unique_ptr<ConstantInt>> intConstants_;
    std::map<std::pair<const Type *, double>,
             std::unique_ptr<ConstantFP>> fpConstants_;
    std::unique_ptr<ConstantNull> nullConstant_;
    unsigned anonGlobalCount_ = 0;
};

} // namespace sulong

#endif // MS_IR_MODULE_H
