/**
 * @file
 * CFG helpers over IR functions: successors/predecessors, reverse
 * post-order, reachability and dominators.
 *
 * Shared by the static analyzer (worklist order, must-reach reasoning)
 * and the verifier's lint tier (unreachable blocks, def-dominates-use).
 * Everything works on the block indices assigned by Function::addBlock.
 */

#ifndef MS_IR_CFG_H
#define MS_IR_CFG_H

#include <vector>

#include "ir/module.h"

namespace sulong
{

/** Successor blocks of @p bb (0, 1 or 2, from its terminator). */
std::vector<const BasicBlock *> successors(const BasicBlock &bb);

/**
 * Precomputed CFG of one function definition. Indices are block
 * indices (BasicBlock::index()), which are dense and stable while the
 * function is not structurally modified.
 */
class Cfg
{
  public:
    explicit Cfg(const Function &fn);

    const Function &function() const { return *fn_; }
    size_t numBlocks() const { return succs_.size(); }

    const std::vector<unsigned> &succs(unsigned block) const
    {
        return succs_[block];
    }
    const std::vector<unsigned> &preds(unsigned block) const
    {
        return preds_[block];
    }

    /** True when @p block is reachable from the entry block. */
    bool reachable(unsigned block) const { return rpoIndex_[block] >= 0; }

    /** Reachable blocks in reverse post-order (entry first). */
    const std::vector<unsigned> &reversePostOrder() const { return rpo_; }

    /** Position of @p block in the RPO, or -1 if unreachable. */
    int rpoIndex(unsigned block) const { return rpoIndex_[block]; }

    /**
     * Immediate dominator of @p block (entry's idom is itself);
     * -1 for unreachable blocks.
     */
    int idom(unsigned block) const { return idom_[block]; }

    /** True when @p a dominates @p b (both reachable; a == b counts). */
    bool dominates(unsigned a, unsigned b) const;

  private:
    const Function *fn_;
    std::vector<std::vector<unsigned>> succs_;
    std::vector<std::vector<unsigned>> preds_;
    std::vector<unsigned> rpo_;
    std::vector<int> rpoIndex_;
    std::vector<int> idom_;
};

} // namespace sulong

#endif // MS_IR_CFG_H
