/**
 * @file
 * The type system of the MiniSulong IR.
 *
 * Deliberately at the abstraction level of LLVM IR with opaque pointers:
 * integer types of the widths Clang emits for C on AMD64 (i1..i64),
 * float/double, one opaque pointer type, and aggregate types (arrays and
 * named structs) used for layout, allocation and managed-object shaping.
 *
 * Types are interned: within one TypeContext, structurally identical types
 * are represented by the same Type pointer, so type equality is pointer
 * equality.
 */

#ifndef MS_IR_TYPE_H
#define MS_IR_TYPE_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sulong
{

class TypeContext;

/** Discriminator for Type. */
enum class TypeKind : uint8_t
{
    voidTy,
    i1,
    i8,
    i16,
    i32,
    i64,
    f32,
    f64,
    /// The single opaque pointer type.
    ptr,
    /// Fixed-size array: elem type + element count.
    array,
    /// Named struct with laid-out fields.
    structTy,
    /// Function type (return + params + varargs flag).
    function,
};

/** One field of a struct type, with its computed byte offset. */
struct StructField
{
    std::string name;
    const class Type *type = nullptr;
    uint64_t offset = 0;
};

/**
 * An immutable, interned IR type.
 *
 * Construction goes through TypeContext; layout (size/alignment) follows
 * the System V AMD64 data model that the paper's execution targets use.
 */
class Type
{
  public:
    TypeKind kind() const { return kind_; }

    bool isVoid() const { return kind_ == TypeKind::voidTy; }
    bool isInteger() const
    {
        return kind_ >= TypeKind::i1 && kind_ <= TypeKind::i64;
    }
    bool isFloat() const
    {
        return kind_ == TypeKind::f32 || kind_ == TypeKind::f64;
    }
    bool isPointer() const { return kind_ == TypeKind::ptr; }
    bool isArray() const { return kind_ == TypeKind::array; }
    bool isStruct() const { return kind_ == TypeKind::structTy; }
    bool isFunction() const { return kind_ == TypeKind::function; }
    bool isAggregate() const { return isArray() || isStruct(); }
    /// A type a single load/store can move: int, float, or pointer.
    bool isScalar() const { return isInteger() || isFloat() || isPointer(); }

    /** Bit width for integer types (i1 -> 1, ..., i64 -> 64). Inline:
     *  this sits on the per-access path of the managed engine. */
    unsigned
    intBits() const
    {
        switch (kind_) {
          case TypeKind::i1: return 1;
          case TypeKind::i8: return 8;
          case TypeKind::i16: return 16;
          case TypeKind::i32: return 32;
          case TypeKind::i64: return 64;
          default: return intBitsBad();
        }
    }

    /** Size in bytes (structs/arrays include padding; void/function: 0). */
    uint64_t size() const { return size_; }
    /** Alignment requirement in bytes. */
    uint64_t align() const { return align_; }

    // Array accessors.
    const Type *elemType() const { return elem_; }
    uint64_t arrayLength() const { return arrayLen_; }

    // Struct accessors.
    const std::string &structName() const { return name_; }
    const std::vector<StructField> &fields() const { return fields_; }
    /** @return field index containing byte @p offset, or -1. */
    int fieldAt(uint64_t offset) const;
    /** @return field with exactly this name, or nullptr. */
    const StructField *fieldNamed(const std::string &name) const;

    // Function-type accessors.
    const Type *returnType() const { return elem_; }
    const std::vector<const Type *> &paramTypes() const { return params_; }
    bool isVarArg() const { return varArg_; }

    /** Render in LLVM-like syntax ("i32", "[10 x i32]", "%struct.foo"). */
    std::string toString() const;

  private:
    friend class TypeContext;
    Type() = default;

    /// Cold half of intBits(): the throw on a non-integer type.
    [[noreturn]] unsigned intBitsBad() const;

    TypeKind kind_ = TypeKind::voidTy;
    uint64_t size_ = 0;
    uint64_t align_ = 1;
    const Type *elem_ = nullptr;    // array elem / function return
    uint64_t arrayLen_ = 0;
    std::string name_;              // struct name
    std::vector<StructField> fields_;
    std::vector<const Type *> params_;
    bool varArg_ = false;
};

/**
 * Owns and interns all types of one Module.
 */
class TypeContext
{
  public:
    TypeContext();
    TypeContext(const TypeContext &) = delete;
    TypeContext &operator=(const TypeContext &) = delete;

    const Type *voidTy() const { return &primitives_[0]; }
    const Type *i1() const { return &primitives_[1]; }
    const Type *i8() const { return &primitives_[2]; }
    const Type *i16() const { return &primitives_[3]; }
    const Type *i32() const { return &primitives_[4]; }
    const Type *i64() const { return &primitives_[5]; }
    const Type *f32() const { return &primitives_[6]; }
    const Type *f64() const { return &primitives_[7]; }
    const Type *ptr() const { return &primitives_[8]; }

    /** Integer type of the given bit width (1, 8, 16, 32, 64). */
    const Type *intType(unsigned bits) const;

    /** Interned array type. */
    const Type *arrayType(const Type *elem, uint64_t count);

    /**
     * Create a named struct type. Offsets are computed from field types
     * using natural alignment. Calling twice with the same name returns
     * the first definition (mini-C has one definition per tag).
     */
    const Type *structType(const std::string &name,
                           const std::vector<std::pair<std::string,
                               const Type *>> &fields);

    /** Look up a previously created struct type by name, or nullptr. */
    const Type *findStruct(const std::string &name) const;

    /** Interned function type. */
    const Type *functionType(const Type *ret,
                             std::vector<const Type *> params,
                             bool var_arg);

  private:
    Type primitives_[9];
    std::vector<std::unique_ptr<Type>> owned_;
    std::map<std::pair<const Type *, uint64_t>, const Type *> arrays_;
    std::map<std::string, const Type *> structs_;
    std::map<std::string, const Type *> functions_;
};

} // namespace sulong

#endif // MS_IR_TYPE_H
