/**
 * @file
 * Structural and type-level verifier for IR modules.
 *
 * Run after codegen, after every optimizer pipeline, and after
 * instrumentation: a malformed module would make engine differences
 * meaningless, so all producers must pass verification in tests.
 */

#ifndef MS_IR_VERIFIER_H
#define MS_IR_VERIFIER_H

#include <string>
#include <vector>

#include "ir/module.h"

namespace sulong
{

/** One verifier complaint. */
struct VerifyIssue
{
    std::string function;
    std::string message;

    std::string toString() const
    {
        return (function.empty() ? "" : "@" + function + ": ") + message;
    }
};

/**
 * Check a module. Verifies, per function definition:
 *  - every block ends in exactly one terminator and has no terminator
 *    mid-block;
 *  - operand types match opcode contracts (integer binops on matching
 *    integer types, loads from ptr, condbr on i1, ...);
 *  - branch targets belong to the same function;
 *  - call argument counts match non-varargs callee signatures;
 *  - ret matches the function return type;
 *  - slots are numbered (finalize() was run).
 *
 * @return all issues found (empty means the module is well-formed).
 */
std::vector<VerifyIssue> verifyModule(const Module &module);

/**
 * Warning-tier lint checks the static analyzer relies on but that do
 * not make a module unexecutable (so they never gate compilation):
 *  - blocks unreachable from the entry block;
 *  - instruction-result operands whose definition does not dominate the
 *    use (same-block uses must come after the definition);
 *  - stores to an alloca whose address is never loaded, never offset
 *    and never escapes (dead local stores).
 *
 * @return all lint findings (empty means the module is lint-clean).
 */
std::vector<VerifyIssue> lintModule(const Module &module);

/** Convenience wrapper: true if verifyModule() found nothing. */
bool moduleIsValid(const Module &module);

/** Render all issues, one per line. */
std::string formatIssues(const std::vector<VerifyIssue> &issues);

} // namespace sulong

#endif // MS_IR_VERIFIER_H
