#include "ir/builder.h"

namespace sulong
{

Instruction *
IRBuilder::insert(std::unique_ptr<Instruction> inst)
{
    if (block_ == nullptr)
        throw InternalError("IRBuilder has no insertion block");
    inst->setLoc(loc_);
    return block_->append(std::move(inst));
}

Instruction *
IRBuilder::createAlloca(const Type *allocated, std::string name)
{
    auto inst = std::make_unique<Instruction>(Opcode::alloca_, types().ptr());
    inst->setAccessType(allocated);
    inst->setName(std::move(name));
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createLoad(const Type *type, Value *ptr)
{
    auto inst = std::make_unique<Instruction>(Opcode::load, type);
    inst->setAccessType(type);
    inst->addOperand(ptr);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createStore(Value *value, Value *ptr)
{
    auto inst = std::make_unique<Instruction>(Opcode::store,
                                              types().voidTy());
    inst->setAccessType(value->type());
    inst->addOperand(value);
    inst->addOperand(ptr);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createGep(Value *ptr, int64_t const_offset, Value *index,
                     uint64_t scale)
{
    auto inst = std::make_unique<Instruction>(Opcode::gep, types().ptr());
    inst->addOperand(ptr);
    if (index != nullptr)
        inst->addOperand(index);
    inst->setGep(const_offset, index != nullptr ? scale : 0);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createBinOp(Opcode op, Value *lhs, Value *rhs)
{
    auto inst = std::make_unique<Instruction>(op, lhs->type());
    inst->addOperand(lhs);
    inst->addOperand(rhs);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createFNeg(Value *v)
{
    auto inst = std::make_unique<Instruction>(Opcode::fneg, v->type());
    inst->addOperand(v);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createICmp(IntPred pred, Value *lhs, Value *rhs)
{
    auto inst = std::make_unique<Instruction>(Opcode::icmp, types().i1());
    inst->setIntPred(pred);
    inst->addOperand(lhs);
    inst->addOperand(rhs);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createFCmp(FloatPred pred, Value *lhs, Value *rhs)
{
    auto inst = std::make_unique<Instruction>(Opcode::fcmp, types().i1());
    inst->setFloatPred(pred);
    inst->addOperand(lhs);
    inst->addOperand(rhs);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createCast(Opcode op, Value *v, const Type *to)
{
    auto inst = std::make_unique<Instruction>(op, to);
    inst->addOperand(v);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createSelect(Value *cond, Value *then_v, Value *else_v)
{
    auto inst = std::make_unique<Instruction>(Opcode::select,
                                              then_v->type());
    inst->addOperand(cond);
    inst->addOperand(then_v);
    inst->addOperand(else_v);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createCall(Value *callee, const Type *ret_type,
                      const std::vector<Value *> &args)
{
    auto inst = std::make_unique<Instruction>(Opcode::call, ret_type);
    inst->addOperand(callee);
    for (Value *arg : args)
        inst->addOperand(arg);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createBr(BasicBlock *target)
{
    auto inst = std::make_unique<Instruction>(Opcode::br, types().voidTy());
    inst->setTargets(target);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createCondBr(Value *cond, BasicBlock *then_bb,
                        BasicBlock *else_bb)
{
    auto inst = std::make_unique<Instruction>(Opcode::condbr,
                                              types().voidTy());
    inst->addOperand(cond);
    inst->setTargets(then_bb, else_bb);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createRet(Value *value)
{
    auto inst = std::make_unique<Instruction>(Opcode::ret, types().voidTy());
    if (value != nullptr)
        inst->addOperand(value);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createUnreachable()
{
    auto inst = std::make_unique<Instruction>(Opcode::unreachable_,
                                              types().voidTy());
    return insert(std::move(inst));
}

} // namespace sulong
