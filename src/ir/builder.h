/**
 * @file
 * Convenience builder used by the front end, the optimizer, the
 * instrumentation passes, and tests to create IR.
 */

#ifndef MS_IR_BUILDER_H
#define MS_IR_BUILDER_H

#include "ir/module.h"

namespace sulong
{

/**
 * Appends instructions to a current basic block, inferring result types.
 */
class IRBuilder
{
  public:
    explicit IRBuilder(Module &module) : module_(module) {}

    void setInsertPoint(BasicBlock *bb) { block_ = bb; }
    BasicBlock *insertBlock() const { return block_; }
    Module &module() { return module_; }
    TypeContext &types() { return module_.types(); }

    void setLoc(SourceLoc loc) { loc_ = std::move(loc); }
    const SourceLoc &loc() const { return loc_; }

    // --- Memory ----------------------------------------------------------

    Instruction *createAlloca(const Type *allocated, std::string name = "");
    Instruction *createLoad(const Type *type, Value *ptr);
    Instruction *createStore(Value *value, Value *ptr);
    /** ptr + const_offset + index * scale (index may be null). */
    Instruction *createGep(Value *ptr, int64_t const_offset,
                           Value *index = nullptr, uint64_t scale = 0);

    // --- Arithmetic ------------------------------------------------------

    Instruction *createBinOp(Opcode op, Value *lhs, Value *rhs);
    Instruction *createFNeg(Value *v);
    Instruction *createICmp(IntPred pred, Value *lhs, Value *rhs);
    Instruction *createFCmp(FloatPred pred, Value *lhs, Value *rhs);
    Instruction *createCast(Opcode op, Value *v, const Type *to);
    Instruction *createSelect(Value *cond, Value *then_v, Value *else_v);

    // --- Calls and control flow ------------------------------------------

    Instruction *createCall(Value *callee, const Type *ret_type,
                            const std::vector<Value *> &args);
    Instruction *createBr(BasicBlock *target);
    Instruction *createCondBr(Value *cond, BasicBlock *then_bb,
                              BasicBlock *else_bb);
    Instruction *createRet(Value *value = nullptr);
    Instruction *createUnreachable();

    /** True if the current block already ends in a terminator. */
    bool blockTerminated() const
    {
        Instruction *term = block_ ? block_->terminator() : nullptr;
        return term != nullptr && term->isTerminator();
    }

  private:
    Instruction *insert(std::unique_ptr<Instruction> inst);

    Module &module_;
    BasicBlock *block_ = nullptr;
    SourceLoc loc_;
};

} // namespace sulong

#endif // MS_IR_BUILDER_H
