/**
 * @file
 * Parser for the textual IR syntax emitted by ir/printer.h.
 *
 * Enables writing IR by hand in tests and round-tripping modules through
 * text (print -> parse -> print is idempotent). Supports the scalar,
 * pointer, and array subset of the syntax; named struct types cannot be
 * reconstructed from their printed name alone and are rejected.
 */

#ifndef MS_IR_PARSER_H
#define MS_IR_PARSER_H

#include <memory>
#include <string>

#include "ir/module.h"

namespace sulong
{

/** Result of parsing: a module or an error description. */
struct IRParseResult
{
    std::unique_ptr<Module> module; ///< null on failure
    std::string error;              ///< "line N: message" on failure

    bool ok() const { return module != nullptr; }
};

/** Parse a whole module from the printer's textual format. */
IRParseResult parseIRModule(const std::string &text);

} // namespace sulong

#endif // MS_IR_PARSER_H
