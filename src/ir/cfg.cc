#include "ir/cfg.h"

#include <algorithm>

namespace sulong
{

std::vector<const BasicBlock *>
successors(const BasicBlock &bb)
{
    std::vector<const BasicBlock *> out;
    const Instruction *term = bb.terminator();
    if (term == nullptr)
        return out;
    switch (term->op()) {
      case Opcode::br:
        out.push_back(term->target(0));
        break;
      case Opcode::condbr:
        out.push_back(term->target(0));
        if (term->target(1) != term->target(0))
            out.push_back(term->target(1));
        break;
      default:
        break; // ret / unreachable: no successors
    }
    return out;
}

Cfg::Cfg(const Function &fn) : fn_(&fn)
{
    size_t n = fn.blocks().size();
    succs_.resize(n);
    preds_.resize(n);
    rpoIndex_.assign(n, -1);
    idom_.assign(n, -1);
    if (n == 0)
        return;

    for (const auto &bb : fn.blocks()) {
        for (const BasicBlock *succ : successors(*bb))
            succs_[bb->index()].push_back(succ->index());
    }

    // Iterative post-order DFS from the entry block.
    std::vector<unsigned> post;
    std::vector<uint8_t> state(n, 0); // 0 new, 1 on stack, 2 done
    std::vector<std::pair<unsigned, size_t>> stack;
    stack.emplace_back(0, 0);
    state[0] = 1;
    while (!stack.empty()) {
        auto &[block, next] = stack.back();
        if (next < succs_[block].size()) {
            unsigned succ = succs_[block][next++];
            if (state[succ] == 0) {
                state[succ] = 1;
                stack.emplace_back(succ, 0);
            }
        } else {
            state[block] = 2;
            post.push_back(block);
            stack.pop_back();
        }
    }
    rpo_.assign(post.rbegin(), post.rend());
    for (size_t i = 0; i < rpo_.size(); i++)
        rpoIndex_[rpo_[i]] = static_cast<int>(i);

    // Predecessors, restricted to reachable sources.
    for (unsigned block : rpo_) {
        for (unsigned succ : succs_[block])
            preds_[succ].push_back(block);
    }

    // Cooper/Harvey/Kennedy iterative dominators over the RPO.
    idom_[0] = 0;
    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (rpoIndex_[a] > rpoIndex_[b])
                a = idom_[a];
            while (rpoIndex_[b] > rpoIndex_[a])
                b = idom_[b];
        }
        return a;
    };
    bool changed = true;
    while (changed) {
        changed = false;
        for (unsigned block : rpo_) {
            if (block == 0)
                continue;
            int new_idom = -1;
            for (unsigned pred : preds_[block]) {
                if (idom_[pred] < 0)
                    continue;
                new_idom = new_idom < 0
                    ? static_cast<int>(pred)
                    : intersect(new_idom, static_cast<int>(pred));
            }
            if (new_idom >= 0 && idom_[block] != new_idom) {
                idom_[block] = new_idom;
                changed = true;
            }
        }
    }
}

bool
Cfg::dominates(unsigned a, unsigned b) const
{
    if (rpoIndex_[a] < 0 || rpoIndex_[b] < 0)
        return false;
    unsigned cur = b;
    while (true) {
        if (cur == a)
            return true;
        if (cur == 0)
            return false;
        cur = static_cast<unsigned>(idom_[cur]);
    }
}

} // namespace sulong
