#include "managed/heap.h"

namespace sulong
{

namespace
{

/** Allocate a typed heap array for @p size bytes of element type @p elem.
 *  Falls back to a byte array when the size is not a whole multiple. */
ObjRef
allocTyped(const Type *elem, int64_t size)
{
    uint64_t elem_size = elem->size();
    if (elem_size == 0 || size < 0)
        return ObjRef(new I8Array(StorageKind::heap,
                                  static_cast<size_t>(std::max<int64_t>(size, 0))));
    if (static_cast<uint64_t>(size) % elem_size != 0) {
        return ObjRef(new I8Array(StorageKind::heap,
                                  static_cast<size_t>(size)));
    }
    size_t count = static_cast<size_t>(size) / elem_size;
    switch (elem->kind()) {
      case TypeKind::i1:
      case TypeKind::i8:
        return ObjRef(new I8Array(StorageKind::heap, count));
      case TypeKind::i16:
        return ObjRef(new I16Array(StorageKind::heap, count));
      case TypeKind::i32:
        return ObjRef(new I32Array(StorageKind::heap, count));
      case TypeKind::i64:
        return ObjRef(new I64Array(StorageKind::heap, count));
      case TypeKind::f32:
        return ObjRef(new F32Array(StorageKind::heap, count));
      case TypeKind::f64:
        return ObjRef(new F64Array(StorageKind::heap, count));
      case TypeKind::ptr:
        return ObjRef(new AddressArray(StorageKind::heap, count));
      case TypeKind::structTy: {
        if (count == 1)
            return ObjRef(new StructObject(StorageKind::heap, elem));
        // Array-of-structs needs an interned array type; handled by the
        // caller, which owns a TypeContext.
        return ObjRef();
      }
      case TypeKind::array:
        return ObjRef();
      default:
        return ObjRef(new I8Array(StorageKind::heap,
                                  static_cast<size_t>(size)));
    }
}

} // namespace

void
LazyHeapObject::materialize(AccessClass cls, unsigned size)
{
    const Type *elem = nullptr;
    static TypeContext shapes; // only primitive shapes are needed here
    switch (cls) {
      case AccessClass::pointer:
        elem = shapes.ptr();
        break;
      case AccessClass::floating:
        elem = size == 4 ? shapes.f32() : shapes.f64();
        break;
      case AccessClass::integer:
        elem = shapes.intType(size * 8);
        break;
    }
    if (static_cast<uint64_t>(size_) % elem->size() != 0)
        elem = shapes.i8();
    inner_ = allocTyped(elem, size_);
    if (zeroed_)
        inner_->markAllInitialized();
    if (mementoSlot_ != nullptr)
        *mementoSlot_ = elem;
}

void
LazyHeapObject::read(AccessClass cls, unsigned size, int64_t offset,
                     uint64_t &out_int, Address &out_addr)
{
    if (freed_)
        raiseUseAfterFree(false);
    if (!inner_)
        materialize(cls, size);
    inner_->read(cls, size, offset, out_int, out_addr);
}

void
LazyHeapObject::write(AccessClass cls, unsigned size, int64_t offset,
                      uint64_t bits, const Address &addr)
{
    if (freed_)
        raiseUseAfterFree(true);
    if (!inner_)
        materialize(cls, size);
    inner_->write(cls, size, offset, bits, addr);
}

void
LazyHeapObject::free()
{
    if (inner_)
        inner_->free();
    freed_ = true;
}

void
ManagedHeap::trackAlloc(const Address &addr, int64_t size)
{
    live_[addr.pointee.get()] = size;
}

ManagedHeap::LeakInfo
ManagedHeap::liveLeaks() const
{
    LeakInfo info;
    for (const auto &[obj, size] : live_) {
        info.blocks++;
        info.bytes += size;
    }
    return info;
}

Address
ManagedHeap::allocate(int64_t size, const Type *elem_hint,
                      const Type **memento_slot)
{
    // Metered before any payload exists, so an allocation bomb trips the
    // limit instead of exhausting host memory.
    if (guard_ != nullptr)
        guard_->onAlloc(size > 0 ? static_cast<uint64_t>(size) : 0);
    allocationCount_++;
    liveBytes_ += size;
    allocBytesTotal_ += size > 0 ? static_cast<uint64_t>(size) : 0;
    if (elem_hint != nullptr) {
        ObjRef obj = allocTyped(elem_hint, size);
        if (!obj) {
            // Aggregate element type: build an interned [count x elem].
            uint64_t count = elem_hint->size() == 0
                ? 0 : static_cast<uint64_t>(size) / elem_hint->size();
            const Type *arr = types_.arrayType(elem_hint, count);
            obj = ObjRef(new AggregateArray(StorageKind::heap, arr));
        }
        if (memento_slot != nullptr)
            *memento_slot = elem_hint;
        Address addr{obj, 0};
        trackAlloc(addr, size);
        return addr;
    }
    Address addr{ObjRef(new LazyHeapObject(size, memento_slot)), 0};
    trackAlloc(addr, size);
    return addr;
}

Address
ManagedHeap::allocateZeroed(int64_t size, const Type *elem_hint,
                            const Type **memento_slot)
{
    Address addr = allocate(size, elem_hint, memento_slot);
    // calloc memory is zero AND counts as written for uninitialized-read
    // tracking.
    addr.pointee->markAllInitialized();
    return addr;
}

Address
ManagedHeap::reallocate(const Address &old, int64_t new_size,
                        const Type **memento_slot)
{
    if (old.isNull())
        return allocate(new_size, nullptr, memento_slot);

    ManagedObject *obj = old.pointee.get();
    if (!obj->isHeap() || old.offset != 0) {
        BugReport report;
        report.kind = ErrorKind::invalidFree;
        report.access = AccessKind::free;
        report.storage = obj->storage();
        report.detail = "realloc() of " + obj->describe() +
            (old.offset != 0 ? " at non-zero offset " +
             std::to_string(old.offset) : "");
        throw MemoryErrorException(std::move(report));
    }
    if (obj->isFreed()) {
        BugReport report;
        report.kind = ErrorKind::useAfterFree;
        report.access = AccessKind::free;
        report.storage = StorageKind::heap;
        report.detail = "realloc() of already freed " + obj->describe();
        throw MemoryErrorException(std::move(report));
    }

    // Find the payload (unwrap lazy heap objects).
    ManagedObject *payload = obj;
    if (auto *lazy = dynamic_cast<LazyHeapObject *>(obj)) {
        if (lazy->inner() == nullptr) {
            // Never accessed: a fresh untyped allocation suffices.
            Address fresh = allocate(new_size, nullptr, memento_slot);
            deallocate(old);
            return fresh;
        }
        payload = lazy->inner();
    }

    int64_t old_size = payload->byteSize();
    int64_t copy = std::min(old_size, new_size);
    Address fresh;

    // The copy below reads bytes the program may never have written;
    // realloc itself is not a "use", so suspend uninit tracking and mark
    // the copied region conservatively initialized.
    UninitTrackingScope no_tracking(false);
    auto copyPrimitive = [&](auto *typed_old, const Type *elem) {
        fresh = allocate(new_size, elem, memento_slot);
        // Byte-wise copy through the checked interface would trip the
        // pointer rules; primitives copy raw.
        for (int64_t off = 0; off + 1 <= copy; off++) {
            uint64_t bits = 0;
            Address dummy;
            typed_old->read(AccessClass::integer, 1, off, bits, dummy);
            fresh.pointee->write(AccessClass::integer, 1, off, bits, dummy);
        }
    };

    static TypeContext shapes;
    switch (payload->kind()) {
      case ObjectKind::i8Array:
        copyPrimitive(static_cast<I8Array *>(payload), shapes.i8());
        break;
      case ObjectKind::i16Array:
        copyPrimitive(static_cast<I16Array *>(payload), shapes.i16());
        break;
      case ObjectKind::i32Array:
        copyPrimitive(static_cast<I32Array *>(payload), shapes.i32());
        break;
      case ObjectKind::i64Array:
        copyPrimitive(static_cast<I64Array *>(payload), shapes.i64());
        break;
      case ObjectKind::f32Array:
        copyPrimitive(static_cast<F32Array *>(payload), shapes.f32());
        break;
      case ObjectKind::f64Array:
        copyPrimitive(static_cast<F64Array *>(payload), shapes.f64());
        break;
      case ObjectKind::addressArray: {
        fresh = allocate(new_size, shapes.ptr(), memento_slot);
        auto *old_arr = static_cast<AddressArray *>(payload);
        auto *new_arr = static_cast<AddressArray *>(fresh.pointee.get());
        size_t n = std::min<size_t>(old_arr->length(), new_arr->length());
        for (size_t i = 0; i < n; i++)
            new_arr->at(i) = old_arr->at(i);
        break;
      }
      default:
        throw EngineError("realloc of aggregate heap objects is not "
                          "supported");
    }
    if (!fresh.isNull())
        fresh.pointee->markAllInitialized();
    deallocate(old);
    return fresh;
}

void
ManagedHeap::deallocate(const Address &ptr)
{
    if (ptr.isNull())
        return; // free(NULL) is a no-op
    ManagedObject *obj = ptr.pointee.get();
    // Paper Fig. 8: the cast to HeapObject checks the storage class...
    if (!obj->isHeap()) {
        BugReport report;
        report.kind = ErrorKind::invalidFree;
        report.access = AccessKind::free;
        report.storage = obj->storage();
        report.detail = "free() of " +
            std::string(storageKindName(obj->storage())) + " object " +
            obj->describe() +
            (obj->name().empty() ? "" : " '" + obj->name() + "'");
        throw MemoryErrorException(std::move(report));
    }
    // ...the offset must be zero...
    if (ptr.offset != 0) {
        BugReport report;
        report.kind = ErrorKind::invalidFree;
        report.access = AccessKind::free;
        report.storage = StorageKind::heap;
        report.offset = ptr.offset;
        report.detail = "free() of interior pointer (offset " +
            std::to_string(ptr.offset) + ") into " + obj->describe();
        throw MemoryErrorException(std::move(report));
    }
    // ...and freeing twice is reported.
    if (obj->isFreed()) {
        BugReport report;
        report.kind = ErrorKind::doubleFree;
        report.access = AccessKind::free;
        report.storage = StorageKind::heap;
        report.detail = "double free of " + obj->describe();
        throw MemoryErrorException(std::move(report));
    }
    int64_t size = obj->byteSize();
    if (guard_ != nullptr)
        guard_->onFree(size > 0 ? static_cast<uint64_t>(size) : 0);
    liveBytes_ -= size;
    freedBytesTotal_ += size > 0 ? static_cast<uint64_t>(size) : 0;
    freeCount_++;
    live_.erase(obj);
    obj->free();
}

} // namespace sulong
