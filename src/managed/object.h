/**
 * @file
 * The managed object model — the paper's core contribution (Section 3.2).
 *
 * C objects are represented as typed managed objects instead of raw
 * memory. Pointers are Address values holding a reference to their
 * pointee plus a byte offset (Fig. 5/6). Every load, store, and free goes
 * through checked accessors that raise MemoryErrorException for
 * out-of-bounds accesses, use-after-free, double free, invalid free and
 * NULL dereferences — the execution environment cannot forget a check.
 *
 * Type safety is relaxed as in the paper: same-size reinterpreting
 * accesses (double bits in a long array) and byte-granular accesses into
 * wider primitive arrays are permitted; anything that would conjure or
 * corrupt a pointer out of raw bits is a type error.
 *
 * Lifetimes use non-atomic intrusive reference counting, standing in for
 * the JVM's garbage collector: a dangling pointer to a returned-from
 * frame keeps its object alive (and readable) exactly like in Java.
 */

#ifndef MS_MANAGED_OBJECT_H
#define MS_MANAGED_OBJECT_H

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "ir/type.h"
#include "managed/errors.h"
#include "support/error.h"

namespace sulong
{

class ManagedObject;

/**
 * Non-atomic intrusive reference-counted handle to a ManagedObject.
 */
class ObjRef
{
  public:
    ObjRef() = default;
    ObjRef(ManagedObject *obj); // NOLINT: implicit by design
    ObjRef(const ObjRef &other);
    ObjRef(ObjRef &&other) noexcept : obj_(other.obj_)
    {
        other.obj_ = nullptr;
    }
    ObjRef &operator=(const ObjRef &other);
    ObjRef &operator=(ObjRef &&other) noexcept;
    ~ObjRef();

    ManagedObject *get() const { return obj_; }
    ManagedObject *operator->() const { return obj_; }
    ManagedObject &operator*() const { return *obj_; }
    explicit operator bool() const { return obj_ != nullptr; }
    bool operator==(const ObjRef &other) const { return obj_ == other.obj_; }

  private:
    ManagedObject *obj_ = nullptr;
};

/**
 * A C pointer: managed pointee + byte offset (paper Fig. 5).
 */
struct Address
{
    ObjRef pointee;
    int64_t offset = 0;

    Address() = default;
    Address(ObjRef obj, int64_t off) : pointee(std::move(obj)), offset(off) {}

    bool isNull() const { return !pointee; }

    Address
    withOffset(int64_t delta) const
    {
        return Address{pointee, offset + delta};
    }

    bool
    operator==(const Address &other) const
    {
        return pointee == other.pointee && offset == other.offset;
    }
};

/** Discriminator for ManagedObject. */
enum class ObjectKind : uint8_t
{
    i8Array,
    i16Array,
    i32Array,
    i64Array,
    f32Array,
    f64Array,
    addressArray,
    structObject,
    arrayOfAggregates,
    functionObject,
    varargsObject,
};

/** The scalar classes a checked access can move. */
enum class AccessClass : uint8_t
{
    integer,
    floating,
    pointer,
};

/**
 * Ablation switch for the relaxed type rules of Section 3.2: with strict
 * rules, every access must match the element type exactly (class, size,
 * alignment), which breaks many real-world programs but models the
 * "strict type safety" end of the paper's trade-off discussion.
 */
/// Implementation detail of strictTypeRules(): thread-local so that
/// concurrent engine runs (one batch-runner job per worker thread)
/// cannot leak their check configuration into each other. Inline here
/// because the accessor sits on the per-access check path.
inline thread_local bool g_strict_type_rules = false;

inline bool
strictTypeRules()
{
    return g_strict_type_rules;
}

inline void
setStrictTypeRules(bool strict)
{
    g_strict_type_rules = strict;
}

/**
 * Opt-in exact uninitialized-read detection (the paper's Section 6 /
 * footnote 3 future work): stack and heap objects track per-byte
 * initialization and report the first read of a never-written byte —
 * exactly, at the faulting load, unlike Memcheck's use-site heuristics.
 */
/// See g_strict_type_rules for the storage rationale.
inline thread_local bool g_uninit_tracking = false;

inline bool
uninitTracking()
{
    return g_uninit_tracking;
}

inline void
setUninitTracking(bool enabled)
{
    g_uninit_tracking = enabled;
}

/** RAII guard for uninitialized-read tracking. */
class UninitTrackingScope
{
  public:
    explicit UninitTrackingScope(bool enabled)
        : previous_(uninitTracking())
    {
        setUninitTracking(enabled);
    }
    ~UninitTrackingScope() { setUninitTracking(previous_); }
    UninitTrackingScope(const UninitTrackingScope &) = delete;
    UninitTrackingScope &operator=(const UninitTrackingScope &) = delete;

  private:
    bool previous_;
};

/** RAII guard for strict mode. */
class StrictTypeRulesScope
{
  public:
    explicit StrictTypeRulesScope(bool strict)
        : previous_(strictTypeRules())
    {
        setStrictTypeRules(strict);
    }
    ~StrictTypeRulesScope() { setStrictTypeRules(previous_); }
    StrictTypeRulesScope(const StrictTypeRulesScope &) = delete;
    StrictTypeRulesScope &operator=(const StrictTypeRulesScope &) = delete;

  private:
    bool previous_;
};

/**
 * Base class of all managed objects.
 */
class ManagedObject
{
  public:
    virtual ~ManagedObject() = default;

    ObjectKind kind() const { return kind_; }
    StorageKind storage() const { return storage_; }
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** Object size in bytes (0 after free). */
    virtual int64_t byteSize() const = 0;

    /**
     * Checked scalar read of @p size bytes at @p offset.
     * @param cls      whether an integer, float, or pointer is read
     * @param size     access size in bytes (1, 2, 4, or 8)
     * @param offset   byte offset within this object
     * @param out_int  receives integer/float bits
     * @param out_addr receives the pointer for pointer reads
     */
    virtual void read(AccessClass cls, unsigned size, int64_t offset,
                      uint64_t &out_int, Address &out_addr) = 0;

    /** Checked scalar write; mirror of read(). */
    virtual void write(AccessClass cls, unsigned size, int64_t offset,
                       uint64_t bits, const Address &addr) = 0;

    /** True for heap objects that free() may release. */
    virtual bool isHeap() const { return storage_ == StorageKind::heap; }
    /** True once free() released this object. */
    virtual bool isFreed() const { return false; }
    /** Release a heap object's payload (paper Fig. 7). */
    virtual void free();

    /** Mark every byte written (calloc, realloc'd copies, globals). */
    virtual void markAllInitialized() {}

    /**
     * One step of offset resolution, for tier-2's resolution cache:
     * aggregates map (offset, size) to their field/element sub-object,
     * running the same freed/bounds/padding checks as a real access and
     * raising the identical errors; leaf objects return `this`. An
     * access spanning sub-objects returns nullptr (not cacheable; the
     * caller falls back to the byte-wise path). The leaf's own checks
     * (liveness, bounds, type, init) still run on every access — this
     * only short-circuits the aggregate *walk*, never a check.
     */
    virtual ManagedObject *
    resolveStep(int64_t offset, unsigned size, bool is_write,
                int64_t &inner_offset)
    {
        (void)size;
        (void)is_write;
        inner_offset = offset;
        return this;
    }

    /** Human-readable type for error messages, e.g. "I32Array[10]". */
    virtual std::string describe() const = 0;

    /** Number of live references (intrusive count). */
    long refCount() const { return refs_; }

    /**
     * Restore the object to its just-allocated state so a tier-3 alloca
     * site can recycle it instead of allocating afresh. Only legal when
     * the caller holds the sole reference (refCount() == 1), so no live
     * pointer can observe the recycled identity. Returns false when the
     * object cannot be reset (freed, or a kind without support); the
     * caller must then allocate normally. A reset object is
     * indistinguishable from a fresh one: zeroed payload, uninit
     * tracking rearmed, same checks on every later access.
     */
    virtual bool resetForReuse() { return false; }

    /**
     * True when kind() names this object's exact dynamic type. Wrapper
     * objects (LazyHeapObject) masquerade under a leaf kind for cache
     * purposes; they leave this false so devirtualizing dispatch falls
     * back to the virtual call.
     */
    bool exactKind() const { return exactKind_; }

    // Intrusive refcount plumbing.
    void retain() { refs_++; }
    void
    release()
    {
        if (--refs_ == 0)
            delete this;
    }

  protected:
    ManagedObject(ObjectKind kind, StorageKind storage)
        : kind_(kind), storage_(storage)
    {}

    [[noreturn]] void raiseBounds(AccessClass cls, int64_t offset,
                                  unsigned size, bool is_write) const;
    [[noreturn]] void raiseUseAfterFree(bool is_write) const;
    [[noreturn]] void raiseTypeError(const std::string &what) const;

    /// Inline: one compare on the per-access path; the raise is cold.
    void
    checkBounds(int64_t offset, unsigned size, bool is_write) const
    {
        if (offset < 0 || offset + static_cast<int64_t>(size) > byteSize())
            raiseBounds(AccessClass::integer, offset, size, is_write);
    }

    ObjectKind kind_;
    StorageKind storage_;
    bool exactKind_ = false;
    std::string name_;
    long refs_ = 0;
};

inline
ObjRef::ObjRef(ManagedObject *obj) : obj_(obj)
{
    if (obj_ != nullptr)
        obj_->retain();
}

inline
ObjRef::ObjRef(const ObjRef &other) : obj_(other.obj_)
{
    if (obj_ != nullptr)
        obj_->retain();
}

inline ObjRef &
ObjRef::operator=(const ObjRef &other)
{
    if (other.obj_ != nullptr)
        other.obj_->retain();
    if (obj_ != nullptr)
        obj_->release();
    obj_ = other.obj_;
    return *this;
}

inline ObjRef &
ObjRef::operator=(ObjRef &&other) noexcept
{
    if (this != &other) {
        if (obj_ != nullptr)
            obj_->release();
        obj_ = other.obj_;
        other.obj_ = nullptr;
    }
    return *this;
}

inline
ObjRef::~ObjRef()
{
    if (obj_ != nullptr)
        obj_->release();
}

/**
 * Flat array of one primitive element type; also used for single scalars
 * (an `int` local is an I32 array of length 1).
 *
 * Supports the relaxed access rules: an access of a different size or
 * class than the element type is served by (little-endian) byte
 * reinterpretation, but pointer bits can never be read out of or written
 * into a primitive array.
 */
template <typename T, ObjectKind K>
class PrimitiveArray final : public ManagedObject
{
  public:
    PrimitiveArray(StorageKind storage, size_t count)
        : ManagedObject(K, storage), data_(count, T{})
    {
        exactKind_ = true;
        // Only automatic and dynamic storage can be read before being
        // written; static storage is initialized by the loader.
        if (uninitTracking() &&
            (storage == StorageKind::stack || storage == StorageKind::heap)) {
            inited_.assign(count * sizeof(T), false);
        }
    }

    int64_t
    byteSize() const override
    {
        return static_cast<int64_t>(data_.size() * sizeof(T));
    }

    size_t length() const { return data_.size(); }
    T *data() { return data_.data(); }
    const std::vector<T> &values() const { return data_; }
    void setFreedSize(int64_t size) { freedSize_ = size; }

    void
    read(AccessClass cls, unsigned size, int64_t offset, uint64_t &out_int,
         Address &out_addr) override
    {
        if (isFreed())
            raiseUseAfterFree(false);
        checkStrict(cls, size, offset);
        checkBounds(offset, size, false);
        checkInitialized(offset, size);
        uint64_t bits = 0;
        std::memcpy(&bits, reinterpret_cast<const char *>(data_.data()) +
                    offset, size);
        if (cls == AccessClass::pointer) {
            // Relaxation for memcpy/qsort-style generic code: raw bits
            // read as a pointer become a provenance-free Address (null
            // pointee + the bits as offset). It can be copied around but
            // dereferencing it reports a NULL dereference — a pointer can
            // never be conjured out of integers (Section 3.2).
            out_addr = Address{};
            out_addr.offset = static_cast<int64_t>(bits);
            return;
        }
        out_int = bits;
    }

    void
    write(AccessClass cls, unsigned size, int64_t offset, uint64_t bits,
          const Address &addr) override
    {
        if (isFreed())
            raiseUseAfterFree(true);
        if (cls == AccessClass::pointer) {
            // Only provenance-free pointer bits (see read()) may be
            // stored into a primitive array; a real Address would lose
            // its pointee and defeat the safety guarantees.
            if (!addr.isNull())
                raiseTypeError("storing a pointer into " + describe());
            bits = static_cast<uint64_t>(addr.offset);
        }
        checkStrict(cls, size, offset);
        checkBounds(offset, size, true);
        if (!inited_.empty()) {
            for (unsigned i = 0; i < size; i++)
                inited_[static_cast<size_t>(offset) + i] = true;
        }
        std::memcpy(reinterpret_cast<char *>(data_.data()) + offset, &bits,
                    size);
    }

    void
    markAllInitialized() override
    {
        inited_.assign(inited_.size(), true);
    }

    bool isFreed() const override { return freed_; }

    bool
    resetForReuse() override
    {
        if (freed_)
            return false;
        std::fill(data_.begin(), data_.end(), T{});
        if (!inited_.empty())
            inited_.assign(inited_.size(), false);
        return true;
    }

    void
    free() override
    {
        // Paper Fig. 7: drop the payload so the collector can reclaim it;
        // the header survives so later accesses are detected.
        freedSize_ = byteSize();
        data_.clear();
        data_.shrink_to_fit();
        freed_ = true;
    }

    std::string
    describe() const override
    {
        size_t len = freed_
            ? static_cast<size_t>(freedSize_ / static_cast<int64_t>(sizeof(T)))
            : data_.size();
        return std::string(elemName()) + "Array[" + std::to_string(len) + "]";
    }

  private:
    void
    checkInitialized(int64_t offset, unsigned size) const
    {
        if (inited_.empty() || !uninitTracking())
            return;
        for (unsigned i = 0; i < size; i++) {
            if (!inited_[static_cast<size_t>(offset) + i]) {
                BugReport report;
                report.kind = ErrorKind::uninitRead;
                report.access = AccessKind::read;
                report.storage = storage_;
                report.offset = offset + i;
                report.detail = "read of uninitialized byte at offset " +
                    std::to_string(offset + i) + " of " + describe() +
                    (name_.empty() ? "" : " '" + name_ + "'");
                throw MemoryErrorException(std::move(report));
            }
        }
    }

    void
    checkStrict(AccessClass cls, unsigned size, int64_t offset) const
    {
        if (!strictTypeRules())
            return;
        bool want_float = std::is_floating_point_v<T>;
        bool is_float = cls == AccessClass::floating;
        if (want_float != is_float || size != sizeof(T) ||
            offset % static_cast<int64_t>(sizeof(T)) != 0) {
            raiseTypeError("strict type rules: " + std::to_string(size) +
                           "-byte access into " + describe());
        }
    }

    static const char *
    elemName()
    {
        if constexpr (std::is_same_v<T, int8_t>) return "I8";
        else if constexpr (std::is_same_v<T, int16_t>) return "I16";
        else if constexpr (std::is_same_v<T, int32_t>) return "I32";
        else if constexpr (std::is_same_v<T, int64_t>) return "I64";
        else if constexpr (std::is_same_v<T, float>) return "F32";
        else return "F64";
    }

    std::vector<T> data_;
    /// Per-byte initialization bits; empty when tracking is off or the
    /// storage class starts initialized.
    std::vector<bool> inited_;
    bool freed_ = false;
    int64_t freedSize_ = 0;
};

using I8Array = PrimitiveArray<int8_t, ObjectKind::i8Array>;
using I16Array = PrimitiveArray<int16_t, ObjectKind::i16Array>;
using I32Array = PrimitiveArray<int32_t, ObjectKind::i32Array>;
using I64Array = PrimitiveArray<int64_t, ObjectKind::i64Array>;
using F32Array = PrimitiveArray<float, ObjectKind::f32Array>;
using F64Array = PrimitiveArray<double, ObjectKind::f64Array>;

/**
 * Array of pointers. Only pointer-class accesses of pointer size are
 * legal; everything else violates even the relaxed type rules.
 */
class AddressArray final : public ManagedObject
{
  public:
    AddressArray(StorageKind storage, size_t count)
        : ManagedObject(ObjectKind::addressArray, storage), data_(count)
    {
        exactKind_ = true;
    }

    int64_t
    byteSize() const override
    {
        return static_cast<int64_t>(data_.size() * 8);
    }

    size_t length() const { return data_.size(); }
    Address &at(size_t i) { return data_[i]; }

    void read(AccessClass cls, unsigned size, int64_t offset,
              uint64_t &out_int, Address &out_addr) override;
    void write(AccessClass cls, unsigned size, int64_t offset,
               uint64_t bits, const Address &addr) override;

    bool isFreed() const override { return freed_; }
    void free() override;

    bool
    resetForReuse() override
    {
        if (freed_)
            return false;
        // Dropping the held Addresses also releases their referents,
        // exactly as destruction would.
        std::fill(data_.begin(), data_.end(), Address{});
        return true;
    }

    std::string
    describe() const override
    {
        size_t len = freed_ ? freedLen_ : data_.size();
        return "AddressArray[" + std::to_string(len) + "]";
    }

  private:
    std::vector<Address> data_;
    bool freed_ = false;
    size_t freedLen_ = 0;
};

/**
 * A struct instance: one sub-object per field, resolved by byte offset
 * against the IR struct layout (the paper's Truffle object-model map).
 */
class StructObject final : public ManagedObject
{
  public:
    StructObject(StorageKind storage, const Type *type);

    int64_t byteSize() const override
    {
        return static_cast<int64_t>(type_->size());
    }
    const Type *type() const { return type_; }
    ManagedObject *field(size_t i) { return fields_[i].get(); }

    void read(AccessClass cls, unsigned size, int64_t offset,
              uint64_t &out_int, Address &out_addr) override;
    void write(AccessClass cls, unsigned size, int64_t offset,
               uint64_t bits, const Address &addr) override;

    bool isFreed() const override { return freed_; }
    void free() override;

    void
    markAllInitialized() override
    {
        for (auto &field : fields_)
            field->markAllInitialized();
    }

    std::string
    describe() const override
    {
        return "Struct " + type_->structName();
    }

    ManagedObject *
    resolveStep(int64_t offset, unsigned size, bool is_write,
                int64_t &inner_offset) override
    {
        return resolve(offset, size, inner_offset, is_write);
    }

  private:
    /** Map a byte offset to (field object, offset within field). */
    ManagedObject *resolve(int64_t offset, unsigned size,
                           int64_t &inner_offset, bool is_write);

    const Type *type_;
    std::vector<ObjRef> fields_;
    bool freed_ = false;
};

/**
 * Array whose elements are aggregates (structs or nested arrays).
 */
class AggregateArray final : public ManagedObject
{
  public:
    AggregateArray(StorageKind storage, const Type *array_type);

    int64_t byteSize() const override
    {
        return static_cast<int64_t>(type_->size());
    }
    size_t length() const { return elems_.size(); }
    ManagedObject *element(size_t i) { return elems_[i].get(); }

    void read(AccessClass cls, unsigned size, int64_t offset,
              uint64_t &out_int, Address &out_addr) override;
    void write(AccessClass cls, unsigned size, int64_t offset,
               uint64_t bits, const Address &addr) override;

    bool isFreed() const override { return freed_; }
    void free() override;

    void
    markAllInitialized() override
    {
        for (auto &elem : elems_)
            elem->markAllInitialized();
    }

    std::string
    describe() const override
    {
        return type_->toString();
    }

    ManagedObject *
    resolveStep(int64_t offset, unsigned size, bool is_write,
                int64_t &inner_offset) override
    {
        return resolve(offset, size, inner_offset, is_write);
    }

  private:
    ManagedObject *resolve(int64_t offset, unsigned size,
                           int64_t &inner_offset, bool is_write);

    const Type *type_;
    uint64_t elemSize_;
    std::vector<ObjRef> elems_;
    bool freed_ = false;
};

/**
 * A function designator; function pointers are Addresses whose pointee is
 * a FunctionObject (paper: FunctionAddress with an id for inline caches).
 */
class FunctionObject final : public ManagedObject
{
  public:
    explicit FunctionObject(unsigned fn_id)
        : ManagedObject(ObjectKind::functionObject, StorageKind::global),
          fnId_(fn_id)
    {}

    unsigned fnId() const { return fnId_; }

    int64_t byteSize() const override { return 0; }

    void
    read(AccessClass, unsigned, int64_t, uint64_t &, Address &) override
    {
        raiseTypeError("reading from a function");
    }

    void
    write(AccessClass, unsigned, int64_t, uint64_t, const Address &) override
    {
        raiseTypeError("writing to a function");
    }

    std::string describe() const override { return "Function"; }

  private:
    unsigned fnId_;
};

/**
 * The varargs descriptor created by va_start (paper Fig. 9): boxed copies
 * of the variadic arguments plus a cursor. An access past the end of the
 * argument array is exactly the paper's "access to a non-existent
 * variadic argument" error.
 */
class VarargsObject final : public ManagedObject
{
  public:
    explicit VarargsObject(std::vector<Address> args)
        : ManagedObject(ObjectKind::varargsObject, StorageKind::stack),
          args_(std::move(args))
    {}

    int64_t byteSize() const override
    {
        return static_cast<int64_t>(args_.size() * 8);
    }

    size_t count() const { return args_.size(); }

    /** Fetch the next argument pointer, advancing the cursor. */
    Address
    next()
    {
        if (cursor_ >= args_.size()) {
            BugReport report;
            report.kind = ErrorKind::varargs;
            report.access = AccessKind::read;
            report.storage = StorageKind::stack;
            report.detail = "access to variadic argument " +
                std::to_string(cursor_) + " but only " +
                std::to_string(args_.size()) + " were passed";
            throw MemoryErrorException(std::move(report));
        }
        return args_[cursor_++];
    }

    void
    read(AccessClass, unsigned, int64_t, uint64_t &, Address &) override
    {
        raiseTypeError("raw read of a va_list");
    }

    void
    write(AccessClass, unsigned, int64_t, uint64_t, const Address &) override
    {
        raiseTypeError("raw write of a va_list");
    }

    std::string describe() const override { return "VarArgs"; }

  private:
    std::vector<Address> args_;
    size_t cursor_ = 0;
};

} // namespace sulong

#endif // MS_MANAGED_OBJECT_H
