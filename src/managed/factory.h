/**
 * @file
 * Factory shared by stack allocation, globals, and struct fields.
 */

#ifndef MS_MANAGED_FACTORY_H
#define MS_MANAGED_FACTORY_H

#include "managed/object.h"

namespace sulong
{

/**
 * Create the managed representation of one C object of IR type @p type
 * with the given storage class. Scalars become single-element primitive
 * arrays; arrays map to typed arrays; structs to StructObject.
 */
ObjRef createManagedObject(StorageKind storage, const Type *type);

} // namespace sulong

#endif // MS_MANAGED_FACTORY_H
