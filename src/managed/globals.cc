#include "managed/globals.h"

namespace sulong
{

GlobalStore::GlobalStore(const Module &module)
{
    for (const auto &fn : module.functions())
        functions_[fn->id()] = ObjRef(new FunctionObject(fn->id()));
    // Create all global objects first: initializers may reference them.
    for (const auto &g : module.globals()) {
        ObjRef obj = createManagedObject(StorageKind::global,
                                         g->valueType());
        obj->setName(g->name());
        globals_[g.get()] = std::move(obj);
    }
    for (const auto &g : module.globals()) {
        applyInit(globals_[g.get()].get(), g->valueType(), 0, g->init());
    }
}

Address
GlobalStore::addressOf(const GlobalVariable *g) const
{
    auto it = globals_.find(g);
    if (it == globals_.end())
        throw InternalError("unknown global " + g->name());
    return Address{it->second, 0};
}

Address
GlobalStore::addressOf(const Function *fn) const
{
    auto it = functions_.find(fn->id());
    if (it == functions_.end())
        throw InternalError("unknown function " + fn->name());
    return Address{it->second, 0};
}

const FunctionObject *
GlobalStore::functionObject(unsigned id) const
{
    auto it = functions_.find(id);
    return it == functions_.end()
        ? nullptr
        : static_cast<const FunctionObject *>(it->second.get());
}

Address
GlobalStore::makeStringArray(const std::vector<std::string> &strings)
{
    // argv/envp layout: N string pointers followed by a terminating NULL
    // (accessing past it is the bug class of paper Fig. 10).
    ObjRef arr(new AddressArray(StorageKind::mainArgs, strings.size() + 1));
    auto *addr_arr = static_cast<AddressArray *>(arr.get());
    for (size_t i = 0; i < strings.size(); i++) {
        ObjRef str(new I8Array(StorageKind::mainArgs,
                               strings[i].size() + 1));
        auto *bytes = static_cast<I8Array *>(str.get());
        std::memcpy(bytes->data(), strings[i].data(), strings[i].size());
        addr_arr->at(i) = Address{std::move(str), 0};
    }
    return Address{std::move(arr), 0};
}

void
GlobalStore::applyInit(ManagedObject *obj, const Type *type, int64_t offset,
                       const Initializer &init)
{
    switch (init.kind) {
      case Initializer::Kind::zero:
        return; // managed payloads start zeroed
      case Initializer::Kind::intVal: {
        Address dummy;
        obj->write(AccessClass::integer,
                   static_cast<unsigned>(type->size()), offset,
                   static_cast<uint64_t>(init.intValue), dummy);
        return;
      }
      case Initializer::Kind::fpVal: {
        Address dummy;
        uint64_t bits = 0;
        if (type->kind() == TypeKind::f32) {
            float f = static_cast<float>(init.fpValue);
            std::memcpy(&bits, &f, 4);
            obj->write(AccessClass::floating, 4, offset, bits, dummy);
        } else {
            std::memcpy(&bits, &init.fpValue, 8);
            obj->write(AccessClass::floating, 8, offset, bits, dummy);
        }
        return;
      }
      case Initializer::Kind::bytes: {
        Address dummy;
        for (size_t i = 0; i < init.bytes.size(); i++) {
            obj->write(AccessClass::integer, 1,
                       offset + static_cast<int64_t>(i),
                       static_cast<uint8_t>(init.bytes[i]), dummy);
        }
        return;
      }
      case Initializer::Kind::array: {
        const Type *elem = type->elemType();
        int64_t stride = static_cast<int64_t>(elem->size());
        for (size_t i = 0; i < init.elems.size(); i++) {
            applyInit(obj, elem, offset + static_cast<int64_t>(i) * stride,
                      init.elems[i]);
        }
        return;
      }
      case Initializer::Kind::structVal: {
        const auto &fields = type->fields();
        for (size_t i = 0; i < init.elems.size() && i < fields.size(); i++) {
            applyInit(obj, fields[i].type,
                      offset + static_cast<int64_t>(fields[i].offset),
                      init.elems[i]);
        }
        return;
      }
      case Initializer::Kind::globalRef: {
        auto it = globals_.find(init.global);
        if (it == globals_.end())
            throw InternalError("initializer references unknown global");
        Address target{it->second, init.addend};
        obj->write(AccessClass::pointer, 8, offset, 0, target);
        return;
      }
      case Initializer::Kind::functionRef: {
        Address target = addressOf(init.function);
        obj->write(AccessClass::pointer, 8, offset, 0, target);
        return;
      }
    }
}

} // namespace sulong
