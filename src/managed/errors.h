/**
 * @file
 * Exceptions used inside the managed engine.
 *
 * In the paper, the JVM's automatic checks raise Java exceptions
 * (ArrayIndexOutOfBoundsException, NullPointerException,
 * ClassCastException) that Safe Sulong surfaces as bug reports. Here the
 * checks are explicit and raise MemoryErrorException, which the engine
 * boundary converts into a structured ExecutionResult. Guest exit()
 * unwinds with GuestExit.
 */

#ifndef MS_MANAGED_ERRORS_H
#define MS_MANAGED_ERRORS_H

#include "support/error.h"

namespace sulong
{

/** Raised by managed-object checks when a guest memory error is found. */
class MemoryErrorException
{
  public:
    explicit MemoryErrorException(BugReport report)
        : report_(std::move(report))
    {}

    const BugReport &report() const { return report_; }
    BugReport &report() { return report_; }

  private:
    BugReport report_;
};

/** Raised when the guest calls exit() (or main returns). */
class GuestExit
{
  public:
    explicit GuestExit(int code) : code_(code) {}
    int code() const { return code_; }

  private:
    int code_;
};

/** Raised when an engine cannot continue (unsupported feature etc.). */
class EngineError
{
  public:
    explicit EngineError(std::string message)
        : message_(std::move(message))
    {}
    const std::string &message() const { return message_; }

  private:
    std::string message_;
};

} // namespace sulong

#endif // MS_MANAGED_ERRORS_H
