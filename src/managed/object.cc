#include "managed/object.h"

#include "support/diagnostics.h"

namespace sulong
{

void
ManagedObject::free()
{
    raiseTypeError("free() of a non-heap object");
}

void
ManagedObject::raiseBounds(AccessClass cls, int64_t offset, unsigned size,
                           bool is_write) const
{
    (void)cls;
    BugReport report;
    report.kind = ErrorKind::outOfBounds;
    report.access = is_write ? AccessKind::write : AccessKind::read;
    report.storage = storage_;
    report.direction = offset < 0 ? BoundsDirection::underflow
                                  : BoundsDirection::overflow;
    report.offset = offset;
    report.objectSize = byteSize();
    report.detail = std::to_string(size) + "-byte access at offset " +
        std::to_string(offset) + " of " + describe() +
        (name_.empty() ? "" : " '" + name_ + "'");
    throw MemoryErrorException(std::move(report));
}

void
ManagedObject::raiseUseAfterFree(bool is_write) const
{
    BugReport report;
    report.kind = ErrorKind::useAfterFree;
    report.access = is_write ? AccessKind::write : AccessKind::read;
    report.storage = storage_;
    report.detail = "access to freed " + describe() +
        (name_.empty() ? "" : " '" + name_ + "'");
    throw MemoryErrorException(std::move(report));
}

void
ManagedObject::raiseTypeError(const std::string &what) const
{
    BugReport report;
    report.kind = ErrorKind::typeError;
    report.storage = storage_;
    report.detail = what;
    throw MemoryErrorException(std::move(report));
}

// -----------------------------------------------------------------------
// AddressArray
// -----------------------------------------------------------------------

void
AddressArray::read(AccessClass cls, unsigned size, int64_t offset,
                   uint64_t &out_int, Address &out_addr)
{
    if (freed_)
        raiseUseAfterFree(false);
    if (offset < 0 || offset + static_cast<int64_t>(size) > byteSize())
        raiseBounds(cls, offset, size, false);
    if (cls != AccessClass::pointer || size != 8) {
        // Relaxation: integer reads of a slot holding provenance-free
        // bits (or null) succeed; reading the bits of a real pointer
        // would leak provenance and is a type error.
        if (cls == AccessClass::integer && size == 8 && offset % 8 == 0) {
            const Address &slot = data_[static_cast<size_t>(offset / 8)];
            if (slot.isNull()) {
                out_int = static_cast<uint64_t>(slot.offset);
                return;
            }
        }
        raiseTypeError("non-pointer read from " + describe());
    }
    if (offset % 8 != 0)
        raiseTypeError("misaligned pointer read from " + describe());
    out_addr = data_[static_cast<size_t>(offset / 8)];
}

void
AddressArray::write(AccessClass cls, unsigned size, int64_t offset,
                    uint64_t bits, const Address &addr)
{
    if (freed_)
        raiseUseAfterFree(true);
    if (offset < 0 || offset + static_cast<int64_t>(size) > byteSize())
        raiseBounds(cls, offset, size, true);
    if (cls != AccessClass::pointer) {
        // Relaxation: storing integer 0 clears a pointer slot (common in
        // memset-style initialization); anything else is a type error.
        if (cls == AccessClass::integer && bits == 0 && size == 8 &&
            offset % 8 == 0) {
            data_[static_cast<size_t>(offset / 8)] = Address{};
            return;
        }
        raiseTypeError("non-pointer write into " + describe());
    }
    if (offset % 8 != 0)
        raiseTypeError("misaligned pointer write into " + describe());
    data_[static_cast<size_t>(offset / 8)] = addr;
}

void
AddressArray::free()
{
    freedLen_ = data_.size();
    data_.clear();
    data_.shrink_to_fit();
    freed_ = true;
}

// -----------------------------------------------------------------------
// StructObject
// -----------------------------------------------------------------------

namespace
{

/** Create the managed object representing one value of @p type. */
ObjRef
createFieldObject(StorageKind storage, const Type *type)
{
    switch (type->kind()) {
      case TypeKind::i1:
      case TypeKind::i8:
        return ObjRef(new I8Array(storage, 1));
      case TypeKind::i16:
        return ObjRef(new I16Array(storage, 1));
      case TypeKind::i32:
        return ObjRef(new I32Array(storage, 1));
      case TypeKind::i64:
        return ObjRef(new I64Array(storage, 1));
      case TypeKind::f32:
        return ObjRef(new F32Array(storage, 1));
      case TypeKind::f64:
        return ObjRef(new F64Array(storage, 1));
      case TypeKind::ptr:
        return ObjRef(new AddressArray(storage, 1));
      case TypeKind::structTy:
        return ObjRef(new StructObject(storage, type));
      case TypeKind::array: {
        const Type *elem = type->elemType();
        size_t count = type->arrayLength();
        switch (elem->kind()) {
          case TypeKind::i1:
          case TypeKind::i8:
            return ObjRef(new I8Array(storage, count));
          case TypeKind::i16:
            return ObjRef(new I16Array(storage, count));
          case TypeKind::i32:
            return ObjRef(new I32Array(storage, count));
          case TypeKind::i64:
            return ObjRef(new I64Array(storage, count));
          case TypeKind::f32:
            return ObjRef(new F32Array(storage, count));
          case TypeKind::f64:
            return ObjRef(new F64Array(storage, count));
          case TypeKind::ptr:
            return ObjRef(new AddressArray(storage, count));
          default:
            return ObjRef(new AggregateArray(storage, type));
        }
      }
      default:
        throw InternalError("cannot create managed object for " +
                            type->toString());
    }
}

} // namespace

/** Factory shared with the heap allocator (see managed/factory.h). */
ObjRef
createManagedObject(StorageKind storage, const Type *type)
{
    return createFieldObject(storage, type);
}

StructObject::StructObject(StorageKind storage, const Type *type)
    : ManagedObject(ObjectKind::structObject, storage), type_(type)
{
    fields_.reserve(type->fields().size());
    for (const StructField &field : type->fields())
        fields_.push_back(createFieldObject(storage, field.type));
}

ManagedObject *
StructObject::resolve(int64_t offset, unsigned size, int64_t &inner_offset,
                      bool is_write)
{
    if (freed_)
        raiseUseAfterFree(is_write);
    if (offset < 0 || offset + static_cast<int64_t>(size) > byteSize())
        raiseBounds(AccessClass::integer, offset, size, is_write);
    int idx = type_->fieldAt(static_cast<uint64_t>(offset));
    if (idx < 0) {
        // Access into padding.
        raiseTypeError("access to struct padding in " + describe());
    }
    const StructField &field = type_->fields()[static_cast<size_t>(idx)];
    inner_offset = offset - static_cast<int64_t>(field.offset);
    // Accesses spanning several fields (memcpy/qsort word chunks) are
    // signalled to the caller with nullptr and handled byte-wise.
    if (inner_offset + static_cast<int64_t>(size) >
        static_cast<int64_t>(field.type->size())) {
        return nullptr;
    }
    return fields_[static_cast<size_t>(idx)].get();
}

namespace
{

/**
 * Byte-compose a multi-field access (Section 3.2 relaxation for generic
 * word-wise code). Pointer-class results are provenance-free bits.
 */
uint64_t
readSpanning(ManagedObject &obj, unsigned size, int64_t offset)
{
    uint64_t bits = 0;
    for (unsigned i = 0; i < size; i++) {
        uint64_t byte = 0;
        Address dummy;
        obj.read(AccessClass::integer, 1, offset + i, byte, dummy);
        bits |= (byte & 0xff) << (8 * i);
    }
    return bits;
}

void
writeSpanning(ManagedObject &obj, unsigned size, int64_t offset,
              uint64_t bits)
{
    for (unsigned i = 0; i < size; i++) {
        Address dummy;
        obj.write(AccessClass::integer, 1, offset + i,
                  (bits >> (8 * i)) & 0xff, dummy);
    }
}

} // namespace

void
StructObject::read(AccessClass cls, unsigned size, int64_t offset,
                   uint64_t &out_int, Address &out_addr)
{
    int64_t inner = 0;
    ManagedObject *field = resolve(offset, size, inner, false);
    if (field == nullptr) {
        uint64_t bits = readSpanning(*this, size, offset);
        if (cls == AccessClass::pointer) {
            out_addr = Address{};
            out_addr.offset = static_cast<int64_t>(bits);
        } else {
            out_int = bits;
        }
        return;
    }
    field->read(cls, size, inner, out_int, out_addr);
}

void
StructObject::write(AccessClass cls, unsigned size, int64_t offset,
                    uint64_t bits, const Address &addr)
{
    int64_t inner = 0;
    ManagedObject *field = resolve(offset, size, inner, true);
    if (field == nullptr) {
        if (cls == AccessClass::pointer) {
            if (!addr.isNull())
                raiseTypeError("pointer write spans fields of " +
                               describe());
            bits = static_cast<uint64_t>(addr.offset);
        }
        writeSpanning(*this, size, offset, bits);
        return;
    }
    field->write(cls, size, inner, bits, addr);
}

void
StructObject::free()
{
    fields_.clear();
    freed_ = true;
}

// -----------------------------------------------------------------------
// AggregateArray
// -----------------------------------------------------------------------

AggregateArray::AggregateArray(StorageKind storage, const Type *array_type)
    : ManagedObject(ObjectKind::arrayOfAggregates, storage),
      type_(array_type), elemSize_(array_type->elemType()->size())
{
    elems_.reserve(array_type->arrayLength());
    for (uint64_t i = 0; i < array_type->arrayLength(); i++)
        elems_.push_back(createFieldObject(storage, array_type->elemType()));
}

ManagedObject *
AggregateArray::resolve(int64_t offset, unsigned size, int64_t &inner_offset,
                        bool is_write)
{
    if (freed_)
        raiseUseAfterFree(is_write);
    if (offset < 0 || offset + static_cast<int64_t>(size) > byteSize())
        raiseBounds(AccessClass::integer, offset, size, is_write);
    size_t idx = static_cast<size_t>(offset / static_cast<int64_t>(elemSize_));
    inner_offset = offset % static_cast<int64_t>(elemSize_);
    if (inner_offset + static_cast<int64_t>(size) >
        static_cast<int64_t>(elemSize_)) {
        return nullptr; // spans elements; handled byte-wise by callers
    }
    return elems_[idx].get();
}

void
AggregateArray::read(AccessClass cls, unsigned size, int64_t offset,
                     uint64_t &out_int, Address &out_addr)
{
    int64_t inner = 0;
    ManagedObject *elem = resolve(offset, size, inner, false);
    if (elem == nullptr) {
        uint64_t bits = readSpanning(*this, size, offset);
        if (cls == AccessClass::pointer) {
            out_addr = Address{};
            out_addr.offset = static_cast<int64_t>(bits);
        } else {
            out_int = bits;
        }
        return;
    }
    elem->read(cls, size, inner, out_int, out_addr);
}

void
AggregateArray::write(AccessClass cls, unsigned size, int64_t offset,
                      uint64_t bits, const Address &addr)
{
    int64_t inner = 0;
    ManagedObject *elem = resolve(offset, size, inner, true);
    if (elem == nullptr) {
        if (cls == AccessClass::pointer) {
            if (!addr.isNull())
                raiseTypeError("pointer write spans elements of " +
                               describe());
            bits = static_cast<uint64_t>(addr.offset);
        }
        writeSpanning(*this, size, offset, bits);
        return;
    }
    elem->write(cls, size, inner, bits, addr);
}

void
AggregateArray::free()
{
    elems_.clear();
    freed_ = true;
}

} // namespace sulong
