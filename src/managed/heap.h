/**
 * @file
 * Managed heap: allocation typing (Section 3.3) and checked free (Fig. 8).
 */

#ifndef MS_MANAGED_HEAP_H
#define MS_MANAGED_HEAP_H

#include "managed/factory.h"
#include "support/limits.h"

namespace sulong
{

/**
 * A heap object whose element type is not yet known (an unhinted
 * malloc). The typed payload is materialized on the first read or write
 * — the paper's allocation-memento mechanism — and the observed type is
 * propagated back to the allocation site through @c mementoSlot.
 */
class LazyHeapObject : public ManagedObject
{
  public:
    LazyHeapObject(int64_t size, const Type **memento_slot)
        : ManagedObject(ObjectKind::i8Array, StorageKind::heap),
          size_(size), mementoSlot_(memento_slot)
    {}

    int64_t
    byteSize() const override
    {
        return inner_ ? inner_->byteSize() : size_;
    }

    void read(AccessClass cls, unsigned size, int64_t offset,
              uint64_t &out_int, Address &out_addr) override;
    void write(AccessClass cls, unsigned size, int64_t offset,
               uint64_t bits, const Address &addr) override;

    bool isHeap() const override { return true; }
    bool isFreed() const override
    {
        return freed_ || (inner_ && inner_->isFreed());
    }
    void free() override;

    std::string
    describe() const override
    {
        return inner_ ? inner_->describe()
                      : "Heap[" + std::to_string(size_) + " bytes]";
    }

    /** The typed payload (null until the first access). */
    ManagedObject *inner() const { return inner_.get(); }

    void
    markAllInitialized() override
    {
        if (inner_)
            inner_->markAllInitialized();
        else
            zeroed_ = true; // applied when the payload materializes
    }

  private:
    void materialize(AccessClass cls, unsigned size);

    int64_t size_;
    const Type **mementoSlot_;
    ObjRef inner_;
    bool freed_ = false;
    bool zeroed_ = false;
};

/**
 * Heap allocation and deallocation entry points of the managed engine.
 */
class ManagedHeap
{
  public:
    /**
     * @param guard optional per-run resource guard; every allocation
     * and free is metered against its heap limits (allocation bombs
     * terminate with TerminationKind::heapLimit instead of OOMing the
     * host).
     */
    explicit ManagedHeap(TypeContext &types, ResourceGuard *guard = nullptr)
        : types_(types), guard_(guard)
    {}

    /**
     * malloc: when @p elem_hint is known (from the allocation site's
     * static type or a prior memento), allocate a typed array right away;
     * otherwise allocate a LazyHeapObject that types itself on first
     * access and writes the observed element type into @p memento_slot.
     */
    Address allocate(int64_t size, const Type *elem_hint,
                     const Type **memento_slot);

    /** calloc: same as allocate (managed payloads are zeroed anyway). */
    Address allocateZeroed(int64_t size, const Type *elem_hint,
                           const Type **memento_slot);

    /** realloc: grow/shrink preserving content; frees the old object. */
    Address reallocate(const Address &old, int64_t new_size,
                       const Type **memento_slot);

    /** free() with the paper's checks (Fig. 8). */
    void deallocate(const Address &ptr);

    /** Bytes logically allocated and not yet freed (for stats/tests). */
    int64_t liveBytes() const { return liveBytes_; }
    uint64_t allocationCount() const { return allocationCount_; }
    /** Cumulative totals for the execution profiler (never decrease). */
    uint64_t allocBytesTotal() const { return allocBytesTotal_; }
    uint64_t freedBytesTotal() const { return freedBytesTotal_; }
    uint64_t freeCount() const { return freeCount_; }

    /**
     * Leak census at program exit (paper Section 6): blocks that were
     * allocated but never freed. The managed model tracks allocations
     * exactly, so no reachability heuristics are needed.
     */
    struct LeakInfo
    {
        uint64_t blocks = 0;
        int64_t bytes = 0;
    };
    LeakInfo liveLeaks() const;

  private:
    TypeContext &types_;
    ResourceGuard *guard_;
    int64_t liveBytes_ = 0;
    uint64_t allocationCount_ = 0;
    uint64_t allocBytesTotal_ = 0;
    uint64_t freedBytesTotal_ = 0;
    uint64_t freeCount_ = 0;
    /// Live heap allocations (weak pointers; entries removed on free).
    std::map<const ManagedObject *, int64_t> live_;

    void trackAlloc(const Address &addr, int64_t size);
};

} // namespace sulong

#endif // MS_MANAGED_HEAP_H
