/**
 * @file
 * Global (static) objects of the managed engine, plus the argv/envp
 * region that exists before main() runs (the uninstrumented area ASan
 * and Valgrind miss, paper Fig. 10).
 */

#ifndef MS_MANAGED_GLOBALS_H
#define MS_MANAGED_GLOBALS_H

#include <map>

#include "ir/module.h"
#include "managed/factory.h"

namespace sulong
{

/**
 * Materializes every GlobalVariable of a module as a managed object at
 * program start (the paper: "For global objects, the parser allocates
 * objects at the start of the program") and interns FunctionObjects for
 * function pointers.
 */
class GlobalStore
{
  public:
    explicit GlobalStore(const Module &module);

    /** Managed object of a global variable. */
    Address addressOf(const GlobalVariable *g) const;

    /** Function-pointer Address for a function. */
    Address addressOf(const Function *fn) const;

    /** FunctionObject lookup when dereferencing function pointers. */
    const FunctionObject *functionObject(unsigned id) const;

    /**
     * Build the argv array (argv[argc] == NULL) and the envp array from
     * host-provided strings; both live in StorageKind::mainArgs.
     */
    Address makeStringArray(const std::vector<std::string> &strings);

  private:
    void applyInit(ManagedObject *obj, const Type *type, int64_t offset,
                   const Initializer &init);

    std::map<const GlobalVariable *, ObjRef> globals_;
    std::map<unsigned, ObjRef> functions_;
};

} // namespace sulong

#endif // MS_MANAGED_GLOBALS_H
