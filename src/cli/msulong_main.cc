/**
 * @file
 * msulong: the unified CLI over the MiniSulong toolchain, and the
 * front door to the telemetry layer.
 *
 * Subcommands:
 *   msulong run [FILE] [guest args...]   run one program under a tool
 *   msulong corpus                       batch-run the 68-bug corpus
 *   msulong list                         list corpus entries and benches
 *
 * `run` sources, in priority order: an explicit FILE, `--corpus=ID`,
 * `--benchmark=NAME`, or a built-in demo chosen to exercise every
 * profiler dimension (hot function -> tier-2 compile, pointer loop ->
 * check elision, function pointer -> inline caches, malloc/free ->
 * heap counters).
 *
 * Telemetry flags (both subcommands):
 *   --trace-out=FILE     write a Chrome trace-event JSON (Perfetto)
 *   --metrics-json=FILE  write the obs/v1 metrics document
 *   --stats              print counters (incl. compile-cache hit/miss/
 *                        evict) on exit
 *
 * Tool/engine flags for `run`: --tool=safe|clang|asan|memcheck, --opt=N,
 * plus the shared managed/limit flags (--tier2-threshold, --max-steps,
 * ...). `corpus` takes --jobs=N, --watchdog-ms=N, --retries=N.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "corpus/corpus.h"
#include "tools/batch_runner.h"
#include "tools/benchmark_programs.h"
#include "tools/compile_cache.h"
#include "tools/driver.h"

namespace
{

using namespace sulong;

const char *DEMO = R"(
static int add1(int x) { return x + 1; }

static int work(int *buf, int n) {
    int (*f)(int) = add1;
    int sum = 0;
    for (int i = 0; i < n; i++) {
        buf[i] = f(i);
        sum += buf[i];
    }
    return sum;
}

int main(void) {
    int total = 0;
    for (int iter = 0; iter < 300; iter++) {
        int *buf = malloc(sizeof(int) * 64);
        total += work(buf, 64);
        free(buf);
    }
    printf("total=%d\n", total);
    return 0;
}
)";

int
usage()
{
    std::printf(
        "usage: msulong <run|corpus|list> [flags]\n"
        "  run [FILE] [guest args...]  one program under one tool\n"
        "      --corpus=ID | --benchmark=NAME | FILE (default: demo)\n"
        "      --tool=safe|clang|asan|memcheck  --opt=0|3\n"
        "  corpus                      batch the 68-bug corpus\n"
        "      --jobs=N --watchdog-ms=N --retries=N\n"
        "  list                        corpus ids and benchmark names\n"
        "common flags: --trace-out=FILE --metrics-json=FILE --stats\n"
        "              --tier2-threshold=N --max-steps=N ... \n");
    return 2;
}

ToolConfig
toolFromFlags(int argc, char **argv)
{
    std::string tool = parseStringFlag(argc, argv, "tool", "safe");
    int opt = static_cast<int>(parseUint64Flag(argc, argv, "opt", 0));
    ToolConfig config = ToolConfig::make(ToolKind::safeSulong, opt);
    if (tool == "clang")
        config.kind = ToolKind::clang;
    else if (tool == "asan")
        config.kind = ToolKind::asan;
    else if (tool == "memcheck")
        config.kind = ToolKind::memcheck;
    config.managed = parseManagedFlags(argc, argv);
    return config;
}

void
printCacheStats(const CompileCacheStats &stats)
{
    std::printf("compile cache: %llu hit(s), %llu miss(es), "
                "%llu eviction(s)\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.evictions));
}

int
cmdRun(int argc, char **argv)
{
    ObsFlags obs_flags = parseObsFlags(argc, argv);
    ToolConfig config = toolFromFlags(argc, argv);

    std::string source = DEMO;
    std::vector<std::string> guest_args;
    std::string corpus_id = parseStringFlag(argc, argv, "corpus");
    std::string bench_name = parseStringFlag(argc, argv, "benchmark");
    const char *input_file = nullptr;
    for (int i = 2; i < argc; i++) {
        if (std::strncmp(argv[i], "--", 2) == 0)
            continue;
        if (input_file == nullptr)
            input_file = argv[i];
        else
            guest_args.push_back(argv[i]);
    }
    if (input_file != nullptr) {
        std::ifstream file(input_file);
        if (!file) {
            std::fprintf(stderr, "msulong: cannot open %s\n", input_file);
            return 1;
        }
        std::ostringstream buf;
        buf << file.rdbuf();
        source = buf.str();
    } else if (!corpus_id.empty()) {
        const CorpusEntry *entry = nullptr;
        for (const CorpusEntry &e : bugCorpus()) {
            if (e.id == corpus_id) {
                entry = &e;
                break;
            }
        }
        if (entry == nullptr) {
            std::fprintf(stderr, "msulong: no corpus entry '%s'"
                         " (see: msulong list)\n", corpus_id.c_str());
            return 1;
        }
        source = entry->source;
        if (guest_args.empty())
            guest_args = entry->args;
    } else if (!bench_name.empty()) {
        const BenchmarkProgram *bench = findBenchmark(bench_name);
        if (bench == nullptr) {
            std::fprintf(stderr, "msulong: no benchmark '%s'"
                         " (see: msulong list)\n", bench_name.c_str());
            return 1;
        }
        source = bench->source;
        if (guest_args.empty())
            guest_args = bench->args;
    }

    // A cache even for one program: the run exercises the same
    // hit/miss/evict path the batch runner uses, so compile_cache.*
    // counters show up in --stats and --metrics-json.
    CompileCache cache;
    PreparedProgram prepared = prepareProgram(source, config, &cache);
    if (!prepared.ok()) {
        std::fprintf(stderr, "msulong: compile failed:\n%s\n",
                     prepared.compileErrors.c_str());
        return 1;
    }
    prepared.engine->limits() = parseLimitFlags(argc, argv);
    ExecutionResult result = prepared.run(guest_args);

    std::fputs(result.output.c_str(), stdout);
    std::fputs(result.errOutput.c_str(), stderr);
    if (result.bug.kind != ErrorKind::none)
        std::printf("[%s] %s\n", config.toString().c_str(),
                    result.bug.toString().c_str());
    if (result.termination != TerminationKind::normal)
        std::printf("[%s] terminated: %s\n", config.toString().c_str(),
                    result.terminationDetail.c_str());

    if (obs_flags.stats)
        printCacheStats(cache.stats());
    if (!writeObsOutputs(obs_flags))
        return 1;
    return result.ok() ? result.exitCode : 1;
}

int
cmdCorpus(int argc, char **argv)
{
    ObsFlags obs_flags = parseObsFlags(argc, argv);
    ToolConfig config = toolFromFlags(argc, argv);

    BatchOptions options;
    options.jobs = parseJobsFlag(argc, argv, 1);
    options.watchdogMs = static_cast<unsigned>(
        parseUint64Flag(argc, argv, "watchdog-ms", 0));
    options.retries = static_cast<unsigned>(
        parseUint64Flag(argc, argv, "retries", 0));
    CompileCache cache;
    options.cache = &cache;

    ResourceLimits limits = parseLimitFlags(argc, argv);
    std::vector<BatchJob> jobs;
    for (const CorpusEntry &entry : bugCorpus()) {
        BatchJob job = BatchJob::make(entry.source, config, entry.args,
                                      entry.stdinData);
        job.limits = limits;
        jobs.push_back(std::move(job));
    }

    BatchReport report = runBatch(jobs, options);

    const std::vector<CorpusEntry> &corpus = bugCorpus();
    size_t detected = 0;
    size_t matched = 0;
    std::map<std::string, unsigned> byKind;
    for (size_t i = 0; i < report.results.size(); i++) {
        const ExecutionResult &result = report.results[i];
        if (result.bug.kind == ErrorKind::none)
            continue;
        detected++;
        byKind[errorKindName(result.bug.kind)]++;
        if (result.bug.kind == corpus[i].kind)
            matched++;
    }
    std::printf("corpus: %zu program(s), %zu bug(s) detected under %s "
                "(%zu matching ground truth), %u worker(s)\n",
                corpus.size(), detected, config.toString().c_str(),
                matched, report.workersUsed);
    for (const auto &[kind, count] : byKind)
        std::printf("  %-16s %u\n", kind.c_str(), count);
    if (report.hostFaults != 0 || report.retriesUsed != 0 ||
        report.drainedJobs != 0)
        std::printf("harness: %u host fault(s), %u retrie(s), %u "
                    "drained\n", report.hostFaults, report.retriesUsed,
                    report.drainedJobs);

    if (obs_flags.stats)
        printCacheStats(report.cacheStats);
    if (!writeObsOutputs(obs_flags))
        return 1;
    return 0;
}

int
cmdList()
{
    std::printf("corpus entries:\n");
    for (const CorpusEntry &entry : bugCorpus())
        std::printf("  %-24s %s\n", entry.id.c_str(),
                    entry.description.c_str());
    std::printf("benchmarks:\n");
    for (const BenchmarkProgram &bench : benchmarkPrograms())
        std::printf("  %s\n", bench.name.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string command = argv[1];
    if (command == "run")
        return cmdRun(argc, argv);
    if (command == "corpus")
        return cmdCorpus(argc, argv);
    if (command == "list")
        return cmdList();
    return usage();
}
