/**
 * @file
 * Undefined-behaviour-exploiting folds: redundant null-check removal and
 * constant global-load folding (incl. the out-of-bounds fold of Fig. 13).
 */

#include <cstring>
#include <set>

#include "opt/passes.h"

namespace sulong
{

unsigned
removeRedundantNullChecks(Module &module)
{
    unsigned changes = 0;
    for (auto &fn : module.functions()) {
        if (fn->isDeclaration())
            continue;
        for (auto &bb : fn->blocks()) {
            // Pointers dereferenced so far in this block: comparing them
            // against null afterwards is "redundant" under C semantics
            // (a null dereference would have been UB), so the compiler
            // folds the check away — even though on a real machine the
            // check might have been protecting later code.
            std::set<const Value *> dereferenced;
            for (auto &inst : bb->insts()) {
                if (inst->op() == Opcode::load) {
                    dereferenced.insert(inst->operand(0));
                } else if (inst->op() == Opcode::store) {
                    dereferenced.insert(inst->operand(1));
                } else if (inst->op() == Opcode::icmp &&
                           (inst->intPred() == IntPred::eq ||
                            inst->intPred() == IntPred::ne)) {
                    const Value *a = inst->operand(0);
                    const Value *b = inst->operand(1);
                    const Value *ptr = nullptr;
                    if (a->valueKind() == ValueKind::constantNull &&
                        dereferenced.count(b)) {
                        ptr = b;
                    } else if (b->valueKind() == ValueKind::constantNull &&
                               dereferenced.count(a)) {
                        ptr = a;
                    }
                    if (ptr != nullptr) {
                        bool result = inst->intPred() == IntPred::ne;
                        replaceAllUses(*fn, inst.get(),
                                       module.constBool(result));
                        changes++;
                    }
                }
            }
        }
    }
    if (changes > 0)
        module.finalize();
    return changes;
}

namespace
{

/** Evaluate @p init at byte offset for a scalar of @p type; true when a
 *  constant value could be produced. */
bool
initializerValueAt(const Initializer &init, const Type *value_type,
                   uint64_t offset, const Type *access_type,
                   int64_t &out_int, double &out_fp)
{
    switch (init.kind) {
      case Initializer::Kind::zero:
        out_int = 0;
        out_fp = 0;
        return true;
      case Initializer::Kind::intVal:
        if (offset != 0 || value_type != access_type)
            return false;
        out_int = init.intValue;
        return true;
      case Initializer::Kind::fpVal:
        if (offset != 0 || value_type != access_type)
            return false;
        out_fp = init.fpValue;
        return true;
      case Initializer::Kind::bytes: {
        unsigned size = static_cast<unsigned>(access_type->size());
        if (!access_type->isInteger() ||
            offset + size > init.bytes.size()) {
            return false;
        }
        uint64_t bits = 0;
        std::memcpy(&bits, init.bytes.data() + offset, size);
        out_int = static_cast<int64_t>(bits);
        return true;
      }
      case Initializer::Kind::array: {
        uint64_t stride = value_type->elemType()->size();
        if (stride == 0)
            return false;
        uint64_t index = offset / stride;
        if (index >= init.elems.size())
            return false;
        return initializerValueAt(init.elems[index],
                                  value_type->elemType(),
                                  offset % stride, access_type, out_int,
                                  out_fp);
      }
      case Initializer::Kind::structVal: {
        int field = value_type->fieldAt(offset);
        if (field < 0 ||
            static_cast<size_t>(field) >= init.elems.size()) {
            return false;
        }
        const StructField &sf =
            value_type->fields()[static_cast<size_t>(field)];
        return initializerValueAt(init.elems[static_cast<size_t>(field)],
                                  sf.type, offset - sf.offset, access_type,
                                  out_int, out_fp);
      }
      default:
        return false;
    }
}

} // namespace

unsigned
foldConstantGlobalLoads(Module &module)
{
    unsigned changes = 0;
    for (auto &fn : module.functions()) {
        if (fn->isDeclaration())
            continue;
        for (auto &bb : fn->blocks()) {
            for (auto &inst : bb->insts()) {
                if (inst->op() != Opcode::load)
                    continue;
                const Value *ptr = inst->operand(0);
                const GlobalVariable *global = nullptr;
                int64_t offset = 0;
                if (ptr->valueKind() == ValueKind::global) {
                    global = static_cast<const GlobalVariable *>(ptr);
                } else if (ptr->valueKind() == ValueKind::instruction) {
                    const auto *gep = static_cast<const Instruction *>(ptr);
                    if (gep->op() == Opcode::gep &&
                        gep->operand(0)->valueKind() == ValueKind::global) {
                        bool constant_offset = true;
                        offset = gep->gepConstOffset();
                        if (gep->numOperands() == 2) {
                            const Value *idx = gep->operand(1);
                            if (idx->valueKind() == ValueKind::constantInt) {
                                offset += static_cast<const ConstantInt *>(
                                    idx)->value() *
                                    static_cast<int64_t>(gep->gepScale());
                            } else {
                                constant_offset = false;
                            }
                        }
                        if (constant_offset) {
                            global = static_cast<const GlobalVariable *>(
                                gep->operand(0));
                        }
                    }
                }
                if (global == nullptr)
                    continue;
                const Type *access = inst->accessType();
                uint64_t size = global->valueType()->size();
                if (offset < 0 ||
                    static_cast<uint64_t>(offset) + access->size() > size) {
                    // Statically out of bounds: undefined behaviour, so
                    // the compiler may produce anything — it produces
                    // zero, and the bug is gone (Fig. 13, even at -O0).
                    Value *zero = access->isFloat()
                        ? static_cast<Value *>(module.constFP(access, 0.0))
                        : (access->isPointer()
                               ? static_cast<Value *>(module.constNull())
                               : static_cast<Value *>(
                                     module.constInt(access, 0)));
                    replaceAllUses(*fn, inst.get(), zero);
                    changes++;
                    continue;
                }
                // In-bounds constant folding only for read-only globals.
                if (!global->isConst())
                    continue;
                int64_t int_value = 0;
                double fp_value = 0;
                if (!initializerValueAt(global->init(),
                                        global->valueType(),
                                        static_cast<uint64_t>(offset),
                                        access, int_value, fp_value)) {
                    continue;
                }
                Value *folded = access->isFloat()
                    ? static_cast<Value *>(module.constFP(access, fp_value))
                    : (access->isInteger()
                           ? static_cast<Value *>(
                                 module.constInt(access, int_value))
                           : nullptr);
                if (folded != nullptr) {
                    replaceAllUses(*fn, inst.get(), folded);
                    changes++;
                }
            }
        }
    }
    if (changes > 0)
        module.finalize();
    return changes;
}

void
runO0Pipeline(Module &module)
{
    // Even with optimizations "disabled", residual backend folding can
    // remove statically out-of-bounds constant accesses (Fig. 13).
    foldConstantGlobalLoads(module);
    eliminateDeadCode(module);
}

void
runO3Pipeline(Module &module)
{
    for (int iter = 0; iter < 5; iter++) {
        unsigned changes = 0;
        changes += foldConstants(module);
        changes += forwardStores(module);
        changes += removeRedundantNullChecks(module);
        changes += foldConstantGlobalLoads(module);
        changes += removeDeadStores(module);
        changes += eliminateDeadCode(module);
        changes += simplifyControlFlow(module);
        if (changes == 0)
            break;
    }
    module.finalize();
}

} // namespace sulong
