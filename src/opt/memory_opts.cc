/**
 * @file
 * Memory optimizations: store-to-load forwarding and the UB-exploiting
 * dead-store elimination of Fig. 3.
 */

#include <map>
#include <set>

#include "opt/passes.h"

namespace sulong
{

unsigned
forwardStores(Module &module)
{
    unsigned changes = 0;
    for (auto &fn : module.functions()) {
        if (fn->isDeclaration())
            continue;
        for (auto &bb : fn->blocks()) {
            // Known memory contents within this block, keyed by the exact
            // pointer value. A call or a store through a different
            // pointer value conservatively clobbers everything (two
            // distinct pointer SSA values may alias).
            std::map<const Value *, Value *> known;
            for (auto &inst : bb->insts()) {
                switch (inst->op()) {
                  case Opcode::store: {
                    const Value *ptr = inst->operand(1);
                    Value *stored = inst->operand(0);
                    auto isAlloca = [](const Value *v) {
                        return v->valueKind() == ValueKind::instruction &&
                            static_cast<const Instruction *>(v)->op() ==
                                Opcode::alloca_;
                    };
                    for (auto it = known.begin(); it != known.end();) {
                        // Two distinct allocas can never alias; anything
                        // else is clobbered conservatively.
                        bool keep = it->first != ptr &&
                            isAlloca(it->first) && isAlloca(ptr);
                        if (keep)
                            ++it;
                        else
                            it = known.erase(it);
                    }
                    known[ptr] = stored;
                    break;
                  }
                  case Opcode::load: {
                    auto it = known.find(inst->operand(0));
                    if (it != known.end() &&
                        it->second->type() == inst->type()) {
                        replaceAllUses(*fn, inst.get(), it->second);
                        changes++;
                    } else {
                        // Load-load CSE: later loads of the same pointer
                        // reuse this result.
                        known[inst->operand(0)] = inst.get();
                    }
                    break;
                  }
                  case Opcode::call:
                    known.clear();
                    break;
                  default:
                    break;
                }
            }
        }
    }
    if (changes > 0)
        module.finalize();
    return changes;
}

namespace
{

/**
 * Address-taken analysis of one alloca: collect all values derived from
 * it by gep, and classify whether the memory is ever loaded or whether
 * the address escapes (call argument, stored as a value, compared,
 * converted, returned).
 */
struct AllocaUsage
{
    std::set<const Value *> addresses;
    bool loaded = false;
    bool escaped = false;
};

AllocaUsage
analyzeAlloca(const Function &fn, const Instruction *alloca_inst)
{
    AllocaUsage usage;
    usage.addresses.insert(alloca_inst);
    // Fixpoint over derived addresses (geps of geps).
    bool grew = true;
    while (grew) {
        grew = false;
        for (const auto &bb : fn.blocks()) {
            for (const auto &inst : bb->insts()) {
                if (inst->op() == Opcode::gep &&
                    usage.addresses.count(inst->operand(0)) &&
                    !usage.addresses.count(inst.get())) {
                    usage.addresses.insert(inst.get());
                    grew = true;
                }
            }
        }
    }
    for (const auto &bb : fn.blocks()) {
        for (const auto &inst : bb->insts()) {
            for (size_t i = 0; i < inst->numOperands(); i++) {
                if (!usage.addresses.count(inst->operand(i)))
                    continue;
                switch (inst->op()) {
                  case Opcode::load:
                    usage.loaded = true;
                    break;
                  case Opcode::store:
                    if (i == 0)
                        usage.escaped = true; // address stored as a value
                    break;
                  case Opcode::gep:
                    if (i != 0)
                        usage.escaped = true; // address used as an index
                    break;
                  default:
                    usage.escaped = true;
                    break;
                }
            }
        }
    }
    return usage;
}

} // namespace

unsigned
removeDeadStores(Module &module)
{
    unsigned changes = 0;
    for (auto &fn : module.functions()) {
        if (fn->isDeclaration())
            continue;
        // Find dead allocas: never loaded, address never escaping. The
        // compiler may delete every store into them — including the
        // out-of-bounds ones (undefined behaviour), hiding the bug.
        std::set<const Value *> dead_addresses;
        for (const auto &bb : fn->blocks()) {
            for (const auto &inst : bb->insts()) {
                if (inst->op() != Opcode::alloca_)
                    continue;
                AllocaUsage usage = analyzeAlloca(*fn, inst.get());
                if (!usage.loaded && !usage.escaped) {
                    dead_addresses.insert(usage.addresses.begin(),
                                          usage.addresses.end());
                }
            }
        }
        if (dead_addresses.empty())
            continue;
        for (auto &bb : fn->blocks()) {
            auto &insts = bb->mutableInsts();
            for (size_t i = 0; i < insts.size();) {
                if (insts[i]->op() == Opcode::store &&
                    dead_addresses.count(insts[i]->operand(1))) {
                    insts.erase(insts.begin() +
                                static_cast<long>(i));
                    changes++;
                } else {
                    i++;
                }
            }
        }
    }
    if (changes > 0)
        module.finalize();
    return changes;
}

} // namespace sulong
