/**
 * @file
 * Optimization passes modelling what Clang/LLVM do to mini-C programs
 * (paper problem P2): classic folding and cleanup, plus the
 * undefined-behaviour-exploiting transformations that *delete bugs*
 * before a compile-time bug-finding tool ever sees them:
 *
 *  - removeDeadStores: stores into never-read, non-escaping stack arrays
 *    are dropped even when they are out of bounds (Fig. 3);
 *  - foldConstantGlobalLoads: constant-index loads from globals are
 *    folded — an out-of-bounds constant index folds to 0, removing the
 *    bug even at -O0 (Fig. 13);
 *  - removeRedundantNullChecks: a null check dominated by a dereference
 *    of the same pointer is folded to "not null" (Wang et al.).
 *
 * All passes work in place; callers re-verify in tests.
 */

#ifndef MS_OPT_PASSES_H
#define MS_OPT_PASSES_H

#include "ir/module.h"

namespace sulong
{

/** Fold constant arithmetic/casts/compares/geps. @return changes made. */
unsigned foldConstants(Module &module);

/** Block-local store-to-load forwarding (calls clobber everything). */
unsigned forwardStores(Module &module);

/** Remove unused side-effect-free instructions (loads count as dead
 *  when unused — LLVM semantics, itself a bug-hiding behaviour). */
unsigned eliminateDeadCode(Module &module);

/** UB-exploiting dead-store elimination on non-escaping, never-loaded
 *  allocas (deletes the Fig. 3 out-of-bounds stores). */
unsigned removeDeadStores(Module &module);

/** Fold `icmp p, null` when p was dereferenced earlier in the block. */
unsigned removeRedundantNullChecks(Module &module);

/** Fold constant-offset loads from globals; out-of-bounds offsets fold
 *  to zero (the Fig. 13 -O0 backend behaviour). */
unsigned foldConstantGlobalLoads(Module &module);

/** Turn condbr-on-constant into br and drop unreachable blocks. */
unsigned simplifyControlFlow(Module &module);

/** Replace every use of @p from with @p to inside @p fn. */
void replaceAllUses(Function &fn, const Value *from, Value *to);

/** The residual folding a "-O0" compile still performs (Fig. 13). */
void runO0Pipeline(Module &module);

/** The aggressive "-O3" pipeline (iterated to a fixpoint). */
void runO3Pipeline(Module &module);

} // namespace sulong

#endif // MS_OPT_PASSES_H
