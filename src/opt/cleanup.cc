/**
 * @file
 * Cleanup passes: dead-code elimination and control-flow simplification.
 */

#include <map>
#include <queue>
#include <set>

#include "opt/passes.h"

namespace sulong
{

unsigned
eliminateDeadCode(Module &module)
{
    unsigned changes = 0;
    for (auto &fn : module.functions()) {
        if (fn->isDeclaration())
            continue;
        bool changed = true;
        while (changed) {
            changed = false;
            // Count uses.
            std::map<const Value *, unsigned> uses;
            for (const auto &bb : fn->blocks()) {
                for (const auto &inst : bb->insts()) {
                    for (const Value *operand : inst->operands())
                        uses[operand]++;
                }
            }
            for (auto &bb : fn->blocks()) {
                auto &insts = bb->mutableInsts();
                for (size_t i = 0; i < insts.size();) {
                    const Instruction &inst = *insts[i];
                    bool removable = false;
                    switch (inst.op()) {
                      case Opcode::alloca_: case Opcode::gep:
                      case Opcode::add: case Opcode::sub: case Opcode::mul:
                      case Opcode::sdiv: case Opcode::udiv:
                      case Opcode::srem: case Opcode::urem:
                      case Opcode::and_: case Opcode::or_:
                      case Opcode::xor_: case Opcode::shl:
                      case Opcode::lshr: case Opcode::ashr:
                      case Opcode::fadd: case Opcode::fsub:
                      case Opcode::fmul: case Opcode::fdiv:
                      case Opcode::frem: case Opcode::fneg:
                      case Opcode::icmp: case Opcode::fcmp:
                      case Opcode::trunc: case Opcode::zext:
                      case Opcode::sext: case Opcode::fptosi:
                      case Opcode::fptoui: case Opcode::sitofp:
                      case Opcode::uitofp: case Opcode::fpext:
                      case Opcode::fptrunc: case Opcode::ptrtoint:
                      case Opcode::inttoptr: case Opcode::select:
                      // Unused loads are removable under LLVM semantics —
                      // even when they would have trapped or been caught.
                      case Opcode::load:
                        removable = uses[&inst] == 0;
                        break;
                      default:
                        removable = false;
                        break;
                    }
                    if (removable) {
                        insts.erase(insts.begin() + static_cast<long>(i));
                        changes++;
                        changed = true;
                    } else {
                        i++;
                    }
                }
            }
        }
    }
    if (changes > 0)
        module.finalize();
    return changes;
}

unsigned
simplifyControlFlow(Module &module)
{
    unsigned changes = 0;
    for (auto &fn : module.functions()) {
        if (fn->isDeclaration())
            continue;
        // Fold conditional branches on constants.
        for (auto &bb : fn->blocks()) {
            Instruction *term = bb->terminator();
            if (term == nullptr || term->op() != Opcode::condbr)
                continue;
            const Value *cond = term->operand(0);
            if (cond->valueKind() != ValueKind::constantInt)
                continue;
            BasicBlock *target = static_cast<const ConstantInt *>(cond)
                ->value() != 0 ? term->target(0) : term->target(1);
            auto br = std::make_unique<Instruction>(
                Opcode::br, module.types().voidTy());
            br->setTargets(target);
            br->setLoc(term->loc());
            bb->mutableInsts().back() = std::move(br);
            bb->mutableInsts().back()->setParent(bb.get());
            changes++;
        }
        // Drop unreachable blocks.
        std::set<const BasicBlock *> reachable;
        std::queue<const BasicBlock *> worklist;
        if (fn->entry() != nullptr) {
            reachable.insert(fn->entry());
            worklist.push(fn->entry());
        }
        while (!worklist.empty()) {
            const BasicBlock *bb = worklist.front();
            worklist.pop();
            const Instruction *term = bb->terminator();
            if (term == nullptr)
                continue;
            for (unsigned t = 0; t < 2; t++) {
                BasicBlock *target = term->target(t);
                if (target != nullptr && !reachable.count(target)) {
                    reachable.insert(target);
                    worklist.push(target);
                }
            }
        }
        std::vector<bool> dead(fn->blocks().size(), false);
        bool any_dead = false;
        for (size_t i = 0; i < fn->blocks().size(); i++) {
            if (!reachable.count(fn->blocks()[i].get())) {
                dead[i] = true;
                any_dead = true;
                changes++;
            }
        }
        if (any_dead)
            fn->removeBlocksIf(dead);
    }
    if (changes > 0)
        module.finalize();
    return changes;
}

} // namespace sulong
