/**
 * @file
 * Constant folding: arithmetic, casts, comparisons, selects, and gep
 * index absorption.
 */

#include "opt/passes.h"

namespace sulong
{

namespace
{

const ConstantInt *
asConstInt(const Value *v)
{
    return v->valueKind() == ValueKind::constantInt
        ? static_cast<const ConstantInt *>(v) : nullptr;
}

const ConstantFP *
asConstFP(const Value *v)
{
    return v->valueKind() == ValueKind::constantFP
        ? static_cast<const ConstantFP *>(v) : nullptr;
}

/** Fold one instruction to a constant, or return nullptr. */
Value *
foldInstruction(Module &module, const Instruction &inst)
{
    switch (inst.op()) {
      case Opcode::add: case Opcode::sub: case Opcode::mul:
      case Opcode::sdiv: case Opcode::udiv: case Opcode::srem:
      case Opcode::urem: case Opcode::and_: case Opcode::or_:
      case Opcode::xor_: case Opcode::shl: case Opcode::lshr:
      case Opcode::ashr: {
        const ConstantInt *l = asConstInt(inst.operand(0));
        const ConstantInt *r = asConstInt(inst.operand(1));
        if (l == nullptr || r == nullptr)
            return nullptr;
        unsigned width = inst.type()->intBits();
        uint64_t lz = l->zextValue();
        uint64_t rz = r->zextValue();
        int64_t out;
        switch (inst.op()) {
          case Opcode::add: out = l->value() + r->value(); break;
          case Opcode::sub: out = l->value() - r->value(); break;
          case Opcode::mul:
            out = static_cast<int64_t>(
                static_cast<uint64_t>(l->value()) *
                static_cast<uint64_t>(r->value()));
            break;
          case Opcode::sdiv:
            if (r->value() == 0 ||
                (l->value() == INT64_MIN && r->value() == -1)) {
                return nullptr;
            }
            out = l->value() / r->value();
            break;
          case Opcode::udiv:
            if (rz == 0)
                return nullptr;
            out = static_cast<int64_t>(lz / rz);
            break;
          case Opcode::srem:
            if (r->value() == 0 ||
                (l->value() == INT64_MIN && r->value() == -1)) {
                return nullptr;
            }
            out = l->value() % r->value();
            break;
          case Opcode::urem:
            if (rz == 0)
                return nullptr;
            out = static_cast<int64_t>(lz % rz);
            break;
          case Opcode::and_: out = l->value() & r->value(); break;
          case Opcode::or_: out = l->value() | r->value(); break;
          case Opcode::xor_: out = l->value() ^ r->value(); break;
          case Opcode::shl:
            out = static_cast<int64_t>(lz << (rz & (width - 1)));
            break;
          case Opcode::lshr:
            out = static_cast<int64_t>(lz >> (rz & (width - 1)));
            break;
          default:
            out = l->value() >> (rz & (width - 1));
            break;
        }
        return module.constInt(inst.type(), out);
      }
      case Opcode::fadd: case Opcode::fsub: case Opcode::fmul:
      case Opcode::fdiv: {
        const ConstantFP *l = asConstFP(inst.operand(0));
        const ConstantFP *r = asConstFP(inst.operand(1));
        if (l == nullptr || r == nullptr)
            return nullptr;
        double out;
        switch (inst.op()) {
          case Opcode::fadd: out = l->value() + r->value(); break;
          case Opcode::fsub: out = l->value() - r->value(); break;
          case Opcode::fmul: out = l->value() * r->value(); break;
          default: out = l->value() / r->value(); break;
        }
        return module.constFP(inst.type(), out);
      }
      case Opcode::icmp: {
        const ConstantInt *l = asConstInt(inst.operand(0));
        const ConstantInt *r = asConstInt(inst.operand(1));
        if (l == nullptr || r == nullptr)
            return nullptr;
        bool out;
        switch (inst.intPred()) {
          case IntPred::eq: out = l->value() == r->value(); break;
          case IntPred::ne: out = l->value() != r->value(); break;
          case IntPred::slt: out = l->value() < r->value(); break;
          case IntPred::sle: out = l->value() <= r->value(); break;
          case IntPred::sgt: out = l->value() > r->value(); break;
          case IntPred::sge: out = l->value() >= r->value(); break;
          case IntPred::ult: out = l->zextValue() < r->zextValue(); break;
          case IntPred::ule: out = l->zextValue() <= r->zextValue(); break;
          case IntPred::ugt: out = l->zextValue() > r->zextValue(); break;
          default: out = l->zextValue() >= r->zextValue(); break;
        }
        return module.constBool(out);
      }
      case Opcode::trunc: case Opcode::sext: {
        const ConstantInt *v = asConstInt(inst.operand(0));
        if (v == nullptr)
            return nullptr;
        return module.constInt(inst.type(), v->value());
      }
      case Opcode::zext: {
        const ConstantInt *v = asConstInt(inst.operand(0));
        if (v == nullptr)
            return nullptr;
        return module.constInt(inst.type(),
                               static_cast<int64_t>(v->zextValue()));
      }
      case Opcode::sitofp: {
        const ConstantInt *v = asConstInt(inst.operand(0));
        if (v == nullptr)
            return nullptr;
        return module.constFP(inst.type(),
                              static_cast<double>(v->value()));
      }
      case Opcode::uitofp: {
        const ConstantInt *v = asConstInt(inst.operand(0));
        if (v == nullptr)
            return nullptr;
        return module.constFP(inst.type(),
                              static_cast<double>(v->zextValue()));
      }
      case Opcode::fpext: case Opcode::fptrunc: {
        const ConstantFP *v = asConstFP(inst.operand(0));
        if (v == nullptr)
            return nullptr;
        double d = inst.op() == Opcode::fptrunc
            ? static_cast<double>(static_cast<float>(v->value()))
            : v->value();
        return module.constFP(inst.type(), d);
      }
      case Opcode::select: {
        const ConstantInt *cond = asConstInt(inst.operand(0));
        if (cond == nullptr)
            return nullptr;
        return inst.operand(cond->value() != 0 ? 1 : 2);
      }
      default:
        return nullptr;
    }
}

} // namespace

void
replaceAllUses(Function &fn, const Value *from, Value *to)
{
    for (auto &bb : fn.blocks()) {
        for (auto &inst : bb->insts()) {
            for (size_t i = 0; i < inst->numOperands(); i++) {
                if (inst->operand(i) == from)
                    inst->setOperand(i, to);
            }
        }
    }
}

unsigned
foldConstants(Module &module)
{
    unsigned changes = 0;
    for (auto &fn : module.functions()) {
        if (fn->isDeclaration())
            continue;
        for (auto &bb : fn->blocks()) {
            for (auto &inst : bb->insts()) {
                // Absorb constant gep indices into the constant offset.
                if (inst->op() == Opcode::gep && inst->numOperands() == 2) {
                    if (const ConstantInt *idx =
                            asConstInt(inst->operand(1))) {
                        inst->setGep(inst->gepConstOffset() +
                                     idx->value() *
                                     static_cast<int64_t>(inst->gepScale()),
                                     0);
                        inst->mutableOperands().pop_back();
                        changes++;
                        continue;
                    }
                }
                Value *folded = foldInstruction(module, *inst);
                if (folded != nullptr && folded != inst.get()) {
                    replaceAllUses(*fn, inst.get(), folded);
                    changes++;
                }
            }
        }
    }
    if (changes > 0)
        module.finalize();
    return changes;
}

} // namespace sulong
