/**
 * @file
 * Runtime values of the native execution model: plain 64-bit machine
 * words. Pointers are just integers; no provenance, no checks — exactly
 * the abstraction level the paper argues loses too much information.
 */

#ifndef MS_NATIVE_NVALUE_H
#define MS_NATIVE_NVALUE_H

#include <cstdint>

namespace sulong
{

/** A register value of the simulated machine. */
struct NValue
{
    int64_t i = 0;
    double f = 0;
    /// Definedness shadow bit (V-bit analogue) used by the Memcheck-style
    /// runtime; plain execution ignores it.
    bool defined = true;

    static NValue
    makeInt(int64_t value)
    {
        NValue v;
        v.i = value;
        return v;
    }

    static NValue
    makeFP(double value)
    {
        NValue v;
        v.f = value;
        return v;
    }
};

} // namespace sulong

#endif // MS_NATIVE_NVALUE_H
