/**
 * @file
 * Instrumentation hook interface for the native engine.
 *
 * The plain engine runs with no hooks ("Clang" baseline). The ASan-style
 * tool plugs in allocator interposition, redzone sizing, interceptors,
 * and the __asan_check intrinsic (compile-time instrumentation). The
 * Memcheck-style tool plugs in per-access checking and definedness
 * tracking (runtime instrumentation). Hook implementations report bugs
 * by throwing MemoryErrorException.
 */

#ifndef MS_NATIVE_HOOKS_H
#define MS_NATIVE_HOOKS_H

#include "native/memory.h"
#include "native/nvalue.h"

namespace sulong
{

class NativeHooks
{
  public:
    virtual ~NativeHooks() = default;

    /** Called at the start of every run, before memory is laid out:
     *  reset all per-process shadow state (the engine recreates its
     *  NativeMemory per run, and the hooks must match). */
    virtual void onRunStart() {}

    /** Called once after globals are laid out and argv/envp built. */
    virtual void
    onStartup(NativeMemory &mem, const Module &module,
              const std::vector<uint64_t> &global_addrs)
    {
        (void)mem;
        (void)module;
        (void)global_addrs;
    }

    /** Padding between globals (ASan global redzones). */
    virtual uint64_t globalGap() const { return 0; }

    // --- Runtime instrumentation (Memcheck) ------------------------------

    /** When true, the engine calls onLoad/onStore for every access. */
    virtual bool checksEveryAccess() const { return false; }
    virtual void
    onLoad(NativeMemory &mem, uint64_t addr, unsigned size,
           const SourceLoc &loc)
    {
        (void)mem; (void)addr; (void)size; (void)loc;
    }
    virtual void
    onStore(NativeMemory &mem, uint64_t addr, unsigned size,
            const SourceLoc &loc)
    {
        (void)mem; (void)addr; (void)size; (void)loc;
    }

    // --- Allocator interposition -----------------------------------------

    virtual uint64_t
    onMalloc(NativeMemory &mem, uint64_t size)
    {
        return mem.heapAlloc(size);
    }
    virtual void
    onFree(NativeMemory &mem, uint64_t addr, const SourceLoc &loc)
    {
        (void)loc;
        if (addr != 0)
            mem.heapFree(addr); // invalid frees are silent natively
    }
    virtual uint64_t
    onRealloc(NativeMemory &mem, uint64_t addr, uint64_t size)
    {
        return mem.heapRealloc(addr, size);
    }

    // --- Stack instrumentation (ASan) --------------------------------------

    /** True when @p fn was compiled with instrumentation. */
    virtual bool instruments(const Function &fn) const
    {
        (void)fn;
        return false;
    }
    /** Redzone bytes placed on each side of an instrumented alloca. */
    virtual uint64_t allocaRedzone() const { return 0; }
    virtual void
    onAlloca(NativeMemory &mem, uint64_t base, uint64_t var_addr,
             uint64_t var_size, uint64_t total)
    {
        (void)mem; (void)base; (void)var_addr; (void)var_size; (void)total;
    }
    /** Frame teardown: [lo, hi) returns to ordinary stack memory. */
    virtual void
    onFrameExit(NativeMemory &mem, uint64_t lo, uint64_t hi)
    {
        (void)mem; (void)lo; (void)hi;
    }

    /** Every stack allocation (all functions) — V-bit tracking uses this
     *  to mark fresh stack memory undefined. */
    virtual void
    onStackAlloc(NativeMemory &mem, uint64_t addr, uint64_t size)
    {
        (void)mem; (void)addr; (void)size;
    }

    // --- Compile-time check intrinsic (ASan) -------------------------------

    virtual void
    check(NativeMemory &mem, uint64_t addr, unsigned size, bool is_write,
          const SourceLoc &loc)
    {
        (void)mem; (void)addr; (void)size; (void)is_write; (void)loc;
    }

    // --- libc interceptors (ASan) -------------------------------------------

    virtual bool interceptsLibc() const { return false; }
    virtual void
    onLibcCall(NativeMemory &mem, const std::string &name,
               const std::vector<NValue> &args, const SourceLoc &loc)
    {
        (void)mem; (void)name; (void)args; (void)loc;
    }

    // --- Definedness (V-bit) tracking (Memcheck) ------------------------------

    virtual bool tracksDefinedness() const { return false; }
    virtual bool
    loadDefined(NativeMemory &mem, uint64_t addr, unsigned size)
    {
        (void)mem; (void)addr; (void)size;
        return true;
    }
    virtual void
    storeDefined(NativeMemory &mem, uint64_t addr, unsigned size,
                 bool defined)
    {
        (void)mem; (void)addr; (void)size; (void)defined;
    }
    /** An undefined value reached a branch or a system call. */
    virtual void
    onUndefinedUse(const SourceLoc &loc)
    {
        (void)loc;
    }

    /**
     * Leak census at normal program exit. Tools that track allocations
     * (ASan/Memcheck style) fill @p report and return true when blocks
     * were never freed; the engine attaches it to the result.
     */
    virtual bool
    reportLeaks(BugReport &report)
    {
        (void)report;
        return false;
    }

    /**
     * V-bit combination for one value operation. Real Memcheck's binary
     * translation inserts shadow operations for *every* instruction, not
     * just memory accesses; tools that track definedness get this call
     * per arithmetic/compare operation, which models that cost.
     */
    virtual bool
    combineDefined(const NValue &l, const NValue &r)
    {
        return l.defined && r.defined;
    }
};

} // namespace sulong

#endif // MS_NATIVE_HOOKS_H
