#include "native/memory.h"

#include <cstring>

namespace sulong
{

NativeMemory::NativeMemory()
{
    stack_.resize(NativeLayout::stackSize);
    args_.resize(NativeLayout::argsSize);
}

uint8_t *
NativeMemory::resolve(uint64_t addr, uint64_t size, bool is_write)
{
    // Segments are page-padded like a real process, so slightly
    // out-of-bounds accesses (word-wise strlen!) hit mapped memory.
    if (addr >= NativeLayout::globalBase &&
        addr + size <= NativeLayout::globalBase + globals_.size()) {
        return globals_.data() + (addr - NativeLayout::globalBase);
    }
    if (addr >= NativeLayout::heapBase &&
        addr + size <= NativeLayout::heapBase + heap_.size()) {
        return heap_.data() + (addr - NativeLayout::heapBase);
    }
    if (addr >= NativeLayout::stackBase && addr + size <= NativeLayout::stackTop)
        return stack_.data() + (addr - NativeLayout::stackBase);
    if (addr >= NativeLayout::argsBase &&
        addr + size <= NativeLayout::argsBase + NativeLayout::argsSize) {
        return args_.data() + (addr - NativeLayout::argsBase);
    }
    throw NativeTrap(addr, is_write);
}

uint64_t
NativeMemory::readInt(uint64_t addr, unsigned size)
{
    uint64_t out = 0;
    std::memcpy(&out, resolve(addr, size, false), size);
    return out;
}

void
NativeMemory::writeInt(uint64_t addr, unsigned size, uint64_t value)
{
    std::memcpy(resolve(addr, size, true), &value, size);
}

void
NativeMemory::readBytes(uint64_t addr, void *out, uint64_t len)
{
    if (len == 0)
        return;
    std::memcpy(out, resolve(addr, len, false), len);
}

void
NativeMemory::writeBytes(uint64_t addr, const void *data, uint64_t len)
{
    if (len == 0)
        return;
    std::memcpy(resolve(addr, len, true), data, len);
}

std::string
NativeMemory::readCString(uint64_t addr, uint64_t max_len)
{
    std::string out;
    for (uint64_t i = 0; i < max_len; i++) {
        uint8_t c = *resolve(addr + i, 1, false);
        if (c == 0)
            break;
        out.push_back(static_cast<char>(c));
    }
    return out;
}

uint64_t
NativeMemory::heapAlloc(uint64_t size)
{
    if (size == 0)
        size = 1;
    uint64_t aligned = (size + 15) / 16 * 16;
    // Metered on the aligned block size (what the host actually maps),
    // before the heap grows, so allocation bombs terminate with
    // TerminationKind::heapLimit instead of OOMing the host.
    if (guard_ != nullptr)
        guard_->onAlloc(aligned);
    // Reuse the most recently freed block of this size class: freed
    // memory is recycled immediately, so dangling pointers silently
    // alias new allocations.
    auto it = freeLists_.find(aligned);
    if (it != freeLists_.end() && !it->second.empty()) {
        uint64_t addr = it->second.back();
        it->second.pop_back();
        blocks_[addr].free = false;
        return addr;
    }
    uint64_t addr = heapEnd_;
    if (addr + aligned > NativeLayout::heapMax)
        throw EngineError("native heap exhausted");
    heapEnd_ += aligned;
    // Keep one page of slack mapped beyond the break (page rounding).
    heap_.resize(heapEnd_ - NativeLayout::heapBase + 4096);
    blocks_[addr] = Block{aligned, false};
    return addr;
}

uint64_t
NativeMemory::heapFree(uint64_t addr)
{
    auto it = blocks_.find(addr);
    if (it == blocks_.end() || it->second.free)
        return 0;
    it->second.free = true;
    freeLists_[it->second.size].push_back(addr);
    if (guard_ != nullptr)
        guard_->onFree(it->second.size);
    return it->second.size;
}

uint64_t
NativeMemory::heapRealloc(uint64_t addr, uint64_t new_size)
{
    if (addr == 0)
        return heapAlloc(new_size);
    auto it = blocks_.find(addr);
    if (it == blocks_.end())
        return heapAlloc(new_size);
    if (it->second.size >= new_size && !it->second.free)
        return addr;
    uint64_t fresh = heapAlloc(new_size);
    uint64_t copy = std::min(it->second.size, new_size);
    std::vector<uint8_t> tmp(copy);
    readBytes(addr, tmp.data(), copy);
    writeBytes(fresh, tmp.data(), copy);
    heapFree(addr);
    return fresh;
}

uint64_t
NativeMemory::blockSize(uint64_t addr) const
{
    auto it = blocks_.find(addr);
    if (it == blocks_.end() || it->second.free)
        return 0;
    return it->second.size;
}

uint64_t
NativeMemory::stackAlloc(uint64_t size)
{
    uint64_t aligned = (size + 15) / 16 * 16;
    if (sp_ < NativeLayout::stackBase + aligned)
        throw NativeTrap(sp_ - aligned, true); // stack overflow
    sp_ -= aligned;
    return sp_;
}

std::vector<uint64_t>
NativeMemory::layoutGlobals(const Module &module, uint64_t gap)
{
    std::vector<uint64_t> addrs;
    uint64_t cursor = NativeLayout::globalBase;
    for (const auto &g : module.globals()) {
        uint64_t align = std::max<uint64_t>(g->valueType()->align(), 1);
        cursor = (cursor + align - 1) / align * align;
        globalAddrs_[g.get()] = cursor;
        addrs.push_back(cursor);
        cursor += g->valueType()->size() + gap;
    }
    globalEnd_ = cursor;
    // Page-round the data segment and keep one slack page mapped.
    uint64_t mapped = (globalEnd_ - NativeLayout::globalBase + 4095) /
        4096 * 4096 + 4096;
    globals_.assign(mapped, 0);
    for (const auto &g : module.globals())
        applyInit(globalAddrs_[g.get()], g->valueType(), g->init());
    return addrs;
}

uint64_t
NativeMemory::globalAddress(const GlobalVariable *g) const
{
    auto it = globalAddrs_.find(g);
    if (it == globalAddrs_.end())
        throw InternalError("unknown global " + g->name());
    return it->second;
}

uint64_t
NativeMemory::buildStringArray(const std::vector<std::string> &strings)
{
    // Strings first, then the pointer array, then the terminating NULL.
    std::vector<uint64_t> ptrs;
    for (const auto &s : strings) {
        uint64_t addr = argsEnd_;
        if (addr + s.size() + 1 >
            NativeLayout::argsBase + NativeLayout::argsSize) {
            throw EngineError("args region exhausted");
        }
        std::memcpy(args_.data() + (addr - NativeLayout::argsBase),
                    s.data(), s.size());
        args_[addr - NativeLayout::argsBase + s.size()] = 0;
        argsEnd_ += s.size() + 1;
        ptrs.push_back(addr);
    }
    argsEnd_ = (argsEnd_ + 7) / 8 * 8;
    uint64_t array_addr = argsEnd_;
    for (uint64_t p : ptrs) {
        writeInt(argsEnd_, 8, p);
        argsEnd_ += 8;
    }
    writeInt(argsEnd_, 8, 0);
    argsEnd_ += 8;
    return array_addr;
}

std::pair<uint64_t, uint64_t>
NativeMemory::buildMainArgs(const std::vector<std::string> &argv_strings,
                            const std::vector<std::string> &env_strings)
{
    auto writeString = [this](const std::string &s) {
        uint64_t addr = argsEnd_;
        if (addr + s.size() + 1 >
            NativeLayout::argsBase + NativeLayout::argsSize) {
            throw EngineError("args region exhausted");
        }
        std::memcpy(args_.data() + (addr - NativeLayout::argsBase),
                    s.data(), s.size());
        args_[addr - NativeLayout::argsBase + s.size()] = 0;
        argsEnd_ += s.size() + 1;
        return addr;
    };
    std::vector<uint64_t> argv_ptrs;
    for (const auto &s : argv_strings)
        argv_ptrs.push_back(writeString(s));
    std::vector<uint64_t> env_ptrs;
    for (const auto &s : env_strings)
        env_ptrs.push_back(writeString(s));

    argsEnd_ = (argsEnd_ + 7) / 8 * 8;
    uint64_t argv_addr = argsEnd_;
    for (uint64_t p : argv_ptrs) {
        writeInt(argsEnd_, 8, p);
        argsEnd_ += 8;
    }
    writeInt(argsEnd_, 8, 0);
    argsEnd_ += 8;
    uint64_t envp_addr = argsEnd_; // adjacent, like the real stack layout
    for (uint64_t p : env_ptrs) {
        writeInt(argsEnd_, 8, p);
        argsEnd_ += 8;
    }
    writeInt(argsEnd_, 8, 0);
    argsEnd_ += 8;
    return {argv_addr, envp_addr};
}

void
NativeMemory::applyInit(uint64_t addr, const Type *type,
                        const Initializer &init)
{
    switch (init.kind) {
      case Initializer::Kind::zero:
        return;
      case Initializer::Kind::intVal:
        writeInt(addr, static_cast<unsigned>(type->size()),
                 static_cast<uint64_t>(init.intValue));
        return;
      case Initializer::Kind::fpVal:
        if (type->kind() == TypeKind::f32) {
            float f = static_cast<float>(init.fpValue);
            uint32_t bits = 0;
            std::memcpy(&bits, &f, 4);
            writeInt(addr, 4, bits);
        } else {
            uint64_t bits = 0;
            std::memcpy(&bits, &init.fpValue, 8);
            writeInt(addr, 8, bits);
        }
        return;
      case Initializer::Kind::bytes:
        writeBytes(addr, init.bytes.data(), init.bytes.size());
        return;
      case Initializer::Kind::array: {
        uint64_t stride = type->elemType()->size();
        for (size_t i = 0; i < init.elems.size(); i++)
            applyInit(addr + i * stride, type->elemType(), init.elems[i]);
        return;
      }
      case Initializer::Kind::structVal: {
        const auto &fields = type->fields();
        for (size_t i = 0; i < init.elems.size() && i < fields.size(); i++)
            applyInit(addr + fields[i].offset, fields[i].type,
                      init.elems[i]);
        return;
      }
      case Initializer::Kind::globalRef:
        writeInt(addr, 8, globalAddress(init.global) +
                 static_cast<uint64_t>(init.addend));
        return;
      case Initializer::Kind::functionRef:
        writeInt(addr, 8, functionAddress(init.function->id()));
        return;
    }
}

} // namespace sulong
