/**
 * @file
 * The flat process-memory model of the native execution engines.
 *
 * Lays memory out like a real (simplified) AMD64 Linux process: a global
 * data segment, a growing heap whose allocator reuses freed blocks
 * immediately, a contiguous downward-growing stack, and an argv/envp
 * region set up before the program starts. Accesses within mapped
 * segments always succeed — out-of-bounds accesses silently read or
 * corrupt neighbouring objects, which is exactly the behaviour
 * shadow-memory tools try (and partially fail) to detect. Accesses to
 * unmapped addresses trap like SIGSEGV.
 */

#ifndef MS_NATIVE_MEMORY_H
#define MS_NATIVE_MEMORY_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/module.h"
#include "managed/errors.h"
#include "support/limits.h"

namespace sulong
{

/** Raised on an access to unmapped simulated memory. */
class NativeTrap
{
  public:
    NativeTrap(uint64_t addr, bool is_write)
        : addr_(addr), isWrite_(is_write)
    {}

    uint64_t addr() const { return addr_; }
    bool isWrite() const { return isWrite_; }

  private:
    uint64_t addr_;
    bool isWrite_;
};

/** Segment layout constants (32-bit-ish addresses inside i64 values). */
struct NativeLayout
{
    static constexpr uint64_t globalBase = 0x0060'0000;
    static constexpr uint64_t heapBase = 0x1000'0000;
    static constexpr uint64_t heapMax = 0x3000'0000;
    static constexpr uint64_t stackTop = 0x7fff'0000;
    static constexpr uint64_t stackSize = 8 * 1024 * 1024;
    static constexpr uint64_t stackBase = stackTop - stackSize;
    static constexpr uint64_t argsBase = 0x7fff'4000;
    static constexpr uint64_t argsSize = 0x4000;
};

/**
 * The simulated address space plus its heap allocator.
 */
class NativeMemory
{
  public:
    NativeMemory();

    /**
     * Attach the per-run resource guard: heap traffic (malloc/free/
     * realloc, including the instrumented allocators layered on top) is
     * metered against its heap limits.
     */
    void setGuard(ResourceGuard *guard) { guard_ = guard; }

    // --- Raw access --------------------------------------------------------

    /** Resolve to host memory; throws NativeTrap when unmapped. */
    uint8_t *resolve(uint64_t addr, uint64_t size, bool is_write);

    uint64_t readInt(uint64_t addr, unsigned size);
    void writeInt(uint64_t addr, unsigned size, uint64_t value);
    void readBytes(uint64_t addr, void *out, uint64_t len);
    void writeBytes(uint64_t addr, const void *data, uint64_t len);

    /** Guest C-string (for interceptors / diagnostics); caps length. */
    std::string readCString(uint64_t addr, uint64_t max_len = 1u << 20);

    // --- Heap allocator ----------------------------------------------------

    /** One heap block (host-side metadata; headers are not in guest
     *  memory, so corruption bugs stay silent rather than crashing the
     *  simulation). */
    struct Block
    {
        uint64_t size = 0;
        bool free = false;
    };

    /**
     * First-fit allocation with immediate reuse of freed blocks (the
     * behaviour that makes use-after-free silently "work" natively and
     * forces ASan-style tools to quarantine, paper P3).
     */
    uint64_t heapAlloc(uint64_t size);
    /** @return the freed size, or 0 when @p addr is not a live block. */
    uint64_t heapFree(uint64_t addr);
    uint64_t heapRealloc(uint64_t addr, uint64_t new_size);
    /** Size of the live block at @p addr, or 0. */
    uint64_t blockSize(uint64_t addr) const;
    const std::map<uint64_t, Block> &blocks() const { return blocks_; }

    // --- Stack -------------------------------------------------------------

    uint64_t stackPointer() const { return sp_; }
    void setStackPointer(uint64_t sp) { sp_ = sp; }
    /** Bump-allocate @p size bytes (16-aligned) on the stack. */
    uint64_t stackAlloc(uint64_t size);

    // --- Program data ------------------------------------------------------

    /**
     * Lay out all globals (with @p gap padding bytes between them — ASan
     * uses this for redzones) and apply their initializers.
     * @return address of each global, in module order.
     */
    std::vector<uint64_t> layoutGlobals(const Module &module, uint64_t gap);

    uint64_t globalAddress(const GlobalVariable *g) const;

    /** Function "addresses" for function pointers: id | functionTagBase. */
    static constexpr uint64_t functionTagBase = 0x4000'0000'0000'0000ull;
    static uint64_t functionAddress(unsigned id)
    {
        return functionTagBase + id;
    }
    static bool isFunctionAddress(uint64_t addr)
    {
        return addr >= functionTagBase;
    }
    static unsigned functionId(uint64_t addr)
    {
        return static_cast<unsigned>(addr - functionTagBase);
    }

    /** Build argv/envp in the args region; returns the array address. */
    uint64_t buildStringArray(const std::vector<std::string> &strings);

    /**
     * Build argv and envp the way the kernel does: both NULL-terminated
     * pointer arrays are adjacent, so reading past argv's terminator
     * yields valid environment-string pointers — the information leak of
     * paper Fig. 10.
     * @return {argv address, envp address}
     */
    std::pair<uint64_t, uint64_t>
    buildMainArgs(const std::vector<std::string> &argv_strings,
                  const std::vector<std::string> &env_strings);

  private:
    void applyInit(uint64_t addr, const Type *type, const Initializer &init);

    std::vector<uint8_t> globals_;
    std::vector<uint8_t> heap_;
    std::vector<uint8_t> stack_;
    std::vector<uint8_t> args_;
    uint64_t globalEnd_ = NativeLayout::globalBase;
    uint64_t heapEnd_ = NativeLayout::heapBase;
    uint64_t sp_ = NativeLayout::stackTop;
    uint64_t argsEnd_ = NativeLayout::argsBase;
    std::map<uint64_t, Block> blocks_;
    /// LIFO free lists per aligned size class: freed blocks are reused
    /// immediately and most-recently-freed first (the behaviour that
    /// defeats naive use-after-free detection, paper P3).
    std::map<uint64_t, std::vector<uint64_t>> freeLists_;
    std::map<const GlobalVariable *, uint64_t> globalAddrs_;
    ResourceGuard *guard_ = nullptr;
};

} // namespace sulong

#endif // MS_NATIVE_MEMORY_H
