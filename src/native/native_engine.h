/**
 * @file
 * The native execution engine: executes IR on the flat memory model with
 * no checks of its own — the baseline "compiled by Clang and run on the
 * machine" world of the paper. Instrumentation tools (ASan, Memcheck)
 * are NativeHooks plugged into this engine.
 */

#ifndef MS_NATIVE_NATIVE_ENGINE_H
#define MS_NATIVE_NATIVE_ENGINE_H

#include <memory>

#include "native/hooks.h"
#include "tools/engine.h"

namespace sulong
{

class NativeEngine : public Engine
{
  public:
    /**
     * @param name  display name ("Clang -O0", "ASan", ...)
     * @param hooks instrumentation runtime; may be null (plain execution)
     */
    NativeEngine(std::string name, std::shared_ptr<NativeHooks> hooks);
    explicit NativeEngine(std::string name = "Clang")
        : NativeEngine(std::move(name), nullptr)
    {}
    ~NativeEngine() override;

    std::string name() const override { return name_; }

    ExecutionResult run(const Module &module,
                        const std::vector<std::string> &args,
                        const std::string &stdin_data) override;

    uint64_t executedSteps() const { return guard_.steps(); }
    NativeHooks *hooks() const { return hooks_.get(); }

  private:
    struct Frame
    {
        std::vector<NValue> slots;
        uint64_t savedSp = 0;
        uint64_t vaSpill = 0;
        uint64_t vaCount = 0;
    };

    /// Cached intrinsic ids (avoids name comparisons on hot paths).
    enum class Intr : uint8_t
    {
        unknown, asanCheck, mallocFn, freeFn, callocFn, reallocFn,
        sysExit, sysWrite, sysGetchar, sysAllocSize,
        vaStart, vaArgPtr, vaEnd, vaCount,
        mSqrt, mSin, mCos, mTan, mAtan, mAtan2, mExp, mLog, mPow,
        mFloor, mCeil, mFabs, mFmod,
    };
    Intr intrinsicId(const Function *fn);

    NValue callFunction(const Function *fn, std::vector<NValue> args,
                        const std::vector<NValue> &varargs);
    NValue interpret(const Function *fn, Frame &frame);
    NValue evalOperand(const Value *v, Frame &frame);
    NValue execInstruction(const Instruction &inst, Frame &frame);
    NValue execCall(const Instruction &inst, Frame &frame);
    NValue callIntrinsic(const Function *fn, const Instruction *site,
                         std::vector<NValue> &args, Frame &frame);
    NValue loadFrom(uint64_t addr, const Type *type, const SourceLoc &loc);
    void storeTo(uint64_t addr, const Type *type, const NValue &v,
                 const SourceLoc &loc);
    void step();

    std::string name_;
    std::shared_ptr<NativeHooks> hooks_;
    bool checkAccesses_ = false;
    bool trackDefined_ = false;
    const Module *module_ = nullptr;
    std::unique_ptr<NativeMemory> mem_;
    GuestIO io_;
    /// Per-run resource accounting; the simulated memory and guest IO
    /// report into it by stable address.
    ResourceGuard guard_;
    std::map<const Function *, Intr> intrCache_;
};

} // namespace sulong

#endif // MS_NATIVE_NATIVE_ENGINE_H
