#include "native/native_engine.h"

#include <cmath>
#include <cstring>

namespace sulong
{

namespace
{

int64_t
safeFptosi(double v)
{
    if (std::isnan(v))
        return 0;
    if (v >= 9223372036854775807.0)
        return INT64_MAX;
    if (v <= -9223372036854775808.0)
        return INT64_MIN;
    return static_cast<int64_t>(v);
}

uint64_t
safeFptoui(double v)
{
    if (std::isnan(v) || v <= -1.0)
        return 0;
    if (v >= 18446744073709551615.0)
        return UINT64_MAX;
    return static_cast<uint64_t>(v);
}

/** Sign-extend @p bits-wide @p value. */
int64_t
sext(uint64_t value, unsigned bits)
{
    if (bits >= 64)
        return static_cast<int64_t>(value);
    uint64_t mask = (1ull << bits) - 1;
    value &= mask;
    if (value & (1ull << (bits - 1)))
        value |= ~mask;
    return static_cast<int64_t>(value);
}

uint64_t
zext(int64_t value, unsigned bits)
{
    if (bits >= 64)
        return static_cast<uint64_t>(value);
    return static_cast<uint64_t>(value) & ((1ull << bits) - 1);
}

} // namespace

NativeEngine::NativeEngine(std::string name,
                           std::shared_ptr<NativeHooks> hooks)
    : name_(std::move(name)), hooks_(std::move(hooks))
{}

NativeEngine::~NativeEngine() = default;

void
NativeEngine::step()
{
    guard_.onStep();
}

ExecutionResult
NativeEngine::run(const Module &module, const std::vector<std::string> &args,
                  const std::string &stdin_data)
{
    module_ = &module;
    guard_ = ResourceGuard(limits_, cancelToken_);
    mem_ = std::make_unique<NativeMemory>();
    mem_->setGuard(&guard_);
    io_ = GuestIO{};
    io_.input = stdin_data;
    io_.guard = &guard_;
    checkAccesses_ = hooks_ != nullptr && hooks_->checksEveryAccess();
    trackDefined_ = hooks_ != nullptr && hooks_->tracksDefinedness();

    ExecutionResult result;
    const Function *main_fn = module.findFunction("main");
    if (main_fn == nullptr || main_fn->isDeclaration()) {
        result.bug.kind = ErrorKind::engineError;
        result.bug.detail = "no main() function";
        return result;
    }

    try {
        if (hooks_ != nullptr)
            hooks_->onRunStart();
        uint64_t gap = hooks_ != nullptr ? hooks_->globalGap() : 0;
        std::vector<uint64_t> global_addrs = mem_->layoutGlobals(module, gap);

        std::vector<std::string> argv_strings;
        argv_strings.push_back("program");
        for (const auto &arg : args)
            argv_strings.push_back(arg);
        static const std::vector<std::string> env_strings = {
            "HOME=/home/user", "PATH=/usr/local/bin:/usr/bin",
            "SECRET_TOKEN=hunter2", "LANG=C",
        };
        auto [argv_addr, envp_addr] =
            mem_->buildMainArgs(argv_strings, env_strings);

        if (hooks_ != nullptr)
            hooks_->onStartup(*mem_, module, global_addrs);

        std::vector<NValue> main_args;
        if (main_fn->numArgs() >= 1) {
            main_args.push_back(NValue::makeInt(
                static_cast<int64_t>(argv_strings.size())));
        }
        if (main_fn->numArgs() >= 2)
            main_args.push_back(NValue::makeInt(
                static_cast<int64_t>(argv_addr)));
        if (main_fn->numArgs() >= 3)
            main_args.push_back(NValue::makeInt(
                static_cast<int64_t>(envp_addr)));

        NValue ret = callFunction(main_fn, std::move(main_args), {});
        result.exitCode = static_cast<int>(ret.i);
        if (hooks_ != nullptr)
            hooks_->reportLeaks(result.bug);
    } catch (const GuestExit &exit) {
        result.exitCode = exit.code();
        if (hooks_ != nullptr)
            hooks_->reportLeaks(result.bug);
    } catch (MemoryErrorException &error) {
        result.bug = error.report();
    } catch (const ResourceExhausted &limit) {
        result.termination = limit.kind();
        result.terminationDetail = limit.detail();
    } catch (const NativeTrap &trap) {
        result.bug.kind = trap.addr() < 4096 ? ErrorKind::nullDeref
                                             : ErrorKind::segfault;
        result.bug.access = trap.isWrite() ? AccessKind::write
                                           : AccessKind::read;
        result.bug.detail = "invalid access to address " +
            std::to_string(trap.addr());
    } catch (const EngineError &error) {
        result.bug.kind = ErrorKind::engineError;
        result.bug.detail = error.message();
    } catch (const std::exception &e) {
        // Anything else is a host-side failure; never let it escape the
        // engine boundary.
        result.termination = TerminationKind::hostFault;
        result.terminationDetail = std::string("host fault: ") + e.what();
    }
    result.output = std::move(io_.output);
    result.errOutput = std::move(io_.errOutput);
    io_.guard = nullptr;
    return result;
}

NValue
NativeEngine::callFunction(const Function *fn, std::vector<NValue> args,
                           const std::vector<NValue> &varargs)
{
    guard_.enterCall();

    Frame frame;
    frame.savedSp = mem_->stackPointer();
    frame.slots.resize(fn->numSlots());
    for (size_t i = 0; i < args.size() && i < frame.slots.size(); i++)
        frame.slots[i] = args[i];

    // Spill variadic arguments to the register-save-area analogue: AMD64
    // varargs prologues dump all argument registers, so the whole area
    // reads as initialized even past the real arguments (which is why
    // run-time tools cannot flag missing printf arguments).
    if (fn->isVarArg()) {
        uint64_t spill_size = std::max<uint64_t>(176, varargs.size() * 8);
        frame.vaSpill = mem_->stackAlloc(spill_size);
        frame.vaCount = varargs.size();
        // The register save area counts as written by the prologue (so
        // reading past the real arguments is never flagged)...
        if (trackDefined_)
            hooks_->storeDefined(*mem_, frame.vaSpill, spill_size, true);
        for (size_t i = 0; i < varargs.size(); i++) {
            // ...but each actual argument carries its own definedness.
            mem_->writeInt(frame.vaSpill + i * 8, 8,
                           static_cast<uint64_t>(varargs[i].i));
            if (trackDefined_) {
                hooks_->storeDefined(*mem_, frame.vaSpill + i * 8, 8,
                                     varargs[i].defined);
            }
        }
    }

    try {
        NValue result = interpret(fn, frame);
        if (hooks_ != nullptr && mem_->stackPointer() != frame.savedSp) {
            hooks_->onFrameExit(*mem_, mem_->stackPointer(),
                                frame.savedSp);
        }
        mem_->setStackPointer(frame.savedSp);
        guard_.leaveCall();
        return result;
    } catch (MemoryErrorException &error) {
        guard_.leaveCall();
        if (error.report().function.empty())
            error.report().function = fn->name();
        throw;
    } catch (...) {
        guard_.leaveCall();
        throw;
    }
}

NValue
NativeEngine::evalOperand(const Value *v, Frame &frame)
{
    switch (v->valueKind()) {
      case ValueKind::constantInt:
        return NValue::makeInt(
            static_cast<const ConstantInt *>(v)->value());
      case ValueKind::constantFP:
        return NValue::makeFP(static_cast<const ConstantFP *>(v)->value());
      case ValueKind::constantNull:
        return NValue::makeInt(0);
      case ValueKind::global:
        return NValue::makeInt(static_cast<int64_t>(mem_->globalAddress(
            static_cast<const GlobalVariable *>(v))));
      case ValueKind::function:
        return NValue::makeInt(
            static_cast<int64_t>(NativeMemory::functionAddress(
                static_cast<const Function *>(v)->id())));
      case ValueKind::argument:
        return frame.slots[static_cast<const Argument *>(v)->index()];
      case ValueKind::instruction:
        return frame.slots[static_cast<size_t>(
            static_cast<const Instruction *>(v)->slot())];
    }
    throw InternalError("bad operand kind");
}

NValue
NativeEngine::interpret(const Function *fn, Frame &frame)
{
    const BasicBlock *bb = fn->entry();
    size_t idx = 0;
    while (true) {
        const Instruction &inst = *bb->insts()[idx];
        step();
        switch (inst.op()) {
          case Opcode::br:
            bb = inst.target(0);
            idx = 0;
            continue;
          case Opcode::condbr: {
            NValue cond = evalOperand(inst.operand(0), frame);
            if (trackDefined_ && !cond.defined)
                hooks_->onUndefinedUse(inst.loc());
            bb = (cond.i & 1) != 0 ? inst.target(0) : inst.target(1);
            idx = 0;
            continue;
          }
          case Opcode::ret:
            if (inst.numOperands() == 1)
                return evalOperand(inst.operand(0), frame);
            return NValue{};
          case Opcode::unreachable_:
            throw EngineError("reached 'unreachable' in " + fn->name());
          default: {
            NValue v = execInstruction(inst, frame);
            if (inst.slot() >= 0)
                frame.slots[static_cast<size_t>(inst.slot())] = v;
            idx++;
            continue;
          }
        }
    }
}

NValue
NativeEngine::loadFrom(uint64_t addr, const Type *type,
                       const SourceLoc &loc)
{
    unsigned size = static_cast<unsigned>(type->size());
    if (checkAccesses_)
        hooks_->onLoad(*mem_, addr, size, loc);
    uint64_t bits = mem_->readInt(addr, size);
    NValue out;
    if (type->kind() == TypeKind::f32) {
        float f = 0;
        std::memcpy(&f, &bits, 4);
        out.f = f;
    } else if (type->kind() == TypeKind::f64) {
        std::memcpy(&out.f, &bits, 8);
    } else if (type->isInteger()) {
        out.i = sext(bits, type->intBits());
    } else {
        out.i = static_cast<int64_t>(bits);
    }
    if (trackDefined_)
        out.defined = hooks_->loadDefined(*mem_, addr, size);
    return out;
}

void
NativeEngine::storeTo(uint64_t addr, const Type *type, const NValue &v,
                      const SourceLoc &loc)
{
    unsigned size = static_cast<unsigned>(type->size());
    if (checkAccesses_)
        hooks_->onStore(*mem_, addr, size, loc);
    uint64_t bits;
    if (type->kind() == TypeKind::f32) {
        float f = static_cast<float>(v.f);
        uint32_t fb = 0;
        std::memcpy(&fb, &f, 4);
        bits = fb;
    } else if (type->kind() == TypeKind::f64) {
        std::memcpy(&bits, &v.f, 8);
    } else {
        bits = static_cast<uint64_t>(v.i);
    }
    mem_->writeInt(addr, size, bits);
    if (trackDefined_)
        hooks_->storeDefined(*mem_, addr, size, v.defined);
}

NValue
NativeEngine::execInstruction(const Instruction &inst, Frame &frame)
{
    switch (inst.op()) {
      case Opcode::alloca_: {
        uint64_t size = inst.accessType()->size();
        uint64_t rz = 0;
        if (hooks_ != nullptr &&
            hooks_->instruments(*inst.parent()->parent())) {
            rz = hooks_->allocaRedzone();
        }
        // Real frames are not tightly packed: keep 8 slack bytes above
        // each object (spill/padding space a compiler would leave).
        uint64_t total = size + 2 * rz + 8;
        uint64_t base = mem_->stackAlloc(total);
        uint64_t var = base + rz;
        if (hooks_ != nullptr) {
            if (rz > 0)
                hooks_->onAlloca(*mem_, base, var, size, total);
            hooks_->onStackAlloc(*mem_, base, total);
        }
        return NValue::makeInt(static_cast<int64_t>(var));
      }
      case Opcode::load: {
        NValue addr = evalOperand(inst.operand(0), frame);
        return loadFrom(static_cast<uint64_t>(addr.i), inst.accessType(),
                        inst.loc());
      }
      case Opcode::store: {
        NValue value = evalOperand(inst.operand(0), frame);
        NValue addr = evalOperand(inst.operand(1), frame);
        storeTo(static_cast<uint64_t>(addr.i), inst.accessType(), value,
                inst.loc());
        return NValue{};
      }
      case Opcode::gep: {
        NValue base = evalOperand(inst.operand(0), frame);
        int64_t offset = inst.gepConstOffset();
        NValue out = base;
        if (inst.numOperands() > 1) {
            NValue index = evalOperand(inst.operand(1), frame);
            offset += index.i * static_cast<int64_t>(inst.gepScale());
            out.defined = base.defined && index.defined;
        }
        out.i = base.i + offset;
        return out;
      }
      case Opcode::add: case Opcode::sub: case Opcode::mul:
      case Opcode::sdiv: case Opcode::udiv: case Opcode::srem:
      case Opcode::urem: case Opcode::and_: case Opcode::or_:
      case Opcode::xor_: case Opcode::shl: case Opcode::lshr:
      case Opcode::ashr: {
        NValue l = evalOperand(inst.operand(0), frame);
        NValue r = evalOperand(inst.operand(1), frame);
        unsigned width = inst.type()->intBits();
        uint64_t lz = zext(l.i, width);
        uint64_t rz2 = zext(r.i, width);
        int64_t out = 0;
        switch (inst.op()) {
          case Opcode::add: out = l.i + r.i; break;
          case Opcode::sub: out = l.i - r.i; break;
          case Opcode::mul:
            out = static_cast<int64_t>(
                static_cast<uint64_t>(l.i) * static_cast<uint64_t>(r.i));
            break;
          case Opcode::sdiv:
            if (r.i == 0)
                throw EngineError("integer division by zero");
            out = (l.i == INT64_MIN && r.i == -1) ? INT64_MIN : l.i / r.i;
            break;
          case Opcode::udiv:
            if (rz2 == 0)
                throw EngineError("integer division by zero");
            out = static_cast<int64_t>(lz / rz2);
            break;
          case Opcode::srem:
            if (r.i == 0)
                throw EngineError("integer division by zero");
            out = (l.i == INT64_MIN && r.i == -1) ? 0 : l.i % r.i;
            break;
          case Opcode::urem:
            if (rz2 == 0)
                throw EngineError("integer division by zero");
            out = static_cast<int64_t>(lz % rz2);
            break;
          case Opcode::and_: out = l.i & r.i; break;
          case Opcode::or_: out = l.i | r.i; break;
          case Opcode::xor_: out = l.i ^ r.i; break;
          case Opcode::shl:
            out = static_cast<int64_t>(lz << (rz2 & (width - 1)));
            break;
          case Opcode::lshr:
            out = static_cast<int64_t>(lz >> (rz2 & (width - 1)));
            break;
          case Opcode::ashr:
            out = sext(lz, width) >> (rz2 & (width - 1));
            break;
          default:
            break;
        }
        NValue v = NValue::makeInt(sext(static_cast<uint64_t>(out), width));
        v.defined = trackDefined_ ? hooks_->combineDefined(l, r)
                                  : (l.defined && r.defined);
        return v;
      }
      case Opcode::fadd: case Opcode::fsub: case Opcode::fmul:
      case Opcode::fdiv: case Opcode::frem: {
        NValue l = evalOperand(inst.operand(0), frame);
        NValue r = evalOperand(inst.operand(1), frame);
        bool single = inst.type()->kind() == TypeKind::f32;
        double out;
        if (single) {
            float lf = static_cast<float>(l.f);
            float rf = static_cast<float>(r.f);
            switch (inst.op()) {
              case Opcode::fadd: out = lf + rf; break;
              case Opcode::fsub: out = lf - rf; break;
              case Opcode::fmul: out = lf * rf; break;
              case Opcode::fdiv: out = lf / rf; break;
              default: out = std::fmod(lf, rf); break;
            }
        } else {
            switch (inst.op()) {
              case Opcode::fadd: out = l.f + r.f; break;
              case Opcode::fsub: out = l.f - r.f; break;
              case Opcode::fmul: out = l.f * r.f; break;
              case Opcode::fdiv: out = l.f / r.f; break;
              default: out = std::fmod(l.f, r.f); break;
            }
        }
        NValue v = NValue::makeFP(out);
        v.defined = trackDefined_ ? hooks_->combineDefined(l, r)
                                  : (l.defined && r.defined);
        return v;
      }
      case Opcode::fneg: {
        NValue v = evalOperand(inst.operand(0), frame);
        NValue out = NValue::makeFP(-v.f);
        out.defined = v.defined;
        return out;
      }
      case Opcode::icmp: {
        NValue l = evalOperand(inst.operand(0), frame);
        NValue r = evalOperand(inst.operand(1), frame);
        unsigned width = inst.operand(0)->type()->isPointer()
            ? 64 : inst.operand(0)->type()->intBits();
        int64_t ls = sext(static_cast<uint64_t>(l.i), width);
        int64_t rs = sext(static_cast<uint64_t>(r.i), width);
        uint64_t lu = zext(l.i, width);
        uint64_t ru = zext(r.i, width);
        bool out = false;
        switch (inst.intPred()) {
          case IntPred::eq: out = lu == ru; break;
          case IntPred::ne: out = lu != ru; break;
          case IntPred::slt: out = ls < rs; break;
          case IntPred::sle: out = ls <= rs; break;
          case IntPred::sgt: out = ls > rs; break;
          case IntPred::sge: out = ls >= rs; break;
          case IntPred::ult: out = lu < ru; break;
          case IntPred::ule: out = lu <= ru; break;
          case IntPred::ugt: out = lu > ru; break;
          case IntPred::uge: out = lu >= ru; break;
        }
        NValue v = NValue::makeInt(out ? 1 : 0);
        v.defined = trackDefined_ ? hooks_->combineDefined(l, r)
                                  : (l.defined && r.defined);
        return v;
      }
      case Opcode::fcmp: {
        NValue l = evalOperand(inst.operand(0), frame);
        NValue r = evalOperand(inst.operand(1), frame);
        bool ordered = !std::isnan(l.f) && !std::isnan(r.f);
        bool out = false;
        if (ordered) {
            switch (inst.floatPred()) {
              case FloatPred::oeq: out = l.f == r.f; break;
              case FloatPred::one: out = l.f != r.f; break;
              case FloatPred::olt: out = l.f < r.f; break;
              case FloatPred::ole: out = l.f <= r.f; break;
              case FloatPred::ogt: out = l.f > r.f; break;
              case FloatPred::oge: out = l.f >= r.f; break;
            }
        }
        NValue v = NValue::makeInt(out ? 1 : 0);
        v.defined = trackDefined_ ? hooks_->combineDefined(l, r)
                                  : (l.defined && r.defined);
        return v;
      }
      case Opcode::trunc: case Opcode::sext: {
        NValue v = evalOperand(inst.operand(0), frame);
        NValue out = NValue::makeInt(
            sext(static_cast<uint64_t>(v.i), inst.type()->intBits()));
        out.defined = v.defined;
        return out;
      }
      case Opcode::zext: {
        NValue v = evalOperand(inst.operand(0), frame);
        unsigned from = inst.operand(0)->type()->intBits();
        NValue out = NValue::makeInt(
            static_cast<int64_t>(zext(v.i, from)));
        out.defined = v.defined;
        return out;
      }
      case Opcode::fptosi: {
        NValue v = evalOperand(inst.operand(0), frame);
        NValue out = NValue::makeInt(
            sext(static_cast<uint64_t>(safeFptosi(v.f)),
                 inst.type()->intBits()));
        out.defined = v.defined;
        return out;
      }
      case Opcode::fptoui: {
        NValue v = evalOperand(inst.operand(0), frame);
        NValue out = NValue::makeInt(
            static_cast<int64_t>(safeFptoui(v.f)));
        out.defined = v.defined;
        return out;
      }
      case Opcode::sitofp: {
        NValue v = evalOperand(inst.operand(0), frame);
        unsigned from = inst.operand(0)->type()->intBits();
        NValue out = NValue::makeFP(
            static_cast<double>(sext(static_cast<uint64_t>(v.i), from)));
        out.defined = v.defined;
        return out;
      }
      case Opcode::uitofp: {
        NValue v = evalOperand(inst.operand(0), frame);
        unsigned from = inst.operand(0)->type()->intBits();
        NValue out = NValue::makeFP(static_cast<double>(zext(v.i, from)));
        out.defined = v.defined;
        return out;
      }
      case Opcode::fpext: case Opcode::fptrunc: {
        NValue v = evalOperand(inst.operand(0), frame);
        NValue out = NValue::makeFP(
            inst.op() == Opcode::fptrunc
                ? static_cast<double>(static_cast<float>(v.f)) : v.f);
        out.defined = v.defined;
        return out;
      }
      case Opcode::ptrtoint: case Opcode::inttoptr: {
        // Pointers already are integers in this model.
        return evalOperand(inst.operand(0), frame);
      }
      case Opcode::select: {
        NValue cond = evalOperand(inst.operand(0), frame);
        if (trackDefined_ && !cond.defined)
            hooks_->onUndefinedUse(inst.loc());
        return evalOperand(inst.operand((cond.i & 1) != 0 ? 1 : 2), frame);
      }
      case Opcode::call:
        return execCall(inst, frame);
      default:
        throw InternalError("terminator reached execInstruction");
    }
}

NValue
NativeEngine::execCall(const Instruction &inst, Frame &frame)
{
    const Function *callee = nullptr;
    const Value *callee_v = inst.operand(0);
    if (callee_v->valueKind() == ValueKind::function) {
        callee = static_cast<const Function *>(callee_v);
        // Fast path for the instrumentation intrinsic: it runs before
        // every load/store of instrumented code, so skip the generic
        // call machinery.
        if (callee->isIntrinsic() &&
            intrinsicId(callee) == Intr::asanCheck) {
            if (hooks_ != nullptr) {
                NValue ptr = evalOperand(inst.operand(1), frame);
                NValue size = evalOperand(inst.operand(2), frame);
                NValue is_write = evalOperand(inst.operand(3), frame);
                hooks_->check(*mem_, static_cast<uint64_t>(ptr.i),
                              static_cast<unsigned>(size.i),
                              is_write.i != 0, inst.loc());
            }
            return NValue{};
        }
    } else {
        NValue target = evalOperand(callee_v, frame);
        uint64_t addr = static_cast<uint64_t>(target.i);
        if (!NativeMemory::isFunctionAddress(addr))
            throw NativeTrap(addr, false);
        unsigned id = NativeMemory::functionId(addr);
        if (id >= module_->functions().size())
            throw NativeTrap(addr, false);
        callee = module_->functionById(id);
    }

    std::vector<NValue> args;
    args.reserve(inst.numOperands() - 1);
    for (size_t i = 1; i < inst.numOperands(); i++)
        args.push_back(evalOperand(inst.operand(i), frame));

    if (callee->isDeclaration()) {
        if (callee->isIntrinsic())
            return callIntrinsic(callee, &inst, args, frame);
        throw EngineError("call to undefined function '" + callee->name() +
                          "'");
    }

    // libc interceptors (compile-time instrumentation tools wrap known
    // library calls with argument checks).
    if (hooks_ != nullptr && hooks_->interceptsLibc())
        hooks_->onLibcCall(*mem_, callee->name(), args, inst.loc());

    size_t fixed = callee->numArgs();
    std::vector<NValue> varargs;
    if (args.size() > fixed) {
        varargs.assign(args.begin() + static_cast<long>(fixed), args.end());
        args.resize(fixed);
        // Encode float varargs as raw bits for the stack spill.
        for (size_t j = 0; j < varargs.size(); j++) {
            const Type *arg_type = inst.operand(1 + fixed + j)->type();
            if (arg_type->isFloat()) {
                double d = varargs[j].f;
                if (arg_type->kind() == TypeKind::f32) {
                    float f = static_cast<float>(d);
                    uint32_t fb = 0;
                    std::memcpy(&fb, &f, 4);
                    varargs[j].i = fb;
                } else {
                    std::memcpy(&varargs[j].i, &d, 8);
                }
            }
        }
    }
    return callFunction(callee, std::move(args), varargs);
}

NativeEngine::Intr
NativeEngine::intrinsicId(const Function *fn)
{
    auto it = intrCache_.find(fn);
    if (it != intrCache_.end())
        return it->second;
    static const std::map<std::string, Intr> table = {
        {"__asan_check", Intr::asanCheck},
        {"malloc", Intr::mallocFn}, {"free", Intr::freeFn},
        {"calloc", Intr::callocFn}, {"realloc", Intr::reallocFn},
        {"__sys_exit", Intr::sysExit}, {"__sys_write", Intr::sysWrite},
        {"__sys_getchar", Intr::sysGetchar},
        {"__sys_alloc_size", Intr::sysAllocSize},
        {"__va_start", Intr::vaStart}, {"__va_arg_ptr", Intr::vaArgPtr},
        {"__va_end", Intr::vaEnd}, {"__va_count", Intr::vaCount},
        {"sqrt", Intr::mSqrt}, {"sin", Intr::mSin}, {"cos", Intr::mCos},
        {"tan", Intr::mTan}, {"atan", Intr::mAtan},
        {"atan2", Intr::mAtan2}, {"exp", Intr::mExp}, {"log", Intr::mLog},
        {"pow", Intr::mPow}, {"floor", Intr::mFloor},
        {"ceil", Intr::mCeil}, {"fabs", Intr::mFabs},
        {"fmod", Intr::mFmod},
    };
    auto found = table.find(fn->name());
    Intr id = found == table.end() ? Intr::unknown : found->second;
    intrCache_[fn] = id;
    return id;
}

NValue
NativeEngine::callIntrinsic(const Function *fn, const Instruction *site,
                            std::vector<NValue> &args, Frame &frame)
{
    switch (intrinsicId(fn)) {
      case Intr::asanCheck:
        if (hooks_ != nullptr) {
            hooks_->check(*mem_, static_cast<uint64_t>(args[0].i),
                          static_cast<unsigned>(args[1].i),
                          args[2].i != 0,
                          site != nullptr ? site->loc() : SourceLoc{});
        }
        return NValue{};
      case Intr::mallocFn:
        return NValue::makeInt(static_cast<int64_t>(
            hooks_ != nullptr
                ? hooks_->onMalloc(*mem_, static_cast<uint64_t>(args[0].i))
                : mem_->heapAlloc(static_cast<uint64_t>(args[0].i))));
      case Intr::callocFn: {
        uint64_t size = static_cast<uint64_t>(args[0].i) *
            static_cast<uint64_t>(args[1].i);
        uint64_t addr = hooks_ != nullptr ? hooks_->onMalloc(*mem_, size)
                                          : mem_->heapAlloc(size);
        std::vector<uint8_t> zeros(size, 0);
        mem_->writeBytes(addr, zeros.data(), size);
        if (trackDefined_)
            hooks_->storeDefined(*mem_, addr, static_cast<unsigned>(size),
                                 true);
        return NValue::makeInt(static_cast<int64_t>(addr));
      }
      case Intr::reallocFn: {
        uint64_t addr = static_cast<uint64_t>(args[0].i);
        uint64_t size = static_cast<uint64_t>(args[1].i);
        return NValue::makeInt(static_cast<int64_t>(
            hooks_ != nullptr ? hooks_->onRealloc(*mem_, addr, size)
                              : mem_->heapRealloc(addr, size)));
      }
      case Intr::freeFn: {
        uint64_t addr = static_cast<uint64_t>(args[0].i);
        if (hooks_ != nullptr)
            hooks_->onFree(*mem_, addr,
                           site != nullptr ? site->loc() : SourceLoc{});
        else if (addr != 0)
            mem_->heapFree(addr);
        return NValue{};
      }
      case Intr::sysExit:
        throw GuestExit(static_cast<int>(args[0].i));
      case Intr::sysWrite: {
        int fd = static_cast<int>(args[0].i);
        uint64_t buf = static_cast<uint64_t>(args[1].i);
        uint64_t len = static_cast<uint64_t>(args[2].i);
        if (checkAccesses_ && len > 0) {
            hooks_->onLoad(*mem_, buf, static_cast<unsigned>(len),
                           site != nullptr ? site->loc() : SourceLoc{});
        }
        std::string data(len, '\0');
        mem_->readBytes(buf, data.data(), len);
        io_.write(fd, data.data(), data.size());
        return NValue::makeInt(static_cast<int64_t>(len));
      }
      case Intr::sysGetchar:
        return NValue::makeInt(io_.getChar());
      case Intr::sysAllocSize:
        return NValue::makeInt(static_cast<int64_t>(
            mem_->blockSize(static_cast<uint64_t>(args[0].i))));
      case Intr::vaStart: {
        uint64_t desc = mem_->stackAlloc(16);
        mem_->writeInt(desc, 8, frame.vaSpill);
        mem_->writeInt(desc + 8, 8, 0);
        if (trackDefined_)
            hooks_->storeDefined(*mem_, desc, 16, true);
        return NValue::makeInt(static_cast<int64_t>(desc));
      }
      case Intr::vaArgPtr: {
        uint64_t desc = static_cast<uint64_t>(args[0].i);
        uint64_t base = mem_->readInt(desc, 8);
        uint64_t index = mem_->readInt(desc + 8, 8);
        mem_->writeInt(desc + 8, 8, index + 1);
        // No bounds check: reading past the register save area silently
        // yields stack garbage, exactly like the real machine.
        return NValue::makeInt(static_cast<int64_t>(base + index * 8));
      }
      case Intr::vaEnd:
        return NValue{};
      case Intr::vaCount:
        return NValue::makeInt(static_cast<int64_t>(frame.vaCount));
      case Intr::mSqrt: return NValue::makeFP(std::sqrt(args[0].f));
      case Intr::mSin: return NValue::makeFP(std::sin(args[0].f));
      case Intr::mCos: return NValue::makeFP(std::cos(args[0].f));
      case Intr::mTan: return NValue::makeFP(std::tan(args[0].f));
      case Intr::mAtan: return NValue::makeFP(std::atan(args[0].f));
      case Intr::mAtan2:
        return NValue::makeFP(std::atan2(args[0].f, args[1].f));
      case Intr::mExp: return NValue::makeFP(std::exp(args[0].f));
      case Intr::mLog: return NValue::makeFP(std::log(args[0].f));
      case Intr::mPow:
        return NValue::makeFP(std::pow(args[0].f, args[1].f));
      case Intr::mFloor: return NValue::makeFP(std::floor(args[0].f));
      case Intr::mCeil: return NValue::makeFP(std::ceil(args[0].f));
      case Intr::mFabs: return NValue::makeFP(std::fabs(args[0].f));
      case Intr::mFmod:
        return NValue::makeFP(std::fmod(args[0].f, args[1].f));
      case Intr::unknown:
        break;
    }
    throw EngineError("unknown intrinsic '" + fn->name() + "'");
}

} // namespace sulong
