#include "support/thread_pool.h"

#include <algorithm>

namespace sulong
{

unsigned
ThreadPool::hardwareWorkers()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = hardwareWorkers();
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; i++)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this]() { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            activeTasks_++;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            activeTasks_--;
            if (activeTasks_ == 0 && queue_.empty())
                idle_.notify_all();
        }
    }
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock,
               [this]() { return queue_.empty() && activeTasks_ == 0; });
}

size_t
ThreadPool::pendingTasks()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

} // namespace sulong
