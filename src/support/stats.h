/**
 * @file
 * Small summary-statistics helpers used by the benchmark harnesses to
 * print the box-plot style numbers of Fig. 16 and the timing tables.
 */

#ifndef MS_SUPPORT_STATS_H
#define MS_SUPPORT_STATS_H

#include <string>
#include <vector>

namespace sulong
{

/** Five-number summary plus mean over a sample vector. */
struct Summary
{
    double min = 0;
    double q1 = 0;
    double median = 0;
    double q3 = 0;
    double max = 0;
    double mean = 0;
    size_t count = 0;

    /** Render as "median [q1, q3] (min..max)". */
    std::string toString(int precision = 3) const;
};

/** Compute a Summary; an empty input yields an all-zero summary. */
Summary summarize(std::vector<double> samples);

/** Geometric mean; empty input yields 0, non-positive values are skipped. */
double geomean(const std::vector<double> &samples);

} // namespace sulong

#endif // MS_SUPPORT_STATS_H
