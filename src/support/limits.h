/**
 * @file
 * Resource governance for guest execution.
 *
 * The paper's pitch is that a managed execution model survives
 * arbitrarily buggy C programs; this header makes the *harness* survive
 * them too. Every engine runs under a ResourceGuard that meters
 * interpreter steps, call depth, guest heap bytes and allocation count,
 * guest output bytes, a wall-clock deadline, and a cooperative
 * cancellation token, and converts exhaustion into a structured
 * TerminationKind instead of wedging or OOMing the host (cf.
 * "Introspection for C": limits as first-class runtime state).
 */

#ifndef MS_SUPPORT_LIMITS_H
#define MS_SUPPORT_LIMITS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "support/error.h"

namespace sulong
{

/**
 * Per-run resource limits shared by all engines. 0 always means
 * "unlimited" so a default-constructed value only keeps the two
 * protections every run needs (steps and call depth).
 */
struct ResourceLimits
{
    /// Maximum number of executed IR instructions (0 = unlimited).
    uint64_t maxSteps = 500'000'000;
    /// Maximum guest call depth. Guest calls nest host-interpreter
    /// frames, so this also protects the host stack (0 = unlimited).
    unsigned maxCallDepth = 3'000;
    /// Maximum live guest heap bytes (0 = unlimited).
    uint64_t maxHeapBytes = 0;
    /// Maximum guest heap allocations per run (0 = unlimited).
    uint64_t maxHeapAllocations = 0;
    /// Maximum bytes the guest may write to stdout+stderr combined
    /// (0 = unlimited).
    uint64_t maxOutputBytes = 0;
    /// Wall-clock budget for one run in milliseconds, checked
    /// cooperatively on the interpreter step path (0 = unlimited).
    uint64_t deadlineMs = 0;
};

/**
 * Cooperative cancellation. Copies share one flag, so a watchdog (or any
 * other thread) can cancel a run by keeping a copy of the token handed
 * to the engine; the engine polls it on the step path.
 */
class CancellationToken
{
  public:
    CancellationToken()
        : flag_(std::make_shared<std::atomic<bool>>(false))
    {}

    void cancel() { flag_->store(true, std::memory_order_relaxed); }
    bool cancelled() const
    {
        return flag_->load(std::memory_order_relaxed);
    }

  private:
    std::shared_ptr<std::atomic<bool>> flag_;
};

/**
 * Raised when a ResourceGuard limit trips. Engines catch it at the
 * run() boundary and report it as ExecutionResult::termination — never
 * as a guest bug and never as ErrorKind::engineError.
 */
class ResourceExhausted
{
  public:
    ResourceExhausted(TerminationKind kind, std::string detail)
        : kind_(kind), detail_(std::move(detail))
    {}

    TerminationKind kind() const { return kind_; }
    const std::string &detail() const { return detail_; }

  private:
    TerminationKind kind_;
    std::string detail_;
};

/**
 * Per-run accounting against a ResourceLimits. One guard lives inside
 * each engine and is reset per run; the heap, the IO plumbing, and the
 * interpreter step paths all report into it.
 */
class ResourceGuard
{
  public:
    ResourceGuard() : ResourceGuard(ResourceLimits{}, CancellationToken{})
    {}
    ResourceGuard(const ResourceLimits &limits, CancellationToken token);

    /// One executed IR instruction. Checks the step limit every step and
    /// the deadline/cancellation token every few thousand steps.
    void
    onStep()
    {
        steps_++;
        if (limits_.maxSteps != 0 && steps_ > limits_.maxSteps)
            exhausted(TerminationKind::stepLimit,
                      "step limit of " + std::to_string(limits_.maxSteps) +
                          " instructions exceeded");
        if ((steps_ & interruptMask) == 1)
            checkInterrupts();
    }

    /**
     * Charge a batch of @p n instructions at once (tier-3 superblock
     * heads). Returns false — charging *nothing* — when the batch would
     * cross the step limit: the caller must fall back to per-step
     * accounting (deopt to a per-op tier) so the limit trips at exactly
     * the same instruction as tier-1/tier-2 would trip it. Polls
     * interrupts when the batch crosses a 4096-step boundary, matching
     * onStep's cadence.
     */
    bool
    onSteps(uint64_t n)
    {
        uint64_t next = steps_ + n;
        if (limits_.maxSteps != 0 && next > limits_.maxSteps)
            return false;
        bool poll = ((steps_ ^ next) >> 12) != 0;
        steps_ = next;
        if (poll)
            checkInterrupts();
        return true;
    }

    /// Return @p n not-yet-executed instructions from a batch charged
    /// with onSteps (exception or deopt mid-superblock).
    void uncharge(uint64_t n) { steps_ -= n; }

    /// Guest call entry/exit (the host interpreter recurses with it).
    void
    enterCall()
    {
        if (limits_.maxCallDepth != 0 && ++depth_ > limits_.maxCallDepth) {
            depth_--;
            exhausted(TerminationKind::stackLimit,
                      "guest stack overflow (call depth limit of " +
                          std::to_string(limits_.maxCallDepth) + ")");
        }
    }
    void leaveCall() { depth_--; }

    /// Guest heap traffic (live bytes + total allocation count).
    void onAlloc(uint64_t bytes);
    void
    onFree(uint64_t bytes)
    {
        heapBytes_ -= bytes > heapBytes_ ? heapBytes_ : bytes;
    }

    /// Guest writes to stdout/stderr.
    void onOutput(uint64_t bytes);

    /// Deadline + cancellation poll (also called periodically by
    /// onStep); throws ResourceExhausted when either tripped.
    void checkInterrupts();

    uint64_t steps() const { return steps_; }
    unsigned depth() const { return depth_; }
    uint64_t heapBytes() const { return heapBytes_; }
    uint64_t allocationCount() const { return allocations_; }
    uint64_t outputBytes() const { return outputBytes_; }
    const ResourceLimits &limits() const { return limits_; }

  private:
    /// Poll wall clock / token once every 4096 steps: cheap enough for
    /// the hot path, frequent enough to cancel within microseconds.
    static constexpr uint64_t interruptMask = 0xFFF;

    [[noreturn]] void exhausted(TerminationKind kind, std::string detail);

    ResourceLimits limits_;
    CancellationToken token_;
    std::chrono::steady_clock::time_point deadline_;
    bool hasDeadline_ = false;
    uint64_t steps_ = 0;
    unsigned depth_ = 0;
    uint64_t heapBytes_ = 0;
    uint64_t allocations_ = 0;
    uint64_t outputBytes_ = 0;
};

} // namespace sulong

#endif // MS_SUPPORT_LIMITS_H
