#include "support/string_utils.h"

#include <algorithm>
#include <cctype>

namespace sulong
{

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            return out;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

bool
containsIgnoreCase(std::string_view text, std::string_view needle)
{
    if (needle.empty())
        return true;
    std::string lower_text = toLower(text);
    std::string lower_needle = toLower(needle);
    return lower_text.find(lower_needle) != std::string::npos;
}

std::string_view
trim(std::string_view text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
        begin++;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
        end--;
    return text.substr(begin, end - begin);
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); i++) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
padLeft(std::string_view text, size_t width)
{
    std::string out(text);
    if (out.size() < width)
        out.insert(0, width - out.size(), ' ');
    return out;
}

std::string
padRight(std::string_view text, size_t width)
{
    std::string out(text);
    if (out.size() < width)
        out.append(width - out.size(), ' ');
    return out;
}

bool
parseUint64Strict(std::string_view text, uint64_t *out, std::string *error)
{
    auto fail = [error](const char *why) {
        if (error != nullptr)
            *error = why;
        return false;
    };
    if (text.empty())
        return fail("empty value");
    if (text[0] == '-')
        return fail("negative value");
    if (text[0] == '+')
        return fail("explicit sign not accepted");
    uint64_t value = 0;
    for (size_t i = 0; i < text.size(); i++) {
        char c = text[i];
        if (c < '0' || c > '9') {
            return fail(i == 0 ? "not a number"
                               : "trailing garbage after digits");
        }
        uint64_t digit = static_cast<uint64_t>(c - '0');
        if (value > (UINT64_MAX - digit) / 10)
            return fail("overflows uint64");
        value = value * 10 + digit;
    }
    *out = value;
    return true;
}

} // namespace sulong
