/**
 * @file
 * String helpers shared across modules.
 */

#ifndef MS_SUPPORT_STRING_UTILS_H
#define MS_SUPPORT_STRING_UTILS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sulong
{

/** Split @p text on @p sep; keeps empty fields. */
std::vector<std::string> split(std::string_view text, char sep);

/** @return true if @p text contains @p needle (case-insensitive). */
bool containsIgnoreCase(std::string_view text, std::string_view needle);

/** @return lower-cased copy of @p text (ASCII only). */
std::string toLower(std::string_view text);

/** @return @p text with leading/trailing whitespace removed. */
std::string_view trim(std::string_view text);

/** Join @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** Left-pad @p text with spaces to @p width. */
std::string padLeft(std::string_view text, size_t width);

/** Right-pad @p text with spaces to @p width. */
std::string padRight(std::string_view text, size_t width);

/**
 * Strict decimal uint64 parse: the whole of @p text must be digits (an
 * optional leading '+' is rejected too — flag values are plain counts),
 * with no leading/trailing garbage, no sign, and no overflow past
 * uint64. This is the one parser behind every numeric command-line
 * flag (driver, benches, daemon), so "--max-steps=1e9",
 * "--heap-limit=-1", and "--deadline-ms=99999999999999999999999" all
 * fail loudly instead of silently truncating or wrapping.
 *
 * @param error if non-null, receives a human-readable reason on failure
 *        ("empty value", "trailing garbage ...", "negative value",
 *        "overflows uint64").
 * @return true and sets @p out on success; false leaves @p out alone.
 */
bool parseUint64Strict(std::string_view text, uint64_t *out,
                       std::string *error = nullptr);

} // namespace sulong

#endif // MS_SUPPORT_STRING_UTILS_H
