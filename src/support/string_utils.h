/**
 * @file
 * String helpers shared across modules.
 */

#ifndef MS_SUPPORT_STRING_UTILS_H
#define MS_SUPPORT_STRING_UTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace sulong
{

/** Split @p text on @p sep; keeps empty fields. */
std::vector<std::string> split(std::string_view text, char sep);

/** @return true if @p text contains @p needle (case-insensitive). */
bool containsIgnoreCase(std::string_view text, std::string_view needle);

/** @return lower-cased copy of @p text (ASCII only). */
std::string toLower(std::string_view text);

/** @return @p text with leading/trailing whitespace removed. */
std::string_view trim(std::string_view text);

/** Join @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** Left-pad @p text with spaces to @p width. */
std::string padLeft(std::string_view text, size_t width);

/** Right-pad @p text with spaces to @p width. */
std::string padRight(std::string_view text, size_t width);

} // namespace sulong

#endif // MS_SUPPORT_STRING_UTILS_H
