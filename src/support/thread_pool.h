/**
 * @file
 * A fixed-size worker pool with a FIFO job queue and futures-based
 * results.
 *
 * This is the concurrency primitive behind the batch-evaluation harness
 * (src/tools/batch_runner.h): the paper's whole evaluation is an
 * embarrassingly parallel matrix of (program, tool) cells, so the pool
 * only needs plain fire-and-collect semantics — no work stealing, no
 * priorities. Tasks start in submission order (FIFO); results travel
 * through std::future, which also propagates exceptions to the caller.
 *
 * Destruction drains the queue: every task submitted before the
 * destructor runs is executed, so shutting down under load never loses
 * work.
 */

#ifndef MS_SUPPORT_THREAD_POOL_H
#define MS_SUPPORT_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace sulong
{

class ThreadPool
{
  public:
    /** Start @p workers threads; 0 means hardwareWorkers(). */
    explicit ThreadPool(unsigned workers = 0);

    /** Executes all queued tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker count suggested by the host (at least 1). */
    static unsigned hardwareWorkers();

    unsigned workerCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Enqueue @p fn and return a future for its result. An exception
     * thrown by the task is captured and rethrown by future::get().
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>>
    {
        using Result = std::invoke_result_t<std::decay_t<Fn>>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> result = task->get_future();
        post([task]() { (*task)(); });
        return result;
    }

    /** Block until the queue is empty and no task is running. */
    void waitIdle();

    /** Tasks queued but not yet started (for tests/monitoring). */
    size_t pendingTasks();

  private:
    void post(std::function<void()> task);
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    unsigned activeTasks_ = 0;
    bool stopping_ = false;
};

} // namespace sulong

#endif // MS_SUPPORT_THREAD_POOL_H
