/**
 * @file
 * Deterministic fault injection for chaos testing the harness.
 *
 * The batch runner (and any other subsystem that wants coverage of its
 * failure paths) calls FaultInjector::at("site") at named points; rules
 * installed by a test then fire host allocation failures, forced
 * exceptions, or artificial delays at exactly those sites. Decisions are
 * a pure function of (seed, site, visit index), so a parallel chaos run
 * injects the same faults into the same jobs as a serial one — which is
 * what lets the chaos suite assert bit-identical batch reports across
 * worker counts.
 */

#ifndef MS_SUPPORT_FAULT_H
#define MS_SUPPORT_FAULT_H

#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace sulong
{

/** Thrown by FaultInjector rules of kind hostException. */
class InjectedFault : public std::runtime_error
{
  public:
    explicit InjectedFault(const std::string &what)
        : std::runtime_error(what)
    {}
};

class FaultInjector
{
  public:
    /** What a rule does when it fires. */
    enum class Action : uint8_t
    {
        /// Throw std::bad_alloc (simulated host OOM).
        allocFailure,
        /// Throw InjectedFault (a harness bug escaping a job).
        hostException,
        /// Sleep for delayMs (a stuck job, for watchdog tests).
        delay,
    };

    struct Rule
    {
        /// Site the rule applies to; "" matches every site.
        std::string site;
        /// Match any site starting with @p site instead of exactly.
        /// The daemon's chaos flags use this to target one site family
        /// ("service.read/" hits service.read/1, service.read/2, ...)
        /// across dynamically numbered connections and jobs.
        bool sitePrefix = false;
        Action action = Action::hostException;
        /// Probability of firing per visit, decided deterministically
        /// from (seed, site, visit index).
        double probability = 1.0;
        /// Fire at most this many times per site (0 = unlimited).
        unsigned maxFirings = 0;
        /// Sleep duration for Action::delay.
        unsigned delayMs = 0;
    };

    explicit FaultInjector(uint64_t seed = 0) : seed_(seed) {}

    void addRule(Rule rule);

    /**
     * Report reaching @p site. May throw std::bad_alloc or
     * InjectedFault, or sleep, according to the installed rules; a
     * no-op (beyond counting) when nothing matches.
     */
    void at(const std::string &site);

    /** Times @p site was reached / times a rule fired there. */
    uint64_t visits(const std::string &site) const;
    uint64_t firings(const std::string &site) const;

    /** Aggregates over every site starting with @p prefix (chaos
     *  accounting across per-connection/per-job site families). */
    uint64_t visitsWithPrefix(const std::string &prefix) const;
    uint64_t firingsWithPrefix(const std::string &prefix) const;

  private:
    /** Deterministic uniform [0,1) draw for one (site, visit) pair. */
    double draw(const std::string &site, uint64_t visit) const;

    uint64_t seed_;
    mutable std::mutex mutex_;
    std::vector<Rule> rules_;
    std::map<std::string, uint64_t> visits_;
    /// Keyed by (rule index, site) so per-site firing caps stay exact
    /// even for wildcard rules.
    std::map<std::pair<size_t, std::string>, uint64_t> ruleFirings_;
    std::map<std::string, uint64_t> firings_;
};

} // namespace sulong

#endif // MS_SUPPORT_FAULT_H
