/**
 * @file
 * Source locations and compile-time diagnostics for the mini-C front end.
 */

#ifndef MS_SUPPORT_DIAGNOSTICS_H
#define MS_SUPPORT_DIAGNOSTICS_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace sulong
{

/** A position in a mini-C source file. */
struct SourceLoc
{
    /// Logical file name ("<corpus:oob-stack-01>", "libc/string.c", ...).
    std::string file;
    uint32_t line = 0;
    uint32_t column = 0;

    std::string toString() const;
    bool valid() const { return line != 0; }
};

/** Severity of a diagnostic message. */
enum class DiagSeverity : uint8_t
{
    note,
    warning,
    error,
};

/** One diagnostic message emitted during compilation. */
struct Diagnostic
{
    DiagSeverity severity = DiagSeverity::error;
    SourceLoc loc;
    std::string message;

    std::string toString() const;
};

/**
 * Collects diagnostics during lexing, parsing, sema, and codegen.
 *
 * Unlike a production compiler we keep this intentionally simple: errors
 * are recorded and compilation continues where recovery is easy; callers
 * check hasErrors() before using the produced module.
 */
class DiagnosticEngine
{
  public:
    void report(DiagSeverity severity, const SourceLoc &loc,
                std::string message);

    void error(const SourceLoc &loc, std::string message)
    {
        report(DiagSeverity::error, loc, std::move(message));
    }

    void warning(const SourceLoc &loc, std::string message)
    {
        report(DiagSeverity::warning, loc, std::move(message));
    }

    bool hasErrors() const { return numErrors_ > 0; }
    size_t errorCount() const { return numErrors_; }
    size_t warningCount() const { return numWarnings_; }
    const std::vector<Diagnostic> &messages() const { return messages_; }

    /** All diagnostics joined by newlines (for test assertions). */
    std::string dump() const;

  private:
    std::vector<Diagnostic> messages_;
    size_t numErrors_ = 0;
    size_t numWarnings_ = 0;
};

/** Thrown for internal invariant violations (bugs in this repo itself). */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &what)
        : std::logic_error("internal error: " + what)
    {}
};

} // namespace sulong

#endif // MS_SUPPORT_DIAGNOSTICS_H
