#include "support/error.h"

#include <sstream>

namespace sulong
{

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::none: return "none";
      case ErrorKind::outOfBounds: return "out-of-bounds";
      case ErrorKind::useAfterFree: return "use-after-free";
      case ErrorKind::doubleFree: return "double-free";
      case ErrorKind::invalidFree: return "invalid-free";
      case ErrorKind::nullDeref: return "null-dereference";
      case ErrorKind::varargs: return "varargs";
      case ErrorKind::typeError: return "type-error";
      case ErrorKind::uninitRead: return "uninitialized-read";
      case ErrorKind::memoryLeak: return "memory-leak";
      case ErrorKind::segfault: return "segfault";
      case ErrorKind::engineError: return "engine-error";
    }
    return "invalid";
}

const char *
terminationKindName(TerminationKind kind)
{
    switch (kind) {
      case TerminationKind::normal: return "normal";
      case TerminationKind::stepLimit: return "step-limit";
      case TerminationKind::stackLimit: return "stack-limit";
      case TerminationKind::heapLimit: return "heap-limit";
      case TerminationKind::outputLimit: return "output-limit";
      case TerminationKind::timeout: return "timeout";
      case TerminationKind::cancelled: return "cancelled";
      case TerminationKind::hostFault: return "host-fault";
    }
    return "invalid";
}

const char *
accessKindName(AccessKind kind)
{
    switch (kind) {
      case AccessKind::read: return "read";
      case AccessKind::write: return "write";
      case AccessKind::free: return "free";
    }
    return "invalid";
}

const char *
storageKindName(StorageKind kind)
{
    switch (kind) {
      case StorageKind::stack: return "stack";
      case StorageKind::heap: return "heap";
      case StorageKind::global: return "global";
      case StorageKind::mainArgs: return "main-args";
      case StorageKind::unknown: return "unknown";
    }
    return "invalid";
}

const char *
boundsDirectionName(BoundsDirection direction)
{
    switch (direction) {
      case BoundsDirection::underflow: return "underflow";
      case BoundsDirection::overflow: return "overflow";
      case BoundsDirection::unknown: return "unknown";
    }
    return "invalid";
}

std::string
BugReport::toString() const
{
    std::ostringstream os;
    os << errorKindName(kind);
    if (kind == ErrorKind::none)
        return os.str();
    os << " (" << accessKindName(access);
    if (storage != StorageKind::unknown)
        os << ", " << storageKindName(storage);
    if (kind == ErrorKind::outOfBounds && direction != BoundsDirection::unknown)
        os << ", " << boundsDirectionName(direction);
    os << ")";
    if (!function.empty())
        os << " in " << function << "()";
    if (!detail.empty())
        os << ": " << detail;
    return os.str();
}

} // namespace sulong
