#include "support/limits.h"

namespace sulong
{

ResourceGuard::ResourceGuard(const ResourceLimits &limits,
                             CancellationToken token)
    : limits_(limits), token_(std::move(token))
{
    if (limits_.deadlineMs != 0) {
        hasDeadline_ = true;
        deadline_ = std::chrono::steady_clock::now() +
            std::chrono::milliseconds(limits_.deadlineMs);
    }
}

void
ResourceGuard::onAlloc(uint64_t bytes)
{
    allocations_++;
    heapBytes_ += bytes;
    if (limits_.maxHeapBytes != 0 && heapBytes_ > limits_.maxHeapBytes) {
        exhausted(TerminationKind::heapLimit,
                  "guest heap limit of " +
                      std::to_string(limits_.maxHeapBytes) +
                      " bytes exceeded (" + std::to_string(heapBytes_) +
                      " live)");
    }
    if (limits_.maxHeapAllocations != 0 &&
        allocations_ > limits_.maxHeapAllocations) {
        exhausted(TerminationKind::heapLimit,
                  "guest allocation count limit of " +
                      std::to_string(limits_.maxHeapAllocations) +
                      " exceeded");
    }
}

void
ResourceGuard::onOutput(uint64_t bytes)
{
    outputBytes_ += bytes;
    if (limits_.maxOutputBytes != 0 &&
        outputBytes_ > limits_.maxOutputBytes) {
        exhausted(TerminationKind::outputLimit,
                  "guest output limit of " +
                      std::to_string(limits_.maxOutputBytes) +
                      " bytes exceeded");
    }
}

void
ResourceGuard::checkInterrupts()
{
    if (token_.cancelled())
        exhausted(TerminationKind::cancelled, "run cancelled");
    if (hasDeadline_ && std::chrono::steady_clock::now() >= deadline_) {
        exhausted(TerminationKind::timeout,
                  "wall-clock deadline of " +
                      std::to_string(limits_.deadlineMs) + " ms exceeded");
    }
}

void
ResourceGuard::exhausted(TerminationKind kind, std::string detail)
{
    throw ResourceExhausted(kind, std::move(detail));
}

} // namespace sulong
