/**
 * @file
 * Shared taxonomy of C memory errors detected (or missed) by the engines.
 *
 * This mirrors the bug categories of the paper's Section 2.1: spatial
 * errors (out-of-bounds), temporal errors (use-after-free), NULL
 * dereferences, and "other" errors (invalid free, double free, accesses to
 * non-existent variadic arguments). Every execution engine in this
 * repository reports bugs through this taxonomy so that the detection
 * matrix of Section 4.1 can be computed uniformly.
 */

#ifndef MS_SUPPORT_ERROR_H
#define MS_SUPPORT_ERROR_H

#include <cstdint>
#include <optional>
#include <string>

namespace sulong
{

/** Category of a detected memory error. */
enum class ErrorKind : uint8_t
{
    /// No error: normal termination.
    none,
    /// Spatial error: access outside the bounds of an object.
    outOfBounds,
    /// Temporal error: access to a freed heap object.
    useAfterFree,
    /// free() called twice on the same heap object.
    doubleFree,
    /// free() of a non-heap object or of an interior pointer.
    invalidFree,
    /// Dereference of a NULL pointer.
    nullDeref,
    /// Access to a non-existent variadic argument (format-string bugs).
    varargs,
    /// A load/store/cast that violates the (relaxed) type rules.
    typeError,
    /// Read of uninitialized memory (Memcheck-style V-bit report).
    uninitRead,
    /// Heap memory still reachable-or-not but never freed at exit
    /// (paper Section 6 future work, implemented here).
    memoryLeak,
    /// Hardware-trap analogue: access to unmapped simulated memory.
    segfault,
    /// The engine could not continue (unsupported feature, bad input).
    engineError,
};

/** Whether a faulting access was a read, a write, or a deallocation. */
enum class AccessKind : uint8_t
{
    read,
    write,
    free,
};

/** Storage class of the object involved in an error. */
enum class StorageKind : uint8_t
{
    stack,
    heap,
    global,
    /// The argv/envp region set up before main() runs (Fig. 10).
    mainArgs,
    unknown,
};

/** Direction of a spatial violation relative to the object. */
enum class BoundsDirection : uint8_t
{
    underflow,
    overflow,
    unknown,
};

/**
 * How a run ended with respect to resource governance. Everything but
 * @c normal means the harness stopped the guest, not that the guest
 * finished or tripped a memory-safety check — so resource exhaustion is
 * never conflated with ErrorKind::engineError.
 */
enum class TerminationKind : uint8_t
{
    /// Ran to completion (exit or a detected bug).
    normal,
    /// The per-run instruction budget was exhausted.
    stepLimit,
    /// The guest call-depth limit tripped (unbounded recursion).
    stackLimit,
    /// Guest heap bytes or allocation count exceeded the limit.
    heapLimit,
    /// Guest stdout/stderr output exceeded the byte limit.
    outputLimit,
    /// The wall-clock deadline expired.
    timeout,
    /// The run was cancelled cooperatively (watchdog, fail-fast drain).
    cancelled,
    /// A host-side exception escaped the job (harness bug, host OOM, or
    /// an injected fault) — the batch isolates it instead of crashing.
    hostFault,
};

/** @return a stable human-readable name, e.g. "out-of-bounds". */
const char *errorKindName(ErrorKind kind);
/** @return a stable name, e.g. "step-limit" / "host-fault". */
const char *terminationKindName(TerminationKind kind);
/** @return "read" / "write" / "free". */
const char *accessKindName(AccessKind kind);
/** @return "stack" / "heap" / "global" / "main-args" / "unknown". */
const char *storageKindName(StorageKind kind);
/** @return "underflow" / "overflow" / "unknown". */
const char *boundsDirectionName(BoundsDirection direction);

/**
 * A structured description of one detected bug.
 *
 * Produced by every engine when it aborts execution; consumed by the
 * corpus harness, the detection-matrix bench, and the report printer.
 */
struct BugReport
{
    ErrorKind kind = ErrorKind::none;
    AccessKind access = AccessKind::read;
    StorageKind storage = StorageKind::unknown;
    BoundsDirection direction = BoundsDirection::unknown;
    /// Function in which the access was executed (best effort).
    std::string function;
    /// Free-form detail, e.g. "index 12 out of bounds for I32Array[10]".
    std::string detail;
    /// Byte offset of the access relative to the object start, if known.
    std::optional<int64_t> offset;
    /// Size in bytes of the object involved, if known.
    std::optional<int64_t> objectSize;

    /** Render a one-line report, e.g. for error logs. */
    std::string toString() const;
};

/** Final outcome of running a program under an engine. */
struct ExecutionResult
{
    /// Exit code of the guest program (valid when kind == none).
    int exitCode = 0;
    /// The first detected bug, if any.
    BugReport bug;
    /// How the run ended: normal, or a structured resource-governance
    /// termination (step/heap/output limit, timeout, cancellation, host
    /// fault). Non-normal terminations leave bug.kind == none.
    TerminationKind termination = TerminationKind::normal;
    /// Detail for non-normal terminations, e.g. "step limit of 100000
    /// instructions exceeded".
    std::string terminationDetail;
    /// Everything the guest wrote to stdout.
    std::string output;
    /// Everything the guest wrote to stderr.
    std::string errOutput;

    bool
    ok() const
    {
        return bug.kind == ErrorKind::none &&
               termination == TerminationKind::normal;
    }
    bool detected(ErrorKind kind) const { return bug.kind == kind; }
};

} // namespace sulong

#endif // MS_SUPPORT_ERROR_H
