#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace sulong
{

namespace
{

/** Linear-interpolated quantile over a sorted sample vector. */
double
quantileSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    if (sorted.size() == 1)
        return sorted[0];
    double pos = q * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

} // namespace

Summary
summarize(std::vector<double> samples)
{
    Summary s;
    if (samples.empty())
        return s;
    std::sort(samples.begin(), samples.end());
    s.count = samples.size();
    s.min = samples.front();
    s.max = samples.back();
    s.q1 = quantileSorted(samples, 0.25);
    s.median = quantileSorted(samples, 0.5);
    s.q3 = quantileSorted(samples, 0.75);
    s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
        static_cast<double>(samples.size());
    return s;
}

double
geomean(const std::vector<double> &samples)
{
    double log_sum = 0;
    size_t n = 0;
    for (double v : samples) {
        if (v > 0) {
            log_sum += std::log(v);
            n++;
        }
    }
    return n == 0 ? 0 : std::exp(log_sum / static_cast<double>(n));
}

std::string
Summary::toString(int precision) const
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << median << " [" << q1 << ", " << q3 << "] ("
       << min << ".." << max << ")";
    return os.str();
}

} // namespace sulong
