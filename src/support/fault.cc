#include "support/fault.h"

#include <chrono>
#include <new>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sulong
{

namespace
{

/** SplitMix64 finalizer (same mixer as support/rng.h). */
uint64_t
mix(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
hashString(const std::string &s)
{
    // FNV-1a.
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s)
        h = (h ^ c) * 0x100000001b3ull;
    return h;
}

} // namespace

void
FaultInjector::addRule(Rule rule)
{
    std::lock_guard<std::mutex> lock(mutex_);
    rules_.push_back(std::move(rule));
}

double
FaultInjector::draw(const std::string &site, uint64_t visit) const
{
    uint64_t h = mix(seed_ ^ mix(hashString(site)) ^ mix(visit));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void
FaultInjector::at(const std::string &site)
{
    Action action = Action::delay;
    unsigned delay_ms = 0;
    bool fire = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        uint64_t visit = visits_[site]++;
        for (size_t r = 0; r < rules_.size(); r++) {
            const Rule &rule = rules_[r];
            if (rule.sitePrefix) {
                if (site.rfind(rule.site, 0) != 0)
                    continue;
            } else if (!rule.site.empty() && rule.site != site) {
                continue;
            }
            uint64_t &fired = ruleFirings_[{r, site}];
            if (rule.maxFirings != 0 && fired >= rule.maxFirings)
                continue;
            if (rule.probability < 1.0 &&
                draw(site, visit) >= rule.probability)
                continue;
            fired++;
            firings_[site]++;
            action = rule.action;
            delay_ms = rule.delayMs;
            fire = true;
            break;
        }
    }
    if (!fire)
        return;
    // Recorded before the throw, so the event survives the unwind.
    obs::MetricsRegistry::global().counter("fault.injected").inc();
    obs::traceInstant("fault.injected", site);
    switch (action) {
      case Action::allocFailure:
        throw std::bad_alloc();
      case Action::hostException:
        throw InjectedFault("injected host fault at " + site);
      case Action::delay:
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
        break;
    }
}

uint64_t
FaultInjector::visits(const std::string &site) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = visits_.find(site);
    return it == visits_.end() ? 0 : it->second;
}

uint64_t
FaultInjector::firings(const std::string &site) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = firings_.find(site);
    return it == firings_.end() ? 0 : it->second;
}

namespace
{

uint64_t
sumWithPrefix(const std::map<std::string, uint64_t> &table,
              const std::string &prefix)
{
    uint64_t total = 0;
    for (auto it = table.lower_bound(prefix);
         it != table.end() && it->first.rfind(prefix, 0) == 0; ++it)
        total += it->second;
    return total;
}

} // namespace

uint64_t
FaultInjector::visitsWithPrefix(const std::string &prefix) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sumWithPrefix(visits_, prefix);
}

uint64_t
FaultInjector::firingsWithPrefix(const std::string &prefix) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sumWithPrefix(firings_, prefix);
}

} // namespace sulong
