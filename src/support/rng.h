/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in this repository (synthetic CVE records, workload
 * generators, fuzz-style property tests) flows through this seeded
 * generator so every bench and test is reproducible run-to-run.
 */

#ifndef MS_SUPPORT_RNG_H
#define MS_SUPPORT_RNG_H

#include <cstdint>

namespace sulong
{

/** SplitMix64: tiny, fast, well-distributed deterministic RNG. */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed) {}

    /** @return the next raw 64-bit value. */
    uint64_t next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** @return a value uniform in [0, bound). bound must be > 0. */
    uint64_t nextBelow(uint64_t bound) { return next() % bound; }

    /** @return a value uniform in [lo, hi] (inclusive). */
    int64_t nextRange(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(nextBelow(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** @return a double uniform in [0, 1). */
    double nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability p. */
    bool chance(double p) { return nextDouble() < p; }

  private:
    uint64_t state_;
};

} // namespace sulong

#endif // MS_SUPPORT_RNG_H
