#include "support/diagnostics.h"

#include <sstream>

namespace sulong
{

std::string
SourceLoc::toString() const
{
    std::ostringstream os;
    os << (file.empty() ? "<unknown>" : file) << ":" << line << ":" << column;
    return os.str();
}

std::string
Diagnostic::toString() const
{
    const char *sev = "error";
    if (severity == DiagSeverity::warning)
        sev = "warning";
    else if (severity == DiagSeverity::note)
        sev = "note";
    return loc.toString() + ": " + sev + ": " + message;
}

void
DiagnosticEngine::report(DiagSeverity severity, const SourceLoc &loc,
                         std::string message)
{
    if (severity == DiagSeverity::error)
        numErrors_++;
    else if (severity == DiagSeverity::warning)
        numWarnings_++;
    messages_.push_back(Diagnostic{severity, loc, std::move(message)});
}

std::string
DiagnosticEngine::dump() const
{
    std::ostringstream os;
    for (const auto &msg : messages_)
        os << msg.toString() << "\n";
    return os.str();
}

} // namespace sulong
