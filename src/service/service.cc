#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "obs/expo.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/fault.h"

namespace sulong::service
{

namespace
{

/** min over "0 means unlimited" fields. */
uint64_t
clampLimit(uint64_t requested, uint64_t ceiling)
{
    if (ceiling == 0)
        return requested;
    if (requested == 0)
        return ceiling;
    return std::min(requested, ceiling);
}

/**
 * Per-tenant labeled counter name in the exposition encoding the
 * Prometheus writer splits back out ('{' cannot occur in a plain
 * metric name, so labeled and unlabeled names never collide).
 */
std::string
tenantCounterName(const char *base, const std::string &tenant)
{
    std::string name = base;
    name += "{tenant=\"";
    name += obs::prometheusLabelEscape(tenant);
    name += "\"}";
    return name;
}

/** Rates rendered with fixed precision so the JSON stays canonical. */
std::string
fixed3(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

} // namespace

const char *
admitStatusName(AdmitStatus status)
{
    switch (status) {
      case AdmitStatus::accepted:
        return "accepted";
      case AdmitStatus::overloadedGlobal:
        return "overloaded-global";
      case AdmitStatus::overloadedTenant:
        return "overloaded-tenant";
      case AdmitStatus::draining:
        return "draining";
      case AdmitStatus::invalid:
        return "invalid";
    }
    return "unknown";
}

AnalysisService::AnalysisService(const ServiceConfig &config)
    : config_(config), watchdog_(config.watchdogMs),
      started_(std::chrono::steady_clock::now())
{
    if (config_.workers == 0)
        config_.workers = ThreadPool::hardwareWorkers();
    if (config_.queueCapacity == 0)
        config_.queueCapacity = 1;
    if (config_.tenantCapacity == 0)
        config_.tenantCapacity = config_.queueCapacity;
    cache_.setCapacity(config_.cacheCapacity);
    pool_ = std::make_unique<ThreadPool>(config_.workers);
}

AnalysisService::~AnalysisService()
{
    // Refuse new work and fast-cancel whatever is still queued; the
    // pool destructor then drains the (now fast) queue.
    beginDrain();
    hardDrain_.store(true, std::memory_order_relaxed);
    watchdog_.cancelAll(/*sticky=*/true);
    pool_.reset();
}

AdmitStatus
AnalysisService::submit(JobRequest request, DoneFn done,
                        uint64_t *retry_after_ms)
{
    // Admission happens on the transport thread; adopt the caller's
    // trace context (when the request carries one) so even a rejection
    // shows up as a span in the caller's trace.
    obs::TraceContextScope traceScope(
        obs::TraceContext{request.traceId, request.parentSpan});
    MS_TRACE_SPAN("service.admission");
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    reg.counter("service.requests").inc();
    if (request.source.size() > config_.maxSourceBytes) {
        reg.counter("service.rejected.invalid").inc();
        windowRejected_.record(nowMs());
        return AdmitStatus::invalid;
    }
    uint64_t id = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (draining_) {
            reg.counter("service.rejected.draining").inc();
            windowRejected_.record(nowMs());
            return AdmitStatus::draining;
        }
        if (pending_ >= config_.queueCapacity) {
            if (retry_after_ms != nullptr) {
                // Scale the hint with the backlog per worker: a deeper
                // queue earns a longer backoff. Deterministic in the
                // admission state, no clocks involved.
                *retry_after_ms =
                    25 * (pending_ / std::max(1u, config_.workers) + 1);
            }
            reg.counter("service.rejected.overloaded").inc();
            reg.counter(
                   tenantCounterName("service.tenant.rejected",
                                     request.tenant))
                .inc();
            windowRejected_.record(nowMs());
            return AdmitStatus::overloadedGlobal;
        }
        size_t &tenant_pending = tenantPending_[request.tenant];
        if (tenant_pending >= config_.tenantCapacity) {
            if (retry_after_ms != nullptr)
                *retry_after_ms = 25 * (tenant_pending + 1);
            reg.counter("service.rejected.tenant").inc();
            reg.counter(
                   tenantCounterName("service.tenant.rejected",
                                     request.tenant))
                .inc();
            windowRejected_.record(nowMs());
            return AdmitStatus::overloadedTenant;
        }
        tenant_pending++;
        pending_++;
        id = nextId_++;
    }
    reg.counter("service.admitted").inc();
    reg.counter(tenantCounterName("service.tenant.admitted",
                                  request.tenant))
        .inc();
    reg.gauge("service.inflight").add(1);
    windowAdmitted_.record(nowMs());
    pool_->submit([this, id, request = std::move(request),
                   done = std::move(done)]() mutable {
        runJob(id, std::move(request), done);
    });
    return AdmitStatus::accepted;
}

ResourceLimits
AnalysisService::effectiveLimits(const JobRequest &request) const
{
    const ResourceLimits &ceiling = config_.limitCeiling;
    ResourceLimits limits;
    limits.maxSteps = clampLimit(request.maxSteps, ceiling.maxSteps);
    limits.maxCallDepth = static_cast<unsigned>(
        clampLimit(request.maxCallDepth, ceiling.maxCallDepth));
    limits.maxHeapBytes =
        clampLimit(request.maxHeapBytes, ceiling.maxHeapBytes);
    limits.maxHeapAllocations = ceiling.maxHeapAllocations;
    limits.maxOutputBytes =
        clampLimit(request.maxOutputBytes, ceiling.maxOutputBytes);
    limits.deadlineMs = clampLimit(request.deadlineMs, ceiling.deadlineMs);
    return limits;
}

void
AnalysisService::runJob(uint64_t id, JobRequest request, const DoneFn &done)
{
    // Adopt the caller's trace on this worker thread: every span below
    // (service.job, cache/compile, tier pipelines, analysis) chains
    // under the client's parent span id for the lifetime of the job.
    obs::TraceContextScope traceScope(
        obs::TraceContext{request.traceId, request.parentSpan});
    MS_TRACE_SPAN("service.job", "job " + std::to_string(id));
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();

    JobOutcome outcome;
    outcome.id = id;
    outcome.tenant = request.tenant;
    outcome.tool = request.tool;
    outcome.optLevel = request.optLevel;
    outcome.analyzed = request.analyze;

    ToolKind kind = ToolKind::safeSulong;
    toolFromName(request.tool, &kind);
    BatchJob job = BatchJob::make(request.source,
                                  ToolConfig::make(kind, request.optLevel),
                                  request.args, request.stdinData);
    job.limits = effectiveLimits(request);

    GuardedJobOptions options;
    options.retries = config_.retries;
    options.retryBackoffMs = config_.retryBackoffMs;
    options.faults = config_.faults;
    options.faultSitePrefix = "service.job/";
    AnalysisOptions analysis;
    if (request.analyze)
        options.analysis = &analysis;
    // Every job flies with a recorder; the ring is dropped on success
    // and serialized into a postmortem when the job dies.
    obs::FlightRecorder recorder(config_.flightRecorderCapacity);
    options.recorder = &recorder;

    outcome.result =
        runGuardedJob(job, static_cast<size_t>(id), &cache_, options,
                      hardDrain_, watchdog_, outcome.stats);

    bool died = false;
    switch (outcome.result.termination) {
      case TerminationKind::normal:
        if (outcome.result.bug.kind == ErrorKind::none) {
            reg.counter("service.jobs.ok").inc();
        } else {
            reg.counter("service.jobs.bug").inc();
            died = true;
        }
        break;
      case TerminationKind::hostFault:
        reg.counter("service.jobs.host_fault").inc();
        died = true;
        break;
      case TerminationKind::cancelled:
        reg.counter("service.jobs.cancelled").inc();
        died = true;
        break;
      default:
        reg.counter("service.jobs.terminated").inc();
        died = true;
        break;
    }

    if (died) {
        obs::PostmortemInfo info;
        info.jobId = id;
        info.tenant = request.tenant;
        info.tool = request.tool;
        info.traceId = request.traceId;
        info.termination =
            terminationKindName(outcome.result.termination);
        info.terminationDetail = outcome.result.terminationDetail;
        if (outcome.result.bug.kind != ErrorKind::none)
            info.bugKind = errorKindName(outcome.result.bug.kind);
        info.attempts = outcome.stats.attempts;
        for (const obs::FlightRecorder::Event &event : recorder.events()) {
            if (event.name == "job.host_fault")
                info.faultFirings++;
        }
        emitPostmortem(info, recorder);
    }

    // The callback runs before this job is accounted finished so a
    // drain cannot complete between a job's end and its response write:
    // "drained" always implies "every admitted job has answered".
    done(outcome);
    finishJob(request.tenant);
}

void
AnalysisService::finishJob(const std::string &tenant)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_--;
        auto it = tenantPending_.find(tenant);
        if (it != tenantPending_.end() && --it->second == 0)
            tenantPending_.erase(it);
    }
    obs::MetricsRegistry::global().gauge("service.inflight").add(-1);
    windowCompleted_.record(nowMs());
    idleCv_.notify_all();
}

uint64_t
AnalysisService::nowMs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started_)
            .count());
}

void
AnalysisService::emitPostmortem(const obs::PostmortemInfo &info,
                                const obs::FlightRecorder &recorder)
{
    std::string doc = obs::postmortemJson(info, recorder);
    uint64_t ordinal = 0;
    {
        std::lock_guard<std::mutex> lock(postmortemMutex_);
        ordinal = postmortemCount_++;
        postmortems_.push_back(doc);
        while (postmortems_.size() > config_.postmortemKeep)
            postmortems_.pop_front();
    }
    obs::MetricsRegistry::global().counter("service.postmortems").inc();
    if (config_.postmortemDir.empty())
        return;
    std::string path = config_.postmortemDir + "/postmortem-" +
        std::to_string(ordinal) + "-job" + std::to_string(info.jobId) +
        ".json";
    std::ofstream file(path, std::ios::binary);
    if (file) {
        file << doc << "\n";
    }
}

void
AnalysisService::beginDrain()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (draining_)
            return;
        draining_ = true;
    }
    obs::MetricsRegistry::global().counter("service.drains").inc();
}

void
AnalysisService::drain(unsigned grace_ms)
{
    MS_TRACE_SPAN("service.drain");
    beginDrain();
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait_for(lock, std::chrono::milliseconds(grace_ms),
                     [this] { return pending_ == 0; });
    if (pending_ != 0) {
        // Hard phase: jobs not yet started report cancelled without
        // running; in-flight attempts (and ones still compiling, via
        // the sticky flag) are cancelled through their tokens. Every
        // one still produces a structured outcome for its client.
        hardDrain_.store(true, std::memory_order_relaxed);
        lock.unlock();
        watchdog_.cancelAll(/*sticky=*/true);
        obs::MetricsRegistry::global()
            .counter("service.drain.cancelled")
            .inc();
        lock.lock();
        idleCv_.wait(lock, [this] { return pending_ == 0; });
    }
}

bool
AnalysisService::draining() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return draining_;
}

size_t
AnalysisService::pending() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pending_;
}

unsigned
AnalysisService::workers() const
{
    return config_.workers;
}

CompileCacheStats
AnalysisService::cacheStats() const
{
    return cache_.stats();
}

std::string
AnalysisService::healthJson() const
{
    uint64_t uptime_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started_)
            .count());
    size_t pending;
    size_t tenants;
    bool draining;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending = pending_;
        tenants = tenantPending_.size();
        draining = draining_;
    }
    CompileCacheStats cache = cache_.stats();

    // Appended piecewise (not via chained operator+) — see protocol.cc.
    auto add_uint = [](std::string &doc, const char *key, uint64_t value) {
        doc += ",\"";
        doc += key;
        doc += "\":";
        doc += std::to_string(value);
    };
    std::string out = "{\"schema\":\"msulong.health/v1\"";
    out += ",\"draining\":";
    out += draining ? "true" : "false";
    add_uint(out, "pending", pending);
    add_uint(out, "active_tenants", tenants);
    add_uint(out, "workers", config_.workers);
    add_uint(out, "queue_capacity", config_.queueCapacity);
    add_uint(out, "tenant_capacity", config_.tenantCapacity);
    add_uint(out, "uptime_ms", uptime_ms);
    out += ",\"cache\":{\"hits\":";
    out += std::to_string(cache.hits);
    add_uint(out, "misses", cache.misses);
    add_uint(out, "evictions", cache.evictions);
    out += "},\"counters\":{";
    obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
    bool first = true;
    for (const auto &[name, value] : snap.counters) {
        if (name.rfind("service.", 0) != 0)
            continue;
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += obs::jsonEscape(name);
        out += "\":";
        out += std::to_string(value);
    }
    out += "}}";
    return out;
}

std::string
AnalysisService::statsJson(const StatsRequest &request) const
{
    std::string out = "{\"schema\":\"msulong.stats/v1\"";
    out += ",\"format\":\"";
    out += request.format;
    out += '"';

    if (request.format == "prometheus") {
        // Wrapped text exposition: the frame payload stays JSON, the
        // client unwraps "expo" for scrapers.
        out += ",\"expo\":\"";
        out += obs::jsonEscape(obs::prometheusTextFromGlobal());
        out += "\"}";
        return out;
    }

    uint64_t now = nowMs();
    size_t pending;
    bool draining;
    std::map<std::string, size_t> tenants;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending = pending_;
        draining = draining_;
        tenants = tenantPending_;
    }
    out += ",\"draining\":";
    out += draining ? "true" : "false";
    out += ",\"pending\":";
    out += std::to_string(pending);

    out += ",\"window\":{\"window_ms\":";
    out += std::to_string(windowAdmitted_.windowMs());
    out += ",\"admitted\":";
    out += std::to_string(windowAdmitted_.totalInWindow(now));
    out += ",\"rejected\":";
    out += std::to_string(windowRejected_.totalInWindow(now));
    out += ",\"completed\":";
    out += std::to_string(windowCompleted_.totalInWindow(now));
    out += ",\"admitted_per_sec\":";
    out += fixed3(windowAdmitted_.ratePerSec(now));
    out += ",\"completed_per_sec\":";
    out += fixed3(windowCompleted_.ratePerSec(now));
    out += '}';

    out += ",\"tenants\":{";
    bool first = true;
    for (const auto &[tenant, tenant_pending] : tenants) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += obs::jsonEscape(tenant);
        out += "\":";
        out += std::to_string(tenant_pending);
    }
    out += '}';

    {
        std::lock_guard<std::mutex> lock(postmortemMutex_);
        out += ",\"postmortems\":";
        out += std::to_string(postmortemCount_);
    }

    out += ",\"metrics\":";
    out += obs::metricsJson(obs::MetricsRegistry::global().snapshot());

    if (!request.traceId.empty()) {
        // Peek (no clear): a stats scrape must not erase events other
        // clients' merges still need; the per-thread rings bound the
        // retained history.
        std::vector<obs::TraceEvent> events =
            obs::TraceCollector::global().drain(/*clear=*/false);
        out += ",\"trace_events\":[";
        first = true;
        for (const obs::TraceEvent &event : events) {
            if (event.traceId != request.traceId)
                continue;
            if (!first)
                out += ',';
            first = false;
            out += "{\"name\":\"";
            out += obs::jsonEscape(event.name);
            out += '"';
            if (!event.detail.empty()) {
                out += ",\"detail\":\"";
                out += obs::jsonEscape(event.detail);
                out += '"';
            }
            out += ",\"ph\":\"";
            out += event.phase;
            out += "\",\"tid\":";
            out += std::to_string(event.tid);
            out += ",\"ts_ns\":";
            out += std::to_string(event.tsNs);
            out += ",\"dur_ns\":";
            out += std::to_string(event.durNs);
            out += ",\"span_id\":\"";
            out += obs::spanIdToHex(event.spanId);
            out += '"';
            if (event.parentSpan != 0) {
                out += ",\"parent_span\":\"";
                out += obs::spanIdToHex(event.parentSpan);
                out += '"';
            }
            out += '}';
        }
        out += ']';
    }

    out += '}';
    return out;
}

std::vector<std::string>
AnalysisService::recentPostmortems() const
{
    std::lock_guard<std::mutex> lock(postmortemMutex_);
    return {postmortems_.begin(), postmortems_.end()};
}

} // namespace sulong::service
