#include "service/service.h"

#include <algorithm>
#include <chrono>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/fault.h"

namespace sulong::service
{

namespace
{

/** min over "0 means unlimited" fields. */
uint64_t
clampLimit(uint64_t requested, uint64_t ceiling)
{
    if (ceiling == 0)
        return requested;
    if (requested == 0)
        return ceiling;
    return std::min(requested, ceiling);
}

} // namespace

const char *
admitStatusName(AdmitStatus status)
{
    switch (status) {
      case AdmitStatus::accepted:
        return "accepted";
      case AdmitStatus::overloadedGlobal:
        return "overloaded-global";
      case AdmitStatus::overloadedTenant:
        return "overloaded-tenant";
      case AdmitStatus::draining:
        return "draining";
      case AdmitStatus::invalid:
        return "invalid";
    }
    return "unknown";
}

AnalysisService::AnalysisService(const ServiceConfig &config)
    : config_(config), watchdog_(config.watchdogMs),
      started_(std::chrono::steady_clock::now())
{
    if (config_.workers == 0)
        config_.workers = ThreadPool::hardwareWorkers();
    if (config_.queueCapacity == 0)
        config_.queueCapacity = 1;
    if (config_.tenantCapacity == 0)
        config_.tenantCapacity = config_.queueCapacity;
    cache_.setCapacity(config_.cacheCapacity);
    pool_ = std::make_unique<ThreadPool>(config_.workers);
}

AnalysisService::~AnalysisService()
{
    // Refuse new work and fast-cancel whatever is still queued; the
    // pool destructor then drains the (now fast) queue.
    beginDrain();
    hardDrain_.store(true, std::memory_order_relaxed);
    watchdog_.cancelAll(/*sticky=*/true);
    pool_.reset();
}

AdmitStatus
AnalysisService::submit(JobRequest request, DoneFn done,
                        uint64_t *retry_after_ms)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    reg.counter("service.requests").inc();
    if (request.source.size() > config_.maxSourceBytes) {
        reg.counter("service.rejected.invalid").inc();
        return AdmitStatus::invalid;
    }
    uint64_t id = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (draining_) {
            reg.counter("service.rejected.draining").inc();
            return AdmitStatus::draining;
        }
        if (pending_ >= config_.queueCapacity) {
            if (retry_after_ms != nullptr) {
                // Scale the hint with the backlog per worker: a deeper
                // queue earns a longer backoff. Deterministic in the
                // admission state, no clocks involved.
                *retry_after_ms =
                    25 * (pending_ / std::max(1u, config_.workers) + 1);
            }
            reg.counter("service.rejected.overloaded").inc();
            return AdmitStatus::overloadedGlobal;
        }
        size_t &tenant_pending = tenantPending_[request.tenant];
        if (tenant_pending >= config_.tenantCapacity) {
            if (retry_after_ms != nullptr)
                *retry_after_ms = 25 * (tenant_pending + 1);
            reg.counter("service.rejected.tenant").inc();
            return AdmitStatus::overloadedTenant;
        }
        tenant_pending++;
        pending_++;
        id = nextId_++;
    }
    reg.counter("service.admitted").inc();
    pool_->submit([this, id, request = std::move(request),
                   done = std::move(done)]() mutable {
        runJob(id, std::move(request), done);
    });
    return AdmitStatus::accepted;
}

ResourceLimits
AnalysisService::effectiveLimits(const JobRequest &request) const
{
    const ResourceLimits &ceiling = config_.limitCeiling;
    ResourceLimits limits;
    limits.maxSteps = clampLimit(request.maxSteps, ceiling.maxSteps);
    limits.maxCallDepth = static_cast<unsigned>(
        clampLimit(request.maxCallDepth, ceiling.maxCallDepth));
    limits.maxHeapBytes =
        clampLimit(request.maxHeapBytes, ceiling.maxHeapBytes);
    limits.maxHeapAllocations = ceiling.maxHeapAllocations;
    limits.maxOutputBytes =
        clampLimit(request.maxOutputBytes, ceiling.maxOutputBytes);
    limits.deadlineMs = clampLimit(request.deadlineMs, ceiling.deadlineMs);
    return limits;
}

void
AnalysisService::runJob(uint64_t id, JobRequest request, const DoneFn &done)
{
    MS_TRACE_SPAN("service.job", "job " + std::to_string(id));
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();

    JobOutcome outcome;
    outcome.id = id;
    outcome.tenant = request.tenant;
    outcome.tool = request.tool;
    outcome.optLevel = request.optLevel;
    outcome.analyzed = request.analyze;

    ToolKind kind = ToolKind::safeSulong;
    toolFromName(request.tool, &kind);
    BatchJob job = BatchJob::make(request.source,
                                  ToolConfig::make(kind, request.optLevel),
                                  request.args, request.stdinData);
    job.limits = effectiveLimits(request);

    GuardedJobOptions options;
    options.retries = config_.retries;
    options.retryBackoffMs = config_.retryBackoffMs;
    options.faults = config_.faults;
    options.faultSitePrefix = "service.job/";
    AnalysisOptions analysis;
    if (request.analyze)
        options.analysis = &analysis;

    outcome.result =
        runGuardedJob(job, static_cast<size_t>(id), &cache_, options,
                      hardDrain_, watchdog_, outcome.stats);

    switch (outcome.result.termination) {
      case TerminationKind::normal:
        reg.counter(outcome.result.bug.kind == ErrorKind::none
                        ? "service.jobs.ok"
                        : "service.jobs.bug")
            .inc();
        break;
      case TerminationKind::hostFault:
        reg.counter("service.jobs.host_fault").inc();
        break;
      case TerminationKind::cancelled:
        reg.counter("service.jobs.cancelled").inc();
        break;
      default:
        reg.counter("service.jobs.terminated").inc();
        break;
    }

    // The callback runs before this job is accounted finished so a
    // drain cannot complete between a job's end and its response write:
    // "drained" always implies "every admitted job has answered".
    done(outcome);
    finishJob(request.tenant);
}

void
AnalysisService::finishJob(const std::string &tenant)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_--;
        auto it = tenantPending_.find(tenant);
        if (it != tenantPending_.end() && --it->second == 0)
            tenantPending_.erase(it);
    }
    idleCv_.notify_all();
}

void
AnalysisService::beginDrain()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (draining_)
            return;
        draining_ = true;
    }
    obs::MetricsRegistry::global().counter("service.drains").inc();
}

void
AnalysisService::drain(unsigned grace_ms)
{
    MS_TRACE_SPAN("service.drain");
    beginDrain();
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait_for(lock, std::chrono::milliseconds(grace_ms),
                     [this] { return pending_ == 0; });
    if (pending_ != 0) {
        // Hard phase: jobs not yet started report cancelled without
        // running; in-flight attempts (and ones still compiling, via
        // the sticky flag) are cancelled through their tokens. Every
        // one still produces a structured outcome for its client.
        hardDrain_.store(true, std::memory_order_relaxed);
        lock.unlock();
        watchdog_.cancelAll(/*sticky=*/true);
        obs::MetricsRegistry::global()
            .counter("service.drain.cancelled")
            .inc();
        lock.lock();
        idleCv_.wait(lock, [this] { return pending_ == 0; });
    }
}

bool
AnalysisService::draining() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return draining_;
}

size_t
AnalysisService::pending() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pending_;
}

unsigned
AnalysisService::workers() const
{
    return config_.workers;
}

CompileCacheStats
AnalysisService::cacheStats() const
{
    return cache_.stats();
}

std::string
AnalysisService::healthJson() const
{
    uint64_t uptime_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started_)
            .count());
    size_t pending;
    size_t tenants;
    bool draining;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending = pending_;
        tenants = tenantPending_.size();
        draining = draining_;
    }
    CompileCacheStats cache = cache_.stats();

    // Appended piecewise (not via chained operator+) — see protocol.cc.
    auto add_uint = [](std::string &doc, const char *key, uint64_t value) {
        doc += ",\"";
        doc += key;
        doc += "\":";
        doc += std::to_string(value);
    };
    std::string out = "{\"schema\":\"msulong.health/v1\"";
    out += ",\"draining\":";
    out += draining ? "true" : "false";
    add_uint(out, "pending", pending);
    add_uint(out, "active_tenants", tenants);
    add_uint(out, "workers", config_.workers);
    add_uint(out, "queue_capacity", config_.queueCapacity);
    add_uint(out, "tenant_capacity", config_.tenantCapacity);
    add_uint(out, "uptime_ms", uptime_ms);
    out += ",\"cache\":{\"hits\":";
    out += std::to_string(cache.hits);
    add_uint(out, "misses", cache.misses);
    add_uint(out, "evictions", cache.evictions);
    out += "},\"counters\":{";
    obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
    bool first = true;
    for (const auto &[name, value] : snap.counters) {
        if (name.rfind("service.", 0) != 0)
            continue;
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += obs::jsonEscape(name);
        out += "\":";
        out += std::to_string(value);
    }
    out += "}}";
    return out;
}

} // namespace sulong::service
