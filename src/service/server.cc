#include "service/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "support/fault.h"

namespace sulong::service
{

/**
 * One accepted client. The reader thread owns the receive side; job
 * responses arrive from worker threads, serialized by writeMutex. The
 * fd is closed exactly once, by whoever observes pendingClose with no
 * job in flight — so a client that sent EOF after its requests still
 * receives every response before the socket goes away.
 */
struct ServiceServer::Connection
{
    explicit Connection(uint32_t max_frame_bytes)
        : reader(max_frame_bytes)
    {}

    int fd = -1;
    uint64_t id = 0;
    std::mutex writeMutex;
    /// Cleared when the connection is being torn down; writers bail.
    std::atomic<bool> open{true};
    /// Set when the reader has exited; the fd closes once no job of
    /// this connection is still awaiting its response write.
    std::atomic<bool> pendingClose{false};
    /// Jobs admitted for this connection whose response is not yet
    /// written.
    std::atomic<int> inFlight{0};
    FrameReader reader;
    std::thread thread;
};

ServiceServer::ServiceServer(const ServiceConfig &service_config,
                             const ServerOptions &options)
    : options_(options), faults_(service_config.faults),
      service_(std::make_unique<AnalysisService>(service_config))
{}

ServiceServer::~ServiceServer()
{
    requestDrain();
    runUntilDrained();
}

bool
ServiceServer::start(std::string *error)
{
    sockaddr_un addr{};
    if (options_.socketPath.empty() ||
        options_.socketPath.size() >= sizeof(addr.sun_path)) {
        if (error != nullptr)
            *error = "socket path must be 1.." +
                std::to_string(sizeof(addr.sun_path) - 1) + " bytes";
        return false;
    }
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (error != nullptr)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    ::unlink(options_.socketPath.c_str());
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, options_.socketPath.c_str(),
                options_.socketPath.size() + 1);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        if (error != nullptr)
            *error = "bind " + options_.socketPath + ": " +
                std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::listen(listenFd_, 64) != 0) {
        if (error != nullptr)
            *error = std::string("listen: ") + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::pipe(wakePipe_) != 0) {
        if (error != nullptr)
            *error = std::string("pipe: ") + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
ServiceServer::acceptLoop()
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    while (!stopAccept_.load(std::memory_order_relaxed)) {
        pollfd fds[2] = {
            {listenFd_, POLLIN, 0},
            {wakePipe_[0], POLLIN, 0},
        };
        int rc = ::poll(fds, 2, 200);
        if (stopAccept_.load(std::memory_order_relaxed))
            break;
        if (rc <= 0 || (fds[0].revents & POLLIN) == 0)
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        uint64_t id = ++connCounter_;
        if (faults_ != nullptr) {
            try {
                faults_->at("service.accept/" + std::to_string(id));
            } catch (...) {
                // An accept-path fault costs exactly this connection;
                // the loop (and every other client) continues.
                reg.counter("service.faults.accept").inc();
                ::close(fd);
                continue;
            }
        }
        reg.counter("service.connections").inc();
        auto conn = std::make_shared<Connection>(options_.maxFrameBytes);
        conn->fd = fd;
        conn->id = id;
        {
            std::lock_guard<std::mutex> lock(connMutex_);
            connections_.push_back(conn);
        }
        conn->thread = std::thread([this, conn] { readerLoop(conn); });
    }
}

void
ServiceServer::maybeCloseFd(const std::shared_ptr<Connection> &conn)
{
    if (!conn->pendingClose.load(std::memory_order_acquire) ||
        conn->inFlight.load(std::memory_order_acquire) != 0)
        return;
    std::lock_guard<std::mutex> lock(conn->writeMutex);
    if (conn->fd >= 0) {
        ::close(conn->fd);
        conn->fd = -1;
    }
    conn->open.store(false, std::memory_order_release);
}

void
ServiceServer::readerLoop(std::shared_ptr<Connection> conn)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    char buf[4096];
    while (conn->open.load(std::memory_order_relaxed)) {
        pollfd pfd = {conn->fd, POLLIN, 0};
        int rc = ::poll(&pfd, 1, 100);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (rc == 0)
            continue;
        ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
        if (n == 0) {
            // EOF. A partial frame still buffered was truncated by the
            // peer; there is nobody left to tell, so close quietly.
            break;
        }
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN)
                continue;
            break;
        }
        if (faults_ != nullptr) {
            try {
                faults_->at("service.read/" + std::to_string(conn->id));
            } catch (...) {
                // A read-path fault degrades one connection to a
                // structured error; the daemon survives.
                reg.counter("service.faults.read").inc();
                sendError(conn, ErrorInfo{"read-fault",
                                          "injected fault on the receive "
                                          "path; connection closing",
                                          0});
                break;
            }
        }
        conn->reader.feed(std::string_view(buf, static_cast<size_t>(n)));
        bool poisoned = false;
        for (;;) {
            Frame frame;
            DecodeStatus status = conn->reader.next(&frame);
            if (status == DecodeStatus::needMore)
                break;
            if (status == DecodeStatus::frame) {
                handleFrame(conn, std::move(frame));
                continue;
            }
            // The stream cannot resynchronize after a framing error:
            // report it in-band, then close this connection only.
            reg.counter("service.errors.protocol").inc();
            ErrorInfo info;
            info.code = status == DecodeStatus::oversized
                ? "oversized-frame"
                : "malformed-frame";
            info.detail =
                std::string("protocol error: ") + decodeStatusName(status);
            sendError(conn, info);
            poisoned = true;
            break;
        }
        if (poisoned)
            break;
    }
    conn->pendingClose.store(true, std::memory_order_release);
    maybeCloseFd(conn);
}

void
ServiceServer::handleFrame(const std::shared_ptr<Connection> &conn,
                           Frame frame)
{
    switch (frame.type) {
      case FrameType::jobRequest:
        handleJobRequest(conn, frame.payload);
        break;
      case FrameType::healthRequest:
        sendFrame(conn, FrameType::healthResponse, service_->healthJson());
        break;
      case FrameType::statsRequest:
        handleStatsRequest(conn, frame.payload);
        break;
      case FrameType::drainRequest:
        sendFrame(conn, FrameType::drainAck,
                  "{\"schema\":\"msulong.drain/v1\"}");
        requestDrain();
        break;
      default:
        // Response-direction types from a client are a protocol misuse,
        // but a recoverable one: the stream is still framed.
        obs::MetricsRegistry::global()
            .counter("service.errors.protocol")
            .inc();
        sendError(conn,
                  ErrorInfo{"bad-request",
                            "unexpected frame type from a client", 0});
        break;
    }
}

void
ServiceServer::handleJobRequest(const std::shared_ptr<Connection> &conn,
                                const std::string &payload)
{
    obs::JsonValue doc;
    std::string why;
    if (!obs::parseJson(payload, &doc, &why)) {
        sendError(conn, ErrorInfo{"bad-request",
                                  "request is not valid JSON: " + why, 0});
        return;
    }
    JobRequest request;
    if (!decodeJobRequest(doc, &request, &why)) {
        sendError(conn, ErrorInfo{"bad-request", why, 0});
        return;
    }
    conn->inFlight.fetch_add(1, std::memory_order_acq_rel);
    uint64_t retry_after = 0;
    AdmitStatus status = service_->submit(
        std::move(request),
        [this, conn](const JobOutcome &outcome) {
            bool injected = false;
            if (faults_ != nullptr) {
                try {
                    faults_->at("service.write/" +
                                std::to_string(outcome.id));
                } catch (...) {
                    injected = true;
                }
            }
            bool wrote;
            if (injected) {
                // Even a failing response path answers the client in a
                // structured way before giving up on the connection.
                obs::MetricsRegistry::global()
                    .counter("service.faults.write")
                    .inc();
                wrote = sendError(
                    conn,
                    ErrorInfo{"write-fault",
                              "injected fault writing the response for "
                              "job " + std::to_string(outcome.id),
                              0});
                closeConnection(conn);
            } else {
                wrote = sendFrame(conn, FrameType::jobResponse,
                                  encodeJobResponse(outcome));
                if (!wrote)
                    closeConnection(conn);
            }
            conn->inFlight.fetch_sub(1, std::memory_order_acq_rel);
            maybeCloseFd(conn);
        },
        &retry_after);
    if (status == AdmitStatus::accepted)
        return;
    conn->inFlight.fetch_sub(1, std::memory_order_acq_rel);
    switch (status) {
      case AdmitStatus::overloadedGlobal:
        sendError(conn, ErrorInfo{"overloaded",
                                  "service queue is full", retry_after});
        break;
      case AdmitStatus::overloadedTenant:
        sendError(conn,
                  ErrorInfo{"overloaded",
                            "tenant admission share is full", retry_after});
        break;
      case AdmitStatus::draining:
        sendError(conn, ErrorInfo{"draining",
                                  "service is draining; not accepting "
                                  "new jobs", 0});
        break;
      default:
        sendError(conn, ErrorInfo{"bad-request",
                                  "request rejected (source exceeds the "
                                  "configured size limit)", 0});
        break;
    }
}

void
ServiceServer::handleStatsRequest(const std::shared_ptr<Connection> &conn,
                                  const std::string &payload)
{
    obs::MetricsRegistry::global().counter("service.stats.requests").inc();
    StatsRequest request;
    // An empty payload is the simplest valid scrape (JSON format, no
    // trace filter); anything else must decode cleanly.
    if (!payload.empty()) {
        obs::JsonValue doc;
        std::string why;
        if (!obs::parseJson(payload, &doc, &why)) {
            sendError(conn,
                      ErrorInfo{"bad-request",
                                "stats request is not valid JSON: " + why,
                                0});
            return;
        }
        if (!decodeStatsRequest(doc, &request, &why)) {
            sendError(conn, ErrorInfo{"bad-request", why, 0});
            return;
        }
    }
    sendFrame(conn, FrameType::statsResponse, service_->statsJson(request));
}

bool
ServiceServer::sendFrame(const std::shared_ptr<Connection> &conn,
                         FrameType type, std::string_view payload)
{
    std::string bytes = encodeFrame(type, payload);
    std::lock_guard<std::mutex> lock(conn->writeMutex);
    if (conn->fd < 0 || !conn->open.load(std::memory_order_relaxed))
        return false;
    const char *p = bytes.data();
    size_t left = bytes.size();
    while (left > 0) {
        ssize_t n = ::send(conn->fd, p, left, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        left -= static_cast<size_t>(n);
    }
    return true;
}

bool
ServiceServer::sendError(const std::shared_ptr<Connection> &conn,
                         const ErrorInfo &info)
{
    return sendFrame(conn, FrameType::error, encodeErrorPayload(info));
}

void
ServiceServer::closeConnection(const std::shared_ptr<Connection> &conn)
{
    std::lock_guard<std::mutex> lock(conn->writeMutex);
    conn->open.store(false, std::memory_order_release);
    if (conn->fd >= 0) {
        // Shutdown (not close) so the reader thread, which may be
        // polling the fd, wakes with EOF and performs the single close.
        ::shutdown(conn->fd, SHUT_RDWR);
    }
}

void
ServiceServer::requestDrain()
{
    service_->beginDrain();
    {
        std::lock_guard<std::mutex> lock(drainMutex_);
        drainRequested_ = true;
    }
    drainCv_.notify_all();
    if (wakePipe_[1] >= 0) {
        char byte = 'd';
        [[maybe_unused]] ssize_t rc = ::write(wakePipe_[1], &byte, 1);
    }
}

int
ServiceServer::runUntilDrained()
{
    {
        std::unique_lock<std::mutex> lock(drainMutex_);
        drainCv_.wait(lock, [this] { return drainRequested_; });
    }
    std::lock_guard<std::mutex> shutdown_lock(shutdownMutex_);
    if (drained_)
        return 0;
    drained_ = true;
    // 1. Stop accepting and take the socket out of the filesystem.
    stopAccept_.store(true, std::memory_order_relaxed);
    if (wakePipe_[1] >= 0) {
        char byte = 'q';
        [[maybe_unused]] ssize_t rc = ::write(wakePipe_[1], &byte, 1);
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(options_.socketPath.c_str());
    }
    // 2. Finish or cancel every admitted job. Readers stay up so new
    //    requests during the drain get structured "draining" replies,
    //    and every response still has a socket to land on.
    service_->drain(options_.drainGraceMs);
    // 3. Only now close the client sockets: data first, sockets last.
    std::vector<std::shared_ptr<Connection>> conns;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        conns.swap(connections_);
    }
    for (const auto &conn : conns)
        closeConnection(conn);
    for (const auto &conn : conns) {
        if (conn->thread.joinable())
            conn->thread.join();
        std::lock_guard<std::mutex> lock(conn->writeMutex);
        if (conn->fd >= 0) {
            ::close(conn->fd);
            conn->fd = -1;
        }
    }
    for (int &fd : wakePipe_) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
    return 0;
}

} // namespace sulong::service
