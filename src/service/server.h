/**
 * @file
 * Unix-domain socket front end of the analysis daemon.
 *
 * One accept thread plus one reader thread per connection; job
 * responses are written from the worker thread that finished the job,
 * serialized per connection by a write mutex. Every transport-level
 * failure mode is structured: garbage or oversized frames earn an error
 * frame before the connection closes, malformed requests earn one and
 * the connection survives, injected accept/read/write faults
 * (service.accept/<conn>, service.read/<conn>, service.write/<job>)
 * degrade exactly one connection — never the daemon.
 *
 * Drain sequence (SIGTERM or a drainRequest frame): stop accepting and
 * unlink the socket, reject new requests with "draining", let the
 * service finish or cancel in-flight jobs (every admitted job still
 * answers its client), and only then close the client sockets — data
 * first, sockets last.
 */

#ifndef MS_SERVICE_SERVER_H
#define MS_SERVICE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service.h"

namespace sulong::service
{

struct ServerOptions
{
    /// Filesystem path of the AF_UNIX listening socket.
    std::string socketPath;
    /// Frames announcing a larger payload are a protocol error.
    uint32_t maxFrameBytes = kDefaultMaxFrameBytes;
    /// Grace given to in-flight jobs on drain before cancellation.
    unsigned drainGraceMs = 2000;
};

class ServiceServer
{
  public:
    ServiceServer(const ServiceConfig &service_config,
                  const ServerOptions &options);
    ~ServiceServer();

    ServiceServer(const ServiceServer &) = delete;
    ServiceServer &operator=(const ServiceServer &) = delete;

    /** Bind, listen, and start the accept thread. */
    bool start(std::string *error);

    /**
     * Begin the drain asynchronously (safe from any thread; the
     * daemon's signal thread calls this on SIGTERM). Idempotent.
     */
    void requestDrain();

    /**
     * Block until a drain is requested, then execute the full drain
     * sequence. @return 0 on a clean drain (always, currently — the
     * value is the daemon's exit code).
     */
    int runUntilDrained();

    const std::string &socketPath() const { return options_.socketPath; }
    AnalysisService &service() { return *service_; }

  private:
    struct Connection;

    void acceptLoop();
    void readerLoop(std::shared_ptr<Connection> conn);
    void handleFrame(const std::shared_ptr<Connection> &conn,
                     Frame frame);
    void handleJobRequest(const std::shared_ptr<Connection> &conn,
                          const std::string &payload);
    void handleStatsRequest(const std::shared_ptr<Connection> &conn,
                            const std::string &payload);

    /** Serialized frame write; false when the connection is gone. */
    bool sendFrame(const std::shared_ptr<Connection> &conn, FrameType type,
                   std::string_view payload);
    bool sendError(const std::shared_ptr<Connection> &conn,
                   const ErrorInfo &info);
    /** Shut the socket down; the reader thread then exits and closes. */
    void closeConnection(const std::shared_ptr<Connection> &conn);
    /** Close the fd once the reader is gone and no response is pending. */
    static void maybeCloseFd(const std::shared_ptr<Connection> &conn);

    ServerOptions options_;
    FaultInjector *faults_ = nullptr;
    std::unique_ptr<AnalysisService> service_;

    int listenFd_ = -1;
    /// Self-pipe waking the accept poll on drain.
    int wakePipe_[2] = {-1, -1};
    std::thread acceptThread_;
    std::atomic<bool> stopAccept_{false};
    std::atomic<uint64_t> connCounter_{0};

    std::mutex connMutex_;
    std::vector<std::shared_ptr<Connection>> connections_;

    std::mutex drainMutex_;
    std::condition_variable drainCv_;
    bool drainRequested_ = false;

    /// Held across the shutdown sequence so a concurrent
    /// runUntilDrained() (e.g. from the destructor) blocks until the
    /// drain fully completed instead of returning into a teardown race.
    std::mutex shutdownMutex_;
    bool drained_ = false;
};

} // namespace sulong::service

#endif // MS_SERVICE_SERVER_H
