#include "service/protocol.h"

#include "analysis/finding.h"

namespace sulong::service
{

namespace
{

void
appendLe16(std::string &out, uint16_t v)
{
    out.push_back(static_cast<char>(v & 0xFF));
    out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void
appendLe32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; i++)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

uint16_t
readLe16(const char *p)
{
    return static_cast<uint16_t>(static_cast<uint8_t>(p[0]) |
                                 (static_cast<uint8_t>(p[1]) << 8));
}

uint32_t
readLe32(const char *p)
{
    uint32_t v = 0;
    for (int i = 3; i >= 0; i--)
        v = (v << 8) | static_cast<uint8_t>(p[i]);
    return v;
}

/*
 * In-place document builders. Appending key/value pairs piecewise
 * (instead of chaining operator+) keeps one allocation growing and
 * sidesteps GCC 12's spurious -Wrestrict on temporary concatenations.
 * A separator is inserted automatically unless the document is at an
 * opening brace/bracket.
 */

void
addSeparator(std::string &out)
{
    if (!out.empty() && out.back() != '{' && out.back() != '[')
        out += ',';
}

void
addKey(std::string &out, const char *key)
{
    addSeparator(out);
    out += '"';
    out += key;
    out += "\":";
}

void
addString(std::string &out, const char *key, std::string_view value)
{
    addKey(out, key);
    out += '"';
    out += obs::jsonEscape(value);
    out += '"';
}

void
addUint(std::string &out, const char *key, uint64_t value)
{
    addKey(out, key);
    out += std::to_string(value);
}

void
addInt(std::string &out, const char *key, int64_t value)
{
    addKey(out, key);
    out += std::to_string(value);
}

void
addBool(std::string &out, const char *key, bool value)
{
    addKey(out, key);
    out += value ? "true" : "false";
}

} // namespace

bool
isKnownFrameType(uint8_t type)
{
    return type >= static_cast<uint8_t>(FrameType::jobRequest) &&
        type <= static_cast<uint8_t>(FrameType::statsResponse);
}

std::string
encodeFrame(FrameType type, std::string_view payload)
{
    std::string out;
    out.reserve(kFrameHeaderBytes + payload.size());
    appendLe16(out, kFrameMagic);
    out.push_back(static_cast<char>(type));
    out.push_back('\0');
    appendLe32(out, static_cast<uint32_t>(payload.size()));
    out.append(payload);
    return out;
}

const char *
decodeStatusName(DecodeStatus status)
{
    switch (status) {
      case DecodeStatus::needMore:
        return "need-more";
      case DecodeStatus::frame:
        return "frame";
      case DecodeStatus::badMagic:
        return "bad-magic";
      case DecodeStatus::badType:
        return "bad-type";
      case DecodeStatus::oversized:
        return "oversized";
    }
    return "unknown";
}

namespace
{

/**
 * Wire-level abuse counters. Handles are resolved once — registration
 * takes the registry mutex, the increments afterwards are lock-free.
 */
void
countRejectedFrame(const char *reason)
{
    static obs::Counter &malformed = obs::MetricsRegistry::global().counter(
        "service.frames.rejected.malformed");
    static obs::Counter &oversized = obs::MetricsRegistry::global().counter(
        "service.frames.rejected.oversized");
    static obs::Counter &poisoned = obs::MetricsRegistry::global().counter(
        "service.frames.rejected.poisoned");
    if (reason[0] == 'm')
        malformed.inc();
    else if (reason[0] == 'o')
        oversized.inc();
    else
        poisoned.inc();
}

} // namespace

void
FrameReader::feed(std::string_view bytes)
{
    if (poisoned_) {
        // The stream cannot resynchronize; count the post-poison bytes
        // as abuse instead of buffering them forever.
        if (!bytes.empty())
            countRejectedFrame("poisoned");
        return;
    }
    buffer_.append(bytes);
}

DecodeStatus
FrameReader::next(Frame *out)
{
    if (poisoned_)
        return poison_;
    if (buffer_.size() < kFrameHeaderBytes)
        return DecodeStatus::needMore;
    const char *head = buffer_.data();
    if (readLe16(head) != kFrameMagic) {
        poisoned_ = true;
        poison_ = DecodeStatus::badMagic;
        countRejectedFrame("malformed");
        return poison_;
    }
    uint8_t type = static_cast<uint8_t>(head[2]);
    if (!isKnownFrameType(type)) {
        poisoned_ = true;
        poison_ = DecodeStatus::badType;
        countRejectedFrame("malformed");
        return poison_;
    }
    uint32_t length = readLe32(head + 4);
    if (length > maxFrameBytes_) {
        poisoned_ = true;
        poison_ = DecodeStatus::oversized;
        countRejectedFrame("oversized");
        return poison_;
    }
    if (buffer_.size() < kFrameHeaderBytes + length)
        return DecodeStatus::needMore;
    out->type = static_cast<FrameType>(type);
    out->payload.assign(buffer_, kFrameHeaderBytes, length);
    buffer_.erase(0, kFrameHeaderBytes + length);
    return DecodeStatus::frame;
}

bool
toolFromName(const std::string &name, ToolKind *out)
{
    if (name == "safe") {
        *out = ToolKind::safeSulong;
        return true;
    }
    if (name == "clang") {
        *out = ToolKind::clang;
        return true;
    }
    if (name == "asan") {
        *out = ToolKind::asan;
        return true;
    }
    if (name == "memcheck") {
        *out = ToolKind::memcheck;
        return true;
    }
    return false;
}

std::string
encodeJobRequest(const JobRequest &request)
{
    std::string out = "{";
    addString(out, "schema", "msulong.job/v1");
    addString(out, "tenant", request.tenant);
    addString(out, "tool", request.tool);
    addUint(out, "opt",
            static_cast<uint64_t>(request.optLevel < 0 ? 0
                                                       : request.optLevel));
    addString(out, "source", request.source);
    addKey(out, "args");
    out += '[';
    for (size_t i = 0; i < request.args.size(); i++) {
        if (i > 0)
            out += ',';
        out += '"';
        out += obs::jsonEscape(request.args[i]);
        out += '"';
    }
    out += ']';
    addString(out, "stdin", request.stdinData);
    addBool(out, "analyze", request.analyze);
    addKey(out, "limits");
    out += '{';
    addUint(out, "max_steps", request.maxSteps);
    addUint(out, "max_call_depth", request.maxCallDepth);
    addUint(out, "heap_limit", request.maxHeapBytes);
    addUint(out, "output_limit", request.maxOutputBytes);
    addUint(out, "deadline_ms", request.deadlineMs);
    out += '}';
    if (!request.traceId.empty()) {
        addKey(out, "trace");
        out += '{';
        addString(out, "trace_id", request.traceId);
        if (request.parentSpan != 0)
            addString(out, "parent_span",
                      obs::spanIdToHex(request.parentSpan));
        out += '}';
    }
    out += '}';
    return out;
}

bool
decodeJobRequest(const obs::JsonValue &doc, JobRequest *out,
                 std::string *error)
{
    auto fail = [error](const char *why) {
        if (error != nullptr)
            *error = why;
        return false;
    };
    if (!doc.isObject())
        return fail("request payload is not a JSON object");
    if (doc.stringAt("schema") != "msulong.job/v1")
        return fail("missing or unsupported schema "
                    "(expected \"msulong.job/v1\")");
    JobRequest request;
    request.tenant = doc.stringAt("tenant", "default");
    if (request.tenant.empty() || request.tenant.size() > 64)
        return fail("tenant must be 1..64 characters");
    request.tool = doc.stringAt("tool", "safe");
    ToolKind kind;
    if (!toolFromName(request.tool, &kind))
        return fail("unknown tool (expected safe|clang|asan|memcheck)");
    request.optLevel = static_cast<int>(doc.uintAt("opt", 0));
    const obs::JsonValue *source = doc.find("source");
    if (source == nullptr || !source->isString())
        return fail("missing string field \"source\"");
    request.source = source->asString();
    if (const obs::JsonValue *args = doc.find("args")) {
        if (!args->isArray())
            return fail("\"args\" must be an array of strings");
        for (const obs::JsonValue &arg : args->elements()) {
            if (!arg.isString())
                return fail("\"args\" must be an array of strings");
            request.args.push_back(arg.asString());
        }
    }
    request.stdinData = doc.stringAt("stdin");
    request.analyze = doc.boolAt("analyze", false);
    if (const obs::JsonValue *limits = doc.find("limits")) {
        if (!limits->isObject())
            return fail("\"limits\" must be an object");
        request.maxSteps = limits->uintAt("max_steps", 0);
        request.maxCallDepth = limits->uintAt("max_call_depth", 0);
        request.maxHeapBytes = limits->uintAt("heap_limit", 0);
        request.maxOutputBytes = limits->uintAt("output_limit", 0);
        request.deadlineMs = limits->uintAt("deadline_ms", 0);
    }
    if (const obs::JsonValue *trace = doc.find("trace")) {
        if (!trace->isObject())
            return fail("\"trace\" must be an object");
        request.traceId = trace->stringAt("trace_id");
        if (request.traceId.size() != 32 ||
            !obs::isLowerHex(request.traceId))
            return fail("\"trace_id\" must be 32 lowercase hex chars");
        const std::string &parent = trace->stringAt("parent_span");
        if (!parent.empty() &&
            !obs::parseSpanIdHex(parent, &request.parentSpan))
            return fail("\"parent_span\" must be 1..16 hex chars");
    }
    *out = std::move(request);
    return true;
}

std::string
encodeStatsRequest(const StatsRequest &request)
{
    std::string out = "{";
    addString(out, "schema", "msulong.stats-request/v1");
    addString(out, "format", request.format);
    if (!request.traceId.empty())
        addString(out, "trace_id", request.traceId);
    out += '}';
    return out;
}

bool
decodeStatsRequest(const obs::JsonValue &doc, StatsRequest *out,
                   std::string *error)
{
    auto fail = [error](const char *why) {
        if (error != nullptr)
            *error = why;
        return false;
    };
    if (!doc.isObject())
        return fail("stats request payload is not a JSON object");
    if (doc.stringAt("schema") != "msulong.stats-request/v1")
        return fail("missing or unsupported schema "
                    "(expected \"msulong.stats-request/v1\")");
    StatsRequest request;
    request.format = doc.stringAt("format", "json");
    if (request.format != "json" && request.format != "prometheus")
        return fail("\"format\" must be \"json\" or \"prometheus\"");
    request.traceId = doc.stringAt("trace_id");
    if (!request.traceId.empty() &&
        (request.traceId.size() != 32 || !obs::isLowerHex(request.traceId)))
        return fail("\"trace_id\" must be 32 lowercase hex chars");
    *out = std::move(request);
    return true;
}

std::string
encodeErrorPayload(const ErrorInfo &info)
{
    std::string out = "{";
    addString(out, "schema", "msulong.error/v1");
    addString(out, "code", info.code);
    addString(out, "detail", info.detail);
    if (info.retryAfterMs != 0)
        addUint(out, "retry_after_ms", info.retryAfterMs);
    out += '}';
    return out;
}

std::string
encodeJobResponse(const JobOutcome &outcome)
{
    const ExecutionResult &result = outcome.result;
    std::string out = "{";
    addString(out, "schema", "msulong.result/v1");
    addUint(out, "id", outcome.id);
    addString(out, "tenant", outcome.tenant);
    addString(out, "tool", outcome.tool);
    addUint(out, "opt",
            static_cast<uint64_t>(outcome.optLevel < 0 ? 0
                                                       : outcome.optLevel));
    addInt(out, "exit_code", result.exitCode);
    addString(out, "termination", terminationKindName(result.termination));
    addString(out, "termination_detail", result.terminationDetail);
    if (result.bug.kind != ErrorKind::none) {
        addKey(out, "bug");
        out += '{';
        addString(out, "kind", errorKindName(result.bug.kind));
        addString(out, "access", accessKindName(result.bug.access));
        addString(out, "storage", storageKindName(result.bug.storage));
        addString(out, "function", result.bug.function);
        addString(out, "detail", result.bug.detail);
        if (result.bug.offset.has_value())
            addInt(out, "offset", *result.bug.offset);
        if (result.bug.objectSize.has_value())
            addInt(out, "object_size", *result.bug.objectSize);
        out += '}';
    }
    addString(out, "output", result.output);
    addString(out, "err_output", result.errOutput);
    addUint(out, "attempts", outcome.stats.attempts);
    if (outcome.analyzed) {
        addKey(out, "static");
        out += '{';
        addUint(out, "definite", outcome.stats.staticDefinite);
        addUint(out, "maybe", outcome.stats.staticMaybe);
        addKey(out, "findings");
        out += '[';
        for (size_t i = 0; i < outcome.stats.staticFindings.size(); i++) {
            const StaticFinding &finding = outcome.stats.staticFindings[i];
            if (i > 0)
                out += ',';
            out += '{';
            addString(out, "kind", errorKindName(finding.kind));
            addString(out, "confidence",
                      confidenceName(finding.confidence));
            addString(out, "function", finding.function);
            addUint(out, "block", finding.blockIndex);
            addUint(out, "inst", finding.instIndex);
            addString(out, "detail", finding.detail);
            out += '}';
        }
        out += "]}";
    }
    out += '}';
    return out;
}

} // namespace sulong::service
