#include "service/client.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace sulong::service
{

namespace
{

void
setError(std::string *error, std::string message)
{
    if (error != nullptr)
        *error = std::move(message);
}

} // namespace

ServiceClient::~ServiceClient()
{
    close();
}

bool
ServiceClient::connect(const std::string &socket_path, std::string *error)
{
    close();
    sockaddr_un addr{};
    if (socket_path.empty() ||
        socket_path.size() >= sizeof(addr.sun_path)) {
        setError(error, "socket path must be 1.." +
                            std::to_string(sizeof(addr.sun_path) - 1) +
                            " bytes");
        return false;
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        setError(error, std::string("socket: ") + std::strerror(errno));
        return false;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        setError(error, "connect " + socket_path + ": " +
                            std::strerror(errno));
        ::close(fd_);
        fd_ = -1;
        return false;
    }
    reader_ = FrameReader();
    return true;
}

void
ServiceClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
ServiceClient::sendRaw(std::string_view bytes, std::string *error)
{
    if (fd_ < 0) {
        setError(error, "not connected");
        return false;
    }
    const char *p = bytes.data();
    size_t left = bytes.size();
    while (left > 0) {
        ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setError(error, std::string("send: ") + std::strerror(errno));
            return false;
        }
        p += n;
        left -= static_cast<size_t>(n);
    }
    return true;
}

bool
ServiceClient::sendFrame(FrameType type, std::string_view payload,
                         std::string *error)
{
    return sendRaw(encodeFrame(type, payload), error);
}

bool
ServiceClient::readFrame(Frame *out, std::string *error,
                         unsigned timeout_ms)
{
    if (fd_ < 0) {
        setError(error, "not connected");
        return false;
    }
    auto deadline = std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms);
    char buf[4096];
    for (;;) {
        DecodeStatus status = reader_.next(out);
        if (status == DecodeStatus::frame)
            return true;
        if (status != DecodeStatus::needMore) {
            setError(error, std::string("protocol error from daemon: ") +
                                decodeStatusName(status));
            return false;
        }
        int wait_ms = timeout_ms == 0
            ? 500
            : static_cast<int>(std::chrono::duration_cast<
                                   std::chrono::milliseconds>(
                                   deadline -
                                   std::chrono::steady_clock::now())
                                   .count());
        if (timeout_ms != 0 && wait_ms <= 0) {
            setError(error, "timed out waiting for a frame");
            return false;
        }
        pollfd pfd = {fd_, POLLIN, 0};
        int rc = ::poll(&pfd, 1, wait_ms);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            setError(error, std::string("poll: ") + std::strerror(errno));
            return false;
        }
        if (rc == 0)
            continue;
        ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n == 0) {
            setError(error, "connection closed by daemon");
            return false;
        }
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN)
                continue;
            setError(error, std::string("recv: ") + std::strerror(errno));
            return false;
        }
        reader_.feed(std::string_view(buf, static_cast<size_t>(n)));
    }
}

bool
ServiceClient::submitJob(const JobRequest &request, Frame *reply,
                         std::string *error, unsigned timeout_ms)
{
    if (!sendFrame(FrameType::jobRequest, encodeJobRequest(request), error))
        return false;
    return readFrame(reply, error, timeout_ms);
}

const std::string &
ServiceClient::traceId()
{
    if (traceId_.empty())
        traceId_ = obs::mintTraceId();
    return traceId_;
}

bool
ServiceClient::submitTracedJob(JobRequest request, Frame *reply,
                               std::string *error, unsigned timeout_ms)
{
    request.traceId = traceId();
    // The round trip runs under a client-side span whose id the daemon
    // adopts as its parent — the seam where the two halves of the
    // merged trace join.
    uint64_t parent = obs::mintSpanId();
    request.parentSpan = parent;
    obs::TraceContextScope scope(obs::TraceContext{request.traceId, parent});
    uint64_t startNs = obs::TraceCollector::global().nowNs();
    bool ok = submitJob(request, reply, error, timeout_ms);
    if (obs::tracingEnabled()) {
        obs::TraceEvent event;
        event.name = "client.submit";
        event.detail = "tenant " + request.tenant;
        event.phase = 'X';
        event.tsNs = startNs;
        event.durNs = obs::TraceCollector::global().nowNs() - startNs;
        event.traceId = request.traceId;
        event.spanId = parent;
        obs::TraceCollector::global().record(std::move(event));
    }
    return ok;
}

bool
ServiceClient::stats(const StatsRequest &request, obs::JsonValue *out,
                     std::string *error)
{
    if (!sendFrame(FrameType::statsRequest, encodeStatsRequest(request),
                   error))
        return false;
    Frame reply;
    if (!readFrame(&reply, error))
        return false;
    if (reply.type != FrameType::statsResponse) {
        setError(error, "unexpected reply to a stats request");
        return false;
    }
    return obs::parseJson(reply.payload, out, error);
}

bool
ServiceClient::health(obs::JsonValue *out, std::string *error)
{
    if (!sendFrame(FrameType::healthRequest, "", error))
        return false;
    Frame reply;
    if (!readFrame(&reply, error))
        return false;
    if (reply.type != FrameType::healthResponse) {
        setError(error, "unexpected reply to a health request");
        return false;
    }
    return obs::parseJson(reply.payload, out, error);
}

bool
ServiceClient::requestDrain(std::string *error)
{
    if (!sendFrame(FrameType::drainRequest, "", error))
        return false;
    Frame reply;
    if (!readFrame(&reply, error))
        return false;
    if (reply.type != FrameType::drainAck) {
        setError(error, "unexpected reply to a drain request");
        return false;
    }
    return true;
}

} // namespace sulong::service
