/**
 * @file
 * The daemon's execution core: multi-tenant admission control over a
 * shared worker pool, per-job fault isolation, and graceful drain.
 *
 * Transport-free by design — the socket server (server.h), the in-process
 * bench (bench/bench_service.cc), and the tests all drive the same
 * AnalysisService, so every admission/backpressure/drain property is
 * testable without a socket.
 *
 * Admission is a two-level token scheme checked before a job ever
 * reaches the pool: a global bound (queueCapacity) on jobs admitted but
 * not yet finished, and a per-tenant bound (tenantCapacity) that stops
 * one noisy tenant from filling the global queue — tenants degrade
 * individually, the service degrades gracefully. Rejections are cheap,
 * structured, and carry a retry hint; nothing blocks the caller.
 *
 * Every admitted job runs through runGuardedJob (the batch runner's
 * isolation seam): host exceptions become TerminationKind::hostFault
 * results with optional retry/backoff, a shared JobWatchdog cancels
 * attempts past their wall-clock budget, and request ResourceLimits are
 * clamped against the daemon's ceiling so no tenant escapes governance.
 */

#ifndef MS_SERVICE_SERVICE_H
#define MS_SERVICE_SERVICE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include <deque>
#include <vector>

#include "obs/flightrec.h"
#include "obs/window.h"
#include "service/protocol.h"
#include "support/limits.h"
#include "support/thread_pool.h"
#include "tools/batch_runner.h"
#include "tools/compile_cache.h"

namespace sulong
{
class FaultInjector;
}

namespace sulong::service
{

struct ServiceConfig
{
    /// Worker threads executing jobs (0 = one per hardware thread).
    unsigned workers = 2;
    /// Global bound on jobs admitted but not yet finished; submissions
    /// past it are rejected with a retry hint instead of queued.
    size_t queueCapacity = 64;
    /// Per-tenant share of the queue; one tenant at its cap is rejected
    /// while others are still admitted (fair-share degradation).
    size_t tenantCapacity = 16;
    /// Wall-clock budget per job attempt (execution only); 0 disables
    /// the watchdog timer.
    unsigned watchdogMs = 0;
    /// Extra attempts after a hostFault outcome.
    unsigned retries = 0;
    unsigned retryBackoffMs = 5;
    /// LRU bound of the shared compile cache (0 = unbounded).
    size_t cacheCapacity = 64;
    /// Largest accepted request source, in bytes.
    size_t maxSourceBytes = 1u << 20;
    /// Per-field ceiling clamped onto request limits: a request may
    /// tighten a budget but never exceed (or zero out) a non-zero
    /// ceiling field.
    ResourceLimits limitCeiling;
    /// Chaos hook shared with the server; jobs report
    /// "service.job/<id>" per attempt.
    FaultInjector *faults = nullptr;
    /// Directory for "msulong.postmortem/v1" documents, one file per
    /// dead job ("" = keep them in memory only).
    std::string postmortemDir;
    /// Most recent postmortem documents retained in memory (for the
    /// stats endpoint and transport-free tests).
    size_t postmortemKeep = 16;
    /// Flight-recorder ring capacity per job.
    size_t flightRecorderCapacity = 64;
};

enum class AdmitStatus : uint8_t
{
    accepted,
    /// queueCapacity reached; retry after the hint.
    overloadedGlobal,
    /// This tenant's share is full; retry after the hint.
    overloadedTenant,
    /// The service is draining and accepts nothing new.
    draining,
    /// The request itself is unacceptable (e.g. source too large).
    invalid,
};

const char *admitStatusName(AdmitStatus status);

class AnalysisService
{
  public:
    explicit AnalysisService(const ServiceConfig &config);
    ~AnalysisService();

    AnalysisService(const AnalysisService &) = delete;
    AnalysisService &operator=(const AnalysisService &) = delete;

    /**
     * Completion callback: invoked exactly once per *accepted* job,
     * on a worker thread, whatever the outcome (success, bug, resource
     * termination, host fault, drain cancellation).
     */
    using DoneFn = std::function<void(const JobOutcome &outcome)>;

    /**
     * Admit or reject @p request. Accepted jobs run asynchronously and
     * report through @p done; rejected ones never invoke it. On an
     * overloaded rejection, *retry_after_ms (when non-null) receives
     * the suggested client backoff.
     */
    AdmitStatus submit(JobRequest request, DoneFn done,
                       uint64_t *retry_after_ms = nullptr);

    /** Stop admitting; jobs already accepted keep running. */
    void beginDrain();

    /**
     * Graceful shutdown: stop admitting, give in-flight jobs
     * @p grace_ms to finish, then cancel the stragglers through the
     * watchdog (their clients still get structured cancelled results),
     * and return once every accepted job has reported.
     */
    void drain(unsigned grace_ms);

    bool draining() const;
    /** Jobs admitted but not yet finished. */
    size_t pending() const;
    unsigned workers() const;
    CompileCacheStats cacheStats() const;

    /** "msulong.health/v1" snapshot document. */
    std::string healthJson() const;

    /**
     * "msulong.stats/v1" document answering @p request: the full
     * metrics registry (obs/v1 JSON or wrapped Prometheus text),
     * sliding-window rates, per-tenant pending counts, and — when the
     * request names a trace id — the daemon-side trace events of that
     * trace so the client can merge them into its own file.
     */
    std::string statsJson(const StatsRequest &request) const;

    /** Most recent postmortem documents, oldest first. */
    std::vector<std::string> recentPostmortems() const;

  private:
    void runJob(uint64_t id, JobRequest request, const DoneFn &done);
    ResourceLimits effectiveLimits(const JobRequest &request) const;
    void finishJob(const std::string &tenant);
    /** Milliseconds since construction (sliding-window clock). */
    uint64_t nowMs() const;
    /** Serialize, retain, and (when configured) persist a postmortem. */
    void emitPostmortem(const obs::PostmortemInfo &info,
                        const obs::FlightRecorder &recorder);

    ServiceConfig config_;
    CompileCache cache_;
    JobWatchdog watchdog_;
    /// Observed by runGuardedJob: set during the hard phase of a drain
    /// so queued jobs fast-cancel instead of running.
    std::atomic<bool> hardDrain_{false};
    std::chrono::steady_clock::time_point started_;

    mutable std::mutex mutex_;
    std::condition_variable idleCv_;
    bool draining_ = false;
    size_t pending_ = 0;
    /// Tenants with at least one pending job.
    std::map<std::string, size_t> tenantPending_;
    uint64_t nextId_ = 1;

    /// Last-minute admission/rejection/completion rates for the live
    /// exposition (60 one-second buckets; out-of-band by construction).
    obs::SlidingWindow windowAdmitted_;
    obs::SlidingWindow windowRejected_;
    obs::SlidingWindow windowCompleted_;

    mutable std::mutex postmortemMutex_;
    std::deque<std::string> postmortems_; ///< Recent documents.
    uint64_t postmortemCount_ = 0;        ///< Ever produced.

    /// Declared last: destroyed first, so the pool drains its queue
    /// while the watchdog and cache are still alive.
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace sulong::service

#endif // MS_SERVICE_SERVICE_H
