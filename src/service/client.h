/**
 * @file
 * Blocking client for the msulongd wire protocol. Used by the
 * msulong_client CLI, the service tests (which also need the raw-byte
 * escape hatch to send deliberately broken frames), and bench_service.
 */

#ifndef MS_SERVICE_CLIENT_H
#define MS_SERVICE_CLIENT_H

#include <string>
#include <string_view>

#include "service/protocol.h"

namespace sulong::service
{

class ServiceClient
{
  public:
    ServiceClient() = default;
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    bool connect(const std::string &socket_path, std::string *error);
    void close();
    bool connected() const { return fd_ >= 0; }

    /** Send raw bytes as-is (tests use this to poison the stream). */
    bool sendRaw(std::string_view bytes, std::string *error);

    bool sendFrame(FrameType type, std::string_view payload,
                   std::string *error);

    /**
     * Block until one complete frame arrives. @return false on
     * timeout, EOF, or a transport error (*error distinguishes them).
     */
    bool readFrame(Frame *out, std::string *error,
                   unsigned timeout_ms = 30000);

    /** Send one job request and wait for its response or error frame. */
    bool submitJob(const JobRequest &request, Frame *reply,
                   std::string *error, unsigned timeout_ms = 30000);

    /**
     * Mint a trace context for this client (idempotent). Subsequent
     * submitTracedJob calls stamp it onto their requests, so the
     * daemon's spans join this client's trace.
     */
    const std::string &traceId();

    /**
     * submitJob with the client's trace context attached: fills the
     * request's trace fields (minting the trace id on first use),
     * wraps the round trip in a client-side "client.submit" span, and
     * passes its span id as the daemon's parent.
     */
    bool submitTracedJob(JobRequest request, Frame *reply,
                         std::string *error, unsigned timeout_ms = 30000);

    /** Fetch the daemon's health snapshot. */
    bool health(obs::JsonValue *out, std::string *error);

    /** Fetch a "msulong.stats/v1" document (parsed). */
    bool stats(const StatsRequest &request, obs::JsonValue *out,
               std::string *error);

    /** Ask the daemon to drain; waits for the drainAck. */
    bool requestDrain(std::string *error);

  private:
    int fd_ = -1;
    FrameReader reader_;
    std::string traceId_; ///< Minted on first traced submit.
};

} // namespace sulong::service

#endif // MS_SERVICE_CLIENT_H
