/**
 * @file
 * Wire protocol of the analysis daemon (msulongd).
 *
 * Frames are length-prefixed so a stream socket can carry a mix of job,
 * health, and drain traffic without in-band delimiters:
 *
 *     offset  size  field
 *     0       2     magic 0x4D53 ("MS"), little-endian
 *     2       1     FrameType
 *     3       1     reserved (must be 0 on send, ignored on receive)
 *     4       4     payload length, little-endian
 *     8       n     payload (UTF-8 JSON for every defined type)
 *
 * Payload schemas are versioned JSON documents ("msulong.job/v1",
 * "msulong.result/v1", ...). Responses deliberately carry no wall-clock
 * timings — latency goes to the obs histograms only — so the payload a
 * client receives for a given request sequence is byte-identical
 * whatever the daemon's worker count (the repo-wide determinism
 * contract, extended to the wire).
 */

#ifndef MS_SERVICE_PROTOCOL_H
#define MS_SERVICE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "support/error.h"
#include "tools/batch_runner.h"
#include "tools/driver.h"

namespace sulong::service
{

/// "MS", little-endian, at the start of every frame.
constexpr uint16_t kFrameMagic = 0x4D53;
constexpr size_t kFrameHeaderBytes = 8;
/// Default per-frame payload cap; a larger announced length is a
/// protocol error, not an allocation.
constexpr uint32_t kDefaultMaxFrameBytes = 4u << 20;

enum class FrameType : uint8_t
{
    /// client -> daemon: one "msulong.job/v1" document.
    jobRequest = 1,
    /// daemon -> client: the matching "msulong.result/v1" document.
    jobResponse = 2,
    /// daemon -> client: structured error ("msulong.error/v1").
    error = 3,
    /// client -> daemon: empty payload.
    healthRequest = 4,
    /// daemon -> client: "msulong.health/v1" snapshot.
    healthResponse = 5,
    /// client -> daemon: ask the daemon to drain and exit.
    drainRequest = 6,
    /// daemon -> client: drain acknowledged (sent before draining).
    drainAck = 7,
    /// client -> daemon: "msulong.stats-request/v1" (live exposition).
    statsRequest = 8,
    /// daemon -> client: "msulong.stats/v1" document.
    statsResponse = 9,
};

bool isKnownFrameType(uint8_t type);

struct Frame
{
    FrameType type = FrameType::error;
    std::string payload;
};

/** Serialize one frame (header + payload). */
std::string encodeFrame(FrameType type, std::string_view payload);

enum class DecodeStatus : uint8_t
{
    /// No complete frame buffered yet.
    needMore,
    /// One frame extracted into *out.
    frame,
    /// Stream poisoned: bytes at the read position are not a frame
    /// header. The connection cannot resynchronize and must close.
    badMagic,
    /// Header is well-formed but the type byte is undefined.
    badType,
    /// Announced payload length exceeds the configured cap.
    oversized,
};

const char *decodeStatusName(DecodeStatus status);

/**
 * Incremental frame decoder: feed() arbitrary byte chunks as they
 * arrive, then pull complete frames with next(). A protocol error
 * (badMagic/badType/oversized) is sticky — the stream has no way back
 * to a frame boundary, so the caller reports it and closes.
 */
class FrameReader
{
  public:
    explicit FrameReader(uint32_t max_frame_bytes = kDefaultMaxFrameBytes)
        : maxFrameBytes_(max_frame_bytes)
    {}

    /**
     * Buffer incoming bytes. Bytes arriving after the stream poisoned
     * are discarded and counted (`service.frames.rejected.poisoned`);
     * the other rejection reasons are counted when next() poisons
     * (`.malformed` for badMagic/badType, `.oversized`).
     */
    void feed(std::string_view bytes);

    DecodeStatus next(Frame *out);

    /** Bytes received but not yet consumed by next(). */
    size_t buffered() const { return buffer_.size(); }

  private:
    uint32_t maxFrameBytes_;
    std::string buffer_;
    bool poisoned_ = false;
    DecodeStatus poison_ = DecodeStatus::needMore;
};

/**
 * One analysis job as submitted over the wire ("msulong.job/v1").
 * Limits of 0 inherit the daemon's configured default/ceiling for that
 * field — a tenant can tighten its budget but never escape the cap.
 */
struct JobRequest
{
    std::string tenant = "default";
    /// "safe" | "clang" | "asan" | "memcheck".
    std::string tool = "safe";
    int optLevel = 0;
    std::string source;
    std::vector<std::string> args;
    std::string stdinData;
    /// Also run the static analyzer and include its findings.
    bool analyze = false;
    uint64_t maxSteps = 0;
    uint64_t maxCallDepth = 0;
    uint64_t maxHeapBytes = 0;
    uint64_t maxOutputBytes = 0;
    uint64_t deadlineMs = 0;
    /// Optional distributed-trace context minted by the client: daemon
    /// spans for this job join the caller's trace. Strictly out-of-band
    /// — presence or absence never changes the result payload.
    std::string traceId;     ///< 32 lowercase hex chars ("" = none).
    uint64_t parentSpan = 0; ///< Client-side parent span id.
};

/** Map a wire tool name to a ToolKind; false for unknown names. */
bool toolFromName(const std::string &name, ToolKind *out);

/** Serialize @p request as a "msulong.job/v1" document. */
std::string encodeJobRequest(const JobRequest &request);

/**
 * Validate and decode a parsed "msulong.job/v1" document.
 * @return false (with *error describing the first problem) when the
 *         schema tag, tool name, or field types are wrong.
 */
bool decodeJobRequest(const obs::JsonValue &doc, JobRequest *out,
                      std::string *error);

/**
 * Live exposition request ("msulong.stats-request/v1"). The reply is
 * always a "msulong.stats/v1" JSON document; for format "prometheus"
 * it wraps the text exposition in an "expo" string member so every
 * frame payload on the wire stays JSON.
 */
struct StatsRequest
{
    /// "json" | "prometheus".
    std::string format = "json";
    /// Non-empty: also include the daemon's trace events carrying this
    /// trace id (the client merges them into its own trace file).
    std::string traceId;
};

std::string encodeStatsRequest(const StatsRequest &request);

/** Validate and decode; false (with *error) on a bad document. */
bool decodeStatsRequest(const obs::JsonValue &doc, StatsRequest *out,
                        std::string *error);

/** Structured daemon-side error ("msulong.error/v1"). */
struct ErrorInfo
{
    /// "malformed-frame" | "oversized-frame" | "bad-request" |
    /// "overloaded" | "draining" | "read-fault" | "write-fault" |
    /// "internal".
    std::string code;
    std::string detail;
    /// For "overloaded": suggested client backoff before retrying.
    uint64_t retryAfterMs = 0;
};

std::string encodeErrorPayload(const ErrorInfo &info);

/** Everything the daemon reports back for one admitted job. */
struct JobOutcome
{
    /// Daemon-assigned id, echoed so a pipelining client can match
    /// responses to requests.
    uint64_t id = 0;
    std::string tenant;
    std::string tool;
    int optLevel = 0;
    bool analyzed = false;
    ExecutionResult result;
    BatchReport::JobStats stats;
};

/**
 * Serialize @p outcome as a "msulong.result/v1" document. Contains no
 * wall-clock fields (see file comment).
 */
std::string encodeJobResponse(const JobOutcome &outcome);

} // namespace sulong::service

#endif // MS_SERVICE_PROTOCOL_H
