#include "study/classifier.h"

#include <map>
#include <sstream>

#include "support/string_utils.h"

namespace sulong
{

const char *
bugClassName(BugClass bug_class)
{
    switch (bug_class) {
      case BugClass::spatial: return "Spatial";
      case BugClass::temporal: return "Temporal";
      case BugClass::nullDeref: return "NULL deref";
      case BugClass::other: return "Other";
      case BugClass::unrelated: return "Unrelated";
    }
    return "invalid";
}

BugClass
bugClassOfError(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::outOfBounds:
      case ErrorKind::segfault:
        return BugClass::spatial;
      case ErrorKind::useAfterFree:
        return BugClass::temporal;
      case ErrorKind::nullDeref:
        return BugClass::nullDeref;
      case ErrorKind::doubleFree:
      case ErrorKind::invalidFree:
      case ErrorKind::varargs:
      case ErrorKind::typeError:
      case ErrorKind::uninitRead:
        return BugClass::other;
      case ErrorKind::none:
      case ErrorKind::memoryLeak:
      case ErrorKind::engineError:
        return BugClass::unrelated;
    }
    return BugClass::unrelated;
}

VulnCategory
classifyRecord(const VulnRecord &record)
{
    const std::string &text = record.description;
    // Keyword groups mirror the paper's search terms; order matters:
    // a "heap buffer overflow after free" should count once, as
    // temporal bugs are usually described by their use-after-free
    // aspect first — we follow CVE wording precedence instead and
    // test spatial keywords first (they dominate the database).
    static const char *const spatialKeys[] = {
        "buffer overflow", "buffer underflow", "out-of-bounds",
        "out of bounds", "oob read", "oob write", "stack overflow",
        "heap overflow", "off-by-one buffer",
    };
    static const char *const temporalKeys[] = {
        "use-after-free", "use after free", "dangling pointer",
    };
    static const char *const nullKeys[] = {
        "null pointer dereference", "null dereference",
        "null-pointer dereference",
    };
    static const char *const otherKeys[] = {
        "double free", "double-free", "invalid free", "format string",
    };
    for (const char *key : spatialKeys) {
        if (containsIgnoreCase(text, key))
            return VulnCategory::spatial;
    }
    for (const char *key : temporalKeys) {
        if (containsIgnoreCase(text, key))
            return VulnCategory::temporal;
    }
    for (const char *key : nullKeys) {
        if (containsIgnoreCase(text, key))
            return VulnCategory::nullDeref;
    }
    for (const char *key : otherKeys) {
        if (containsIgnoreCase(text, key))
            return VulnCategory::other;
    }
    return VulnCategory::unrelated;
}

std::vector<YearlyCounts>
countByYear(const std::vector<VulnRecord> &records, bool exploits_only)
{
    std::map<int, YearlyCounts> by_year;
    for (const VulnRecord &record : records) {
        if (exploits_only && !record.hasExploit)
            continue;
        YearlyCounts &counts = by_year[record.year];
        counts.year = record.year;
        switch (classifyRecord(record)) {
          case VulnCategory::spatial: counts.spatial++; break;
          case VulnCategory::temporal: counts.temporal++; break;
          case VulnCategory::nullDeref: counts.nullDeref++; break;
          case VulnCategory::other: counts.other++; break;
          case VulnCategory::unrelated: break;
        }
    }
    std::vector<YearlyCounts> out;
    for (const auto &[year, counts] : by_year)
        out.push_back(counts);
    return out;
}

std::string
formatCounts(const std::vector<YearlyCounts> &counts,
             const std::string &title)
{
    std::ostringstream os;
    os << title << "\n";
    os << "  " << padRight("year", 6) << padLeft("spatial", 9)
       << padLeft("temporal", 10) << padLeft("null", 7)
       << padLeft("other", 8) << "\n";
    for (const YearlyCounts &c : counts) {
        os << "  " << padRight(std::to_string(c.year), 6)
           << padLeft(std::to_string(c.spatial), 9)
           << padLeft(std::to_string(c.temporal), 10)
           << padLeft(std::to_string(c.nullDeref), 7)
           << padLeft(std::to_string(c.other), 8) << "\n";
    }
    return os.str();
}

} // namespace sulong
