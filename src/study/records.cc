#include "study/records.h"

#include "support/rng.h"

namespace sulong
{

namespace
{

/** Phrase pool per category; classification keywords appear inside
 *  larger, realistic sentences. */
const char *const spatialPhrases[] = {
    "stack-based buffer overflow in the request parser allows remote "
    "attackers to execute arbitrary code",
    "heap-based buffer overflow when decoding oversized frames",
    "out-of-bounds read in the TIFF decoder leads to information "
    "disclosure",
    "out-of-bounds write via a crafted font file",
    "buffer overflow in the cookie handling of the HTTP client",
    "global buffer overflow triggered by a long locale name",
    "buffer underflow when rewinding the token stream",
    "off-by-one buffer overflow in the path canonicalizer",
};

const char *const temporalPhrases[] = {
    "use-after-free in the DOM event dispatcher allows remote code "
    "execution",
    "use after free when the session is closed during renegotiation",
    "dangling pointer dereference after the cache is invalidated",
    "use-after-free in the timer callback queue",
};

const char *const nullPhrases[] = {
    "NULL pointer dereference when the header is missing, causing a "
    "denial of service",
    "null pointer dereference in the certificate parser",
    "crash due to a NULL dereference on malformed input",
};

const char *const otherPhrases[] = {
    "double free in the error path of the connection pool",
    "invalid free of a stack address when parsing fails",
    "format string vulnerability in the logging facility",
    "double-free when the handshake is aborted twice",
};

const char *const unrelatedPhrases[] = {
    "SQL injection in the admin search form",
    "cross-site scripting (XSS) in the comment preview",
    "improper access control on the metrics endpoint",
    "directory traversal in the archive extractor",
    "cryptographic signature not verified before update installation",
    "race condition in the privilege drop (TOCTOU)",
    "integer truncation leads to an authentication bypass",
    "cleartext storage of credentials in the debug log",
};

/** Per-year volume model: {spatial, temporal, null, other, unrelated}.
 *  Shaped on the paper's Fig. 1: spatial highest and rising to an
 *  all-time high in 2017 (2017 covers only Jan..Sep, like the study). */
struct YearModel
{
    int year;
    unsigned spatial, temporal, nullDeref, other, unrelated;
};

const YearModel yearModels[] = {
    {2012, 330, 155, 115, 40, 900},
    {2013, 290, 175, 120, 45, 950},
    {2014, 310, 200, 160, 50, 1000},
    {2015, 430, 245, 150, 55, 1050},
    {2016, 560, 205, 160, 60, 1100},
    {2017, 690, 240, 175, 65, 1150},
};

/** Exploit availability differs per category (Fig. 2: spatial bugs are
 *  weaponized far more often than NULL dereferences). */
double
exploitRate(int category_index, int year)
{
    double boost = 1.0 + 0.03 * (year - 2012);
    switch (category_index) {
      case 0: return 0.105 * boost; // spatial
      case 1: return 0.085 * boost; // temporal
      case 2: return 0.055;         // null deref (DoS only, less traded)
      case 3: return 0.075;         // other
      default: return 0.040;        // unrelated
    }
}

} // namespace

std::vector<VulnRecord>
synthesizeVulnDatabase(uint64_t seed)
{
    Rng rng(seed);
    std::vector<VulnRecord> records;
    unsigned serial = 1000;
    for (const YearModel &model : yearModels) {
        struct Pool
        {
            const char *const *phrases;
            size_t count;
            unsigned volume;
        };
        const Pool pools[5] = {
            {spatialPhrases, std::size(spatialPhrases), model.spatial},
            {temporalPhrases, std::size(temporalPhrases), model.temporal},
            {nullPhrases, std::size(nullPhrases), model.nullDeref},
            {otherPhrases, std::size(otherPhrases), model.other},
            {unrelatedPhrases, std::size(unrelatedPhrases),
             model.unrelated},
        };
        for (int cat = 0; cat < 5; cat++) {
            // +-6% jitter so the series look like measurements.
            unsigned n = pools[cat].volume;
            n = static_cast<unsigned>(
                n * (0.94 + 0.12 * rng.nextDouble()));
            for (unsigned i = 0; i < n; i++) {
                VulnRecord record;
                record.year = model.year;
                // The study window is 2012-03 .. 2017-09.
                int lo = model.year == 2012 ? 3 : 1;
                int hi = model.year == 2017 ? 9 : 12;
                record.month =
                    static_cast<int>(rng.nextRange(lo, hi));
                record.id = "CVE-" + std::to_string(model.year) + "-" +
                    std::to_string(serial++);
                record.description =
                    pools[cat].phrases[rng.nextBelow(pools[cat].count)];
                record.hasExploit =
                    rng.chance(exploitRate(cat, model.year));
                records.push_back(std::move(record));
            }
        }
    }
    return records;
}

} // namespace sulong
