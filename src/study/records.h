/**
 * @file
 * Synthetic vulnerability-database records for the Section 2.1 study.
 *
 * The paper performs keyword searches over the CVE and ExploitDB
 * databases (2012-03 to 2017-09) to rank memory-error categories. Those
 * databases are not available offline, so this module synthesizes a
 * record population whose category trends follow the paper's findings
 * (spatial errors most common and at an all-time high, temporal errors
 * second, NULL dereferences third, a long tail of other errors, plus
 * plenty of non-memory records). The *classifier* over the records
 * (study/classifier.h) is the real artifact being reproduced.
 */

#ifndef MS_STUDY_RECORDS_H
#define MS_STUDY_RECORDS_H

#include <cstdint>
#include <string>
#include <vector>

namespace sulong
{

/** One CVE-style record. */
struct VulnRecord
{
    std::string id;          ///< "CVE-2015-1234"
    int year = 2012;
    int month = 1;
    std::string description; ///< free-form text, keyword-searchable
    bool hasExploit = false; ///< also present in the exploit database
};

/**
 * Synthesize the database. Deterministic for a given seed.
 * @param seed  RNG seed (benches use a fixed default)
 * @return records covering 2012-03 .. 2017-09
 */
std::vector<VulnRecord> synthesizeVulnDatabase(uint64_t seed = 0x51c0de);

} // namespace sulong

#endif // MS_STUDY_RECORDS_H
