/**
 * @file
 * Keyword classifier over vulnerability records (paper Section 2.1).
 */

#ifndef MS_STUDY_CLASSIFIER_H
#define MS_STUDY_CLASSIFIER_H

#include "study/records.h"
#include "support/error.h"

namespace sulong
{

/**
 * The memory-error taxonomy of Figs. 1 and 2, shared by every report
 * producer: the CVE study's keyword classifier, the dynamic engines'
 * BugReports (via bugClassOfError) and the static analyzer's findings.
 * One enum + one name table, so the cross-validation harness can compare
 * static and dynamic verdicts without parallel string tables.
 */
enum class BugClass : uint8_t
{
    spatial,   ///< out-of-bounds accesses
    temporal,  ///< use-after-free / dangling pointers
    nullDeref,
    other,     ///< invalid free, double free, format string / varargs
    unrelated, ///< not a memory error (ignored by the study)
};

/// The CVE study's historical name for the same categories.
using VulnCategory = BugClass;

const char *bugClassName(BugClass bug_class);
inline const char *
vulnCategoryName(VulnCategory category)
{
    return bugClassName(category);
}

/** Map a dynamic/static ErrorKind onto the shared taxonomy. */
BugClass bugClassOfError(ErrorKind kind);

/** Classify one record by keyword search of its description. */
VulnCategory classifyRecord(const VulnRecord &record);

/** Counts of one calendar year. */
struct YearlyCounts
{
    int year = 0;
    unsigned spatial = 0;
    unsigned temporal = 0;
    unsigned nullDeref = 0;
    unsigned other = 0;

    unsigned total() const
    {
        return spatial + temporal + nullDeref + other;
    }
};

/**
 * Aggregate per year.
 * @param exploits_only  count only records with a public exploit
 *                       (Fig. 2) instead of all records (Fig. 1).
 */
std::vector<YearlyCounts>
countByYear(const std::vector<VulnRecord> &records, bool exploits_only);

/** Render the per-year series as an aligned text table. */
std::string formatCounts(const std::vector<YearlyCounts> &counts,
                         const std::string &title);

} // namespace sulong

#endif // MS_STUDY_CLASSIFIER_H
