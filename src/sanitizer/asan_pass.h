/**
 * @file
 * Compile-time instrumentation pass of the ASan-style tool.
 *
 * Inserts `__asan_check(ptr, size, is_write)` calls before every load and
 * store of *user* functions. Library code (sourceFile starting with
 * "libc/") stays uninstrumented, like precompiled libc in real setups —
 * the uninstrumented gap of paper problem P4. Must run after any
 * optimization pipeline (like real ASan instruments optimized IR), so
 * accesses the optimizer deleted are never checked (P2).
 */

#ifndef MS_SANITIZER_ASAN_PASS_H
#define MS_SANITIZER_ASAN_PASS_H

#include "ir/module.h"

namespace sulong
{

/** Instrumentation statistics, mostly for tests. */
struct AsanPassStats
{
    unsigned instrumentedFunctions = 0;
    unsigned insertedChecks = 0;
};

/** @return true when @p fn belongs to the shipped libc. */
bool isLibcFunction(const Function &fn);

/**
 * Instrument @p module in place and re-finalize it.
 */
AsanPassStats runAsanPass(Module &module);

} // namespace sulong

#endif // MS_SANITIZER_ASAN_PASS_H
