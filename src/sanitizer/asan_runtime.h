/**
 * @file
 * The ASan-style runtime: shadow memory + redzones + quarantine +
 * interceptors (paper Section 2.2, "compile-time instrumentation").
 *
 * Deliberately faithful to the gaps the paper exploits in Section 4.1:
 *  - the argv/envp region is never poisoned or checked (Fig. 10);
 *  - there is no strtok interceptor by default (Fig. 11);
 *  - the printf interceptor checks only pointer (%s) arguments, not
 *    argument counts or integer widths (Fig. 12);
 *  - redzones are finite, so a far out-of-bounds index lands in valid
 *    memory undetected (Fig. 14);
 *  - quarantine is finite, so a use-after-free after enough intervening
 *    allocation traffic is missed (P3).
 */

#ifndef MS_SANITIZER_ASAN_RUNTIME_H
#define MS_SANITIZER_ASAN_RUNTIME_H

#include <deque>

#include "native/hooks.h"
#include "sanitizer/shadow.h"

namespace sulong
{

struct AsanOptions
{
    /// Redzone bytes around heap and stack objects and between globals.
    uint64_t redzone = 32;
    /// Freed blocks held before real release (rapid-reuse mitigation).
    size_t quarantineBlocks = 256;
    /// Model the post-paper fix: intercept strtok (llvm rL298650).
    bool interceptStrtok = false;
    /// Report never-freed heap blocks at exit (LeakSanitizer analogue).
    bool detectLeaks = false;
};

/** Shadow byte values (0 = addressable). */
enum class Poison : uint8_t
{
    ok = 0,
    heapRedzone = 1,
    heapFreed = 2,
    stackRedzone = 3,
    globalRedzone = 4,
};

class AsanRuntime : public NativeHooks
{
  public:
    explicit AsanRuntime(AsanOptions options = {});

    void
    onRunStart() override
    {
        shadow_ = ShadowMap{};
        live_.clear();
        quarantine_.clear();
    }

    void onStartup(NativeMemory &mem, const Module &module,
                   const std::vector<uint64_t> &global_addrs) override;
    uint64_t globalGap() const override { return options_.redzone; }

    uint64_t onMalloc(NativeMemory &mem, uint64_t size) override;
    void onFree(NativeMemory &mem, uint64_t addr,
                const SourceLoc &loc) override;
    uint64_t onRealloc(NativeMemory &mem, uint64_t addr,
                       uint64_t size) override;

    bool instruments(const Function &fn) const override;
    uint64_t allocaRedzone() const override { return options_.redzone; }
    void onAlloca(NativeMemory &mem, uint64_t base, uint64_t var_addr,
                  uint64_t var_size, uint64_t total) override;
    void onFrameExit(NativeMemory &mem, uint64_t lo, uint64_t hi) override;

    void check(NativeMemory &mem, uint64_t addr, unsigned size,
               bool is_write, const SourceLoc &loc) override;

    bool
    reportLeaks(BugReport &report) override
    {
        if (!options_.detectLeaks || live_.empty())
            return false;
        int64_t bytes = 0;
        for (const auto &[user, block] : live_)
            bytes += static_cast<int64_t>(block.size);
        report.kind = ErrorKind::memoryLeak;
        report.storage = StorageKind::heap;
        report.detail = std::to_string(live_.size()) +
            " heap block(s), " + std::to_string(bytes) +
            " byte(s) never freed (LeakSanitizer)";
        return true;
    }

    bool interceptsLibc() const override { return true; }
    void onLibcCall(NativeMemory &mem, const std::string &name,
                    const std::vector<NValue> &args,
                    const SourceLoc &loc) override;

  private:
    struct LiveBlock
    {
        uint64_t base = 0;  ///< allocation base including left redzone
        uint64_t size = 0;  ///< user-visible size
        uint64_t total = 0; ///< size including both redzones
    };

    [[noreturn]] void report(Poison kind, uint64_t addr, unsigned size,
                             bool is_write, const SourceLoc &loc);
    /** Walk a guest string checking shadow per byte (interceptors). */
    void checkString(NativeMemory &mem, uint64_t addr,
                     const SourceLoc &loc);
    void checkRange(NativeMemory &mem, uint64_t addr, uint64_t len,
                    bool is_write, const SourceLoc &loc);
    void releaseOldest(NativeMemory &mem);

    AsanOptions options_;
    ShadowMap shadow_;
    std::map<uint64_t, LiveBlock> live_;
    std::deque<std::pair<uint64_t, LiveBlock>> quarantine_;
};

} // namespace sulong

#endif // MS_SANITIZER_ASAN_RUNTIME_H
