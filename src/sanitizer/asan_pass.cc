#include "sanitizer/asan_pass.h"

namespace sulong
{

bool
isLibcFunction(const Function &fn)
{
    return fn.sourceFile().rfind("libc/", 0) == 0;
}

AsanPassStats
runAsanPass(Module &module)
{
    AsanPassStats stats;
    Function *check = module.findFunction("__asan_check");
    if (check == nullptr) {
        const Type *fn_type = module.types().functionType(
            module.types().voidTy(),
            {module.types().ptr(), module.types().i64(),
             module.types().i32()},
            false);
        check = module.addFunction(fn_type, "__asan_check");
        check->setIntrinsic(true);
    }

    for (const auto &fn : module.functions()) {
        if (fn->isDeclaration() || isLibcFunction(*fn))
            continue;
        bool touched = false;
        for (const auto &bb : fn->blocks()) {
            std::vector<std::unique_ptr<Instruction>> rewritten;
            // Move the existing instructions out so we can interleave.
            std::vector<std::unique_ptr<Instruction>> original;
            original.swap(bb->mutableInsts());
            for (auto &inst : original) {
                bool is_load = inst->op() == Opcode::load;
                bool is_store = inst->op() == Opcode::store;
                if (is_load || is_store) {
                    Value *ptr = is_load ? inst->operand(0)
                                         : inst->operand(1);
                    uint64_t size = inst->accessType()->size();
                    auto call = std::make_unique<Instruction>(
                        Opcode::call, module.types().voidTy());
                    call->addOperand(check);
                    call->addOperand(ptr);
                    call->addOperand(module.constI64(
                        static_cast<int64_t>(size)));
                    call->addOperand(module.constI32(is_store ? 1 : 0));
                    call->setLoc(inst->loc());
                    call->setParent(bb.get());
                    rewritten.push_back(std::move(call));
                    stats.insertedChecks++;
                    touched = true;
                }
                rewritten.push_back(std::move(inst));
            }
            bb->replaceInsts(std::move(rewritten));
        }
        if (touched)
            stats.instrumentedFunctions++;
    }
    module.finalize();
    return stats;
}

} // namespace sulong
