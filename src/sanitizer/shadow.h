/**
 * @file
 * Byte-granular shadow memory over the native address space.
 *
 * Used by the ASan-style runtime (poison values) and the Memcheck-style
 * runtime (A-bits and V-bits). One shadow byte per application byte;
 * segments are mirrored lazily so the cost tracks actual usage.
 */

#ifndef MS_SANITIZER_SHADOW_H
#define MS_SANITIZER_SHADOW_H

#include <cstdint>
#include <vector>

#include "native/memory.h"

namespace sulong
{

class ShadowMap
{
  public:
    /** Shadow value at @p addr; untracked addresses read as @p deflt. */
    uint8_t
    get(uint64_t addr) const
    {
        uint64_t index = 0;
        const std::vector<uint8_t> *seg = segmentOf(addr, index);
        if (seg == nullptr || index >= seg->size())
            return 0;
        return (*seg)[index];
    }

    /** Set [addr, addr+len) to @p value, growing the segment mirror. */
    void
    set(uint64_t addr, uint64_t len, uint8_t value)
    {
        for (uint64_t i = 0; i < len; i++) {
            uint64_t index = 0;
            std::vector<uint8_t> *seg = segmentOf(addr + i, index);
            if (seg == nullptr)
                continue;
            if (index >= seg->size())
                seg->resize(index + 1, 0);
            (*seg)[index] = value;
        }
    }

    /** First address in [addr, addr+len) whose shadow is non-zero, or
     *  UINT64_MAX when the whole range is clean. */
    uint64_t
    firstPoisoned(uint64_t addr, uint64_t len) const
    {
        // Fast path: the whole range usually lives in one segment whose
        // mirror we can scan directly. The stack mirror is indexed
        // downward, so scan it in reverse index order.
        uint64_t index = 0;
        const std::vector<uint8_t> *seg = segmentOf(addr, index);
        if (seg != nullptr) {
            uint64_t end_index = 0;
            if (segmentOf(addr + len - 1, end_index) == seg) {
                uint64_t lo = std::min(index, end_index);
                uint64_t hi = std::max(index, end_index);
                if (lo >= seg->size())
                    return UINT64_MAX;
                hi = std::min<uint64_t>(hi, seg->size() - 1);
                bool reversed = end_index < index;
                for (uint64_t i = lo; i <= hi; i++) {
                    if ((*seg)[i] != 0) {
                        return reversed ? addr + (index - i)
                                        : addr + (i - lo);
                    }
                }
                return UINT64_MAX;
            }
        }
        for (uint64_t i = 0; i < len; i++) {
            if (get(addr + i) != 0)
                return addr + i;
        }
        return UINT64_MAX;
    }

  private:
    const std::vector<uint8_t> *
    segmentOf(uint64_t addr, uint64_t &index) const
    {
        return const_cast<ShadowMap *>(this)->segmentOf(addr, index);
    }

    std::vector<uint8_t> *
    segmentOf(uint64_t addr, uint64_t &index)
    {
        if (addr >= NativeLayout::globalBase &&
            addr < NativeLayout::heapBase) {
            index = addr - NativeLayout::globalBase;
            return &globals_;
        }
        if (addr >= NativeLayout::heapBase &&
            addr < NativeLayout::heapMax) {
            index = addr - NativeLayout::heapBase;
            return &heap_;
        }
        if (addr >= NativeLayout::stackBase &&
            addr < NativeLayout::stackTop) {
            // The stack grows down from stackTop, so index downward: the
            // mirror then grows with actual stack usage instead of
            // jumping to the full segment size on first touch.
            index = NativeLayout::stackTop - 1 - addr;
            return &stack_;
        }
        if (addr >= NativeLayout::argsBase &&
            addr < NativeLayout::argsBase + NativeLayout::argsSize) {
            index = addr - NativeLayout::argsBase;
            return &args_;
        }
        return nullptr;
    }

    std::vector<uint8_t> globals_;
    std::vector<uint8_t> heap_;
    std::vector<uint8_t> stack_;
    std::vector<uint8_t> args_;
};

} // namespace sulong

#endif // MS_SANITIZER_SHADOW_H
