#include "sanitizer/asan_runtime.h"

#include "sanitizer/asan_pass.h"

namespace sulong
{

AsanRuntime::AsanRuntime(AsanOptions options) : options_(options) {}

void
AsanRuntime::onStartup(NativeMemory &mem, const Module &module,
                       const std::vector<uint64_t> &global_addrs)
{
    (void)mem;
    // Poison the inter-global redzones. The argv/envp region is NOT
    // poisoned: it was set up before the instrumented program started
    // (paper Fig. 10 — github.com/google/sanitizers issue 762).
    const auto &globals = module.globals();
    for (size_t i = 0; i < globals.size() && i < global_addrs.size(); i++) {
        uint64_t end = global_addrs[i] + globals[i]->valueType()->size();
        // Poison everything up to the next global (gap + alignment pad).
        uint64_t next = i + 1 < global_addrs.size()
            ? global_addrs[i + 1] : end + options_.redzone;
        if (next > end)
            shadow_.set(end, next - end,
                        static_cast<uint8_t>(Poison::globalRedzone));
    }
}

bool
AsanRuntime::instruments(const Function &fn) const
{
    return !isLibcFunction(fn);
}

uint64_t
AsanRuntime::onMalloc(NativeMemory &mem, uint64_t size)
{
    uint64_t rz = options_.redzone;
    uint64_t total = size + 2 * rz;
    uint64_t base = mem.heapAlloc(total);
    uint64_t user = base + rz;
    shadow_.set(base, rz, static_cast<uint8_t>(Poison::heapRedzone));
    shadow_.set(user, size, static_cast<uint8_t>(Poison::ok));
    shadow_.set(user + size, total - rz - size,
                static_cast<uint8_t>(Poison::heapRedzone));
    live_[user] = LiveBlock{base, size, total};
    return user;
}

void
AsanRuntime::releaseOldest(NativeMemory &mem)
{
    if (quarantine_.empty())
        return;
    auto [user, block] = quarantine_.front();
    quarantine_.pop_front();
    shadow_.set(block.base, block.total, static_cast<uint8_t>(Poison::ok));
    mem.heapFree(block.base);
}

void
AsanRuntime::onFree(NativeMemory &mem, uint64_t addr, const SourceLoc &loc)
{
    if (addr == 0)
        return;
    auto it = live_.find(addr);
    if (it == live_.end()) {
        // Double free (still in quarantine)?
        for (const auto &[user, block] : quarantine_) {
            if (user == addr) {
                BugReport rep;
                rep.kind = ErrorKind::doubleFree;
                rep.access = AccessKind::free;
                rep.storage = StorageKind::heap;
                rep.detail = "attempting double-free on " +
                    std::to_string(addr) + " at " + loc.toString();
                throw MemoryErrorException(std::move(rep));
            }
        }
        BugReport rep;
        rep.kind = ErrorKind::invalidFree;
        rep.access = AccessKind::free;
        rep.storage = addr >= NativeLayout::stackBase
            ? StorageKind::stack
            : (addr < NativeLayout::heapBase ? StorageKind::global
                                             : StorageKind::heap);
        rep.detail = "attempting free on address which was not malloc()-ed"
            " (" + std::to_string(addr) + ") at " + loc.toString();
        throw MemoryErrorException(std::move(rep));
    }
    LiveBlock block = it->second;
    live_.erase(it);
    shadow_.set(addr, block.size, static_cast<uint8_t>(Poison::heapFreed));
    quarantine_.emplace_back(addr, block);
    while (quarantine_.size() > options_.quarantineBlocks)
        releaseOldest(mem);
}

uint64_t
AsanRuntime::onRealloc(NativeMemory &mem, uint64_t addr, uint64_t size)
{
    if (addr == 0)
        return onMalloc(mem, size);
    auto it = live_.find(addr);
    uint64_t old_size = it != live_.end() ? it->second.size : 0;
    uint64_t fresh = onMalloc(mem, size);
    uint64_t copy = std::min(old_size, size);
    if (copy > 0) {
        std::vector<uint8_t> tmp(copy);
        mem.readBytes(addr, tmp.data(), copy);
        mem.writeBytes(fresh, tmp.data(), copy);
    }
    onFree(mem, addr, SourceLoc{});
    return fresh;
}

void
AsanRuntime::onAlloca(NativeMemory &mem, uint64_t base, uint64_t var_addr,
                      uint64_t var_size, uint64_t total)
{
    (void)mem;
    shadow_.set(base, var_addr - base,
                static_cast<uint8_t>(Poison::stackRedzone));
    shadow_.set(var_addr, var_size, static_cast<uint8_t>(Poison::ok));
    shadow_.set(var_addr + var_size, base + total - var_addr - var_size,
                static_cast<uint8_t>(Poison::stackRedzone));
}

void
AsanRuntime::onFrameExit(NativeMemory &mem, uint64_t lo, uint64_t hi)
{
    (void)mem;
    shadow_.set(lo, hi - lo, static_cast<uint8_t>(Poison::ok));
}

void
AsanRuntime::report(Poison kind, uint64_t addr, unsigned size,
                    bool is_write, const SourceLoc &loc)
{
    BugReport rep;
    rep.access = is_write ? AccessKind::write : AccessKind::read;
    switch (kind) {
      case Poison::heapRedzone:
        rep.kind = ErrorKind::outOfBounds;
        rep.storage = StorageKind::heap;
        break;
      case Poison::heapFreed:
        rep.kind = ErrorKind::useAfterFree;
        rep.storage = StorageKind::heap;
        break;
      case Poison::stackRedzone:
        rep.kind = ErrorKind::outOfBounds;
        rep.storage = StorageKind::stack;
        break;
      case Poison::globalRedzone:
        rep.kind = ErrorKind::outOfBounds;
        rep.storage = StorageKind::global;
        break;
      case Poison::ok:
        rep.kind = ErrorKind::engineError;
        break;
    }
    rep.detail = std::to_string(size) + "-byte access to shadow-poisoned "
        "address " + std::to_string(addr) + " at " + loc.toString();
    throw MemoryErrorException(std::move(rep));
}

void
AsanRuntime::check(NativeMemory &mem, uint64_t addr, unsigned size,
                   bool is_write, const SourceLoc &loc)
{
    (void)mem;
    uint64_t bad = shadow_.firstPoisoned(addr, size);
    if (bad != UINT64_MAX) {
        report(static_cast<Poison>(shadow_.get(bad)), addr, size, is_write,
               loc);
    }
}

void
AsanRuntime::checkRange(NativeMemory &mem, uint64_t addr, uint64_t len,
                        bool is_write, const SourceLoc &loc)
{
    (void)mem;
    uint64_t bad = shadow_.firstPoisoned(addr, len);
    if (bad != UINT64_MAX) {
        report(static_cast<Poison>(shadow_.get(bad)), bad, 1, is_write,
               loc);
    }
}

void
AsanRuntime::checkString(NativeMemory &mem, uint64_t addr,
                         const SourceLoc &loc)
{
    if (addr == 0)
        return; // glibc-style "(null)" handling; not an interceptor report
    for (uint64_t i = 0; i < (1u << 20); i++) {
        uint8_t shadow = shadow_.get(addr + i);
        if (shadow != 0)
            report(static_cast<Poison>(shadow), addr + i, 1, false, loc);
        if (*mem.resolve(addr + i, 1, false) == 0)
            return;
    }
}

void
AsanRuntime::onLibcCall(NativeMemory &mem, const std::string &name,
                        const std::vector<NValue> &args,
                        const SourceLoc &loc)
{
    auto addr = [&](size_t i) { return static_cast<uint64_t>(args[i].i); };
    auto len = [&](size_t i) { return static_cast<uint64_t>(args[i].i); };

    if (name == "strlen" || name == "puts" || name == "atoi" ||
        name == "atol" || name == "atof") {
        if (args.size() >= 1)
            checkString(mem, addr(0), loc);
        return;
    }
    if (name == "strcpy") {
        if (args.size() < 2)
            return;
        checkString(mem, addr(1), loc);
        uint64_t n = mem.readCString(addr(1)).size() + 1;
        checkRange(mem, addr(0), n, true, loc);
        return;
    }
    if (name == "strcat") {
        if (args.size() < 2)
            return;
        checkString(mem, addr(0), loc);
        checkString(mem, addr(1), loc);
        uint64_t d = mem.readCString(addr(0)).size();
        uint64_t s = mem.readCString(addr(1)).size();
        checkRange(mem, addr(0) + d, s + 1, true, loc);
        return;
    }
    if (name == "strcmp") {
        if (args.size() < 2)
            return;
        checkString(mem, addr(0), loc);
        checkString(mem, addr(1), loc);
        return;
    }
    if (name == "strncpy" || name == "strncmp" || name == "strncat") {
        if (args.size() < 3)
            return;
        // Bounded variants check up to n bytes.
        checkRange(mem, addr(0), len(2), name == "strncpy", loc);
        checkRange(mem, addr(1), len(2), false, loc);
        return;
    }
    if (name == "memcpy" || name == "memmove") {
        if (args.size() < 3)
            return;
        checkRange(mem, addr(0), len(2), true, loc);
        checkRange(mem, addr(1), len(2), false, loc);
        return;
    }
    if (name == "memset") {
        if (args.size() < 3)
            return;
        checkRange(mem, addr(0), len(2), true, loc);
        return;
    }
    if (name == "memcmp") {
        if (args.size() < 3)
            return;
        checkRange(mem, addr(0), len(2), false, loc);
        checkRange(mem, addr(1), len(2), false, loc);
        return;
    }
    if (name == "strtok" && options_.interceptStrtok) {
        // Post-paper fix (rL298650): by default there is NO strtok
        // interceptor, which is exactly the Fig. 11 miss.
        if (args.size() >= 2) {
            if (addr(0) != 0)
                checkString(mem, addr(0), loc);
            checkString(mem, addr(1), loc);
        }
        return;
    }
    if (name == "printf" || name == "fprintf" || name == "sprintf" ||
        name == "snprintf") {
        // The printf interceptor validates only pointer arguments of the
        // format: %s strings are walked, but integer arguments are not
        // width- or count-checked (paper Fig. 12), and missing arguments
        // are silently skipped.
        size_t fmt_index = name == "printf" ? 0
            : (name == "snprintf" ? 2 : 1);
        if (args.size() <= fmt_index)
            return;
        checkString(mem, addr(fmt_index), loc);
        std::string fmt = mem.readCString(addr(fmt_index));
        size_t arg_index = fmt_index + 1;
        for (size_t i = 0; i + 1 < fmt.size(); i++) {
            if (fmt[i] != '%')
                continue;
            size_t j = i + 1;
            while (j < fmt.size() &&
                   (fmt[j] == '-' || fmt[j] == '+' || fmt[j] == '0' ||
                    fmt[j] == ' ' || fmt[j] == '.' ||
                    (fmt[j] >= '0' && fmt[j] <= '9') || fmt[j] == 'l' ||
                    fmt[j] == 'h' || fmt[j] == 'z')) {
                j++;
            }
            if (j >= fmt.size())
                break;
            char spec = fmt[j];
            i = j;
            if (spec == '%')
                continue;
            if (spec == 's' && arg_index < args.size())
                checkString(mem, addr(arg_index), loc);
            arg_index++;
        }
        return;
    }
}

} // namespace sulong
