/**
 * @file
 * Textual IR parser tests: hand-written IR, error reporting, and the
 * round-trip property print(M) -> parse -> print == print(M) on modules
 * produced by the front end — plus behavioural equivalence (the parsed
 * module must run identically on the managed engine).
 */

#include "test_util.h"

#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace sulong
{
namespace
{

TEST(IRParserTest, MinimalFunction)
{
    IRParseResult result = parseIRModule(R"(
define i32 @main() {
entry:
    ret 41
}
)");
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_TRUE(moduleIsValid(*result.module));
    ManagedEngine engine;
    EXPECT_EQ(engine.run(*result.module, {}, "").exitCode, 41);
}

TEST(IRParserTest, ArithmeticAndBranches)
{
    IRParseResult result = parseIRModule(R"(
define i32 @main() {
entry:
    %1 = alloca i32
    store i32 0, %1
    br ^loop
loop:
    %2 = load i32, %1
    %3 = add %2, 7
    store i32 %3, %1
    %4 = icmp slt %3, 21
    condbr %4, ^loop, ^done
done:
    %5 = load i32, %1
    ret %5
}
)");
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_TRUE(moduleIsValid(*result.module))
        << formatIssues(verifyModule(*result.module));
    ManagedEngine engine;
    EXPECT_EQ(engine.run(*result.module, {}, "").exitCode, 21);
}

TEST(IRParserTest, GlobalsAndGep)
{
    IRParseResult result = parseIRModule(R"(
@table = global [4 x i32] [10, 20, 30, 40]
@msg = constant [3 x i8] c"hi\00"

define i32 @main() {
entry:
    %1 = gep @table + 8
    %2 = load i32, %1
    ret %2
}
)");
    ASSERT_TRUE(result.ok()) << result.error;
    ManagedEngine engine;
    EXPECT_EQ(engine.run(*result.module, {}, "").exitCode, 30);
}

TEST(IRParserTest, ScaledGepAndCasts)
{
    IRParseResult result = parseIRModule(R"(
@vals = global [5 x i16] [1, 2, 3, 4, 5]

define i32 @main() {
entry:
    %1 = alloca i64
    store i64 3, %1
    %2 = load i64, %1
    %3 = gep @vals + 0 + %2 * 2
    %4 = load i16, %3
    %5 = sext %4 to i32
    ret %5
}
)");
    ASSERT_TRUE(result.ok()) << result.error;
    ManagedEngine engine;
    EXPECT_EQ(engine.run(*result.module, {}, "").exitCode, 4);
}

TEST(IRParserTest, CallsAndFunctionRefs)
{
    IRParseResult result = parseIRModule(R"(
define i64 @twice(i64 %a0) {
entry:
    %1 = mul %a0, 2
    ret %1
}

define i32 @main() {
entry:
    %1 = call i64 @twice(21)
    %2 = trunc %1 to i32
    ret %2
}
)");
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_TRUE(moduleIsValid(*result.module))
        << formatIssues(verifyModule(*result.module));
    ManagedEngine engine;
    EXPECT_EQ(engine.run(*result.module, {}, "").exitCode, 42);
}

TEST(IRParserTest, IntrinsicDeclaration)
{
    IRParseResult result = parseIRModule(R"(
declare ptr @malloc(i64) ; intrinsic
declare void @free(ptr) ; intrinsic

define i32 @main() {
entry:
    %1 = call ptr @malloc(16)
    store i32 9, %1
    %2 = load i32, %1
    call void @free(%1)
    ret %2
}
)");
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_TRUE(result.module->findFunction("malloc")->isIntrinsic());
    ManagedEngine engine;
    EXPECT_EQ(engine.run(*result.module, {}, "").exitCode, 9);
}

TEST(IRParserTest, FloatOps)
{
    IRParseResult result = parseIRModule(R"(
define i32 @main() {
entry:
    %1 = alloca double
    store double 2.5, %1
    %2 = load double, %1
    %3 = fmul %2, 4.0
    %4 = fptosi %3 to i32
    ret %4
}
)");
    ASSERT_TRUE(result.ok()) << result.error;
    ManagedEngine engine;
    EXPECT_EQ(engine.run(*result.module, {}, "").exitCode, 10);
}

TEST(IRParserErrorTest, ReportsLineNumbers)
{
    IRParseResult result = parseIRModule(R"(
define i32 @main() {
entry:
    %1 = frobnicate 1, 2
    ret 0
}
)");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error.find("line 4"), std::string::npos)
        << result.error;
    EXPECT_NE(result.error.find("frobnicate"), std::string::npos);
}

TEST(IRParserErrorTest, UnknownSlot)
{
    IRParseResult result = parseIRModule(R"(
define i32 @main() {
entry:
    %1 = add %9, 1
    ret %1
}
)");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error.find("%9"), std::string::npos);
}

TEST(IRParserErrorTest, UnknownBlock)
{
    IRParseResult result = parseIRModule(R"(
define void @main() {
entry:
    br ^nowhere
}
)");
    ASSERT_FALSE(result.ok());
}

TEST(IRParserErrorTest, StructTypesRejected)
{
    IRParseResult result = parseIRModule(R"(
define void @f() {
entry:
    %1 = alloca %struct.foo
    ret
}
)");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error.find("struct"), std::string::npos);
}

// --- round-trip property over front-end output ---------------------------

/** Struct-free mini-C programs for the print->parse->print property. */
const char *const kRoundTripPrograms[] = {
    R"(
static int gcd(int a, int b) { return b == 0 ? a : gcd(b, a % b); }
int main(void) { return gcd(48, 18); })",
    R"(
int weights[6] = {3, 1, 4, 1, 5, 9};
int main(void) {
    int best = 0;
    for (int i = 0; i < 6; i++) {
        if (weights[i] > weights[best])
            best = i;
    }
    return best;
})",
    R"(
static double avg(double *vals, int n) {
    double acc = 0;
    for (int i = 0; i < n; i++)
        acc += vals[i];
    return acc / n;
}
int main(void) {
    double vals[4] = {1.0, 2.0, 3.0, 4.0};
    return (int)(avg(vals, 4) * 10.0);
})",
    R"(
static unsigned int hash(const char *s) {
    unsigned int h = 2166136261u;
    for (int i = 0; s[i] != 0; i++)
        h = (h ^ (unsigned int)s[i]) * 16777619u;
    return h;
}
int main(void) { return (int)(hash("minisulong") % 113); })",
};

class RoundTripTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RoundTripTest, PrintParsePrintIsStable)
{
    // Compile WITHOUT libc (the libc uses structs); builtins only.
    CompileResult compiled = compileC(
        std::string(kRoundTripPrograms[GetParam()]));
    ASSERT_TRUE(compiled.ok()) << compiled.errors;

    std::string first = printModule(*compiled.module);
    IRParseResult reparsed = parseIRModule(first);
    ASSERT_TRUE(reparsed.ok()) << reparsed.error << "\nIR:\n" << first;
    EXPECT_TRUE(moduleIsValid(*reparsed.module))
        << formatIssues(verifyModule(*reparsed.module));
    std::string second = printModule(*reparsed.module);
    EXPECT_EQ(first, second);

    // Behavioural equivalence on the managed engine.
    ManagedEngine a;
    ManagedEngine b;
    ExecutionResult ra = a.run(*compiled.module, {}, "");
    ExecutionResult rb = b.run(*reparsed.module, {}, "");
    EXPECT_EQ(ra.exitCode, rb.exitCode);
    EXPECT_EQ(ra.output, rb.output);
    EXPECT_EQ(ra.bug.kind, rb.bug.kind);
}

INSTANTIATE_TEST_SUITE_P(Programs, RoundTripTest,
                         ::testing::Range(0, 4));

} // namespace
} // namespace sulong
