/**
 * @file
 * Tier-3 parity: threaded dispatch, superblock fusion, and OSR must be
 * observationally identical to the lower tiers — same stdout, stderr,
 * exit code, bug kind / attributed function / detail text, AND the same
 * count of retired IR steps. The step-count equality is the strong form
 * of "no check was skipped": superblock fusion batches the accounting
 * but must charge exactly the per-op total, including on every deopt
 * and bug path. Covers the whole bug corpus, the perf-gate benchmarks,
 * and targeted deopt-mid-superblock / OSR-at-backedge scenarios.
 */

#include "test_util.h"

#include "corpus/corpus.h"
#include "interp/managed_engine.h"
#include "tools/benchmark_programs.h"

namespace sulong
{
namespace
{

/** One run plus the engine-side observations parity is judged on. */
struct TieredRun
{
    ExecutionResult result;
    uint64_t steps = 0;
    ManagedTelemetry telemetry;
};

TieredRun
runTiered(const ToolConfig &config, const std::string &source,
          const std::vector<std::string> &args = {},
          const std::string &stdin_data = "")
{
    PreparedProgram prepared = prepareProgram(source, config);
    TieredRun out;
    if (!prepared.ok()) {
        out.result.bug.kind = ErrorKind::engineError;
        out.result.bug.detail = prepared.compileErrors;
        return out;
    }
    out.result = prepared.run(args, stdin_data);
    auto *managed = dynamic_cast<ManagedEngine *>(prepared.engine.get());
    out.steps = managed->executedSteps();
    out.telemetry = managed->telemetry();
    return out;
}

/** Eager tiering so even one-shot corpus programs reach tier-3. */
ToolConfig
eagerTier3()
{
    ToolConfig config = ToolConfig::make(ToolKind::safeSulong);
    config.managed.compileThreshold = 0;
    config.managed.inlineSiteMin = 0;
    config.managed.tier3Threshold = 0;
    return config;
}

/** The tier-3 configurations that must all match the tier-2 baseline. */
std::vector<std::pair<std::string, ToolConfig>>
tier3Variants()
{
    std::vector<std::pair<std::string, ToolConfig>> variants;

    variants.emplace_back("tier3-eager", eagerTier3());

    ToolConfig no_fusion = eagerTier3();
    no_fusion.managed.enableFusion = false;
    variants.emplace_back("tier3-eager, no fusion (--no-fusion)",
                          no_fusion);

    ToolConfig no_osr3 = eagerTier3();
    no_osr3.managed.tier3Osr = false;
    variants.emplace_back("tier3-eager, no tier-3 OSR", no_osr3);

    ToolConfig warm = ToolConfig::make(ToolKind::safeSulong);
    warm.managed.compileThreshold = 2;
    warm.managed.tier3Threshold = 2;
    warm.managed.tier3OsrThreshold = 100;
    variants.emplace_back("tier3 via warm-up thresholds", warm);

    return variants;
}

void
expectParity(const std::string &label, const std::string &source,
             const std::vector<std::string> &args = {},
             const std::string &stdin_data = "")
{
    // Observable behavior must match the plain interpreter across
    // every variant; the pure tier-1 run is that reference.
    ToolConfig tier1 = ToolConfig::make(ToolKind::safeSulong);
    tier1.managed.enableTier2 = false;
    TieredRun reference = runTiered(tier1, source, args, stdin_data);

    for (const auto &[name, config] : tier3Variants()) {
        TieredRun run = runTiered(config, source, args, stdin_data);
        SCOPED_TRACE(label + " under " + name);
        EXPECT_EQ(run.result.output, reference.result.output);
        EXPECT_EQ(run.result.errOutput, reference.result.errOutput);
        EXPECT_EQ(run.result.exitCode, reference.result.exitCode);
        EXPECT_EQ(run.result.termination, reference.result.termination);
        EXPECT_EQ(run.result.bug.kind, reference.result.bug.kind);
        EXPECT_EQ(run.result.bug.function, reference.result.bug.function);
        EXPECT_EQ(run.result.bug.detail, reference.result.bug.detail);

        // Retired-effect parity against the --no-tier3 twin of the
        // SAME configuration: inlining decisions legitimately change
        // the retired-step total between configurations, but switching
        // tier-3 on must not move it by a single step — superblock
        // fusion batches the accounting, and every deopt and bug path
        // has to reconcile the batch to the per-op total.
        ToolConfig twin = config;
        twin.managed.enableTier3 = false;
        TieredRun ablated = runTiered(twin, source, args, stdin_data);
        EXPECT_EQ(run.steps, ablated.steps);
        EXPECT_EQ(run.result.output, ablated.result.output);
        EXPECT_EQ(run.result.bug.detail, ablated.result.bug.detail);
    }
}

TEST(Tier3ParityTest, WholeBugCorpus)
{
    for (const CorpusEntry &entry : bugCorpus())
        expectParity(entry.id, entry.source, entry.args, entry.stdinData);
}

TEST(Tier3ParityTest, CalltowerAcrossAblations)
{
    const BenchmarkProgram *program = findBenchmark("calltower");
    ASSERT_NE(program, nullptr);
    // Reduced problem size: parity is about semantics, not speed.
    expectParity(program->name, program->source, {"2000"});
}

TEST(Tier3ParityTest, PointerchaseAcrossAblations)
{
    const BenchmarkProgram *program = findBenchmark("pointerchase");
    ASSERT_NE(program, nullptr);
    expectParity(program->name, program->source, {"40"});
}

TEST(Tier3ParityTest, EagerTier3ActuallyTranslates)
{
    // Guard against the parity suite going vacuous: the eager config
    // must reach tier-3 and form fused superblocks on a hot workload.
    const BenchmarkProgram *program = findBenchmark("calltower");
    ASSERT_NE(program, nullptr);
    TieredRun run = runTiered(eagerTier3(), program->source, {"2000"});
    EXPECT_TRUE(run.result.ok()) << run.result.bug.toString();
    EXPECT_GT(run.telemetry.t3Compiles, 0u);
    EXPECT_GT(run.telemetry.t3Superblocks, 0u);
}

TEST(Tier3ParityTest, DeoptMidSuperblockOnMegamorphicCall)
{
    // An indirect call site that cycles through four targets goes
    // megamorphic. Tier-3 only carries the monomorphic fast path, so
    // the first non-matching dispatch must deopt back to tier-2 *at*
    // the call — with the not-yet-executed remainder of the charged
    // superblock returned — and the program must still compute the
    // same answer with the same retired-step total.
    const char *src = R"(
        typedef int (*fn)(int);
        static int f0(int x) { return x + 1; }
        static int f1(int x) { return x + 2; }
        static int f2(int x) { return x * 2; }
        static int f3(int x) { return x - 3; }
        static int apply(fn f, int x) { return f(x) ^ (x & 7); }
        int main(void) {
            fn fns[4] = {f0, f1, f2, f3};
            int s = 0;
            for (int i = 0; i < 400; i++)
                s += apply(fns[i & 3], i);
            printf("%d\n", s);
            return 0;
        }
    )";
    expectParity("megamorphic-indirect", src);

    TieredRun run = runTiered(eagerTier3(), src);
    EXPECT_TRUE(run.result.ok()) << run.result.bug.toString();
    EXPECT_GT(run.telemetry.t3Compiles, 0u);
    EXPECT_GT(run.telemetry.t3DeoptMega, 0u);
}

TEST(Tier3ParityTest, OsrEntersTier3AtLoopBackEdge)
{
    // One single activation of main with a long loop: the activation
    // counter can never cross an astronomically high tier3Threshold, so
    // the only way into tier-3 is OSR at a tier-2 loop back-edge.
    const char *src = R"(
        int main(void) {
            long acc = 0;
            for (int i = 0; i < 20000; i++)
                acc += (i ^ (acc & 15)) % 97;
            printf("%ld\n", acc);
            return 0;
        }
    )";
    expectParity("osr-backedge", src);

    ToolConfig config = ToolConfig::make(ToolKind::safeSulong);
    config.managed.compileThreshold = 0;
    config.managed.tier3Threshold = 1000000;
    config.managed.tier3OsrThreshold = 500;
    TieredRun run = runTiered(config, src);
    EXPECT_TRUE(run.result.ok()) << run.result.bug.toString();
    EXPECT_GT(run.telemetry.t3OsrEntries, 0u);

    // The ablation must really ablate: with tier-3 OSR off (and the
    // threshold unreachable), the same program never enters tier-3.
    config.managed.tier3Osr = false;
    TieredRun no_osr = runTiered(config, src);
    EXPECT_TRUE(no_osr.result.ok());
    EXPECT_EQ(no_osr.telemetry.t3OsrEntries, 0u);
    EXPECT_EQ(no_osr.telemetry.t3Compiles, 0u);
    EXPECT_EQ(no_osr.steps, run.steps);
}

TEST(Tier3ParityTest, BugInHotLoopDeoptsWithIdenticalReport)
{
    // A spatial bug that only fires after the loop is hot enough to be
    // running fused tier-3 code: the faulting access must produce the
    // byte-identical report of the pure interpreter, and the implicit
    // bug-deopt must reconcile the superblock's step batch.
    const char *src = R"(
        int main(void) {
            int *a = malloc(64 * sizeof(int));
            long s = 0;
            for (int i = 0; i < 5000; i++)
                s += (a[i & 63] = i) & 1;
            for (int i = 0; i <= 64; i++)
                s += a[i];
            printf("%ld\n", s);
            return 0;
        }
    )";
    expectParity("oob-under-tier3", src);

    ToolConfig tier1 = ToolConfig::make(ToolKind::safeSulong);
    tier1.managed.enableTier2 = false;
    TieredRun reference = runTiered(tier1, src);
    ASSERT_EQ(reference.result.bug.kind, ErrorKind::outOfBounds);

    TieredRun run = runTiered(eagerTier3(), src);
    EXPECT_EQ(run.result.bug.kind, reference.result.bug.kind);
    EXPECT_EQ(run.result.bug.function, reference.result.bug.function);
    EXPECT_EQ(run.result.bug.detail, reference.result.bug.detail);
    EXPECT_GT(run.telemetry.t3Compiles, 0u);
    EXPECT_GT(run.telemetry.t3DeoptBug, 0u);
}

} // namespace
} // namespace sulong
