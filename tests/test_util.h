/**
 * @file
 * Shared helpers for tests: compile-and-run shortcuts.
 */

#ifndef MS_TESTS_TEST_UTIL_H
#define MS_TESTS_TEST_UTIL_H

#include <gtest/gtest.h>

#include "tools/driver.h"

namespace sulong
{
namespace testutil
{

/** Compile @p src with the safe libc and run it on the managed engine. */
inline ExecutionResult
runManaged(const std::string &src, const std::vector<std::string> &args = {},
           const std::string &stdin_data = "")
{
    return runUnderTool(src, ToolConfig::make(ToolKind::safeSulong), args,
                        stdin_data);
}

/** Run and require a clean exit; returns the exit code. */
inline int
exitCodeOf(const std::string &src, const std::vector<std::string> &args = {},
           const std::string &stdin_data = "")
{
    ExecutionResult result = runManaged(src, args, stdin_data);
    EXPECT_TRUE(result.ok()) << result.bug.toString();
    return result.exitCode;
}

/** Run and require a clean exit; returns stdout. */
inline std::string
outputOf(const std::string &src, const std::vector<std::string> &args = {},
         const std::string &stdin_data = "")
{
    ExecutionResult result = runManaged(src, args, stdin_data);
    EXPECT_TRUE(result.ok()) << result.bug.toString();
    return result.output;
}

/** Compile only; returns the error text ("" when it compiled). */
inline std::string
compileErrorsOf(const std::string &src)
{
    PreparedProgram prepared =
        prepareProgram(src, ToolConfig::make(ToolKind::safeSulong));
    return prepared.ok() ? std::string() : prepared.compileErrors;
}

} // namespace testutil
} // namespace sulong

#endif // MS_TESTS_TEST_UTIL_H
