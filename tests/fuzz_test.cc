/**
 * @file
 * Differential fuzzing: generate random *well-defined* mini-C programs
 * and require byte-identical output from every engine.
 *
 * This is the repository's strongest property test: one generated
 * program exercises the front end, both optimizer pipelines, the managed
 * object model, the flat-memory model, and both instrumentation
 * runtimes against each other. Any divergence is a bug in one of them.
 *
 * Generated programs avoid undefined behaviour by construction: array
 * indices are reduced modulo the array length, divisors are forced
 * non-zero, shift amounts are masked, and all variables are initialized
 * (signed overflow wraps identically in every engine by IR semantics).
 */

#include <sstream>

#include "test_util.h"

#include "ir/parser.h"
#include "ir/printer.h"
#include "support/rng.h"

namespace sulong
{
namespace
{

/** Random program builder. */
class ProgramGenerator
{
  public:
    explicit ProgramGenerator(uint64_t seed) : rng_(seed) {}

    std::string
    generate()
    {
        std::ostringstream out;
        out << "static unsigned int acc = 1;\n";
        out << "static void mix(unsigned int v) { acc = acc * 31 + v; }\n";
        int n_globals = static_cast<int>(rng_.nextRange(1, 3));
        for (int i = 0; i < n_globals; i++) {
            out << "int g" << i << "[" << rng_.nextRange(2, 6) << "] = {"
                << rng_.nextRange(-9, 9) << ", " << rng_.nextRange(-9, 9)
                << "};\n";
        }
        int n_functions = static_cast<int>(rng_.nextRange(1, 3));
        for (int f = 0; f < n_functions; f++)
            emitFunction(out, f);
        out << "int main(void) {\n";
        int n_stmts = static_cast<int>(rng_.nextRange(3, 8));
        locals_ = 0;
        out << "    int v0 = " << rng_.nextRange(-50, 50) << ";\n";
        locals_ = 1;
        for (int i = 0; i < n_stmts; i++)
            emitStatement(out, 1, n_functions, n_globals);
        out << "    printf(\"%u %d\\n\", acc, v0);\n";
        out << "    return (int)(acc % 126);\n";
        out << "}\n";
        return out.str();
    }

  private:
    void
    emitFunction(std::ostringstream &out, int index)
    {
        out << "static int f" << index << "(int a, int b) {\n";
        out << "    int r = a " << binop() << " (b " << binop() << " "
            << rng_.nextRange(1, 9) << ");\n";
        if (rng_.chance(0.5)) {
            out << "    if (r " << cmpop() << " " << rng_.nextRange(-5, 5)
                << ")\n        r = r " << binop() << " " << rng_.nextRange(1, 7)
                << ";\n";
        }
        out << "    mix((unsigned int)r);\n";
        out << "    return r;\n";
        out << "}\n";
    }

    void
    emitStatement(std::ostringstream &out, int depth, int n_functions,
                  int n_globals)
    {
        std::string indent(static_cast<size_t>(depth) * 4, ' ');
        switch (rng_.nextBelow(6)) {
          case 0: { // new local — only at function scope, so every
                     // later expression may reference it
            if (depth > 1) {
                out << indent << "mix(7u);\n";
                return;
            }
            out << indent << "int v" << locals_ << " = " << expr()
                << ";\n";
            locals_++;
            return;
          }
          case 1: { // assignment through a safe array access
            int g = static_cast<int>(rng_.nextBelow(
                static_cast<uint64_t>(n_globals)));
            out << indent << "g" << g << "[(unsigned int)(" << expr()
                << ") % 2] = " << expr() << ";\n";
            return;
          }
          case 2: { // bounded for loop
            if (depth >= 3) {
                out << indent << "mix(3u);\n";
                return;
            }
            std::string i = "i";
            i += std::to_string(loops_++);
            out << indent << "for (int " << i << " = 0; " << i << " < "
                << rng_.nextRange(1, 6) << "; " << i << "++) {\n";
            emitStatement(out, depth + 1, n_functions, n_globals);
            out << indent << "}\n";
            return;
          }
          case 3: { // if/else
            if (depth >= 3) {
                out << indent << "mix(5u);\n";
                return;
            }
            out << indent << "if (" << expr() << " " << cmpop() << " "
                << expr() << ") {\n";
            emitStatement(out, depth + 1, n_functions, n_globals);
            out << indent << "} else {\n";
            emitStatement(out, depth + 1, n_functions, n_globals);
            out << indent << "}\n";
            return;
          }
          case 4: { // call a generated function
            int f = static_cast<int>(rng_.nextBelow(
                static_cast<uint64_t>(n_functions)));
            out << indent << "v0 = v0 ^ f" << f << "(" << expr() << ", "
                << expr() << ");\n";
            return;
          }
          default: // mix an expression into the checksum
            out << indent << "mix((unsigned int)(" << expr() << "));\n";
            return;
        }
    }

    /** A small, always-defined integer expression. */
    std::string
    expr()
    {
        switch (rng_.nextBelow(5)) {
          case 0:
            return std::to_string(rng_.nextRange(-20, 20));
          case 1:
            if (locals_ > 0) {
                std::string text = "v";
                text += std::to_string(
                    rng_.nextBelow(static_cast<uint64_t>(locals_)));
                return text;
            }
            return std::to_string(rng_.nextRange(0, 9));
          case 2: {
            // Guarded division/modulo: |divisor| >= 1.
            std::string d = std::to_string(rng_.nextRange(1, 9));
            std::string text = "(";
            text += expr();
            text += rng_.chance(0.5) ? " / " : " % ";
            text += d;
            text += ")";
            return text;
          }
          case 3: {
            // Masked shift.
            std::string text = "(";
            text += expr();
            text += rng_.chance(0.5) ? " << " : " >> ";
            text += std::to_string(rng_.nextRange(0, 7));
            text += ")";
            return text;
          }
          default: {
            std::string text = "(";
            text += expr();
            text += " ";
            text += binop();
            text += " ";
            text += expr();
            text += ")";
            return text;
          }
        }
    }

    std::string
    binop()
    {
        static const char *ops[] = {"+", "-", "*", "&", "|", "^"};
        return ops[rng_.nextBelow(6)];
    }

    std::string
    cmpop()
    {
        static const char *ops[] = {"<", ">", "<=", ">=", "==", "!="};
        return ops[rng_.nextBelow(6)];
    }

    Rng rng_;
    int locals_ = 0;
    int loops_ = 0;
};

class DifferentialFuzzTest : public ::testing::TestWithParam<int>
{
};

TEST_P(DifferentialFuzzTest, AllEnginesAgreeOnRandomProgram)
{
    ProgramGenerator generator(0xF002 + static_cast<uint64_t>(GetParam()));
    std::string program = generator.generate();

    ExecutionResult reference = runUnderTool(
        program, ToolConfig::make(ToolKind::safeSulong));
    ASSERT_TRUE(reference.ok())
        << reference.bug.toString() << "\nprogram:\n" << program;

    const ToolConfig configs[] = {
        ToolConfig::make(ToolKind::clang, 0),
        ToolConfig::make(ToolKind::clang, 3),
        ToolConfig::make(ToolKind::asan, 0),
        ToolConfig::make(ToolKind::asan, 3),
        ToolConfig::make(ToolKind::memcheck, 0),
    };
    for (const ToolConfig &config : configs) {
        ExecutionResult result = runUnderTool(program, config);
        EXPECT_TRUE(result.ok())
            << config.toString() << ": " << result.bug.toString()
            << "\nprogram:\n" << program;
        EXPECT_EQ(result.output, reference.output)
            << config.toString() << "\nprogram:\n" << program;
        EXPECT_EQ(result.exitCode, reference.exitCode)
            << config.toString() << "\nprogram:\n" << program;
    }

    // Tier-2 must agree as well (eager compilation, same program).
    ToolConfig eager = ToolConfig::make(ToolKind::safeSulong);
    eager.managed.compileThreshold = 1;
    ExecutionResult tiered = runUnderTool(program, eager);
    EXPECT_EQ(tiered.output, reference.output)
        << "tier-2 divergence\nprogram:\n" << program;

    // And the textual IR round-trips (generated programs are
    // struct-free when compiled without the libc; printf stays an
    // external declaration).
    CompileResult standalone = compileC(std::vector<SourceFile>{
        {"<decl>", "int printf(const char *fmt, ...);"},
        {"<input>", program}});
    ASSERT_TRUE(standalone.ok()) << standalone.errors;
    std::string printed = printModule(*standalone.module);
    IRParseResult reparsed = parseIRModule(printed);
    ASSERT_TRUE(reparsed.ok())
        << reparsed.error << "\nIR:\n" << printed;
    EXPECT_EQ(printModule(*reparsed.module), printed)
        << "round-trip drift\nprogram:\n" << program;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzzTest,
                         ::testing::Range(0, 40));

} // namespace
} // namespace sulong
