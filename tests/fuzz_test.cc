/**
 * @file
 * Differential fuzzing: generate random *well-defined* mini-C programs
 * and require byte-identical output from every engine.
 *
 * This is the repository's strongest property test: one generated
 * program exercises the front end, both optimizer pipelines, the managed
 * object model, the flat-memory model, and both instrumentation
 * runtimes against each other. Any divergence is a bug in one of them.
 *
 * The programs come from the shared src/fuzz generator (the scenario
 * engine's front half), which keeps them well-defined by construction:
 * array indices are reduced modulo the array length, divisors are forced
 * non-zero, shift amounts are masked, and all variables are initialized
 * (signed overflow wraps identically in every engine by IR semantics).
 * The campaign driver (tools/fuzz_runner) runs the same generator at
 * scale; this suite pins the per-engine agreement property — including
 * -O3, which the campaign oracle does not run — and IR round-tripping.
 */

#include "test_util.h"

#include "fuzz/generator.h"
#include "ir/parser.h"
#include "ir/printer.h"

namespace sulong
{
namespace
{

class DifferentialFuzzTest : public ::testing::TestWithParam<int>
{
};

TEST_P(DifferentialFuzzTest, AllEnginesAgreeOnRandomProgram)
{
    ProgramGenerator generator(0xF002 + static_cast<uint64_t>(GetParam()));
    std::string program = generator.generate().render();

    ExecutionResult reference = runUnderTool(
        program, ToolConfig::make(ToolKind::safeSulong));
    ASSERT_TRUE(reference.ok())
        << reference.bug.toString() << "\nprogram:\n" << program;

    const ToolConfig configs[] = {
        ToolConfig::make(ToolKind::clang, 0),
        ToolConfig::make(ToolKind::clang, 3),
        ToolConfig::make(ToolKind::asan, 0),
        ToolConfig::make(ToolKind::asan, 3),
        ToolConfig::make(ToolKind::memcheck, 0),
    };
    for (const ToolConfig &config : configs) {
        ExecutionResult result = runUnderTool(program, config);
        EXPECT_TRUE(result.ok())
            << config.toString() << ": " << result.bug.toString()
            << "\nprogram:\n" << program;
        EXPECT_EQ(result.output, reference.output)
            << config.toString() << "\nprogram:\n" << program;
        EXPECT_EQ(result.exitCode, reference.exitCode)
            << config.toString() << "\nprogram:\n" << program;
    }

    // Tier-2 must agree as well (eager compilation, same program).
    ToolConfig eager = ToolConfig::make(ToolKind::safeSulong);
    eager.managed.compileThreshold = 1;
    ExecutionResult tiered = runUnderTool(program, eager);
    EXPECT_EQ(tiered.output, reference.output)
        << "tier-2 divergence\nprogram:\n" << program;

    // And the textual IR round-trips (generated programs are
    // struct-free when compiled without the libc; printf stays an
    // external declaration).
    CompileResult standalone = compileC(std::vector<SourceFile>{
        {"<decl>", "int printf(const char *fmt, ...);"},
        {"<input>", program}});
    ASSERT_TRUE(standalone.ok()) << standalone.errors;
    std::string printed = printModule(*standalone.module);
    IRParseResult reparsed = parseIRModule(printed);
    ASSERT_TRUE(reparsed.ok())
        << reparsed.error << "\nIR:\n" << printed;
    EXPECT_EQ(printModule(*reparsed.module), printed)
        << "round-trip drift\nprogram:\n" << program;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzzTest,
                         ::testing::Range(0, 40));

} // namespace
} // namespace sulong
