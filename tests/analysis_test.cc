/**
 * @file
 * Tests for the static analysis layer (src/analysis): per-bug-class
 * positive and negative programs, refutation demotion, and smoke runs
 * over the example programs and the safe libc.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/callgraph.h"
#include "corpus/harness.h"
#include "tools/batch_runner.h"
#include "tools/benchmark_programs.h"
#include "tools/compile_cache.h"
#include "test_util.h"

namespace sulong
{
namespace
{

/** All test compiles share one cache, like the batch runner's: a
 *  source recompiled by a later test is a hit, not a recompile. */
CompileCache &
sharedCache()
{
    static CompileCache cache;
    return cache;
}

std::shared_ptr<const Module>
moduleOf(const std::string &src)
{
    PreparedProgram prepared = prepareProgram(
        src, ToolConfig::make(ToolKind::safeSulong), &sharedCache());
    EXPECT_TRUE(prepared.ok()) << prepared.compileErrors;
    return prepared.module;
}

AnalysisReport
analyze(const std::string &src, AnalysisOptions options = {})
{
    std::shared_ptr<const Module> module = moduleOf(src);
    if (module == nullptr)
        return {};
    return analyzeModule(*module, options);
}

bool
hasFinding(const AnalysisReport &report, ErrorKind kind,
           Confidence confidence)
{
    for (const StaticFinding &f : report.findings)
        if (f.kind == kind && f.confidence == confidence)
            return true;
    return false;
}

bool
hasDefinite(const AnalysisReport &report, ErrorKind kind)
{
    return hasFinding(report, kind, Confidence::definite);
}

// ---------------------------------------------------------------------
// Null dereference
// ---------------------------------------------------------------------

TEST(AnalysisNullDeref, DefiniteOnStraightLine)
{
    AnalysisReport report = analyze(R"(
int main(void) {
    int *p = 0;
    return *p;
})");
    EXPECT_TRUE(hasDefinite(report, ErrorKind::nullDeref))
        << report.toString();
}

TEST(AnalysisNullDeref, CheckedPointerIsClean)
{
    AnalysisReport report = analyze(R"(
#include <stdlib.h>
int main(void) {
    int *p = malloc(4 * sizeof(int));
    if (p == 0)
        return 1;
    p[0] = 7;
    int v = p[0];
    free(p);
    return v;
})");
    EXPECT_FALSE(hasDefinite(report, ErrorKind::nullDeref))
        << report.toString();
}

// ---------------------------------------------------------------------
// Out of bounds
// ---------------------------------------------------------------------

TEST(AnalysisOob, ConstantIndexStore)
{
    AnalysisReport report = analyze(R"(
int main(void) {
    int a[4];
    a[6] = 1;
    return 0;
})");
    EXPECT_TRUE(hasDefinite(report, ErrorKind::outOfBounds))
        << report.toString();
}

TEST(AnalysisOob, LoopWalksOffTheEnd)
{
    AnalysisReport report = analyze(R"(
int main(void) {
    int a[8];
    int i;
    for (i = 0; i <= 8; i++)
        a[i] = i;
    return a[0];
})");
    EXPECT_TRUE(hasDefinite(report, ErrorKind::outOfBounds))
        << report.toString();
}

TEST(AnalysisOob, InBoundsLoopIsClean)
{
    AnalysisReport report = analyze(R"(
int main(void) {
    int a[8];
    int i;
    for (i = 0; i < 8; i++)
        a[i] = i;
    int sum = 0;
    for (i = 0; i < 8; i++)
        sum = sum + a[i];
    return sum;
})");
    EXPECT_FALSE(hasDefinite(report, ErrorKind::outOfBounds))
        << report.toString();
}

// ---------------------------------------------------------------------
// Temporal errors
// ---------------------------------------------------------------------

TEST(AnalysisTemporal, UseAfterFree)
{
    AnalysisReport report = analyze(R"(
#include <stdlib.h>
int main(void) {
    int *p = malloc(sizeof(int));
    if (p == 0)
        return 1;
    *p = 3;
    free(p);
    return *p;
})");
    EXPECT_TRUE(hasDefinite(report, ErrorKind::useAfterFree))
        << report.toString();
}

TEST(AnalysisTemporal, DoubleFree)
{
    AnalysisReport report = analyze(R"(
#include <stdlib.h>
int main(void) {
    char *p = malloc(16);
    if (p == 0)
        return 1;
    free(p);
    free(p);
    return 0;
})");
    EXPECT_TRUE(hasDefinite(report, ErrorKind::doubleFree))
        << report.toString();
}

TEST(AnalysisTemporal, InvalidFreeOfStackObject)
{
    AnalysisReport report = analyze(R"(
#include <stdlib.h>
int main(void) {
    int a[4];
    a[0] = 1;
    free(a);
    return 0;
})");
    EXPECT_TRUE(hasDefinite(report, ErrorKind::invalidFree))
        << report.toString();
}

TEST(AnalysisTemporal, MallocFreeOnceIsClean)
{
    AnalysisReport report = analyze(R"(
#include <stdlib.h>
int main(void) {
    int *p = malloc(8 * sizeof(int));
    if (p == 0)
        return 1;
    int i;
    for (i = 0; i < 8; i++)
        p[i] = i;
    int v = p[7];
    free(p);
    return v;
})");
    EXPECT_FALSE(hasDefinite(report, ErrorKind::useAfterFree));
    EXPECT_FALSE(hasDefinite(report, ErrorKind::doubleFree));
    EXPECT_FALSE(hasDefinite(report, ErrorKind::invalidFree));
}

// ---------------------------------------------------------------------
// Uninitialized reads
// ---------------------------------------------------------------------

TEST(AnalysisUninit, ReadOfUninitializedLocal)
{
    AnalysisReport report = analyze(R"(
int main(void) {
    int x;
    return x;
})");
    EXPECT_TRUE(hasDefinite(report, ErrorKind::uninitRead))
        << report.toString();
}

TEST(AnalysisUninit, InitializedLocalIsClean)
{
    AnalysisReport report = analyze(R"(
int main(void) {
    int x = 5;
    int y = x + 1;
    return y;
})");
    EXPECT_FALSE(hasDefinite(report, ErrorKind::uninitRead))
        << report.toString();
}

// ---------------------------------------------------------------------
// Refutation
// ---------------------------------------------------------------------

TEST(AnalysisRefutation, UnreachedFaultIsDemoted)
{
    // The faulting store is syntactically a guaranteed null write, but
    // the guard is false for the replayed input (argc == 1), so the
    // concrete replay exits cleanly and the report must demote to maybe.
    const char *src = R"(
int main(int argc, char **argv) {
    if (argc > 5) {
        int *p = 0;
        *p = 1;
    }
    return 0;
})";
    AnalysisOptions noRefute;
    noRefute.refute = false;
    AnalysisReport raw = analyze(src, noRefute);
    EXPECT_TRUE(hasDefinite(raw, ErrorKind::nullDeref)) << raw.toString();

    AnalysisReport refuted = analyze(src);
    EXPECT_FALSE(hasDefinite(refuted, ErrorKind::nullDeref))
        << refuted.toString();
    EXPECT_TRUE(hasFinding(refuted, ErrorKind::nullDeref, Confidence::maybe))
        << refuted.toString();
}

TEST(AnalysisRefutation, ReplayConfirmsReachedFault)
{
    AnalysisReport report = analyze(R"(
int main(void) {
    int a[4];
    int i;
    for (i = 0; i < 4; i++)
        a[i] = i;
    return a[4];
})");
    ASSERT_TRUE(hasDefinite(report, ErrorKind::outOfBounds))
        << report.toString();
    bool confirmed = false;
    for (const StaticFinding &f : report.findings)
        if (f.kind == ErrorKind::outOfBounds &&
            f.confidence == Confidence::definite && f.replayConfirmed)
            confirmed = true;
    EXPECT_TRUE(confirmed) << report.toString();
}

TEST(AnalysisRefutation, ReplayAddsFaultMissedByAbstraction)
{
    // The index comes through a helper call, so the intraprocedural
    // abstraction cannot prove the overflow — but the concrete replay
    // reaches it and promotes it into the report.
    AnalysisReport report = analyze(R"(
static int pick(int n) { return n + 3; }
int main(void) {
    int a[4];
    a[0] = 0;
    a[pick(2)] = 1;
    return 0;
})");
    EXPECT_TRUE(hasDefinite(report, ErrorKind::outOfBounds))
        << report.toString();
}

// ---------------------------------------------------------------------
// Benign programs stay clean
// ---------------------------------------------------------------------

TEST(AnalysisClean, StringAndHeapWork)
{
    AnalysisReport report = analyze(R"(
#include <string.h>
#include <stdlib.h>
int main(void) {
    char buf[32];
    strcpy(buf, "hello");
    strcat(buf, " world");
    char *dup = strdup(buf);
    if (dup == 0)
        return 1;
    int n = (int)strlen(dup);
    free(dup);
    return n;
})");
    EXPECT_EQ(report.definiteCount(), 0u) << report.toString();
}

TEST(AnalysisClean, PrintfProgram)
{
    AnalysisReport report = analyze(R"(
int main(void) {
    int i;
    for (i = 0; i < 3; i++)
        printf("%d\n", i);
    return 0;
})");
    EXPECT_EQ(report.definiteCount(), 0u) << report.toString();
}

// ---------------------------------------------------------------------
// Options plumbing
// ---------------------------------------------------------------------

TEST(AnalysisOptions, AnalyzeOnlyNeedsNoExecution)
{
    // analyzeModule never runs the engine; a report for a program whose
    // bug sits behind unbounded input still comes back (as maybe).
    AnalysisReport report = analyze(R"(
int main(int argc, char **argv) {
    int a[4];
    a[argc * 2] = 1;
    return 0;
})");
    EXPECT_GE(report.findings.size(), 0u);
    EXPECT_EQ(report.functionsAnalyzed, 1u);
}

TEST(AnalysisOptions, ReplayArgsDriveTheVerdict)
{
    const char *src = R"(
int main(int argc, char **argv) {
    int a[4];
    if (argc > 4)
        a[argc] = 1;
    return 0;
})";
    std::shared_ptr<const Module> module = moduleOf(src);
    ASSERT_NE(module, nullptr);

    AnalysisOptions quiet;
    AnalysisReport clean = analyzeModule(*module, quiet);
    EXPECT_EQ(clean.definiteCount(), 0u) << clean.toString();

    AnalysisOptions loud;
    loud.replayArgs = {"a", "b", "c", "d", "e"};
    AnalysisReport hit = analyzeModule(*module, loud);
    EXPECT_TRUE(hasDefinite(hit, ErrorKind::outOfBounds)) << hit.toString();
}

// ---------------------------------------------------------------------
// Corpus cross-validation: the soundness contract
// ---------------------------------------------------------------------

TEST(AnalysisCrossValidation, ZeroFalseDefinitesOverCorpus)
{
    CrossValidationReport report = crossValidateCorpus(bugCorpus());
    ASSERT_EQ(report.rows.size(), bugCorpus().size());
    EXPECT_EQ(report.falseDefinites(), 0u) << formatCrossValidation(report);
    // Empirical floors with head-room: the analyzer currently reports
    // all 68 planted bugs and replay-confirms 67 of them as definite.
    EXPECT_GE(report.recall(), 0.95) << formatCrossValidation(report);
    EXPECT_GE(report.definiteRecall(), 0.90)
        << formatCrossValidation(report);
}

// ---------------------------------------------------------------------
// Smoke: example programs and the safe libc
// ---------------------------------------------------------------------

TEST(AnalysisSmoke, QuickstartDemoFindsItsPlantedBug)
{
    // The quickstart example's demo program: an off-by-one store.
    AnalysisReport report = analyze(R"(
#include <stdio.h>
int main(void) {
    int squares[10];
    for (int i = 1; i <= 10; i++)
        squares[i] = i * i;
    printf("3^2 = %d\n", squares[3]);
    return 0;
})");
    EXPECT_TRUE(hasDefinite(report, ErrorKind::outOfBounds))
        << report.toString();
}

TEST(AnalysisSmoke, BenchmarkProgramsStayClean)
{
    // The performance suite doubles as a clean-program corpus: every
    // benchmark is correct, so no replay fault (hence no definite
    // finding) may appear. A short replay budget keeps this fast — a
    // budget stop leaves findings at maybe, which is still clean.
    for (const BenchmarkProgram &bench : benchmarkPrograms()) {
        std::shared_ptr<const Module> module = moduleOf(bench.source);
        ASSERT_NE(module, nullptr) << bench.name;
        AnalysisOptions options;
        options.replaySteps = 200'000;
        options.replayArgs = bench.args;
        AnalysisReport report = analyzeModule(*module, options);
        EXPECT_EQ(report.definiteCount(), 0u)
            << bench.name << "\n" << report.toString();
    }
}

TEST(AnalysisSmoke, LibcBodiesStayClean)
{
    // Exercise a broad swath of the safe libc and analyze its function
    // bodies too (not just user code): nothing may be definite.
    AnalysisOptions options;
    options.userCodeOnly = false;
    std::shared_ptr<const Module> module = moduleOf(R"(
#include <string.h>
#include <stdlib.h>
#include <stdio.h>
static int cmp_int(const void *a, const void *b) {
    return *(const int *)a - *(const int *)b;
}
int main(void) {
    char buf[64];
    strcpy(buf, "hello");
    strncat(buf, " world", 32);
    char *dup = strdup(buf);
    if (dup == 0)
        return 1;
    if (strcmp(dup, buf) != 0 || strstr(buf, "world") == 0)
        return 1;
    memmove(buf + 1, buf, 10);
    memset(buf + 20, 'x', 8);
    int nums[5] = {4, 1, 3, 5, 2};
    qsort(nums, 5, sizeof(int), cmp_int);
    char out[32];
    snprintf(out, sizeof out, "%d %s", nums[0], dup);
    printf("%s len=%d atoi=%d\n", out, (int)strlen(out), atoi("42"));
    free(dup);
    return 0;
})");
    ASSERT_NE(module, nullptr);
    AnalysisReport report = analyzeModule(*module, options);
    EXPECT_EQ(report.definiteCount(), 0u) << report.toString();
    EXPECT_GT(report.functionsAnalyzed, 10u);
}

// ---------------------------------------------------------------------
// Call graph and SCC condensation
// ---------------------------------------------------------------------

TEST(AnalysisCallGraph, MutualRecursionFormsOneScc)
{
    std::shared_ptr<const Module> module = moduleOf(R"(
static int odd(int n);
static int even(int n) { return n == 0 ? 1 : odd(n - 1); }
static int odd(int n) { return n == 0 ? 0 : even(n - 1); }
int main(void) { return even(10); }
)");
    ASSERT_NE(module, nullptr);
    const Function *even = module->findFunction("even");
    const Function *odd = module->findFunction("odd");
    const Function *main_fn = module->findFunction("main");
    ASSERT_NE(even, nullptr);
    ASSERT_NE(odd, nullptr);
    ASSERT_NE(main_fn, nullptr);

    CallGraph graph = CallGraph::build(*module);
    SccInfo info = condense(graph);
    // even and odd collapse into one recursive SCC; main sits in its
    // own non-recursive SCC strictly above it (callees are deeper in
    // Tarjan's bottom-up emission, so they come first).
    EXPECT_EQ(info.sccOf[even->id()], info.sccOf[odd->id()]);
    EXPECT_NE(info.sccOf[main_fn->id()], info.sccOf[even->id()]);
    const Scc &cycle = info.sccs[info.sccOf[even->id()]];
    const Scc &top = info.sccs[info.sccOf[main_fn->id()]];
    EXPECT_TRUE(cycle.recursive);
    EXPECT_EQ(cycle.members.size(), 2u);
    EXPECT_FALSE(top.recursive);
    EXPECT_GT(top.depth, cycle.depth);
    EXPECT_LT(info.sccOf[even->id()], info.sccOf[main_fn->id()]);

    // The recursive SCC's summaries reach a fixpoint (or degrade to
    // pessimistic) without poisoning soundness: nothing is definite.
    AnalysisReport report = analyzeModule(*module);
    EXPECT_EQ(report.definiteCount(), 0u) << report.toString();
}

TEST(AnalysisCallGraph, SelfRecursionMarkedRecursive)
{
    std::shared_ptr<const Module> module = moduleOf(R"(
static int fact(int n) { return n < 2 ? 1 : n * fact(n - 1); }
int main(void) { return fact(5); }
)");
    ASSERT_NE(module, nullptr);
    const Function *fact = module->findFunction("fact");
    ASSERT_NE(fact, nullptr);
    CallGraph graph = CallGraph::build(*module);
    SccInfo info = condense(graph);
    const Scc &scc = info.sccs[info.sccOf[fact->id()]];
    EXPECT_TRUE(scc.recursive);
    EXPECT_EQ(scc.members.size(), 1u);
    AnalysisReport report = analyzeModule(*module);
    EXPECT_EQ(report.definiteCount(), 0u) << report.toString();
}

TEST(AnalysisCallGraph, FunctionPointerMayCallSet)
{
    std::shared_ptr<const Module> module = moduleOf(R"(
static int inc(int x) { return x + 1; }
static int dec(int x) { return x - 1; }
static double fp_mismatch(double x) { return x; }
int main(int argc, char **argv) {
    (void)argv;
    int (*fp)(int) = argc > 1 ? inc : dec;
    (void)fp_mismatch;
    return fp(3);
}
)");
    ASSERT_NE(module, nullptr);
    const Function *inc = module->findFunction("inc");
    const Function *dec = module->findFunction("dec");
    const Function *main_fn = module->findFunction("main");
    ASSERT_NE(inc, nullptr);
    ASSERT_NE(dec, nullptr);
    ASSERT_NE(main_fn, nullptr);

    CallGraph graph = CallGraph::build(*module);
    EXPECT_TRUE(graph.addressTaken(*inc));
    EXPECT_TRUE(graph.addressTaken(*dec));

    // Locate the indirect call in main and check its may-call set:
    // both int(int) candidates, never the double(double) one.
    const Instruction *indirect = nullptr;
    for (const auto &bb : main_fn->blocks())
        for (const auto &inst : bb->insts())
            if (inst->op() == Opcode::call &&
                dynamic_cast<const Function *>(inst->operand(0)) ==
                    nullptr)
                indirect = inst.get();
    ASSERT_NE(indirect, nullptr);
    std::vector<const Function *> targets = graph.mayCall(*indirect);
    ASSERT_EQ(targets.size(), 2u);
    EXPECT_TRUE((targets[0] == inc && targets[1] == dec) ||
                (targets[0] == dec && targets[1] == inc));

    // And the call-graph edges from main include both candidates.
    const CallGraph::Node &node = graph.node(main_fn->id());
    EXPECT_NE(std::find(node.callees.begin(), node.callees.end(),
                        inc->id()),
              node.callees.end());
    EXPECT_NE(std::find(node.callees.begin(), node.callees.end(),
                        dec->id()),
              node.callees.end());
}

// ---------------------------------------------------------------------
// Function summaries at call sites
// ---------------------------------------------------------------------

TEST(AnalysisSummaries, CalleeIntervalSilencesInBoundsAccess)
{
    // With summaries, three()'s return narrows to [3,3]: the store is
    // provably in bounds and no finding appears at all. Without them
    // the call havocs to top and a maybe survives.
    const char *src = R"(
static int three(void) { return 3; }
int main(void) { int a[4]; a[three()] = 1; return 0; }
)";
    std::shared_ptr<const Module> module = moduleOf(src);
    ASSERT_NE(module, nullptr);

    AnalysisReport with = analyzeModule(*module);
    EXPECT_TRUE(with.findings.empty()) << with.toString();
    EXPECT_GE(with.summariesApplied, 1u);

    AnalysisOptions off;
    off.summaries = false;
    AnalysisReport without = analyzeModule(*module, off);
    EXPECT_EQ(without.summariesApplied, 0u);
    EXPECT_TRUE(
        hasFinding(without, ErrorKind::outOfBounds, Confidence::maybe))
        << without.toString();
}

TEST(AnalysisSummaries, CalleeConstantMakesOobDefinite)
{
    // PR-4 reported this as maybe (havocked call); the summary makes
    // the index exactly 6 and the replay confirms the fault.
    AnalysisReport report = analyze(R"(
static int idx(void) { return 6; }
int main(void) { int a[4]; a[idx()] = 1; return 0; }
)");
    EXPECT_TRUE(hasDefinite(report, ErrorKind::outOfBounds))
        << report.toString();
}

TEST(AnalysisSummaries, AffineReturnNarrowsThroughArgument)
{
    // add3 is `x + 3`: the affine transfer maps the call-site argument
    // [2,2] to [5,5], in bounds of a[8] — no finding survives.
    AnalysisReport report = analyze(R"(
static int add3(int x) { return x + 3; }
int main(void) { int a[8]; a[add3(2)] = 1; return a[add3(2)]; }
)");
    EXPECT_TRUE(report.findings.empty()) << report.toString();
    EXPECT_GE(report.summariesApplied, 1u);
}

TEST(AnalysisSummaries, CrossFunctionFreeSeenThroughEffect)
{
    // The callee's may-free effect marks the block maybe-freed at the
    // call site, so the later use is flagged (and the replay confirms
    // the fault as definite).
    AnalysisReport report = analyze(R"(
#include <stdlib.h>
static void drop(int *p) { free(p); }
int main(void) {
    int *p = malloc(8);
    if (!p) return 0;
    drop(p);
    return p[0];
}
)");
    EXPECT_TRUE(hasDefinite(report, ErrorKind::useAfterFree))
        << report.toString();
}

// ---------------------------------------------------------------------
// Constraint solver: proofs drop findings, unknowns fall through
// ---------------------------------------------------------------------

TEST(AnalysisSolver, ContradictoryGuardsProvenInfeasible)
{
    // i == 10 requires argc > 3, the guarded store requires argc <= 3:
    // every witness path is UNSAT, so the finding is dropped with a
    // refutation certificate instead of merely demoted.
    std::shared_ptr<const Module> module = moduleOf(R"(
int main(int argc, char **argv) {
    int a[4]; int i;
    (void)argv;
    if (argc > 3) i = 10; else i = 2;
    if (argc <= 3) a[i] = 1;
    return 0;
}
)");
    ASSERT_NE(module, nullptr);
    AnalysisReport report = analyzeModule(*module);
    EXPECT_TRUE(report.findings.empty()) << report.toString();
    ASSERT_EQ(report.refutations.size(), 1u);
    EXPECT_EQ(report.refutations[0].kind, ErrorKind::outOfBounds);
    EXPECT_FALSE(report.refutations[0].certificate.empty());

    // Ablation: with the solver off the same finding survives (the
    // replay can only demote it to maybe, not prove it impossible).
    AnalysisOptions off;
    off.solver = false;
    AnalysisReport kept = analyzeModule(*module, off);
    EXPECT_TRUE(kept.refutations.empty());
    EXPECT_TRUE(
        hasFinding(kept, ErrorKind::outOfBounds, Confidence::maybe))
        << kept.toString();
}

TEST(AnalysisSolver, UnprovenFindingFallsBackToReplay)
{
    // The store is feasible (argc can be 5), so the solver must NOT
    // refute it; the concrete replay (argc == 1) then demotes it to
    // maybe. Pipeline order: solver proof > replay confirm > demote.
    AnalysisReport report = analyze(R"(
int main(int argc, char **argv) {
    int a[4];
    (void)argv;
    if (argc > 4)
        a[argc] = 1;
    return 0;
}
)");
    EXPECT_TRUE(report.refutations.empty()) << report.toString();
    EXPECT_GE(report.solverChecked, 1u);
    EXPECT_TRUE(
        hasFinding(report, ErrorKind::outOfBounds, Confidence::maybe))
        << report.toString();
}

// ---------------------------------------------------------------------
// Parallel SCC scheduling is deterministic
// ---------------------------------------------------------------------

TEST(AnalysisParallel, JobsDoNotChangeFindings)
{
    // Wide fan-out: many same-depth leaf functions, analyzed in
    // parallel at jobs=8. The report must be byte-identical to the
    // sequential run (module-order assembly, not completion order).
    std::string src;
    for (int i = 0; i < 12; i++) {
        std::string n = std::to_string(i);
        src += "static int leaf" + n + "(void) { int a[4]; a[" + n +
               " % 3] = " + n + "; return a[" + n + " % 3] + " + n +
               "; }\n";
    }
    src += "int main(void) { int s = 0;\n";
    for (int i = 0; i < 12; i++)
        src += "  s += leaf" + std::to_string(i) + "();\n";
    src += "  int bad[4]; bad[6] = s; return s; }\n";

    std::shared_ptr<const Module> module = moduleOf(src);
    ASSERT_NE(module, nullptr);

    AnalysisOptions seq;
    seq.jobs = 1;
    AnalysisOptions par;
    par.jobs = 8;
    AnalysisReport a = analyzeModule(*module, seq);
    AnalysisReport b = analyzeModule(*module, par);
    EXPECT_EQ(a.toString(), b.toString());
    EXPECT_EQ(a.findings.size(), b.findings.size());
    EXPECT_EQ(a.summariesApplied, b.summariesApplied);
    EXPECT_TRUE(hasDefinite(a, ErrorKind::outOfBounds)) << a.toString();
}

// ---------------------------------------------------------------------
// Compile cache routing
// ---------------------------------------------------------------------

TEST(AnalysisCache, RepeatedCompilesHitTheSharedCache)
{
    const char *src = "int main(void) { return 41 + 1; }";
    uint64_t hits_before = sharedCache().stats().hits;
    std::shared_ptr<const Module> first = moduleOf(src);
    std::shared_ptr<const Module> second = moduleOf(src);
    ASSERT_NE(first, nullptr);
    ASSERT_NE(second, nullptr);
    // The second compile of identical (source, config) must be served
    // from the cache — and hand back the same immutable module.
    EXPECT_GE(sharedCache().stats().hits, hits_before + 1);
    EXPECT_EQ(first.get(), second.get());
}

// ---------------------------------------------------------------------
// Batch-runner integration
// ---------------------------------------------------------------------

TEST(AnalysisBatch, FindingsLandInJobStats)
{
    std::vector<BatchJob> jobs;
    jobs.push_back(BatchJob::make(
        "int main(void) { int *p = 0; return *p; }",
        ToolConfig::make(ToolKind::safeSulong)));
    jobs.push_back(BatchJob::make(
        "int main(void) { return 0; }",
        ToolConfig::make(ToolKind::safeSulong)));

    AnalysisOptions analysis;
    BatchOptions options;
    options.analysis = &analysis;
    BatchReport report = runBatch(jobs, options);

    ASSERT_EQ(report.jobStats.size(), 2u);
    EXPECT_GE(report.jobStats[0].staticDefinite, 1u);
    ASSERT_FALSE(report.jobStats[0].staticFindings.empty());
    EXPECT_EQ(report.jobStats[0].staticFindings[0].kind,
              ErrorKind::nullDeref);
    EXPECT_EQ(report.jobStats[1].staticDefinite, 0u);
    EXPECT_TRUE(report.jobStats[1].staticFindings.empty());
    // The dynamic run still happened and agrees.
    EXPECT_EQ(report.results[0].bug.kind, ErrorKind::nullDeref);
    EXPECT_TRUE(report.results[1].ok());
}

TEST(AnalysisBatch, NoAnalysisByDefault)
{
    std::vector<BatchJob> jobs;
    jobs.push_back(BatchJob::make(
        "int main(void) { int *p = 0; return *p; }",
        ToolConfig::make(ToolKind::safeSulong)));
    BatchReport report = runBatch(jobs);
    ASSERT_EQ(report.jobStats.size(), 1u);
    EXPECT_TRUE(report.jobStats[0].staticFindings.empty());
    EXPECT_EQ(report.jobStats[0].staticDefinite, 0u);
}

} // namespace
} // namespace sulong
