/**
 * @file
 * Tests for the static analysis layer (src/analysis): per-bug-class
 * positive and negative programs, refutation demotion, and smoke runs
 * over the example programs and the safe libc.
 */

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "corpus/harness.h"
#include "tools/batch_runner.h"
#include "tools/benchmark_programs.h"
#include "test_util.h"

namespace sulong
{
namespace
{

std::shared_ptr<const Module>
moduleOf(const std::string &src)
{
    PreparedProgram prepared =
        prepareProgram(src, ToolConfig::make(ToolKind::safeSulong));
    EXPECT_TRUE(prepared.ok()) << prepared.compileErrors;
    return prepared.module;
}

AnalysisReport
analyze(const std::string &src, AnalysisOptions options = {})
{
    std::shared_ptr<const Module> module = moduleOf(src);
    if (module == nullptr)
        return {};
    return analyzeModule(*module, options);
}

bool
hasFinding(const AnalysisReport &report, ErrorKind kind,
           Confidence confidence)
{
    for (const StaticFinding &f : report.findings)
        if (f.kind == kind && f.confidence == confidence)
            return true;
    return false;
}

bool
hasDefinite(const AnalysisReport &report, ErrorKind kind)
{
    return hasFinding(report, kind, Confidence::definite);
}

// ---------------------------------------------------------------------
// Null dereference
// ---------------------------------------------------------------------

TEST(AnalysisNullDeref, DefiniteOnStraightLine)
{
    AnalysisReport report = analyze(R"(
int main(void) {
    int *p = 0;
    return *p;
})");
    EXPECT_TRUE(hasDefinite(report, ErrorKind::nullDeref))
        << report.toString();
}

TEST(AnalysisNullDeref, CheckedPointerIsClean)
{
    AnalysisReport report = analyze(R"(
#include <stdlib.h>
int main(void) {
    int *p = malloc(4 * sizeof(int));
    if (p == 0)
        return 1;
    p[0] = 7;
    int v = p[0];
    free(p);
    return v;
})");
    EXPECT_FALSE(hasDefinite(report, ErrorKind::nullDeref))
        << report.toString();
}

// ---------------------------------------------------------------------
// Out of bounds
// ---------------------------------------------------------------------

TEST(AnalysisOob, ConstantIndexStore)
{
    AnalysisReport report = analyze(R"(
int main(void) {
    int a[4];
    a[6] = 1;
    return 0;
})");
    EXPECT_TRUE(hasDefinite(report, ErrorKind::outOfBounds))
        << report.toString();
}

TEST(AnalysisOob, LoopWalksOffTheEnd)
{
    AnalysisReport report = analyze(R"(
int main(void) {
    int a[8];
    int i;
    for (i = 0; i <= 8; i++)
        a[i] = i;
    return a[0];
})");
    EXPECT_TRUE(hasDefinite(report, ErrorKind::outOfBounds))
        << report.toString();
}

TEST(AnalysisOob, InBoundsLoopIsClean)
{
    AnalysisReport report = analyze(R"(
int main(void) {
    int a[8];
    int i;
    for (i = 0; i < 8; i++)
        a[i] = i;
    int sum = 0;
    for (i = 0; i < 8; i++)
        sum = sum + a[i];
    return sum;
})");
    EXPECT_FALSE(hasDefinite(report, ErrorKind::outOfBounds))
        << report.toString();
}

// ---------------------------------------------------------------------
// Temporal errors
// ---------------------------------------------------------------------

TEST(AnalysisTemporal, UseAfterFree)
{
    AnalysisReport report = analyze(R"(
#include <stdlib.h>
int main(void) {
    int *p = malloc(sizeof(int));
    if (p == 0)
        return 1;
    *p = 3;
    free(p);
    return *p;
})");
    EXPECT_TRUE(hasDefinite(report, ErrorKind::useAfterFree))
        << report.toString();
}

TEST(AnalysisTemporal, DoubleFree)
{
    AnalysisReport report = analyze(R"(
#include <stdlib.h>
int main(void) {
    char *p = malloc(16);
    if (p == 0)
        return 1;
    free(p);
    free(p);
    return 0;
})");
    EXPECT_TRUE(hasDefinite(report, ErrorKind::doubleFree))
        << report.toString();
}

TEST(AnalysisTemporal, InvalidFreeOfStackObject)
{
    AnalysisReport report = analyze(R"(
#include <stdlib.h>
int main(void) {
    int a[4];
    a[0] = 1;
    free(a);
    return 0;
})");
    EXPECT_TRUE(hasDefinite(report, ErrorKind::invalidFree))
        << report.toString();
}

TEST(AnalysisTemporal, MallocFreeOnceIsClean)
{
    AnalysisReport report = analyze(R"(
#include <stdlib.h>
int main(void) {
    int *p = malloc(8 * sizeof(int));
    if (p == 0)
        return 1;
    int i;
    for (i = 0; i < 8; i++)
        p[i] = i;
    int v = p[7];
    free(p);
    return v;
})");
    EXPECT_FALSE(hasDefinite(report, ErrorKind::useAfterFree));
    EXPECT_FALSE(hasDefinite(report, ErrorKind::doubleFree));
    EXPECT_FALSE(hasDefinite(report, ErrorKind::invalidFree));
}

// ---------------------------------------------------------------------
// Uninitialized reads
// ---------------------------------------------------------------------

TEST(AnalysisUninit, ReadOfUninitializedLocal)
{
    AnalysisReport report = analyze(R"(
int main(void) {
    int x;
    return x;
})");
    EXPECT_TRUE(hasDefinite(report, ErrorKind::uninitRead))
        << report.toString();
}

TEST(AnalysisUninit, InitializedLocalIsClean)
{
    AnalysisReport report = analyze(R"(
int main(void) {
    int x = 5;
    int y = x + 1;
    return y;
})");
    EXPECT_FALSE(hasDefinite(report, ErrorKind::uninitRead))
        << report.toString();
}

// ---------------------------------------------------------------------
// Refutation
// ---------------------------------------------------------------------

TEST(AnalysisRefutation, UnreachedFaultIsDemoted)
{
    // The faulting store is syntactically a guaranteed null write, but
    // the guard is false for the replayed input (argc == 1), so the
    // concrete replay exits cleanly and the report must demote to maybe.
    const char *src = R"(
int main(int argc, char **argv) {
    if (argc > 5) {
        int *p = 0;
        *p = 1;
    }
    return 0;
})";
    AnalysisOptions noRefute;
    noRefute.refute = false;
    AnalysisReport raw = analyze(src, noRefute);
    EXPECT_TRUE(hasDefinite(raw, ErrorKind::nullDeref)) << raw.toString();

    AnalysisReport refuted = analyze(src);
    EXPECT_FALSE(hasDefinite(refuted, ErrorKind::nullDeref))
        << refuted.toString();
    EXPECT_TRUE(hasFinding(refuted, ErrorKind::nullDeref, Confidence::maybe))
        << refuted.toString();
}

TEST(AnalysisRefutation, ReplayConfirmsReachedFault)
{
    AnalysisReport report = analyze(R"(
int main(void) {
    int a[4];
    int i;
    for (i = 0; i < 4; i++)
        a[i] = i;
    return a[4];
})");
    ASSERT_TRUE(hasDefinite(report, ErrorKind::outOfBounds))
        << report.toString();
    bool confirmed = false;
    for (const StaticFinding &f : report.findings)
        if (f.kind == ErrorKind::outOfBounds &&
            f.confidence == Confidence::definite && f.replayConfirmed)
            confirmed = true;
    EXPECT_TRUE(confirmed) << report.toString();
}

TEST(AnalysisRefutation, ReplayAddsFaultMissedByAbstraction)
{
    // The index comes through a helper call, so the intraprocedural
    // abstraction cannot prove the overflow — but the concrete replay
    // reaches it and promotes it into the report.
    AnalysisReport report = analyze(R"(
static int pick(int n) { return n + 3; }
int main(void) {
    int a[4];
    a[0] = 0;
    a[pick(2)] = 1;
    return 0;
})");
    EXPECT_TRUE(hasDefinite(report, ErrorKind::outOfBounds))
        << report.toString();
}

// ---------------------------------------------------------------------
// Benign programs stay clean
// ---------------------------------------------------------------------

TEST(AnalysisClean, StringAndHeapWork)
{
    AnalysisReport report = analyze(R"(
#include <string.h>
#include <stdlib.h>
int main(void) {
    char buf[32];
    strcpy(buf, "hello");
    strcat(buf, " world");
    char *dup = strdup(buf);
    if (dup == 0)
        return 1;
    int n = (int)strlen(dup);
    free(dup);
    return n;
})");
    EXPECT_EQ(report.definiteCount(), 0u) << report.toString();
}

TEST(AnalysisClean, PrintfProgram)
{
    AnalysisReport report = analyze(R"(
int main(void) {
    int i;
    for (i = 0; i < 3; i++)
        printf("%d\n", i);
    return 0;
})");
    EXPECT_EQ(report.definiteCount(), 0u) << report.toString();
}

// ---------------------------------------------------------------------
// Options plumbing
// ---------------------------------------------------------------------

TEST(AnalysisOptions, AnalyzeOnlyNeedsNoExecution)
{
    // analyzeModule never runs the engine; a report for a program whose
    // bug sits behind unbounded input still comes back (as maybe).
    AnalysisReport report = analyze(R"(
int main(int argc, char **argv) {
    int a[4];
    a[argc * 2] = 1;
    return 0;
})");
    EXPECT_GE(report.findings.size(), 0u);
    EXPECT_EQ(report.functionsAnalyzed, 1u);
}

TEST(AnalysisOptions, ReplayArgsDriveTheVerdict)
{
    const char *src = R"(
int main(int argc, char **argv) {
    int a[4];
    if (argc > 4)
        a[argc] = 1;
    return 0;
})";
    std::shared_ptr<const Module> module = moduleOf(src);
    ASSERT_NE(module, nullptr);

    AnalysisOptions quiet;
    AnalysisReport clean = analyzeModule(*module, quiet);
    EXPECT_EQ(clean.definiteCount(), 0u) << clean.toString();

    AnalysisOptions loud;
    loud.replayArgs = {"a", "b", "c", "d", "e"};
    AnalysisReport hit = analyzeModule(*module, loud);
    EXPECT_TRUE(hasDefinite(hit, ErrorKind::outOfBounds)) << hit.toString();
}

// ---------------------------------------------------------------------
// Corpus cross-validation: the soundness contract
// ---------------------------------------------------------------------

TEST(AnalysisCrossValidation, ZeroFalseDefinitesOverCorpus)
{
    CrossValidationReport report = crossValidateCorpus(bugCorpus());
    ASSERT_EQ(report.rows.size(), bugCorpus().size());
    EXPECT_EQ(report.falseDefinites(), 0u) << formatCrossValidation(report);
    // Empirical floors with head-room: the analyzer currently reports
    // all 68 planted bugs and replay-confirms 67 of them as definite.
    EXPECT_GE(report.recall(), 0.95) << formatCrossValidation(report);
    EXPECT_GE(report.definiteRecall(), 0.90)
        << formatCrossValidation(report);
}

// ---------------------------------------------------------------------
// Smoke: example programs and the safe libc
// ---------------------------------------------------------------------

TEST(AnalysisSmoke, QuickstartDemoFindsItsPlantedBug)
{
    // The quickstart example's demo program: an off-by-one store.
    AnalysisReport report = analyze(R"(
#include <stdio.h>
int main(void) {
    int squares[10];
    for (int i = 1; i <= 10; i++)
        squares[i] = i * i;
    printf("3^2 = %d\n", squares[3]);
    return 0;
})");
    EXPECT_TRUE(hasDefinite(report, ErrorKind::outOfBounds))
        << report.toString();
}

TEST(AnalysisSmoke, BenchmarkProgramsStayClean)
{
    // The performance suite doubles as a clean-program corpus: every
    // benchmark is correct, so no replay fault (hence no definite
    // finding) may appear. A short replay budget keeps this fast — a
    // budget stop leaves findings at maybe, which is still clean.
    for (const BenchmarkProgram &bench : benchmarkPrograms()) {
        std::shared_ptr<const Module> module = moduleOf(bench.source);
        ASSERT_NE(module, nullptr) << bench.name;
        AnalysisOptions options;
        options.replaySteps = 200'000;
        options.replayArgs = bench.args;
        AnalysisReport report = analyzeModule(*module, options);
        EXPECT_EQ(report.definiteCount(), 0u)
            << bench.name << "\n" << report.toString();
    }
}

TEST(AnalysisSmoke, LibcBodiesStayClean)
{
    // Exercise a broad swath of the safe libc and analyze its function
    // bodies too (not just user code): nothing may be definite.
    AnalysisOptions options;
    options.userCodeOnly = false;
    std::shared_ptr<const Module> module = moduleOf(R"(
#include <string.h>
#include <stdlib.h>
#include <stdio.h>
static int cmp_int(const void *a, const void *b) {
    return *(const int *)a - *(const int *)b;
}
int main(void) {
    char buf[64];
    strcpy(buf, "hello");
    strncat(buf, " world", 32);
    char *dup = strdup(buf);
    if (dup == 0)
        return 1;
    if (strcmp(dup, buf) != 0 || strstr(buf, "world") == 0)
        return 1;
    memmove(buf + 1, buf, 10);
    memset(buf + 20, 'x', 8);
    int nums[5] = {4, 1, 3, 5, 2};
    qsort(nums, 5, sizeof(int), cmp_int);
    char out[32];
    snprintf(out, sizeof out, "%d %s", nums[0], dup);
    printf("%s len=%d atoi=%d\n", out, (int)strlen(out), atoi("42"));
    free(dup);
    return 0;
})");
    ASSERT_NE(module, nullptr);
    AnalysisReport report = analyzeModule(*module, options);
    EXPECT_EQ(report.definiteCount(), 0u) << report.toString();
    EXPECT_GT(report.functionsAnalyzed, 10u);
}

// ---------------------------------------------------------------------
// Batch-runner integration
// ---------------------------------------------------------------------

TEST(AnalysisBatch, FindingsLandInJobStats)
{
    std::vector<BatchJob> jobs;
    jobs.push_back(BatchJob::make(
        "int main(void) { int *p = 0; return *p; }",
        ToolConfig::make(ToolKind::safeSulong)));
    jobs.push_back(BatchJob::make(
        "int main(void) { return 0; }",
        ToolConfig::make(ToolKind::safeSulong)));

    AnalysisOptions analysis;
    BatchOptions options;
    options.analysis = &analysis;
    BatchReport report = runBatch(jobs, options);

    ASSERT_EQ(report.jobStats.size(), 2u);
    EXPECT_GE(report.jobStats[0].staticDefinite, 1u);
    ASSERT_FALSE(report.jobStats[0].staticFindings.empty());
    EXPECT_EQ(report.jobStats[0].staticFindings[0].kind,
              ErrorKind::nullDeref);
    EXPECT_EQ(report.jobStats[1].staticDefinite, 0u);
    EXPECT_TRUE(report.jobStats[1].staticFindings.empty());
    // The dynamic run still happened and agrees.
    EXPECT_EQ(report.results[0].bug.kind, ErrorKind::nullDeref);
    EXPECT_TRUE(report.results[1].ok());
}

TEST(AnalysisBatch, NoAnalysisByDefault)
{
    std::vector<BatchJob> jobs;
    jobs.push_back(BatchJob::make(
        "int main(void) { int *p = 0; return *p; }",
        ToolConfig::make(ToolKind::safeSulong)));
    BatchReport report = runBatch(jobs);
    ASSERT_EQ(report.jobStats.size(), 1u);
    EXPECT_TRUE(report.jobStats[0].staticFindings.empty());
    EXPECT_EQ(report.jobStats[0].staticDefinite, 0u);
}

} // namespace
} // namespace sulong
