/**
 * @file
 * Telemetry-layer tests: histogram bucket math, striped-counter merge
 * correctness under thread_pool contention, span nesting/ordering,
 * trace- and metrics-JSON round trips through the validating parser,
 * the jobs=1 vs jobs=8 counter-determinism contract, compile-cache LRU
 * eviction, and the disabled-by-default guarantee.
 */

#include "test_util.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "corpus/corpus.h"
#include "obs/expo.h"
#include "obs/flightrec.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "support/thread_pool.h"
#include "tools/batch_runner.h"
#include "tools/compile_cache.h"

namespace sulong
{
namespace
{

using obs::Counter;
using obs::Histogram;
using obs::HistogramSnapshot;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::TraceCollector;
using obs::TraceEvent;

/**
 * Collection is process-global state; every test that turns it on
 * restores the off default so suites stay order-independent.
 */
struct MetricsOn
{
    MetricsOn() { obs::setMetricsEnabled(true); }
    ~MetricsOn() { obs::setMetricsEnabled(false); }
};

struct TracingOn
{
    TracingOn()
    {
        obs::setTracingEnabled(true);
        // Start from an empty ring: earlier tests may have traced.
        TraceCollector::global().drain();
    }
    ~TracingOn() { obs::setTracingEnabled(false); }
};

std::string
readFile(const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    std::ostringstream buf;
    buf << file.rdbuf();
    return buf.str();
}

TEST(HistogramTest, BucketIndexAndBounds)
{
    // Bucket 0 holds only zeros; bucket k holds [2^(k-1), 2^k - 1].
    EXPECT_EQ(Histogram::bucketIndex(0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(1), 1u);
    EXPECT_EQ(Histogram::bucketIndex(2), 2u);
    EXPECT_EQ(Histogram::bucketIndex(3), 2u);
    EXPECT_EQ(Histogram::bucketIndex(4), 3u);
    EXPECT_EQ(Histogram::bucketIndex(1023), 10u);
    EXPECT_EQ(Histogram::bucketIndex(1024), 11u);
    EXPECT_EQ(Histogram::bucketIndex(~uint64_t{0}), 64u);

    EXPECT_EQ(Histogram::bucketLowerBound(0), 0u);
    EXPECT_EQ(Histogram::bucketUpperBound(0), 0u);
    EXPECT_EQ(Histogram::bucketLowerBound(1), 1u);
    EXPECT_EQ(Histogram::bucketUpperBound(1), 1u);
    EXPECT_EQ(Histogram::bucketLowerBound(2), 2u);
    EXPECT_EQ(Histogram::bucketUpperBound(2), 3u);
    EXPECT_EQ(Histogram::bucketLowerBound(11), 1024u);
    EXPECT_EQ(Histogram::bucketUpperBound(11), 2047u);
    EXPECT_EQ(Histogram::bucketLowerBound(64), uint64_t{1} << 63);
    EXPECT_EQ(Histogram::bucketUpperBound(64), ~uint64_t{0});

    // Every value falls inside its own bucket's inclusive range.
    for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 7ull, 8ull, 1000ull,
                       1024ull, 123456789ull}) {
        unsigned idx = Histogram::bucketIndex(v);
        EXPECT_GE(v, Histogram::bucketLowerBound(idx)) << v;
        EXPECT_LE(v, Histogram::bucketUpperBound(idx)) << v;
    }
}

TEST(HistogramTest, SnapshotMaterializesOnlyNonEmptyBuckets)
{
    MetricsOn on;
    Histogram hist("test.hist");
    hist.record(0);
    hist.record(1);
    hist.record(1);
    hist.record(1500); // bucket 11: [1024, 2047]

    HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count, 4u);
    EXPECT_EQ(snap.sum, 1502u);
    ASSERT_EQ(snap.buckets.size(), 3u);
    EXPECT_EQ(snap.buckets[0].lo, 0u);
    EXPECT_EQ(snap.buckets[0].hi, 0u);
    EXPECT_EQ(snap.buckets[0].count, 1u);
    EXPECT_EQ(snap.buckets[1].lo, 1u);
    EXPECT_EQ(snap.buckets[1].hi, 1u);
    EXPECT_EQ(snap.buckets[1].count, 2u);
    EXPECT_EQ(snap.buckets[2].lo, 1024u);
    EXPECT_EQ(snap.buckets[2].hi, 2047u);
    EXPECT_EQ(snap.buckets[2].count, 1u);

    hist.reset();
    EXPECT_EQ(hist.snapshot().count, 0u);
    EXPECT_TRUE(hist.snapshot().buckets.empty());
}

TEST(CounterTest, StripedMergeIsExactUnderContention)
{
    MetricsOn on;
    Counter counter("test.contended");

    constexpr unsigned kThreads = 8;
    constexpr uint64_t kIncsPerThread = 100000;
    {
        ThreadPool pool(kThreads);
        for (unsigned t = 0; t < kThreads; t++) {
            pool.submit([&counter] {
                for (uint64_t i = 0; i < kIncsPerThread; i++)
                    counter.inc();
            });
        }
        pool.waitIdle();
    }
    EXPECT_EQ(counter.value(), kThreads * kIncsPerThread);

    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(CounterTest, DisabledCollectionRecordsNothing)
{
    ASSERT_FALSE(obs::metricsEnabled());
    Counter counter("test.disabled");
    counter.inc(42);
    EXPECT_EQ(counter.value(), 0u);

    Histogram hist("test.disabled.hist");
    hist.record(7);
    EXPECT_EQ(hist.snapshot().count, 0u);

    // Spans short-circuit at construction when tracing is off.
    ASSERT_FALSE(obs::tracingEnabled());
    TraceCollector::global().drain();
    {
        MS_TRACE_SPAN("test.disabled.span");
    }
    EXPECT_TRUE(TraceCollector::global().drain().empty());
}

TEST(RegistryTest, HandlesAreStableAndResetKeepsThem)
{
    MetricsOn on;
    MetricsRegistry &reg = MetricsRegistry::global();
    Counter &c = reg.counter("obs_test.registry.counter");
    Counter &again = reg.counter("obs_test.registry.counter");
    EXPECT_EQ(&c, &again);

    c.inc(3);
    MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("obs_test.registry.counter"), 3u);

    reg.reset();
    // Zero-valued metrics are skipped by snapshot...
    EXPECT_EQ(reg.snapshot().counters.count("obs_test.registry.counter"),
              0u);
    // ...but the old handle still works after the reset.
    c.inc();
    EXPECT_EQ(reg.snapshot().counters.at("obs_test.registry.counter"), 1u);
}

TEST(TraceTest, SpanNestingAndDrainOrdering)
{
    TracingOn on;
    {
        MS_TRACE_SPAN("outer");
        {
            MS_TRACE_SPAN("inner", "detail-text");
            // Give the inner span measurable width so the outer span is
            // strictly longer and the (ts, -dur) sort is unambiguous.
            volatile uint64_t sink = 0;
            for (int i = 0; i < 50000; i++)
                sink = sink + static_cast<uint64_t>(i);
        }
        obs::traceInstant("mark");
    }

    std::vector<TraceEvent> events = TraceCollector::global().drain();
    ASSERT_EQ(events.size(), 3u);

    // Sorted by start time: the outer span opened first, so it precedes
    // the inner span it contains; the instant fired last.
    EXPECT_EQ(events[0].name, "outer");
    EXPECT_EQ(events[1].name, "inner");
    EXPECT_EQ(events[2].name, "mark");
    EXPECT_EQ(events[0].phase, 'X');
    EXPECT_EQ(events[2].phase, 'i');
    EXPECT_EQ(events[1].detail, "detail-text");

    // Containment: inner lies inside [outer.ts, outer.ts + outer.dur].
    const TraceEvent &outer = events[0];
    const TraceEvent &inner = events[1];
    EXPECT_LE(outer.tsNs, inner.tsNs);
    EXPECT_GE(outer.tsNs + outer.durNs, inner.tsNs + inner.durNs);

    // drain(clear=true) emptied the rings.
    EXPECT_TRUE(TraceCollector::global().drain().empty());
}

TEST(TraceTest, RingOverwritesOldestAndCountsDropped)
{
    TracingOn on;
    TraceCollector &collector = TraceCollector::global();
    collector.setCapacityPerThread(4);
    // Capacity applies to rings created after the call, so record from
    // a fresh thread.
    std::thread([&collector] {
        for (int i = 0; i < 10; i++)
            obs::traceInstant("evt" + std::to_string(i));
    }).join();

    // 10 events into a 4-slot ring: 6 overwritten.
    EXPECT_EQ(collector.dropped(), 6u);
    std::vector<TraceEvent> events = collector.drain();
    EXPECT_EQ(collector.dropped(), 0u); // drain(clear) resets the count
    // The survivors are the newest four, still in timestamp order.
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().name, "evt6");
    EXPECT_EQ(events.back().name, "evt9");
    collector.setCapacityPerThread(TraceCollector::kDefaultCapacityPerThread);
}

TEST(JsonTest, EscaperHandlesControlsQuotesAndHighBytes)
{
    EXPECT_EQ(obs::jsonEscape("plain ascii"), "plain ascii");
    EXPECT_EQ(obs::jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(obs::jsonEscape("tab\there"), "tab\\there");
    EXPECT_EQ(obs::jsonEscape("line\nbreak\r"), "line\\nbreak\\r");
    EXPECT_EQ(obs::jsonEscape(std::string("\x01\x1f", 2)),
              "\\u0001\\u001f");
    // DEL and high bytes must not pass through raw (and must not
    // sign-extend into \uffXX).
    EXPECT_EQ(obs::jsonEscape("\x7f"), "\\u007f");
    EXPECT_EQ(obs::jsonEscape("caf\xc3\xa9"), "caf\\u00c3\\u00a9");
    // Embedded NUL survives as an escape, not a truncation.
    EXPECT_EQ(obs::jsonEscape(std::string_view("a\0b", 3)), "a\\u0000b");

    // Whatever the escaper emits must parse as a JSON string.
    std::string nasty;
    for (int c = 0; c < 256; c++)
        nasty += static_cast<char>(c);
    std::string doc = "\"" + obs::jsonEscape(nasty) + "\"";
    std::string error;
    EXPECT_TRUE(obs::validateJson(doc, &error)) << error;
}

TEST(JsonTest, ValidatorAcceptsGoodAndRejectsBad)
{
    EXPECT_TRUE(obs::validateJson("{}"));
    EXPECT_TRUE(obs::validateJson("[1, -2.5, 1e9, \"x\", true, null]"));
    EXPECT_TRUE(obs::validateJson("{\"a\": {\"b\": [0.125]}}"));

    EXPECT_FALSE(obs::validateJson(""));
    EXPECT_FALSE(obs::validateJson("{"));
    EXPECT_FALSE(obs::validateJson("{\"a\":}"));
    EXPECT_FALSE(obs::validateJson("[1,]"));
    EXPECT_FALSE(obs::validateJson("\"unterminated"));
    EXPECT_FALSE(obs::validateJson("\"raw\ncontrol\""));
    EXPECT_FALSE(obs::validateJson("{} trailing"));
    EXPECT_FALSE(obs::validateJson("01x"));
}

TEST(JsonTest, ParserBuildsTypedValuesPreservingMemberOrder)
{
    obs::JsonValue doc;
    std::string error;
    ASSERT_TRUE(obs::parseJson(
        "{\"n\": 42, \"neg\": -1, \"frac\": 2.5, \"s\": \"a\\\"b\\n\","
        " \"t\": true, \"z\": null, \"arr\": [1, \"two\", false],"
        " \"obj\": {\"inner\": 7}}",
        &doc, &error))
        << error;
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.uintAt("n"), 42u);
    // Counts-only contract: negative and fractional fall back.
    EXPECT_EQ(doc.uintAt("neg", 99), 99u);
    EXPECT_EQ(doc.uintAt("frac", 99), 99u);
    EXPECT_EQ(doc.find("frac")->asDouble(), 2.5);
    EXPECT_EQ(doc.stringAt("s"), "a\"b\n");
    EXPECT_TRUE(doc.boolAt("t"));
    EXPECT_TRUE(doc.find("z")->isNull());
    ASSERT_NE(doc.find("arr"), nullptr);
    ASSERT_EQ(doc.find("arr")->elements().size(), 3u);
    EXPECT_EQ(doc.find("arr")->elements()[1].asString(), "two");
    EXPECT_EQ(doc.find("obj")->uintAt("inner"), 7u);
    // Member order is insertion order, so re-emission is deterministic.
    EXPECT_EQ(doc.members().front().first, "n");
    EXPECT_EQ(doc.members().back().first, "obj");
    // Missing keys and wrong types are fallbacks, never throws.
    EXPECT_EQ(doc.find("nope"), nullptr);
    EXPECT_EQ(doc.uintAt("s", 5), 5u);
    EXPECT_EQ(doc.stringAt("n", "dflt"), "dflt");
}

TEST(JsonTest, ParserRejectsMalformedInputAndRoundTripsEscapes)
{
    obs::JsonValue doc;
    std::string error;
    EXPECT_FALSE(obs::parseJson("{\"a\":", &doc, &error));
    EXPECT_FALSE(obs::parseJson("[1,]", &doc, &error));
    EXPECT_FALSE(obs::parseJson("", &doc, &error));

    // jsonEscape output parses back to the original bytes, including
    // high bytes escaped as \u00XX.
    std::string raw = "quote\" slash\\ ctrl\x01 high\xC3\xA9";
    ASSERT_TRUE(obs::parseJson("\"" + obs::jsonEscape(raw) + "\"", &doc,
                               &error))
        << error;
    EXPECT_EQ(doc.asString(), raw);
}

TEST(JsonTest, ChromeTraceRoundTrip)
{
    TracingOn on;
    {
        MS_TRACE_SPAN("roundtrip.span", "with \"quotes\" and \n newline");
        obs::traceInstant("roundtrip.instant");
    }

    const std::string path = "obs_test_trace.json";
    std::string error;
    ASSERT_TRUE(obs::writeChromeTrace(path, &error)) << error;

    std::string text = readFile(path);
    std::remove(path.c_str());
    ASSERT_FALSE(text.empty());
    EXPECT_TRUE(obs::validateJson(text, &error)) << error;
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"roundtrip.span\""), std::string::npos);
    EXPECT_NE(text.find("\"roundtrip.instant\""), std::string::npos);
    EXPECT_NE(text.find("\\\"quotes\\\""), std::string::npos);
    // Instants carry Chrome's scope field; spans carry durations.
    EXPECT_NE(text.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(text.find("\"dur\":"), std::string::npos);
}

TEST(JsonTest, MetricsRoundTripCarriesSchemaAndBuckets)
{
    MetricsOn on;
    MetricsRegistry &reg = MetricsRegistry::global();
    reg.reset();
    reg.counter("obs_test.json.counter").inc(5);
    reg.gauge("obs_test.json.gauge").set(-3);
    reg.histogram("obs_test.json.hist").record(1500);

    const std::string path = "obs_test_metrics.json";
    std::string error;
    ASSERT_TRUE(obs::writeMetricsJson(path, &error)) << error;

    std::string text = readFile(path);
    std::remove(path.c_str());
    EXPECT_TRUE(obs::validateJson(text, &error)) << error;
    EXPECT_NE(text.find("\"schema\":\"obs/v1\""), std::string::npos);
    EXPECT_NE(text.find("\"obs_test.json.counter\":5"), std::string::npos);
    EXPECT_NE(text.find("\"obs_test.json.gauge\":-3"), std::string::npos);
    // The 1500 landed in log2 bucket [1024, 2047].
    EXPECT_NE(text.find("[1024,2047,1]"), std::string::npos);
    reg.reset();
}

TEST(CompileCacheTest, LruEvictionKeepsInFlightEntriesAlive)
{
    const char *srcA = "int main(void) { return 11; }\n";
    const char *srcB = "int main(void) { return 22; }\n";
    auto sources = [](const char *text) {
        return std::vector<SourceFile>{SourceFile{"<obs_test>", text}};
    };

    CompileCache cache;
    cache.setCapacity(1);

    auto a = cache.getOrCompile(sources(srcA), LibcVariant::safe, -1);
    ASSERT_TRUE(a->ok()) << a->errors;
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().evictions, 0u);

    // Second key displaces the first (capacity 1)...
    auto b = cache.getOrCompile(sources(srcB), LibcVariant::safe, -1);
    ASSERT_TRUE(b->ok()) << b->errors;
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    // ...but eviction only dropped the cache's reference: the handle we
    // hold still works.
    EXPECT_TRUE(a->ok());

    // Re-requesting the evicted stage recompiles it.
    auto a2 = cache.getOrCompile(sources(srcA), LibcVariant::safe, -1);
    ASSERT_TRUE(a2->ok()) << a2->errors;
    EXPECT_EQ(cache.stats().misses, 3u);
    EXPECT_EQ(cache.stats().evictions, 2u);

    // And asking again while it is resident is a hit.
    auto a3 = cache.getOrCompile(sources(srcA), LibcVariant::safe, -1);
    EXPECT_EQ(a2->prototype.get(), a3->prototype.get());
    EXPECT_EQ(cache.stats().hits, 1u);
}

/**
 * The determinism contract: counters never record wall-clock values
 * (those only feed histograms), so a batch run's counter totals are
 * identical for any worker count. Spans and timing histograms may
 * differ; the counter map may not.
 */
TEST(DeterminismTest, CounterTotalsMatchAcrossJobCounts)
{
    MetricsOn on;
    MetricsRegistry &reg = MetricsRegistry::global();

    const auto &corpus = bugCorpus();
    const size_t kEntries = 10;
    ASSERT_GE(corpus.size(), kEntries);
    std::vector<BatchJob> jobs;
    for (size_t i = 0; i < kEntries; i++) {
        jobs.push_back(BatchJob::make(
            corpus[i].source, ToolConfig::make(ToolKind::safeSulong),
            corpus[i].args, corpus[i].stdinData));
    }

    auto runWithJobs = [&](unsigned workers) {
        reg.reset();
        BatchOptions options;
        options.jobs = workers;
        runBatch(jobs, options);
        return reg.snapshot().counters;
    };

    std::map<std::string, uint64_t> serial = runWithJobs(1);
    std::map<std::string, uint64_t> parallel = runWithJobs(8);
    reg.reset();

    // The runs exercised the interesting counters at all.
    EXPECT_GT(serial.at("batch.jobs"), 0u);
    EXPECT_GT(serial.at("managed.steps.tier1"), 0u);
    EXPECT_GT(serial.at("compile_cache.misses"), 0u);

    EXPECT_EQ(serial.size(), parallel.size());
    for (const auto &[name, value] : serial) {
        auto it = parallel.find(name);
        ASSERT_NE(it, parallel.end()) << name << " missing in parallel run";
        EXPECT_EQ(value, it->second) << name << " diverged across job counts";
    }
}

TEST(HistogramTest, PercentileInterpolatesWithinBuckets)
{
    MetricsOn on;
    Histogram hist("test.pct");

    // Empty histogram: every quantile is 0.
    EXPECT_EQ(hist.snapshot().percentile(0.5), 0u);

    // All mass in one bucket: every quantile lands inside it.
    for (int i = 0; i < 100; i++)
        hist.record(10); // bucket [8, 15]
    HistogramSnapshot snap = hist.snapshot();
    for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
        EXPECT_GE(snap.percentile(q), 8u) << q;
        EXPECT_LE(snap.percentile(q), 15u) << q;
    }

    // Bimodal: 90 small values, 10 large ones. The p50 must stay in
    // the small bucket, the p99 must reach the large one, and the
    // sequence must be monotone.
    hist.reset();
    for (int i = 0; i < 90; i++)
        hist.record(10); // [8, 15]
    for (int i = 0; i < 10; i++)
        hist.record(5000); // [4096, 8191]
    snap = hist.snapshot();
    uint64_t p50 = snap.percentile(0.50);
    uint64_t p90 = snap.percentile(0.90);
    uint64_t p99 = snap.percentile(0.99);
    EXPECT_GE(p50, 8u);
    EXPECT_LE(p50, 15u);
    EXPECT_GE(p99, 4096u);
    EXPECT_LE(p99, 8191u);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);

    // Out-of-range q clamps instead of misbehaving.
    EXPECT_EQ(snap.percentile(-1.0), snap.percentile(0.0));
    EXPECT_EQ(snap.percentile(2.0), snap.percentile(1.0));
}

TEST(SlidingWindowTest, LazyRotationExpiresOldBuckets)
{
    obs::SlidingWindow window(/*bucket_count=*/3, /*bucket_width_ms=*/1000);
    EXPECT_EQ(window.windowMs(), 3000u);

    window.record(1000, 5); // epoch 1
    window.record(2500, 2); // epoch 2
    EXPECT_EQ(window.totalInWindow(2500), 7u);

    // At t=4500 the window covers epochs [2, 4]: epoch 1 has expired.
    EXPECT_EQ(window.totalInWindow(4500), 2u);

    // Writing into a slot holding a stale epoch resets it rather than
    // accumulating into ancient history (slot 4 % 3 == slot 1 % 3).
    window.record(4500, 1);
    EXPECT_EQ(window.totalInWindow(4500), 3u);

    // Far in the future everything has rotated out.
    EXPECT_EQ(window.totalInWindow(60000), 0u);

    // Rate scales the window sum by the covered seconds.
    obs::SlidingWindow rate(/*bucket_count=*/10, /*bucket_width_ms=*/100);
    rate.record(500, 10);
    EXPECT_NEAR(rate.ratePerSec(500), 10.0, 1e-9);
}

TEST(ExpoTest, NameSplittingSanitizationAndEscaping)
{
    auto [plain, no_labels] = obs::splitLabeledName("service.admitted");
    EXPECT_EQ(plain, "service.admitted");
    EXPECT_EQ(no_labels, "");
    auto [base, labels] =
        obs::splitLabeledName("service.tenant.admitted{tenant=\"acme\"}");
    EXPECT_EQ(base, "service.tenant.admitted");
    EXPECT_EQ(labels, "{tenant=\"acme\"}");

    EXPECT_EQ(obs::prometheusName("service.jobs.ok"), "service_jobs_ok");
    EXPECT_EQ(obs::prometheusName("bugs.out-of-bounds"),
              "bugs_out_of_bounds");
    EXPECT_EQ(obs::prometheusName("9lives"), "_9lives");

    EXPECT_EQ(obs::prometheusLabelEscape("plain"), "plain");
    EXPECT_EQ(obs::prometheusLabelEscape("a\"b\\c\nd"),
              "a\\\"b\\\\c\\nd");
}

TEST(ExpoTest, PrometheusTextCarriesTypesLabelsAndCumulativeBuckets)
{
    MetricsOn on;
    MetricsRegistry &reg = MetricsRegistry::global();
    reg.reset();
    reg.counter("obs_test.expo.counter").inc(5);
    reg.counter("obs_test.expo.labeled{tenant=\"a b\"}").inc(2);
    reg.gauge("obs_test.expo.gauge").set(-3);
    Histogram &hist = reg.histogram("obs_test.expo.hist");
    hist.record(1);    // bucket [1, 1]
    hist.record(1500); // bucket [1024, 2047]

    std::string text = obs::prometheusText(reg.snapshot());
    reg.reset();

    EXPECT_NE(text.find("# TYPE obs_test_expo_counter counter"),
              std::string::npos);
    EXPECT_NE(text.find("obs_test_expo_counter 5\n"), std::string::npos);
    // Labels survive the round trip out of the flat registry name.
    EXPECT_NE(text.find("obs_test_expo_labeled{tenant=\"a b\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE obs_test_expo_gauge gauge"),
              std::string::npos);
    EXPECT_NE(text.find("obs_test_expo_gauge -3\n"), std::string::npos);
    // Cumulative histogram series ending at +Inf == _count.
    EXPECT_NE(text.find("obs_test_expo_hist_bucket{le=\"1\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("obs_test_expo_hist_bucket{le=\"2047\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("obs_test_expo_hist_bucket{le=\"+Inf\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("obs_test_expo_hist_sum 1501\n"),
              std::string::npos);
    EXPECT_NE(text.find("obs_test_expo_hist_count 2\n"),
              std::string::npos);
    // Interpolated percentiles ride along as companion gauges.
    EXPECT_NE(text.find("# TYPE obs_test_expo_hist_p50 gauge"),
              std::string::npos);
    EXPECT_NE(text.find("obs_test_expo_hist_p99 "), std::string::npos);
}

TEST(FlightRecorderTest, RingKeepsNewestEventsOldestFirst)
{
    // NOT gated on the metrics switch: creation is the opt-in.
    ASSERT_FALSE(obs::metricsEnabled());
    obs::FlightRecorder recorder(4);
    for (int i = 0; i < 6; i++)
        recorder.note("evt" + std::to_string(i), i % 2 ? "odd" : "");

    EXPECT_EQ(recorder.recorded(), 6u);
    std::vector<obs::FlightRecorder::Event> events = recorder.events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().name, "evt2");
    EXPECT_EQ(events.back().name, "evt5");
    EXPECT_EQ(events.back().detail, "odd");
    for (size_t i = 1; i < events.size(); i++)
        EXPECT_LT(events[i - 1].seq, events[i].seq);
}

TEST(FlightRecorderTest, PostmortemJsonIsValidatedAndComplete)
{
    obs::FlightRecorder recorder(8);
    recorder.note("job.attempt", "attempt 1");
    recorder.note("job.host_fault", "injected \"quote\"");

    obs::PostmortemInfo info;
    info.jobId = 42;
    info.tenant = "acme";
    info.tool = "safe";
    info.traceId = std::string(32, 'a');
    info.termination = "host-fault";
    info.terminationDetail = "injected fault";
    info.attempts = 2;
    info.faultFirings = 1;

    std::string doc_text = obs::postmortemJson(info, recorder);
    obs::JsonValue doc;
    std::string error;
    ASSERT_TRUE(obs::parseJson(doc_text, &doc, &error)) << error;
    EXPECT_EQ(doc.stringAt("schema"), "msulong.postmortem/v1");
    EXPECT_EQ(doc.uintAt("job"), 42u);
    EXPECT_EQ(doc.stringAt("tenant"), "acme");
    EXPECT_EQ(doc.stringAt("trace_id"), std::string(32, 'a'));
    EXPECT_EQ(doc.stringAt("termination"), "host-fault");
    EXPECT_EQ(doc.uintAt("attempts"), 2u);
    EXPECT_EQ(doc.uintAt("fault_firings"), 1u);
    const obs::JsonValue *events = doc.find("events");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->elements().size(), 2u);
    EXPECT_EQ(events->elements()[1].stringAt("name"), "job.host_fault");
    EXPECT_EQ(events->elements()[1].stringAt("detail"),
              "injected \"quote\"");
}

TEST(TraceTest, ContextScopeChainsParentsAndRestores)
{
    TracingOn on;
    const std::string trace_id(32, 'b');
    {
        obs::TraceContextScope scope(obs::TraceContext{trace_id, 77});
        {
            MS_TRACE_SPAN("ctx.outer");
            {
                MS_TRACE_SPAN("ctx.inner");
            }
        }
        // Both spans closed: the remote parent is current again.
        EXPECT_EQ(obs::currentTraceContext().spanId, 77u);
    }
    EXPECT_FALSE(obs::currentTraceContext().active());

    std::vector<TraceEvent> events = TraceCollector::global().drain();
    ASSERT_EQ(events.size(), 2u);
    const TraceEvent &outer = events[0];
    const TraceEvent &inner = events[1];
    EXPECT_EQ(outer.name, "ctx.outer");
    EXPECT_EQ(outer.traceId, trace_id);
    EXPECT_EQ(outer.parentSpan, 77u);
    EXPECT_NE(outer.spanId, 0u);
    EXPECT_EQ(inner.traceId, trace_id);
    EXPECT_EQ(inner.parentSpan, outer.spanId);
    EXPECT_NE(inner.spanId, outer.spanId);

    // Without a context, spans carry no trace identity.
    {
        MS_TRACE_SPAN("ctx.none");
    }
    events = TraceCollector::global().drain();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_TRUE(events[0].traceId.empty());
    EXPECT_EQ(events[0].spanId, 0u);
}

TEST(TraceTest, RemoteContextOptsInWithoutLocalTracing)
{
    ASSERT_FALSE(obs::tracingEnabled());
    TraceCollector::global().drain();
    {
        obs::TraceContextScope scope(
            obs::TraceContext{std::string(32, 'c'), 5});
        MS_TRACE_SPAN("optin.span");
    }
    std::vector<TraceEvent> events = TraceCollector::global().drain();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].parentSpan, 5u);
    EXPECT_NE(events[0].spanId, 0u);

    // And with neither tracing nor a context, nothing is recorded.
    {
        MS_TRACE_SPAN("still.off");
    }
    EXPECT_TRUE(TraceCollector::global().drain().empty());
}

TEST(TraceTest, SpanIdHexRoundTripAndValidation)
{
    uint64_t id = obs::mintSpanId();
    EXPECT_NE(id, 0u);
    EXPECT_NE(obs::mintSpanId(), id); // process-unique

    std::string hex = obs::spanIdToHex(0xdeadbeefull);
    EXPECT_EQ(hex, "00000000deadbeef");
    uint64_t parsed = 0;
    ASSERT_TRUE(obs::parseSpanIdHex(hex, &parsed));
    EXPECT_EQ(parsed, 0xdeadbeefull);
    ASSERT_TRUE(obs::parseSpanIdHex("1f", &parsed));
    EXPECT_EQ(parsed, 0x1fu);

    EXPECT_FALSE(obs::parseSpanIdHex("", &parsed));
    EXPECT_FALSE(obs::parseSpanIdHex("XYZ", &parsed));
    EXPECT_FALSE(obs::parseSpanIdHex("ABCD", &parsed)); // uppercase
    EXPECT_FALSE(obs::parseSpanIdHex("00000000deadbeef0", &parsed));

    std::string trace_id = obs::mintTraceId();
    EXPECT_EQ(trace_id.size(), 32u);
    EXPECT_TRUE(obs::isLowerHex(trace_id));
}

TEST(JsonTest, ChromeTraceCarriesPidAndSpanIdentity)
{
    TraceEvent event;
    event.name = "merged.daemon.span";
    event.phase = 'X';
    event.tsNs = 1000;
    event.durNs = 500;
    event.pid = 2;
    event.traceId = std::string(32, 'd');
    event.spanId = 0x10;
    event.parentSpan = 0x20;

    const std::string path = "obs_test_merged_trace.json";
    std::string error;
    ASSERT_TRUE(obs::writeChromeTraceFile(path, {event}, &error)) << error;
    std::string text = readFile(path);
    std::remove(path.c_str());
    EXPECT_TRUE(obs::validateJson(text, &error)) << error;
    EXPECT_NE(text.find("\"pid\":2"), std::string::npos);
    EXPECT_NE(text.find("\"span_id\":\"0000000000000010\""),
              std::string::npos);
    EXPECT_NE(text.find("\"parent_span\":\"0000000000000020\""),
              std::string::npos);
    EXPECT_NE(text.find(std::string(32, 'd')), std::string::npos);
}

} // namespace
} // namespace sulong
