/**
 * @file
 * Optimizer tests: each pass individually, pipeline behaviour, verifier
 * cleanliness after transformation, and — crucially — the bug-deleting
 * effects of P2 that the evaluation depends on.
 */

#include "test_util.h"

#include "ir/printer.h"
#include "ir/verifier.h"
#include "opt/passes.h"

namespace sulong
{
namespace
{

std::unique_ptr<Module>
compileOnly(const std::string &src)
{
    auto sources = libcSources(LibcVariant::safe);
    sources.push_back(SourceFile{"<input>", src});
    CompileResult compiled = compileC(sources);
    EXPECT_TRUE(compiled.ok()) << compiled.errors;
    return std::move(compiled.module);
}

unsigned
countOps(const Function &fn, Opcode op)
{
    unsigned n = 0;
    for (const auto &bb : fn.blocks()) {
        for (const auto &inst : bb->insts()) {
            if (inst->op() == op)
                n++;
        }
    }
    return n;
}

TEST(FoldTest, ConstantArithmeticFolds)
{
    auto module = compileOnly(R"(
int main(void) {
    int a = (3 + 4) * 2;
    return a;
})");
    foldConstants(*module);
    eliminateDeadCode(*module);
    EXPECT_TRUE(moduleIsValid(*module));
    const Function *main_fn = module->findFunction("main");
    EXPECT_EQ(countOps(*main_fn, Opcode::add), 0u);
    EXPECT_EQ(countOps(*main_fn, Opcode::mul), 0u);
}

TEST(FoldTest, GepIndexAbsorption)
{
    auto module = compileOnly(R"(
int table[8];
int main(void) {
    return table[3];
})");
    const Function *main_fn = module->findFunction("main");
    foldConstants(*module);
    bool found_folded_gep = false;
    for (const auto &bb : main_fn->blocks()) {
        for (const auto &inst : bb->insts()) {
            if (inst->op() == Opcode::gep && inst->numOperands() == 1 &&
                inst->gepConstOffset() == 12) {
                found_folded_gep = true;
            }
        }
    }
    EXPECT_TRUE(found_folded_gep);
    EXPECT_TRUE(moduleIsValid(*module));
}

TEST(ForwardTest, StoreToLoadForwarding)
{
    auto module = compileOnly(R"(
int main(void) {
    int x = 5;
    int y = x + x;
    return y;
})");
    const Function *main_fn = module->findFunction("main");
    unsigned loads_before = countOps(*main_fn, Opcode::load);
    forwardStores(*module);
    eliminateDeadCode(*module);
    unsigned loads_after = countOps(*main_fn, Opcode::load);
    EXPECT_LT(loads_after, loads_before);
    EXPECT_TRUE(moduleIsValid(*module));
}

TEST(ForwardTest, CallsClobber)
{
    // A call between store and load must prevent forwarding.
    auto module = compileOnly(R"(
static int *shared;
static void mutate(void) { *shared = 9; }
int main(void) {
    int x = 5;
    shared = &x;
    mutate();
    return x; /* must reload: 9 */
})");
    runO3Pipeline(*module);
    EXPECT_TRUE(moduleIsValid(*module));
    // Behaviour check: still returns 9.
    ManagedEngine engine;
    EXPECT_EQ(engine.run(*module, {}, "").exitCode, 9);
}

TEST(DeadStoreTest, DeletesFigThreeLoop)
{
    auto module = compileOnly(R"(
static int test(unsigned long length) {
    int arr[10] = {0};
    for (unsigned long i = 0; i < length; i++)
        arr[i] = (int)i;
    return 0;
}
int main(void) { return test(20); })");
    const Function *test_fn = module->findFunction("test");
    unsigned stores_before = countOps(*test_fn, Opcode::store);
    unsigned allocas_before = countOps(*test_fn, Opcode::alloca_);
    runO3Pipeline(*module);
    // The stores into the dead array and the array's alloca are gone
    // (stores of loop counters and spilled parameters remain).
    EXPECT_LT(countOps(*test_fn, Opcode::store), stores_before);
    EXPECT_LT(countOps(*test_fn, Opcode::alloca_), allocas_before);
    bool array_alloca_left = false;
    for (const auto &bb : test_fn->blocks()) {
        for (const auto &inst : bb->insts()) {
            if (inst->op() == Opcode::alloca_ &&
                inst->accessType()->isArray()) {
                array_alloca_left = true;
            }
        }
    }
    EXPECT_FALSE(array_alloca_left);
    EXPECT_TRUE(moduleIsValid(*module));
}

TEST(DeadStoreTest, EscapedAllocaKept)
{
    auto module = compileOnly(R"(
static void fill(int *out) { out[0] = 7; }
int main(void) {
    int buf[2];
    fill(buf);     /* escapes: stores must survive */
    return 0;
})");
    runO3Pipeline(*module);
    const Function *fill_fn = module->findFunction("fill");
    EXPECT_GT(countOps(*fill_fn, Opcode::store), 0u);
    EXPECT_TRUE(moduleIsValid(*module));
}

TEST(NullCheckTest, RemovesCheckAfterDeref)
{
    auto module = compileOnly(R"(
static int first(int *v) {
    int head = *v;
    if (v == 0)
        return -1;
    return head;
}
int main(void) { int x = 3; return first(&x); })");
    // Load-load CSE first so both uses of the spilled parameter resolve
    // to one value — like a real pipeline would.
    forwardStores(*module);
    unsigned removed = removeRedundantNullChecks(*module);
    EXPECT_GT(removed, 0u);
    EXPECT_TRUE(moduleIsValid(*module));
    ManagedEngine engine;
    EXPECT_EQ(engine.run(*module, {}, "").exitCode, 3);
}

TEST(NullCheckTest, KeepsCheckBeforeDeref)
{
    auto module = compileOnly(R"(
static int safe(int *v) {
    if (v == 0)
        return -1;
    return *v;
}
int main(void) { return safe(0); })");
    unsigned removed = removeRedundantNullChecks(*module);
    EXPECT_EQ(removed, 0u);
}

TEST(GlobalFoldTest, OutOfBoundsConstantIndexFoldsToZero)
{
    auto module = compileOnly(R"(
int count[7] = {1, 2, 3, 4, 5, 6, 7};
int main(void) {
    return count[7];
})");
    unsigned changed = foldConstantGlobalLoads(*module);
    EXPECT_GT(changed, 0u);
    eliminateDeadCode(*module);
    EXPECT_TRUE(moduleIsValid(*module));
    ManagedEngine engine;
    ExecutionResult result = engine.run(*module, {}, "");
    EXPECT_TRUE(result.ok()); // the bug is gone
    EXPECT_EQ(result.exitCode, 0);
}

TEST(GlobalFoldTest, InBoundsConstGlobalFolds)
{
    auto module = compileOnly(R"(
int main(void) {
    return "abc"[1]; /* const global string */
})");
    foldConstants(*module);
    unsigned changed = foldConstantGlobalLoads(*module);
    EXPECT_GT(changed, 0u);
    ManagedEngine engine;
    EXPECT_EQ(engine.run(*module, {}, "").exitCode, 'b');
}

TEST(GlobalFoldTest, MutableGlobalNotFolded)
{
    auto module = compileOnly(R"(
int value = 5;
int main(void) {
    value = 6;
    return value;
})");
    foldConstantGlobalLoads(*module);
    ManagedEngine engine;
    EXPECT_EQ(engine.run(*module, {}, "").exitCode, 6);
}

TEST(CfgTest, ConstantBranchesAndUnreachableBlocks)
{
    auto module = compileOnly(R"(
int main(void) {
    if (0)
        return 1;
    return 2;
})");
    const Function *main_fn = module->findFunction("main");
    size_t blocks_before = main_fn->blocks().size();
    foldConstants(*module);
    unsigned changes = simplifyControlFlow(*module);
    EXPECT_GT(changes, 0u);
    EXPECT_LT(main_fn->blocks().size(), blocks_before);
    EXPECT_TRUE(moduleIsValid(*module));
    ManagedEngine engine;
    EXPECT_EQ(engine.run(*module, {}, "").exitCode, 2);
}

TEST(PipelineTest, O0IsAlmostIdentity)
{
    // -O0 must not change the behaviour of correct programs.
    auto module = compileOnly(R"(
int main(void) {
    int v = 0;
    for (int i = 0; i < 5; i++)
        v += i;
    return v;
})");
    runO0Pipeline(*module);
    EXPECT_TRUE(moduleIsValid(*module));
    ManagedEngine engine;
    EXPECT_EQ(engine.run(*module, {}, "").exitCode, 10);
}

TEST(PipelineTest, O3PreservesObservableBehaviour)
{
    const char *src = R"(
int main(void) {
    int data[8];
    int sum = 0;
    for (int i = 0; i < 8; i++)
        data[i] = i * i;
    for (int i = 0; i < 8; i++)
        sum += data[i];
    printf("%d\n", sum);
    return sum % 100;
})";
    auto module = compileOnly(src);
    runO3Pipeline(*module);
    EXPECT_TRUE(moduleIsValid(*module));
    ManagedEngine engine;
    ExecutionResult result = engine.run(*module, {}, "");
    EXPECT_EQ(result.output, "140\n");
    EXPECT_EQ(result.exitCode, 40);
}

TEST(PipelineTest, ReplaceAllUsesWorks)
{
    auto module = compileOnly("int main(void) { return 1 + 2; }");
    Function *main_fn = module->findFunction("main");
    replaceAllUses(*main_fn, module->constI32(3), module->constI32(9));
    // The folded constant 3 never appears pre-fold; just verify no crash
    // and validity.
    EXPECT_TRUE(moduleIsValid(*module));
}

} // namespace
} // namespace sulong
