/**
 * @file
 * Parser tests: declarations, declarators, expressions, statements, and
 * error reporting. Most checks compile end-to-end and execute on the
 * managed engine (the parser's output is only meaningful through
 * codegen), with dedicated error-path tests.
 */

#include "test_util.h"

namespace sulong
{
namespace
{

using testutil::compileErrorsOf;
using testutil::exitCodeOf;

TEST(ParserTest, FunctionPointerDeclarator)
{
    EXPECT_EQ(exitCodeOf(R"(
static int twice(int v) { return v * 2; }
int main(void) {
    int (*fp)(int) = twice;
    return fp(21);
})"), 42);
}

TEST(ParserTest, FunctionPointerArray)
{
    EXPECT_EQ(exitCodeOf(R"(
static int one(void) { return 1; }
static int two(void) { return 2; }
int main(void) {
    int (*table[2])(void) = {one, two};
    return table[0]() + table[1]();
})"), 3);
}

TEST(ParserTest, PointerToPointer)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    int v = 9;
    int *p = &v;
    int **pp = &p;
    return **pp;
})"), 9);
}

TEST(ParserTest, MultiDimensionalArray)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    int grid[2][3] = {{1, 2, 3}, {4, 5, 6}};
    return grid[1][2];
})"), 6);
}

TEST(ParserTest, ArrayOfPointers)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    int a = 1, b = 2;
    int *ptrs[2];
    ptrs[0] = &a;
    ptrs[1] = &b;
    return *ptrs[0] + *ptrs[1];
})"), 3);
}

TEST(ParserTest, TypedefChain)
{
    EXPECT_EQ(exitCodeOf(R"(
typedef unsigned long size_type;
typedef size_type length_t;
int main(void) {
    length_t n = 40;
    return (int)n + 2;
})"), 42);
}

TEST(ParserTest, TypedefStructPointer)
{
    EXPECT_EQ(exitCodeOf(R"(
typedef struct point { int x; int y; } point_t;
typedef point_t *point_ptr;
int main(void) {
    point_t p = {3, 4};
    point_ptr q = &p;
    return q->x + q->y;
})"), 7);
}

TEST(ParserTest, EnumConstants)
{
    EXPECT_EQ(exitCodeOf(R"(
enum color { RED, GREEN = 10, BLUE };
int main(void) {
    return RED + GREEN + BLUE;
})"), 21);
}

TEST(ParserTest, EnumInArraySize)
{
    EXPECT_EQ(exitCodeOf(R"(
enum { CAP = 4 };
int main(void) {
    int buf[CAP * 2];
    buf[7] = 5;
    return (int)(sizeof(buf) / sizeof(int)) + buf[7];
})"), 13);
}

TEST(ParserTest, ConstantExpressionArraySize)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    char buf[(2 + 3) * 4];
    return (int)sizeof(buf);
})"), 20);
}

TEST(ParserTest, OperatorPrecedence)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    return 2 + 3 * 4 - 10 / 5;   /* 12 */
})"), 12);
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    return (1 << 3) | (16 >> 2) & 7;  /* 8 | (4 & 7) = 12 */
})"), 12);
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    return 1 < 2 == 1;  /* (1<2) == 1 */
})"), 1);
}

TEST(ParserTest, TernaryRightAssociative)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    int x = 2;
    return x == 1 ? 10 : x == 2 ? 20 : 30;
})"), 20);
}

TEST(ParserTest, CommaExpression)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    int a = 0;
    int b = (a = 5, a + 2);
    return b;
})"), 7);
}

TEST(ParserTest, AdjacentStringConcatenation)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    const char *s = "ab" "cd";
    return (int)strlen(s);
})"), 4);
}

TEST(ParserTest, SizeofForms)
{
    EXPECT_EQ(exitCodeOf(R"(
struct wide { long a; long b; };
int main(void) {
    int x = 3;
    return (int)(sizeof(int) + sizeof x + sizeof(struct wide));
})"), 24);
}

TEST(ParserTest, SwitchFallthrough)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    int v = 0;
    switch (2) {
      case 1: v += 1;
      case 2: v += 2;  /* falls through */
      case 3: v += 4; break;
      case 4: v += 8;
      default: v += 16;
    }
    return v;
})"), 6);
}

TEST(ParserTest, SwitchDefaultOnly)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    switch (9) {
      default: return 5;
    }
})"), 5);
}

TEST(ParserTest, DoWhile)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    int n = 0;
    do { n++; } while (n < 3);
    return n;
})"), 3);
}

TEST(ParserTest, ForWithoutClauses)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    int i = 0;
    for (;;) {
        i++;
        if (i == 4) break;
    }
    return i;
})"), 4);
}

TEST(ParserTest, ContinueSkipsStep)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    int sum = 0;
    for (int i = 0; i < 10; i++) {
        if (i % 2 == 0) continue;
        sum += i;  /* 1+3+5+7+9 */
    }
    return sum;
})"), 25);
}

TEST(ParserTest, MultipleDeclaratorsPerStatement)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    int a = 1, *p = &a, b = 2;
    return *p + b;
})"), 3);
}

TEST(ParserTest, StaticLocalPersists)
{
    EXPECT_EQ(exitCodeOf(R"(
static int next(void) {
    static int counter = 0;
    counter++;
    return counter;
}
int main(void) {
    next();
    next();
    return next();
})"), 3);
}

// --- error paths -------------------------------------------------------

TEST(ParserErrorTest, MissingSemicolon)
{
    EXPECT_NE(compileErrorsOf("int main(void) { return 0 }"), "");
}

TEST(ParserErrorTest, UnionRejected)
{
    EXPECT_NE(compileErrorsOf("union u { int a; }; int main(void) "
                              "{ return 0; }"), "");
}

TEST(ParserErrorTest, GotoRejected)
{
    EXPECT_NE(compileErrorsOf(
        "int main(void) { goto end; end: return 0; }"), "");
}

TEST(ParserErrorTest, StructRedefinition)
{
    EXPECT_NE(compileErrorsOf(R"(
struct s { int a; };
struct s { int b; };
int main(void) { return 0; })"), "");
}

TEST(ParserErrorTest, NegativeArraySize)
{
    EXPECT_NE(compileErrorsOf(
        "int main(void) { int a[-3]; return 0; }"), "");
}

TEST(ParserErrorTest, CaseOutsideSwitch)
{
    EXPECT_NE(compileErrorsOf(
        "int main(void) { case 1: return 0; }"), "");
}

TEST(ParserErrorTest, NonConstantArrayBound)
{
    EXPECT_NE(compileErrorsOf(R"(
int main(void) {
    int n = 4;
    int vla[n];
    return 0;
})"), "");
}

TEST(ParserErrorTest, RecoveryFindsMultipleErrors)
{
    std::string errors = compileErrorsOf(R"(
int broken1(void) { return 0 }
int broken2(void) { return 1 }
int main(void) { return 0; })");
    // Both missing semicolons are reported.
    size_t first = errors.find("expected");
    ASSERT_NE(first, std::string::npos);
    EXPECT_NE(errors.find("expected", first + 1), std::string::npos);
}

} // namespace
} // namespace sulong
