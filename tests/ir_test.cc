/**
 * @file
 * Unit tests for the IR: types and layout, constants, builder, printer,
 * and the verifier's acceptance/rejection behaviour.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace sulong
{
namespace
{

TEST(TypeTest, PrimitiveSizesMatchLP64)
{
    TypeContext types;
    EXPECT_EQ(types.i1()->size(), 1u);
    EXPECT_EQ(types.i8()->size(), 1u);
    EXPECT_EQ(types.i16()->size(), 2u);
    EXPECT_EQ(types.i32()->size(), 4u);
    EXPECT_EQ(types.i64()->size(), 8u);
    EXPECT_EQ(types.f32()->size(), 4u);
    EXPECT_EQ(types.f64()->size(), 8u);
    EXPECT_EQ(types.ptr()->size(), 8u);
    EXPECT_EQ(types.voidTy()->size(), 0u);
}

TEST(TypeTest, IntBits)
{
    TypeContext types;
    EXPECT_EQ(types.i1()->intBits(), 1u);
    EXPECT_EQ(types.i32()->intBits(), 32u);
    EXPECT_EQ(types.intType(16), types.i16());
    EXPECT_THROW(types.ptr()->intBits(), InternalError);
}

TEST(TypeTest, ArrayInterning)
{
    TypeContext types;
    const Type *a = types.arrayType(types.i32(), 10);
    const Type *b = types.arrayType(types.i32(), 10);
    const Type *c = types.arrayType(types.i32(), 11);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(a->size(), 40u);
    EXPECT_EQ(a->align(), 4u);
    EXPECT_EQ(a->arrayLength(), 10u);
    EXPECT_EQ(a->elemType(), types.i32());
}

TEST(TypeTest, StructLayoutWithPadding)
{
    TypeContext types;
    // struct { char c; int i; char d; long l; }
    const Type *s = types.structType("padded", {
        {"c", types.i8()}, {"i", types.i32()}, {"d", types.i8()},
        {"l", types.i64()},
    });
    EXPECT_EQ(s->fields()[0].offset, 0u);
    EXPECT_EQ(s->fields()[1].offset, 4u);
    EXPECT_EQ(s->fields()[2].offset, 8u);
    EXPECT_EQ(s->fields()[3].offset, 16u);
    EXPECT_EQ(s->size(), 24u);
    EXPECT_EQ(s->align(), 8u);
}

TEST(TypeTest, StructFieldLookup)
{
    TypeContext types;
    const Type *s = types.structType("pair", {
        {"first", types.i32()}, {"second", types.i32()},
    });
    EXPECT_EQ(s->fieldAt(0), 0);
    EXPECT_EQ(s->fieldAt(3), 0);
    EXPECT_EQ(s->fieldAt(4), 1);
    EXPECT_EQ(s->fieldAt(8), -1);
    ASSERT_NE(s->fieldNamed("second"), nullptr);
    EXPECT_EQ(s->fieldNamed("second")->offset, 4u);
    EXPECT_EQ(s->fieldNamed("missing"), nullptr);
    EXPECT_EQ(types.findStruct("pair"), s);
    EXPECT_EQ(types.findStruct("nope"), nullptr);
}

TEST(TypeTest, EmptyStructHasNonZeroSize)
{
    TypeContext types;
    const Type *s = types.structType("empty", {});
    EXPECT_GT(s->size(), 0u);
}

TEST(TypeTest, FunctionTypeInterning)
{
    TypeContext types;
    const Type *a = types.functionType(types.i32(), {types.ptr()}, false);
    const Type *b = types.functionType(types.i32(), {types.ptr()}, false);
    const Type *c = types.functionType(types.i32(), {types.ptr()}, true);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_TRUE(c->isVarArg());
    EXPECT_EQ(a->returnType(), types.i32());
}

TEST(TypeTest, ToString)
{
    TypeContext types;
    EXPECT_EQ(types.i32()->toString(), "i32");
    EXPECT_EQ(types.arrayType(types.i8(), 4)->toString(), "[4 x i8]");
    const Type *s = types.structType("node", {{"v", types.i32()}});
    EXPECT_EQ(s->toString(), "%struct.node");
}

TEST(ModuleTest, ConstantInterning)
{
    Module module;
    EXPECT_EQ(module.constI32(7), module.constI32(7));
    EXPECT_NE(module.constI32(7), module.constI32(8));
    EXPECT_NE(module.constI32(7), module.constI64(7));
    EXPECT_EQ(module.constNull(), module.constNull());
    EXPECT_EQ(module.constFP(module.types().f64(), 1.5),
              module.constFP(module.types().f64(), 1.5));
}

TEST(ModuleTest, ConstantNormalization)
{
    Module module;
    // i8 constant 0xFF is canonicalized to -1.
    ConstantInt *c = module.constInt(module.types().i8(), 255);
    EXPECT_EQ(c->value(), -1);
    EXPECT_EQ(c->zextValue(), 255u);
    EXPECT_EQ(c, module.constInt(module.types().i8(), -1));
}

TEST(ModuleTest, GlobalsAndFunctions)
{
    Module module;
    GlobalVariable *g = module.addGlobal(module.types().i32(), "counter",
                                         Initializer::makeInt(5));
    EXPECT_EQ(module.findGlobal("counter"), g);
    EXPECT_EQ(module.findGlobal("other"), nullptr);
    EXPECT_EQ(g->init().intValue, 5);

    const Type *fn_type =
        module.types().functionType(module.types().i32(), {}, false);
    Function *f = module.addFunction(fn_type, "main");
    EXPECT_EQ(module.findFunction("main"), f);
    EXPECT_EQ(f->id(), 0u);
    EXPECT_EQ(module.functionById(0), f);
    EXPECT_TRUE(f->isDeclaration());
}

/** Build a minimal valid function: int f(int a) { return a + 1; } */
Function *
buildAddOne(Module &module)
{
    const Type *fn_type = module.types().functionType(
        module.types().i32(), {module.types().i32()}, false);
    Function *f = module.addFunction(fn_type, "addone");
    IRBuilder b(module);
    BasicBlock *entry = f->addBlock("entry");
    b.setInsertPoint(entry);
    Instruction *sum =
        b.createBinOp(Opcode::add, f->arg(0), module.constI32(1));
    b.createRet(sum);
    module.finalize();
    return f;
}

TEST(BuilderTest, SlotNumbering)
{
    Module module;
    Function *f = buildAddOne(module);
    // Argument occupies slot 0; the add gets slot 1.
    EXPECT_EQ(f->numSlots(), 2u);
    const Instruction *add = f->entry()->insts()[0].get();
    EXPECT_EQ(add->slot(), 1);
    const Instruction *ret = f->entry()->insts()[1].get();
    EXPECT_EQ(ret->slot(), -1);
}

TEST(BuilderTest, BlockTerminated)
{
    Module module;
    const Type *fn_type =
        module.types().functionType(module.types().voidTy(), {}, false);
    Function *f = module.addFunction(fn_type, "f");
    IRBuilder b(module);
    b.setInsertPoint(f->addBlock("entry"));
    EXPECT_FALSE(b.blockTerminated());
    b.createRet();
    EXPECT_TRUE(b.blockTerminated());
}

TEST(VerifierTest, AcceptsValidFunction)
{
    Module module;
    buildAddOne(module);
    auto issues = verifyModule(module);
    EXPECT_TRUE(issues.empty()) << formatIssues(issues);
}

TEST(VerifierTest, RejectsMissingTerminator)
{
    Module module;
    const Type *fn_type =
        module.types().functionType(module.types().i32(), {}, false);
    Function *f = module.addFunction(fn_type, "f");
    IRBuilder b(module);
    b.setInsertPoint(f->addBlock("entry"));
    b.createBinOp(Opcode::add, module.constI32(1), module.constI32(2));
    module.finalize();
    EXPECT_FALSE(moduleIsValid(module));
}

TEST(VerifierTest, RejectsTypeMismatchedBinop)
{
    Module module;
    const Type *fn_type =
        module.types().functionType(module.types().i32(), {}, false);
    Function *f = module.addFunction(fn_type, "f");
    IRBuilder b(module);
    b.setInsertPoint(f->addBlock("entry"));
    // i32 + i64 mismatch.
    auto inst = std::make_unique<Instruction>(Opcode::add,
                                              module.types().i32());
    inst->addOperand(module.constI32(1));
    inst->addOperand(module.constI64(2));
    b.insertBlock()->append(std::move(inst));
    b.createRet(module.constI32(0));
    module.finalize();
    EXPECT_FALSE(moduleIsValid(module));
}

TEST(VerifierTest, RejectsBadReturnType)
{
    Module module;
    const Type *fn_type =
        module.types().functionType(module.types().i32(), {}, false);
    Function *f = module.addFunction(fn_type, "f");
    IRBuilder b(module);
    b.setInsertPoint(f->addBlock("entry"));
    b.createRet(module.constI64(0)); // i64 from i32 function
    module.finalize();
    EXPECT_FALSE(moduleIsValid(module));
}

TEST(VerifierTest, RejectsWrongArgumentCount)
{
    Module module;
    Function *callee = buildAddOne(module);
    const Type *fn_type =
        module.types().functionType(module.types().i32(), {}, false);
    Function *f = module.addFunction(fn_type, "caller");
    IRBuilder b(module);
    b.setInsertPoint(f->addBlock("entry"));
    Instruction *call = b.createCall(callee, module.types().i32(), {});
    b.createRet(call);
    module.finalize();
    EXPECT_FALSE(moduleIsValid(module));
}

TEST(VerifierTest, RejectsCondbrOnNonBool)
{
    Module module;
    const Type *fn_type =
        module.types().functionType(module.types().i32(), {}, false);
    Function *f = module.addFunction(fn_type, "f");
    IRBuilder b(module);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *next = f->addBlock("next");
    b.setInsertPoint(entry);
    b.createCondBr(module.constI32(1), next, next); // i32 condition
    b.setInsertPoint(next);
    b.createRet(module.constI32(0));
    module.finalize();
    EXPECT_FALSE(moduleIsValid(module));
}

TEST(PrinterTest, FunctionDump)
{
    Module module;
    Function *f = buildAddOne(module);
    std::string text = printFunction(*f);
    EXPECT_NE(text.find("define i32 @addone(i32 %a0)"), std::string::npos);
    EXPECT_NE(text.find("add"), std::string::npos);
    EXPECT_NE(text.find("ret"), std::string::npos);
}

TEST(PrinterTest, ModuleDumpIncludesGlobals)
{
    Module module;
    module.addGlobal(module.types().arrayType(module.types().i8(), 3),
                     "buf", Initializer::makeBytes(std::string("ab\0", 3)));
    std::string text = printModule(module);
    EXPECT_NE(text.find("@buf"), std::string::npos);
    EXPECT_NE(text.find("[3 x i8]"), std::string::npos);
}

TEST(PrinterTest, OpcodeNamesComplete)
{
    // Spot-check a few; a missing case would return "<bad-op>".
    EXPECT_STREQ(opcodeName(Opcode::alloca_), "alloca");
    EXPECT_STREQ(opcodeName(Opcode::gep), "gep");
    EXPECT_STREQ(opcodeName(Opcode::fneg), "fneg");
    EXPECT_STREQ(opcodeName(Opcode::unreachable_), "unreachable");
    EXPECT_STREQ(intPredName(IntPred::ule), "ule");
    EXPECT_STREQ(floatPredName(FloatPred::oge), "oge");
}

TEST(InitializerTest, Factories)
{
    Initializer zero = Initializer::makeZero();
    EXPECT_TRUE(zero.isZero());
    Initializer i = Initializer::makeInt(42);
    EXPECT_EQ(i.kind, Initializer::Kind::intVal);
    EXPECT_EQ(i.intValue, 42);
    Initializer fp = Initializer::makeFP(1.5);
    EXPECT_DOUBLE_EQ(fp.fpValue, 1.5);
    Initializer bytes = Initializer::makeBytes("hi");
    EXPECT_EQ(bytes.bytes, "hi");
}

TEST(FunctionTest, RemoveBlocks)
{
    Module module;
    const Type *fn_type =
        module.types().functionType(module.types().voidTy(), {}, false);
    Function *f = module.addFunction(fn_type, "f");
    IRBuilder b(module);
    BasicBlock *entry = f->addBlock("entry");
    f->addBlock("dead");
    b.setInsertPoint(entry);
    b.createRet();
    f->removeBlocksIf({false, true});
    EXPECT_EQ(f->blocks().size(), 1u);
    EXPECT_EQ(f->entry()->name(), "entry");
    EXPECT_EQ(f->entry()->index(), 0u);
}

} // namespace
} // namespace sulong
