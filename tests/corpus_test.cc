/**
 * @file
 * Corpus tests: the Table 1 / Table 2 ground-truth distributions, per-
 * entry detection by Safe Sulong (kind, access, storage, direction all
 * matching the metadata), and the headline Section 4.1 counts.
 */

#include "test_util.h"

#include "corpus/harness.h"

namespace sulong
{
namespace
{

TEST(CorpusShapeTest, TableOneDistribution)
{
    const auto &corpus = bugCorpus();
    ASSERT_EQ(corpus.size(), 68u);
    unsigned oob = 0, nulls = 0, uaf = 0, varargs = 0;
    for (const auto &entry : corpus) {
        switch (entry.kind) {
          case ErrorKind::outOfBounds: oob++; break;
          case ErrorKind::nullDeref: nulls++; break;
          case ErrorKind::useAfterFree: uaf++; break;
          case ErrorKind::varargs: varargs++; break;
          default: FAIL() << entry.id;
        }
    }
    EXPECT_EQ(oob, 61u);
    EXPECT_EQ(nulls, 5u);
    EXPECT_EQ(uaf, 1u);
    EXPECT_EQ(varargs, 1u);
}

TEST(CorpusShapeTest, TableTwoDistribution)
{
    unsigned reads = 0, writes = 0, under = 0, over = 0;
    unsigned stack = 0, heap = 0, global = 0, main_args = 0;
    for (const auto &entry : bugCorpus()) {
        if (entry.kind != ErrorKind::outOfBounds)
            continue;
        (entry.access == AccessKind::read ? reads : writes)++;
        (entry.direction == BoundsDirection::underflow ? under : over)++;
        switch (entry.storage) {
          case StorageKind::stack: stack++; break;
          case StorageKind::heap: heap++; break;
          case StorageKind::global: global++; break;
          case StorageKind::mainArgs: main_args++; break;
          default: FAIL() << entry.id;
        }
    }
    EXPECT_EQ(reads, 32u);
    EXPECT_EQ(writes, 29u);
    EXPECT_EQ(under, 8u);
    EXPECT_EQ(over, 53u);
    EXPECT_EQ(stack, 32u);
    EXPECT_EQ(heap, 17u);
    EXPECT_EQ(global, 9u);
    EXPECT_EQ(main_args, 3u);
}

TEST(CorpusShapeTest, UniqueIdsAndCaseStudies)
{
    std::set<std::string> ids;
    unsigned case_studies = 0;
    for (const auto &entry : bugCorpus()) {
        EXPECT_TRUE(ids.insert(entry.id).second)
            << "duplicate id " << entry.id;
        EXPECT_FALSE(entry.source.empty()) << entry.id;
        EXPECT_FALSE(entry.description.empty()) << entry.id;
        if (entry.caseStudy)
            case_studies++;
    }
    // Figs. 10, 11, 12, 13, 14 plus the missing-vararg case.
    EXPECT_EQ(case_studies, 6u);
}

TEST(CorpusShapeTest, FormattersMatchGroundTruth)
{
    std::string t1 = formatTable1(bugCorpus());
    EXPECT_NE(t1.find("Buffer overflows      61"), std::string::npos) << t1;
    std::string t2 = formatTable2(bugCorpus());
    EXPECT_NE(t2.find("Read   32"), std::string::npos) << t2;
    EXPECT_NE(t2.find("Write  29"), std::string::npos) << t2;
}

/** Safe Sulong must detect each entry with fully matching metadata. */
class CorpusEntryTest : public ::testing::TestWithParam<int>
{
};

TEST_P(CorpusEntryTest, SafeSulongDetectsWithExactMetadata)
{
    const CorpusEntry &entry =
        bugCorpus()[static_cast<size_t>(GetParam())];
    ExecutionResult result =
        runUnderTool(entry.source, ToolConfig::make(ToolKind::safeSulong),
                     entry.args, entry.stdinData);
    EXPECT_EQ(result.bug.kind, entry.kind)
        << entry.id << ": " << result.bug.toString();
    if (entry.kind == ErrorKind::outOfBounds) {
        EXPECT_EQ(result.bug.access, entry.access) << entry.id;
        EXPECT_EQ(result.bug.storage, entry.storage) << entry.id;
        EXPECT_EQ(result.bug.direction, entry.direction) << entry.id;
    }
}

std::string
entryName(const ::testing::TestParamInfo<int> &info)
{
    std::string name = bugCorpus()[static_cast<size_t>(info.param)].id;
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllEntries, CorpusEntryTest,
                         ::testing::Range(0, 68), entryName);

TEST(CorpusMatrixTest, HeadlineCountsMatchThePaper)
{
    const auto &corpus = bugCorpus();
    std::vector<ToolConfig> tools = {
        ToolConfig::make(ToolKind::safeSulong),
        ToolConfig::make(ToolKind::asan, 0),
        ToolConfig::make(ToolKind::asan, 3),
    };
    auto rows = runDetectionMatrix(corpus, tools);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].directCount, 68u);    // Safe Sulong finds all
    EXPECT_EQ(rows[1].directCount, 60u);    // ASan -O0 misses the 8
    EXPECT_EQ(rows[2].directCount, 56u);    // ASan -O3 misses 4 more
    EXPECT_EQ(rows[0].errorCount, 0u);
    EXPECT_EQ(rows[1].errorCount, 0u);
    // ASan -O3's detections are a subset of -O0's (as in the paper).
    for (size_t i = 0; i < corpus.size(); i++) {
        if (rows[2].outcomes[i].detected) {
            EXPECT_TRUE(rows[1].outcomes[i].detected) << corpus[i].id;
        }
    }
}

TEST(CorpusMatrixTest, ValgrindFindsAboutHalf)
{
    const auto &corpus = bugCorpus();
    auto rows = runDetectionMatrix(
        corpus, {ToolConfig::make(ToolKind::memcheck, 0)});
    const MatrixRow &valgrind = rows[0];
    // Direct: all 17 heap OOB + 5 NULL + 1 UAF.
    EXPECT_EQ(valgrind.directCount, 23u);
    // With the indirect uninitialised-value reports it reaches
    // "slightly more than half" (the paper's wording).
    unsigned total = valgrind.directCount + valgrind.indirectCount;
    EXPECT_GT(total, 30u);
    EXPECT_LT(total, 45u);
    // Heap entries are all found directly.
    for (size_t i = 0; i < corpus.size(); i++) {
        if (corpus[i].kind == ErrorKind::outOfBounds &&
            corpus[i].storage == StorageKind::heap) {
            EXPECT_TRUE(valgrind.outcomes[i].detected) << corpus[i].id;
        }
        if (corpus[i].storage == StorageKind::mainArgs) {
            EXPECT_FALSE(valgrind.outcomes[i].detected) << corpus[i].id;
        }
    }
}

TEST(CorpusMatrixTest, ExactlyEightExclusiveToSafeSulong)
{
    const auto &corpus = bugCorpus();
    std::vector<ToolConfig> tools = {
        ToolConfig::make(ToolKind::safeSulong),
        ToolConfig::make(ToolKind::asan, 0),
        ToolConfig::make(ToolKind::asan, 3),
        ToolConfig::make(ToolKind::memcheck, 0),
        ToolConfig::make(ToolKind::memcheck, 3),
    };
    auto rows = runDetectionMatrix(corpus, tools);
    auto exclusive = exclusiveDetections(corpus, rows);
    EXPECT_EQ(exclusive.size(), 8u);
    // The categories the paper names: argv (3), interceptors (2),
    // -O0-optimized-away (1), beyond-the-redzone (1), varargs (1).
    std::set<std::string> set(exclusive.begin(), exclusive.end());
    EXPECT_TRUE(set.count("args-r-01-argv-fixed-index"));
    EXPECT_TRUE(set.count("stack-r-03-strtok-delim"));
    EXPECT_TRUE(set.count("stack-r-04-printf-ld-int"));
    EXPECT_TRUE(set.count("global-r-01-const-index"));
    EXPECT_TRUE(set.count("global-r-02-user-index"));
    EXPECT_TRUE(set.count("varargs-01-missing-argument"));
}

TEST(CorpusMatrixTest, Tier2AndOsrKeepEveryDetection)
{
    // Safe semantics (paper Section 3.4): neither eager tier-2
    // compilation nor on-stack replacement may lose a single bug.
    ToolConfig eager = ToolConfig::make(ToolKind::safeSulong);
    eager.managed.compileThreshold = 1;
    eager.managed.enableOsr = true;
    eager.managed.osrThreshold = 50;
    for (const CorpusEntry &entry : bugCorpus()) {
        ExecutionResult result = runUnderTool(
            entry.source, eager, entry.args, entry.stdinData);
        EXPECT_EQ(result.bug.kind, entry.kind)
            << entry.id << ": " << result.bug.toString();
    }
}

TEST(CorpusMatrixTest, NativeBaselineDetectsAlmostNothing)
{
    // "Clang" without any tool: only traps (NULL derefs) surface.
    const auto &corpus = bugCorpus();
    auto rows = runDetectionMatrix(
        corpus, {ToolConfig::make(ToolKind::clang, 0)});
    EXPECT_LE(rows[0].directCount, 10u);
    for (size_t i = 0; i < corpus.size(); i++) {
        if (rows[0].outcomes[i].detected) {
            EXPECT_EQ(corpus[i].kind, ErrorKind::nullDeref)
                << corpus[i].id;
        }
    }
}

} // namespace
} // namespace sulong
