/**
 * @file
 * Module-clone tests: the clone must print identically, verify cleanly,
 * execute identically, and be fully independent of the original (the
 * compile cache's copy-on-instrument depends on that isolation).
 */

#include "test_util.h"

#include "frontend/compiler.h"
#include "ir/clone.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "libc/libc_sources.h"
#include "opt/passes.h"
#include "sanitizer/asan_pass.h"

namespace sulong
{
namespace
{

const char *kProgram = R"(
struct point { int x; int y; };

int scale = 3;

int area(struct point *p) { return p->x * p->y * scale; }

int main(void) {
    struct point p;
    p.x = 6;
    p.y = 7;
    char buf[32];
    sprintf(buf, "area=%d", area(&p));
    puts(buf);
    return area(&p) % 100;
}
)";

std::unique_ptr<Module>
compileProgram(LibcVariant variant = LibcVariant::safe)
{
    std::vector<SourceFile> sources = libcSources(variant);
    sources.push_back(SourceFile{"<input>", kProgram});
    CompileResult compiled = compileC(sources);
    EXPECT_TRUE(compiled.ok()) << compiled.errors;
    return std::move(compiled.module);
}

TEST(IrCloneTest, ClonePrintsIdentically)
{
    auto module = compileProgram();
    auto clone = cloneModule(*module);
    EXPECT_EQ(printModule(*module), printModule(*clone));
}

TEST(IrCloneTest, CloneVerifiesCleanly)
{
    auto module = compileProgram();
    auto clone = cloneModule(*module);
    auto issues = verifyModule(*clone);
    EXPECT_TRUE(issues.empty()) << formatIssues(issues);
}

TEST(IrCloneTest, OptimizedModuleWithStructsClones)
{
    // The O3 pipeline plus named struct types exercises the paths the
    // textual roundtrip cannot (the parser rejects named structs).
    auto module = compileProgram(LibcVariant::nativeOptimized);
    runO3Pipeline(*module);
    auto clone = cloneModule(*module);
    EXPECT_EQ(printModule(*module), printModule(*clone));
    auto issues = verifyModule(*clone);
    EXPECT_TRUE(issues.empty()) << formatIssues(issues);
}

TEST(IrCloneTest, CloneExecutesIdentically)
{
    auto module = compileProgram();
    auto clone = cloneModule(*module);

    ManagedEngine original{ManagedOptions{}};
    ManagedEngine copied{ManagedOptions{}};
    ExecutionResult a = original.run(*module, {}, "");
    ExecutionResult b = copied.run(*clone, {}, "");
    EXPECT_EQ(a.exitCode, b.exitCode);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.bug.kind, b.bug.kind);
}

TEST(IrCloneTest, InstrumentingCloneLeavesOriginalUntouched)
{
    auto module = compileProgram(LibcVariant::nativeOptimized);
    runO0Pipeline(*module);
    std::string before = printModule(*module);

    auto clone = cloneModule(*module);
    runAsanPass(*clone);

    EXPECT_EQ(printModule(*module), before);
    EXPECT_NE(printModule(*clone), before);
}

} // namespace
} // namespace sulong
