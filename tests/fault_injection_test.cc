/**
 * @file
 * Chaos suite: the harness must survive every way a job can misbehave.
 *
 * Resource bombs (infinite loop, unbounded recursion, allocation bomb,
 * printf bomb) run under all four engines and must terminate with the
 * matching structured TerminationKind; injected host faults, delays, and
 * watchdog cancellations must stay per-job; and a chaotic batch must be
 * bit-identical across worker counts, because fault decisions are a pure
 * function of (seed, site, visit) rather than scheduling.
 */

#include "test_util.h"

#include "corpus/harness.h"
#include "support/fault.h"
#include "tools/batch_runner.h"

namespace sulong
{
namespace
{

const char *const kLoop = "int main(void) { while (1) { } }";

const char *const kRecurse = R"(
static int forever(int n) { return forever(n + 1); }
int main(void) { return forever(0); })";

const char *const kAllocBomb = R"(
int main(void) {
    while (1) {
        char *block = malloc(1048576);
        if (block == 0)
            return 1;
        block[0] = 'x';
    }
})";

const char *const kOutputBomb = R"(
int main(void) {
    while (1)
        puts("spam spam spam spam spam spam spam spam");
})";

const ToolKind kAllTools[] = {
    ToolKind::safeSulong,
    ToolKind::clang,
    ToolKind::asan,
    ToolKind::memcheck,
};

/** Bomb-taming limits: every bomb trips its budget within milliseconds. */
ResourceLimits
chaosLimits()
{
    ResourceLimits limits;
    limits.maxSteps = 2'000'000;
    limits.maxCallDepth = 500;
    limits.maxHeapBytes = 4ull * 1024 * 1024;
    limits.maxHeapAllocations = 100'000;
    limits.maxOutputBytes = 64 * 1024;
    return limits;
}

ExecutionResult
runLimited(const std::string &src, ToolKind kind,
           const ResourceLimits &limits)
{
    PreparedProgram prepared = prepareProgram(src, ToolConfig::make(kind));
    EXPECT_TRUE(prepared.ok()) << prepared.compileErrors;
    if (!prepared.ok())
        return ExecutionResult{};
    prepared.engine->limits() = limits;
    return prepared.run();
}

// --- Structured terminations under every engine ----------------------------

TEST(ChaosTest, InfiniteLoopHitsStepLimitEverywhere)
{
    for (ToolKind kind : kAllTools) {
        ExecutionResult result = runLimited(kLoop, kind, chaosLimits());
        EXPECT_EQ(result.termination, TerminationKind::stepLimit)
            << ToolConfig::make(kind).toString() << ": "
            << result.terminationDetail;
        EXPECT_EQ(result.bug.kind, ErrorKind::none);
        EXPECT_FALSE(result.ok());
    }
}

TEST(ChaosTest, UnboundedRecursionHitsStackLimitEverywhere)
{
    for (ToolKind kind : kAllTools) {
        ExecutionResult result = runLimited(kRecurse, kind, chaosLimits());
        EXPECT_EQ(result.termination, TerminationKind::stackLimit)
            << ToolConfig::make(kind).toString() << ": "
            << result.terminationDetail;
        EXPECT_EQ(result.bug.kind, ErrorKind::none);
    }
}

TEST(ChaosTest, AllocationBombHitsHeapLimitEverywhere)
{
    for (ToolKind kind : kAllTools) {
        ExecutionResult result = runLimited(kAllocBomb, kind, chaosLimits());
        EXPECT_EQ(result.termination, TerminationKind::heapLimit)
            << ToolConfig::make(kind).toString() << ": "
            << result.terminationDetail;
    }
}

TEST(ChaosTest, AllocationCountLimitTrips)
{
    ResourceLimits limits = chaosLimits();
    limits.maxHeapBytes = 0;
    limits.maxHeapAllocations = 3;
    ExecutionResult result =
        runLimited(kAllocBomb, ToolKind::safeSulong, limits);
    EXPECT_EQ(result.termination, TerminationKind::heapLimit);
}

TEST(ChaosTest, OutputBombHitsOutputLimitEverywhere)
{
    // Plenty of steps so the output cap always trips first, whatever a
    // libc puts costs on each engine.
    ResourceLimits limits = chaosLimits();
    limits.maxSteps = 100'000'000;
    for (ToolKind kind : kAllTools) {
        ExecutionResult result = runLimited(kOutputBomb, kind, limits);
        EXPECT_EQ(result.termination, TerminationKind::outputLimit)
            << ToolConfig::make(kind).toString() << ": "
            << result.terminationDetail;
        // Output up to the cap is preserved for diagnosis.
        EXPECT_FALSE(result.output.empty());
        EXPECT_LE(result.output.size() + result.errOutput.size(),
                  limits.maxOutputBytes);
    }
}

TEST(ChaosTest, DeadlineTerminatesLoopEverywhere)
{
    ResourceLimits limits;
    limits.maxSteps = 0; // only the clock can stop it
    limits.deadlineMs = 50;
    for (ToolKind kind : kAllTools) {
        ExecutionResult result = runLimited(kLoop, kind, limits);
        EXPECT_EQ(result.termination, TerminationKind::timeout)
            << ToolConfig::make(kind).toString();
    }
}

TEST(ChaosTest, PreCancelledTokenStopsRunImmediately)
{
    for (ToolKind kind : kAllTools) {
        PreparedProgram prepared =
            prepareProgram(kLoop, ToolConfig::make(kind));
        ASSERT_TRUE(prepared.ok());
        prepared.engine->limits().maxSteps = 0;
        CancellationToken token;
        token.cancel();
        prepared.engine->setCancellationToken(token);
        ExecutionResult result = prepared.run();
        EXPECT_EQ(result.termination, TerminationKind::cancelled)
            << ToolConfig::make(kind).toString();
    }
}

// --- FaultInjector semantics -----------------------------------------------

TEST(FaultInjectorTest, DecisionsAreAPureFunctionOfSeedSiteVisit)
{
    auto firingPattern = [](FaultInjector &faults) {
        std::vector<bool> pattern;
        for (int visit = 0; visit < 64; visit++) {
            bool fired = false;
            try {
                faults.at("flaky");
            } catch (const InjectedFault &) {
                fired = true;
            }
            pattern.push_back(fired);
        }
        return pattern;
    };
    FaultInjector::Rule rule;
    rule.site = "flaky";
    rule.probability = 0.5;

    FaultInjector a(1234), b(1234), c(99);
    a.addRule(rule);
    b.addRule(rule);
    c.addRule(rule);
    std::vector<bool> pa = firingPattern(a), pb = firingPattern(b);
    EXPECT_EQ(pa, pb);
    EXPECT_NE(pa, firingPattern(c)); // different seed, different chaos
    EXPECT_EQ(a.visits("flaky"), 64u);
    EXPECT_GT(a.firings("flaky"), 0u);
    EXPECT_LT(a.firings("flaky"), 64u);
}

TEST(FaultInjectorTest, FiringCapAndActions)
{
    FaultInjector faults;
    FaultInjector::Rule oom;
    oom.site = "alloc";
    oom.action = FaultInjector::Action::allocFailure;
    oom.maxFirings = 2;
    faults.addRule(oom);
    for (int i = 0; i < 5; i++) {
        if (i < 2)
            EXPECT_THROW(faults.at("alloc"), std::bad_alloc);
        else
            EXPECT_NO_THROW(faults.at("alloc"));
    }
    EXPECT_EQ(faults.visits("alloc"), 5u);
    EXPECT_EQ(faults.firings("alloc"), 2u);

    FaultInjector::Rule nap;
    nap.site = "nap";
    nap.action = FaultInjector::Action::delay;
    nap.delayMs = 1;
    faults.addRule(nap);
    EXPECT_NO_THROW(faults.at("nap")); // sleeps, never throws
    EXPECT_EQ(faults.firings("nap"), 1u);
}

// --- Batch-level fault tolerance -------------------------------------------

BatchJob
quickJob(int exit_code)
{
    return BatchJob::make(
        "int main(void) { return " + std::to_string(exit_code) + "; }",
        ToolConfig::make(ToolKind::safeSulong));
}

TEST(ChaosTest, InjectedHostExceptionStaysPerJob)
{
    FaultInjector faults;
    FaultInjector::Rule rule;
    rule.site = "batch.job/1";
    faults.addRule(rule);

    std::vector<BatchJob> jobs = {quickJob(1), quickJob(2), quickJob(3)};
    BatchOptions options;
    options.faults = &faults;
    BatchReport report = runBatch(jobs, options);

    EXPECT_EQ(report.results[0].exitCode, 1);
    EXPECT_EQ(report.results[1].termination, TerminationKind::hostFault);
    EXPECT_NE(report.results[1].terminationDetail.find("injected"),
              std::string::npos);
    EXPECT_EQ(report.results[2].exitCode, 3);
    EXPECT_EQ(report.hostFaults, 1u);
    EXPECT_EQ(report.jobStats[1].attempts, 1u);
}

TEST(ChaosTest, InjectedAllocFailureBecomesHostFault)
{
    FaultInjector faults;
    FaultInjector::Rule rule;
    rule.site = "batch.job/0";
    rule.action = FaultInjector::Action::allocFailure;
    faults.addRule(rule);

    std::vector<BatchJob> jobs = {quickJob(1)};
    BatchOptions options;
    options.faults = &faults;
    BatchReport report = runBatch(jobs, options);
    EXPECT_EQ(report.results[0].termination, TerminationKind::hostFault);
}

TEST(ChaosTest, RetryWithBackoffRecoversTransientFaults)
{
    FaultInjector faults;
    FaultInjector::Rule rule;
    rule.site = "batch.job/0";
    rule.maxFirings = 2; // fails twice, then the site is healthy
    faults.addRule(rule);

    std::vector<BatchJob> jobs = {quickJob(7)};
    BatchOptions options;
    options.faults = &faults;
    options.retries = 3;
    options.retryBackoffMs = 1;
    BatchReport report = runBatch(jobs, options);

    EXPECT_EQ(report.results[0].termination, TerminationKind::normal);
    EXPECT_EQ(report.results[0].exitCode, 7);
    EXPECT_EQ(report.jobStats[0].attempts, 3u);
    EXPECT_EQ(report.retriesUsed, 2u);
    EXPECT_EQ(report.hostFaults, 0u);
}

TEST(ChaosTest, RetriesExhaustedReportsHostFault)
{
    FaultInjector faults;
    FaultInjector::Rule rule;
    rule.site = "batch.job/0"; // no cap: every attempt fails
    faults.addRule(rule);

    std::vector<BatchJob> jobs = {quickJob(7)};
    BatchOptions options;
    options.faults = &faults;
    options.retries = 2;
    options.retryBackoffMs = 1;
    BatchReport report = runBatch(jobs, options);
    EXPECT_EQ(report.results[0].termination, TerminationKind::hostFault);
    EXPECT_EQ(report.jobStats[0].attempts, 3u);
}

TEST(ChaosTest, WatchdogCancelsOverdueJob)
{
    std::vector<BatchJob> jobs = {quickJob(1), quickJob(2)};
    jobs.push_back(BatchJob::make(kLoop,
                                  ToolConfig::make(ToolKind::safeSulong)));
    jobs[2].limits.maxSteps = 0; // nothing but the watchdog can stop it

    BatchOptions options;
    options.jobs = 2;
    options.watchdogMs = 50;
    BatchReport report = runBatch(jobs, options);

    EXPECT_EQ(report.results[0].exitCode, 1);
    EXPECT_EQ(report.results[1].exitCode, 2);
    EXPECT_EQ(report.results[2].termination, TerminationKind::cancelled);
    EXPECT_GE(report.jobStats[2].elapsedMs, 40.0);
}

TEST(ChaosTest, FailFastDrainsQueuedJobs)
{
    FaultInjector faults;
    FaultInjector::Rule rule;
    rule.site = "batch.job/1";
    faults.addRule(rule);

    std::vector<BatchJob> jobs = {quickJob(1), quickJob(2), quickJob(3),
                                  quickJob(4)};
    BatchOptions options; // serial: drain point is deterministic
    options.faults = &faults;
    options.failFast = true;
    BatchReport report = runBatch(jobs, options);

    EXPECT_EQ(report.results[0].exitCode, 1);
    EXPECT_EQ(report.results[1].termination, TerminationKind::hostFault);
    EXPECT_EQ(report.results[2].termination, TerminationKind::cancelled);
    EXPECT_EQ(report.results[3].termination, TerminationKind::cancelled);
    EXPECT_EQ(report.jobStats[2].attempts, 0u);
    EXPECT_EQ(report.drainedJobs, 2u);
}

TEST(ChaosTest, GuestBugsDoNotTriggerFailFast)
{
    std::vector<BatchJob> jobs = {
        BatchJob::make("int main(void) { int a[3]; return a[5]; }",
                       ToolConfig::make(ToolKind::safeSulong)),
        quickJob(2),
    };
    BatchOptions options;
    options.failFast = true;
    BatchReport report = runBatch(jobs, options);
    EXPECT_EQ(report.results[0].bug.kind, ErrorKind::outOfBounds);
    EXPECT_EQ(report.results[1].exitCode, 2); // batch kept going
    EXPECT_EQ(report.drainedJobs, 0u);
}

// --- The acceptance batch: all failure modes, deterministic --------------

bool
sameResult(const ExecutionResult &a, const ExecutionResult &b)
{
    return a.exitCode == b.exitCode && a.output == b.output &&
           a.errOutput == b.errOutput && a.bug.kind == b.bug.kind &&
           a.bug.detail == b.bug.detail && a.termination == b.termination &&
           a.terminationDetail == b.terminationDetail;
}

TEST(ChaosTest, ChaoticBatchIsDeterministicAcrossWorkerCounts)
{
    // Every bomb under every engine, plus an injected host fault and an
    // injected delay — the acceptance batch of the issue.
    std::vector<BatchJob> jobs;
    for (ToolKind kind : kAllTools) {
        for (const char *src : {kLoop, kRecurse, kAllocBomb, kOutputBomb}) {
            jobs.push_back(BatchJob::make(src, ToolConfig::make(kind)));
            jobs.back().limits = chaosLimits();
            if (src == kOutputBomb)
                jobs.back().limits.maxSteps = 100'000'000;
        }
    }
    jobs.push_back(quickJob(11)); // takes the host-fault injection
    jobs.push_back(quickJob(12)); // takes the delay injection

    auto configureFaults = [&jobs](FaultInjector &faults) {
        FaultInjector::Rule boom;
        boom.site = "batch.job/" + std::to_string(jobs.size() - 2);
        faults.addRule(boom);
        FaultInjector::Rule nap;
        nap.site = "batch.job/" + std::to_string(jobs.size() - 1);
        nap.action = FaultInjector::Action::delay;
        nap.delayMs = 10;
        faults.addRule(nap);
    };

    FaultInjector serialFaults(42);
    configureFaults(serialFaults);
    BatchOptions serial;
    serial.jobs = 1;
    serial.faults = &serialFaults;
    BatchReport reference = runBatch(jobs, serial);

    FaultInjector parallelFaults(42);
    configureFaults(parallelFaults);
    BatchOptions parallel;
    parallel.jobs = 8;
    parallel.faults = &parallelFaults;
    BatchReport report = runBatch(jobs, parallel);

    TerminationKind expected[] = {
        TerminationKind::stepLimit,
        TerminationKind::stackLimit,
        TerminationKind::heapLimit,
        TerminationKind::outputLimit,
    };
    for (size_t i = 0; i < jobs.size() - 2; i++) {
        EXPECT_EQ(reference.results[i].termination, expected[i % 4])
            << "job " << i << ": "
            << reference.results[i].terminationDetail;
    }
    EXPECT_EQ(reference.results[jobs.size() - 2].termination,
              TerminationKind::hostFault);
    EXPECT_EQ(reference.results[jobs.size() - 1].termination,
              TerminationKind::normal);
    EXPECT_EQ(reference.results[jobs.size() - 1].exitCode, 12);

    ASSERT_EQ(report.results.size(), reference.results.size());
    for (size_t i = 0; i < jobs.size(); i++) {
        EXPECT_TRUE(sameResult(reference.results[i], report.results[i]))
            << "job " << i << " diverged across worker counts";
        EXPECT_EQ(reference.jobStats[i].termination,
                  report.jobStats[i].termination);
    }
}

// --- Slow soak tests (labelled `slow`) -------------------------------------

TEST(ChaosSlowTest, DefaultCorpusLimitsTameEveryBomb)
{
    // The real corpus budget (50M steps, 256MB heap, 16MB output) instead
    // of the tight chaos budget — seconds per engine, so labelled slow.
    for (ToolKind kind : {ToolKind::safeSulong, ToolKind::clang}) {
        EXPECT_EQ(runLimited(kLoop, kind, corpusRunLimits()).termination,
                  TerminationKind::stepLimit);
        EXPECT_EQ(
            runLimited(kAllocBomb, kind, corpusRunLimits()).termination,
            TerminationKind::heapLimit);
        // Whether the 16MB output cap or the 50M step budget trips first
        // depends on the engine's per-puts cost; either is a structured
        // termination, which is the property that matters.
        TerminationKind bomb =
            runLimited(kOutputBomb, kind, corpusRunLimits()).termination;
        EXPECT_TRUE(bomb == TerminationKind::outputLimit ||
                    bomb == TerminationKind::stepLimit)
            << terminationKindName(bomb);
    }
}

TEST(ChaosSlowTest, RandomFaultSoakNeverCrashesTheBatch)
{
    // Wildcard chaos over a mixed batch, twice with the same seed: every
    // job must end in a structured outcome and both runs must agree.
    std::vector<BatchJob> jobs;
    for (int i = 0; i < 24; i++) {
        if (i % 4 == 3) {
            jobs.push_back(BatchJob::make(
                kLoop, ToolConfig::make(kAllTools[i % 2])));
            jobs.back().limits = chaosLimits();
        } else {
            jobs.push_back(quickJob(i));
        }
    }
    auto runChaos = [&jobs]() {
        FaultInjector faults(7);
        FaultInjector::Rule rule; // wildcard: any job may blow up
        rule.probability = 0.3;
        faults.addRule(rule);
        BatchOptions options;
        options.jobs = 4;
        options.faults = &faults;
        options.retries = 1;
        options.retryBackoffMs = 1;
        return runBatch(jobs, options);
    };
    BatchReport first = runChaos();
    BatchReport second = runChaos();
    ASSERT_EQ(first.results.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); i++) {
        const ExecutionResult &result = first.results[i];
        bool structured =
            result.termination != TerminationKind::normal ||
            result.bug.kind != ErrorKind::none || result.exitCode >= 0;
        EXPECT_TRUE(structured) << "job " << i;
        EXPECT_TRUE(sameResult(result, second.results[i]))
            << "job " << i << " not deterministic under chaos";
    }
    EXPECT_EQ(first.retriesUsed, second.retriesUsed);
    EXPECT_EQ(first.hostFaults, second.hostFaults);
}

} // namespace
} // namespace sulong
