/**
 * @file
 * Thread-pool unit tests: FIFO ordering, exception propagation through
 * futures, value returns, and shutdown under load (the destructor must
 * drain the queue, not drop it).
 */

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/thread_pool.h"

namespace sulong
{
namespace
{

TEST(ThreadPoolTest, ReturnsValuesThroughFutures)
{
    ThreadPool pool(2);
    auto a = pool.submit([] { return 7; });
    auto b = pool.submit([] { return std::string("batch"); });
    EXPECT_EQ(a.get(), 7);
    EXPECT_EQ(b.get(), "batch");
}

TEST(ThreadPoolTest, SingleWorkerRunsJobsInSubmissionOrder)
{
    // With one worker the FIFO queue forces strict submission order.
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; i++)
        futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
    for (auto &f : futures)
        f.get();
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; i++)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] { return 1; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("job failed"); });
    EXPECT_EQ(ok.get(), 1);
    try {
        bad.get();
        FAIL() << "expected the job's exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job failed");
    }
    // A throwing job must not take its worker down with it.
    EXPECT_EQ(pool.submit([] { return 2; }).get(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedJobsUnderLoad)
{
    std::atomic<int> completed{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 200; i++) {
            pool.submit([&completed] {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
                completed.fetch_add(1);
            });
        }
        // Destruct while most jobs are still queued.
    }
    EXPECT_EQ(completed.load(), 200);
}

TEST(ThreadPoolTest, WaitIdleWaitsForInFlightJobs)
{
    ThreadPool pool(3);
    std::atomic<int> completed{0};
    for (int i = 0; i < 50; i++) {
        pool.submit([&completed] {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
            completed.fetch_add(1);
        });
    }
    pool.waitIdle();
    EXPECT_EQ(completed.load(), 50);
    EXPECT_EQ(pool.pendingTasks(), 0u);
}

TEST(ThreadPoolTest, WorkerCountDefaultsToHardware)
{
    ThreadPool pool;
    EXPECT_EQ(pool.workerCount(), ThreadPool::hardwareWorkers());
    EXPECT_GE(pool.workerCount(), 1u);
}

} // namespace
} // namespace sulong
