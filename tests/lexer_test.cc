/**
 * @file
 * Unit tests for the mini-C lexer and its minimal preprocessor.
 */

#include <gtest/gtest.h>

#include "frontend/lexer.h"

namespace sulong
{
namespace
{

std::vector<Token>
lex(const std::string &src, DiagnosticEngine *diags_out = nullptr)
{
    static DiagnosticEngine scratch;
    DiagnosticEngine local;
    DiagnosticEngine &diags = diags_out != nullptr ? *diags_out : local;
    Lexer lexer("test.c", src, diags);
    return lexer.lexAll();
}

TEST(LexerTest, Keywords)
{
    auto tokens = lex("int while struct sizeof va_arg");
    ASSERT_GE(tokens.size(), 6u);
    EXPECT_EQ(tokens[0].kind, Tok::kwInt);
    EXPECT_EQ(tokens[1].kind, Tok::kwWhile);
    EXPECT_EQ(tokens[2].kind, Tok::kwStruct);
    EXPECT_EQ(tokens[3].kind, Tok::kwSizeof);
    EXPECT_EQ(tokens[4].kind, Tok::kwVaArg);
    EXPECT_EQ(tokens[5].kind, Tok::eof);
}

TEST(LexerTest, Identifiers)
{
    auto tokens = lex("foo _bar x9 intx");
    EXPECT_EQ(tokens[0].kind, Tok::identifier);
    EXPECT_EQ(tokens[0].text, "foo");
    EXPECT_EQ(tokens[1].text, "_bar");
    EXPECT_EQ(tokens[2].text, "x9");
    EXPECT_EQ(tokens[3].kind, Tok::identifier); // not the keyword "int"
}

TEST(LexerTest, IntegerLiterals)
{
    auto tokens = lex("0 42 0x1F 7u 9L 10UL");
    EXPECT_EQ(tokens[0].intValue, 0u);
    EXPECT_EQ(tokens[1].intValue, 42u);
    EXPECT_EQ(tokens[2].intValue, 31u);
    EXPECT_TRUE(tokens[3].isUnsigned);
    EXPECT_TRUE(tokens[4].isLong);
    EXPECT_TRUE(tokens[5].isUnsigned);
    EXPECT_TRUE(tokens[5].isLong);
}

TEST(LexerTest, FloatLiterals)
{
    auto tokens = lex("1.5 0.25 2e3 1.5e-2 3.f");
    EXPECT_EQ(tokens[0].kind, Tok::floatLiteral);
    EXPECT_DOUBLE_EQ(tokens[0].floatValue, 1.5);
    EXPECT_DOUBLE_EQ(tokens[1].floatValue, 0.25);
    EXPECT_DOUBLE_EQ(tokens[2].floatValue, 2000.0);
    EXPECT_DOUBLE_EQ(tokens[3].floatValue, 0.015);
    EXPECT_DOUBLE_EQ(tokens[4].floatValue, 3.0);
}

TEST(LexerTest, DotAfterNumberVsMember)
{
    auto tokens = lex("a.b");
    EXPECT_EQ(tokens[0].kind, Tok::identifier);
    EXPECT_EQ(tokens[1].kind, Tok::dot);
    EXPECT_EQ(tokens[2].kind, Tok::identifier);
}

TEST(LexerTest, CharLiterals)
{
    auto tokens = lex(R"('a' '\n' '\0' '\\' '\x41')");
    EXPECT_EQ(tokens[0].intValue, static_cast<uint64_t>('a'));
    EXPECT_EQ(tokens[1].intValue, static_cast<uint64_t>('\n'));
    EXPECT_EQ(tokens[2].intValue, 0u);
    EXPECT_EQ(tokens[3].intValue, static_cast<uint64_t>('\\'));
    EXPECT_EQ(tokens[4].intValue, 0x41u);
}

TEST(LexerTest, StringLiterals)
{
    auto tokens = lex(R"("hello" "a\tb" "")");
    EXPECT_EQ(tokens[0].kind, Tok::stringLiteral);
    EXPECT_EQ(tokens[0].stringValue, "hello");
    EXPECT_EQ(tokens[1].stringValue, "a\tb");
    EXPECT_EQ(tokens[2].stringValue, "");
}

TEST(LexerTest, Operators)
{
    auto tokens = lex("+ ++ += - -- -= -> << <<= < <= == != && || ... % ^=");
    Tok expected[] = {
        Tok::plus, Tok::plusplus, Tok::plusAssign, Tok::minus,
        Tok::minusminus, Tok::minusAssign, Tok::arrow, Tok::shl,
        Tok::shlAssign, Tok::lt, Tok::le, Tok::eqeq, Tok::ne, Tok::ampamp,
        Tok::pipepipe, Tok::ellipsis, Tok::percent, Tok::xorAssign,
    };
    for (size_t i = 0; i < std::size(expected); i++)
        EXPECT_EQ(tokens[i].kind, expected[i]) << "token " << i;
}

TEST(LexerTest, Comments)
{
    auto tokens = lex("a // line comment\n b /* block\n comment */ c");
    EXPECT_EQ(tokens[0].text, "a");
    EXPECT_EQ(tokens[1].text, "b");
    EXPECT_EQ(tokens[2].text, "c");
    EXPECT_EQ(tokens[3].kind, Tok::eof);
}

TEST(LexerTest, LineNumbers)
{
    auto tokens = lex("a\nb\n  c");
    EXPECT_EQ(tokens[0].loc.line, 1u);
    EXPECT_EQ(tokens[1].loc.line, 2u);
    EXPECT_EQ(tokens[2].loc.line, 3u);
    EXPECT_EQ(tokens[2].loc.column, 3u);
}

TEST(LexerTest, IncludeIgnored)
{
    auto tokens = lex("#include <stdio.h>\nint x;");
    EXPECT_EQ(tokens[0].kind, Tok::kwInt);
}

TEST(LexerTest, ObjectMacro)
{
    auto tokens = lex("#define SIZE 10\nint a[SIZE];");
    // SIZE expands to the literal 10.
    bool found = false;
    for (const auto &tok : tokens) {
        if (tok.kind == Tok::intLiteral && tok.intValue == 10)
            found = true;
        EXPECT_NE(tok.text, "SIZE");
    }
    EXPECT_TRUE(found);
}

TEST(LexerTest, MultiTokenMacro)
{
    auto tokens = lex("#define EXPR (1 + 2)\nEXPR");
    Tok expected[] = {Tok::lparen, Tok::intLiteral, Tok::plus,
                      Tok::intLiteral, Tok::rparen, Tok::eof};
    for (size_t i = 0; i < std::size(expected); i++)
        EXPECT_EQ(tokens[i].kind, expected[i]);
}

TEST(LexerTest, FunctionLikeMacroRejected)
{
    DiagnosticEngine diags;
    lex("#define MAX(a,b) ((a)>(b)?(a):(b))\n", &diags);
    EXPECT_TRUE(diags.hasErrors());
}

TEST(LexerTest, UnknownDirectiveRejected)
{
    DiagnosticEngine diags;
    lex("#pragma once\n", &diags);
    EXPECT_TRUE(diags.hasErrors());
}

TEST(LexerTest, UnterminatedStringReported)
{
    DiagnosticEngine diags;
    lex("\"abc\n", &diags);
    EXPECT_TRUE(diags.hasErrors());
}

TEST(LexerTest, UnterminatedBlockCommentReported)
{
    DiagnosticEngine diags;
    lex("/* never closed", &diags);
    EXPECT_TRUE(diags.hasErrors());
}

TEST(LexerTest, UnexpectedCharacterReported)
{
    DiagnosticEngine diags;
    auto tokens = lex("a $ b", &diags);
    EXPECT_TRUE(diags.hasErrors());
    // Lexing continues after the bad character.
    EXPECT_EQ(tokens[0].text, "a");
    EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, AlwaysEndsWithEof)
{
    auto tokens = lex("");
    ASSERT_EQ(tokens.size(), 1u);
    EXPECT_EQ(tokens[0].kind, Tok::eof);
}

} // namespace
} // namespace sulong
