/**
 * @file
 * Daemon-stack tests: protocol framing, admission control and
 * backpressure, per-job fault isolation, drain semantics, and the
 * end-to-end socket path (including deliberately broken clients and
 * injected daemon-side faults). Transport-free properties are tested
 * against AnalysisService directly — admission decisions are
 * synchronous there, so the tests are deterministic by construction.
 */

#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "test_util.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/client.h"
#include "service/server.h"
#include "support/fault.h"

namespace sulong::service
{
namespace
{

const char *kCleanSource = R"(
#include <stdio.h>
int main(void) {
    int total = 0;
    for (int i = 1; i <= 10; i++) total += i;
    printf("total=%d\n", total);
    return 0;
}
)";

const char *kBugSource = R"(
int main(void) {
    int buf[4];
    buf[4] = 1;
    return 0;
}
)";

const char *kSpinSource = "int main(void) { for (;;) { } return 0; }\n";

std::string
makeSocketPath(const char *tag)
{
    return "/tmp/ms_svc_" + std::to_string(::getpid()) + "_" + tag +
        ".sock";
}

JobRequest
cleanRequest()
{
    JobRequest request;
    request.source = kCleanSource;
    return request;
}

FaultInjector::Rule
prefixRule(const char *prefix, FaultInjector::Action action,
           double probability = 1.0, unsigned delay_ms = 0)
{
    FaultInjector::Rule rule;
    rule.site = prefix;
    rule.sitePrefix = true;
    rule.action = action;
    rule.probability = probability;
    rule.delayMs = delay_ms;
    return rule;
}

// --- protocol ---------------------------------------------------------

TEST(ProtocolTest, FrameSurvivesBytewiseDelivery)
{
    std::string bytes = encodeFrame(FrameType::jobRequest, "hello");
    FrameReader reader;
    Frame frame;
    for (char c : bytes) {
        ASSERT_EQ(reader.next(&frame), DecodeStatus::needMore);
        reader.feed(std::string_view(&c, 1));
    }
    ASSERT_EQ(reader.next(&frame), DecodeStatus::frame);
    EXPECT_EQ(frame.type, FrameType::jobRequest);
    EXPECT_EQ(frame.payload, "hello");
    EXPECT_EQ(reader.next(&frame), DecodeStatus::needMore);
}

TEST(ProtocolTest, TwoFramesInOneChunk)
{
    FrameReader reader;
    reader.feed(encodeFrame(FrameType::healthRequest, "") +
                encodeFrame(FrameType::jobResponse, "{}"));
    Frame frame;
    ASSERT_EQ(reader.next(&frame), DecodeStatus::frame);
    EXPECT_EQ(frame.type, FrameType::healthRequest);
    ASSERT_EQ(reader.next(&frame), DecodeStatus::frame);
    EXPECT_EQ(frame.type, FrameType::jobResponse);
    EXPECT_EQ(frame.payload, "{}");
}

TEST(ProtocolTest, GarbageAndOversizedAndUnknownTypeArePoisonous)
{
    {
        FrameReader reader;
        reader.feed("GARBAGE!");
        Frame frame;
        EXPECT_EQ(reader.next(&frame), DecodeStatus::badMagic);
        // Sticky: feeding more does not resynchronize.
        reader.feed(encodeFrame(FrameType::healthRequest, ""));
        EXPECT_EQ(reader.next(&frame), DecodeStatus::badMagic);
    }
    {
        FrameReader reader(16);
        reader.feed(encodeFrame(FrameType::jobRequest,
                                std::string(17, 'x')));
        Frame frame;
        EXPECT_EQ(reader.next(&frame), DecodeStatus::oversized);
    }
    {
        std::string bytes = encodeFrame(FrameType::jobRequest, "");
        bytes[2] = 99; // undefined type
        FrameReader reader;
        reader.feed(bytes);
        Frame frame;
        EXPECT_EQ(reader.next(&frame), DecodeStatus::badType);
    }
}

TEST(ProtocolTest, JobRequestRoundTrips)
{
    JobRequest request;
    request.tenant = "team-a";
    request.tool = "asan";
    request.optLevel = 3;
    request.source = "int main(void) { return 7; }";
    request.args = {"x", "quote\"arg"};
    request.stdinData = "line\n";
    request.analyze = true;
    request.maxSteps = 1000;
    request.deadlineMs = 250;

    obs::JsonValue doc;
    std::string error;
    ASSERT_TRUE(obs::parseJson(encodeJobRequest(request), &doc, &error))
        << error;
    JobRequest decoded;
    ASSERT_TRUE(decodeJobRequest(doc, &decoded, &error)) << error;
    EXPECT_EQ(decoded.tenant, "team-a");
    EXPECT_EQ(decoded.tool, "asan");
    EXPECT_EQ(decoded.optLevel, 3);
    EXPECT_EQ(decoded.source, request.source);
    EXPECT_EQ(decoded.args, request.args);
    EXPECT_EQ(decoded.stdinData, "line\n");
    EXPECT_TRUE(decoded.analyze);
    EXPECT_EQ(decoded.maxSteps, 1000u);
    EXPECT_EQ(decoded.deadlineMs, 250u);
}

TEST(ProtocolTest, DecodeRejectsBadSchemaToolAndTypes)
{
    auto decode = [](const std::string &text) {
        obs::JsonValue doc;
        std::string error;
        EXPECT_TRUE(obs::parseJson(text, &doc, &error)) << error;
        JobRequest request;
        return decodeJobRequest(doc, &request, &error);
    };
    EXPECT_FALSE(decode("{}"));
    EXPECT_FALSE(decode("{\"schema\":\"msulong.job/v2\"}"));
    EXPECT_FALSE(decode(
        "{\"schema\":\"msulong.job/v1\",\"tool\":\"gdb\","
        "\"source\":\"\"}"));
    EXPECT_FALSE(decode("{\"schema\":\"msulong.job/v1\"}")); // no source
    EXPECT_FALSE(decode(
        "{\"schema\":\"msulong.job/v1\",\"source\":\"\",\"args\":[1]}"));
    EXPECT_TRUE(decode(
        "{\"schema\":\"msulong.job/v1\",\"source\":\"int main(){}\"}"));
}

TEST(ProtocolTest, ErrorPayloadIsValidJsonWithOptionalRetry)
{
    obs::JsonValue doc;
    std::string error;
    ASSERT_TRUE(obs::parseJson(
        encodeErrorPayload(ErrorInfo{"overloaded", "queue full", 75}),
        &doc, &error))
        << error;
    EXPECT_EQ(doc.stringAt("code"), "overloaded");
    EXPECT_EQ(doc.uintAt("retry_after_ms"), 75u);
    ASSERT_TRUE(obs::parseJson(
        encodeErrorPayload(ErrorInfo{"draining", "bye", 0}), &doc,
        &error));
    EXPECT_EQ(doc.find("retry_after_ms"), nullptr);
}

// --- admission control (transport-free, fully deterministic) ----------

TEST(ServiceAdmissionTest, GlobalBoundRejectsWithRetryHint)
{
    FaultInjector faults;
    faults.addRule(prefixRule("service.job/",
                              FaultInjector::Action::delay, 1.0, 300));
    ServiceConfig config;
    config.workers = 1;
    config.queueCapacity = 2;
    config.tenantCapacity = 2;
    config.faults = &faults;
    AnalysisService service(config);

    std::atomic<int> done{0};
    auto count = [&done](const JobOutcome &) { done++; };
    EXPECT_EQ(service.submit(cleanRequest(), count),
              AdmitStatus::accepted);
    EXPECT_EQ(service.submit(cleanRequest(), count),
              AdmitStatus::accepted);
    uint64_t retry_after = 0;
    EXPECT_EQ(service.submit(cleanRequest(), count, &retry_after),
              AdmitStatus::overloadedGlobal);
    EXPECT_GT(retry_after, 0u);
    service.drain(30000);
    EXPECT_EQ(done.load(), 2);
}

TEST(ServiceAdmissionTest, TenantShareRejectsOneTenantNotAll)
{
    FaultInjector faults;
    faults.addRule(prefixRule("service.job/",
                              FaultInjector::Action::delay, 1.0, 300));
    ServiceConfig config;
    config.workers = 1;
    config.queueCapacity = 8;
    config.tenantCapacity = 1;
    config.faults = &faults;
    AnalysisService service(config);

    std::atomic<int> done{0};
    auto count = [&done](const JobOutcome &) { done++; };
    JobRequest loud = cleanRequest();
    loud.tenant = "loud";
    JobRequest other = cleanRequest();
    other.tenant = "other";

    EXPECT_EQ(service.submit(loud, count), AdmitStatus::accepted);
    uint64_t retry_after = 0;
    EXPECT_EQ(service.submit(loud, count, &retry_after),
              AdmitStatus::overloadedTenant);
    EXPECT_GT(retry_after, 0u);
    // A different tenant is still admitted: degradation is per tenant.
    EXPECT_EQ(service.submit(other, count), AdmitStatus::accepted);
    service.drain(30000);
    EXPECT_EQ(done.load(), 2);
}

TEST(ServiceAdmissionTest, DrainingRejectsAndOversizedSourceIsInvalid)
{
    ServiceConfig config;
    config.workers = 1;
    config.maxSourceBytes = 64;
    AnalysisService service(config);
    auto ignore = [](const JobOutcome &) {};

    JobRequest big = cleanRequest();
    big.source.assign(65, 'x');
    EXPECT_EQ(service.submit(big, ignore), AdmitStatus::invalid);

    service.beginDrain();
    JobRequest tiny;
    tiny.source = "int main(void) { return 0; }"; // under the 64B cap
    EXPECT_EQ(service.submit(tiny, ignore), AdmitStatus::draining);
    service.drain(1000);
}

TEST(ServiceLimitsTest, RequestCannotEscapeTheConfiguredCeiling)
{
    ServiceConfig config;
    config.workers = 1;
    config.limitCeiling.maxSteps = 20000;
    AnalysisService service(config);

    JobRequest request;
    request.source = kSpinSource;
    request.maxSteps = 0; // "unlimited" — must clamp to the ceiling
    JobOutcome outcome;
    std::atomic<bool> got{false};
    ASSERT_EQ(service.submit(request,
                             [&](const JobOutcome &o) {
                                 outcome = o;
                                 got = true;
                             }),
              AdmitStatus::accepted);
    service.drain(30000);
    ASSERT_TRUE(got.load());
    EXPECT_EQ(outcome.result.termination, TerminationKind::stepLimit);
}

TEST(ServiceChaosTest, EveryInjectedJobFaultAnswersExactlyOnce)
{
    FaultInjector faults;
    faults.addRule(
        prefixRule("service.job/", FaultInjector::Action::hostException));
    ServiceConfig config;
    config.workers = 2;
    config.faults = &faults;
    AnalysisService service(config);

    std::atomic<int> done{0};
    std::atomic<int> host_faults{0};
    for (int i = 0; i < 6; i++) {
        ASSERT_EQ(service.submit(cleanRequest(),
                                 [&](const JobOutcome &outcome) {
                                     done++;
                                     if (outcome.result.termination ==
                                         TerminationKind::hostFault)
                                         host_faults++;
                                 }),
                  AdmitStatus::accepted);
    }
    service.drain(30000);
    // Exactly one structured callback per admitted job, every one a
    // hostFault (the injected exception), none lost, none doubled.
    EXPECT_EQ(done.load(), 6);
    EXPECT_EQ(host_faults.load(), 6);
    EXPECT_EQ(faults.visitsWithPrefix("service.job/"),
              faults.firingsWithPrefix("service.job/"));
}

// --- socket end to end ------------------------------------------------

TEST(ServiceServerTest, JobHealthAndBugRoundTrip)
{
    ServiceConfig config;
    config.workers = 2;
    ServerOptions options;
    options.socketPath = makeSocketPath("basic");
    ServiceServer server(config, options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    ServiceClient client;
    ASSERT_TRUE(client.connect(options.socketPath, &error)) << error;

    Frame reply;
    ASSERT_TRUE(client.submitJob(cleanRequest(), &reply, &error)) << error;
    ASSERT_EQ(reply.type, FrameType::jobResponse);
    obs::JsonValue doc;
    ASSERT_TRUE(obs::parseJson(reply.payload, &doc, &error)) << error;
    EXPECT_EQ(doc.stringAt("schema"), "msulong.result/v1");
    EXPECT_EQ(doc.stringAt("termination"), "normal");
    EXPECT_EQ(doc.stringAt("output"), "total=55\n");
    EXPECT_EQ(doc.find("bug"), nullptr);

    JobRequest bug;
    bug.source = kBugSource;
    ASSERT_TRUE(client.submitJob(bug, &reply, &error)) << error;
    ASSERT_EQ(reply.type, FrameType::jobResponse);
    ASSERT_TRUE(obs::parseJson(reply.payload, &doc, &error)) << error;
    const obs::JsonValue *bug_doc = doc.find("bug");
    ASSERT_NE(bug_doc, nullptr);
    EXPECT_EQ(bug_doc->stringAt("kind"), "out-of-bounds");

    obs::JsonValue health;
    ASSERT_TRUE(client.health(&health, &error)) << error;
    EXPECT_EQ(health.stringAt("schema"), "msulong.health/v1");
    EXPECT_FALSE(health.boolAt("draining", true));
    EXPECT_EQ(health.uintAt("workers"), 2u);

    server.requestDrain();
    EXPECT_EQ(server.runUntilDrained(), 0);
}

TEST(ServiceServerTest, CompileErrorComesBackStructured)
{
    ServiceConfig config;
    config.workers = 1;
    ServerOptions options;
    options.socketPath = makeSocketPath("cerr");
    ServiceServer server(config, options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    ServiceClient client;
    ASSERT_TRUE(client.connect(options.socketPath, &error)) << error;
    JobRequest request;
    request.source = "int main(void) { this does not compile }";
    Frame reply;
    ASSERT_TRUE(client.submitJob(request, &reply, &error)) << error;
    ASSERT_EQ(reply.type, FrameType::jobResponse);
    obs::JsonValue doc;
    ASSERT_TRUE(obs::parseJson(reply.payload, &doc, &error)) << error;
    const obs::JsonValue *bug = doc.find("bug");
    ASSERT_NE(bug, nullptr);
    EXPECT_EQ(bug->stringAt("kind"), "engine-error");
}

TEST(ServiceServerTest, GarbageFrameEarnsErrorThenCloseDaemonSurvives)
{
    ServiceConfig config;
    config.workers = 1;
    ServerOptions options;
    options.socketPath = makeSocketPath("garbage");
    ServiceServer server(config, options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    ServiceClient bad;
    ASSERT_TRUE(bad.connect(options.socketPath, &error)) << error;
    ASSERT_TRUE(bad.sendRaw("NOT A FRAME AT ALL!!", &error)) << error;
    Frame reply;
    ASSERT_TRUE(bad.readFrame(&reply, &error)) << error;
    ASSERT_EQ(reply.type, FrameType::error);
    obs::JsonValue doc;
    ASSERT_TRUE(obs::parseJson(reply.payload, &doc, &error)) << error;
    EXPECT_EQ(doc.stringAt("code"), "malformed-frame");
    // The poisoned connection closes...
    EXPECT_FALSE(bad.readFrame(&reply, &error, 5000));

    // ...but the daemon keeps serving fresh clients.
    ServiceClient good;
    ASSERT_TRUE(good.connect(options.socketPath, &error)) << error;
    ASSERT_TRUE(good.submitJob(cleanRequest(), &reply, &error)) << error;
    EXPECT_EQ(reply.type, FrameType::jobResponse);
}

TEST(ServiceServerTest, OversizedFrameEarnsStructuredError)
{
    ServiceConfig config;
    config.workers = 1;
    ServerOptions options;
    options.socketPath = makeSocketPath("oversize");
    options.maxFrameBytes = 4096;
    ServiceServer server(config, options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    ServiceClient client;
    ASSERT_TRUE(client.connect(options.socketPath, &error)) << error;
    ASSERT_TRUE(client.sendRaw(
        encodeFrame(FrameType::jobRequest, std::string(5000, 'x')),
        &error));
    Frame reply;
    ASSERT_TRUE(client.readFrame(&reply, &error)) << error;
    ASSERT_EQ(reply.type, FrameType::error);
    obs::JsonValue doc;
    ASSERT_TRUE(obs::parseJson(reply.payload, &doc, &error)) << error;
    EXPECT_EQ(doc.stringAt("code"), "oversized-frame");
}

TEST(ServiceServerTest, TruncatedFrameThenEofIsQuietAndHarmless)
{
    ServiceConfig config;
    config.workers = 1;
    ServerOptions options;
    options.socketPath = makeSocketPath("trunc");
    ServiceServer server(config, options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    {
        ServiceClient cut;
        ASSERT_TRUE(cut.connect(options.socketPath, &error)) << error;
        std::string bytes =
            encodeFrame(FrameType::jobRequest, std::string(100, 'x'));
        ASSERT_TRUE(cut.sendRaw(bytes.substr(0, 20), &error)) << error;
        cut.close(); // EOF mid-frame
    }
    ServiceClient client;
    ASSERT_TRUE(client.connect(options.socketPath, &error)) << error;
    Frame reply;
    ASSERT_TRUE(client.submitJob(cleanRequest(), &reply, &error)) << error;
    EXPECT_EQ(reply.type, FrameType::jobResponse);
}

TEST(ServiceServerTest, BadJsonRequestKeepsTheConnectionAlive)
{
    ServiceConfig config;
    config.workers = 1;
    ServerOptions options;
    options.socketPath = makeSocketPath("badjson");
    ServiceServer server(config, options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    ServiceClient client;
    ASSERT_TRUE(client.connect(options.socketPath, &error)) << error;
    ASSERT_TRUE(client.sendFrame(FrameType::jobRequest, "{oops", &error));
    Frame reply;
    ASSERT_TRUE(client.readFrame(&reply, &error)) << error;
    ASSERT_EQ(reply.type, FrameType::error);
    obs::JsonValue doc;
    ASSERT_TRUE(obs::parseJson(reply.payload, &doc, &error)) << error;
    EXPECT_EQ(doc.stringAt("code"), "bad-request");

    // Framing is intact, so the same connection still serves jobs.
    ASSERT_TRUE(client.submitJob(cleanRequest(), &reply, &error)) << error;
    EXPECT_EQ(reply.type, FrameType::jobResponse);
}

TEST(ServiceServerTest, WatchdogCancelsARunawayJob)
{
    ServiceConfig config;
    config.workers = 1;
    config.watchdogMs = 150;
    ServerOptions options;
    options.socketPath = makeSocketPath("watchdog");
    ServiceServer server(config, options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    ServiceClient client;
    ASSERT_TRUE(client.connect(options.socketPath, &error)) << error;
    JobRequest spin;
    spin.source = kSpinSource;
    Frame reply;
    ASSERT_TRUE(client.submitJob(spin, &reply, &error, 60000)) << error;
    ASSERT_EQ(reply.type, FrameType::jobResponse);
    obs::JsonValue doc;
    ASSERT_TRUE(obs::parseJson(reply.payload, &doc, &error)) << error;
    EXPECT_EQ(doc.stringAt("termination"), "cancelled");
}

TEST(ServiceServerTest, DrainAnswersEveryInFlightJobThenClosesSockets)
{
    FaultInjector faults;
    faults.addRule(prefixRule("service.job/",
                              FaultInjector::Action::delay, 1.0, 400));
    ServiceConfig config;
    config.workers = 1;
    config.faults = &faults;
    ServerOptions options;
    options.socketPath = makeSocketPath("drain");
    options.drainGraceMs = 100;
    ServiceServer server(config, options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    ServiceClient client;
    ASSERT_TRUE(client.connect(options.socketPath, &error)) << error;
    // Pipeline three requests without reading any response.
    std::string payload = encodeJobRequest(cleanRequest());
    for (int i = 0; i < 3; i++)
        ASSERT_TRUE(
            client.sendFrame(FrameType::jobRequest, payload, &error));
    // Give the daemon a moment to admit at least the first one.
    for (int spin = 0; spin < 200 && server.service().pending() == 0;
         spin++)
        ::usleep(5000);
    ASSERT_GT(server.service().pending(), 0u);

    server.requestDrain();
    EXPECT_EQ(server.runUntilDrained(), 0);

    // Sockets closed last: every admitted job's response (finished or
    // cancelled) and every drain rejection is already buffered for us.
    int structured = 0;
    Frame reply;
    while (client.readFrame(&reply, &error, 2000)) {
        obs::JsonValue doc;
        ASSERT_TRUE(obs::parseJson(reply.payload, &doc, &error)) << error;
        if (reply.type == FrameType::jobResponse) {
            const std::string &termination = doc.stringAt("termination");
            EXPECT_TRUE(termination == "normal" ||
                        termination == "cancelled")
                << termination;
        } else {
            ASSERT_EQ(reply.type, FrameType::error);
            EXPECT_EQ(doc.stringAt("code"), "draining");
        }
        structured++;
    }
    EXPECT_EQ(structured, 3);
    EXPECT_EQ(server.service().pending(), 0u);
}

TEST(ServiceServerTest, ClientDrainRequestIsAcknowledgedAndHonored)
{
    ServiceConfig config;
    config.workers = 1;
    ServerOptions options;
    options.socketPath = makeSocketPath("drainreq");
    ServiceServer server(config, options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    ServiceClient client;
    ASSERT_TRUE(client.connect(options.socketPath, &error)) << error;
    ASSERT_TRUE(client.requestDrain(&error)) << error;
    EXPECT_EQ(server.runUntilDrained(), 0);
    EXPECT_TRUE(server.service().draining());
}

TEST(ServiceServerTest, InjectedDaemonFaultsDegradeOneClientEach)
{
    FaultInjector faults(/*seed=*/7);
    faults.addRule(prefixRule("service.job/",
                              FaultInjector::Action::hostException, 0.4));
    faults.addRule(prefixRule("service.write/",
                              FaultInjector::Action::hostException, 0.25));
    ServiceConfig config;
    config.workers = 2;
    config.faults = &faults;
    ServerOptions options;
    options.socketPath = makeSocketPath("chaos");
    ServiceServer server(config, options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // One connection per job (a write fault costs its connection), and
    // every single submission must earn exactly one structured frame.
    int responses = 0;
    int error_frames = 0;
    for (int i = 0; i < 24; i++) {
        ServiceClient client;
        ASSERT_TRUE(client.connect(options.socketPath, &error)) << error;
        Frame reply;
        ASSERT_TRUE(client.submitJob(cleanRequest(), &reply, &error))
            << "job " << i << ": " << error;
        if (reply.type == FrameType::jobResponse)
            responses++;
        else if (reply.type == FrameType::error)
            error_frames++;
    }
    EXPECT_EQ(responses + error_frames, 24);

    // The daemon took every fault in stride: still healthy, drains 0.
    ServiceClient client;
    ASSERT_TRUE(client.connect(options.socketPath, &error)) << error;
    obs::JsonValue health;
    ASSERT_TRUE(client.health(&health, &error)) << error;
    server.requestDrain();
    EXPECT_EQ(server.runUntilDrained(), 0);
}

TEST(ServiceServerTest, ResponsePayloadsAreIdenticalAcrossWorkerCounts)
{
    auto run = [](unsigned workers, const char *tag) {
        ServiceConfig config;
        config.workers = workers;
        ServerOptions options;
        options.socketPath = makeSocketPath(tag);
        ServiceServer server(config, options);
        std::string error;
        EXPECT_TRUE(server.start(&error)) << error;
        ServiceClient client;
        EXPECT_TRUE(client.connect(options.socketPath, &error)) << error;

        std::vector<JobRequest> requests;
        requests.push_back(cleanRequest());
        JobRequest bug;
        bug.source = kBugSource;
        requests.push_back(bug);
        JobRequest limited;
        limited.source = kSpinSource;
        limited.maxSteps = 50000;
        requests.push_back(limited);
        JobRequest analyzed = cleanRequest();
        analyzed.analyze = true;
        requests.push_back(analyzed);

        std::vector<std::string> payloads;
        for (const JobRequest &request : requests) {
            Frame reply;
            EXPECT_TRUE(client.submitJob(request, &reply, &error))
                << error;
            EXPECT_EQ(reply.type, FrameType::jobResponse);
            payloads.push_back(reply.payload);
        }
        return payloads;
    };
    // Sequential submissions assign the same job ids, and responses
    // carry no wall-clock fields, so the bytes must match exactly.
    EXPECT_EQ(run(1, "det1"), run(8, "det8"));
}

// --- observability ----------------------------------------------------

TEST(ProtocolTest, RejectedFramesAreCountedByReason)
{
    obs::setMetricsEnabled(true);
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    obs::Counter &malformed =
        reg.counter("service.frames.rejected.malformed");
    obs::Counter &oversized =
        reg.counter("service.frames.rejected.oversized");
    obs::Counter &poisoned =
        reg.counter("service.frames.rejected.poisoned");
    uint64_t malformed0 = malformed.value();
    uint64_t oversized0 = oversized.value();
    uint64_t poisoned0 = poisoned.value();

    FrameReader garbage;
    garbage.feed("not-a-frame-at-all");
    Frame out;
    EXPECT_EQ(garbage.next(&out), DecodeStatus::badMagic);
    EXPECT_EQ(malformed.value(), malformed0 + 1);
    // Bytes after the poison are discarded and counted once per feed.
    size_t buffered_at_poison = garbage.buffered();
    garbage.feed("more bytes");
    EXPECT_EQ(poisoned.value(), poisoned0 + 1);
    EXPECT_EQ(garbage.buffered(), buffered_at_poison);

    FrameReader small(/*max_frame_bytes=*/16);
    small.feed(encodeFrame(FrameType::jobRequest,
                           std::string(64, 'x')));
    EXPECT_EQ(small.next(&out), DecodeStatus::oversized);
    EXPECT_EQ(oversized.value(), oversized0 + 1);

    obs::setMetricsEnabled(false);
}

TEST(ServiceServerTest, TraceContextPropagatesIntoDaemonSpans)
{
    obs::TraceCollector::global().drain();
    obs::setTracingEnabled(true);
    ServiceConfig config;
    config.workers = 1;
    ServerOptions options;
    options.socketPath = makeSocketPath("trace");
    ServiceServer server(config, options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    ServiceClient client;
    ASSERT_TRUE(client.connect(options.socketPath, &error)) << error;

    Frame reply;
    ASSERT_TRUE(client.submitTracedJob(cleanRequest(), &reply, &error))
        << error;
    EXPECT_EQ(reply.type, FrameType::jobResponse);
    // The job response itself carries no trace fields — identity
    // travels out-of-band through the stats frame only.
    EXPECT_EQ(reply.payload.find("trace"), std::string::npos);

    // The daemon's worker may still be closing its spans when the
    // reply lands; poll the stats frame until they appear.
    StatsRequest stats_request;
    stats_request.traceId = client.traceId();
    std::string client_span;
    bool adopted = false;
    for (int i = 0; i < 100 && !adopted; i++) {
        obs::JsonValue stats;
        ASSERT_TRUE(client.stats(stats_request, &stats, &error)) << error;
        const obs::JsonValue *events = stats.find("trace_events");
        ASSERT_NE(events, nullptr);
        for (const obs::JsonValue &event : events->elements()) {
            if (event.stringAt("name") == "client.submit")
                client_span = event.stringAt("span_id");
        }
        for (const obs::JsonValue &event : events->elements()) {
            if (event.stringAt("name") == "service.job" &&
                !client_span.empty() &&
                event.stringAt("parent_span") == client_span)
                adopted = true;
        }
        if (!adopted)
            ::usleep(10000);
    }
    // The client's span id is the daemon span's PARENT: one trace,
    // two processes, joined at the submit seam.
    EXPECT_FALSE(client_span.empty());
    EXPECT_TRUE(adopted);

    obs::setTracingEnabled(false);
    obs::TraceCollector::global().drain();
    server.requestDrain();
    EXPECT_EQ(server.runUntilDrained(), 0);
}

TEST(ServiceServerTest, ResponsePayloadsIdenticalWithTracingOnOrOff)
{
    auto run = [](unsigned workers, const char *tag, bool traced) {
        if (traced)
            obs::setTracingEnabled(true);
        ServiceConfig config;
        config.workers = workers;
        ServerOptions options;
        options.socketPath = makeSocketPath(tag);
        ServiceServer server(config, options);
        std::string error;
        EXPECT_TRUE(server.start(&error)) << error;
        ServiceClient client;
        EXPECT_TRUE(client.connect(options.socketPath, &error)) << error;

        std::vector<std::string> payloads;
        for (int i = 0; i < 3; i++) {
            JobRequest request = cleanRequest();
            if (i == 1)
                request.source = kBugSource;
            Frame reply;
            bool sent = traced
                ? client.submitTracedJob(request, &reply, &error)
                : client.submitJob(request, &reply, &error);
            EXPECT_TRUE(sent) << error;
            EXPECT_EQ(reply.type, FrameType::jobResponse);
            payloads.push_back(reply.payload);
        }
        server.requestDrain();
        EXPECT_EQ(server.runUntilDrained(), 0);
        if (traced) {
            obs::setTracingEnabled(false);
            obs::TraceCollector::global().drain();
        }
        return payloads;
    };
    // The tentpole's determinism gate: result payloads are bytewise
    // unaffected by tracing and by the worker count.
    std::vector<std::string> plain = run(1, "tron1", false);
    EXPECT_EQ(plain, run(1, "tron2", true));
    EXPECT_EQ(plain, run(8, "tron3", true));
}

TEST(ServiceServerTest, PostmortemOnJobDeathDroppedOnSuccess)
{
    ServiceConfig config;
    config.workers = 1;
    config.postmortemKeep = 4;
    ServerOptions options;
    options.socketPath = makeSocketPath("postmortem");
    ServiceServer server(config, options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    ServiceClient client;
    ASSERT_TRUE(client.connect(options.socketPath, &error)) << error;

    // A clean job leaves no postmortem behind.
    Frame reply;
    ASSERT_TRUE(client.submitJob(cleanRequest(), &reply, &error)) << error;
    ASSERT_EQ(reply.type, FrameType::jobResponse);
    EXPECT_TRUE(server.service().recentPostmortems().empty());

    // A detected bug is a death: the flight recorder is dumped.
    JobRequest bug = cleanRequest();
    bug.source = kBugSource;
    ASSERT_TRUE(client.submitJob(bug, &reply, &error)) << error;
    std::vector<std::string> postmortems =
        server.service().recentPostmortems();
    ASSERT_EQ(postmortems.size(), 1u);
    obs::JsonValue doc;
    ASSERT_TRUE(obs::parseJson(postmortems[0], &doc, &error)) << error;
    EXPECT_EQ(doc.stringAt("schema"), "msulong.postmortem/v1");
    EXPECT_EQ(doc.stringAt("bug_kind"), "out-of-bounds");
    EXPECT_EQ(doc.stringAt("tenant"), "default");
    const obs::JsonValue *events = doc.find("events");
    ASSERT_NE(events, nullptr);
    ASSERT_FALSE(events->elements().empty());
    bool sawDone = false;
    for (const obs::JsonValue &event : events->elements())
        sawDone |= event.stringAt("name") == "job.done";
    EXPECT_TRUE(sawDone);

    server.requestDrain();
    EXPECT_EQ(server.runUntilDrained(), 0);
}

TEST(ServiceServerTest, PostmortemRecordsInjectedFaultFirings)
{
    FaultInjector faults(/*seed=*/3);
    faults.addRule(
        prefixRule("service.job/", FaultInjector::Action::hostException));
    ServiceConfig config;
    config.workers = 1;
    config.faults = &faults;
    ServerOptions options;
    options.socketPath = makeSocketPath("pmfault");
    ServiceServer server(config, options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    ServiceClient client;
    ASSERT_TRUE(client.connect(options.socketPath, &error)) << error;

    Frame reply;
    ASSERT_TRUE(client.submitJob(cleanRequest(), &reply, &error)) << error;
    std::vector<std::string> postmortems =
        server.service().recentPostmortems();
    ASSERT_EQ(postmortems.size(), 1u);
    obs::JsonValue doc;
    ASSERT_TRUE(obs::parseJson(postmortems[0], &doc, &error)) << error;
    EXPECT_GE(doc.uintAt("fault_firings"), 1u);
    bool sawFault = false;
    for (const obs::JsonValue &event : doc.find("events")->elements())
        sawFault |= event.stringAt("name") == "job.host_fault";
    EXPECT_TRUE(sawFault);

    server.requestDrain();
    EXPECT_EQ(server.runUntilDrained(), 0);
}

TEST(ServiceServerTest, StatsFrameAnswersUnderLoadInBothFormats)
{
    obs::setMetricsEnabled(true);
    ServiceConfig config;
    config.workers = 2;
    ServerOptions options;
    options.socketPath = makeSocketPath("stats");
    ServiceServer server(config, options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    std::atomic<bool> stop{false};
    std::thread load([&options, &stop] {
        ServiceClient client;
        std::string err;
        if (!client.connect(options.socketPath, &err))
            return;
        while (!stop.load()) {
            Frame reply;
            if (!client.submitJob(cleanRequest(), &reply, &err))
                break;
        }
    });

    ServiceClient client;
    ASSERT_TRUE(client.connect(options.socketPath, &error)) << error;
    for (int i = 0; i < 10; i++) {
        StatsRequest request;
        obs::JsonValue stats;
        ASSERT_TRUE(client.stats(request, &stats, &error)) << error;
        EXPECT_EQ(stats.stringAt("schema"), "msulong.stats/v1");
        ASSERT_NE(stats.find("window"), nullptr);
        EXPECT_EQ(stats.find("window")->uintAt("window_ms"), 60000u);
        ASSERT_NE(stats.find("metrics"), nullptr);
        EXPECT_EQ(stats.find("metrics")->stringAt("schema"), "obs/v1");

        request.format = "prometheus";
        obs::JsonValue expo;
        ASSERT_TRUE(client.stats(request, &expo, &error)) << error;
        EXPECT_EQ(expo.stringAt("format"), "prometheus");
        EXPECT_NE(expo.stringAt("expo").find("# TYPE"),
                  std::string::npos);
    }
    // The sliding window saw the admissions the load generated.
    StatsRequest request;
    obs::JsonValue stats;
    ASSERT_TRUE(client.stats(request, &stats, &error)) << error;
    EXPECT_GT(stats.find("window")->uintAt("admitted"), 0u);

    stop.store(true);
    load.join();
    obs::setMetricsEnabled(false);
    server.requestDrain();
    EXPECT_EQ(server.runUntilDrained(), 0);
    obs::MetricsRegistry::global().reset();
}

} // namespace
} // namespace sulong::service
