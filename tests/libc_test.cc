/**
 * @file
 * Tests for the shipped libc (safe variant, executed on the managed
 * engine): string functions, conversion, qsort/bsearch, stdio — with
 * parameterized printf/strtol sweeps.
 */

#include "test_util.h"

#include "libc/libc_sources.h"

namespace sulong
{
namespace
{

using testutil::exitCodeOf;
using testutil::outputOf;

TEST(LibcMetaTest, BothVariantsCompile)
{
    for (LibcVariant variant :
         {LibcVariant::safe, LibcVariant::nativeOptimized}) {
        auto sources = libcSources(variant);
        sources.push_back(
            SourceFile{"<input>", "int main(void) { return 0; }"});
        CompileResult compiled = compileC(sources);
        EXPECT_TRUE(compiled.ok()) << compiled.errors;
    }
}

TEST(LibcMetaTest, AllAdvertisedFunctionsExist)
{
    auto sources = libcSources(LibcVariant::safe);
    sources.push_back(
        SourceFile{"<input>", "int main(void) { return 0; }"});
    CompileResult compiled = compileC(sources);
    ASSERT_TRUE(compiled.ok()) << compiled.errors;
    for (const std::string &name : libcFunctionNames()) {
        const Function *fn = compiled.module->findFunction(name);
        ASSERT_NE(fn, nullptr) << name;
        EXPECT_TRUE(!fn->isDeclaration() || fn->isIntrinsic()) << name;
    }
    // The paper supports 126 functions; we advertise a solid core.
    EXPECT_GE(libcFunctionNames().size(), 60u);
}

TEST(LibcStringTest, CopyAndCompareFamily)
{
    EXPECT_EQ(outputOf(R"(
int main(void) {
    char a[16];
    strncpy(a, "hello", 16); /* pads with NULs */
    printf("%s %d %d %d\n", a, a[6], strcmp(a, "hello"),
           strncmp("abcdef", "abcxyz", 3));
    char b[16];
    strcpy(b, "12");
    strncat(b, "3456789", 3);
    printf("%s\n", b);
    return 0;
})"), "hello 0 0 0\n12345\n");
}

TEST(LibcStringTest, SearchFamily)
{
    EXPECT_EQ(outputOf(R"(
int main(void) {
    const char *s = "find the needle here";
    printf("%s\n", strstr(s, "needle"));
    printf("%s\n", strchr(s, 't'));
    printf("%s\n", strrchr(s, 'h'));
    printf("%lu %lu\n", strspn("aabbcc", "ab"), strcspn("xyz,abc", ","));
    printf("%s\n", strpbrk("abcdef", "xd"));
    printf("%d\n", strstr(s, "absent") == 0);
    return 0;
})"), "needle here\nthe needle here\nhere\n4 3\ndef\n1\n");
}

TEST(LibcStringTest, StrtokSplitsInPlace)
{
    EXPECT_EQ(outputOf(R"(
int main(void) {
    char csv[32];
    strcpy(csv, ",,a,bb,,ccc,");
    char *tok = strtok(csv, ",");
    while (tok != 0) {
        printf("[%s]", tok);
        tok = strtok(0, ",");
    }
    printf("\n");
    return 0;
})"), "[a][bb][ccc]\n");
}

TEST(LibcStringTest, StrdupAllocatesCopy)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    char *copy = strdup("dup");
    int ok = strcmp(copy, "dup") == 0;
    copy[0] = 'D'; /* writable heap copy */
    free(copy);
    return ok;
})"), 1);
}

struct PrintfCase
{
    const char *source;
    const char *expected;
};

class PrintfSweep : public ::testing::TestWithParam<PrintfCase>
{
};

TEST_P(PrintfSweep, FormatsLikeC)
{
    const PrintfCase &c = GetParam();
    std::string src = std::string("int main(void) { printf(") + c.source +
        "); return 0; }";
    EXPECT_EQ(outputOf(src), c.expected) << c.source;
}

/** Stable test names (the default would print raw struct bytes). */
std::string
printfCaseName(const ::testing::TestParamInfo<PrintfCase> &info)
{
    return "case_" + std::to_string(info.index);
}

INSTANTIATE_TEST_SUITE_P(Formats, PrintfSweep, ::testing::Values(
    PrintfCase{R"("%d", 0)", "0"},
    PrintfCase{R"("%d", -2147483647)", "-2147483647"},
    PrintfCase{R"("%u", 4294967295u)", "4294967295"},
    PrintfCase{R"("%x", 48879)", "beef"},
    PrintfCase{R"("%X", 48879)", "BEEF"},
    PrintfCase{R"("%o", 64)", "100"},
    PrintfCase{R"("%ld", 9223372036854775807L)", "9223372036854775807"},
    PrintfCase{R"("%c", 65)", "A"},
    PrintfCase{R"("%s", "plain")", "plain"},
    PrintfCase{R"("%5s", "ab")", "   ab"},
    PrintfCase{R"("%-5s|", "ab")", "ab   |"},
    PrintfCase{R"("%.2s", "abcdef")", "ab"},
    PrintfCase{R"("%7.2f", 3.14159)", "   3.14"},
    PrintfCase{R"("%-7.2f|", 3.14159)", "3.14   |"},
    PrintfCase{R"("%+d %+d", 5, -5)", "+5 -5"},
    PrintfCase{R"("%03d", 7)", "007"},
    PrintfCase{R"("%f", 1.0)", "1.000000"},
    PrintfCase{R"("%.0f", 0.4)", "0"},
    // 0.0625 is exact in binary; glibc's round-half-even also prints 062.
    PrintfCase{R"("%.3f", -0.0625)", "-0.062"},
    PrintfCase{R"("%d%%", 9)", "9%"},
    PrintfCase{R"("%q", 1)", "%q"}  // unknown spec passes through
), printfCaseName);

TEST(LibcStdioTest, PutGetAndFprintf)
{
    ExecutionResult result = testutil::runManaged(R"(
int main(void) {
    fprintf(stderr, "err:%d\n", 1);
    fputs("out", stdout);
    fputc('!', stdout);
    putchar('\n');
    return 0;
})");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.output, "out!\n");
    EXPECT_EQ(result.errOutput, "err:1\n");
}

TEST(LibcStdioTest, FgetsStopsAtNewlineAndEof)
{
    EXPECT_EQ(outputOf(R"(
int main(void) {
    char buf[8];
    while (fgets(buf, 8, stdin) != 0)
        printf("<%s>", buf);
    return 0;
})", {}, "abcdefghij\nxy\n"),
              "<abcdefg><hij\n><xy\n>");
}

TEST(LibcStdioTest, ScanfMultipleConversions)
{
    EXPECT_EQ(outputOf(R"(
int main(void) {
    int a;
    char word[16];
    char c;
    scanf("%d %s %c", &a, word, &c);
    printf("%d|%s|%c\n", a, word, c);
    return 0;
})", {}, "  42  hello x"), "42|hello|x\n");
}

TEST(LibcStdioTest, ScanfStopsOnMismatch)
{
    EXPECT_EQ(outputOf(R"(
int main(void) {
    int a = -1, b = -1;
    int n = scanf("%d %d", &a, &b);
    printf("%d %d %d\n", n, a, b);
    return 0;
})", {}, "7 notanumber"), "1 7 -1\n");
}

TEST(LibcStdlibTest, StrtolSweep)
{
    EXPECT_EQ(outputOf(R"(
int main(void) {
    printf("%ld %ld %ld %ld %ld\n",
           strtol("123", 0, 10), strtol("-45", 0, 10),
           strtol("ff", 0, 16), strtol("0755", 0, 0),
           strtol("  +9", 0, 10));
    char *end;
    strtol("12ab", &end, 10);
    printf("%s\n", end);
    return 0;
})"), "123 -45 255 493 9\nab\n");
}

TEST(LibcStdlibTest, AbsAndRand)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    if (abs(-4) != 4 || labs(-40L) != 40)
        return 1;
    srand(123);
    for (int i = 0; i < 100; i++) {
        int r = rand();
        if (r < 0 || r > RAND_MAX)
            return 2;
    }
    return 0;
})"), 0);
}

TEST(LibcStdlibTest, QsortStability)
{
    // Not stable, but must sort correctly for duplicate-heavy input.
    EXPECT_EQ(outputOf(R"(
static int cmp(const void *a, const void *b) {
    return *(const int *)a - *(const int *)b;
}
int main(void) {
    int v[10] = {5, 5, 5, 1, 1, 9, 9, 0, 0, 5};
    qsort(v, 10, sizeof(int), cmp);
    for (int i = 0; i < 10; i++)
        printf("%d", v[i]);
    printf("\n");
    return 0;
})"), "0011555599\n");
}

TEST(LibcStdlibTest, QsortStructsBySize)
{
    EXPECT_EQ(outputOf(R"(
struct kv { int key; int value; };
static int by_key(const void *a, const void *b) {
    return ((const struct kv *)a)->key - ((const struct kv *)b)->key;
}
int main(void) {
    struct kv v[3] = {{3, 30}, {1, 10}, {2, 20}};
    qsort(v, 3, sizeof(struct kv), by_key);
    printf("%d%d%d\n", v[0].value, v[1].value, v[2].value);
    return 0;
})"), "102030\n");
}

TEST(LibcStdioTest, SscanfParsesFromString)
{
    EXPECT_EQ(outputOf(R"(
int main(void) {
    int a = 0;
    long b = 0;
    char word[16];
    int n = sscanf("10 -20 xyz", "%d %ld %s", &a, &b, word);
    printf("%d %d %ld %s\n", n, a, b, word);
    /* sscanf does not consume stdin. */
    int c = 0;
    scanf("%d", &c);
    printf("%d\n", c);
    return 0;
})", {}, "77"), "3 10 -20 xyz\n77\n");
}

TEST(LibcStdioTest, UngetcRoundTrip)
{
    EXPECT_EQ(outputOf(R"(
int main(void) {
    int c = getchar();
    ungetc(c, stdin);
    int again = getchar();
    printf("%c%c\n", c, again);
    return 0;
})", {}, "Q"), "QQ\n");
}

TEST(LibcStdioTest, PutcGetcAliases)
{
    ExecutionResult result = testutil::runManaged(R"(
int main(void) {
    putc('a', stdout);
    putc('!', stderr);
    int c = getc(stdin);
    putc(c, stdout);
    perror("oops");
    return 0;
})", {}, "z");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.output, "az");
    EXPECT_EQ(result.errOutput, "!oops: error\n");
}

TEST(LibcStdlibTest, StrtoulAndStrtod)
{
    EXPECT_EQ(outputOf(R"(
int main(void) {
    printf("%lu %lu\n", strtoul("4294967295", 0, 10),
           strtoul("ff", 0, 16));
    char *end;
    double d = strtod("2.5e2suffix", &end);
    printf("%.1f %s\n", d, end);
    printf("%ld %ld\n", atoll("-123"), llabs(-5L));
    return 0;
})"), "4294967295 255\n250.0 suffix\n-123 5\n");
}

TEST(LibcStringTest, CaseInsensitiveCompare)
{
    EXPECT_EQ(outputOf(R"(
int main(void) {
    printf("%d %d %d\n", strcasecmp("Hello", "hELLO"),
           strcasecmp("abc", "abd") < 0, strncasecmp("ABCxx", "abcyy", 3));
    char buf[4];
    buf[0] = 1; buf[1] = 2; buf[2] = 3; buf[3] = 4;
    bzero(buf, 4);
    printf("%d %lu %lu\n", buf[0] + buf[3], strnlen("abcdef", 3),
           strnlen("ab", 9));
    return 0;
})"), "0 1 0\n0 3 2\n");
}

TEST(LibcSafetyTest, SafeLibcFindsBugsInArguments)
{
    // The defining property of the paper's libc (P4): calls with bad
    // arguments are caught inside the interpreted implementation.
    ExecutionResult result = testutil::runManaged(R"(
int main(void) {
    char dst[4];
    strcpy(dst, "overlong input");
    return 0;
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::outOfBounds);
    EXPECT_EQ(result.bug.function, "strcpy");
}

TEST(LibcSafetyTest, MemsetBeyondObjectCaught)
{
    ExecutionResult result = testutil::runManaged(R"(
int main(void) {
    short vals[4];
    memset(vals, 0, 64);
    return 0;
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::outOfBounds);
    EXPECT_EQ(result.bug.function, "memset");
}

} // namespace
} // namespace sulong
