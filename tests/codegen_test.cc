/**
 * @file
 * Codegen/sema tests: C conversion rules, arithmetic semantics, lvalue
 * handling, structs, and the allocation-type hints — all checked by
 * executing on the managed engine.
 */

#include "test_util.h"

namespace sulong
{
namespace
{

using testutil::compileErrorsOf;
using testutil::exitCodeOf;
using testutil::outputOf;

TEST(CodegenTest, IntegerPromotionInArithmetic)
{
    // char + char computes in int: no i8 overflow.
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    char a = 100, b = 100;
    int sum = a + b;
    return sum == 200;
})"), 1);
}

TEST(CodegenTest, UnsignedDivisionAndRemainder)
{
    EXPECT_EQ(outputOf(R"(
int main(void) {
    unsigned int big = 0xFFFFFFF0u;
    printf("%u %u\n", big / 16, big % 16);
    int neg = -17;
    printf("%d %d\n", neg / 5, neg % 5);
    return 0;
})"), "268435455 0\n-3 -2\n");
}

TEST(CodegenTest, SignedToUnsignedComparison)
{
    // -1 compared against an unsigned converts to UINT_MAX.
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    int neg = -1;
    unsigned int one = 1;
    return neg > one; /* true in C! */
})"), 1);
}

TEST(CodegenTest, TruncationAndSignExtension)
{
    EXPECT_EQ(outputOf(R"(
int main(void) {
    long big = 0x1234567890L;
    int truncated = (int)big;
    char c = (char)0x1FF;
    short widened = c;
    printf("%d %d %d\n", truncated == 0x34567890, c, widened);
    return 0;
})"), "1 -1 -1\n");
}

TEST(CodegenTest, FloatIntConversions)
{
    EXPECT_EQ(outputOf(R"(
int main(void) {
    double d = 3.99;
    int i = (int)d;          /* truncates toward zero */
    double back = i;
    float f = 1.5f;
    double wide = f;
    printf("%d %.1f %.1f\n", i, back, wide);
    unsigned int u = (unsigned int)2.5;
    printf("%u\n", u);
    return 0;
})"), "3 3.0 1.5\n2\n");
}

TEST(CodegenTest, FloatArithmeticIsSinglePrecision)
{
    // 16777216.0f + 1.0f == 16777216.0f in float precision.
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    float big = 16777216.0f;
    float bumped = big + 1.0f;
    return bumped == big;
})"), 1);
}

TEST(CodegenTest, ShiftSemantics)
{
    EXPECT_EQ(outputOf(R"(
int main(void) {
    int neg = -8;
    unsigned int uneg = 0x80000000u;
    printf("%d %u %d\n", neg >> 1, uneg >> 4, 1 << 10);
    return 0;
})"), "-4 134217728 1024\n");
}

TEST(CodegenTest, WrapAroundArithmetic)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    unsigned char tiny = 255;
    tiny = tiny + 2;  /* wraps to 1 */
    unsigned int u = 0;
    u = u - 1;        /* wraps to UINT_MAX */
    return tiny == 1 && u == 4294967295u;
})"), 1);
}

TEST(CodegenTest, PointerArithmetic)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    int arr[5] = {10, 20, 30, 40, 50};
    int *p = arr + 1;
    int *q = &arr[4];
    long dist = q - p;          /* 3 elements */
    int via = *(p + 2);          /* arr[3] */
    p++;
    return (int)dist + via / 10 + (*p) / 10; /* 3 + 4 + 3 */
})"), 10);
}

TEST(CodegenTest, PointerComparisonsAndNull)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    int arr[3];
    int *a = &arr[0];
    int *b = &arr[2];
    int *n = 0;
    return (a < b) + (b >= a) + (n == 0) + (a != 0);
})"), 4);
}

TEST(CodegenTest, CompoundAssignmentEvaluatesLvalueOnce)
{
    EXPECT_EQ(exitCodeOf(R"(
static int calls = 0;
static int idx(void) { calls++; return 0; }
int main(void) {
    int arr[1] = {5};
    arr[idx()] += 3;
    return arr[0] * 10 + calls;  /* 80 + 1 */
})"), 81);
}

TEST(CodegenTest, PrePostIncrement)
{
    EXPECT_EQ(outputOf(R"(
int main(void) {
    int i = 5;
    printf("%d %d %d\n", i++, ++i, i--);
    printf("%d\n", i);
    return 0;
})"), "5 7 7\n6\n");
}

TEST(CodegenTest, PointerIncrementStride)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    long arr[3] = {100, 200, 300};
    long *p = arr;
    p++;
    return (int)*p / 100;
})"), 2);
}

TEST(CodegenTest, ShortCircuitEvaluation)
{
    EXPECT_EQ(exitCodeOf(R"(
static int touched = 0;
static int touch(void) { touched = 1; return 1; }
int main(void) {
    int a = 0 && touch();
    int b = 1 || touch();
    return a == 0 && b == 1 && touched == 0;
})"), 1);
}

TEST(CodegenTest, LogicalResultIsZeroOrOne)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    int v = 7;
    return (v && 9) + !v + !!v;  /* 1 + 0 + 1 */
})"), 2);
}

TEST(CodegenTest, StructAssignmentCopies)
{
    EXPECT_EQ(exitCodeOf(R"(
struct pair { int a; int b; };
int main(void) {
    struct pair x = {1, 2};
    struct pair y;
    y = x;
    y.a = 10;
    return x.a * 100 + y.a + y.b; /* 100 + 12 */
})"), 112);
}

TEST(CodegenTest, NestedStructAndArrayMembers)
{
    EXPECT_EQ(exitCodeOf(R"(
struct inner { int vals[3]; };
struct outer { struct inner in; int tag; };
int main(void) {
    struct outer o;
    o.in.vals[0] = 1;
    o.in.vals[2] = 3;
    o.tag = 40;
    return o.in.vals[0] + o.in.vals[2] + o.tag;
})"), 44);
}

TEST(CodegenTest, StructPointerChain)
{
    EXPECT_EQ(exitCodeOf(R"(
struct node { int value; struct node *next; };
int main(void) {
    struct node c = {3, 0};
    struct node b = {2, &c};
    struct node a = {1, &b};
    return a.next->next->value;
})"), 3);
}

TEST(CodegenTest, GlobalInitializers)
{
    EXPECT_EQ(exitCodeOf(R"(
int scalar = 7;
int arr[4] = {1, 2};
char msg[] = "hey";
const char *ptr = "world";
int *ref = &scalar;
double half = 0.5;
int main(void) {
    return scalar + arr[1] + arr[3] + (int)sizeof(msg) +
        (int)strlen(ptr) + *ref + (int)(half * 2.0);
    /* 7 + 2 + 0 + 4 + 5 + 7 + 1 = 26 */
})"), 26);
}

TEST(CodegenTest, GlobalForwardReference)
{
    EXPECT_EQ(exitCodeOf(R"(
int *pointer_to_later = &later;
int later = 99;
int main(void) {
    return *pointer_to_later;
})"), 99);
}

TEST(CodegenTest, MallocHintTypesTheAllocation)
{
    // A double* hint must produce a F64-typed heap object: storing and
    // reloading doubles round-trips exactly.
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    double *v = malloc(sizeof(double) * 2);
    v[0] = 0.1;
    v[1] = 0.2;
    int ok = v[0] + v[1] > 0.29 && v[0] + v[1] < 0.31;
    free(v);
    return ok;
})"), 1);
}

TEST(CodegenTest, VoidFunctionAndEarlyReturn)
{
    EXPECT_EQ(exitCodeOf(R"(
static int flag = 0;
static void maybe(int cond) {
    if (cond)
        return;
    flag = 1;
}
int main(void) {
    maybe(1);
    int first = flag;
    maybe(0);
    return first * 10 + flag;
})"), 1);
}

TEST(CodegenTest, ImplicitReturnZeroFromMain)
{
    EXPECT_EQ(exitCodeOf("int main(void) { }"), 0);
}

TEST(CodegenTest, RecursionWorks)
{
    EXPECT_EQ(exitCodeOf(R"(
static int fib(int n) {
    if (n < 2)
        return n;
    return fib(n - 1) + fib(n - 2);
}
int main(void) { return fib(10); })"), 55);
}

TEST(CodegenTest, MutualRecursion)
{
    EXPECT_EQ(exitCodeOf(R"(
static int isOdd(int n);
static int isEven(int n) { return n == 0 ? 1 : isOdd(n - 1); }
static int isOdd(int n) { return n == 0 ? 0 : isEven(n - 1); }
int main(void) { return isEven(10) * 10 + isOdd(7); })"), 11);
}

TEST(CodegenTest, VarargsSumViaVaArg)
{
    EXPECT_EQ(exitCodeOf(R"(
static int sum(int n, ...) {
    va_list ap;
    va_start(ap, n);
    int total = 0;
    for (int i = 0; i < n; i++)
        total += va_arg(ap, int);
    va_end(ap);
    return total;
}
int main(void) { return sum(4, 1, 2, 3, 4); })"), 10);
}

TEST(CodegenTest, VarargsMixedTypes)
{
    EXPECT_EQ(exitCodeOf(R"(
static int describe(int n, ...) {
    va_list ap;
    va_start(ap, n);
    long l = va_arg(ap, long);
    double d = va_arg(ap, double);
    const char *s = va_arg(ap, const char *);
    va_end(ap);
    return (int)l + (int)d + (int)strlen(s);
}
int main(void) { return describe(3, 100L, 2.5, "abc"); })"), 105);
}

TEST(CodegenTest, LoopLocalVariableReusesSlot)
{
    // A declaration inside a loop body must not allocate per iteration
    // (allocas are hoisted): sum of i%3 over 0..99999 is 99999.
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    int total = 0;
    for (int i = 0; i < 100000; i++) {
        int local = i % 3;
        total += local;
    }
    return total % 251;
})"), 99999 % 251);
}

TEST(CodegenTest, ConditionalWithPointerArms)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    int a = 5, b = 9;
    int *p = a > b ? &a : &b;
    return *p;
})"), 9);
}

TEST(CodegenTest, ArrayDecayToFunctionParameter)
{
    EXPECT_EQ(exitCodeOf(R"(
static int sum(int *vals, int n) {
    int acc = 0;
    for (int i = 0; i < n; i++)
        acc += vals[i];
    return acc;
}
int main(void) {
    int data[4] = {1, 2, 3, 4};
    return sum(data, 4);
})"), 10);
}

TEST(CodegenTest, IndexSwappedForm)
{
    EXPECT_EQ(exitCodeOf(R"(
int main(void) {
    int arr[3] = {7, 8, 9};
    return 1[arr];
})"), 8);
}

// --- sema error paths -----------------------------------------------------

TEST(CodegenErrorTest, UndeclaredIdentifier)
{
    EXPECT_NE(compileErrorsOf("int main(void) { return nope; }"), "");
}

TEST(CodegenErrorTest, CallingNonFunction)
{
    EXPECT_NE(compileErrorsOf(
        "int main(void) { int x = 1; return x(); }"), "");
}

TEST(CodegenErrorTest, WrongArgumentCount)
{
    EXPECT_NE(compileErrorsOf(R"(
static int f(int a, int b) { return a + b; }
int main(void) { return f(1); })"), "");
}

TEST(CodegenErrorTest, MemberOfNonStruct)
{
    EXPECT_NE(compileErrorsOf(
        "int main(void) { int x = 0; return x.field; }"), "");
}

TEST(CodegenErrorTest, UnknownMember)
{
    EXPECT_NE(compileErrorsOf(R"(
struct s { int a; };
int main(void) { struct s v; return v.b; })"), "");
}

TEST(CodegenErrorTest, AssignToRvalue)
{
    EXPECT_NE(compileErrorsOf("int main(void) { 3 = 4; return 0; }"), "");
}

TEST(CodegenErrorTest, DerefNonPointer)
{
    EXPECT_NE(compileErrorsOf(
        "int main(void) { int x = 1; return *x; }"), "");
}

TEST(CodegenErrorTest, RedefinedFunction)
{
    EXPECT_NE(compileErrorsOf(R"(
int f(void) { return 1; }
int f(void) { return 2; }
int main(void) { return f(); })"), "");
}

TEST(CodegenErrorTest, ConflictingDeclaration)
{
    EXPECT_NE(compileErrorsOf(R"(
int f(int);
long f(int);
int main(void) { return 0; })"), "");
}

TEST(CodegenErrorTest, StructByValueParameterRejected)
{
    EXPECT_NE(compileErrorsOf(R"(
struct big { int a[4]; };
static int take(struct big b) { return b.a[0]; }
int main(void) { struct big v; return take(v); })"), "");
}

} // namespace
} // namespace sulong
