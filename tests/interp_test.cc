/**
 * @file
 * Managed-engine tests: tier-2 equivalence with the interpreter, compile
 * events, limits, pointer pinning, and bug-report attribution.
 */

#include "test_util.h"

#include "tools/benchmark_programs.h"

namespace sulong
{
namespace
{

ExecutionResult
runWith(const ManagedOptions &options, const std::string &src,
        const std::vector<std::string> &args = {})
{
    ToolConfig config = ToolConfig::make(ToolKind::safeSulong);
    config.managed = options;
    return runUnderTool(src, config, args, "");
}

const char *kHotLoop = R"(
static int mix(int v) { return v * 31 + 7; }
int main(void) {
    int acc = 1;
    for (int i = 0; i < 5000; i++)
        acc = mix(acc) ^ i;
    printf("%d\n", acc);
    return 0;
})";

TEST(TierTest, Tier2MatchesInterpreter)
{
    ManagedOptions interp_only;
    interp_only.enableTier2 = false;
    ManagedOptions eager;
    eager.enableTier2 = true;
    eager.compileThreshold = 1;

    ExecutionResult a = runWith(interp_only, kHotLoop);
    ExecutionResult b = runWith(eager, kHotLoop);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.exitCode, b.exitCode);
}

TEST(TierTest, HotFunctionsGetCompiled)
{
    ManagedOptions options;
    options.compileThreshold = 10;
    ManagedEngine engine(options);
    PreparedProgram prepared =
        prepareProgram(kHotLoop, ToolConfig::make(ToolKind::safeSulong));
    ASSERT_TRUE(prepared.module != nullptr);
    ExecutionResult result = engine.run(*prepared.module, {}, "");
    ASSERT_TRUE(result.ok()) << result.bug.toString();
    EXPECT_GT(engine.tier2Functions(), 0u);
    bool mix_compiled = false;
    for (const CompileEvent &event : engine.compileEvents()) {
        if (event.function == "mix")
            mix_compiled = true;
    }
    EXPECT_TRUE(mix_compiled);
}

TEST(TierTest, ColdRunCompilesNothing)
{
    ManagedOptions options;
    options.compileThreshold = 1000000;
    ManagedEngine engine(options);
    PreparedProgram prepared = prepareProgram(
        "int main(void) { return 5; }",
        ToolConfig::make(ToolKind::safeSulong));
    ASSERT_TRUE(prepared.module != nullptr);
    ExecutionResult result = engine.run(*prepared.module, {}, "");
    EXPECT_EQ(result.exitCode, 5);
    EXPECT_EQ(engine.tier2Functions(), 0u);
}

TEST(TierTest, BugsStillDetectedAtTier2)
{
    // The buggy access happens only on the last iteration, long after
    // the function was tier-2 compiled: safe semantics must still trap.
    ManagedOptions eager;
    eager.compileThreshold = 1;
    ExecutionResult result = runWith(eager, R"(
static int get(int *arr, int i) { return arr[i]; }
int main(void) {
    int data[8] = {0};
    int acc = 0;
    for (int i = 0; i <= 8; i++)  /* i == 8 is out of bounds */
        acc += get(data, i);
    return acc;
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::outOfBounds);
    EXPECT_EQ(result.bug.function, "get");
}

TEST(UninitReadTest, StackReadCaughtAtTheLoad)
{
    ManagedOptions options;
    options.detectUninitReads = true;
    ExecutionResult result = runWith(options, R"(
int main(void) {
    int configured;
    int fallback = 7;
    return configured + fallback; /* read of never-written stack int */
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::uninitRead);
    EXPECT_EQ(result.bug.storage, StorageKind::stack);
    EXPECT_EQ(result.bug.function, "main");
}

TEST(UninitReadTest, HeapReadCaughtCallocClean)
{
    ManagedOptions options;
    options.detectUninitReads = true;
    ExecutionResult dirty = runWith(options, R"(
int main(void) {
    int *p = malloc(sizeof(int) * 2);
    int v = p[1];
    free(p);
    return v;
})");
    EXPECT_EQ(dirty.bug.kind, ErrorKind::uninitRead);
    EXPECT_EQ(dirty.bug.storage, StorageKind::heap);

    ExecutionResult clean = runWith(options, R"(
int main(void) {
    int *p = calloc(2, sizeof(int));
    int v = p[1];
    free(p);
    return v;
})");
    EXPECT_TRUE(clean.ok()) << clean.bug.toString();
}

TEST(UninitReadTest, PartialInitializationIsByteExact)
{
    ManagedOptions options;
    options.detectUninitReads = true;
    // Reading only the written half is fine...
    EXPECT_TRUE(runWith(options, R"(
int main(void) {
    int pair[2];
    pair[0] = 5;
    return pair[0];
})").ok());
    // ...the unwritten half is caught.
    ExecutionResult result = runWith(options, R"(
int main(void) {
    int pair[2];
    pair[0] = 5;
    return pair[1];
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::uninitRead);
}

TEST(UninitReadTest, ReallocIsNotAUse)
{
    ManagedOptions options;
    options.detectUninitReads = true;
    ExecutionResult result = runWith(options, R"(
int main(void) {
    int *p = malloc(sizeof(int) * 2);
    p[0] = 1; /* p[1] stays uninitialized */
    p = realloc(p, sizeof(int) * 4);
    int v = p[0];
    free(p);
    return v;
})");
    EXPECT_TRUE(result.ok()) << result.bug.toString();
    EXPECT_EQ(result.exitCode, 1);
}

TEST(UninitReadTest, LibcAndBenchmarksAreUninitClean)
{
    // Strong self-check: whole benchmark programs (through printf,
    // strings, qsort, the heap) run with exact tracking enabled.
    ToolConfig config = ToolConfig::make(ToolKind::safeSulong);
    config.managed.detectUninitReads = true;
    for (const char *name : {"fannkuchredux", "nbody", "binarytrees"}) {
        const BenchmarkProgram *program = findBenchmark(name);
        std::vector<std::string> args = {"5"};
        if (std::string(name) == "nbody")
            args = {"100"};
        ExecutionResult result =
            runUnderTool(program->source, config, args);
        EXPECT_TRUE(result.ok())
            << name << ": " << result.bug.toString();
    }
}

TEST(UninitReadTest, OffByDefault)
{
    ExecutionResult result = testutil::runManaged(R"(
int main(void) {
    int x;
    return x == x; /* harmless without tracking */
})");
    EXPECT_TRUE(result.ok()) << result.bug.toString();
}

TEST(OsrTest, HotLoopTiersUpMidFunction)
{
    // main is invoked exactly once, so invocation counting alone never
    // compiles it (the paper's missing-OSR limitation); with OSR the
    // loop transitions to tier-2 mid-run.
    const char *src = R"(
int main(void) {
    long acc = 0;
    for (int i = 0; i < 300000; i++)
        acc += i ^ (acc & 0xff);
    printf("%ld\n", acc);
    return 0;
})";
    ManagedOptions no_osr;
    no_osr.compileThreshold = 50;
    ManagedOptions with_osr = no_osr;
    with_osr.enableOsr = true;
    with_osr.osrThreshold = 1000;

    ManagedEngine plain(no_osr);
    ManagedEngine osr(with_osr);
    PreparedProgram prepared =
        prepareProgram(src, ToolConfig::make(ToolKind::safeSulong));
    ASSERT_TRUE(prepared.module != nullptr);

    ExecutionResult a = plain.run(*prepared.module, {}, "");
    ExecutionResult b = osr.run(*prepared.module, {}, "");
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(plain.tier2Functions(), 0u);
    EXPECT_GT(osr.tier2Functions(), 0u);
    bool osr_event = false;
    for (const CompileEvent &event : osr.compileEvents()) {
        if (event.function.find("(OSR)") != std::string::npos)
            osr_event = true;
    }
    EXPECT_TRUE(osr_event);
}

TEST(OsrTest, BugAfterOsrStillCaught)
{
    // The out-of-bounds access happens long after the loop tiered up.
    ManagedOptions with_osr;
    with_osr.enableOsr = true;
    with_osr.osrThreshold = 100;
    ExecutionResult result = runWith(with_osr, R"(
int main(void) {
    int window[4] = {0};
    int acc = 0;
    for (int i = 0; i < 100000; i++)
        acc += window[i / 25000]; /* i >= 100000/..: index 4 when i hits 100000? */
    acc += window[4]; /* out of bounds, post-OSR */
    return acc;
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::outOfBounds);
}

TEST(OsrTest, OsrOffByDefault)
{
    ManagedOptions options;
    EXPECT_FALSE(options.enableOsr); // faithful to the paper's prototype
}

TEST(ManagedEngineTest, StepLimitStopsRunaway)
{
    ToolConfig config = ToolConfig::make(ToolKind::safeSulong);
    PreparedProgram prepared =
        prepareProgram("int main(void) { while (1) { } return 0; }",
                       config);
    ASSERT_TRUE(prepared.ok());
    prepared.engine->limits().maxSteps = 100000;
    ExecutionResult result = prepared.run();
    EXPECT_EQ(result.bug.kind, ErrorKind::none);
    EXPECT_EQ(result.termination, TerminationKind::stepLimit);
}

TEST(ManagedEngineTest, CallDepthLimit)
{
    ToolConfig config = ToolConfig::make(ToolKind::safeSulong);
    ExecutionResult result = runUnderTool(R"(
static int forever(int n) { return forever(n + 1); }
int main(void) { return forever(0); })", config);
    EXPECT_EQ(result.bug.kind, ErrorKind::none);
    EXPECT_EQ(result.termination, TerminationKind::stackLimit);
}

TEST(ManagedEngineTest, PointerPinningRoundTrip)
{
    ExecutionResult result = testutil::runManaged(R"(
int main(void) {
    int v = 41;
    long raw = (long)&v;
    int *back = (int *)raw;
    *back += 1;
    return v;
})");
    ASSERT_TRUE(result.ok()) << result.bug.toString();
    EXPECT_EQ(result.exitCode, 42);
}

TEST(ManagedEngineTest, PointerAlignmentViaPin)
{
    // ptrtoint % 8 is how memcpy checks alignment; offsets survive.
    EXPECT_EQ(testutil::exitCodeOf(R"(
int main(void) {
    char buf[16];
    long base = (long)&buf[0];
    long off3 = (long)&buf[3];
    return (int)(off3 - base);
})"), 3);
}

TEST(ManagedEngineTest, ConjuredPointerCannotBeDereferenced)
{
    ExecutionResult result = testutil::runManaged(R"(
int main(void) {
    int *p = (int *)0x1234;
    return *p;
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::nullDeref);
}

TEST(ManagedEngineTest, ErrorAttributionNamesInnermostFunction)
{
    ExecutionResult result = testutil::runManaged(R"(
static void inner(char *p) { p[10] = 1; }
static void outer(char *p) { inner(p); }
int main(void) {
    char buf[4];
    outer(buf);
    return 0;
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::outOfBounds);
    EXPECT_EQ(result.bug.function, "inner");
}

TEST(ManagedEngineTest, ExitCodePropagates)
{
    EXPECT_EQ(testutil::runManaged(
        "int main(void) { exit(7); return 1; }").exitCode, 7);
}

TEST(ManagedEngineTest, OutputBeforeBugIsPreserved)
{
    ExecutionResult result = testutil::runManaged(R"(
int main(void) {
    puts("before");
    int arr[2];
    arr[5] = 1;
    puts("after");
    return 0;
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::outOfBounds);
    EXPECT_EQ(result.output, "before\n");
}

TEST(ManagedEngineTest, EnvpVisibleToThreeArgMain)
{
    ExecutionResult result = testutil::runManaged(R"(
int main(int argc, char **argv, char **envp) {
    int n = 0;
    while (envp[n] != 0)
        n++;
    return n;
})");
    ASSERT_TRUE(result.ok()) << result.bug.toString();
    EXPECT_GT(result.exitCode, 0);
}

TEST(ManagedEngineTest, StrictTypeOptionRejectsPunning)
{
    ManagedOptions strict;
    strict.strictTypes = true;
    ExecutionResult result = runWith(strict, R"(
int main(void) {
    long l = 0x4142434445464748L;
    char *p = (char *)&l;
    return p[0]; /* byte access into an I64 box */
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::typeError);
}

TEST(LeakDetectionTest, ManagedReportsUnfreedBlocks)
{
    ManagedOptions options;
    options.detectLeaks = true;
    ExecutionResult result = runWith(options, R"(
int main(void) {
    char *kept = malloc(24);
    kept[0] = 'x';
    char *freed = malloc(8);
    free(freed);
    return 0;
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::memoryLeak);
    EXPECT_NE(result.bug.detail.find("1 heap block"), std::string::npos)
        << result.bug.detail;
    EXPECT_NE(result.bug.detail.find("24"), std::string::npos);
}

TEST(LeakDetectionTest, CleanProgramHasNoLeakReport)
{
    ManagedOptions options;
    options.detectLeaks = true;
    ExecutionResult result = runWith(options, R"(
int main(void) {
    char *p = malloc(16);
    p[0] = 1;
    free(p);
    return 0;
})");
    EXPECT_TRUE(result.ok()) << result.bug.toString();
}

TEST(LeakDetectionTest, LeakAfterExitCall)
{
    ManagedOptions options;
    options.detectLeaks = true;
    ExecutionResult result = runWith(options, R"(
int main(void) {
    malloc(100);
    exit(0);
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::memoryLeak);
}

TEST(LeakDetectionTest, OffByDefault)
{
    ExecutionResult result = testutil::runManaged(
        "int main(void) { malloc(8); return 0; }");
    EXPECT_TRUE(result.ok()) << result.bug.toString();
}

TEST(ManagedEngineTest, RelaxedTypePunningWorks)
{
    EXPECT_EQ(testutil::exitCodeOf(R"(
int main(void) {
    long l = 0x4142434445464748L;
    char *p = (char *)&l;
    return p[0]; /* little endian: 0x48 */
})"), 0x48);
}

} // namespace
} // namespace sulong
