/**
 * @file
 * Tier-1 vs tier-2 parity: the optimizing tier (inlining, call inline
 * caches, superinstruction fusion, redundant-check elision) must be
 * observationally identical to the plain interpreter — same stdout,
 * same stderr, same exit code, and for buggy programs the same bug
 * kind, attributed function, and detail text. This is the paper's core
 * guarantee ("the compiler cannot optimize a bug away") stated as a
 * differential test over the whole bug corpus, the benchmark programs,
 * and targeted struct/pointer-heavy snippets.
 */

#include "test_util.h"

#include "corpus/corpus.h"
#include "tools/benchmark_programs.h"

namespace sulong
{
namespace
{

/** The tier-2 configurations that must all match pure interpretation. */
std::vector<std::pair<std::string, ToolConfig>>
tier2Variants()
{
    std::vector<std::pair<std::string, ToolConfig>> variants;

    ToolConfig eager = ToolConfig::make(ToolKind::safeSulong);
    eager.managed.compileThreshold = 0;
    eager.managed.inlineSiteMin = 0;
    variants.emplace_back("tier2-eager+inline+elision", eager);

    ToolConfig no_elision = eager;
    no_elision.managed.enableCheckElision = false;
    variants.emplace_back("tier2-eager, no check elision", no_elision);

    ToolConfig no_inline = eager;
    no_inline.managed.enableInlining = false;
    variants.emplace_back("tier2-eager, no inlining", no_inline);

    return variants;
}

void
expectParity(const std::string &label, const std::string &source,
             const std::vector<std::string> &args = {},
             const std::string &stdin_data = "")
{
    ToolConfig tier1 = ToolConfig::make(ToolKind::safeSulong);
    tier1.managed.enableTier2 = false;
    ExecutionResult reference =
        runUnderTool(source, tier1, args, stdin_data);

    for (const auto &[name, config] : tier2Variants()) {
        ExecutionResult result =
            runUnderTool(source, config, args, stdin_data);
        SCOPED_TRACE(label + " under " + name);
        EXPECT_EQ(result.output, reference.output);
        EXPECT_EQ(result.errOutput, reference.errOutput);
        EXPECT_EQ(result.exitCode, reference.exitCode);
        EXPECT_EQ(result.termination, reference.termination);
        EXPECT_EQ(result.bug.kind, reference.bug.kind);
        EXPECT_EQ(result.bug.function, reference.bug.function);
        EXPECT_EQ(result.bug.detail, reference.bug.detail);
    }
}

TEST(Tier2ParityTest, WholeBugCorpus)
{
    for (const CorpusEntry &entry : bugCorpus())
        expectParity(entry.id, entry.source, entry.args, entry.stdinData);
}

class BenchmarkParityTest
    : public ::testing::TestWithParam<std::pair<const char *, const char *>>
{
};

TEST_P(BenchmarkParityTest, MatchesInterpreter)
{
    const auto &[name, arg] = GetParam();
    const BenchmarkProgram *program = findBenchmark(name);
    ASSERT_NE(program, nullptr) << name;
    // Reduced problem sizes: parity is about semantics, not speed.
    expectParity(program->name, program->source, {arg});
}

INSTANTIATE_TEST_SUITE_P(
    Fig16Programs, BenchmarkParityTest,
    ::testing::Values(std::pair<const char *, const char *>{"fannkuchredux",
                                                            "6"},
                      std::pair<const char *, const char *>{"fasta", "150"},
                      std::pair<const char *, const char *>{"fastaredux",
                                                            "400"},
                      std::pair<const char *, const char *>{"mandelbrot",
                                                            "32"},
                      std::pair<const char *, const char *>{"meteor", "2"},
                      std::pair<const char *, const char *>{"nbody", "2000"},
                      std::pair<const char *, const char *>{"spectralnorm",
                                                            "24"},
                      std::pair<const char *, const char *>{"whetstone", "8"},
                      std::pair<const char *, const char *>{"binarytrees",
                                                            "7"}),
    [](const auto &info) { return info.param.first; });

TEST(Tier2ParityTest, StructFieldTrafficAndAliasing)
{
    // Field re-access, aliased stores between reads, and passing struct
    // pointers through calls: the access/resolution caches must never
    // produce a value a fresh resolve would not.
    expectParity("struct-aliasing", R"(
        struct point { int x; int y; int z; };
        static int sum(struct point *p) { return p->x + p->y + p->z; }
        int main(void) {
            struct point a = {1, 2, 3};
            struct point *alias = &a;
            int total = 0;
            for (int i = 0; i < 200; i++) {
                a.x = i;
                alias->y = i * 2;
                total += sum(&a) + a.x + alias->z;
            }
            printf("%d\n", total);
            return 0;
        }
    )");
}

TEST(Tier2ParityTest, PointerChaseThroughHeapNodes)
{
    expectParity("pointer-chase", R"(
        struct node { int value; struct node *next; };
        int main(void) {
            struct node *head = 0;
            for (int i = 0; i < 64; i++) {
                struct node *n = malloc(sizeof(struct node));
                n->value = i;
                n->next = head;
                head = n;
            }
            long sum = 0;
            for (int round = 0; round < 50; round++)
                for (struct node *p = head; p; p = p->next)
                    sum += p->value;
            printf("%ld\n", sum);
            while (head) {
                struct node *next = head->next;
                free(head);
                head = next;
            }
            return 0;
        }
    )");
}

TEST(Tier2ParityTest, ElisionNeverMasksTemporalBug)
{
    // The same slot re-derefs a pointer before and after free(): the
    // cached resolution must be re-validated, so every config reports
    // the identical use-after-free.
    expectParity("uaf-after-cached-resolve", R"(
        struct box { int a; int b; };
        int main(void) {
            struct box *p = malloc(sizeof(struct box));
            p->a = 1;
            p->b = 2;
            int s = 0;
            for (int i = 0; i < 100; i++)
                s += p->a + p->b;
            free(p);
            return s + p->a;
        }
    )");
}

TEST(Tier2ParityTest, ElisionNeverMasksSpatialBug)
{
    // Walk off the end of a heap array whose earlier accesses primed
    // the caches; the overflowing index must trap with the same report.
    expectParity("oob-after-cached-resolve", R"(
        int main(void) {
            int *a = malloc(8 * sizeof(int));
            for (int i = 0; i < 8; i++)
                a[i] = i;
            long s = 0;
            for (int i = 0; i < 9; i++)
                s += a[i];
            printf("%ld\n", s);
            return 0;
        }
    )");
}

TEST(Tier2ParityTest, UninitReadDetectionUnaffectedByElision)
{
    // Exact uninitialized-read detection rides on the same leaf checks
    // elision must preserve.
    ToolConfig tier1 = ToolConfig::make(ToolKind::safeSulong);
    tier1.managed.enableTier2 = false;
    tier1.managed.detectUninitReads = true;
    const char *src = R"(
        int main(void) {
            int a[4];
            a[0] = 1;
            a[1] = 2;
            int s = 0;
            for (int i = 0; i < 100; i++)
                s += a[i % 2];
            return s + a[3];
        }
    )";
    ExecutionResult reference = runUnderTool(src, tier1);
    ASSERT_EQ(reference.bug.kind, ErrorKind::uninitRead);

    for (auto &[name, config] : tier2Variants()) {
        ToolConfig variant = config;
        variant.managed.detectUninitReads = true;
        ExecutionResult result = runUnderTool(src, variant);
        SCOPED_TRACE(name);
        EXPECT_EQ(result.bug.kind, reference.bug.kind);
        EXPECT_EQ(result.bug.function, reference.bug.function);
        EXPECT_EQ(result.bug.detail, reference.bug.detail);
    }
}

} // namespace
} // namespace sulong
