/**
 * @file
 * ASan-style tool tests: shadow map, instrumentation pass, detection
 * capabilities AND the faithful gaps of Section 4.1 (argv, strtok,
 * printf-%ld, redzone limits, quarantine limits).
 */

#include "test_util.h"

#include "sanitizer/asan_pass.h"
#include "sanitizer/shadow.h"

namespace sulong
{
namespace
{

ExecutionResult
runAsan(const std::string &src, int opt_level = 0,
        const std::vector<std::string> &args = {},
        const std::string &stdin_data = "",
        AsanOptions options = {})
{
    ToolConfig config = ToolConfig::make(ToolKind::asan, opt_level);
    config.asan = options;
    return runUnderTool(src, config, args, stdin_data);
}

TEST(ShadowMapTest, SetAndGet)
{
    ShadowMap shadow;
    EXPECT_EQ(shadow.get(NativeLayout::heapBase), 0);
    shadow.set(NativeLayout::heapBase + 100, 10, 3);
    EXPECT_EQ(shadow.get(NativeLayout::heapBase + 100), 3);
    EXPECT_EQ(shadow.get(NativeLayout::heapBase + 109), 3);
    EXPECT_EQ(shadow.get(NativeLayout::heapBase + 110), 0);
}

TEST(ShadowMapTest, FirstPoisoned)
{
    ShadowMap shadow;
    uint64_t base = NativeLayout::stackBase + 64;
    shadow.set(base + 5, 1, 1);
    EXPECT_EQ(shadow.firstPoisoned(base, 5), UINT64_MAX);
    EXPECT_EQ(shadow.firstPoisoned(base, 8), base + 5);
}

TEST(ShadowMapTest, UntrackedAddressesAreClean)
{
    ShadowMap shadow;
    EXPECT_EQ(shadow.get(0), 0);
    EXPECT_EQ(shadow.get(0x12345), 0);
    shadow.set(0, 16, 9); // silently ignored
    EXPECT_EQ(shadow.get(0), 0);
}

TEST(AsanPassTest, InstrumentsUserCodeOnly)
{
    auto sources = libcSources(LibcVariant::nativeOptimized);
    sources.push_back(SourceFile{"<input>", R"(
int main(void) {
    int x = 1;
    int y = x + 2;
    return y;
})"});
    CompileResult compiled = compileC(sources);
    ASSERT_TRUE(compiled.ok()) << compiled.errors;
    AsanPassStats stats = runAsanPass(*compiled.module);
    EXPECT_GT(stats.insertedChecks, 0u);
    // libc functions stay uninstrumented.
    const Function *strcpy_fn = compiled.module->findFunction("strcpy");
    ASSERT_NE(strcpy_fn, nullptr);
    EXPECT_TRUE(isLibcFunction(*strcpy_fn));
    for (const auto &bb : strcpy_fn->blocks()) {
        for (const auto &inst : bb->insts()) {
            if (inst->op() == Opcode::call) {
                EXPECT_NE(inst->operand(0)->name(), "__asan_check");
            }
        }
    }
    // main is instrumented.
    const Function *main_fn = compiled.module->findFunction("main");
    bool has_check = false;
    for (const auto &bb : main_fn->blocks()) {
        for (const auto &inst : bb->insts()) {
            if (inst->op() == Opcode::call &&
                inst->operand(0)->name() == "__asan_check") {
                has_check = true;
            }
        }
    }
    EXPECT_TRUE(has_check);
}

// --- detections --------------------------------------------------------

TEST(AsanDetectsTest, StackOverflowWrite)
{
    ExecutionResult result = runAsan(R"(
int main(void) {
    int a[4];
    a[4] = 1;
    return 0;
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::outOfBounds);
    EXPECT_EQ(result.bug.storage, StorageKind::stack);
}

TEST(AsanDetectsTest, StackUnderflowRead)
{
    ExecutionResult result = runAsan(R"(
int main(void) {
    int a[4] = {0};
    return a[-1];
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::outOfBounds);
}

TEST(AsanDetectsTest, HeapOverflowAndUnderflow)
{
    EXPECT_EQ(runAsan(R"(
int main(void) {
    char *p = malloc(8);
    p[8] = 1;
    return 0;
})").bug.kind, ErrorKind::outOfBounds);
    EXPECT_EQ(runAsan(R"(
int main(void) {
    char *p = malloc(8);
    return p[-1];
})").bug.kind, ErrorKind::outOfBounds);
}

TEST(AsanDetectsTest, GlobalOverflowViaRedzone)
{
    ExecutionResult result = runAsan(R"(
int table[4];
int main(int argc, char **argv) {
    return table[3 + argc]; /* index 4, not constant-foldable */
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::outOfBounds);
    EXPECT_EQ(result.bug.storage, StorageKind::global);
}

TEST(AsanDetectsTest, UseAfterFreeViaQuarantine)
{
    ExecutionResult result = runAsan(R"(
int main(void) {
    int *p = malloc(sizeof(int));
    free(p);
    int *q = malloc(sizeof(int)); /* quarantine prevents reuse */
    *q = 1;
    return *p;
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::useAfterFree);
}

TEST(AsanDetectsTest, DoubleAndInvalidFree)
{
    EXPECT_EQ(runAsan(R"(
int main(void) {
    char *p = malloc(4);
    free(p);
    free(p);
    return 0;
})").bug.kind, ErrorKind::doubleFree);
    EXPECT_EQ(runAsan(R"(
int main(void) {
    int local = 0;
    free(&local);
    return 0;
})").bug.kind, ErrorKind::invalidFree);
    EXPECT_EQ(runAsan(R"(
int main(void) {
    char *p = malloc(16);
    free(p + 4);
    return 0;
})").bug.kind, ErrorKind::invalidFree);
}

TEST(AsanDetectsTest, InterceptedStrcpyOverflow)
{
    // The overflow happens inside (uninstrumented) libc code, but the
    // strcpy interceptor checks the ranges.
    ExecutionResult result = runAsan(R"(
int main(void) {
    char small[4];
    strcpy(small, "much too long");
    return 0;
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::outOfBounds);
}

TEST(AsanDetectsTest, InterceptedStrlenUnterminated)
{
    ExecutionResult result = runAsan(R"(
int main(void) {
    char b[4];
    b[0] = 'a'; b[1] = 'b'; b[2] = 'c'; b[3] = 'd';
    return (int)strlen(b);
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::outOfBounds);
}

// --- the faithful gaps (Section 4.1) -------------------------------------

TEST(AsanGapsTest, ArgvOutOfBoundsMissed)
{
    ExecutionResult result = runAsan(R"(
int main(int argc, char **argv) {
    printf("%d %s\n", argc, argv[5]);
    return 0;
})");
    EXPECT_TRUE(result.ok()) << result.bug.toString();
}

TEST(AsanGapsTest, StrtokMissedWithoutInterceptor)
{
    const char *src = R"(
int main(void) {
    char buf[8];
    strcpy(buf, "a b");
    char t[1];
    t[0] = ' ';
    char *tok = strtok(buf, t);
    return tok != 0;
})";
    EXPECT_TRUE(runAsan(src).ok());
    // The post-paper fix (rL298650) catches it.
    AsanOptions with_fix;
    with_fix.interceptStrtok = true;
    ExecutionResult fixed = runAsan(src, 0, {}, "", with_fix);
    EXPECT_EQ(fixed.bug.kind, ErrorKind::outOfBounds);
}

TEST(AsanGapsTest, PrintfIntegerWidthMissed)
{
    ExecutionResult result = runAsan(R"(
int main(void) {
    int counter = 5;
    printf("counter: %ld\n", counter);
    return 0;
})");
    EXPECT_TRUE(result.ok()) << result.bug.toString();
}

TEST(AsanGapsTest, MissingVarargMissed)
{
    ExecutionResult result = runAsan(R"(
int main(void) {
    printf("%s %d\n", "only-one");
    return 0;
})");
    EXPECT_TRUE(result.ok()) << result.bug.toString();
}

TEST(AsanGapsTest, FarIndexOverflowsRedzone)
{
    // Fig. 14: an index far past the object jumps over the redzone.
    AsanOptions options;
    options.redzone = 32;
    ExecutionResult result = runAsan(R"(
int table[4];
int other_data[4096];
int main(int argc, char **argv) {
    int idx = atoi(argv[1]);
    return table[idx];
})", 0, {"200"}, "", options);
    EXPECT_TRUE(result.ok()) << result.bug.toString();
}

TEST(AsanGapsTest, QuarantineExhaustionMissesUaf)
{
    // P3: after enough intervening frees, the freed block leaves the
    // quarantine, gets reused, and the dangling access goes undetected.
    AsanOptions tiny;
    tiny.quarantineBlocks = 2;
    ExecutionResult result = runAsan(R"(
int main(void) {
    char *p = malloc(24);
    p[0] = 'x';
    free(p);
    for (int i = 0; i < 8; i++) {
        char *junk = malloc(24);
        junk[0] = 'j';
        free(junk);
    }
    char *fresh = malloc(24); /* reuses p's block */
    fresh[0] = 'f';
    return p[0]; /* undetected use-after-free */
})", 0, {}, "", tiny);
    EXPECT_TRUE(result.ok()) << result.bug.toString();
}

TEST(AsanDetectsTest, LeakSanitizerAnalogue)
{
    AsanOptions options;
    options.detectLeaks = true;
    ExecutionResult result = runAsan(R"(
int main(void) {
    malloc(8);
    malloc(8);
    return 0;
})", 0, {}, "", options);
    EXPECT_EQ(result.bug.kind, ErrorKind::memoryLeak);
    EXPECT_NE(result.bug.detail.find("2 heap block"), std::string::npos)
        << result.bug.detail;
}

TEST(AsanGapsTest, OptimizedAwayBugInvisible)
{
    const char *src = R"(
static int scratch(unsigned long n) {
    int arr[4] = {0};
    for (unsigned long i = 0; i < n; i++)
        arr[i] = (int)i;
    return 0;
}
int main(void) { return scratch(6); })";
    EXPECT_EQ(runAsan(src, 0).bug.kind, ErrorKind::outOfBounds);
    EXPECT_TRUE(runAsan(src, 3).ok()); // the -O3 DSE deleted the store
}

} // namespace
} // namespace sulong
