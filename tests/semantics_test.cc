/**
 * @file
 * Cross-engine differential semantics suite.
 *
 * Every well-defined program here must produce the same exit code and
 * stdout under all five engines (Safe Sulong, Clang -O0/-O3, ASan,
 * Valgrind). This is the strongest property test in the repository: it
 * pins the managed object model, the flat native model, both optimizer
 * pipelines, and the instrumentation runtimes to one semantics.
 */

#include "test_util.h"

namespace sulong
{
namespace
{

struct SemanticsCase
{
    const char *name;
    const char *source;
    const char *expectedOutput;
    int expectedExit;
};

const SemanticsCase kCases[] = {
    {"hello", R"(
int main(void) { printf("hi %d\n", 42); return 3; })", "hi 42\n", 3},

    {"string-ops", R"(
int main(void) {
    char buf[32];
    strcpy(buf, "alpha");
    strcat(buf, "-beta");
    printf("%s %lu %d %d\n", buf, strlen(buf),
           strcmp(buf, "alpha-beta"), strncmp(buf, "alphaX", 5));
    char *found = strchr(buf, '-');
    printf("%s %s\n", found, strstr(buf, "bet"));
    return 0;
})", "alpha-beta 10 0 0\n-beta beta\n", 0},

    {"heap-lifecycle", R"(
int main(void) {
    int *v = malloc(sizeof(int) * 3);
    v[0] = 1; v[1] = 2; v[2] = 3;
    v = realloc(v, sizeof(int) * 6);
    v[5] = 60;
    printf("%d %d %d\n", v[0], v[2], v[5]);
    free(v);
    char *z = calloc(4, 1);
    printf("%d%d%d%d\n", z[0], z[1], z[2], z[3]);
    free(z);
    return 0;
})", "1 3 60\n0000\n", 0},

    {"qsort-ints", R"(
static int cmp(const void *a, const void *b) {
    return *(const int *)a - *(const int *)b;
}
int main(void) {
    int v[8] = {42, 7, 19, 3, 88, 1, 55, 7};
    qsort(v, 8, sizeof(int), cmp);
    for (int i = 0; i < 8; i++)
        printf("%d ", v[i]);
    printf("\n");
    return 0;
})", "1 3 7 7 19 42 55 88 \n", 0},

    {"qsort-strings", R"(
static int cmps(const void *a, const void *b) {
    return strcmp(*(const char *const *)a, *(const char *const *)b);
}
int main(void) {
    const char *names[4] = {"pear", "apple", "orange", "fig"};
    qsort(names, 4, sizeof(char *), cmps);
    for (int i = 0; i < 4; i++)
        printf("%s ", names[i]);
    printf("\n");
    return 0;
})", "apple fig orange pear \n", 0},

    {"printf-formats", R"(
int main(void) {
    printf("%d|%5d|%-5d|%05d|\n", -42, 42, 42, 42);
    printf("%u %x %X %o\n", 3000000000u, 255, 255, 8);
    printf("%ld %lu\n", -1L, 18446744073709551615ul);
    printf("%c%c %s %.3s\n", 'o', 'k', "str", "truncated");
    printf("%.2f %08.3f %.0f\n", 3.14159, -2.5, 9.7);
    printf("%%done\n");
    return 0;
})",
     "-42|   42|42   |00042|\n"
     "3000000000 ff FF 10\n"
     "-1 18446744073709551615\n"
     "ok str tru\n"
     "3.14 -002.500 10\n"
     "%done\n", 0},

    {"scanf-stdin", R"(
int main(void) {
    int a = 0;
    long b = 0;
    char word[16];
    scanf("%d %ld %s", &a, &b, word);
    printf("%d %ld %s\n", a * 2, b + 1, word);
    return 0;
})", "24 -6 token\n", 0},

    {"sprintf-snprintf", R"(
int main(void) {
    char buf[40];
    int n = sprintf(buf, "[%d:%s]", 7, "x");
    printf("%s %d\n", buf, n);
    char small[6];
    snprintf(small, 6, "%s", "overflowing");
    printf("%s\n", small);
    return 0;
})", "[7:x] 5\noverf\n", 0},

    {"ctype-sweep", R"(
int main(void) {
    const char *s = "aZ3 .";
    for (int i = 0; s[i] != 0; i++) {
        printf("%d%d%d%d%d ", isalpha(s[i]), isdigit(s[i]),
               isspace(s[i]), isupper(s[i]), ispunct(s[i]));
    }
    printf("%c%c\n", toupper('q'), tolower('Q'));
    return 0;
})", "10000 10010 01000 00100 00001 Qq\n", 0},

    {"strtol-atoi", R"(
int main(void) {
    char *end = 0;
    long v = strtol("  -1234xyz", &end, 10);
    printf("%ld %s\n", v, end);
    printf("%ld %ld\n", strtol("ff", 0, 16), strtol("0x10", 0, 0));
    printf("%d %ld %d\n", atoi("77"), atol("-9"), (int)(atof("2.5") * 2));
    return 0;
})", "-1234 xyz\n255 16\n77 -9 5\n", 0},

    {"memops", R"(
int main(void) {
    char a[8];
    memset(a, 'x', 7);
    a[7] = 0;
    char b[8];
    memcpy(b, a, 8);
    printf("%s %d\n", b, memcmp(a, b, 8));
    memmove(a + 1, a, 6); /* overlapping */
    a[7] = 0;
    printf("%s\n", a);
    char *hit = memchr(b, 'x', 8);
    printf("%d\n", hit == b);
    return 0;
})", "xxxxxxx 0\nxxxxxxx\n1\n", 0},

    {"rand-deterministic", R"(
int main(void) {
    srand(7);
    int a = rand();
    srand(7);
    int b = rand();
    printf("%d %d\n", a == b, a >= 0);
    return 0;
})", "1 1\n", 0},

    {"bsearch-table", R"(
static int cmp(const void *a, const void *b) {
    return *(const int *)a - *(const int *)b;
}
int main(void) {
    int v[5] = {2, 4, 8, 16, 32};
    int key = 8;
    int *hit = bsearch(&key, v, 5, sizeof(int), cmp);
    int miss_key = 5;
    int *miss = bsearch(&miss_key, v, 5, sizeof(int), cmp);
    printf("%d %d\n", hit != 0 ? *hit : -1, miss == 0);
    return 0;
})", "8 1\n", 0},

    {"function-pointers", R"(
static int add(int a, int b) { return a + b; }
static int mul(int a, int b) { return a * b; }
static int apply(int (*op)(int, int), int a, int b) { return op(a, b); }
int main(void) {
    int (*ops[2])(int, int) = {add, mul};
    printf("%d %d %d\n", apply(add, 2, 3), apply(mul, 2, 3),
           ops[1](4, 5));
    return 0;
})", "5 6 20\n", 0},

    {"struct-array-heap", R"(
struct rec { int id; double score; char tag[4]; };
int main(void) {
    struct rec *recs = malloc(sizeof(struct rec) * 2);
    recs[0].id = 1;
    recs[0].score = 1.5;
    strcpy(recs[0].tag, "ab");
    recs[1] = recs[0];
    recs[1].id = 2;
    printf("%d %d %.1f %s\n", recs[0].id, recs[1].id, recs[1].score,
           recs[1].tag);
    free(recs);
    return 0;
})", "1 2 1.5 ab\n", 0},

    {"matrix-2d", R"(
int main(void) {
    double m[3][3];
    for (int i = 0; i < 3; i++)
        for (int j = 0; j < 3; j++)
            m[i][j] = i * 3 + j;
    double trace = 0;
    for (int i = 0; i < 3; i++)
        trace += m[i][i];
    printf("%.1f\n", trace);
    return 0;
})", "12.0\n", 0},

    {"switch-dispatch", R"(
static const char *kind(int c) {
    switch (c) {
      case '+': case '-': return "op";
      case '0': case '1': case '2': return "digit";
      default: return "other";
    }
}
int main(void) {
    printf("%s %s %s\n", kind('+'), kind('1'), kind('z'));
    return 0;
})", "op digit other\n", 0},

    {"varargs-forwarding", R"(
static int pick(int idx, ...) {
    va_list ap;
    va_start(ap, idx);
    int v = 0;
    for (int i = 0; i <= idx; i++)
        v = va_arg(ap, int);
    va_end(ap);
    return v;
}
int main(void) {
    printf("%d %d\n", pick(0, 11, 22, 33), pick(2, 11, 22, 33));
    return 0;
})", "11 33\n", 0},

    {"argv-echo", R"(
int main(int argc, char **argv) {
    for (int i = 1; i < argc; i++)
        printf("[%s]", argv[i]);
    printf(" argc=%d\n", argc);
    return argc;
})", "[alpha][beta] argc=3\n", 3},

    {"fgets-lines", R"(
int main(void) {
    char line[32];
    int count = 0;
    while (fgets(line, 32, stdin) != 0) {
        count++;
        printf("%d:%s", count, line);
    }
    return count;
})", "1:first\n2:second\n", 2},

    {"recursive-ackermann", R"(
static int ack(int m, int n) {
    if (m == 0) return n + 1;
    if (n == 0) return ack(m - 1, 1);
    return ack(m - 1, ack(m, n - 1));
}
int main(void) {
    printf("%d\n", ack(2, 3));
    return 0;
})", "9\n", 0},

    {"float-printing", R"(
int main(void) {
    double values[4] = {0.0, -0.125, 1e6, 0.1};
    for (int i = 0; i < 4; i++)
        printf("%.3f ", values[i]);
    printf("\n");
    return 0;
})", "0.000 -0.125 1000000.000 0.100 \n", 0},

    {"math-intrinsics", R"(
int main(void) {
    printf("%.4f %.4f %.4f\n", sqrt(2.0), pow(2.0, 10.0),
           fabs(-3.5));
    printf("%.4f %.4f %.4f\n", floor(2.7), ceil(2.1), fmod(7.5, 2.0));
    double s = sin(0.5), c = cos(0.5);
    printf("%d\n", s * s + c * c > 0.9999 && s * s + c * c < 1.0001);
    return 0;
})", "1.4142 1024.0000 3.5000\n2.0000 3.0000 1.5000\n1\n", 0},

    {"string-view-walk", R"(
int main(void) {
    const char *csv = "a,bb,ccc";
    char field[8];
    const char *p = csv;
    while (1) {
        int n = 0;
        while (p[n] != ',' && p[n] != 0)
            n++;
        strncpy(field, p, (unsigned long)n);
        field[n] = 0;
        printf("<%s>", field);
        if (p[n] == 0)
            break;
        p += n + 1;
    }
    printf("\n");
    return 0;
})", "<a><bb><ccc>\n", 0},

    {"shadowing-scopes", R"(
int value = 1;
int main(void) {
    int value2 = 0;
    {
        int value = 10;
        value2 += value;
    }
    value2 += value;
    for (int value = 100; value < 101; value++)
        value2 += value;
    return value2; /* 10 + 1 + 100 */
})", "", 111},
};

class SemanticsTest
    : public ::testing::TestWithParam<std::tuple<ToolKind, int, int>>
{
};

TEST_P(SemanticsTest, ProgramBehavesIdentically)
{
    auto [kind, opt_level, case_index] = GetParam();
    const SemanticsCase &test_case = kCases[case_index];
    ToolConfig config = ToolConfig::make(kind, opt_level);

    std::vector<std::string> args;
    std::string stdin_data;
    if (std::string(test_case.name) == "argv-echo")
        args = {"alpha", "beta"};
    if (std::string(test_case.name) == "scanf-stdin")
        stdin_data = "12 -7 token\n";
    if (std::string(test_case.name) == "fgets-lines")
        stdin_data = "first\nsecond\n";

    ExecutionResult result =
        runUnderTool(test_case.source, config, args, stdin_data);
    EXPECT_TRUE(result.ok())
        << test_case.name << " under " << config.toString() << ": "
        << result.bug.toString();
    EXPECT_EQ(result.output, test_case.expectedOutput) << test_case.name;
    EXPECT_EQ(result.exitCode, test_case.expectedExit) << test_case.name;
}

std::string
semanticsParamName(
    const ::testing::TestParamInfo<std::tuple<ToolKind, int, int>> &info)
{
    auto [kind, opt_level, case_index] = info.param;
    ToolConfig config = ToolConfig::make(kind, opt_level);
    // Safe Sulong ignores the optimization level, so disambiguate.
    std::string name = config.toString() + "_O" +
        std::to_string(opt_level) + "_" + kCases[case_index].name;
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesAllPrograms, SemanticsTest,
    ::testing::Combine(
        ::testing::Values(ToolKind::safeSulong, ToolKind::clang,
                          ToolKind::asan, ToolKind::memcheck),
        ::testing::Values(0, 3),
        ::testing::Range(0, static_cast<int>(std::size(kCases)))),
    semanticsParamName);

} // namespace
} // namespace sulong
