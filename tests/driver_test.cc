/**
 * @file
 * Driver and benchmark-program tests: tool configuration, compile
 * failure handling, and the cross-engine output equality of every
 * benchmark (the Fig. 16 workloads double as differential tests).
 */

#include "test_util.h"

#include "tools/benchmark_programs.h"

namespace sulong
{
namespace
{

TEST(DriverTest, ToolNames)
{
    EXPECT_EQ(ToolConfig::make(ToolKind::safeSulong).toString(),
              "Safe Sulong");
    EXPECT_EQ(ToolConfig::make(ToolKind::clang, 0).toString(), "Clang -O0");
    EXPECT_EQ(ToolConfig::make(ToolKind::clang, 3).toString(), "Clang -O3");
    EXPECT_EQ(ToolConfig::make(ToolKind::asan, 3).toString(), "ASan -O3");
    EXPECT_EQ(ToolConfig::make(ToolKind::memcheck, 0).toString(),
              "Valgrind -O0");
}

TEST(DriverTest, EvaluationMatrixShape)
{
    auto tools = evaluationToolMatrix();
    ASSERT_EQ(tools.size(), 5u);
    EXPECT_EQ(tools[0].kind, ToolKind::safeSulong);
}

TEST(DriverTest, CompileErrorsSurfaceInResult)
{
    ExecutionResult result = runUnderTool(
        "int main(void) { syntax error here }",
        ToolConfig::make(ToolKind::safeSulong));
    EXPECT_EQ(result.bug.kind, ErrorKind::engineError);
    EXPECT_NE(result.bug.detail.find("compilation failed"),
              std::string::npos);
}

TEST(DriverTest, MultipleUserSources)
{
    std::vector<SourceFile> sources = {
        {"a.c", "int helper(void) { return 40; }"},
        {"b.c", "int helper(void);\n"
                "int main(void) { return helper() + 2; }"},
    };
    PreparedProgram prepared =
        prepareProgram(sources, ToolConfig::make(ToolKind::safeSulong));
    ASSERT_TRUE(prepared.ok()) << prepared.compileErrors;
    EXPECT_EQ(prepared.run().exitCode, 42);
}

TEST(DriverTest, PreparedProgramIsReusable)
{
    PreparedProgram prepared = prepareProgram(
        R"(int main(int argc, char **argv) { return argc; })",
        ToolConfig::make(ToolKind::safeSulong));
    ASSERT_TRUE(prepared.ok());
    EXPECT_EQ(prepared.run({}).exitCode, 1);
    EXPECT_EQ(prepared.run({"a", "b"}).exitCode, 3);
}

/** Call parseManagedFlags on a synthetic command line. */
ManagedOptions
parseFlags(std::vector<std::string> args)
{
    std::vector<char *> argv;
    std::string prog = "msulong";
    argv.push_back(prog.data());
    for (std::string &arg : args)
        argv.push_back(arg.data());
    return parseManagedFlags(static_cast<int>(argv.size()), argv.data());
}

TEST(DriverTest, TierFlagsParse)
{
    ManagedOptions opts = parseFlags(
        {"--tier2-threshold", "9", "--no-fusion", "--tier3-threshold=7",
         "--no-tier3-osr", "--tier3-osr-threshold=123"});
    EXPECT_EQ(opts.compileThreshold, 9u);
    EXPECT_FALSE(opts.enableFusion);
    EXPECT_EQ(opts.tier3Threshold, 7u);
    EXPECT_FALSE(opts.tier3Osr);
    EXPECT_EQ(opts.tier3OsrThreshold, 123u);
    EXPECT_TRUE(opts.enableTier3);
    EXPECT_FALSE(parseFlags({"--no-tier3"}).enableTier3);
    EXPECT_FALSE(parseFlags({"--no-tier2"}).enableTier2);
}

TEST(DriverTest, MisspelledTierFlagIsUsageError)
{
    // A typo'd tier flag used to be silently ignored — and silently
    // benchmarked the wrong configuration. Now it is a usage error.
    EXPECT_EXIT(parseFlags({"--tier3-treshold", "7"}),
                ::testing::ExitedWithCode(2), "unknown flag");
    EXPECT_EXIT(parseFlags({"--no-tier4"}),
                ::testing::ExitedWithCode(2), "unknown flag");
    EXPECT_EXIT(parseFlags({"--tier3_threshold=7"}),
                ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(DriverTest, TierValueFlagWithoutValueIsUsageError)
{
    EXPECT_EXIT(parseFlags({"--tier3-threshold"}),
                ::testing::ExitedWithCode(2), "requires a value");
    EXPECT_EXIT(parseFlags({"--tier2-threshold"}),
                ::testing::ExitedWithCode(2), "requires a value");
}

/** Call parseAnalysisFlags on a synthetic command line. */
AnalysisOptions
parseAnalysis(std::vector<std::string> args)
{
    std::vector<char *> argv;
    std::string prog = "msulong";
    argv.push_back(prog.data());
    for (std::string &arg : args)
        argv.push_back(arg.data());
    return parseAnalysisFlags(static_cast<int>(argv.size()), argv.data());
}

TEST(DriverTest, AnalysisFlagsParse)
{
    AnalysisOptions opts = parseAnalysis(
        {"--no-solver", "--no-summaries", "--summary-depth", "5",
         "--analysis-jobs=4", "--widen-after=9", "--replay-steps", "100"});
    EXPECT_FALSE(opts.solver);
    EXPECT_FALSE(opts.summaries);
    EXPECT_TRUE(opts.refute);
    EXPECT_EQ(opts.summaryDepth, 5u);
    EXPECT_EQ(opts.jobs, 4u);
    EXPECT_EQ(opts.widenAfter, 9u);
    EXPECT_EQ(opts.replaySteps, 100u);

    AnalysisOptions dflt = parseAnalysis({});
    EXPECT_TRUE(dflt.solver);
    EXPECT_TRUE(dflt.summaries);
    EXPECT_TRUE(dflt.userCodeOnly);
    EXPECT_FALSE(parseAnalysis({"--no-refute"}).refute);
    EXPECT_FALSE(parseAnalysis({"--analyze-libc"}).userCodeOnly);
}

TEST(DriverTest, MisspelledAnalysisFlagIsUsageError)
{
    // Same contract as the tier flags: a typo'd --analyze*-family flag
    // must not silently benchmark the wrong configuration.
    EXPECT_EXIT(parseAnalysis({"--no-summarise"}),
                ::testing::ExitedWithCode(2), "unknown flag");
    EXPECT_EXIT(parseAnalysis({"--analyze-olny"}),
                ::testing::ExitedWithCode(2), "unknown flag");
    EXPECT_EXIT(parseAnalysis({"--summary-depht=3"}),
                ::testing::ExitedWithCode(2), "unknown flag");
    EXPECT_EXIT(parseAnalysis({"--analysis-jbos=2"}),
                ::testing::ExitedWithCode(2), "unknown flag");
    EXPECT_EXIT(parseAnalysis({"--no-solverr"}),
                ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(DriverTest, AnalysisValueFlagWithoutValueIsUsageError)
{
    EXPECT_EXIT(parseAnalysis({"--summary-depth"}),
                ::testing::ExitedWithCode(2), "requires a value");
    EXPECT_EXIT(parseAnalysis({"--analysis-jobs"}),
                ::testing::ExitedWithCode(2), "requires a value");
    EXPECT_EXIT(parseAnalysis({"--replay-steps"}),
                ::testing::ExitedWithCode(2), "requires a value");
}

TEST(BenchmarkProgramsTest, RegistryComplete)
{
    const auto &programs = benchmarkPrograms();
    EXPECT_EQ(programs.size(), 11u);
    EXPECT_NE(findBenchmark("meteor"), nullptr);
    EXPECT_NE(findBenchmark("nbody"), nullptr);
    EXPECT_NE(findBenchmark("calltower"), nullptr);
    EXPECT_NE(findBenchmark("pointerchase"), nullptr);
    EXPECT_EQ(findBenchmark("unknown"), nullptr);
    EXPECT_TRUE(findBenchmark("binarytrees")->allocationIntensive);
}

/** Every benchmark must produce identical output on every engine. */
class BenchmarkDifferentialTest : public ::testing::TestWithParam<int>
{
};

TEST_P(BenchmarkDifferentialTest, AllEnginesAgree)
{
    const BenchmarkProgram &program =
        benchmarkPrograms()[static_cast<size_t>(GetParam())];
    // Use small problem sizes to keep the suite fast.
    std::vector<std::string> args = program.args;
    if (program.name == "fannkuchredux") args = {"6"};
    if (program.name == "fasta") args = {"150"};
    if (program.name == "fastaredux") args = {"600"};
    if (program.name == "mandelbrot") args = {"32"};
    if (program.name == "meteor") args = {"1"};
    if (program.name == "nbody") args = {"500"};
    if (program.name == "spectralnorm") args = {"16"};
    if (program.name == "whetstone") args = {"5"};
    if (program.name == "binarytrees") args = {"6"};
    if (program.name == "calltower") args = {"2500"};
    if (program.name == "pointerchase") args = {"20"};

    ExecutionResult reference = runUnderTool(
        program.source, ToolConfig::make(ToolKind::safeSulong), args);
    ASSERT_TRUE(reference.ok())
        << program.name << ": " << reference.bug.toString();
    ASSERT_FALSE(reference.output.empty()) << program.name;

    const ToolConfig configs[] = {
        ToolConfig::make(ToolKind::clang, 0),
        ToolConfig::make(ToolKind::clang, 3),
        ToolConfig::make(ToolKind::asan, 0),
        ToolConfig::make(ToolKind::memcheck, 0),
    };
    for (const ToolConfig &config : configs) {
        ExecutionResult result =
            runUnderTool(program.source, config, args);
        EXPECT_TRUE(result.ok()) << program.name << " under "
                                 << config.toString() << ": "
                                 << result.bug.toString();
        EXPECT_EQ(result.output, reference.output)
            << program.name << " under " << config.toString();
        EXPECT_EQ(result.exitCode, reference.exitCode) << program.name;
    }
}

std::string
benchName(const ::testing::TestParamInfo<int> &info)
{
    return benchmarkPrograms()[static_cast<size_t>(info.param)].name;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkDifferentialTest,
                         ::testing::Range(0, 11), benchName);

TEST(BenchmarkProgramsTest, Tier2MatchesOnBenchmarks)
{
    // Property: eager tier-2 compilation never changes benchmark output.
    ToolConfig eager = ToolConfig::make(ToolKind::safeSulong);
    eager.managed.compileThreshold = 1;
    ToolConfig interp = ToolConfig::make(ToolKind::safeSulong);
    interp.managed.enableTier2 = false;
    for (const char *name : {"fannkuchredux", "nbody", "meteor"}) {
        const BenchmarkProgram *program = findBenchmark(name);
        std::vector<std::string> args = {"5"};
        if (std::string(name) == "nbody")
            args = {"200"};
        if (std::string(name) == "meteor")
            args = {"1"};
        ExecutionResult a = runUnderTool(program->source, eager, args);
        ExecutionResult b = runUnderTool(program->source, interp, args);
        ASSERT_TRUE(a.ok()) << name << a.bug.toString();
        EXPECT_EQ(a.output, b.output) << name;
    }
}

} // namespace
} // namespace sulong
