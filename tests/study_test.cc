/**
 * @file
 * Tests for the CVE/ExploitDB study: classifier behaviour, database
 * determinism, and the trend shapes of Figs. 1 and 2.
 */

#include <gtest/gtest.h>

#include "study/classifier.h"

namespace sulong
{
namespace
{

VulnRecord
record(const char *description)
{
    VulnRecord r;
    r.description = description;
    return r;
}

TEST(ClassifierTest, SpatialKeywords)
{
    EXPECT_EQ(classifyRecord(record(
        "Stack-based buffer overflow in the parser")),
        VulnCategory::spatial);
    EXPECT_EQ(classifyRecord(record(
        "out-of-bounds read in decoder")), VulnCategory::spatial);
    EXPECT_EQ(classifyRecord(record(
        "Heap overflow via crafted input")), VulnCategory::spatial);
    EXPECT_EQ(classifyRecord(record(
        "buffer underflow when rewinding")), VulnCategory::spatial);
}

TEST(ClassifierTest, TemporalKeywords)
{
    EXPECT_EQ(classifyRecord(record("Use-after-free in the dispatcher")),
              VulnCategory::temporal);
    EXPECT_EQ(classifyRecord(record("dangling pointer dereference")),
              VulnCategory::temporal);
}

TEST(ClassifierTest, NullAndOtherKeywords)
{
    EXPECT_EQ(classifyRecord(record("NULL pointer dereference on EOF")),
              VulnCategory::nullDeref);
    EXPECT_EQ(classifyRecord(record("double free in the error path")),
              VulnCategory::other);
    EXPECT_EQ(classifyRecord(record("format string bug in logger")),
              VulnCategory::other);
    EXPECT_EQ(classifyRecord(record("invalid free of a stack address")),
              VulnCategory::other);
}

TEST(ClassifierTest, UnrelatedRecordsIgnored)
{
    EXPECT_EQ(classifyRecord(record("SQL injection in search")),
              VulnCategory::unrelated);
    EXPECT_EQ(classifyRecord(record("XSS in the preview pane")),
              VulnCategory::unrelated);
}

TEST(ClassifierTest, CaseInsensitive)
{
    EXPECT_EQ(classifyRecord(record("BUFFER OVERFLOW")),
              VulnCategory::spatial);
    EXPECT_EQ(classifyRecord(record("Use After Free")),
              VulnCategory::temporal);
}

TEST(ClassifierTest, CategoryNames)
{
    EXPECT_STREQ(vulnCategoryName(VulnCategory::spatial), "Spatial");
    EXPECT_STREQ(vulnCategoryName(VulnCategory::temporal), "Temporal");
    EXPECT_STREQ(vulnCategoryName(VulnCategory::nullDeref), "NULL deref");
}

TEST(DatabaseTest, Deterministic)
{
    auto a = synthesizeVulnDatabase(1);
    auto b = synthesizeVulnDatabase(1);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i += 97) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].description, b[i].description);
        EXPECT_EQ(a[i].hasExploit, b[i].hasExploit);
    }
    auto c = synthesizeVulnDatabase(2);
    EXPECT_NE(a.size(), 0u);
    // Different seed jitters differently.
    EXPECT_NE(a.size(), c.size());
}

TEST(DatabaseTest, CoversStudyWindow)
{
    auto records = synthesizeVulnDatabase();
    int min_year = 9999, max_year = 0;
    for (const auto &r : records) {
        min_year = std::min(min_year, r.year);
        max_year = std::max(max_year, r.year);
        if (r.year == 2012) {
            EXPECT_GE(r.month, 3); // window starts 2012-03
        }
        if (r.year == 2017) {
            EXPECT_LE(r.month, 9); // window ends 2017-09
        }
    }
    EXPECT_EQ(min_year, 2012);
    EXPECT_EQ(max_year, 2017);
}

TEST(TrendTest, FigureOneShape)
{
    auto counts = countByYear(synthesizeVulnDatabase(), false);
    ASSERT_EQ(counts.size(), 6u);
    for (const auto &year : counts) {
        // Spatial dominates every year (paper: most common category).
        EXPECT_GT(year.spatial, year.temporal) << year.year;
        EXPECT_GT(year.temporal, year.other) << year.year;
    }
    // Spatial is at an all-time high at the end of the window.
    unsigned last = counts.back().spatial;
    for (size_t i = 0; i + 1 < counts.size(); i++)
        EXPECT_GT(last, counts[i].spatial) << counts[i].year;
}

TEST(TrendTest, FigureTwoShape)
{
    auto vulns = countByYear(synthesizeVulnDatabase(), false);
    auto exploits = countByYear(synthesizeVulnDatabase(), true);
    ASSERT_EQ(exploits.size(), 6u);
    for (size_t i = 0; i < exploits.size(); i++) {
        // Exploits are a small subset of vulnerabilities...
        EXPECT_LT(exploits[i].total(), vulns[i].total() / 4);
        // ...and spatial bugs are the most weaponized.
        EXPECT_GE(exploits[i].spatial, exploits[i].nullDeref);
    }
}

TEST(TrendTest, CategoriesCorrelateWithExploitation)
{
    // The paper notes categories with many vulnerabilities were also
    // exploited more often; check the rank correlation on totals.
    auto vulns = countByYear(synthesizeVulnDatabase(), false);
    auto exploits = countByYear(synthesizeVulnDatabase(), true);
    unsigned v_spatial = 0, v_null = 0, e_spatial = 0, e_null = 0;
    for (size_t i = 0; i < vulns.size(); i++) {
        v_spatial += vulns[i].spatial;
        v_null += vulns[i].nullDeref;
        e_spatial += exploits[i].spatial;
        e_null += exploits[i].nullDeref;
    }
    EXPECT_GT(v_spatial, v_null);
    EXPECT_GT(e_spatial, e_null);
}

TEST(FormatTest, CountsTableRendering)
{
    auto counts = countByYear(synthesizeVulnDatabase(), false);
    std::string table = formatCounts(counts, "Fig 1");
    EXPECT_NE(table.find("Fig 1"), std::string::npos);
    EXPECT_NE(table.find("2012"), std::string::npos);
    EXPECT_NE(table.find("2017"), std::string::npos);
    EXPECT_NE(table.find("spatial"), std::string::npos);
}

} // namespace
} // namespace sulong
