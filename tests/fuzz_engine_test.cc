/**
 * @file
 * Contract tests for the generative scenario engine (src/fuzz/):
 * generator determinism across reruns and worker counts, the mutator
 * ground-truth contract against the oracle's capability matrix, the
 * minimizer's signature-preservation and idempotence guarantees, and
 * the shape-hash key the survivor dedup relies on.
 */

#include "test_util.h"

#include "fuzz/campaign.h"

namespace sulong
{
namespace
{

// ---------------------------------------------------------------------
// Generator determinism
// ---------------------------------------------------------------------

TEST(FuzzGenerator, SameSeedRendersIdenticalProgram)
{
    for (uint64_t seed : {1ull, 7ull, 1234ull}) {
        std::string a = ProgramGenerator(seed).generate().render();
        std::string b = ProgramGenerator(seed).generate().render();
        EXPECT_EQ(a, b) << "seed " << seed;
        EXPECT_NE(a.find("int main(void)"), std::string::npos);
    }
}

TEST(FuzzGenerator, DistinctSeedsRenderDistinctPrograms)
{
    EXPECT_NE(ProgramGenerator(1).generate().render(),
              ProgramGenerator(2).generate().render());
}

TEST(FuzzGenerator, SeedProgramIsAPureFunctionOfSeedAndOptions)
{
    CampaignOptions options;
    for (uint64_t seed = 1; seed <= 8; seed++) {
        FuzzProgram a = generateSeedProgram(seed, options);
        FuzzProgram b = generateSeedProgram(seed, options);
        EXPECT_EQ(a.render(), b.render()) << "seed " << seed;
        EXPECT_EQ(a.bug.mutator, b.bug.mutator) << "seed " << seed;
    }
}

TEST(FuzzCampaign, ReportIsByteIdenticalAcrossJobsLevels)
{
    CampaignOptions options;
    options.seedBegin = 1;
    options.seedCount = 8;
    options.jobs = 1;
    CampaignReport serial = runCampaign(options);
    options.jobs = 4;
    CampaignReport parallel = runCampaign(options);

    EXPECT_EQ(serial.toJson(), parallel.toJson());
    EXPECT_EQ(serial.unexplained(), 0u)
        << serial.formatSummary(/*verbose=*/true);
    EXPECT_EQ(serial.programs, options.seedCount);
    EXPECT_EQ(serial.cleanPrograms + serial.injectedPrograms,
              serial.programs);
    // Wall-clock (and jobs) stay out of the deterministic report and
    // only appear in the bench document.
    EXPECT_EQ(serial.toJson().find("wall_ms"), std::string::npos);
    EXPECT_NE(parallel.toBenchJson().find("wall_ms"), std::string::npos);
}

// ---------------------------------------------------------------------
// Mutator ground truth vs the oracle capability matrix
// ---------------------------------------------------------------------

struct MutatorCase
{
    MutatorKind mutator;
    ErrorKind kind;
};

class FuzzMutatorTest : public ::testing::TestWithParam<MutatorCase>
{
};

TEST_P(FuzzMutatorTest, InjectsItsClassAndEveryEngineMeetsTheMatrix)
{
    const MutatorCase &param = GetParam();
    // Several variants per mutator (storage class, read/write,
    // direction are rng-driven), each judged by the full oracle.
    for (uint64_t seed : {11ull, 12ull, 13ull}) {
        FuzzProgram clean = ProgramGenerator(seed).generate();
        ASSERT_FALSE(clean.bug.injected());
        Rng rng(seed * 0x9E37'79B9'7F4A'7C15ull);
        FuzzProgram buggy = injectBug(std::move(clean), param.mutator,
                                      rng);
        ASSERT_EQ(buggy.bug.mutator, param.mutator);
        ASSERT_EQ(buggy.bug.kind, param.kind);
        EXPECT_FALSE(buggy.bug.description.empty());

        OracleOptions options;
        OracleReport report = runOracle(buggy, options);
        ASSERT_FALSE(report.compileError)
            << report.compileErrorDetail << "\n" << buggy.render();
        // No engine expected to detect this class missed it, and no
        // engine mislabeled it: any violation of the capability matrix
        // is a disagreement.
        for (const EngineVerdict &v : report.verdicts)
            EXPECT_EQ(v.disagreement, DisagreementKind::none)
                << v.engine << ": " << v.detail << "\nseed " << seed
                << "\n" << buggy.render();
        // The paper's thesis, verbatim: the managed engine detects
        // every planted class with the exact ground-truth kind.
        ASSERT_FALSE(report.verdicts.empty());
        EXPECT_EQ(report.verdicts[0].engine, "managed");
        EXPECT_TRUE(report.verdicts[0].detected)
            << "managed missed " << buggy.bug.description << "\n"
            << buggy.render();
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllMutators, FuzzMutatorTest,
    ::testing::Values(
        MutatorCase{MutatorKind::oobIndex, ErrorKind::outOfBounds},
        MutatorCase{MutatorKind::useAfterFree, ErrorKind::useAfterFree},
        MutatorCase{MutatorKind::doubleFree, ErrorKind::doubleFree},
        MutatorCase{MutatorKind::uninitRead, ErrorKind::uninitRead},
        MutatorCase{MutatorKind::invalidFree, ErrorKind::invalidFree},
        MutatorCase{MutatorKind::nullDeref, ErrorKind::nullDeref}),
    [](const ::testing::TestParamInfo<MutatorCase> &info) {
        // gtest names must be alphanumeric; the kind names use dashes.
        std::string name;
        for (char c : std::string(mutatorKindName(info.param.mutator)))
            if (c != '-')
                name += c;
        return name;
    });

// ---------------------------------------------------------------------
// Minimizer: preservation, pinning, idempotence
// ---------------------------------------------------------------------

/** The planted bug still reproduces on the managed engine. */
MinimizePredicate
managedStillReports(ErrorKind kind)
{
    return [kind](const FuzzProgram &candidate) {
        PreparedProgram prepared = prepareProgram(
            candidate.render(), ToolConfig::make(ToolKind::safeSulong));
        if (!prepared.ok())
            return false;
        return prepared.run().bug.kind == kind;
    };
}

TEST(FuzzMinimizer, ShrinksWhilePreservingTheSignature)
{
    FuzzProgram clean = ProgramGenerator(21).generate();
    Rng rng(21);
    FuzzProgram buggy = injectBug(std::move(clean),
                                  MutatorKind::doubleFree, rng);
    MinimizePredicate keep = managedStillReports(ErrorKind::doubleFree);
    ASSERT_TRUE(keep(buggy));

    MinimizeStats stats;
    FuzzProgram minimized = minimizeProgram(buggy, keep, &stats);
    EXPECT_TRUE(keep(minimized)) << minimized.render();
    EXPECT_LE(stats.finalStatements, stats.originalStatements);
    EXPECT_LE(stats.finalBytes, stats.originalBytes);
    EXPECT_GT(stats.predicateRuns, 0u);
    EXPECT_GE(stats.shrinkRatio(), 0.0);
    EXPECT_LE(stats.shrinkRatio(), 1.0);

    // The pinned bug snippet survives minimization intact: both frees
    // of the planted double free are still in the program.
    std::string source = minimized.render();
    size_t first = source.find("free(fzd);");
    ASSERT_NE(first, std::string::npos) << source;
    EXPECT_NE(source.find("free(fzd);", first + 1), std::string::npos)
        << source;
}

TEST(FuzzMinimizer, IsIdempotent)
{
    FuzzProgram clean = ProgramGenerator(22).generate();
    Rng rng(22);
    FuzzProgram buggy = injectBug(std::move(clean),
                                  MutatorKind::useAfterFree, rng);
    MinimizePredicate keep = managedStillReports(ErrorKind::useAfterFree);
    ASSERT_TRUE(keep(buggy));

    FuzzProgram once = minimizeProgram(buggy, keep);
    MinimizeStats again;
    FuzzProgram twice = minimizeProgram(once, keep, &again);
    EXPECT_EQ(once.render(), twice.render());
    EXPECT_EQ(again.originalBytes, again.finalBytes);
}

// ---------------------------------------------------------------------
// Dedup key
// ---------------------------------------------------------------------

TEST(FuzzDedup, ShapeHashCollapsesLiteralDifferences)
{
    // Seed-distinct duplicates of one root cause differ only in the
    // constants the generator drew — the dedup key must collide them.
    EXPECT_EQ(shapeHash("int x = 5; g[3] = 17;"),
              shapeHash("int x = 42; g[1] = 9;"));
    EXPECT_NE(shapeHash("int x = 5;"), shapeHash("int y = 5;"));
    EXPECT_NE(shapeHash("free(p); free(p);"), shapeHash("free(p);"));
}

TEST(FuzzDedup, ShapeHashIsStableAcrossCalls)
{
    std::string source = ProgramGenerator(31).generate().render();
    EXPECT_EQ(shapeHash(source), shapeHash(source));
}

} // namespace
} // namespace sulong
