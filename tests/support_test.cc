/**
 * @file
 * Unit tests for src/support: error taxonomy, diagnostics, RNG, stats,
 * string utilities.
 */

#include <gtest/gtest.h>

#include "support/diagnostics.h"
#include "support/error.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/string_utils.h"

namespace sulong
{
namespace
{

TEST(ErrorKindTest, NamesAreStable)
{
    EXPECT_STREQ(errorKindName(ErrorKind::none), "none");
    EXPECT_STREQ(errorKindName(ErrorKind::outOfBounds), "out-of-bounds");
    EXPECT_STREQ(errorKindName(ErrorKind::useAfterFree), "use-after-free");
    EXPECT_STREQ(errorKindName(ErrorKind::doubleFree), "double-free");
    EXPECT_STREQ(errorKindName(ErrorKind::invalidFree), "invalid-free");
    EXPECT_STREQ(errorKindName(ErrorKind::nullDeref), "null-dereference");
    EXPECT_STREQ(errorKindName(ErrorKind::varargs), "varargs");
    EXPECT_STREQ(errorKindName(ErrorKind::uninitRead),
                 "uninitialized-read");
    EXPECT_STREQ(errorKindName(ErrorKind::segfault), "segfault");
}

TEST(ErrorKindTest, AccessAndStorageNames)
{
    EXPECT_STREQ(accessKindName(AccessKind::read), "read");
    EXPECT_STREQ(accessKindName(AccessKind::write), "write");
    EXPECT_STREQ(accessKindName(AccessKind::free), "free");
    EXPECT_STREQ(storageKindName(StorageKind::stack), "stack");
    EXPECT_STREQ(storageKindName(StorageKind::heap), "heap");
    EXPECT_STREQ(storageKindName(StorageKind::global), "global");
    EXPECT_STREQ(storageKindName(StorageKind::mainArgs), "main-args");
    EXPECT_STREQ(boundsDirectionName(BoundsDirection::underflow),
                 "underflow");
    EXPECT_STREQ(boundsDirectionName(BoundsDirection::overflow),
                 "overflow");
}

TEST(BugReportTest, ToStringIncludesAllParts)
{
    BugReport report;
    report.kind = ErrorKind::outOfBounds;
    report.access = AccessKind::write;
    report.storage = StorageKind::stack;
    report.direction = BoundsDirection::overflow;
    report.function = "main";
    report.detail = "offset 40";
    std::string text = report.toString();
    EXPECT_NE(text.find("out-of-bounds"), std::string::npos);
    EXPECT_NE(text.find("write"), std::string::npos);
    EXPECT_NE(text.find("stack"), std::string::npos);
    EXPECT_NE(text.find("overflow"), std::string::npos);
    EXPECT_NE(text.find("main()"), std::string::npos);
    EXPECT_NE(text.find("offset 40"), std::string::npos);
}

TEST(BugReportTest, NoneIsJustNone)
{
    BugReport report;
    EXPECT_EQ(report.toString(), "none");
}

TEST(ExecutionResultTest, OkAndDetected)
{
    ExecutionResult result;
    EXPECT_TRUE(result.ok());
    result.bug.kind = ErrorKind::useAfterFree;
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(result.detected(ErrorKind::useAfterFree));
    EXPECT_FALSE(result.detected(ErrorKind::outOfBounds));
}

TEST(DiagnosticsTest, CountsErrorsAndWarnings)
{
    DiagnosticEngine diags;
    EXPECT_FALSE(diags.hasErrors());
    diags.warning(SourceLoc{"f.c", 1, 2}, "w");
    EXPECT_FALSE(diags.hasErrors());
    diags.error(SourceLoc{"f.c", 3, 4}, "e");
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_EQ(diags.errorCount(), 1u);
    EXPECT_EQ(diags.warningCount(), 1u);
    EXPECT_EQ(diags.messages().size(), 2u);
}

TEST(DiagnosticsTest, DumpFormatsLocations)
{
    DiagnosticEngine diags;
    diags.error(SourceLoc{"prog.c", 12, 5}, "bad thing");
    std::string dump = diags.dump();
    EXPECT_NE(dump.find("prog.c:12:5"), std::string::npos);
    EXPECT_NE(dump.find("error: bad thing"), std::string::npos);
}

TEST(RngTest, Deterministic)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(RngTest, RangeBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; i++) {
        int64_t v = rng.nextRange(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(RngTest, DoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 1000; i++) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(StatsTest, SummaryOfKnownSamples)
{
    Summary s = summarize({1, 2, 3, 4, 5});
    EXPECT_DOUBLE_EQ(s.min, 1);
    EXPECT_DOUBLE_EQ(s.max, 5);
    EXPECT_DOUBLE_EQ(s.median, 3);
    EXPECT_DOUBLE_EQ(s.mean, 3);
    EXPECT_EQ(s.count, 5u);
    EXPECT_DOUBLE_EQ(s.q1, 2);
    EXPECT_DOUBLE_EQ(s.q3, 4);
}

TEST(StatsTest, EmptyInput)
{
    Summary s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.median, 0);
}

TEST(StatsTest, SingleSample)
{
    Summary s = summarize({7.5});
    EXPECT_DOUBLE_EQ(s.min, 7.5);
    EXPECT_DOUBLE_EQ(s.max, 7.5);
    EXPECT_DOUBLE_EQ(s.median, 7.5);
}

TEST(StatsTest, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({1, 4}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({2, 0, 8}), 4.0); // non-positive skipped
}

TEST(StringUtilsTest, Split)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilsTest, SplitNoSeparator)
{
    auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilsTest, ContainsIgnoreCase)
{
    EXPECT_TRUE(containsIgnoreCase("Buffer Overflow in parser",
                                   "buffer overflow"));
    EXPECT_TRUE(containsIgnoreCase("USE-AFTER-FREE", "use-after-free"));
    EXPECT_FALSE(containsIgnoreCase("null deref", "overflow"));
    EXPECT_TRUE(containsIgnoreCase("anything", ""));
}

TEST(StringUtilsTest, Trim)
{
    EXPECT_EQ(trim("  hi \t\n"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtilsTest, JoinAndPad)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(padLeft("7", 3), "  7");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("long", 2), "long");
}

TEST(StringUtilsTest, ParseUint64StrictAcceptsOnlyCleanDecimals)
{
    uint64_t value = 123;
    EXPECT_TRUE(parseUint64Strict("0", &value));
    EXPECT_EQ(value, 0u);
    EXPECT_TRUE(parseUint64Strict("42", &value));
    EXPECT_EQ(value, 42u);
    EXPECT_TRUE(parseUint64Strict("18446744073709551615", &value));
    EXPECT_EQ(value, UINT64_MAX);
}

TEST(StringUtilsTest, ParseUint64StrictRejectsJunkWithReasons)
{
    uint64_t value = 77;
    std::string why;
    EXPECT_FALSE(parseUint64Strict("", &value, &why));
    EXPECT_EQ(why, "empty value");
    EXPECT_FALSE(parseUint64Strict("-3", &value, &why));
    EXPECT_EQ(why, "negative value");
    EXPECT_FALSE(parseUint64Strict("+3", &value, &why));
    EXPECT_EQ(why, "explicit sign not accepted");
    EXPECT_FALSE(parseUint64Strict("12x", &value, &why));
    EXPECT_EQ(why, "trailing garbage after digits");
    EXPECT_FALSE(parseUint64Strict("x12", &value, &why));
    EXPECT_EQ(why, "not a number");
    EXPECT_FALSE(parseUint64Strict("0x10", &value, &why));
    EXPECT_EQ(why, "trailing garbage after digits");
    EXPECT_FALSE(parseUint64Strict("18446744073709551616", &value, &why));
    EXPECT_EQ(why, "overflows uint64");
    EXPECT_FALSE(
        parseUint64Strict("99999999999999999999999", &value, &why));
    EXPECT_EQ(why, "overflows uint64");
    // Failures never clobber the output slot.
    EXPECT_EQ(value, 77u);
}

} // namespace
} // namespace sulong
